// Unit and property tests for the dense linear algebra substrate.
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/lu.hpp"
#include "linalg/matrix.hpp"
#include "linalg/solve.hpp"
#include "linalg/vector_ops.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace mfcp {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng,
                     double scale = 1.0) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng.normal(0.0, scale);
  }
  return m;
}

Matrix random_spd(std::size_t n, Rng& rng) {
  const Matrix a = random_matrix(n, n, rng);
  Matrix spd = matmul_nt(a, a);
  for (std::size_t i = 0; i < n; ++i) {
    spd(i, i) += static_cast<double>(n);  // well conditioned
  }
  return spd;
}

// --------------------------------------------------------------- matrix --

TEST(Matrix, ConstructsWithFill) {
  Matrix m(2, 3, 1.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t i = 0; i < m.size(); ++i) {
    EXPECT_DOUBLE_EQ(m[i], 1.5);
  }
}

TEST(Matrix, InitializerList) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), ContractError);
}

TEST(Matrix, IdentityHasUnitDiagonal) {
  const Matrix i = Matrix::identity(4);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, TransposeRoundTrip) {
  Rng rng(1);
  const Matrix m = random_matrix(3, 5, rng);
  EXPECT_TRUE(approx_equal(m.transposed().transposed(), m));
}

TEST(Matrix, ReshapePreservesOrder) {
  Matrix m{{1, 2, 3}, {4, 5, 6}};
  const Matrix r = m.reshaped(3, 2);
  EXPECT_DOUBLE_EQ(r(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(r(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(r(2, 1), 6.0);
}

TEST(Matrix, ReshapeWrongCountThrows) {
  Matrix m(2, 3);
  EXPECT_THROW(m.reshaped(4, 2), ContractError);
}

TEST(Matrix, ColVectorAndSetCol) {
  Matrix m{{1, 2}, {3, 4}};
  const Matrix c1 = m.col_vector(1);
  EXPECT_DOUBLE_EQ(c1[0], 2.0);
  EXPECT_DOUBLE_EQ(c1[1], 4.0);
  Matrix v(2, 1);
  v[0] = 9.0;
  v[1] = 8.0;
  m.set_col(0, v);
  EXPECT_DOUBLE_EQ(m(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 8.0);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{4, 3}, {2, 1}};
  const Matrix s = a + b;
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(s[i], 5.0);
  }
  const Matrix d = a - b;
  EXPECT_DOUBLE_EQ(d(0, 0), -3.0);
  const Matrix sc = a * 2.0;
  EXPECT_DOUBLE_EQ(sc(1, 1), 8.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a += b, ContractError);
  EXPECT_THROW(hadamard(a, b), ContractError);
}

TEST(Matrix, HadamardMultipliesElementwise) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{2, 2}, {2, 2}};
  const Matrix h = hadamard(a, b);
  EXPECT_DOUBLE_EQ(h(1, 1), 8.0);
}

TEST(Matrix, ApproxEqualTolerance) {
  Matrix a{{1.0}};
  Matrix b{{1.0 + 1e-12}};
  EXPECT_TRUE(approx_equal(a, b, 1e-9));
  EXPECT_FALSE(approx_equal(a, b, 1e-15));
}

TEST(Matrix, RowAndColumnFactories) {
  const std::vector<double> v = {1.0, 2.0, 3.0};
  const Matrix col = Matrix::column(v);
  EXPECT_EQ(col.rows(), 3u);
  EXPECT_EQ(col.cols(), 1u);
  const Matrix row = Matrix::row(v);
  EXPECT_EQ(row.rows(), 1u);
  EXPECT_EQ(row.cols(), 3u);
  EXPECT_TRUE(col.is_vector());
  EXPECT_TRUE(row.is_vector());
  EXPECT_FALSE(Matrix(2, 2).is_vector());
}

// ----------------------------------------------------------- vector ops --

TEST(VectorOps, DotAndNorms) {
  Matrix a{{1, 2, 2}};
  EXPECT_DOUBLE_EQ(dot(a, a), 9.0);
  EXPECT_DOUBLE_EQ(norm2(a), 3.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 2.0);
  EXPECT_DOUBLE_EQ(sum(a), 5.0);
  EXPECT_DOUBLE_EQ(max_element(a), 2.0);
}

TEST(VectorOps, LogSumExpBoundsMax) {
  // Theorem 1: max <= lse_beta <= max + log(n)/beta.
  const std::vector<double> xs = {1.0, 3.0, 2.0, -1.0};
  for (double beta : {0.5, 1.0, 5.0, 50.0}) {
    const double lse = log_sum_exp(xs, beta);
    EXPECT_GE(lse, 3.0);
    EXPECT_LE(lse, 3.0 + std::log(4.0) / beta + 1e-12);
  }
}

TEST(VectorOps, LogSumExpConvergesToMax) {
  const std::vector<double> xs = {0.3, 0.9, 0.5};
  EXPECT_NEAR(log_sum_exp(xs, 1e4), 0.9, 1e-3);
}

TEST(VectorOps, LogSumExpHandlesLargeValues) {
  const std::vector<double> xs = {1e4, 1e4 + 1.0};
  const double lse = log_sum_exp(xs, 1.0);
  EXPECT_TRUE(std::isfinite(lse));
  EXPECT_NEAR(lse, 1e4 + 1.0 + std::log1p(std::exp(-1.0)), 1e-9);
}

TEST(VectorOps, SoftmaxSumsToOne) {
  std::vector<double> xs = {0.1, 2.0, -1.0, 0.7};
  softmax_inplace(std::span<double>(xs));
  double total = 0.0;
  for (double x : xs) {
    EXPECT_GT(x, 0.0);
    total += x;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(VectorOps, SoftmaxSharpensWithBeta) {
  std::vector<double> soft = {1.0, 2.0};
  std::vector<double> sharp = {1.0, 2.0};
  softmax_inplace(std::span<double>(soft), 1.0);
  softmax_inplace(std::span<double>(sharp), 10.0);
  EXPECT_GT(sharp[1], soft[1]);
}

TEST(VectorOps, SoftmaxColumnsMakesSimplexColumns) {
  Rng rng(3);
  Matrix m = random_matrix(4, 6, rng, 2.0);
  softmax_columns_inplace(m);
  for (std::size_t c = 0; c < m.cols(); ++c) {
    double total = 0.0;
    for (std::size_t r = 0; r < m.rows(); ++r) {
      EXPECT_GT(m(r, c), 0.0);
      total += m(r, c);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);
  }
}

TEST(VectorOps, AxpyAccumulates) {
  Matrix x{{1, 2}};
  Matrix y{{10, 20}};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

// ----------------------------------------------------------------- blas --

TEST(Blas, MatmulKnownProduct) {
  Matrix a{{1, 2}, {3, 4}};
  Matrix b{{5, 6}, {7, 8}};
  const Matrix c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Blas, MatmulDimensionMismatchThrows) {
  EXPECT_THROW(matmul(Matrix(2, 3), Matrix(2, 2)), ContractError);
}

TEST(Blas, TransposedVariantsAgreeWithExplicitTranspose) {
  Rng rng(5);
  const Matrix a = random_matrix(4, 6, rng);
  const Matrix b = random_matrix(4, 3, rng);
  EXPECT_TRUE(approx_equal(matmul_tn(a, b), matmul(a.transposed(), b), 1e-9));
  const Matrix c = random_matrix(5, 6, rng);
  EXPECT_TRUE(approx_equal(matmul_nt(a, c), matmul(a, c.transposed()), 1e-9));
}

TEST(Blas, ParallelMatmulBitwiseEqualsSerial) {
  Rng rng(7);
  const Matrix a = random_matrix(37, 23, rng);
  const Matrix b = random_matrix(23, 31, rng);
  const Matrix serial = matmul(a, b);
  ThreadPool pool(4);
  const Matrix parallel = matmul_parallel(pool, a, b);
  ASSERT_TRUE(serial.same_shape(parallel));
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]);  // bitwise, not approx
  }
}

TEST(Blas, MatvecMatchesMatmul) {
  Rng rng(9);
  const Matrix a = random_matrix(5, 4, rng);
  const Matrix x = random_matrix(4, 1, rng);
  EXPECT_TRUE(approx_equal(matvec(a, x), matmul(a, x), 1e-12));
}

TEST(Blas, OuterProduct) {
  Matrix a{{1}, {2}};
  Matrix b{{3}, {4}};
  const Matrix o = outer(a, b);
  EXPECT_DOUBLE_EQ(o(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(o(1, 1), 8.0);
}

// Property sweep: matmul associativity-ish checks over random shapes.
class MatmulPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MatmulPropertyTest, IdentityIsNeutral) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  const std::size_t m = 1 + rng.uniform_index(8);
  const std::size_t n = 1 + rng.uniform_index(8);
  const Matrix a = random_matrix(m, n, rng);
  EXPECT_TRUE(approx_equal(matmul(Matrix::identity(m), a), a, 1e-12));
  EXPECT_TRUE(approx_equal(matmul(a, Matrix::identity(n)), a, 1e-12));
}

TEST_P(MatmulPropertyTest, DistributesOverAddition) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 131);
  const std::size_t m = 1 + rng.uniform_index(6);
  const std::size_t k = 1 + rng.uniform_index(6);
  const std::size_t n = 1 + rng.uniform_index(6);
  const Matrix a = random_matrix(m, k, rng);
  const Matrix b = random_matrix(k, n, rng);
  const Matrix c = random_matrix(k, n, rng);
  EXPECT_TRUE(approx_equal(matmul(a, b + c), matmul(a, b) + matmul(a, c),
                           1e-9));
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, MatmulPropertyTest,
                         ::testing::Range(0, 10));

// ------------------------------------------------------------------- lu --

TEST(Lu, SolvesKnownSystem) {
  Matrix a{{2, 1}, {1, 3}};
  Matrix b{{3}, {5}};
  const Matrix x = LuFactorization(a).solve(b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, SingularMatrixThrows) {
  Matrix a{{1, 2}, {2, 4}};
  EXPECT_THROW(LuFactorization{a}, SingularMatrixError);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW(LuFactorization{Matrix(2, 3)}, ContractError);
}

TEST(Lu, DeterminantOfKnownMatrix) {
  Matrix a{{3, 0}, {0, 2}};
  EXPECT_NEAR(LuFactorization(a).determinant(), 6.0, 1e-12);
  Matrix b{{0, 1}, {1, 0}};  // det = -1, needs pivoting
  EXPECT_NEAR(LuFactorization(b).determinant(), -1.0, 1e-12);
}

class LuPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(LuPropertyTest, SolveThenMultiplyRecoversRhs) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 7919 + 1);
  const std::size_t n = 1 + rng.uniform_index(20);
  Matrix a = random_matrix(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) += 2.0;  // keep well away from singular
  }
  const Matrix b = random_matrix(n, 1, rng);
  const Matrix x = LuFactorization(a).solve(b);
  EXPECT_TRUE(approx_equal(matmul(a, x), b, 1e-8));
}

TEST_P(LuPropertyTest, MultiRhsMatchesColumnwiseSolve) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 3);
  const std::size_t n = 2 + rng.uniform_index(10);
  Matrix a = random_matrix(n, n, rng);
  for (std::size_t i = 0; i < n; ++i) {
    a(i, i) += 2.0;
  }
  const Matrix b = random_matrix(n, 3, rng);
  LuFactorization lu(a);
  const Matrix x = lu.solve_multi(b);
  for (std::size_t c = 0; c < 3; ++c) {
    EXPECT_TRUE(approx_equal(x.col_vector(c), lu.solve(b.col_vector(c)),
                             1e-12));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, LuPropertyTest,
                         ::testing::Range(0, 12));

// ------------------------------------------------------------- cholesky --

TEST(Cholesky, FactorReproducesMatrix) {
  Rng rng(11);
  const Matrix a = random_spd(6, rng);
  CholeskyFactorization chol(a);
  const Matrix l = chol.factor();
  EXPECT_TRUE(approx_equal(matmul_nt(l, l), a, 1e-8));
}

TEST(Cholesky, SolvesSpdSystem) {
  Rng rng(13);
  const Matrix a = random_spd(8, rng);
  const Matrix b = random_matrix(8, 1, rng);
  const Matrix x = CholeskyFactorization(a).solve(b);
  EXPECT_TRUE(approx_equal(matmul(a, x), b, 1e-8));
}

TEST(Cholesky, RejectsIndefiniteMatrix) {
  Matrix a{{1, 0}, {0, -1}};
  EXPECT_THROW(CholeskyFactorization{a}, NotPositiveDefiniteError);
  EXPECT_FALSE(is_positive_definite(a));
}

TEST(Cholesky, AcceptsSpd) {
  Rng rng(17);
  EXPECT_TRUE(is_positive_definite(random_spd(5, rng)));
}

// ---------------------------------------------------------------- solve --

TEST(Solve, LinearMatchesLu) {
  Rng rng(19);
  Matrix a = random_matrix(5, 5, rng);
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, i) += 3.0;
  }
  const Matrix b = random_matrix(5, 2, rng);
  const Matrix x = solve_linear(a, b);
  EXPECT_TRUE(approx_equal(matmul(a, x), b, 1e-8));
}

TEST(Solve, SaddlePointSatisfiesBothBlocks) {
  Rng rng(23);
  const std::size_t nh = 6;
  const std::size_t ne = 2;
  const Matrix h = random_spd(nh, rng);
  const Matrix d = random_matrix(ne, nh, rng);
  const Matrix b1 = random_matrix(nh, 1, rng);
  const Matrix b2 = random_matrix(ne, 1, rng);
  const Matrix sol = solve_saddle_point(h, d, b1, b2);
  ASSERT_EQ(sol.rows(), nh + ne);
  Matrix x(nh, 1);
  Matrix y(ne, 1);
  for (std::size_t i = 0; i < nh; ++i) {
    x[i] = sol[i];
  }
  for (std::size_t i = 0; i < ne; ++i) {
    y[i] = sol[nh + i];
  }
  // H x + D^T y = b1 and D x = b2.
  const Matrix r1 = matmul(h, x) + matmul_tn(d, y);
  EXPECT_TRUE(approx_equal(r1, b1, 1e-8));
  EXPECT_TRUE(approx_equal(matmul(d, x), b2, 1e-8));
}

TEST(Solve, ConditionNumberOfIdentityIsOne) {
  EXPECT_NEAR(condition_number_1(Matrix::identity(5)), 1.0, 1e-12);
}

TEST(Solve, ConditionNumberGrowsForIllConditioned) {
  Matrix a{{1.0, 0.0}, {0.0, 1e-6}};
  EXPECT_GT(condition_number_1(a), 1e5);
}

}  // namespace
}  // namespace mfcp
