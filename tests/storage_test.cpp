// Tests for the durability layer (src/storage/): WAL framing, torn-tail
// and corruption handling, segment rotation, outstanding-task derivation,
// atomic generational checkpoints with manifest fallback, and the chunked
// journal store's routing, sealing, retention, and restart behavior.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "storage/checkpoint_manager.hpp"
#include "storage/chunk_store.hpp"
#include "storage/storage.hpp"
#include "storage/wal.hpp"

namespace mfcp::storage {
namespace {

namespace fs = std::filesystem;

/// Fresh per-test scratch directory, wiped on construction and teardown.
struct TempDir {
  fs::path path;

  explicit TempDir(const std::string& name)
      : path(fs::temp_directory_path() /
             ("mfcp_storage_test_" + std::to_string(::getpid()) + "_" +
              name)) {
    fs::remove_all(path);
    fs::create_directories(path);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
};

WalRecord accepted_record(std::uint64_t id, double hours, double deadline) {
  WalRecord rec;
  rec.type = WalRecordType::kAccepted;
  rec.task_id = id;
  rec.hours = hours;
  rec.deadline_hours = deadline;
  rec.task.family = sim::TaskFamily::kTransformer;
  rec.task.depth = 12;
  rec.task.width = 256;
  rec.task.batch_size = 64;
  rec.task.dataset_fraction = 0.5;
  return rec;
}

WalRecord terminal_record(std::uint64_t id, WalRecordType type,
                          double hours) {
  WalRecord rec;
  rec.type = type;
  rec.task_id = id;
  rec.hours = hours;
  return rec;
}

// ------------------------------------------------------------------ wal --

TEST(Wal, PayloadEncodeDecodeRoundTrip) {
  WalRecord rec = accepted_record(42, 1.25, 3.5);
  rec.seq = 7;
  unsigned char buf[kWalPayloadBytes];
  encode_wal_payload(rec, buf);

  WalRecord back;
  ASSERT_TRUE(decode_wal_payload(buf, sizeof(buf), back));
  EXPECT_EQ(back.type, rec.type);
  EXPECT_EQ(back.seq, rec.seq);
  EXPECT_EQ(back.task_id, rec.task_id);
  EXPECT_EQ(back.hours, rec.hours);  // bit-identical, not approx
  EXPECT_EQ(back.deadline_hours, rec.deadline_hours);
  EXPECT_EQ(back.task.family, rec.task.family);
  EXPECT_EQ(back.task.depth, rec.task.depth);
  EXPECT_EQ(back.task.width, rec.task.width);
  EXPECT_EQ(back.task.batch_size, rec.task.batch_size);
  EXPECT_EQ(back.task.dataset_fraction, rec.task.dataset_fraction);
}

TEST(Wal, AppendScanRoundTripAndOutstanding) {
  TempDir dir("wal_roundtrip");
  {
    TaskWal wal(WalConfig{dir.str()});
    wal.append(accepted_record(10, 0.1, 2.0));
    wal.append(accepted_record(11, 0.2, 2.0));
    wal.append(terminal_record(10, WalRecordType::kDispatched, 0.5));
    wal.append(accepted_record(12, 0.6, 2.0));
    wal.append(terminal_record(12, WalRecordType::kExpired, 2.7));
    wal.sync();
    EXPECT_EQ(wal.stats().records, 5u);
    EXPECT_EQ(wal.stats().last_seq, 5u);
  }

  const WalScanResult scan = scan_wal(dir.str(), false);
  ASSERT_EQ(scan.records.size(), 5u);
  EXPECT_EQ(scan.last_seq, 5u);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.corrupt_frames, 0u);
  for (std::size_t k = 0; k < scan.records.size(); ++k) {
    EXPECT_EQ(scan.records[k].seq, k + 1);
  }
  // Task 11 was accepted and never reached a terminal record.
  const std::vector<WalRecord> open = outstanding_tasks(scan);
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].task_id, 11u);
  EXPECT_EQ(open[0].task.depth, 12);
}

TEST(Wal, TerminalBeforeAcceptedStillPairsById) {
  // The gateway thread may append accepted slightly after the engine's
  // terminal record for the same task: pairing is by id, not log order.
  TempDir dir("wal_order");
  {
    TaskWal wal(WalConfig{dir.str()});
    wal.append(terminal_record(20, WalRecordType::kDispatched, 0.4));
    wal.append(accepted_record(20, 0.3, 2.0));
    wal.sync();
  }
  const WalScanResult scan = scan_wal(dir.str(), false);
  EXPECT_TRUE(outstanding_tasks(scan).empty());
}

TEST(Wal, TornTailIsTruncatedOnce) {
  TempDir dir("wal_torn");
  {
    TaskWal wal(WalConfig{dir.str()});
    wal.append(accepted_record(1, 0.1, 2.0));
    wal.append(accepted_record(2, 0.2, 2.0));
    wal.sync();
  }
  // A crash mid-append leaves a partial frame at the segment's end.
  const fs::path segment = fs::path(dir.str()) / wal_segment_name(1);
  {
    std::ofstream os(segment, std::ios::app | std::ios::binary);
    const char partial[] = {49, 0, 0, 0, 1, 2, 3};
    os.write(partial, sizeof(partial));
  }
  const auto torn_size = fs::file_size(segment);

  const WalScanResult scan = scan_wal(dir.str(), true);
  ASSERT_EQ(scan.records.size(), 2u);
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.truncated_bytes, 7u);
  EXPECT_EQ(fs::file_size(segment), torn_size - 7);

  // The truncation healed the file: a second scan is clean.
  const WalScanResult again = scan_wal(dir.str(), true);
  EXPECT_EQ(again.records.size(), 2u);
  EXPECT_FALSE(again.torn_tail);
  EXPECT_EQ(again.truncated_bytes, 0u);
}

TEST(Wal, CrcCorruptionEndsThatSegmentsScan) {
  TempDir dir("wal_crc");
  {
    TaskWal wal(WalConfig{dir.str()});
    for (std::uint64_t id = 0; id < 4; ++id) {
      wal.append(accepted_record(id, 0.1 * static_cast<double>(id), 2.0));
    }
    wal.sync();
  }
  // Flip one payload byte in the third frame.
  const fs::path segment = fs::path(dir.str()) / wal_segment_name(1);
  {
    std::fstream f(segment,
                   std::ios::in | std::ios::out | std::ios::binary);
    const std::streamoff frame = kWalHeaderBytes + kWalPayloadBytes;
    f.seekp(2 * frame + kWalHeaderBytes + 20);
    f.put('\xff');
  }
  const WalScanResult scan = scan_wal(dir.str(), false);
  EXPECT_EQ(scan.records.size(), 2u);  // everything before the bad frame
  EXPECT_EQ(scan.last_seq, 2u);
  EXPECT_TRUE(scan.torn_tail);  // the newest segment ended early
}

TEST(Wal, ZeroByteSegmentScansClean) {
  TempDir dir("wal_zero");
  std::ofstream(fs::path(dir.str()) / wal_segment_name(1)).flush();
  const WalScanResult scan = scan_wal(dir.str(), true);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.next_segment, 2u);
}

TEST(Wal, MissingDirectoryIsAnEmptyLog) {
  const WalScanResult scan =
      scan_wal("/nonexistent/mfcp/wal/dir", false);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.last_seq, 0u);
  EXPECT_EQ(scan.next_segment, 1u);
}

TEST(Wal, RotationSpansSegmentsWithMonotoneSeq) {
  TempDir dir("wal_rotate");
  WalConfig cfg{dir.str()};
  cfg.segment_bytes = 2 * (kWalHeaderBytes + kWalPayloadBytes);
  {
    TaskWal wal(cfg);
    for (std::uint64_t id = 0; id < 10; ++id) {
      wal.append(accepted_record(id, 0.1 * static_cast<double>(id), 2.0));
    }
    wal.sync();
    EXPECT_GE(wal.stats().segments, 4u);
  }
  const WalScanResult scan = scan_wal(dir.str(), false);
  ASSERT_EQ(scan.records.size(), 10u);
  for (std::size_t k = 0; k < scan.records.size(); ++k) {
    EXPECT_EQ(scan.records[k].seq, k + 1);
  }
  EXPECT_GE(scan.last_segment, 4u);

  // A new log opened from the scan continues the sequence, not restarts.
  WalConfig next{dir.str()};
  next.start_seq = scan.last_seq + 1;
  next.start_segment = scan.next_segment;
  TaskWal wal(next);
  EXPECT_EQ(wal.append(accepted_record(99, 1.0, 2.0)), 11u);
}

// ---------------------------------------------------------- checkpoints --

/// Publishes `payload` as the next generation.
CheckpointInfo publish_payload(CheckpointManager& mgr, std::uint64_t seq,
                               const std::string& payload) {
  return mgr.publish(seq,
                     [&payload](std::ostream& os) { os << payload; });
}

/// Loads the newest recoverable payload, or empty when nothing loads.
std::string load_payload(const CheckpointManager& mgr,
                         CheckpointInfo* info_out = nullptr) {
  std::string payload;
  const auto info = mgr.load_latest([&payload](std::istream& is) {
    std::ostringstream os;
    os << is.rdbuf();
    payload = os.str();
    return true;
  });
  if (info_out != nullptr && info.has_value()) {
    *info_out = *info;
  }
  return info.has_value() ? payload : std::string();
}

TEST(Checkpoints, PublishLoadRoundTrip) {
  TempDir dir("ckpt_roundtrip");
  CheckpointManager mgr(CheckpointConfig{dir.str(), 3});
  const CheckpointInfo pub = publish_payload(mgr, 17, "weights v1\n");
  EXPECT_EQ(pub.generation, 1u);
  EXPECT_EQ(pub.wal_seq, 17u);

  CheckpointInfo info;
  EXPECT_EQ(load_payload(mgr, &info), "weights v1\n");
  EXPECT_EQ(info.generation, 1u);
  EXPECT_EQ(info.wal_seq, 17u);
}

TEST(Checkpoints, EmptyDirLoadsNothing) {
  TempDir dir("ckpt_empty");
  CheckpointManager mgr(CheckpointConfig{dir.str(), 3});
  EXPECT_FALSE(
      mgr.load_latest([](std::istream&) { return true; }).has_value());
}

TEST(Checkpoints, RetainPrunesAndNumberingSurvivesRestart) {
  TempDir dir("ckpt_retain");
  {
    CheckpointManager mgr(CheckpointConfig{dir.str(), 2});
    for (std::uint64_t g = 1; g <= 5; ++g) {
      publish_payload(mgr, g * 10, "gen " + std::to_string(g));
    }
  }
  EXPECT_FALSE(fs::exists(fs::path(dir.str()) / snapshot_name(3)));
  EXPECT_TRUE(fs::exists(fs::path(dir.str()) / snapshot_name(4)));
  EXPECT_TRUE(fs::exists(fs::path(dir.str()) / snapshot_name(5)));

  // A restarted manager resumes numbering past the retained snapshots.
  CheckpointManager again(CheckpointConfig{dir.str(), 2});
  EXPECT_EQ(publish_payload(again, 60, "gen 6").generation, 6u);
  EXPECT_EQ(load_payload(again), "gen 6");
}

TEST(Checkpoints, DanglingManifestFallsBackToOlderGeneration) {
  TempDir dir("ckpt_dangling");
  CheckpointManager mgr(CheckpointConfig{dir.str(), 3});
  publish_payload(mgr, 10, "gen 1");
  publish_payload(mgr, 20, "gen 2");
  fs::remove(fs::path(dir.str()) / snapshot_name(2));

  CheckpointInfo info;
  EXPECT_EQ(load_payload(mgr, &info), "gen 1");
  EXPECT_EQ(info.generation, 1u);
  EXPECT_EQ(info.wal_seq, 10u);
}

TEST(Checkpoints, CorruptSnapshotFallsBackToOlderGeneration) {
  TempDir dir("ckpt_corrupt");
  CheckpointManager mgr(CheckpointConfig{dir.str(), 3});
  publish_payload(mgr, 10, "gen 1");
  publish_payload(mgr, 20, "gen 2");

  // The payload reader rejects generation 2 (simulating a corrupt body);
  // recovery degrades to generation 1 instead of failing.
  std::string payload;
  const auto info = mgr.load_latest([&payload](std::istream& is) {
    std::ostringstream os;
    os << is.rdbuf();
    if (os.str() == "gen 2") {
      return false;
    }
    payload = os.str();
    return true;
  });
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->generation, 1u);
  EXPECT_EQ(payload, "gen 1");
}

// --------------------------------------------------------------- chunks --

TEST(Chunks, RoutesByTimeAndQueriesAcrossBoundaries) {
  TempDir dir("chunk_route");
  ChunkStoreConfig cfg{dir.str()};
  cfg.chunk_hours = 1.0;
  ChunkStore store(cfg);
  store.append(0.5, R"({"round":0,"close_hours":0.5})");
  store.append(1.25, R"({"round":1,"close_hours":1.25})");
  store.append(1.75, R"({"round":2,"close_hours":1.75})");
  store.append(2.5, R"({"round":3,"close_hours":2.5})");
  store.flush();

  EXPECT_EQ(store.stats().chunks, 3u);
  EXPECT_EQ(store.stats().records, 4u);

  // Window straddling a chunk boundary: per-record filtering, not
  // per-chunk.
  const std::vector<std::string> mid = store.query(1.0, 2.0);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_NE(mid[0].find("\"round\":1"), std::string::npos);
  EXPECT_NE(mid[1].find("\"round\":2"), std::string::npos);

  const std::vector<std::string> all = store.query(0.0, 10.0);
  ASSERT_EQ(all.size(), 4u);
  EXPECT_NE(all[0].find("\"round\":0"), std::string::npos);
  EXPECT_NE(all[3].find("\"round\":3"), std::string::npos);
}

TEST(Chunks, SealedChunkEndsWithAMatchingFooter) {
  TempDir dir("chunk_footer");
  ChunkStoreConfig cfg{dir.str()};
  cfg.chunk_hours = 1.0;
  ChunkStore store(cfg);
  store.append(0.25, R"({"round":0,"close_hours":0.25})");
  store.append(0.75, R"({"round":1,"close_hours":0.75})");
  store.append(1.5, R"({"round":2,"close_hours":1.5})");  // seals chunk 0
  store.flush();

  std::ifstream is(fs::path(dir.str()) / ChunkStore::chunk_name(0));
  std::string line;
  std::string last;
  std::size_t records = 0;
  while (std::getline(is, line)) {
    if (line.rfind(kChunkFooterMagic, 0) != 0) {
      ++records;
    }
    last = line;
  }
  EXPECT_EQ(records, 2u);
  EXPECT_EQ(last.rfind(kChunkFooterMagic, 0), 0u);
  EXPECT_NE(last.find("chunk=0 records=2"), std::string::npos);
}

TEST(Chunks, RetentionEvictsWholeChunksOldestFirst) {
  TempDir dir("chunk_retention");
  ChunkStoreConfig cfg{dir.str()};
  cfg.chunk_hours = 1.0;
  cfg.max_chunks = 2;
  ChunkStore store(cfg);
  for (int k = 0; k < 4; ++k) {
    store.append(static_cast<double>(k) + 0.5,
                 R"({"close_hours":)" + std::to_string(k) + ".5}");
  }
  store.flush();

  // Retention runs at seal time, so the open chunk rides above the
  // budget: max_chunks sealed-or-open survivors plus the newest window.
  EXPECT_EQ(store.stats().chunks, 3u);
  EXPECT_EQ(store.stats().evicted, 1u);
  EXPECT_FALSE(fs::exists(fs::path(dir.str()) / ChunkStore::chunk_name(0)));
  EXPECT_TRUE(fs::exists(fs::path(dir.str()) / ChunkStore::chunk_name(3)));
  // The evicted window is gone; the retained ones still answer, and a
  // query straddling the eviction boundary returns only survivors.
  EXPECT_TRUE(store.query(0.0, 1.0).empty());
  EXPECT_EQ(store.query(1.0, 4.0).size(), 3u);
  EXPECT_EQ(store.query(0.0, 4.0).size(), 3u);
}

TEST(Chunks, RestartReopensNewestChunkAndSealsIdempotently) {
  TempDir dir("chunk_restart");
  ChunkStoreConfig cfg{dir.str()};
  cfg.chunk_hours = 1.0;
  {
    ChunkStore store(cfg);
    store.append(0.5, R"({"close_hours":0.5})");
    store.append(1.5, R"({"close_hours":1.5})");  // chunk 0 sealed, 1 open
    store.flush();
  }
  {
    // Restart: the newest chunk reopens for appends; records keep landing
    // in the right windows.
    ChunkStore store(cfg);
    EXPECT_EQ(store.query(0.0, 10.0).size(), 2u);
    store.append(1.75, R"({"close_hours":1.75})");
    store.append(2.5, R"({"close_hours":2.5})");  // seals chunk 1 again
    store.flush();
    EXPECT_EQ(store.stats().chunks, 3u);
  }
  // Chunk 1 carries both its pre- and post-restart records and exactly
  // one footer.
  std::ifstream is(fs::path(dir.str()) / ChunkStore::chunk_name(1));
  std::string line;
  std::size_t records = 0;
  std::size_t footers = 0;
  while (std::getline(is, line)) {
    if (line.rfind(kChunkFooterMagic, 0) == 0) {
      ++footers;
    } else {
      ++records;
    }
  }
  EXPECT_EQ(records, 2u);
  EXPECT_EQ(footers, 1u);
}

// -------------------------------------------------------------- manager --

TEST(StorageManager, RecoveryScanOutstandingAndCompaction) {
  TempDir dir("mgr_recovery");
  {
    StorageManager storage(StorageConfig{dir.str()});
    storage.wal().append(accepted_record(100, 0.1, 2.0));
    storage.wal().append(accepted_record(101, 0.2, 2.0));
    storage.wal().append(
        terminal_record(100, WalRecordType::kDispatched, 0.5));
    storage.wal().sync();
  }
  // "Restart": a fresh manager scans the previous incarnation's log.
  StorageManager storage(StorageConfig{dir.str()});
  EXPECT_EQ(storage.recovery_scan().records.size(), 3u);
  const std::vector<WalRecord> open = storage.outstanding();
  ASSERT_EQ(open.size(), 1u);
  EXPECT_EQ(open[0].task_id, 101u);

  // Replay + compaction: the re-appended acceptance supersedes the old
  // segments, which are removed.
  storage.wal().append(open[0]);
  storage.wal().sync();
  storage.compact_after_recovery();
  EXPECT_FALSE(
      fs::exists(fs::path(dir.str()) / "wal" / wal_segment_name(1)));
  const WalScanResult after =
      scan_wal((fs::path(dir.str()) / "wal").string(), false);
  ASSERT_EQ(after.records.size(), 1u);
  EXPECT_EQ(after.records[0].task_id, 101u);
  EXPECT_EQ(after.records[0].seq, 4u);  // sequence continues, not restarts
}

}  // namespace
}  // namespace mfcp::storage
