// Tests for the platform simulator: tasks, embeddings, cluster laws,
// datasets, speedup curves, and failure injection.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/cluster.hpp"
#include "sim/dataset.hpp"
#include "sim/embedding.hpp"
#include "sim/failure.hpp"
#include "sim/platform.hpp"
#include "sim/speedup.hpp"
#include "sim/task.hpp"
#include "support/check.hpp"

namespace mfcp::sim {
namespace {

TaskDescriptor make_task(TaskFamily family = TaskFamily::kCnn,
                         DatasetKind dataset = DatasetKind::kCifar10,
                         int depth = 8, int width = 128, int batch = 64,
                         double fraction = 0.5) {
  TaskDescriptor t;
  t.family = family;
  t.dataset = dataset;
  t.depth = depth;
  t.width = width;
  t.batch_size = batch;
  t.dataset_fraction = fraction;
  return t;
}

// ----------------------------------------------------------------- task --

TEST(Task, ParamsGrowWithDepthAndWidth) {
  const auto small = make_task(TaskFamily::kCnn, DatasetKind::kCifar10, 4, 64);
  const auto deep = make_task(TaskFamily::kCnn, DatasetKind::kCifar10, 8, 64);
  const auto wide = make_task(TaskFamily::kCnn, DatasetKind::kCifar10, 4, 128);
  EXPECT_GT(deep.params_millions(), small.params_millions());
  EXPECT_GT(wide.params_millions(), small.params_millions());
}

TEST(Task, TransformerHeavierThanMlpAtSameSize) {
  const auto mlp = make_task(TaskFamily::kMlp);
  const auto tf = make_task(TaskFamily::kTransformer);
  EXPECT_GT(tf.params_millions(), mlp.params_millions());
}

TEST(Task, WorkloadGrowsWithDatasetSize) {
  const auto cifar = make_task(TaskFamily::kCnn, DatasetKind::kCifar10);
  const auto imagenet = make_task(TaskFamily::kCnn, DatasetKind::kImageNet);
  EXPECT_GT(imagenet.workload(), cifar.workload());
}

TEST(Task, WorkloadGrowsWithFraction) {
  const auto half = make_task(TaskFamily::kCnn, DatasetKind::kCifar10, 8, 128,
                              64, 0.5);
  const auto full = make_task(TaskFamily::kCnn, DatasetKind::kCifar10, 8, 128,
                              64, 1.0);
  EXPECT_GT(full.workload(), half.workload());
}

TEST(Task, WorkloadTailIsCompressed) {
  // Huge jobs stay in a range the exponential cluster law can absorb.
  const auto huge = make_task(TaskFamily::kTransformer,
                              DatasetKind::kImageNet, 31, 512, 256, 1.0);
  EXPECT_LT(huge.workload(), 100.0);
  EXPECT_GT(huge.workload(), 10.0);
}

TEST(Task, MemoryGrowsWithBatch) {
  const auto small = make_task(TaskFamily::kCnn, DatasetKind::kCifar10, 8,
                               128, 16);
  const auto big = make_task(TaskFamily::kCnn, DatasetKind::kCifar10, 8, 128,
                             256);
  EXPECT_GT(big.memory_gb(), small.memory_gb());
}

TEST(Task, CommIntensityInUnitInterval) {
  for (int f = 0; f < kNumTaskFamilies; ++f) {
    auto t = make_task(static_cast<TaskFamily>(f));
    EXPECT_GE(t.comm_intensity(), 0.0);
    EXPECT_LE(t.comm_intensity(), 1.0);
  }
}

TEST(Task, ToStringCoversAllKinds) {
  EXPECT_EQ(to_string(TaskFamily::kCnn), "CNN");
  EXPECT_EQ(to_string(TaskFamily::kTransformer), "Transformer");
  EXPECT_EQ(to_string(DatasetKind::kEuroparl), "Europarl");
}

TEST(TaskGenerator, RespectsFamilyDatasetPairing) {
  TaskGenerator gen(Rng{1});
  for (const auto& t : gen.sample_batch(200)) {
    if (t.family == TaskFamily::kTransformer ||
        t.family == TaskFamily::kRnn) {
      EXPECT_EQ(t.dataset, DatasetKind::kEuroparl);
    } else {
      EXPECT_NE(t.dataset, DatasetKind::kEuroparl);
    }
  }
}

TEST(TaskGenerator, ProducesDiverseFamilies) {
  TaskGenerator gen(Rng{2});
  std::set<int> families;
  for (const auto& t : gen.sample_batch(100)) {
    families.insert(static_cast<int>(t.family));
  }
  EXPECT_EQ(families.size(), static_cast<std::size_t>(kNumTaskFamilies));
}

TEST(TaskGenerator, DeterministicUnderSeed) {
  TaskGenerator a(Rng{3});
  TaskGenerator b(Rng{3});
  const auto ta = a.sample_batch(20);
  const auto tb = b.sample_batch(20);
  for (std::size_t i = 0; i < 20; ++i) {
    EXPECT_EQ(ta[i].depth, tb[i].depth);
    EXPECT_EQ(ta[i].width, tb[i].width);
    EXPECT_EQ(static_cast<int>(ta[i].family),
              static_cast<int>(tb[i].family));
  }
}

// ------------------------------------------------------------ embedding --

TEST(Embedding, DeterministicAcrossInstances) {
  PseudoGnnEmbedder a;
  PseudoGnnEmbedder b;
  const auto t = make_task();
  EXPECT_EQ(a.embed(t), b.embed(t));
}

TEST(Embedding, OutputDimMatchesConfig) {
  EmbedderConfig cfg;
  cfg.output_dim = 7;
  PseudoGnnEmbedder e(cfg);
  EXPECT_EQ(e.embed(make_task()).size(), 7u);
  EXPECT_EQ(e.output_dim(), 7u);
}

TEST(Embedding, DistinguishesDifferentTasks) {
  PseudoGnnEmbedder e;
  const auto za = e.embed(make_task(TaskFamily::kCnn));
  const auto zb = e.embed(make_task(TaskFamily::kTransformer,
                                    DatasetKind::kEuroparl));
  double dist = 0.0;
  for (std::size_t i = 0; i < za.size(); ++i) {
    dist += (za[i] - zb[i]) * (za[i] - zb[i]);
  }
  EXPECT_GT(dist, 1e-4);
}

TEST(Embedding, BatchMatchesSingle) {
  PseudoGnnEmbedder e;
  std::vector<TaskDescriptor> tasks = {make_task(), make_task(
      TaskFamily::kRnn, DatasetKind::kEuroparl, 4, 64, 32, 0.2)};
  const Matrix batch = e.embed_batch(tasks);
  ASSERT_EQ(batch.rows(), 2u);
  const auto z0 = e.embed(tasks[0]);
  for (std::size_t c = 0; c < e.output_dim(); ++c) {
    EXPECT_DOUBLE_EQ(batch(0, c), z0[c]);
  }
}

TEST(Embedding, DifferentSeedsGiveDifferentMaps) {
  EmbedderConfig ca;
  EmbedderConfig cb;
  cb.seed = ca.seed + 1;
  PseudoGnnEmbedder a(ca);
  PseudoGnnEmbedder b(cb);
  EXPECT_NE(a.embed(make_task()), b.embed(make_task()));
}

// -------------------------------------------------------------- cluster --

TEST(Cluster, ExecutionTimePositive) {
  for (const auto& profile : cluster_catalog()) {
    Cluster c(profile);
    EXPECT_GT(c.execution_time(make_task()), 0.0);
  }
}

TEST(Cluster, ExponentialLawIsSuperlinear) {
  ClusterProfile lin;
  lin.law = PerfLaw::kLinear;
  ClusterProfile exp = lin;
  exp.law = PerfLaw::kExponential;
  exp.law_param = 0.08;
  Cluster linear(lin);
  Cluster expo(exp);
  const auto small = make_task(TaskFamily::kCnn, DatasetKind::kCifar10, 2, 32,
                               16, 0.05);
  const auto large = make_task(TaskFamily::kTransformer,
                               DatasetKind::kEuroparl, 24, 512, 256, 1.0);
  const double ratio_small =
      expo.execution_time(small) / linear.execution_time(small);
  const double ratio_large =
      expo.execution_time(large) / linear.execution_time(large);
  EXPECT_GT(ratio_large, ratio_small);  // grows faster than linear
}

TEST(Cluster, SaturatingLawIsSublinearAtScale) {
  ClusterProfile lin;
  lin.law = PerfLaw::kLinear;
  ClusterProfile sat = lin;
  sat.law = PerfLaw::kSaturating;
  sat.law_param = 0.05;
  Cluster linear(lin);
  Cluster satur(sat);
  const auto large = make_task(TaskFamily::kTransformer,
                               DatasetKind::kEuroparl, 24, 512, 256, 1.0);
  const auto small = make_task(TaskFamily::kCnn, DatasetKind::kCifar10, 2, 32,
                               16, 0.05);
  const double ratio_small =
      satur.execution_time(small) / linear.execution_time(small);
  const double ratio_large =
      satur.execution_time(large) / linear.execution_time(large);
  EXPECT_LT(ratio_large, ratio_small);
}

TEST(Cluster, FamilyAffinityShiftsTimes) {
  // Two clusters identical except transformer affinity: the same
  // transformer task must take exactly 2x longer on the penalized one.
  ClusterProfile base;
  ClusterProfile penalized = base;
  penalized.family_affinity = {1.0, 2.0, 1.0, 1.0};
  Cluster fast(base);
  Cluster slow(penalized);
  const auto tf =
      make_task(TaskFamily::kTransformer, DatasetKind::kEuroparl);
  EXPECT_NEAR(slow.execution_time(tf) / fast.execution_time(tf), 2.0, 1e-9);
  const auto cnn = make_task(TaskFamily::kCnn);
  EXPECT_NEAR(slow.execution_time(cnn) / fast.execution_time(cnn), 1.0,
              1e-9);
}

TEST(Cluster, ReliabilityIsProbability) {
  for (const auto& profile : cluster_catalog()) {
    Cluster c(profile);
    TaskGenerator gen(Rng{5});
    for (const auto& t : gen.sample_batch(50)) {
      const double a = c.reliability(t);
      EXPECT_GE(a, 0.01);
      EXPECT_LE(a, 0.999);
    }
  }
}

TEST(Cluster, BiggerJobsLessReliable) {
  ClusterProfile p;
  p.memory_fragility = 0.5;
  Cluster c(p);
  const auto small = make_task(TaskFamily::kCnn, DatasetKind::kCifar10, 4, 64,
                               16);
  const auto big = make_task(TaskFamily::kCnn, DatasetKind::kCifar10, 24, 512,
                             256);
  EXPECT_GT(c.reliability(small), c.reliability(big));
}

TEST(Cluster, MeasurementNoiseIsUnbiasedOnLogScale) {
  ClusterProfile p;
  p.time_noise_sigma = 0.1;
  Cluster c(p);
  const auto t = make_task();
  Rng rng(7);
  double log_sum = 0.0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    log_sum += std::log(c.measure_time(t, rng));
  }
  EXPECT_NEAR(log_sum / reps, std::log(c.execution_time(t)), 0.01);
}

TEST(Cluster, MeasuredReliabilityClamped) {
  ClusterProfile p;
  p.reliability_base = 10.0;  // essentially 1.0
  p.reliability_noise_sigma = 0.5;
  Cluster c(p);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const double a = c.measure_reliability(make_task(), rng);
    EXPECT_GE(a, 0.01);
    EXPECT_LE(a, 0.999);
  }
}

TEST(Cluster, CatalogProfilesAreDistinct) {
  const auto catalog = cluster_catalog();
  EXPECT_GE(catalog.size(), 5u);
  std::set<std::string> names;
  for (const auto& p : catalog) {
    names.insert(p.name);
  }
  EXPECT_EQ(names.size(), catalog.size());
}

TEST(Cluster, SampleClustersJittersProfiles) {
  Rng rng(11);
  const auto clusters = sample_clusters(6, rng);
  ASSERT_EQ(clusters.size(), 6u);
  const auto catalog = cluster_catalog();
  // Jitter means no sampled cluster exactly matches a catalog speed.
  for (const auto& c : clusters) {
    for (const auto& p : catalog) {
      EXPECT_NE(c.profile().base_seconds_per_unit, p.base_seconds_per_unit);
    }
  }
}

TEST(Cluster, InvalidProfileRejected) {
  ClusterProfile p;
  p.base_seconds_per_unit = 0.0;
  EXPECT_THROW(Cluster{p}, ContractError);
}

// -------------------------------------------------------------- speedup --

TEST(Speedup, ExclusiveIsConstantOne) {
  const auto z = SpeedupCurve::exclusive();
  EXPECT_TRUE(z.is_constant());
  EXPECT_DOUBLE_EQ(z.value(1.0), 1.0);
  EXPECT_DOUBLE_EQ(z.value(50.0), 1.0);
  EXPECT_DOUBLE_EQ(z.derivative(3.0), 0.0);
}

TEST(Speedup, ExponentialDecayBounds) {
  const auto z = SpeedupCurve::exponential_decay(0.6, 0.5);
  EXPECT_FALSE(z.is_constant());
  EXPECT_DOUBLE_EQ(z.value(1.0), 1.0);
  EXPECT_NEAR(z.value(1e9), 0.6, 1e-9);
  for (double n : {1.5, 2.0, 5.0, 20.0}) {
    EXPECT_GT(z.value(n), 0.6);
    EXPECT_LT(z.value(n), 1.0);
  }
}

TEST(Speedup, MonotoneDecreasing) {
  const auto z = SpeedupCurve::exponential_decay(0.6, 0.4);
  double prev = z.value(1.0);
  for (double n = 1.5; n < 10.0; n += 0.5) {
    EXPECT_LT(z.value(n), prev);
    prev = z.value(n);
  }
}

TEST(Speedup, DerivativeMatchesFiniteDifference) {
  const auto z = SpeedupCurve::exponential_decay(0.6, 0.7);
  for (double n : {1.5, 2.0, 4.0, 8.0}) {
    const double fd = (z.value(n + 1e-6) - z.value(n - 1e-6)) / 2e-6;
    EXPECT_NEAR(z.derivative(n), fd, 1e-6);
  }
}

TEST(Speedup, BelowOneTaskNoSharingEffect) {
  const auto z = SpeedupCurve::exponential_decay(0.6, 0.5);
  EXPECT_DOUBLE_EQ(z.value(0.3), 1.0);
  EXPECT_DOUBLE_EQ(z.derivative(0.3), 0.0);
}

TEST(Speedup, InvalidParamsRejected) {
  EXPECT_THROW(SpeedupCurve::exponential_decay(0.0, 1.0), ContractError);
  EXPECT_THROW(SpeedupCurve::exponential_decay(1.5, 1.0), ContractError);
  EXPECT_THROW(SpeedupCurve::exponential_decay(0.6, 0.0), ContractError);
}

// ------------------------------------------------------------- platform --

TEST(Platform, SettingsAreDistinctButReproducible) {
  const auto a1 = Platform::make_setting(Setting::kA, 3);
  const auto a2 = Platform::make_setting(Setting::kA, 3);
  const auto b = Platform::make_setting(Setting::kB, 3);
  EXPECT_EQ(a1.cluster(0).profile().name, a2.cluster(0).profile().name);
  EXPECT_DOUBLE_EQ(a1.cluster(0).profile().base_seconds_per_unit,
                   a2.cluster(0).profile().base_seconds_per_unit);
  bool any_different = false;
  for (std::size_t i = 0; i < 3; ++i) {
    if (a1.cluster(i).profile().name != b.cluster(i).profile().name ||
        a1.cluster(i).profile().base_seconds_per_unit !=
            b.cluster(i).profile().base_seconds_per_unit) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Platform, MetricMatricesHaveCorrectShapesAndRanges) {
  const auto platform = Platform::make_setting(Setting::kA, 4);
  TaskGenerator gen(Rng{13});
  const auto tasks = gen.sample_batch(10);
  const Matrix t = platform.true_times(tasks);
  const Matrix a = platform.true_reliability(tasks);
  ASSERT_EQ(t.rows(), 4u);
  ASSERT_EQ(t.cols(), 10u);
  ASSERT_EQ(a.rows(), 4u);
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_GT(t[i], 0.0);
    EXPECT_GE(a[i], 0.0);
    EXPECT_LE(a[i], 1.0);
  }
}

TEST(Platform, HeterogeneityCreatesRankDisagreements) {
  // The Fig. 2 premise: different clusters prefer different tasks, so the
  // per-task argmin over clusters is not constant.
  const auto platform = Platform::make_setting(Setting::kA, 3);
  TaskGenerator gen(Rng{17});
  const auto tasks = gen.sample_batch(60);
  const Matrix t = platform.true_times(tasks);
  std::set<std::size_t> winners;
  for (std::size_t j = 0; j < t.cols(); ++j) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < t.rows(); ++i) {
      if (t(i, j) < t(best, j)) {
        best = i;
      }
    }
    winners.insert(best);
  }
  EXPECT_GE(winners.size(), 2u);
}

// -------------------------------------------------------------- dataset --

TEST(Dataset, BuildShapesAndGroundTruthConsistency) {
  const auto platform = Platform::make_setting(Setting::kB, 3);
  PseudoGnnEmbedder embedder;
  DatasetConfig cfg;
  cfg.num_tasks = 40;
  const auto data = build_dataset(platform, embedder, cfg);
  EXPECT_EQ(data.num_tasks(), 40u);
  EXPECT_EQ(data.num_clusters(), 3u);
  EXPECT_EQ(data.feature_dim(), embedder.output_dim());
  // True labels match the platform exactly.
  for (std::size_t j = 0; j < 40; ++j) {
    EXPECT_DOUBLE_EQ(data.true_times(0, j),
                     platform.cluster(0).execution_time(data.tasks[j]));
  }
}

TEST(Dataset, NoisyLabelsDifferFromTruthButCorrelate) {
  const auto platform = Platform::make_setting(Setting::kB, 3);
  PseudoGnnEmbedder embedder;
  DatasetConfig cfg;
  cfg.num_tasks = 50;
  cfg.noisy_labels = true;
  const auto data = build_dataset(platform, embedder, cfg);
  double max_rel_error = 0.0;
  bool any_diff = false;
  for (std::size_t i = 0; i < data.times.size(); ++i) {
    any_diff = any_diff || data.times[i] != data.true_times[i];
    max_rel_error =
        std::max(max_rel_error,
                 std::abs(data.times[i] / data.true_times[i] - 1.0));
  }
  EXPECT_TRUE(any_diff);
  EXPECT_LT(max_rel_error, 1.5);  // noise, not garbage
}

TEST(Dataset, CleanLabelsEqualTruth) {
  const auto platform = Platform::make_setting(Setting::kC, 2);
  PseudoGnnEmbedder embedder;
  DatasetConfig cfg;
  cfg.num_tasks = 10;
  cfg.noisy_labels = false;
  const auto data = build_dataset(platform, embedder, cfg);
  EXPECT_TRUE(approx_equal(data.times, data.true_times));
  EXPECT_TRUE(approx_equal(data.reliability, data.true_reliability));
}

TEST(Dataset, SubsetSelectsColumns) {
  const auto platform = Platform::make_setting(Setting::kA, 2);
  PseudoGnnEmbedder embedder;
  DatasetConfig cfg;
  cfg.num_tasks = 12;
  const auto data = build_dataset(platform, embedder, cfg);
  const auto sub = data.subset({3, 7});
  EXPECT_EQ(sub.num_tasks(), 2u);
  EXPECT_DOUBLE_EQ(sub.times(1, 0), data.times(1, 3));
  EXPECT_DOUBLE_EQ(sub.features(1, 2), data.features(7, 2));
}

TEST(Dataset, SubsetOutOfRangeThrows) {
  const auto platform = Platform::make_setting(Setting::kA, 2);
  PseudoGnnEmbedder embedder;
  DatasetConfig cfg;
  cfg.num_tasks = 5;
  const auto data = build_dataset(platform, embedder, cfg);
  EXPECT_THROW(data.subset({99}), ContractError);
}

TEST(Dataset, SplitPartitionsWithoutOverlap) {
  const auto platform = Platform::make_setting(Setting::kA, 2);
  PseudoGnnEmbedder embedder;
  DatasetConfig cfg;
  cfg.num_tasks = 30;
  const auto data = build_dataset(platform, embedder, cfg);
  Rng rng(19);
  const auto [train, test] = split_dataset(data, 0.7, rng);
  EXPECT_EQ(train.num_tasks() + test.num_tasks(), 30u);
  EXPECT_EQ(train.num_tasks(), 21u);
}

// -------------------------------------------------------------- failure --

TEST(Failure, EmpiricalReliabilityConvergesToTruth) {
  Cluster c(cluster_catalog()[0]);
  const auto t = make_task();
  Rng rng(23);
  const double est = empirical_reliability(c, t, rng, 50000);
  EXPECT_NEAR(est, c.reliability(t), 0.02);
}

TEST(Failure, ExecuteAssignmentAccounting) {
  const auto platform = Platform::make_setting(Setting::kA, 3);
  TaskGenerator gen(Rng{29});
  const auto tasks = gen.sample_batch(6);
  const std::vector<int> assignment = {0, 1, 2, 0, 1, 2};
  Rng rng(31);
  const auto outcome = execute_assignment(platform, tasks, assignment, rng);
  EXPECT_EQ(outcome.succeeded.size(), 6u);
  EXPECT_GT(outcome.makespan_hours, 0.0);
  for (int attempts : outcome.attempts) {
    EXPECT_GE(attempts, 1);
    EXPECT_LE(attempts, 3);
  }
  EXPECT_GE(outcome.empirical_success_rate, 0.0);
  EXPECT_LE(outcome.empirical_success_rate, 1.0);
}

TEST(Failure, BadAssignmentRejected) {
  const auto platform = Platform::make_setting(Setting::kA, 2);
  TaskGenerator gen(Rng{37});
  const auto tasks = gen.sample_batch(2);
  Rng rng(1);
  EXPECT_THROW(execute_assignment(platform, tasks, {0, 5}, rng),
               ContractError);
  EXPECT_THROW(execute_assignment(platform, tasks, {0}, rng), ContractError);
}

TEST(Failure, RetriesIncreaseSuccess) {
  // With up to 3 attempts, eventual completion rate exceeds first-attempt
  // success on a flaky cluster.
  ClusterProfile p;
  p.reliability_base = 0.0;  // ~0.35 after comm penalty
  Cluster c(p);
  const auto platform = Platform(std::vector<Cluster>{c});
  TaskGenerator gen(Rng{41});
  const auto tasks = gen.sample_batch(300);
  const std::vector<int> assignment(tasks.size(), 0);
  Rng rng(43);
  const auto outcome =
      execute_assignment(platform, tasks, assignment, rng, 3);
  int completed = 0;
  int first_try = 0;
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    first_try += outcome.succeeded[j] ? 1 : 0;
    completed += outcome.attempts[j] < 3 || outcome.succeeded[j] ? 1 : 0;
  }
  EXPECT_GT(completed, first_try);
}

}  // namespace
}  // namespace mfcp::sim
