// Tests for the matching objectives: hard evaluation functions, the
// smoothed makespan (Theorem 1 properties), barrier and penalty objectives
// — every analytic gradient is validated against finite differences.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "diff/finite_diff.hpp"
#include "diff/kkt.hpp"
#include "matching/barrier.hpp"
#include "matching/objective.hpp"
#include "matching/entropy.hpp"
#include "matching/penalty.hpp"
#include "matching/problem.hpp"
#include "matching/solver_mirror.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace mfcp::matching {
namespace {

Matrix random_times(std::size_t m, std::size_t n, Rng& rng) {
  Matrix t(m, n);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = rng.uniform(0.2, 3.0);
  }
  return t;
}

Matrix random_reliability(std::size_t m, std::size_t n, Rng& rng) {
  Matrix a(m, n);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = rng.uniform(0.5, 0.99);
  }
  return a;
}

/// Random strictly-interior point on the product of simplices.
Matrix random_interior(std::size_t m, std::size_t n, Rng& rng) {
  Matrix x(m, n);
  for (std::size_t j = 0; j < n; ++j) {
    double total = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      x(i, j) = rng.uniform(0.1, 1.0);
      total += x(i, j);
    }
    for (std::size_t i = 0; i < m; ++i) {
      x(i, j) /= total;
    }
  }
  return x;
}

MatchingProblem small_problem(std::uint64_t seed = 1, std::size_t m = 3,
                              std::size_t n = 5) {
  Rng rng(seed);
  MatchingProblem p;
  p.times = random_times(m, n, rng);
  p.reliability = random_reliability(m, n, rng);
  p.gamma = 0.6;
  return p;
}

// -------------------------------------------------------------- problem --

TEST(Problem, ValidateAcceptsWellFormed) {
  EXPECT_NO_THROW(small_problem().validate());
}

TEST(Problem, ValidateRejectsNonPositiveTimes) {
  auto p = small_problem();
  p.times(0, 0) = 0.0;
  EXPECT_THROW(p.validate(), ContractError);
}

TEST(Problem, ValidateRejectsBadReliability) {
  auto p = small_problem();
  p.reliability(1, 1) = 1.5;
  EXPECT_THROW(p.validate(), ContractError);
}

TEST(Problem, ValidateRejectsShapeMismatch) {
  auto p = small_problem();
  p.reliability = Matrix(2, 5, 0.9);
  EXPECT_THROW(p.validate(), ContractError);
}

TEST(Problem, WithMetricsSwapsMatrices) {
  const auto p = small_problem();
  const Matrix t2(3, 5, 1.0);
  const Matrix a2(3, 5, 0.9);
  const auto q = p.with_metrics(t2, a2);
  EXPECT_TRUE(approx_equal(q.times, t2));
  EXPECT_DOUBLE_EQ(q.gamma, p.gamma);
}

TEST(Problem, AssignmentMatrixRoundTrip) {
  const Assignment a = {0, 2, 1, 2, 0};
  const Matrix x = assignment_to_matrix(a, 3);
  EXPECT_EQ(matrix_to_assignment(x), a);
  for (std::size_t j = 0; j < 5; ++j) {
    double col = 0.0;
    for (std::size_t i = 0; i < 3; ++i) {
      col += x(i, j);
    }
    EXPECT_DOUBLE_EQ(col, 1.0);
  }
}

TEST(Problem, AssignmentMatrixRejectsBadCluster) {
  EXPECT_THROW(assignment_to_matrix({0, 7}, 3), ContractError);
}

TEST(Problem, ClusterLoadsSumAssignedTimes) {
  const auto p = small_problem();
  const Assignment a = {0, 0, 1, 2, 1};
  const auto loads = cluster_loads(a, p.times);
  EXPECT_NEAR(loads[0], p.times(0, 0) + p.times(0, 1), 1e-12);
  EXPECT_NEAR(loads[1], p.times(1, 2) + p.times(1, 4), 1e-12);
  EXPECT_NEAR(loads[2], p.times(2, 3), 1e-12);
}

// ------------------------------------------------------ hard objectives --

TEST(Objective, MakespanOfAssignmentIsMaxLoad) {
  const auto p = small_problem();
  const Assignment a = {0, 0, 1, 2, 1};
  const auto loads = cluster_loads(a, p.times);
  const double expected = std::max({loads[0], loads[1], loads[2]});
  EXPECT_NEAR(makespan(a, p.times, p.speedup), expected, 1e-12);
}

TEST(Objective, MakespanWithSpeedupScalesLoads) {
  const auto p = small_problem();
  const auto zeta = sim::SpeedupCurve::exponential_decay(0.6, 0.5);
  const Assignment all_one_cluster = {0, 0, 0, 0, 0};
  const double exclusive =
      makespan(all_one_cluster, p.times, sim::SpeedupCurve::exclusive());
  const double shared = makespan(all_one_cluster, p.times, zeta);
  EXPECT_LT(shared, exclusive);
  EXPECT_NEAR(shared, zeta.value(5.0) * exclusive, 1e-12);
}

TEST(Objective, LinearCostIsSumOfLoads) {
  const auto p = small_problem();
  const Assignment a = {1, 1, 1, 1, 1};
  const Matrix x = assignment_to_matrix(a, 3);
  double sum_row1 = 0.0;
  for (std::size_t j = 0; j < 5; ++j) {
    sum_row1 += p.times(1, j);
  }
  EXPECT_NEAR(linear_cost(x, p.times, p.speedup), sum_row1, 1e-12);
}

TEST(Objective, AverageReliabilityOfAssignment) {
  const auto p = small_problem();
  const Assignment a = {0, 1, 2, 0, 1};
  double expected = 0.0;
  for (std::size_t j = 0; j < 5; ++j) {
    expected += p.reliability(static_cast<std::size_t>(a[j]), j);
  }
  expected /= 5.0;
  EXPECT_NEAR(average_reliability(a, p.reliability), expected, 1e-12);
}

TEST(Objective, FeasibilityThreshold) {
  auto p = small_problem();
  const Assignment a = {0, 0, 0, 0, 0};
  const double avg = average_reliability(a, p.reliability);
  p.gamma = avg - 0.01;
  EXPECT_TRUE(is_feasible(a, p));
  p.gamma = avg + 0.01;
  EXPECT_FALSE(is_feasible(a, p));
}

TEST(Objective, UtilizationOneWhenPerfectlyBalanced) {
  Matrix t(2, 2, 1.0);
  const Assignment a = {0, 1};
  EXPECT_NEAR(utilization(a, t, sim::SpeedupCurve::exclusive()), 1.0, 1e-12);
}

TEST(Objective, UtilizationDropsWhenConcentrated) {
  Matrix t(3, 3, 1.0);
  const Assignment concentrated = {0, 0, 0};
  EXPECT_NEAR(utilization(concentrated, t, sim::SpeedupCurve::exclusive()),
              1.0 / 3.0, 1e-12);
}

// ------------------------------------------------------- smoothed (f̃) --

TEST(Smoothed, BoundsHardMakespan) {
  // Theorem 1: f <= f̃ <= f + log(M)/beta, for any X.
  const auto p = small_problem(7);
  Rng rng(8);
  for (double beta : {1.0, 5.0, 20.0, 100.0}) {
    SmoothedMakespan f(p.times, beta);
    for (int rep = 0; rep < 5; ++rep) {
      const Matrix x = random_interior(3, 5, rng);
      const double hard = makespan(x, p.times, p.speedup);
      const double smooth = f.value(x);
      EXPECT_GE(smooth, hard - 1e-10);
      EXPECT_LE(smooth, hard + std::log(3.0) / beta + 1e-10);
    }
  }
}

TEST(Smoothed, ConvergesToHardMakespanAsBetaGrows) {
  const auto p = small_problem(9);
  Rng rng(10);
  const Matrix x = random_interior(3, 5, rng);
  const double hard = makespan(x, p.times, p.speedup);
  double prev_gap = 1e9;
  for (double beta : {1.0, 10.0, 100.0, 1000.0}) {
    const double gap = SmoothedMakespan(p.times, beta).value(x) - hard;
    EXPECT_LE(gap, prev_gap + 1e-12);
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 1e-3);
}

TEST(Smoothed, GradientMatchesFiniteDifference) {
  const auto p = small_problem(11);
  SmoothedMakespan f(p.times, 8.0);
  Rng rng(12);
  const Matrix x = random_interior(3, 5, rng);
  const Matrix analytic = f.grad_x(x);
  const Matrix fd = diff::fd_gradient(
      [&f](const Matrix& xx) { return f.value(xx); }, x);
  EXPECT_TRUE(approx_equal(analytic, fd, 1e-5));
}

TEST(Smoothed, GradientWithSpeedupMatchesFiniteDifference) {
  const auto p = small_problem(13);
  SmoothedMakespan f(p.times, 8.0,
                     sim::SpeedupCurve::exponential_decay(0.6, 0.5));
  Rng rng(14);
  const Matrix x = random_interior(3, 5, rng);
  // Scale columns up so per-cluster counts exceed 1 (active zeta region).
  Matrix x2 = x;
  const Matrix analytic = f.grad_x(x2);
  const Matrix fd = diff::fd_gradient(
      [&f](const Matrix& xx) { return f.value(xx); }, x2);
  EXPECT_TRUE(approx_equal(analytic, fd, 1e-5));
}

TEST(Smoothed, ClusterWeightsAreSoftmax) {
  const auto p = small_problem(15);
  SmoothedMakespan f(p.times, 10.0);
  Rng rng(16);
  const Matrix x = random_interior(3, 5, rng);
  const auto w = f.cluster_weights(x);
  double total = 0.0;
  for (double wi : w) {
    EXPECT_GT(wi, 0.0);
    total += wi;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  // The busiest cluster carries the largest weight.
  const auto busy = f.busy_times(x);
  std::size_t argmax_busy = 0;
  std::size_t argmax_w = 0;
  for (std::size_t i = 1; i < 3; ++i) {
    if (busy[i] > busy[argmax_busy]) argmax_busy = i;
    if (w[i] > w[argmax_w]) argmax_w = i;
  }
  EXPECT_EQ(argmax_busy, argmax_w);
}

TEST(Smoothed, HessiansMatchFiniteDifferenceOfGradient) {
  const auto p = small_problem(17, 2, 3);
  SmoothedMakespan f(p.times, 6.0);
  Rng rng(18);
  const Matrix x = random_interior(2, 3, rng);
  const Matrix hxx = f.hess_xx_exclusive(x);
  const double h = 1e-6;
  for (std::size_t s = 0; s < x.size(); ++s) {
    Matrix xp = x;
    Matrix xm = x;
    xp[s] += h;
    xm[s] -= h;
    const Matrix gp = f.grad_x(xp);
    const Matrix gm = f.grad_x(xm);
    for (std::size_t r = 0; r < x.size(); ++r) {
      EXPECT_NEAR(hxx(r, s), (gp[r] - gm[r]) / (2.0 * h), 1e-4);
    }
  }
}

TEST(Smoothed, CrossHessianXtMatchesFiniteDifference) {
  const auto p = small_problem(19, 2, 3);
  Rng rng(20);
  const Matrix x = random_interior(2, 3, rng);
  SmoothedMakespan f(p.times, 6.0);
  const Matrix hxt = f.hess_xt_exclusive(x);
  const double h = 1e-6;
  for (std::size_t s = 0; s < p.times.size(); ++s) {
    Matrix tp = p.times;
    Matrix tm = p.times;
    tp[s] += h;
    tm[s] -= h;
    const Matrix gp = SmoothedMakespan(tp, 6.0).grad_x(x);
    const Matrix gm = SmoothedMakespan(tm, 6.0).grad_x(x);
    for (std::size_t r = 0; r < x.size(); ++r) {
      EXPECT_NEAR(hxt(r, s), (gp[r] - gm[r]) / (2.0 * h), 1e-4);
    }
  }
}

TEST(Smoothed, HessianRequiresExclusiveExecution) {
  const auto p = small_problem(21);
  SmoothedMakespan f(p.times, 6.0,
                     sim::SpeedupCurve::exponential_decay(0.6, 0.5));
  EXPECT_THROW(f.hess_xx_exclusive(Matrix(3, 5, 0.2)), ContractError);
}

// -------------------------------------------------------------- barrier --

TEST(Barrier, ValueAddsLogBarrierToSmoothedCost) {
  const auto p = small_problem(23);
  BarrierConfig cfg;
  cfg.beta = 10.0;
  cfg.lambda = 0.1;
  BarrierObjective f(p, cfg);
  Rng rng(24);
  const Matrix x = random_interior(3, 5, rng);
  const double slack = f.reliability_slack(x);
  ASSERT_GT(slack, cfg.slack_epsilon);
  const double expected =
      SmoothedMakespan(p.times, cfg.beta).value(x) -
      cfg.lambda * std::log(slack);
  EXPECT_NEAR(f.value(x), expected, 1e-12);
}

TEST(Barrier, GradientMatchesFiniteDifference) {
  const auto p = small_problem(25);
  BarrierObjective f(p);
  Rng rng(26);
  const Matrix x = random_interior(3, 5, rng);
  const Matrix fd = diff::fd_gradient(
      [&f](const Matrix& xx) { return f.value(xx); }, x);
  EXPECT_TRUE(approx_equal(f.grad_x(x), fd, 1e-5));
}

TEST(Barrier, FiniteBelowDomainBoundary) {
  // An infeasible X must produce finite value and gradient (linear
  // extension region) so solvers can recover.
  auto p = small_problem(27);
  p.gamma = 0.999;  // unattainable
  BarrierObjective f(p);
  const Matrix x(3, 5, 1.0 / 3.0);
  EXPECT_TRUE(std::isfinite(f.value(x)));
  const Matrix g = f.grad_x(x);
  for (std::size_t i = 0; i < g.size(); ++i) {
    EXPECT_TRUE(std::isfinite(g[i]));
  }
}

TEST(Barrier, GradientPushesTowardReliableClustersNearBoundary) {
  // Close to the boundary, the barrier dominates and the gradient is more
  // negative for high-reliability entries (growth direction).
  auto p = small_problem(29);
  BarrierObjective f_loose(p.with_metrics(p.times, p.reliability), {});
  Rng rng(30);
  const Matrix x = random_interior(3, 5, rng);
  auto tight = p;
  tight.gamma = average_reliability(x, p.reliability) - 0.005;
  BarrierObjective f_tight(tight, {});
  // Barrier contribution per entry is -lambda a_ij / (N slack): the entry
  // with the max reliability receives the strongest pull.
  const Matrix g = f_tight.grad_x(x);
  const Matrix g_smooth = SmoothedMakespan(p.times, 20.0).grad_x(x);
  std::size_t max_a = 0;
  for (std::size_t i = 1; i < p.reliability.size(); ++i) {
    if (p.reliability[i] > p.reliability[max_a]) {
      max_a = i;
    }
  }
  EXPECT_LT(g[max_a] - g_smooth[max_a], 0.0);
}

TEST(Barrier, HessiansMatchFiniteDifferences) {
  const auto p = small_problem(31, 2, 3);
  BarrierConfig cfg;
  cfg.beta = 5.0;
  cfg.lambda = 0.2;
  BarrierObjective f(p, cfg);
  Rng rng(32);
  const Matrix x = random_interior(2, 3, rng);
  const double h = 1e-6;

  const Matrix hxx = f.hess_xx(x);
  for (std::size_t s = 0; s < x.size(); ++s) {
    Matrix xp = x;
    Matrix xm = x;
    xp[s] += h;
    xm[s] -= h;
    const Matrix gp = f.grad_x(xp);
    const Matrix gm = f.grad_x(xm);
    for (std::size_t r = 0; r < x.size(); ++r) {
      EXPECT_NEAR(hxx(r, s), (gp[r] - gm[r]) / (2.0 * h), 1e-4)
          << "hxx(" << r << "," << s << ")";
    }
  }

  const Matrix hxa = f.hess_xa(x);
  for (std::size_t s = 0; s < x.size(); ++s) {
    Matrix ap = p.reliability;
    Matrix am = p.reliability;
    ap[s] += h;
    am[s] -= h;
    const Matrix gp =
        BarrierObjective(p.times, ap, p.gamma, cfg).grad_x(x);
    const Matrix gm =
        BarrierObjective(p.times, am, p.gamma, cfg).grad_x(x);
    for (std::size_t r = 0; r < x.size(); ++r) {
      EXPECT_NEAR(hxa(r, s), (gp[r] - gm[r]) / (2.0 * h), 1e-4)
          << "hxa(" << r << "," << s << ")";
    }
  }

  const Matrix hxt = f.hess_xt(x);
  for (std::size_t s = 0; s < x.size(); ++s) {
    Matrix tp = p.times;
    Matrix tm = p.times;
    tp[s] += h;
    tm[s] -= h;
    const Matrix gp =
        BarrierObjective(tp, p.reliability, p.gamma, cfg).grad_x(x);
    const Matrix gm =
        BarrierObjective(tm, p.reliability, p.gamma, cfg).grad_x(x);
    for (std::size_t r = 0; r < x.size(); ++r) {
      EXPECT_NEAR(hxt(r, s), (gp[r] - gm[r]) / (2.0 * h), 1e-4)
          << "hxt(" << r << "," << s << ")";
    }
  }
}

TEST(Barrier, SmallerLambdaTightensApproximation) {
  // As lambda -> 0 the barrier objective approaches the smoothed cost on
  // the strict interior of the feasible region.
  const auto p = small_problem(33);
  Rng rng(34);
  const Matrix x = random_interior(3, 5, rng);
  const double base = SmoothedMakespan(p.times, 20.0).value(x);
  double prev_gap = 1e18;
  for (double lambda : {1.0, 0.1, 0.01, 0.001}) {
    BarrierConfig cfg;
    cfg.beta = 20.0;  // match the reference smoothed cost above
    cfg.lambda = lambda;
    const double gap = std::abs(BarrierObjective(p, cfg).value(x) - base);
    EXPECT_LE(gap, prev_gap + 1e-12);
    prev_gap = gap;
  }
  EXPECT_LT(prev_gap, 0.01);
}

// -------------------------------------------------------------- penalty --

TEST(Penalty, ZeroWhenFeasible) {
  const auto p = small_problem(35);
  Rng rng(36);
  const Matrix x = random_interior(3, 5, rng);
  auto loose = p;
  loose.gamma = 0.0;
  HardPenaltyObjective f(loose, 10.0, 5.0);
  EXPECT_NEAR(f.value(x), SmoothedMakespan(p.times, 10.0).value(x), 1e-12);
}

TEST(Penalty, ActiveWhenViolated) {
  auto p = small_problem(37);
  p.gamma = 0.9999;
  Rng rng(38);
  const Matrix x = random_interior(3, 5, rng);
  HardPenaltyObjective f(p, 10.0, 5.0);
  const double violation = p.gamma - average_reliability(x, p.reliability);
  ASSERT_GT(violation, 0.0);
  EXPECT_NEAR(f.value(x),
              SmoothedMakespan(p.times, 10.0).value(x) + 5.0 * violation,
              1e-12);
}

TEST(Penalty, GradientMatchesFiniteDifferenceBothRegimes) {
  Rng rng(39);
  for (double gamma : {0.0, 0.9999}) {
    auto p = small_problem(40);
    p.gamma = gamma;
    HardPenaltyObjective f(p, 8.0, 3.0);
    const Matrix x = random_interior(3, 5, rng);
    const Matrix fd = diff::fd_gradient(
        [&f](const Matrix& xx) { return f.value(xx); }, x);
    EXPECT_TRUE(approx_equal(f.grad_x(x), fd, 1e-5)) << "gamma=" << gamma;
  }
}

TEST(Penalty, HessXaVanishesWhenFeasible) {
  // The §3.2 pathology the ablation demonstrates: no reliability gradient
  // information flows once the constraint is satisfied.
  auto p = small_problem(41);
  p.gamma = 0.0;
  HardPenaltyObjective f(p, 8.0, 3.0);
  Rng rng(42);
  const Matrix x = random_interior(3, 5, rng);
  const Matrix hxa = f.hess_xa(x);
  for (std::size_t i = 0; i < hxa.size(); ++i) {
    EXPECT_EQ(hxa[i], 0.0);
  }
}

TEST(LinearCost, GradientMatchesFiniteDifference) {
  const auto p = small_problem(43);
  LinearCostBarrierObjective f(p, 0.1);
  Rng rng(44);
  const Matrix x = random_interior(3, 5, rng);
  const Matrix fd = diff::fd_gradient(
      [&f](const Matrix& xx) { return f.value(xx); }, x);
  EXPECT_TRUE(approx_equal(f.grad_x(x), fd, 1e-5));
}

TEST(LinearCost, IndifferentToLoadBalance) {
  // The ablation-(1) failure mode: moving load between clusters does not
  // change the linear cost when per-task times are equal.
  Matrix t(2, 4, 1.0);
  Matrix a(2, 4, 0.9);
  LinearCostBarrierObjective f(t, a, 0.5, 0.1);
  const Matrix balanced = assignment_to_matrix({0, 1, 0, 1}, 2);
  const Matrix lopsided = assignment_to_matrix({0, 0, 0, 0}, 2);
  EXPECT_NEAR(f.value(balanced), f.value(lopsided), 1e-12);
  // ...whereas the smoothed max strongly prefers balance.
  SmoothedMakespan sm(t, 10.0);
  EXPECT_LT(sm.value(balanced), sm.value(lopsided) - 0.5);
}


// -------------------------------------------------------------- entropy --

TEST(Entropy, ValueAddsXLogX) {
  const auto p = small_problem(50);
  auto base = std::make_unique<BarrierObjective>(p);
  const double base_value = base->value(Matrix(3, 5, 1.0 / 3.0));
  EntropicObjective f(std::move(base), 0.5);
  const Matrix x(3, 5, 1.0 / 3.0);
  // 15 entries of (1/3) log(1/3).
  const double expected =
      base_value + 0.5 * 15.0 * (1.0 / 3.0) * std::log(1.0 / 3.0);
  EXPECT_NEAR(f.value(x), expected, 1e-12);
}

TEST(Entropy, GradientMatchesFiniteDifference) {
  const auto p = small_problem(51);
  EntropicObjective f(std::make_unique<BarrierObjective>(p), 0.2);
  Rng rng(52);
  const Matrix x = random_interior(3, 5, rng);
  const Matrix fd = diff::fd_gradient(
      [&f](const Matrix& xx) { return f.value(xx); }, x);
  EXPECT_TRUE(approx_equal(f.grad_x(x), fd, 1e-5));
}

TEST(Entropy, KktVariantHessianMatchesFiniteDifference) {
  const auto p = small_problem(53, 2, 3);
  EntropicKktObjective f(std::make_unique<BarrierObjective>(p), 0.2);
  Rng rng(54);
  const Matrix x = random_interior(2, 3, rng);
  const Matrix hxx = f.hess_xx(x);
  const double h = 1e-6;
  for (std::size_t s = 0; s < x.size(); ++s) {
    Matrix xp = x;
    Matrix xm = x;
    xp[s] += h;
    xm[s] -= h;
    const Matrix gp = f.grad_x(xp);
    const Matrix gm = f.grad_x(xm);
    for (std::size_t r = 0; r < x.size(); ++r) {
      EXPECT_NEAR(hxx(r, s), (gp[r] - gm[r]) / (2.0 * h), 2e-4);
    }
  }
}

TEST(Entropy, CrossBlocksUntouched) {
  const auto p = small_problem(55, 2, 3);
  BarrierObjective bare(p);
  EntropicKktObjective wrapped(std::make_unique<BarrierObjective>(p), 0.3);
  Rng rng(56);
  const Matrix x = random_interior(2, 3, rng);
  EXPECT_TRUE(approx_equal(wrapped.hess_xt(x), bare.hess_xt(x), 1e-12));
  EXPECT_TRUE(approx_equal(wrapped.hess_xa(x), bare.hess_xa(x), 1e-12));
}

TEST(Entropy, KeepsOptimumStrictlyInterior) {
  // Without entropy this instance commits every task to one cluster
  // (vertex solution, zero sensitivity); with entropy all entries stay
  // bounded away from the boundary.
  MatchingProblem p;
  p.times = Matrix{{0.5, 0.6, 0.4}, {2.0, 2.4, 1.9}};  // cluster 0 dominant
  p.reliability = Matrix(2, 3, 0.9);
  p.gamma = 0.5;
  EntropicObjective f(std::make_unique<BarrierObjective>(p), 0.1);
  const auto r = solve_mirror(f);
  for (std::size_t i = 0; i < r.x.size(); ++i) {
    EXPECT_GT(r.x[i], 1e-6);
    EXPECT_LT(r.x[i], 1.0 - 1e-6);
  }
}

TEST(Entropy, RestoresNonZeroKktSensitivity) {
  // The degeneracy that motivated the module: at a (near-)vertex optimum
  // the bare KKT sensitivities vanish; the entropic ones do not.
  MatchingProblem p;
  p.times = Matrix{{0.5, 0.6, 0.4}, {2.0, 2.4, 1.9}};
  p.reliability = Matrix(2, 3, 0.9);
  p.gamma = 0.5;
  EntropicKktObjective f(std::make_unique<BarrierObjective>(p), 0.1);
  MirrorSolverConfig cfg;
  cfg.max_iterations = 5000;
  const auto r = solve_mirror(f, cfg);
  // A constant upstream would contract to zero regardless (columns of X
  // always sum to one), so use a varied one.
  Matrix upstream(2, 3);
  for (std::size_t i = 0; i < upstream.size(); ++i) {
    upstream[i] = static_cast<double>(i + 1);
  }
  const auto vjp = diff::kkt_vjp(f, r.x, upstream);
  double norm = 0.0;
  for (std::size_t i = 0; i < vjp.grad_t.size(); ++i) {
    norm += vjp.grad_t[i] * vjp.grad_t[i];
  }
  EXPECT_GT(std::sqrt(norm), 1e-4);
}

TEST(Entropy, RejectsBadArguments) {
  const auto p = small_problem(57);
  EXPECT_THROW(EntropicObjective(nullptr, 0.1), ContractError);
  EXPECT_THROW(
      EntropicObjective(std::make_unique<BarrierObjective>(p), 0.0),
      ContractError);
}

// Property sweep: all three objectives' gradients vs FD on random sizes.
class ObjectiveGradientProperty : public ::testing::TestWithParam<int> {};

TEST_P(ObjectiveGradientProperty, AllObjectiveGradientsMatchFd) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 6151 + 5);
  const std::size_t m = 2 + rng.uniform_index(3);
  const std::size_t n = 2 + rng.uniform_index(5);
  MatchingProblem p;
  p.times = random_times(m, n, rng);
  p.reliability = random_reliability(m, n, rng);
  p.gamma = rng.uniform(0.3, 0.7);
  const Matrix x = random_interior(m, n, rng);

  const BarrierObjective barrier(p);
  const HardPenaltyObjective penalty(p, 10.0, 2.0);
  const LinearCostBarrierObjective linear(p, 0.05);
  for (const ContinuousObjective* f :
       {static_cast<const ContinuousObjective*>(&barrier),
        static_cast<const ContinuousObjective*>(&penalty),
        static_cast<const ContinuousObjective*>(&linear)}) {
    const Matrix fd = diff::fd_gradient(
        [f](const Matrix& xx) { return f->value(xx); }, x);
    EXPECT_TRUE(approx_equal(f->grad_x(x), fd, 2e-5));
  }
}

INSTANTIATE_TEST_SUITE_P(RandomProblems, ObjectiveGradientProperty,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace mfcp::matching
