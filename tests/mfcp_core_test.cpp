// Tests for the core MFCP module: predictors, regret evaluation, metrics,
// TAM/UCB baselines, and the TSM trainer.
#include <gtest/gtest.h>

#include <cmath>

#include "mfcp/baseline_tam.hpp"
#include "mfcp/baseline_ucb.hpp"
#include "mfcp/experiment.hpp"
#include "mfcp/metrics.hpp"
#include "mfcp/predictor.hpp"
#include "mfcp/regret.hpp"
#include "mfcp/trainer_tsm.hpp"
#include "nn/loss.hpp"
#include "support/check.hpp"

namespace mfcp::core {
namespace {

sim::Dataset tiny_dataset(std::size_t tasks = 40, std::size_t clusters = 3) {
  const auto platform =
      sim::Platform::make_setting(sim::Setting::kA, clusters);
  sim::PseudoGnnEmbedder embedder;
  sim::DatasetConfig cfg;
  cfg.num_tasks = tasks;
  return build_dataset(platform, embedder, cfg);
}

// ------------------------------------------------------------- predictor --

TEST(Predictor, TimeHeadIsPositive) {
  Rng rng(1);
  PredictorConfig cfg;
  ClusterPredictor pred(cfg, rng);
  Matrix features(6, cfg.feature_dim, 0.3);
  const Matrix row = pred.predict_time_row(features);
  ASSERT_EQ(row.rows(), 1u);
  ASSERT_EQ(row.cols(), 6u);
  for (std::size_t j = 0; j < 6; ++j) {
    EXPECT_GT(row[j], 0.0);
  }
}

TEST(Predictor, ReliabilityHeadInUnitInterval) {
  Rng rng(2);
  PredictorConfig cfg;
  ClusterPredictor pred(cfg, rng);
  Matrix features(6, cfg.feature_dim, -0.7);
  const Matrix row = pred.predict_reliability_row(features);
  for (std::size_t j = 0; j < 6; ++j) {
    EXPECT_GT(row[j], 0.0);
    EXPECT_LT(row[j], 1.0);
  }
}

TEST(Predictor, PlatformPredictorBuildsMatrices) {
  Rng rng(3);
  PredictorConfig cfg;
  PlatformPredictor pred(4, cfg, rng);
  EXPECT_EQ(pred.num_clusters(), 4u);
  Matrix features(5, cfg.feature_dim, 0.1);
  const Matrix t = pred.predict_time_matrix(features);
  const Matrix a = pred.predict_reliability_matrix(features);
  EXPECT_EQ(t.rows(), 4u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(a.rows(), 4u);
  EXPECT_EQ(a.cols(), 5u);
}

TEST(Predictor, ClustersAreIndependentlyInitialized) {
  Rng rng(4);
  PredictorConfig cfg;
  PlatformPredictor pred(2, cfg, rng);
  Matrix features(3, cfg.feature_dim, 0.5);
  const Matrix t = pred.predict_time_matrix(features);
  EXPECT_NE(t(0, 0), t(1, 0));
}

TEST(Predictor, MatrixRowMatchesClusterRow) {
  Rng rng(5);
  PredictorConfig cfg;
  PlatformPredictor pred(3, cfg, rng);
  Matrix features(4, cfg.feature_dim, 0.2);
  const Matrix t = pred.predict_time_matrix(features);
  const Matrix row1 = pred.cluster(1).predict_time_row(features);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(t(1, j), row1[j]);
  }
}

// ---------------------------------------------------------------- regret --

TEST(Regret, PerfectPredictionsGiveNearZeroRegret) {
  const auto data = tiny_dataset(12);
  matching::MatchingProblem truth;
  const auto sub = data.subset({0, 1, 2, 3, 4});
  truth.times = sub.true_times;
  truth.reliability = sub.true_reliability;
  truth.gamma = 0.6;
  EvaluationConfig cfg;
  const auto outcome =
      evaluate_predictions(truth, truth.times, truth.reliability, cfg);
  EXPECT_TRUE(outcome.feasible);
  EXPECT_NEAR(outcome.regret, 0.0, 0.02);
}

TEST(Regret, RegretIsGapDividedByTaskCount) {
  const auto data = tiny_dataset(10);
  matching::MatchingProblem truth;
  const auto sub = data.subset({1, 3, 5, 7});
  truth.times = sub.true_times;
  truth.reliability = sub.true_reliability;
  truth.gamma = 0.5;
  const matching::Assignment fixed = {0, 0, 0, 0};
  const auto outcome = evaluate_assignment(truth, fixed);
  EXPECT_NEAR(outcome.regret,
              (outcome.makespan - outcome.optimal_makespan) / 4.0, 1e-12);
  EXPECT_GE(outcome.makespan, outcome.optimal_makespan - 1e-12);
}

TEST(Regret, DeployRespectsPredictedReliability) {
  // Predictions say cluster 0 is unreliable -> deploy avoids it even if
  // cluster 0 is fast.
  matching::MatchingProblem predicted;
  predicted.times = Matrix{{0.1, 0.1, 0.1}, {1.0, 1.0, 1.0}};
  predicted.reliability = Matrix{{0.3, 0.3, 0.3}, {0.95, 0.95, 0.95}};
  predicted.gamma = 0.8;
  EvaluationConfig cfg;
  const auto assignment = deploy_matching(predicted, cfg);
  for (int c : assignment) {
    EXPECT_EQ(c, 1);
  }
}

TEST(Regret, SurrogateRegretZeroAtTrueOptimum) {
  const auto data = tiny_dataset(8);
  const auto sub = data.subset({0, 1, 2});
  matching::BarrierObjective obj(sub.true_times, sub.true_reliability, 0.5,
                                 {});
  const auto x = matching::solve_mirror(obj).x;
  EXPECT_NEAR(surrogate_regret(obj, x, x), 0.0, 1e-12);
  const Matrix g = surrogate_upstream_gradient(obj, x);
  EXPECT_EQ(g.rows(), 3u);
  EXPECT_EQ(g.cols(), 3u);
}

// --------------------------------------------------------------- metrics --

TEST(Metrics, AccumulatesMeanAndStd) {
  MetricsAccumulator acc;
  MatchOutcome o;
  o.regret = 1.0;
  o.reliability = 0.9;
  o.utilization = 0.5;
  o.feasible = true;
  acc.add(o);
  o.regret = 3.0;
  o.feasible = false;
  acc.add(o);
  EXPECT_EQ(acc.rounds(), 2u);
  EXPECT_DOUBLE_EQ(acc.regret().mean(), 2.0);
  EXPECT_DOUBLE_EQ(acc.feasible_fraction(), 0.5);
  EXPECT_NE(acc.summary().find("regret"), std::string::npos);
}

// ------------------------------------------------------------------- TAM --

TEST(Tam, MeansMatchHandComputation) {
  const auto data = tiny_dataset(20);
  const auto model = fit_tam(data);
  ASSERT_EQ(model.mean_time.size(), 3u);
  double expect = 0.0;
  for (std::size_t j = 0; j < 20; ++j) {
    expect += data.times(1, j);
  }
  expect /= 20.0;
  EXPECT_NEAR(model.mean_time[1], expect, 1e-12);
}

TEST(Tam, MatricesAreRowConstant) {
  const auto data = tiny_dataset(15);
  const auto model = fit_tam(data);
  const Matrix t = tam_time_matrix(model, 7);
  const Matrix a = tam_reliability_matrix(model, 7);
  EXPECT_EQ(t.cols(), 7u);
  for (std::size_t i = 0; i < 3; ++i) {
    for (std::size_t j = 1; j < 7; ++j) {
      EXPECT_DOUBLE_EQ(t(i, j), t(i, 0));
      EXPECT_DOUBLE_EQ(a(i, j), a(i, 0));
    }
  }
}

// ------------------------------------------------------------------- TSM --

TEST(Tsm, ReducesTrainingLoss) {
  const auto data = tiny_dataset(60);
  Rng rng(6);
  PredictorConfig pcfg;
  PlatformPredictor pred(3, pcfg, rng);
  TsmConfig cfg;
  cfg.epochs = 150;
  const auto result = train_tsm(pred, data, cfg);
  ASSERT_EQ(result.time_loss_history.size(), 150u);
  EXPECT_LT(result.time_loss_history.back(),
            0.5 * result.time_loss_history.front());
  EXPECT_LT(result.rel_loss_history.back(),
            result.rel_loss_history.front());
}

TEST(Tsm, LearnsBetterThanUntrainedBaseline) {
  const auto data = tiny_dataset(80);
  Rng rng(7);
  PredictorConfig pcfg;
  PlatformPredictor trained(3, pcfg, rng);
  Rng rng2(7);
  PlatformPredictor untrained(3, pcfg, rng2);
  TsmConfig cfg;
  cfg.epochs = 250;
  train_tsm(trained, data, cfg);
  const Matrix t_trained = trained.predict_time_matrix(data.features);
  const Matrix t_raw = untrained.predict_time_matrix(data.features);
  EXPECT_LT(nn::mse_value(t_trained, data.times),
            nn::mse_value(t_raw, data.times));
}

TEST(Tsm, RejectsMismatchedClusterCount) {
  const auto data = tiny_dataset(10, 3);
  Rng rng(8);
  PlatformPredictor pred(2, PredictorConfig{}, rng);
  EXPECT_THROW(train_tsm(pred, data, TsmConfig{}), ContractError);
}

// ------------------------------------------------------------------- UCB --

TEST(Ucb, SigmaReflectsResidualScale) {
  const auto data = tiny_dataset(60);
  Rng rng(9);
  PlatformPredictor pred(3, PredictorConfig{}, rng);
  TsmConfig cfg;
  cfg.epochs = 200;
  train_tsm(pred, data, cfg);
  const auto model = fit_ucb(pred, data, 1.0);
  for (double s : model.sigma_time) {
    EXPECT_GE(s, 0.0);
    EXPECT_LT(s, 5.0);
  }
}

TEST(Ucb, AdjustedMatricesAreConservative) {
  const auto data = tiny_dataset(40);
  Rng rng(10);
  PlatformPredictor pred(3, PredictorConfig{}, rng);
  TsmConfig cfg;
  cfg.epochs = 100;
  train_tsm(pred, data, cfg);
  const auto model = fit_ucb(pred, data, 2.0);
  const Matrix t_plain = pred.predict_time_matrix(data.features);
  const Matrix t_ucb = ucb_time_matrix(model, pred, data.features);
  const Matrix a_plain = pred.predict_reliability_matrix(data.features);
  const Matrix a_ucb = ucb_reliability_matrix(model, pred, data.features);
  for (std::size_t k = 0; k < t_plain.size(); ++k) {
    EXPECT_GE(t_ucb[k], t_plain[k]);       // pessimistic times
    EXPECT_LE(a_ucb[k], a_plain[k] + 1e-12);  // pessimistic reliability
    EXPECT_GE(a_ucb[k], 0.01);
    EXPECT_LE(a_ucb[k], 0.999);
  }
}

TEST(Ucb, KappaZeroReducesToTsm) {
  const auto data = tiny_dataset(30);
  Rng rng(11);
  PlatformPredictor pred(3, PredictorConfig{}, rng);
  const auto model = fit_ucb(pred, data, 0.0);
  const Matrix t_plain = pred.predict_time_matrix(data.features);
  const Matrix t_ucb = ucb_time_matrix(model, pred, data.features);
  EXPECT_TRUE(approx_equal(t_plain, t_ucb, 1e-12));
}

// ------------------------------------------------------------ experiment --

TEST(Experiment, ContextShapesAndSplit) {
  ExperimentConfig cfg;
  cfg.train_tasks = 30;
  cfg.test_tasks = 10;
  const auto ctx = make_context(cfg);
  EXPECT_EQ(ctx.train.num_tasks(), 30u);
  EXPECT_EQ(ctx.test.num_tasks(), 10u);
  EXPECT_EQ(ctx.platform.num_clusters(), cfg.num_clusters);
}

TEST(Experiment, EvaluateRuleRunsRequestedRounds) {
  ExperimentConfig cfg;
  cfg.train_tasks = 20;
  cfg.test_tasks = 12;
  cfg.test_rounds = 4;
  const auto ctx = make_context(cfg);
  std::size_t calls = 0;
  const auto metrics = evaluate_rule(
      [&](const Matrix& features) {
        ++calls;
        // Oracle predictions: find each feature row in the test set.
        Matrix t(cfg.num_clusters, features.rows(), 1.0);
        Matrix a(cfg.num_clusters, features.rows(), 0.9);
        return std::make_pair(t, a);
      },
      ctx, cfg);
  EXPECT_EQ(calls, 4u);
  EXPECT_EQ(metrics.rounds(), 4u);
}

TEST(Experiment, MethodNames) {
  EXPECT_EQ(to_string(Method::kTam), "TAM");
  EXPECT_EQ(to_string(Method::kMfcpFg), "MFCP-FG");
}

TEST(Experiment, TamMethodRunsEndToEnd) {
  ExperimentConfig cfg;
  cfg.train_tasks = 25;
  cfg.test_tasks = 10;
  cfg.test_rounds = 3;
  const auto ctx = make_context(cfg);
  const auto result = run_method(Method::kTam, ctx, cfg);
  EXPECT_EQ(result.metrics.rounds(), 3u);
  EXPECT_GE(result.metrics.regret().mean(), -1.0);
}

}  // namespace
}  // namespace mfcp::core
