// Unit tests for the thread pool and deterministic parallel loops.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "parallel/parallel_for.hpp"
#include "parallel/thread_pool.hpp"

namespace mfcp {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(4);
  auto f = pool.submit([] { return 21 * 2; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroThreadsSelectsHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, PropagatesExceptions) {
  ThreadPool pool(2);
  auto f = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ManyTasksAllComplete) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& f : futures) {
    f.get();
  }
  EXPECT_EQ(counter.load(), 200);
}

TEST(ThreadPool, DefaultRegistryRecordsTaskTelemetry) {
  obs::MetricsRegistry registry;
  obs::set_default_registry(&registry);
  {
    ThreadPool pool(2);
    std::vector<std::future<int>> futures;
    for (int k = 0; k < 16; ++k) {
      futures.push_back(pool.submit([k] { return k; }));
    }
    for (auto& f : futures) {
      (void)f.get();
    }
  }
  obs::set_default_registry(nullptr);

  EXPECT_EQ(registry.counter("mfcp_pool_tasks_total").value(), 16u);
  const obs::RegistrySnapshot snap = registry.snapshot();
  std::uint64_t task_count = 0;
  std::uint64_t wait_count = 0;
  for (const auto& h : snap.histograms) {
    if (h.name == "mfcp_pool_task_seconds") task_count = h.count;
    if (h.name == "mfcp_pool_queue_wait_seconds") wait_count = h.count;
  }
  EXPECT_EQ(task_count, 16u);
  EXPECT_EQ(wait_count, 16u);
}

TEST(ThreadPool, NoRegistryMeansNoTelemetry) {
  ASSERT_EQ(obs::default_registry(), nullptr);
  ThreadPool pool(1);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPool, GlobalPoolIsSingleton) {
  EXPECT_EQ(&ThreadPool::global(), &ThreadPool::global());
}

TEST(PartitionRange, CoversRangeExactly) {
  for (std::size_t n : {1u, 2u, 7u, 100u, 101u}) {
    for (std::size_t parts : {1u, 2u, 3u, 8u}) {
      const auto blocks = partition_range(n, parts);
      std::size_t covered = 0;
      std::size_t expect_begin = 0;
      for (const auto& [begin, end] : blocks) {
        EXPECT_EQ(begin, expect_begin);
        EXPECT_LT(begin, end);
        covered += end - begin;
        expect_begin = end;
      }
      EXPECT_EQ(covered, n);
    }
  }
}

TEST(PartitionRange, EmptyRangeYieldsNoBlocks) {
  EXPECT_TRUE(partition_range(0, 4).empty());
}

TEST(PartitionRange, NeverMoreBlocksThanElements) {
  const auto blocks = partition_range(3, 10);
  EXPECT_EQ(blocks.size(), 3u);
}

TEST(PartitionRange, BalancedSizes) {
  const auto blocks = partition_range(10, 3);
  ASSERT_EQ(blocks.size(), 3u);
  // 4, 3, 3
  EXPECT_EQ(blocks[0].second - blocks[0].first, 4u);
  EXPECT_EQ(blocks[1].second - blocks[1].first, 3u);
  EXPECT_EQ(blocks[2].second - blocks[2].first, 3u);
}

TEST(ParallelFor, TouchesEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(500);
  parallel_for(pool, counts.size(), [&](std::size_t i) { ++counts[i]; });
  for (const auto& c : counts) {
    EXPECT_EQ(c.load(), 1);
  }
}

TEST(ParallelFor, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  parallel_for(pool, 0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ParallelFor, ExceptionPropagates) {
  ThreadPool pool(2);
  EXPECT_THROW(parallel_for(pool, 10,
                            [](std::size_t i) {
                              if (i == 5) {
                                throw std::runtime_error("bad index");
                              }
                            }),
               std::runtime_error);
}

TEST(ParallelMapReduce, SumsInIndexOrder) {
  ThreadPool pool(4);
  const auto sum = parallel_map_reduce<long>(
      pool, 1000, 0L, [](std::size_t i) { return static_cast<long>(i); },
      [](long acc, long v) { return acc + v; });
  EXPECT_EQ(sum, 999L * 1000L / 2);
}

TEST(ParallelMapReduce, FloatingPointResultIsThreadCountInvariant) {
  // The reduction order is fixed by index, so results are bitwise equal
  // for any pool size — the hallmark of a deterministic parallel design.
  auto run = [](std::size_t threads) {
    ThreadPool pool(threads);
    return parallel_map_reduce<double>(
        pool, 2000, 0.0,
        [](std::size_t i) {
          return 1.0 / (1.0 + static_cast<double>(i) * 0.7);
        },
        [](double acc, double v) { return acc + v; });
  };
  const double r1 = run(1);
  const double r2 = run(2);
  const double r7 = run(7);
  EXPECT_EQ(r1, r2);
  EXPECT_EQ(r1, r7);
}

TEST(ParallelMapReduce, EmptyRangeReturnsInit) {
  ThreadPool pool(2);
  const double r = parallel_map_reduce<double>(
      pool, 0, 3.5, [](std::size_t) { return 1.0; },
      [](double a, double b) { return a + b; });
  EXPECT_DOUBLE_EQ(r, 3.5);
}

}  // namespace
}  // namespace mfcp
