// Tests for the QR factorization, ridge regression, and the linear
// predictor baseline (the Fig. 2 predictor class).
#include <gtest/gtest.h>

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/qr.hpp"
#include "linalg/solve.hpp"
#include "mfcp/linear_model.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace mfcp {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng.normal();
  }
  return m;
}

// ------------------------------------------------------------------- QR --

TEST(Qr, ReconstructsMatrix) {
  Rng rng(1);
  const Matrix a = random_matrix(7, 4, rng);
  QrFactorization qr(a);
  EXPECT_TRUE(approx_equal(matmul(qr.q(), qr.r()), a, 1e-9));
}

TEST(Qr, QHasOrthonormalColumns) {
  Rng rng(2);
  const Matrix a = random_matrix(9, 5, rng);
  QrFactorization qr(a);
  const Matrix q = qr.q();
  EXPECT_TRUE(approx_equal(matmul_tn(q, q), Matrix::identity(5), 1e-9));
}

TEST(Qr, RIsUpperTriangular) {
  Rng rng(3);
  QrFactorization qr(random_matrix(6, 4, rng));
  const Matrix r = qr.r();
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < i; ++j) {
      EXPECT_EQ(r(i, j), 0.0);
    }
  }
}

TEST(Qr, LeastSquaresSolvesSquareSystemExactly) {
  Rng rng(4);
  Matrix a = random_matrix(5, 5, rng);
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, i) += 3.0;
  }
  const Matrix x_true = random_matrix(5, 1, rng);
  const Matrix b = matmul(a, x_true);
  const Matrix x = QrFactorization(a).solve_least_squares(b);
  EXPECT_TRUE(approx_equal(x, x_true, 1e-8));
}

TEST(Qr, LeastSquaresResidualIsOrthogonalToColumnSpace) {
  Rng rng(5);
  const Matrix a = random_matrix(10, 3, rng);
  const Matrix b = random_matrix(10, 1, rng);
  const Matrix x = QrFactorization(a).solve_least_squares(b);
  const Matrix residual = matmul(a, x) - b;
  const Matrix atr = matmul_tn(a, residual);
  for (std::size_t i = 0; i < atr.size(); ++i) {
    EXPECT_NEAR(atr[i], 0.0, 1e-9);
  }
}

TEST(Qr, DetectsRankDeficiency) {
  Matrix a(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // collinear
  }
  QrFactorization qr(a);
  EXPECT_TRUE(qr.rank_deficient(1e-9));
  EXPECT_THROW(qr.solve_least_squares(Matrix(4, 1, 1.0)), ContractError);
}

TEST(Qr, RejectsWideMatrices) {
  EXPECT_THROW(QrFactorization(Matrix(2, 5, 1.0)), ContractError);
}

// ---------------------------------------------------------------- ridge --

TEST(Ridge, ZeroPenaltyMatchesLeastSquares) {
  Rng rng(6);
  const Matrix x = random_matrix(12, 3, rng);
  const Matrix y = random_matrix(12, 1, rng);
  const Matrix w0 = ridge_regression(x, y, 0.0);
  const Matrix wls = QrFactorization(x).solve_least_squares(y);
  EXPECT_TRUE(approx_equal(w0, wls, 1e-8));
}

TEST(Ridge, PenaltyShrinksWeights) {
  Rng rng(7);
  const Matrix x = random_matrix(20, 4, rng);
  Matrix y(20, 1);
  for (std::size_t i = 0; i < 20; ++i) {
    y[i] = 3.0 * x(i, 0) - 2.0 * x(i, 2) + rng.normal(0.0, 0.1);
  }
  double prev_norm = 1e18;
  for (double lambda : {0.0, 1.0, 10.0, 100.0}) {
    const Matrix w = ridge_regression(x, y, lambda);
    double norm = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) {
      norm += w[i] * w[i];
    }
    EXPECT_LT(norm, prev_norm + 1e-12);
    prev_norm = norm;
  }
}

TEST(Ridge, HandlesCollinearFeaturesWithPenalty) {
  Matrix x(6, 2);
  Matrix y(6, 1);
  for (std::size_t i = 0; i < 6; ++i) {
    x(i, 0) = static_cast<double>(i);
    x(i, 1) = 2.0 * static_cast<double>(i);  // collinear
    y[i] = static_cast<double>(i);
  }
  EXPECT_NO_THROW(ridge_regression(x, y, 1e-3));
}

// --------------------------------------------------------- linear model --

sim::Dataset synthetic_dataset(std::size_t n = 30) {
  sim::Dataset d;
  d.features = Matrix(n, 2);
  d.times = Matrix(2, n);
  d.reliability = Matrix(2, n);
  d.true_times = Matrix(2, n);
  d.true_reliability = Matrix(2, n);
  d.tasks.resize(n);
  Rng rng(8);
  for (std::size_t i = 0; i < n; ++i) {
    d.features(i, 0) = rng.uniform(0.0, 2.0);
    d.features(i, 1) = rng.uniform(0.0, 1.0);
    // Cluster 0 exactly linear; cluster 1 nonlinear.
    d.times(0, i) = 1.0 + 2.0 * d.features(i, 0) + 0.5 * d.features(i, 1);
    d.times(1, i) = 0.5 * std::exp(1.2 * d.features(i, 0));
    d.reliability(0, i) = 0.9;
    d.reliability(1, i) = 0.8;
    d.true_times(0, i) = d.times(0, i);
    d.true_times(1, i) = d.times(1, i);
    d.true_reliability(0, i) = 0.9;
    d.true_reliability(1, i) = 0.8;
  }
  return d;
}

TEST(LinearModel, RecoversExactlyLinearLaw) {
  const auto data = synthetic_dataset();
  core::LinearPlatformModel model(data);
  const Matrix t_hat = model.predict_time_matrix(data.features);
  for (std::size_t j = 0; j < data.num_tasks(); ++j) {
    EXPECT_NEAR(t_hat(0, j), data.times(0, j), 0.05);
  }
}

TEST(LinearModel, UnderfitsNonlinearLaw) {
  const auto data = synthetic_dataset();
  core::LinearPlatformModel model(data);
  const Matrix t_hat = model.predict_time_matrix(data.features);
  double max_err = 0.0;
  for (std::size_t j = 0; j < data.num_tasks(); ++j) {
    max_err = std::max(max_err,
                       std::abs(t_hat(1, j) - data.times(1, j)));
  }
  EXPECT_GT(max_err, 0.3);  // the Fig. 2 systematic error
}

TEST(LinearModel, PredictionsRespectRanges) {
  const auto data = synthetic_dataset();
  core::LinearPlatformModel model(data);
  const Matrix t = model.predict_time_matrix(data.features);
  const Matrix a = model.predict_reliability_matrix(data.features);
  for (std::size_t k = 0; k < t.size(); ++k) {
    EXPECT_GT(t[k], 0.0);
    EXPECT_GE(a[k], 0.01);
    EXPECT_LE(a[k], 0.999);
  }
}

TEST(LinearModel, WeightsChangeTheFit) {
  const auto data = synthetic_dataset();
  core::LinearPlatformModel uniform(data);
  Matrix weights(2, data.num_tasks(), 1.0);
  // Emphasize the small-z half for cluster 1.
  for (std::size_t j = 0; j < data.num_tasks(); ++j) {
    weights(1, j) = data.features(j, 0) < 1.0 ? 1.0 : 0.05;
  }
  core::LinearPlatformModel weighted(data, weights);
  const Matrix tu = uniform.predict_time_matrix(data.features);
  const Matrix tw = weighted.predict_time_matrix(data.features);
  // The weighted fit tracks the emphasized region more closely.
  double err_u = 0.0;
  double err_w = 0.0;
  std::size_t count = 0;
  for (std::size_t j = 0; j < data.num_tasks(); ++j) {
    if (data.features(j, 0) < 1.0) {
      err_u += std::abs(tu(1, j) - data.times(1, j));
      err_w += std::abs(tw(1, j) - data.times(1, j));
      ++count;
    }
  }
  ASSERT_GT(count, 0u);
  EXPECT_LT(err_w, err_u);
}

TEST(LinearModel, RejectsUnderdeterminedFit) {
  auto data = synthetic_dataset(2);  // fewer samples than features+1
  EXPECT_THROW(core::LinearPlatformModel{data}, ContractError);
}

TEST(LinearModel, RejectsBadWeightShape) {
  const auto data = synthetic_dataset();
  const Matrix weights(3, 4, 1.0);
  EXPECT_THROW(core::LinearPlatformModel(data, weights), ContractError);
}

// Property sweep: QR least squares equals normal-equation solution for
// well-conditioned random systems.
class QrProperty : public ::testing::TestWithParam<int> {};

TEST_P(QrProperty, MatchesNormalEquations) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 48271 + 17);
  const std::size_t s = 6 + rng.uniform_index(10);
  const std::size_t f = 1 + rng.uniform_index(4);
  const Matrix x = random_matrix(s, f, rng);
  const Matrix y = random_matrix(s, 1, rng);
  const Matrix w_qr = QrFactorization(x).solve_least_squares(y);
  // Normal equations: (X^T X) w = X^T y.
  const Matrix xtx = matmul_tn(x, x);
  const Matrix xty = matmul_tn(x, y);
  const Matrix w_ne = solve_linear(xtx, xty);
  EXPECT_TRUE(approx_equal(w_qr, w_ne, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(RandomSystems, QrProperty, ::testing::Range(0, 10));

}  // namespace
}  // namespace mfcp
