// Tests for the online platform engine: deterministic arrival replay,
// queue backpressure and expiry accounting, size-vs-timeout round
// triggering, drift detection, checkpoint round-trips, and whole-engine
// determinism under a fixed seed.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <sstream>

#include "engine/engine.hpp"
#include "engine/service.hpp"
#include "nn/serialize.hpp"
#include "obs/flight.hpp"
#include "obs/profiler.hpp"
#include "obs/sinks.hpp"
#include "support/check.hpp"

namespace mfcp::engine {
namespace {

Arrival make_arrival(std::size_t id, double time, double deadline) {
  Arrival a;
  a.id = id;
  a.time_hours = time;
  a.deadline_hours = deadline;
  return a;
}

// ------------------------------------------------------------- arrivals --

TEST(Arrivals, DeterministicReplayUnderFixedSeed) {
  ArrivalConfig cfg;
  cfg.rate_per_hour = 50.0;
  cfg.burst_factor = 3.0;
  cfg.burst_period_hours = 1.0;
  cfg.max_arrivals = 64;
  cfg.seed = 1234;

  ArrivalProcess a(cfg);
  ArrivalProcess b(cfg);
  for (std::size_t k = 0; k < cfg.max_arrivals; ++k) {
    const auto x = a.next();
    const auto y = b.next();
    ASSERT_TRUE(x.has_value());
    ASSERT_TRUE(y.has_value());
    EXPECT_EQ(x->id, y->id);
    EXPECT_EQ(x->time_hours, y->time_hours);  // bit-identical, not approx
    EXPECT_EQ(x->deadline_hours, y->deadline_hours);
    EXPECT_EQ(x->task.workload(), y->task.workload());
    EXPECT_EQ(x->task.family, y->task.family);
  }
  EXPECT_FALSE(a.next().has_value());
  EXPECT_TRUE(a.exhausted());
}

TEST(Arrivals, DifferentSeedsProduceDifferentStreams) {
  ArrivalConfig cfg;
  cfg.max_arrivals = 8;
  cfg.seed = 1;
  ArrivalProcess a(cfg);
  cfg.seed = 2;
  ArrivalProcess b(cfg);
  bool any_different = false;
  for (std::size_t k = 0; k < cfg.max_arrivals; ++k) {
    if (a.next()->time_hours != b.next()->time_hours) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

TEST(Arrivals, TimesIncreaseAndMeanRateRoughlyMatches) {
  ArrivalConfig cfg;
  cfg.rate_per_hour = 100.0;
  cfg.max_arrivals = 400;
  cfg.seed = 7;
  ArrivalProcess p(cfg);
  double prev = 0.0;
  double last = 0.0;
  while (auto a = p.next()) {
    EXPECT_GT(a->time_hours, prev);
    EXPECT_EQ(a->deadline_hours, a->time_hours + cfg.deadline_hours);
    prev = a->time_hours;
    last = a->time_hours;
  }
  // 400 arrivals at 100/h should take ~4 simulated hours.
  EXPECT_NEAR(last, 4.0, 1.0);
}

TEST(Arrivals, BurstsRaiseTheInstantaneousRate) {
  ArrivalConfig cfg;
  cfg.rate_per_hour = 10.0;
  cfg.burst_factor = 4.0;
  cfg.burst_period_hours = 2.0;
  cfg.burst_duty = 0.5;
  EXPECT_EQ(cfg.rate_at(0.1), 40.0);   // inside the burst window
  EXPECT_EQ(cfg.rate_at(1.5), 10.0);   // outside
  EXPECT_EQ(cfg.rate_at(2.3), 40.0);   // next cycle's burst
}

// ---------------------------------------------------------------- queue --

TEST(Queue, RejectNewestBackpressureAccounting) {
  QueueConfig cfg;
  cfg.capacity = 4;
  cfg.policy = DropPolicy::kRejectNewest;
  AdmissionQueue q(cfg);
  for (std::size_t k = 0; k < 6; ++k) {
    q.push(make_arrival(k, 0.1 * static_cast<double>(k), 10.0));
  }
  EXPECT_EQ(q.depth(), 4u);
  EXPECT_EQ(q.stats().offered, 6u);
  EXPECT_EQ(q.stats().admitted, 4u);
  EXPECT_EQ(q.stats().dropped_capacity, 2u);
  // FIFO: the oldest admitted job is still at the head.
  EXPECT_EQ(q.oldest_arrival_time(), 0.0);
  const auto batch = q.pop_batch(10);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch[0].id, 0u);
  EXPECT_EQ(batch[3].id, 3u);
  EXPECT_EQ(q.stats().dispatched, 4u);
}

TEST(Queue, DropOldestKeepsTheFreshestJobs) {
  QueueConfig cfg;
  cfg.capacity = 3;
  cfg.policy = DropPolicy::kDropOldest;
  AdmissionQueue q(cfg);
  for (std::size_t k = 0; k < 5; ++k) {
    EXPECT_TRUE(q.push(make_arrival(k, static_cast<double>(k), 10.0)));
  }
  EXPECT_EQ(q.depth(), 3u);
  EXPECT_EQ(q.stats().dropped_capacity, 2u);
  const auto batch = q.pop_batch(3);
  EXPECT_EQ(batch[0].id, 2u);
  EXPECT_EQ(batch[2].id, 4u);
}

TEST(Queue, ExpiryIsCountedSeparatelyFromCapacityDrops) {
  AdmissionQueue q(QueueConfig{});
  q.push(make_arrival(0, 0.0, /*deadline=*/0.5));
  q.push(make_arrival(1, 0.0, /*deadline=*/2.0));
  q.expire(1.0);
  EXPECT_EQ(q.depth(), 1u);
  EXPECT_EQ(q.stats().expired, 1u);
  EXPECT_EQ(q.stats().dropped_capacity, 0u);
  EXPECT_EQ(q.pop_batch(4)[0].id, 1u);
}

// -------------------------------------------------------------- batcher --

TEST(Batcher, SizeTriggerFiresAtMaxBatch) {
  BatcherConfig cfg;
  cfg.max_batch = 4;
  cfg.max_wait_hours = 1.0;
  MicroBatcher b(cfg);
  EXPECT_FALSE(b.should_fire(3, 0.0, 0.5));
  EXPECT_TRUE(b.should_fire(4, 0.0, 0.5));
  EXPECT_EQ(b.classify(4, 0.0, 0.5), RoundTrigger::kSize);
}

TEST(Batcher, TimeoutTriggerFiresWhenTheHeadWaitedLongEnough) {
  BatcherConfig cfg;
  cfg.max_batch = 8;
  cfg.max_wait_hours = 0.25;
  MicroBatcher b(cfg);
  EXPECT_FALSE(b.should_fire(2, 1.0, 1.2));
  EXPECT_TRUE(b.should_fire(2, 1.0, 1.25));
  EXPECT_EQ(b.classify(2, 1.0, 1.3), RoundTrigger::kTimeout);
  EXPECT_EQ(b.timeout_at(1.0), 1.25);
}

TEST(Batcher, EmptyQueueNeverFires) {
  MicroBatcher b(BatcherConfig{});
  EXPECT_FALSE(b.should_fire(0, 0.0, 100.0));
}

// ---------------------------------------------------------- replay/drift --

TEST(Replay, RingOverwritesOldestBeyondCapacity) {
  ReplayBuffer buf(3);
  for (std::size_t k = 0; k < 5; ++k) {
    Experience e;
    e.cluster = k % 2;
    e.observed_time = static_cast<double>(k);
    buf.add(std::move(e));
  }
  EXPECT_EQ(buf.size(), 3u);
  double newest = 0.0;
  for (std::size_t k = 0; k < buf.size(); ++k) {
    newest = std::max(newest, buf.at(k).observed_time);
    EXPECT_GE(buf.at(k).observed_time, 2.0);  // 0 and 1 were evicted
  }
  EXPECT_EQ(newest, 4.0);
  EXPECT_EQ(buf.indices_for_cluster(0).size() +
                buf.indices_for_cluster(1).size(),
            3u);
}

TEST(Replay, SequenceNumbersSurviveRingWrap) {
  ReplayBuffer buf(3);
  for (std::size_t k = 0; k < 5; ++k) {
    Experience e;
    e.observed_time = static_cast<double>(k);
    buf.add(std::move(e));
  }
  // Slots hold insertions 3, 4, 2 (the ring reordered them); the sequence
  // numbers still identify each experience's true age.
  EXPECT_EQ(buf.latest_sequence(), 4u);
  for (std::size_t k = 0; k < buf.size(); ++k) {
    EXPECT_EQ(static_cast<double>(buf.sequence(k)), buf.at(k).observed_time);
  }
}

TEST(Replay, RecencyWeightsHalveEveryHalfLife) {
  ReplayBuffer buf(8);
  for (std::size_t k = 0; k < 5; ++k) {
    buf.add(Experience{});
  }
  const std::vector<std::size_t> idx = {4, 2, 0};  // ages 0, 2, 4
  const std::vector<double> w = recency_weights(buf, idx, 2.0);
  ASSERT_EQ(w.size(), 3u);
  EXPECT_DOUBLE_EQ(w[0], 1.0);
  EXPECT_DOUBLE_EQ(w[1], 0.5);   // age == half_life
  EXPECT_DOUBLE_EQ(w[2], 0.25);  // two half-lives
  // half_life <= 0 means uniform: all ones, no bias.
  const std::vector<double> uniform = recency_weights(buf, idx, 0.0);
  EXPECT_EQ(uniform, std::vector<double>(3, 1.0));
}

TEST(Trainer, RecencyWeightedRetrainStillLearns) {
  // Two trainers over identical replay contents: half_life > 0 must not
  // break the burst (weights shift the sampling, training still happens),
  // and half_life == 0 must remain the default config value.
  OnlineTrainerConfig cfg;
  EXPECT_EQ(cfg.replay_recency_half_life, 0.0);
  cfg.retrain_epochs = 4;
  cfg.batch_size = 8;
  cfg.min_cluster_samples = 4;
  cfg.replay_recency_half_life = 16.0;
  OnlineTrainer trainer(cfg);
  Rng feature_rng(31);
  for (std::size_t k = 0; k < 32; ++k) {
    Experience e;
    e.features = {feature_rng.uniform(), feature_rng.uniform()};
    e.cluster = k % 2;
    e.observed_time = 1.0 + 0.1 * static_cast<double>(k % 5);
    trainer.record(std::move(e));
  }
  core::PredictorConfig pcfg;
  pcfg.feature_dim = 2;
  pcfg.hidden = {4};
  Rng init(7);
  core::PlatformPredictor predictor(2, pcfg, init);
  trainer.retrain(predictor);
  EXPECT_EQ(trainer.retrain_count(), 1u);
}

TEST(Drift, LogRatioErrorIsSymmetricAndBounded) {
  // Perfect prediction: zero error.
  EXPECT_DOUBLE_EQ(drift_error(2.0, 2.0), 0.0);
  // Symmetric in over- vs under-prediction on the log scale.
  EXPECT_DOUBLE_EQ(drift_error(1.0, 4.0), drift_error(4.0, 1.0));
  // A k-fold slowdown of a long task contributes ~log k (epsilon fades
  // as times grow).
  EXPECT_NEAR(drift_error(10.0, 40.0), std::log(4.0), 0.02);
  // Tiny predictions stay bounded: the old relative form
  // |t_hat - obs| / max(t_hat, 0.05) gave 19.0 here, the log-ratio ~3.
  EXPECT_NEAR(drift_error(0.0, 1.0), std::log(1.05 / 0.05), 1e-12);
  EXPECT_LT(drift_error(1e-9, 1.0), 3.1);
}

TEST(Drift, EvaluateReportsWarmupQuietTripAndCooldown) {
  DriftConfig cfg;
  cfg.short_window = 2;
  cfg.long_window = 4;
  cfg.ratio_threshold = 2.0;
  cfg.min_baseline = 0.01;
  cfg.cooldown_rounds = 3;
  DriftDetector det(cfg);
  // Needs short_window + long_window / 2 = 4 samples of history.
  EXPECT_EQ(det.evaluate(0.1), DriftDecision::kWarmup);
  EXPECT_EQ(det.evaluate(0.1), DriftDecision::kWarmup);
  EXPECT_EQ(det.evaluate(0.1), DriftDecision::kWarmup);
  EXPECT_EQ(det.evaluate(0.1), DriftDecision::kQuiet);
  // A mild bump keeps the short mean under ratio * baseline...
  EXPECT_EQ(det.evaluate(0.25), DriftDecision::kQuiet);
  // ...a hard jump pushes it well past.
  EXPECT_EQ(det.evaluate(1.0), DriftDecision::kTrip);
  det.acknowledge_retrain();
  EXPECT_EQ(det.cooldown_remaining(), 3u);
  EXPECT_EQ(det.evaluate(1.0), DriftDecision::kCooldown);
  EXPECT_EQ(det.cooldown_remaining(), 2u);
}

TEST(Drift, TripsOnSustainedErrorJumpAndRespectsCooldown) {
  DriftConfig cfg;
  cfg.short_window = 3;
  cfg.long_window = 6;
  cfg.ratio_threshold = 2.0;
  cfg.min_baseline = 0.01;
  cfg.cooldown_rounds = 4;
  DriftDetector det(cfg);
  for (int k = 0; k < 6; ++k) {
    EXPECT_FALSE(det.observe(0.1));  // quiet baseline
  }
  // A mild bump dilutes into the short-window mean without tripping...
  EXPECT_FALSE(det.observe(0.3));
  // ...a real jump pushes the window mean past ratio * baseline.
  EXPECT_TRUE(det.observe(1.0));
  det.acknowledge_retrain();
  for (int k = 0; k < 4; ++k) {
    EXPECT_FALSE(det.observe(1.0));  // cooldown swallows these
  }
}

// ------------------------------------------------------ engine fixtures --

struct EngineFixture {
  sim::Platform platform;
  sim::PseudoGnnEmbedder embedder;
  core::PlatformPredictor predictor;

  explicit EngineFixture(std::uint64_t seed = 99)
      : platform(sim::Platform::make_setting(sim::Setting::kA, 3)),
        embedder(),
        predictor(3, small_predictor(), rng_for(seed)) {}

  static core::PredictorConfig small_predictor() {
    core::PredictorConfig cfg;
    cfg.hidden = {8};
    return cfg;
  }
  static Rng& rng_for(std::uint64_t seed) {
    static Rng rng(0);
    rng = Rng(seed);
    return rng;
  }
};

EngineConfig small_engine_config() {
  EngineConfig cfg;
  cfg.arrivals.rate_per_hour = 60.0;
  cfg.arrivals.max_arrivals = 60;
  cfg.arrivals.seed = 555;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait_hours = 0.2;
  cfg.gamma = 0.6;
  cfg.metrics_window = 5;
  cfg.online_retraining = false;
  // Keep rounds cheap: fewer solver iterations than the deployment default.
  cfg.eval.solver.max_iterations = 150;
  return cfg;
}

TEST(Engine, DeterministicRunUnderFixedSeed) {
  EngineFixture fa;
  EngineFixture fb;
  OnlineEngine ea(small_engine_config(), fa.platform, fa.embedder,
                  fa.predictor);
  OnlineEngine eb(small_engine_config(), fb.platform, fb.embedder,
                  fb.predictor);
  const EngineResult ra = ea.run();
  const EngineResult rb = eb.run();

  ASSERT_EQ(ra.rounds.size(), rb.rounds.size());
  ASSERT_GT(ra.rounds.size(), 0u);
  for (std::size_t k = 0; k < ra.rounds.size(); ++k) {
    EXPECT_EQ(ra.rounds[k].close_hours, rb.rounds[k].close_hours);
    EXPECT_EQ(ra.rounds[k].batch, rb.rounds[k].batch);
    EXPECT_EQ(ra.rounds[k].trigger, rb.rounds[k].trigger);
    EXPECT_EQ(ra.rounds[k].regret, rb.rounds[k].regret);
    EXPECT_EQ(ra.rounds[k].reliability, rb.rounds[k].reliability);
    EXPECT_EQ(ra.rounds[k].drift_stat, rb.rounds[k].drift_stat);
  }
  EXPECT_EQ(ra.counters, rb.counters);
}

TEST(Engine, SizeAndTimeoutTriggersBothOccur) {
  // Bursty arrivals against a small batch: bursts close size rounds, the
  // quiet phase leaves partial batches that time out.
  EngineFixture f;
  EngineConfig cfg = small_engine_config();
  // Off-burst interarrival (1/6 h) exceeds max_wait (0.2 h), so quiet
  // phases time out; 10x bursts fill whole batches.
  cfg.arrivals.rate_per_hour = 6.0;
  cfg.arrivals.burst_factor = 10.0;
  cfg.arrivals.burst_period_hours = 1.0;
  cfg.arrivals.burst_duty = 0.3;
  cfg.arrivals.max_arrivals = 80;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  const EngineResult result = eng.run();

  std::size_t size_rounds = 0;
  std::size_t timeout_rounds = 0;
  for (const auto& r : result.rounds) {
    if (r.trigger == RoundTrigger::kSize) {
      ++size_rounds;
      EXPECT_EQ(r.batch, cfg.batcher.max_batch);
    }
    if (r.trigger == RoundTrigger::kTimeout) {
      ++timeout_rounds;
      EXPECT_LT(r.batch, cfg.batcher.max_batch);
    }
  }
  EXPECT_GT(size_rounds, 0u);
  EXPECT_GT(timeout_rounds, 0u);
}

TEST(Engine, EveryArrivalIsAccountedFor) {
  EngineFixture f;
  EngineConfig cfg = small_engine_config();
  cfg.queue.capacity = 6;  // tight: force capacity drops under bursts
  cfg.arrivals.burst_factor = 6.0;
  cfg.arrivals.burst_period_hours = 0.5;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  const EngineResult result = eng.run();

  EXPECT_EQ(result.counters.arrivals, cfg.arrivals.max_arrivals);
  EXPECT_EQ(result.queue.offered, cfg.arrivals.max_arrivals);
  // Conservation: everything offered was dispatched, dropped, or expired.
  EXPECT_EQ(result.queue.dispatched + result.queue.dropped_capacity +
                result.queue.expired,
            result.queue.offered);
  std::size_t matched = 0;
  for (const auto& r : result.rounds) {
    matched += r.batch;
  }
  EXPECT_EQ(matched, result.queue.dispatched);
}

TEST(Engine, DriftEventChangesThePlatformMidRun) {
  EngineFixture f;
  EngineConfig cfg = small_engine_config();
  DriftEventSpec drift;
  drift.at_hours = 0.3;
  drift.cluster = 1;
  drift.drift.time_scale = 5.0;
  cfg.drift_events.push_back(drift);

  const double before =
      f.platform.cluster(1).profile().base_seconds_per_unit;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  (void)eng.run();
  EXPECT_NEAR(eng.platform().cluster(1).profile().base_seconds_per_unit,
              5.0 * before, 1e-12);
  // The engine's copy drifted; the caller's platform is untouched.
  EXPECT_EQ(f.platform.cluster(1).profile().base_seconds_per_unit, before);
}

TEST(Engine, CheckpointRestoreRoundTripsWeightsBitExactly) {
  EngineFixture fa(123);
  EngineConfig cfg = small_engine_config();
  cfg.online_retraining = true;
  cfg.trainer.retrain_epochs = 5;
  cfg.trainer.drift.ratio_threshold = 1.1;  // make retrains likely
  OnlineEngine eng(cfg, fa.platform, fa.embedder, fa.predictor);
  (void)eng.run();

  const std::string path = ::testing::TempDir() + "engine_ckpt_test.txt";
  eng.checkpoint(path);

  // Restore into a predictor with different (freshly initialized) weights.
  EngineFixture fb(456);
  OnlineEngine eng2(small_engine_config(), fb.platform, fb.embedder,
                    fb.predictor);
  eng2.restore(path);
  std::remove(path.c_str());

  EXPECT_EQ(eng2.counters(), eng.counters());
  for (std::size_t i = 0; i < 3; ++i) {
    auto pa = fa.predictor.cluster(i).time_model().parameters();
    auto pb = fb.predictor.cluster(i).time_model().parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t p = 0; p < pa.size(); ++p) {
      const auto& va = pa[p].value();
      const auto& vb = pb[p].value();
      ASSERT_EQ(va.size(), vb.size());
      for (std::size_t x = 0; x < va.size(); ++x) {
        EXPECT_EQ(va[x], vb[x]);  // bit-identical
      }
    }
    auto ra = fa.predictor.cluster(i).reliability_model().parameters();
    auto rb = fb.predictor.cluster(i).reliability_model().parameters();
    for (std::size_t p = 0; p < ra.size(); ++p) {
      for (std::size_t x = 0; x < ra[p].value().size(); ++x) {
        EXPECT_EQ(ra[p].value()[x], rb[p].value()[x]);
      }
    }
  }
}

TEST(Engine, CheckpointRejectsMismatchedArchitecture) {
  EngineFixture f;
  OnlineEngine eng(small_engine_config(), f.platform, f.embedder,
                   f.predictor);
  std::stringstream buf;
  save_checkpoint(buf, f.predictor, eng.counters());

  Rng rng(7);
  core::PredictorConfig other;
  other.hidden = {16, 16};
  core::PlatformPredictor wrong(3, other, rng);
  EXPECT_THROW(load_checkpoint(buf, wrong), ContractError);
}

// -------------------------------------------------------- observability --

TEST(Engine, JournalIsBitIdenticalAcrossSeededRuns) {
  const auto journal_run = [] {
    EngineFixture f;
    std::ostringstream out;
    obs::JsonlWriter journal(out);
    EngineConfig cfg = small_engine_config();
    cfg.journal = &journal;
    OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
    const EngineResult result = eng.run();
    EXPECT_EQ(journal.records_written(), result.rounds.size());
    return out.str();
  };
  const std::string first = journal_run();
  const std::string second = journal_run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  // Spot-check the stable field order of the first record.
  EXPECT_EQ(first.rfind("{\"round\":0,\"close_hours\":", 0), 0u);
}

TEST(Engine, RatekeeperThrottlesOverloadAndConservesAccounting) {
  // Arrivals far above the admission rate: the anonymous bucket must
  // throttle most of the stream at the door, and everything that does
  // get in must still be fully accounted for.
  EngineFixture f;
  EngineConfig cfg = small_engine_config();
  cfg.arrivals.rate_per_hour = 240.0;
  cfg.arrivals.max_arrivals = 80;
  control::RatekeeperConfig rk_cfg;
  rk_cfg.initial_rate_per_hour = 30.0;
  control::Ratekeeper ratekeeper(rk_cfg);
  control::TokenBucketTable buckets;
  cfg.ratekeeper = &ratekeeper;
  cfg.admission_buckets = &buckets;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  const EngineResult result = eng.run();

  EXPECT_GT(result.throttled, 0u);
  EXPECT_EQ(result.throttled, buckets.throttled_total());
  EXPECT_EQ(result.counters.arrivals, cfg.arrivals.max_arrivals);
  // Throttled arrivals never reach the queue; admitted ones all
  // terminate in dispatched / dropped / expired.
  EXPECT_EQ(result.queue.offered + result.throttled,
            static_cast<std::size_t>(cfg.arrivals.max_arrivals));
  EXPECT_EQ(result.queue.dispatched + result.queue.dropped_capacity +
                result.queue.expired,
            result.queue.offered);
  // Every round carries the controller's published state.
  for (const auto& r : result.rounds) {
    EXPECT_TRUE(r.ratekeeper_valid);
    EXPECT_GT(r.admission_rate_per_hour, 0.0);
  }
}

TEST(Engine, RatekeeperJournalIsByteIdenticalAcrossSeededRuns) {
  const auto journal_run = [] {
    EngineFixture f;
    std::ostringstream out;
    obs::JsonlWriter journal(out);
    EngineConfig cfg = small_engine_config();
    cfg.journal = &journal;
    cfg.arrivals.rate_per_hour = 240.0;
    cfg.arrivals.max_arrivals = 80;
    control::RatekeeperConfig rk_cfg;
    rk_cfg.initial_rate_per_hour = 30.0;
    control::Ratekeeper ratekeeper(rk_cfg);
    control::TokenBucketTable buckets;
    cfg.ratekeeper = &ratekeeper;
    cfg.admission_buckets = &buckets;
    OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
    eng.run();
    return out.str();
  };
  // Admission decisions ride on the simulated clock only, so the full
  // journal — ratekeeper fields included — must replay byte for byte.
  const std::string first = journal_run();
  const std::string second = journal_run();
  ASSERT_FALSE(first.empty());
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("\"admission_rate\":"), std::string::npos);
  EXPECT_NE(first.find("\"limiting_signal\":"), std::string::npos);
  EXPECT_NE(first.find("\"throttled_total\":"), std::string::npos);
}

TEST(Engine, JournalWithoutRatekeeperCarriesNoRatekeeperFields) {
  // The ratekeeper fields are gated, so pre-existing journal consumers
  // (and the CI baseline diffs) see byte-identical records without it.
  std::ostringstream out;
  obs::JsonlWriter journal(out);
  EngineFixture f;
  EngineConfig cfg = small_engine_config();
  cfg.journal = &journal;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  eng.run();
  EXPECT_EQ(out.str().find("admission_rate"), std::string::npos);
}

TEST(Engine, JournalLabelTagsTheRun) {
  std::ostringstream out;
  obs::JsonlWriter journal(out);
  RoundRecord rec;
  rec.round = 3;
  append_round_journal(journal, rec, "frozen");
  EXPECT_EQ(out.str().rfind("{\"mode\":\"frozen\",\"round\":3,", 0), 0u);
}

// ---------------------------------------------------------- task traces --

TEST(Engine, TaskTracesAreByteIdenticalAcrossSeededRuns) {
  const auto traced_run = [] {
    EngineFixture f;
    obs::TraceStore traces(4096);
    EngineConfig cfg = small_engine_config();
    cfg.task_traces = &traces;
    cfg.trace_sample_rate = 0.5;
    OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
    eng.run();
    std::ostringstream out;
    obs::JsonlWriter writer(out);
    traces.drain_to(writer);
    return out.str();
  };
  const std::string first = traced_run();
  const std::string second = traced_run();
  ASSERT_FALSE(first.empty());  // rate 0.5 must catch some of 60 tasks
  EXPECT_EQ(first, second);
}

TEST(Engine, JournalIsByteIdenticalWithTracingOnOrOff) {
  const auto journal_run = [](double rate) {
    EngineFixture f;
    std::ostringstream out;
    obs::JsonlWriter journal(out);
    obs::TraceStore traces(4096);
    EngineConfig cfg = small_engine_config();
    cfg.journal = &journal;
    if (rate > 0.0) {
      cfg.task_traces = &traces;
      cfg.trace_sample_rate = rate;
    }
    OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
    eng.run();
    return out.str();
  };
  // The sampling decision is a pure hash, never an RNG draw: turning
  // tracing fully on must not move a single journal byte.
  EXPECT_EQ(journal_run(0.0), journal_run(1.0));
}

TEST(Engine, JournalIsByteIdenticalWithFlightRecorderAttached) {
  obs::FlightRecorder recorder;
  const auto journal_run = [&recorder](bool flight) {
    EngineFixture f;
    std::ostringstream out;
    obs::JsonlWriter journal(out);
    EngineConfig cfg = small_engine_config();
    cfg.journal = &journal;
    if (flight) {
      cfg.flight = &recorder;
    }
    OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
    eng.run();
    return out.str();
  };
  // The recorder is write-only telemetry; wall-clock values stay in its
  // rings and never leak into the byte-compared journal.
  const std::string plain = journal_run(false);
  const std::string recorded = journal_run(true);
  EXPECT_GT(recorder.events_total(), 0u);
  EXPECT_EQ(plain, recorded);
}

TEST(Engine, JournalIsByteIdenticalWithProfilerSampling) {
  const auto journal_run = [](bool profile) {
    EngineFixture f;
    std::ostringstream out;
    obs::JsonlWriter journal(out);
    EngineConfig cfg = small_engine_config();
    cfg.journal = &journal;
    obs::SamplingProfiler profiler;
    if (profile) {
      obs::set_default_profiler(&profiler);
      profiler.register_current_thread("engine_test");
      EXPECT_TRUE(profiler.start(500.0));
    }
    OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
    eng.run();
    std::uint64_t samples = 0;
    if (profile) {
      profiler.stop();
      // run() unregistered the engine thread on exit (engine.cpp owns
      // its default-profiler registration), and the small fixture can
      // finish inside one 2 ms sampling period anyway — so prove the
      // sampler fires with a second short session on a re-registered
      // thread, spinning CPU until a sample provably landed.
      profiler.register_current_thread("engine_test");
      EXPECT_TRUE(profiler.start(500.0));
      const auto deadline =
          std::chrono::steady_clock::now() + std::chrono::seconds(2);
      volatile double sink = 0.0;
      while (profiler.samples_total() == 0 &&
             std::chrono::steady_clock::now() < deadline) {
        for (int i = 0; i < 10000; ++i) {
          sink = sink + static_cast<double>(i) * 1e-9;
        }
      }
      profiler.stop();
      samples = profiler.samples_total();
      profiler.unregister_current_thread();
      obs::set_default_profiler(nullptr);
    }
    return std::make_pair(out.str(), samples);
  };
  // SIGPROF interrupts steal CPU slices, never engine state: an armed,
  // actively sampling profiler must not move a single journal byte.
  const auto [plain, zero_samples] = journal_run(false);
  const auto [profiled, samples] = journal_run(true);
  EXPECT_EQ(zero_samples, 0u);
  EXPECT_GT(samples, 0u);
  EXPECT_EQ(plain, profiled);
}

TEST(Engine, DispatchedTraceHasTheCompleteSpanChain) {
  EngineFixture f;
  obs::TraceStore traces(4096);
  EngineConfig cfg = small_engine_config();
  cfg.task_traces = &traces;
  cfg.trace_sample_rate = 1.0;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  const EngineResult result = eng.run();
  ASSERT_GT(result.queue.dispatched, 0u);

  std::size_t dispatched_traces = 0;
  for (const auto& trace : traces.snapshot()) {
    ASSERT_TRUE(trace.finished());  // run() drains the queue before exit
    if (trace.final_state == "dispatched") {
      ++dispatched_traces;
      EXPECT_EQ(
          trace.chain(),
          "submit>queue_wait>batch>predict>match>dispatch>feedback>complete");
      // The terminal span carries the realized-vs-predicted makespan
      // error: feedback recorded the realized runtime, match the
      // prediction on the chosen cluster.
      const auto& spans = trace.spans;
      const auto span_named = [&](const char* name) {
        for (const auto& s : spans) {
          if (s.name == name) {
            return &s;
          }
        }
        return static_cast<const obs::TaskSpan*>(nullptr);
      };
      const obs::TaskSpan* match_span = span_named("match");
      const obs::TaskSpan* feedback_span = span_named("feedback");
      const obs::TaskSpan* complete_span = span_named("complete");
      ASSERT_NE(match_span, nullptr);
      ASSERT_NE(feedback_span, nullptr);
      ASSERT_NE(complete_span, nullptr);
      EXPECT_NEAR(complete_span->value,
                  feedback_span->value - match_span->value, 1e-12);
      EXPECT_TRUE(complete_span->detail == "ok" ||
                  complete_span->detail == "failed");
      // Sim-time endpoints are ordered within every span.
      for (const auto& span : trace.spans) {
        EXPECT_LE(span.start_hours, span.end_hours) << span.name;
      }
    } else {
      // Lost tasks end on a terminal span naming the loss.
      ASSERT_FALSE(trace.spans.empty());
      EXPECT_EQ(trace.spans.back().name, trace.final_state);
    }
  }
  // Rate 1.0: every dispatched task must carry a full chain.
  EXPECT_EQ(dispatched_traces, result.queue.dispatched);
}

TEST(Engine, SloMonitorSeesRoundsAndExports) {
  EngineFixture f;
  obs::MetricsRegistry registry;
  obs::SloMonitor slo;
  EngineConfig cfg = small_engine_config();
  cfg.registry = &registry;
  cfg.slo = &slo;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  const EngineResult result = eng.run();
  ASSERT_GT(result.rounds.size(), 0u);

  const auto states = slo.evaluate(result.rounds.back().close_hours);
  ASSERT_EQ(states.size(), 4u);
  // Dispatch events from the final rounds are inside the slow window.
  EXPECT_GT(states[1].samples, 0u);
  // The engine bound the monitor to its registry: gauges exist.
  const std::string text = obs::to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("mfcp_slo_firing{sli=\"dispatch_success\"}"),
            std::string::npos);
}

TEST(Engine, AttributionIsExactAndTiesOutToRoundRegret) {
  EngineFixture f;
  obs::MetricsRegistry registry;
  EngineConfig cfg = small_engine_config();
  cfg.attribution = true;
  cfg.registry = &registry;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  const EngineResult result = eng.run();
  ASSERT_GT(result.rounds.size(), 0u);

  for (const RoundRecord& rec : result.rounds) {
    ASSERT_TRUE(rec.attribution.valid) << "round " << rec.round;
    EXPECT_TRUE(rec.attribution.exact(1e-6))
        << "round " << rec.round << ": terms " << rec.attribution.term_sum()
        << " vs total " << rec.attribution.total;
    // Stripping the admission counterfactual from the total recovers the
    // realized regret the engine scored independently for this round.
    EXPECT_NEAR(rec.attribution.total - rec.attribution.admission_gap,
                rec.regret, 1e-9)
        << "round " << rec.round;
    EXPECT_GE(rec.attribution.admission_gap, 0.0);
    EXPECT_GE(rec.attribution.solver_residual, 0.0);
  }

  // The recorder saw every round and flagged none of them inexact.
  const auto rounds = static_cast<std::uint64_t>(result.rounds.size());
  EXPECT_EQ(registry.counter("mfcp_regret_attributed_rounds_total").value(),
            rounds);
  EXPECT_EQ(registry.counter("mfcp_regret_attribution_inexact_total").value(),
            0u);
  // And the attribute stage is timed like the other pipeline stages.
  bool saw_stage = false;
  for (const auto& h : registry.snapshot().histograms) {
    if (h.name == "mfcp_engine_stage_seconds{stage=\"attribute\"}") {
      saw_stage = true;
      EXPECT_EQ(h.count, rounds);
    }
  }
  EXPECT_TRUE(saw_stage);
}

TEST(Engine, AttributionIsDeterministicAndJournaled) {
  const auto attributed_run = [](std::string* journal_text) {
    EngineFixture f;
    std::ostringstream out;
    obs::JsonlWriter journal(out);
    EngineConfig cfg = small_engine_config();
    cfg.attribution = true;
    cfg.journal = &journal;
    OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
    EngineResult result = eng.run();
    *journal_text = out.str();
    return result;
  };
  std::string ja;
  std::string jb;
  const EngineResult ra = attributed_run(&ja);
  const EngineResult rb = attributed_run(&jb);

  ASSERT_EQ(ra.rounds.size(), rb.rounds.size());
  for (std::size_t k = 0; k < ra.rounds.size(); ++k) {
    // Bit-identical, not approximate: attribution must not perturb the
    // engine's determinism guarantee.
    EXPECT_EQ(ra.rounds[k].regret, rb.rounds[k].regret);
    EXPECT_EQ(ra.rounds[k].attribution.pred_gap,
              rb.rounds[k].attribution.pred_gap);
    EXPECT_EQ(ra.rounds[k].attribution.solver_gap,
              rb.rounds[k].attribution.solver_gap);
    EXPECT_EQ(ra.rounds[k].attribution.rounding_gap,
              rb.rounds[k].attribution.rounding_gap);
    EXPECT_EQ(ra.rounds[k].attribution.admission_gap,
              rb.rounds[k].attribution.admission_gap);
    EXPECT_EQ(ra.rounds[k].attribution.total, rb.rounds[k].attribution.total);
  }
  // The journal carries the decomposition and stays byte-stable.
  EXPECT_EQ(ja, jb);
  EXPECT_NE(ja.find("\"pred_gap\":"), std::string::npos);
  EXPECT_NE(ja.find("\"attr_total\":"), std::string::npos);
}

TEST(Engine, TelemetryCountsMatchTheRunRecords) {
  EngineFixture f;
  obs::MetricsRegistry registry;
  obs::TraceRing trace(64);
  EngineConfig cfg = small_engine_config();
  cfg.registry = &registry;
  cfg.trace = &trace;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  const EngineResult result = eng.run();
  ASSERT_GT(result.rounds.size(), 0u);

  const auto rounds = static_cast<std::uint64_t>(result.rounds.size());
  // Every stage histogram saw exactly one observation per round.
  const obs::RegistrySnapshot snap = registry.snapshot();
  for (const char* stage : {"embed", "predict", "match", "dispatch"}) {
    const std::string name =
        std::string("mfcp_engine_stage_seconds{stage=\"") + stage + "\"}";
    bool found = false;
    for (const auto& h : snap.histograms) {
      if (h.name == name) {
        EXPECT_EQ(h.count, rounds) << name;
        found = true;
      }
    }
    EXPECT_TRUE(found) << name;
  }

  // Counters agree with the engine's own accounting.
  EXPECT_EQ(registry.counter("mfcp_engine_tasks_matched_total").value(),
            result.queue.dispatched);
  EXPECT_EQ(registry.counter("mfcp_queue_offered_total").value(),
            result.queue.offered);
  EXPECT_EQ(registry.counter("mfcp_queue_dispatched_total").value(),
            result.queue.dispatched);
  // One drift decision per round (retraining off -> no observe_round, so
  // decisions only come from the trainer when enabled; here check gauges
  // instead: sim time advanced).
  EXPECT_GT(registry.gauge("mfcp_engine_sim_time_hours").value(), 0.0);
  // The ring retained the most recent spans (4 stages per round).
  EXPECT_EQ(trace.recorded(), 4u * rounds);
  EXPECT_EQ(trace.snapshot().size(), std::min<std::size_t>(64, 4 * rounds));
}

TEST(Engine, DriftDecisionCountersSumToRoundsWhenRetrainingIsOn) {
  EngineFixture f;
  obs::MetricsRegistry registry;
  EngineConfig cfg = small_engine_config();
  cfg.online_retraining = true;
  cfg.trainer.retrain_epochs = 2;
  cfg.registry = &registry;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  const EngineResult result = eng.run();

  std::uint64_t decisions = 0;
  for (const char* d : {"quiet", "warmup", "cooldown", "trip"}) {
    decisions += registry
                     .counter("mfcp_engine_drift_decisions_total{decision=\"" +
                              std::string(d) + "\"}")
                     .value();
  }
  EXPECT_EQ(decisions, result.rounds.size());
  EXPECT_EQ(registry.counter(
                "mfcp_engine_drift_decisions_total{decision=\"trip\"}")
                .value(),
            result.counters.retrains);
}

TEST(Metrics, ToRegistryExportsSummaryGauges) {
  core::MetricsAccumulator acc;
  core::MatchOutcome o;
  o.regret = 2.0;
  o.reliability = 0.9;
  o.utilization = 0.5;
  o.feasible = true;
  acc.add(o);
  o.regret = 4.0;
  o.feasible = false;
  acc.add(o);

  obs::MetricsRegistry registry;
  acc.to_registry(registry, "eval");
  EXPECT_DOUBLE_EQ(registry.gauge("eval_regret_mean").value(), 3.0);
  EXPECT_DOUBLE_EQ(registry.gauge("eval_regret_min").value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.gauge("eval_regret_max").value(), 4.0);
  EXPECT_DOUBLE_EQ(registry.gauge("eval_reliability_mean").value(), 0.9);
  EXPECT_DOUBLE_EQ(registry.gauge("eval_rounds").value(), 2.0);
  EXPECT_DOUBLE_EQ(registry.gauge("eval_feasible_fraction").value(), 0.5);
}

// -------------------------------------------------------------- metrics --

TEST(Metrics, ResetClearsAndMergeFoldsWindows) {
  core::MatchOutcome o1;
  o1.regret = 1.0;
  o1.reliability = 0.8;
  o1.utilization = 0.5;
  o1.feasible = true;
  core::MatchOutcome o2 = o1;
  o2.regret = 3.0;
  o2.feasible = false;

  core::MetricsAccumulator window;
  window.add(o1);
  window.add(o2);

  core::MetricsAccumulator total;
  total.merge(window);
  window.reset();
  EXPECT_EQ(window.rounds(), 0u);
  EXPECT_EQ(total.rounds(), 2u);
  EXPECT_DOUBLE_EQ(total.regret().mean(), 2.0);
  EXPECT_DOUBLE_EQ(total.feasible_fraction(), 0.5);

  window.add(o1);
  total.merge(window);
  EXPECT_EQ(total.rounds(), 3u);

  // Merging windows equals adding every outcome directly.
  core::MetricsAccumulator direct;
  direct.add(o1);
  direct.add(o2);
  direct.add(o1);
  EXPECT_DOUBLE_EQ(total.regret().mean(), direct.regret().mean());
  EXPECT_DOUBLE_EQ(total.regret().stddev(), direct.regret().stddev());
}

// ------------------------------------------------------------ durability --

/// Fresh per-test scratch directory, wiped on construction and teardown.
struct StorageTempDir {
  std::filesystem::path path;

  explicit StorageTempDir(const std::string& name)
      : path(std::filesystem::temp_directory_path() /
             ("mfcp_engine_test_" + std::to_string(::getpid()) + "_" +
              name)) {
    std::filesystem::remove_all(path);
    std::filesystem::create_directories(path);
  }
  ~StorageTempDir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  [[nodiscard]] std::string str() const { return path.string(); }
};

TEST(Engine, JournalIsByteIdenticalWithStorageAttached) {
  // Attaching the durability layer must not perturb the round loop: the
  // storage-on run's journal is byte-for-byte the storage-off run's.
  const auto journal_run = [](storage::StorageManager* storage) {
    EngineFixture f;
    std::ostringstream out;
    obs::JsonlWriter journal(out);
    EngineConfig cfg = small_engine_config();
    cfg.journal = &journal;
    cfg.storage = storage;
    OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
    eng.run();
    return out.str();
  };
  StorageTempDir dir("journal_identity");
  storage::StorageManager storage(storage::StorageConfig{dir.str()});
  const std::string with = journal_run(&storage);
  const std::string without = journal_run(nullptr);
  ASSERT_FALSE(with.empty());
  EXPECT_EQ(with, without);

  // And the chunk store mirrors exactly those lines (batch mode has no
  // external tasks, so no task records interleave).
  std::string chunked;
  for (const std::string& line : storage.journal().query(0.0, 1e9)) {
    chunked += line;
    chunked += '\n';
  }
  EXPECT_EQ(chunked, with);
}

TEST(Engine, RecoverRestartRoundTripRestoresStateAndContinues) {
  StorageTempDir dir("restart_roundtrip");
  EngineCounters first;
  {
    storage::StorageManager storage(storage::StorageConfig{dir.str()});
    EngineFixture f;
    EngineConfig cfg = small_engine_config();
    cfg.storage = &storage;
    OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
    first = eng.run().counters;  // finalize() publishes a final snapshot
  }
  ASSERT_GT(first.rounds, 0u);
  ASSERT_GT(first.sim_time_hours, 0.0);

  storage::StorageManager storage(storage::StorageConfig{dir.str()});
  EngineFixture f;
  EngineConfig cfg = small_engine_config();
  cfg.storage = &storage;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  const RecoveryReport report = eng.recover();
  EXPECT_TRUE(report.checkpoint_loaded);
  EXPECT_GE(report.checkpoint_generation, 1u);
  EXPECT_EQ(report.replayed, 0u);  // batch runs have no external tasks
  EXPECT_GE(report.resume_hours, first.sim_time_hours);

  // The resumed run continues on the restored clock and counters: every
  // total is monotone across the restart, never reset.
  const EngineCounters second = eng.run().counters;
  EXPECT_GT(second.rounds, first.rounds);
  EXPECT_EQ(second.arrivals, 2 * first.arrivals);
  EXPECT_GT(second.sim_time_hours, first.sim_time_hours);
  EXPECT_GE(second.dispatched, first.dispatched);
}

TEST(Engine, RecoveryIsDeterministicAcrossIdenticalRestarts) {
  const auto recovered_run = [](const std::string& dir) {
    {
      storage::StorageManager storage(storage::StorageConfig{dir});
      EngineFixture f;
      EngineConfig cfg = small_engine_config();
      cfg.storage = &storage;
      OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
      eng.run();
    }
    storage::StorageManager storage(storage::StorageConfig{dir});
    EngineFixture f;
    EngineConfig cfg = small_engine_config();
    cfg.storage = &storage;
    OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
    (void)eng.recover();
    return eng.run().counters;
  };
  StorageTempDir da("recovery_det_a");
  StorageTempDir db("recovery_det_b");
  EXPECT_EQ(recovered_run(da.str()), recovered_run(db.str()));
}

TEST(Engine, GatewayLinkWalRecoveryConservesAcceptedTasks) {
  StorageTempDir dir("link_recovery");
  sim::TaskDescriptor task;
  task.family = sim::TaskFamily::kCnn;
  std::vector<std::uint64_t> ids;
  {
    // Incarnation 1: accept three external tasks through the link (each
    // WAL-logged before its ticket) and then "crash" — no engine ever
    // runs, so nothing reaches a terminal state.
    storage::StorageManager storage(storage::StorageConfig{dir.str()});
    GatewayLinkConfig link_cfg;
    link_cfg.wal = &storage.wal();
    GatewayLink link(link_cfg);
    for (int k = 0; k < 3; ++k) {
      const SubmitTicket ticket = link.submit(task, 2.0);
      ASSERT_TRUE(ticket.accepted);
      ids.push_back(ticket.id);
    }
  }

  // Incarnation 2: recovery replays exactly the acked set.
  storage::StorageManager storage(storage::StorageConfig{dir.str()});
  GatewayLinkConfig link_cfg;
  link_cfg.wal = &storage.wal();
  GatewayLink link(link_cfg);
  EngineFixture f;
  EngineConfig cfg = small_engine_config();
  cfg.storage = &storage;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  const RecoveryReport report = eng.recover(&link);
  EXPECT_EQ(report.replayed, 3u);
  EXPECT_EQ(report.dropped, 0u);
  EXPECT_EQ(report.terminal, 0u);

  // The conservation the loadgen asserts across restarts: recovered
  // acceptances are re-registered, queued, and queryable under their
  // original ids.
  const ServiceStats stats = link.stats();
  EXPECT_EQ(stats.recovered_tasks, 3u);
  EXPECT_EQ(stats.recovered_terminal, 0u);
  EXPECT_EQ(stats.tasks.submitted, 3u);
  EXPECT_EQ(stats.tasks.queued, 3u);
  for (const std::uint64_t id : ids) {
    const auto status = link.status(id);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->state, TaskState::kQueued);
  }
  // New submissions never collide with replayed ids.
  const SubmitTicket fresh = link.submit(task, 2.0);
  ASSERT_TRUE(fresh.accepted);
  EXPECT_GT(fresh.id, ids.back());
}

TEST(Engine, RetrainScheduleSurvivesRestart) {
  StorageTempDir dir("retrain_schedule");
  const auto configure = [] {
    EngineConfig cfg = small_engine_config();
    cfg.online_retraining = true;
    cfg.trainer.retrain_epochs = 2;
    cfg.trainer.drift.ratio_threshold = 1e9;  // drift never fires
    cfg.trainer.retrain_every = 4;            // cadence does
    return cfg;
  };
  EngineCounters first;
  {
    storage::StorageManager storage(storage::StorageConfig{dir.str()});
    EngineFixture f;
    EngineConfig cfg = configure();
    cfg.storage = &storage;
    OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
    first = eng.run().counters;
  }
  ASSERT_GT(first.retrains, 0u);
  EXPECT_EQ(first.retrains, first.rounds / 4);

  // The restored schedule keeps counting rounds where it left off: the
  // combined run retrains exactly every 4th round overall, with no reset
  // or double-fire at the seam.
  storage::StorageManager storage(storage::StorageConfig{dir.str()});
  EngineFixture f;
  EngineConfig cfg = configure();
  cfg.storage = &storage;
  OnlineEngine eng(cfg, f.platform, f.embedder, f.predictor);
  (void)eng.recover();
  const EngineCounters second = eng.run().counters;
  EXPECT_GT(second.retrains, first.retrains);
  EXPECT_EQ(second.retrains, second.rounds / 4);
}

}  // namespace
}  // namespace mfcp::engine
