// Tests for the observability subsystem: metrics registry (including the
// sharded counters/histograms under real thread contention), snapshot
// merging, quantile estimation, Prometheus exposition, the JSONL writer's
// byte-stability, span tracing, and the /metrics HTTP exporter.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/span.hpp"

namespace mfcp::obs {
namespace {

// ----------------------------------------------------------- counters --

TEST(Counter, ConcurrentAddsEqualSerialTotal) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hammered");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, AddWithArgumentAndReset) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("steps");
  counter.add(5);
  counter.add();  // default increment
  EXPECT_EQ(counter.value(), 6u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

// ------------------------------------------------------------- gauges --

TEST(Gauge, LastWriteWins) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("drift");
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(1.25);
  gauge.set(-3.5);
  EXPECT_EQ(gauge.value(), -3.5);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

// --------------------------------------------------------- histograms --

TEST(Histogram, BucketBoundariesAreInclusiveUpperEdges) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0, 2.0, 4.0};
  Histogram& hist = registry.histogram("edges", kBounds);

  hist.observe(1.0);  // == first bound: first bucket (le semantics)
  hist.observe(std::nextafter(1.0, 2.0));  // just above: second bucket
  hist.observe(4.0);                       // == last bound: last finite
  hist.observe(std::nextafter(4.0, 5.0));  // just above: overflow
  hist.observe(-1.0);                      // below everything: first

  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(hist.count(), 5u);
}

TEST(Histogram, ConcurrentObservationsMatchSerialTotals) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {10.0, 100.0, 1000.0};
  Histogram& hist = registry.histogram("latency", kBounds);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deterministic spread across all four buckets.
        hist.observe(static_cast<double>(((t + i) % 4) * 300));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Values cycle 0, 300, 600, 900 uniformly: 0 lands in the first bucket,
  // the rest in the third (<= 1000), none overflow.
  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], static_cast<std::uint64_t>(kThreads) * kPerThread / 4);
  EXPECT_EQ(buckets[1], 0u);
  EXPECT_EQ(buckets[2],
            3u * static_cast<std::uint64_t>(kThreads) * kPerThread / 4);
  EXPECT_EQ(buckets[3], 0u);
  // Sum of the arithmetic series, exact in doubles (small integers).
  const double expected_sum =
      static_cast<double>(kThreads) * kPerThread / 4.0 * (0 + 300 + 600 + 900);
  EXPECT_DOUBLE_EQ(hist.sum(), expected_sum);
}

TEST(Histogram, SnapshotMergeEqualsCombinedSerialRun) {
  MetricsRegistry a;
  MetricsRegistry b;
  constexpr double kBounds[] = {1.0, 2.0};
  Histogram& ha = a.histogram("h", kBounds);
  Histogram& hb = b.histogram("h", kBounds);
  a.counter("c").add(3);
  b.counter("c").add(4);
  a.gauge("g").set(1.0);
  b.gauge("g").set(2.0);
  b.counter("only_b").add(7);
  ha.observe(0.5);
  ha.observe(1.5);
  hb.observe(1.5);
  hb.observe(9.0);

  RegistrySnapshot merged = a.snapshot();
  merged.merge(b.snapshot());

  ASSERT_EQ(merged.counters.size(), 2u);  // name-sorted: c, only_b
  EXPECT_EQ(merged.counters[0].first, "c");
  EXPECT_EQ(merged.counters[0].second, 7u);
  EXPECT_EQ(merged.counters[1].first, "only_b");
  EXPECT_EQ(merged.counters[1].second, 7u);
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_EQ(merged.gauges[0].second, 2.0);  // last writer (other) wins
  ASSERT_EQ(merged.histograms.size(), 1u);
  const HistogramSnapshot& h = merged.histograms[0];
  ASSERT_EQ(h.buckets.size(), 3u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 2u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.5 + 1.5 + 9.0);
}

// ----------------------------------------------------------- registry --

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& first = registry.counter("same");
  Counter& second = registry.counter("same");
  EXPECT_EQ(&first, &second);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0};
  Counter& counter = registry.counter("c");
  Gauge& gauge = registry.gauge("g");
  Histogram& hist = registry.histogram("h", kBounds);
  counter.add(5);
  gauge.set(2.5);
  hist.observe(0.5);

  registry.reset();

  // Cached pointers stay valid and land in the same (zeroed) metrics.
  counter.add(1);
  EXPECT_EQ(registry.counter("c").value(), 1u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0.0);
  const RegistrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 1u);
}

TEST(MetricsRegistry, DefaultRegistryStartsNullAndIsSettable) {
  EXPECT_EQ(default_registry(), nullptr);
  MetricsRegistry registry;
  set_default_registry(&registry);
  EXPECT_EQ(default_registry(), &registry);
  set_default_registry(nullptr);
  EXPECT_EQ(default_registry(), nullptr);
}

// --------------------------------------------------------- exposition --

TEST(Prometheus, RendersCountersGaugesAndCumulativeBuckets) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {0.5, 2.0};
  registry.counter("mfcp_rounds_total").add(3);
  registry.gauge("mfcp_drift").set(1.5);
  Histogram& hist = registry.histogram("mfcp_lat", kBounds);
  hist.observe(0.25);
  hist.observe(1.0);
  hist.observe(10.0);

  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE mfcp_rounds_total counter"), std::string::npos);
  EXPECT_NE(text.find("mfcp_rounds_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mfcp_drift gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mfcp_lat histogram"), std::string::npos);
  // Buckets are cumulative with an explicit +Inf.
  EXPECT_NE(text.find("mfcp_lat_bucket{le=\"0.5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("mfcp_lat_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("mfcp_lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("mfcp_lat_count 3"), std::string::npos);
}

TEST(Prometheus, SplicesLeIntoExistingLabelSet) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0};
  registry.histogram("stage_seconds{stage=\"embed\"}", kBounds).observe(0.5);

  const std::string text = to_prometheus(registry.snapshot());
  // The TYPE header uses the base name; buckets merge le into the braces.
  EXPECT_NE(text.find("# TYPE stage_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("stage_seconds_bucket{stage=\"embed\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_bucket{stage=\"embed\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_sum{stage=\"embed\"}"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_count{stage=\"embed\"} 1"),
            std::string::npos);
}

// -------------------------------------------------------------- jsonl --

TEST(JsonlWriter, PreservesFieldOrderAndIsByteStable) {
  const auto render = [] {
    std::ostringstream out;
    JsonlWriter journal(out);
    journal.field("round", std::uint64_t{7})
        .field("regret", 0.1)
        .field("trigger", std::string_view{"size"})
        .field("retrained", false);
    journal.end_record();
    journal.field("round", std::uint64_t{8}).field("regret", 1.0 / 3.0);
    journal.end_record();
    return out.str();
  };
  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.substr(0, first.find('\n')),
            "{\"round\":7,\"regret\":" + json_number(0.1) +
                ",\"trigger\":\"size\",\"retrained\":false}");
  EXPECT_EQ(std::count(first.begin(), first.end(), '\n'), 2);
}

TEST(JsonlWriter, EscapesStringsAndCountsRecords) {
  std::ostringstream out;
  JsonlWriter journal(out);
  journal.field("msg", std::string_view{"a\"b\\c\n"});
  journal.end_record();
  EXPECT_EQ(journal.records_written(), 1u);
  EXPECT_EQ(out.str(), "{\"msg\":\"a\\\"b\\\\c\\n\"}\n");
}

TEST(JsonlWriter, EscapesControlCharacters) {
  std::ostringstream out;
  JsonlWriter journal(out);
  // Short-form escapes for the named controls, \u00XX for the rest — a
  // raw control byte in the output would make the line invalid JSON.
  journal.field("msg", std::string_view{"\r\b\f\x01\x1f ok"});
  journal.end_record();
  EXPECT_EQ(out.str(), "{\"msg\":\"\\r\\b\\f\\u0001\\u001f ok\"}\n");
}

TEST(JsonlWriter, NonFiniteDoublesSerializeAsNull) {
  std::ostringstream out;
  JsonlWriter journal(out);
  journal.field("nan", std::numeric_limits<double>::quiet_NaN())
      .field("inf", std::numeric_limits<double>::infinity())
      .field("ninf", -std::numeric_limits<double>::infinity());
  journal.end_record();
  EXPECT_EQ(out.str(), "{\"nan\":null,\"inf\":null,\"ninf\":null}\n");
}

TEST(JsonNumber, RoundTripsAndHandlesNonFinite) {
  EXPECT_EQ(std::stod(json_number(1.0 / 3.0)), 1.0 / 3.0);
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

// -------------------------------------------------------------- spans --

TEST(ScopedSpan, RecordsIntoHistogramAndRing) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("span_seconds",
                                       default_time_bounds());
  TraceRing ring(8);
  {
    ScopedSpan span(&hist, "stage", &ring);
    span.stop();
    span.stop();  // idempotent: the destructor must not double-record
  }
  EXPECT_EQ(hist.count(), 1u);
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "stage");
}

TEST(ScopedSpan, NullSinksRecordNothing) {
  ScopedSpan span(nullptr, "noop", nullptr);
  span.stop();  // must not crash or touch any state
}

TEST(TraceRing, KeepsNewestSpansOldestFirst) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    SpanRecord rec;
    rec.name = "s";
    rec.start_ns = i;
    ring.record(rec);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t k = 0; k < spans.size(); ++k) {
    EXPECT_EQ(spans[k].start_ns, 6 + k);  // 6, 7, 8, 9: oldest first
  }
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRing, DrainToWritesJsonlAndClears) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 3; ++i) {
    SpanRecord rec;
    rec.name = "stage";
    rec.start_ns = 100 + i;
    rec.duration_ns = 10 * (i + 1);
    rec.thread = 7;
    ring.record(rec);
  }
  std::ostringstream out;
  JsonlWriter writer(out);
  EXPECT_EQ(ring.drain_to(writer), 3u);
  EXPECT_EQ(writer.records_written(), 3u);
  EXPECT_TRUE(ring.snapshot().empty());  // drained
  EXPECT_EQ(ring.recorded(), 3u);       // lifetime counter survives
  const std::string text = out.str();
  EXPECT_NE(text.find("{\"span\":\"stage\",\"start_ns\":100,"
                      "\"duration_ns\":10,\"thread\":7}"),
            std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  // Draining again is a no-op.
  EXPECT_EQ(ring.drain_to(writer), 0u);
}

// ---------------------------------------------------------- quantiles --

HistogramSnapshot histogram_snapshot_of(MetricsRegistry& registry,
                                        std::string_view name) {
  for (auto& h : registry.snapshot().histograms) {
    if (h.name == name) {
      return h;
    }
  }
  ADD_FAILURE() << "histogram " << name << " not found";
  return {};
}

TEST(HistogramQuantile, EmptyHistogramHasNoEstimate) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0, 2.0};
  registry.histogram("empty", kBounds);
  const auto snap = histogram_snapshot_of(registry, "empty");
  EXPECT_TRUE(std::isnan(histogram_quantile(snap, 0.5)));
}

TEST(HistogramQuantile, InterpolatesWithinASingleBucket) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {10.0};
  Histogram& h = registry.histogram("one_bucket", kBounds);
  for (int i = 0; i < 4; ++i) {
    h.observe(5.0);
  }
  const auto snap = histogram_snapshot_of(registry, "one_bucket");
  // All mass in [0, 10): linear interpolation puts the median at rank
  // 2 of 4 -> halfway through the bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 1.0), 10.0);
  // Out-of-range q clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, -3.0),
                   histogram_quantile(snap, 0.0));
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 42.0),
                   histogram_quantile(snap, 1.0));
}

TEST(HistogramQuantile, OverflowMassClampsToLargestFiniteBound) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0, 2.0};
  Histogram& h = registry.histogram("overflow", kBounds);
  h.observe(0.5);
  h.observe(100.0);  // +Inf bucket
  h.observe(200.0);
  const auto snap = histogram_snapshot_of(registry, "overflow");
  // p99 lands in the open-ended bucket; the honest answer is the largest
  // finite boundary, not an invented extrapolation.
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.99), 2.0);
}

TEST(HistogramQuantile, MatchesExactRanksAcrossBuckets) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0, 2.0, 4.0};
  Histogram& h = registry.histogram("spread", kBounds);
  h.observe(0.5);  // bucket [.., 1)
  h.observe(1.5);  // bucket [1, 2)
  h.observe(3.0);  // bucket [2, 4)
  h.observe(3.5);
  const auto snap = histogram_snapshot_of(registry, "spread");
  // rank(0.5) = 2 of 4: exactly exhausts the second bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.5), 2.0);
  // rank(0.75) = 3 of 4: halfway through the third bucket's two samples.
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.75), 3.0);
}

TEST(Prometheus, QuantileGaugesFollowHistogramsWithoutInterleaving) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0, 2.0};
  registry.histogram("lat{stage=\"a\"}", kBounds).observe(0.5);
  registry.histogram("lat{stage=\"b\"}", kBounds).observe(1.5);
  registry.histogram("silent", kBounds);  // empty: no quantile series

  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE lat_quantile gauge"), std::string::npos);
  EXPECT_NE(text.find("lat_quantile{stage=\"a\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lat_quantile{stage=\"b\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_EQ(text.find("silent_quantile"), std::string::npos);
  // One header for the whole _quantile family, after every histogram
  // sample (families must stay contiguous for strict parsers).
  const auto header = text.find("# TYPE lat_quantile gauge");
  EXPECT_EQ(text.find("# TYPE lat_quantile gauge", header + 1),
            std::string::npos);
  EXPECT_GT(header, text.rfind("_bucket"));
}

// ------------------------------------------------------- http exporter --

TEST(HttpExporter, ParsesWellFormedRequestLines) {
  const auto req = HttpExporter::parse_request_line("GET /metrics HTTP/1.1");
  EXPECT_TRUE(req.valid);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/metrics");
  const auto crlf =
      HttpExporter::parse_request_line("GET /healthz HTTP/1.0\r");
  EXPECT_TRUE(crlf.valid);
  EXPECT_EQ(crlf.path, "/healthz");
}

TEST(HttpExporter, RejectsMalformedRequestLines) {
  EXPECT_FALSE(HttpExporter::parse_request_line("").valid);
  EXPECT_FALSE(HttpExporter::parse_request_line("GET").valid);
  EXPECT_FALSE(HttpExporter::parse_request_line("GET /metrics").valid);
  EXPECT_FALSE(HttpExporter::parse_request_line("GET  HTTP/1.1").valid);
  EXPECT_FALSE(
      HttpExporter::parse_request_line("GET /a HTTP/1.1 junk").valid);
}

TEST(HttpExporter, RespondRoutesAndStatusCodes) {
  MetricsRegistry registry;
  registry.counter("pings_total").add(2);
  const auto snapshot = [&registry] { return registry.snapshot(); };

  const std::string metrics = HttpExporter::respond(
      HttpExporter::parse_request_line("GET /metrics HTTP/1.1"), snapshot);
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("pings_total 2"), std::string::npos);

  const std::string health = HttpExporter::respond(
      HttpExporter::parse_request_line("GET /healthz HTTP/1.1"), snapshot);
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string missing = HttpExporter::respond(
      HttpExporter::parse_request_line("GET /nope HTTP/1.1"), snapshot);
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);

  const std::string post = HttpExporter::respond(
      HttpExporter::parse_request_line("POST /metrics HTTP/1.1"), snapshot);
  EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos);
  EXPECT_NE(post.find("Allow: GET"), std::string::npos);

  const std::string bad =
      HttpExporter::respond(HttpExporter::parse_request_line(""), snapshot);
  EXPECT_NE(bad.find("404"), std::string::npos);
}

/// One real scrape through the socket path: connect to the ephemeral
/// port, send a request, read the full response.
std::string scrape(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char buf[1024];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpExporter, ServesLiveSnapshotsOverRealSockets) {
  MetricsRegistry registry;
  registry.counter("live_total").add(1);
  HttpExporter exporter([&registry] { return registry.snapshot(); });
  ASSERT_GT(exporter.port(), 0);  // ephemeral port was bound

  const std::string first =
      scrape(exporter.port(), "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(first.find("200 OK"), std::string::npos);
  EXPECT_NE(first.find("live_total 1"), std::string::npos);

  // The exporter snapshots per scrape: a later request sees newer values.
  registry.counter("live_total").add(4);
  const std::string second =
      scrape(exporter.port(), "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(second.find("live_total 5"), std::string::npos);

  const std::string health =
      scrape(exporter.port(), "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(health.find("200 OK"), std::string::npos);

  exporter.stop();
  EXPECT_EQ(exporter.requests_served(), 3u);
  exporter.stop();  // idempotent
}

}  // namespace
}  // namespace mfcp::obs
