// Tests for the observability subsystem: metrics registry (including the
// sharded counters/histograms under real thread contention), snapshot
// merging, quantile estimation, Prometheus exposition, the JSONL writer's
// byte-stability, span tracing, and the /metrics HTTP exporter.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/flight.hpp"
#include "obs/http_exporter.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/sinks.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/trace_store.hpp"

namespace mfcp::obs {
namespace {

// ----------------------------------------------------------- counters --

TEST(Counter, ConcurrentAddsEqualSerialTotal) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hammered");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, AddWithArgumentAndReset) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("steps");
  counter.add(5);
  counter.add();  // default increment
  EXPECT_EQ(counter.value(), 6u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

// ------------------------------------------------------------- gauges --

TEST(Gauge, LastWriteWins) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("drift");
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(1.25);
  gauge.set(-3.5);
  EXPECT_EQ(gauge.value(), -3.5);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

// --------------------------------------------------------- histograms --

TEST(Histogram, BucketBoundariesAreInclusiveUpperEdges) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0, 2.0, 4.0};
  Histogram& hist = registry.histogram("edges", kBounds);

  hist.observe(1.0);  // == first bound: first bucket (le semantics)
  hist.observe(std::nextafter(1.0, 2.0));  // just above: second bucket
  hist.observe(4.0);                       // == last bound: last finite
  hist.observe(std::nextafter(4.0, 5.0));  // just above: overflow
  hist.observe(-1.0);                      // below everything: first

  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(hist.count(), 5u);
}

TEST(Histogram, ConcurrentObservationsMatchSerialTotals) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {10.0, 100.0, 1000.0};
  Histogram& hist = registry.histogram("latency", kBounds);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deterministic spread across all four buckets.
        hist.observe(static_cast<double>(((t + i) % 4) * 300));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Values cycle 0, 300, 600, 900 uniformly: 0 lands in the first bucket,
  // the rest in the third (<= 1000), none overflow.
  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], static_cast<std::uint64_t>(kThreads) * kPerThread / 4);
  EXPECT_EQ(buckets[1], 0u);
  EXPECT_EQ(buckets[2],
            3u * static_cast<std::uint64_t>(kThreads) * kPerThread / 4);
  EXPECT_EQ(buckets[3], 0u);
  // Sum of the arithmetic series, exact in doubles (small integers).
  const double expected_sum =
      static_cast<double>(kThreads) * kPerThread / 4.0 * (0 + 300 + 600 + 900);
  EXPECT_DOUBLE_EQ(hist.sum(), expected_sum);
}

TEST(Histogram, SnapshotMergeEqualsCombinedSerialRun) {
  MetricsRegistry a;
  MetricsRegistry b;
  constexpr double kBounds[] = {1.0, 2.0};
  Histogram& ha = a.histogram("h", kBounds);
  Histogram& hb = b.histogram("h", kBounds);
  a.counter("c").add(3);
  b.counter("c").add(4);
  a.gauge("g").set(1.0);
  b.gauge("g").set(2.0);
  b.counter("only_b").add(7);
  ha.observe(0.5);
  ha.observe(1.5);
  hb.observe(1.5);
  hb.observe(9.0);

  RegistrySnapshot merged = a.snapshot();
  merged.merge(b.snapshot());

  ASSERT_EQ(merged.counters.size(), 2u);  // name-sorted: c, only_b
  EXPECT_EQ(merged.counters[0].first, "c");
  EXPECT_EQ(merged.counters[0].second, 7u);
  EXPECT_EQ(merged.counters[1].first, "only_b");
  EXPECT_EQ(merged.counters[1].second, 7u);
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_EQ(merged.gauges[0].second, 2.0);  // last writer (other) wins
  ASSERT_EQ(merged.histograms.size(), 1u);
  const HistogramSnapshot& h = merged.histograms[0];
  ASSERT_EQ(h.buckets.size(), 3u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 2u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.5 + 1.5 + 9.0);
}

// ----------------------------------------------------------- registry --

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& first = registry.counter("same");
  Counter& second = registry.counter("same");
  EXPECT_EQ(&first, &second);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0};
  Counter& counter = registry.counter("c");
  Gauge& gauge = registry.gauge("g");
  Histogram& hist = registry.histogram("h", kBounds);
  counter.add(5);
  gauge.set(2.5);
  hist.observe(0.5);

  registry.reset();

  // Cached pointers stay valid and land in the same (zeroed) metrics.
  counter.add(1);
  EXPECT_EQ(registry.counter("c").value(), 1u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0.0);
  const RegistrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 1u);
}

TEST(MetricsRegistry, DefaultRegistryStartsNullAndIsSettable) {
  EXPECT_EQ(default_registry(), nullptr);
  MetricsRegistry registry;
  set_default_registry(&registry);
  EXPECT_EQ(default_registry(), &registry);
  set_default_registry(nullptr);
  EXPECT_EQ(default_registry(), nullptr);
}

// --------------------------------------------------------- exposition --

TEST(Prometheus, RendersCountersGaugesAndCumulativeBuckets) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {0.5, 2.0};
  registry.counter("mfcp_rounds_total").add(3);
  registry.gauge("mfcp_drift").set(1.5);
  Histogram& hist = registry.histogram("mfcp_lat", kBounds);
  hist.observe(0.25);
  hist.observe(1.0);
  hist.observe(10.0);

  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE mfcp_rounds_total counter"), std::string::npos);
  EXPECT_NE(text.find("mfcp_rounds_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mfcp_drift gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mfcp_lat histogram"), std::string::npos);
  // Buckets are cumulative with an explicit +Inf.
  EXPECT_NE(text.find("mfcp_lat_bucket{le=\"0.5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("mfcp_lat_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("mfcp_lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("mfcp_lat_count 3"), std::string::npos);
}

TEST(Prometheus, SplicesLeIntoExistingLabelSet) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0};
  registry.histogram("stage_seconds{stage=\"embed\"}", kBounds).observe(0.5);

  const std::string text = to_prometheus(registry.snapshot());
  // The TYPE header uses the base name; buckets merge le into the braces.
  EXPECT_NE(text.find("# TYPE stage_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("stage_seconds_bucket{stage=\"embed\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_bucket{stage=\"embed\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_sum{stage=\"embed\"}"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_count{stage=\"embed\"} 1"),
            std::string::npos);
}

// -------------------------------------------------------------- jsonl --

TEST(JsonlWriter, PreservesFieldOrderAndIsByteStable) {
  const auto render = [] {
    std::ostringstream out;
    JsonlWriter journal(out);
    journal.field("round", std::uint64_t{7})
        .field("regret", 0.1)
        .field("trigger", std::string_view{"size"})
        .field("retrained", false);
    journal.end_record();
    journal.field("round", std::uint64_t{8}).field("regret", 1.0 / 3.0);
    journal.end_record();
    return out.str();
  };
  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.substr(0, first.find('\n')),
            "{\"round\":7,\"regret\":" + json_number(0.1) +
                ",\"trigger\":\"size\",\"retrained\":false}");
  EXPECT_EQ(std::count(first.begin(), first.end(), '\n'), 2);
}

TEST(JsonlWriter, EscapesStringsAndCountsRecords) {
  std::ostringstream out;
  JsonlWriter journal(out);
  journal.field("msg", std::string_view{"a\"b\\c\n"});
  journal.end_record();
  EXPECT_EQ(journal.records_written(), 1u);
  EXPECT_EQ(out.str(), "{\"msg\":\"a\\\"b\\\\c\\n\"}\n");
}

TEST(JsonlWriter, EscapesControlCharacters) {
  std::ostringstream out;
  JsonlWriter journal(out);
  // Short-form escapes for the named controls, \u00XX for the rest — a
  // raw control byte in the output would make the line invalid JSON.
  journal.field("msg", std::string_view{"\r\b\f\x01\x1f ok"});
  journal.end_record();
  EXPECT_EQ(out.str(), "{\"msg\":\"\\r\\b\\f\\u0001\\u001f ok\"}\n");
}

TEST(JsonlWriter, NonFiniteDoublesSerializeAsNull) {
  std::ostringstream out;
  JsonlWriter journal(out);
  journal.field("nan", std::numeric_limits<double>::quiet_NaN())
      .field("inf", std::numeric_limits<double>::infinity())
      .field("ninf", -std::numeric_limits<double>::infinity());
  journal.end_record();
  EXPECT_EQ(out.str(), "{\"nan\":null,\"inf\":null,\"ninf\":null}\n");
}

TEST(JsonNumber, RoundTripsAndHandlesNonFinite) {
  EXPECT_EQ(std::stod(json_number(1.0 / 3.0)), 1.0 / 3.0);
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

// -------------------------------------------------------------- spans --

TEST(ScopedSpan, RecordsIntoHistogramAndRing) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("span_seconds",
                                       default_time_bounds());
  TraceRing ring(8);
  {
    ScopedSpan span(&hist, "stage", &ring);
    span.stop();
    span.stop();  // idempotent: the destructor must not double-record
  }
  EXPECT_EQ(hist.count(), 1u);
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "stage");
}

TEST(ScopedSpan, NullSinksRecordNothing) {
  ScopedSpan span(nullptr, "noop", nullptr);
  span.stop();  // must not crash or touch any state
}

TEST(TraceRing, KeepsNewestSpansOldestFirst) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    SpanRecord rec;
    rec.name = "s";
    rec.start_ns = i;
    ring.record(rec);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t k = 0; k < spans.size(); ++k) {
    EXPECT_EQ(spans[k].start_ns, 6 + k);  // 6, 7, 8, 9: oldest first
  }
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(TraceRing, DrainToWritesJsonlAndClears) {
  TraceRing ring(8);
  for (std::uint64_t i = 0; i < 3; ++i) {
    SpanRecord rec;
    rec.name = "stage";
    rec.start_ns = 100 + i;
    rec.duration_ns = 10 * (i + 1);
    rec.thread = 7;
    ring.record(rec);
  }
  std::ostringstream out;
  JsonlWriter writer(out);
  EXPECT_EQ(ring.drain_to(writer), 3u);
  EXPECT_EQ(writer.records_written(), 3u);
  EXPECT_TRUE(ring.snapshot().empty());  // drained
  EXPECT_EQ(ring.recorded(), 3u);       // lifetime counter survives
  const std::string text = out.str();
  EXPECT_NE(text.find("{\"span\":\"stage\",\"start_ns\":100,"
                      "\"duration_ns\":10,\"thread\":7}"),
            std::string::npos);
  EXPECT_EQ(std::count(text.begin(), text.end(), '\n'), 3);
  // Draining again is a no-op.
  EXPECT_EQ(ring.drain_to(writer), 0u);
}

// ---------------------------------------------------------- quantiles --

HistogramSnapshot histogram_snapshot_of(MetricsRegistry& registry,
                                        std::string_view name) {
  for (auto& h : registry.snapshot().histograms) {
    if (h.name == name) {
      return h;
    }
  }
  ADD_FAILURE() << "histogram " << name << " not found";
  return {};
}

TEST(HistogramQuantile, EmptyHistogramHasNoEstimate) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0, 2.0};
  registry.histogram("empty", kBounds);
  const auto snap = histogram_snapshot_of(registry, "empty");
  EXPECT_TRUE(std::isnan(histogram_quantile(snap, 0.5)));
}

TEST(HistogramQuantile, InterpolatesWithinASingleBucket) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {10.0};
  Histogram& h = registry.histogram("one_bucket", kBounds);
  for (int i = 0; i < 4; ++i) {
    h.observe(5.0);
  }
  const auto snap = histogram_snapshot_of(registry, "one_bucket");
  // All mass in [0, 10): linear interpolation puts the median at rank
  // 2 of 4 -> halfway through the bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 1.0), 10.0);
  // Out-of-range q clamps instead of extrapolating.
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, -3.0),
                   histogram_quantile(snap, 0.0));
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 42.0),
                   histogram_quantile(snap, 1.0));
}

TEST(HistogramQuantile, OverflowMassClampsToLargestFiniteBound) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0, 2.0};
  Histogram& h = registry.histogram("overflow", kBounds);
  h.observe(0.5);
  h.observe(100.0);  // +Inf bucket
  h.observe(200.0);
  const auto snap = histogram_snapshot_of(registry, "overflow");
  // p99 lands in the open-ended bucket; the honest answer is the largest
  // finite boundary, not an invented extrapolation.
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.99), 2.0);
}

TEST(HistogramQuantile, MatchesExactRanksAcrossBuckets) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0, 2.0, 4.0};
  Histogram& h = registry.histogram("spread", kBounds);
  h.observe(0.5);  // bucket [.., 1)
  h.observe(1.5);  // bucket [1, 2)
  h.observe(3.0);  // bucket [2, 4)
  h.observe(3.5);
  const auto snap = histogram_snapshot_of(registry, "spread");
  // rank(0.5) = 2 of 4: exactly exhausts the second bucket.
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.5), 2.0);
  // rank(0.75) = 3 of 4: halfway through the third bucket's two samples.
  EXPECT_DOUBLE_EQ(histogram_quantile(snap, 0.75), 3.0);
}

TEST(Prometheus, QuantileGaugesFollowHistogramsWithoutInterleaving) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0, 2.0};
  registry.histogram("lat{stage=\"a\"}", kBounds).observe(0.5);
  registry.histogram("lat{stage=\"b\"}", kBounds).observe(1.5);
  registry.histogram("silent", kBounds);  // empty: no quantile series

  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE lat_quantile gauge"), std::string::npos);
  EXPECT_NE(text.find("lat_quantile{stage=\"a\",quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("lat_quantile{stage=\"b\",quantile=\"0.99\"}"),
            std::string::npos);
  EXPECT_EQ(text.find("silent_quantile"), std::string::npos);
  // One header for the whole _quantile family, after every histogram
  // sample (families must stay contiguous for strict parsers).
  const auto header = text.find("# TYPE lat_quantile gauge");
  EXPECT_EQ(text.find("# TYPE lat_quantile gauge", header + 1),
            std::string::npos);
  EXPECT_GT(header, text.rfind("_bucket"));
}

// -------------------------------------------------------- trace ids --

TEST(TraceId, MintIsDeterministicAndNeverZero) {
  EXPECT_EQ(mint_trace_id(7, 0xabc), mint_trace_id(7, 0xabc));
  EXPECT_NE(mint_trace_id(7, 0xabc), mint_trace_id(8, 0xabc));
  EXPECT_NE(mint_trace_id(7, 0xabc), mint_trace_id(7, 0xabd));
  // The zero input must still mint a usable (nonzero) id.
  EXPECT_NE(mint_trace_id(0, 0), 0u);
}

TEST(TraceId, FormatParsesBackAndRejectsMalformed) {
  const std::uint64_t id = mint_trace_id(42, 1);
  const std::string hex = format_trace_id(id);
  EXPECT_EQ(hex.size(), 16u);
  ASSERT_TRUE(parse_trace_id(hex).has_value());
  EXPECT_EQ(*parse_trace_id(hex), id);
  EXPECT_FALSE(parse_trace_id("").has_value());
  EXPECT_FALSE(parse_trace_id("12345").has_value());            // short
  EXPECT_FALSE(parse_trace_id("zz345678zz345678").has_value()); // non-hex
  EXPECT_FALSE(parse_trace_id("0000000000000000").has_value()); // sentinel
}

TEST(TraceId, SamplingEdgesAndDeterminism) {
  for (std::uint64_t task = 0; task < 64; ++task) {
    const std::uint64_t id = mint_trace_id(task, 0x5a17);
    EXPECT_TRUE(trace_sampled(id, 1.0));
    EXPECT_TRUE(trace_sampled(id, 2.0));   // clamps above 1
    EXPECT_FALSE(trace_sampled(id, 0.0));
    EXPECT_FALSE(trace_sampled(id, -0.5)); // clamps below 0
    // The decision is a pure function: recomputing never flips it.
    EXPECT_EQ(trace_sampled(id, 0.5), trace_sampled(id, 0.5));
  }
  // At rate 0.5 some tasks sample and some do not (the hash spreads).
  std::size_t sampled = 0;
  for (std::uint64_t task = 0; task < 256; ++task) {
    sampled += trace_sampled(mint_trace_id(task, 0x5a17), 0.5) ? 1 : 0;
  }
  EXPECT_GT(sampled, 0u);
  EXPECT_LT(sampled, 256u);
}

TEST(TraceContext, UnsampledContextIsTheZeroSentinel) {
  const TraceContext on = make_trace_context(3, 0x5a17, 1.0);
  EXPECT_TRUE(on.sampled());
  EXPECT_EQ(on.trace_id, mint_trace_id(3, 0x5a17));
  const TraceContext off = make_trace_context(3, 0x5a17, 0.0);
  EXPECT_FALSE(off.sampled());
  EXPECT_EQ(off.trace_id, 0u);
}

// -------------------------------------------------------- trace store --

TaskSpan span_named(const char* name, double t) {
  TaskSpan s;
  s.name = name;
  s.start_hours = t;
  s.end_hours = t;
  return s;
}

TEST(TraceStore, BeginAppendFinishAndLookups) {
  TraceStore store(8);
  const std::uint64_t trace_id = mint_trace_id(11, 0);
  EXPECT_TRUE(store.begin(11, trace_id, 0.5));
  EXPECT_FALSE(store.begin(11, trace_id, 0.6));  // idempotent for live ids
  EXPECT_TRUE(store.append(11, span_named("submit", 0.5)));
  EXPECT_TRUE(store.append(11, span_named("queue_wait", 0.7)));
  // Untraced task: every call is a quiet no-op.
  EXPECT_FALSE(store.append(99, span_named("submit", 0.0)));
  EXPECT_FALSE(store.finish(99, "dispatched"));

  const auto by_trace = store.find_by_trace(trace_id);
  ASSERT_TRUE(by_trace.has_value());
  EXPECT_EQ(by_trace->task_id, 11u);
  EXPECT_FALSE(by_trace->finished());
  EXPECT_EQ(by_trace->chain(), "submit>queue_wait");

  EXPECT_TRUE(store.finish(11, "dispatched"));
  const auto by_task = store.find_by_task(11);
  ASSERT_TRUE(by_task.has_value());
  EXPECT_EQ(by_task->final_state, "dispatched");
  EXPECT_TRUE(by_task->finished());
}

TEST(TraceStore, EvictionPrefersOldestFinishedTrace) {
  TraceStore store(2);
  store.begin(1, mint_trace_id(1, 0), 0.0);  // stays in flight
  store.begin(2, mint_trace_id(2, 0), 1.0);
  store.finish(2, "dispatched");
  // Full. The next begin must evict task 2 (oldest *finished*), keeping
  // the older but still-live task 1.
  store.begin(3, mint_trace_id(3, 0), 2.0);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_TRUE(store.find_by_task(1).has_value());
  EXPECT_FALSE(store.find_by_task(2).has_value());
  EXPECT_TRUE(store.find_by_task(3).has_value());
  // Nothing finished: eviction falls back to the oldest outright.
  store.begin(4, mint_trace_id(4, 0), 3.0);
  EXPECT_FALSE(store.find_by_task(1).has_value());
  EXPECT_TRUE(store.find_by_task(3).has_value());
  EXPECT_TRUE(store.find_by_task(4).has_value());
  EXPECT_EQ(store.evicted(), 2u);
  EXPECT_EQ(store.begun(), 4u);
}

TEST(TraceStore, SurvivesChurnFarPastCapacity) {
  TraceStore store(16);
  for (std::uint64_t id = 0; id < 500; ++id) {
    store.begin(id, mint_trace_id(id, 7), static_cast<double>(id));
    store.append(id, span_named("submit", static_cast<double>(id)));
    if (id % 2 == 0) {
      store.finish(id, "dispatched");
    }
  }
  EXPECT_EQ(store.size(), 16u);
  EXPECT_EQ(store.begun(), 500u);
  EXPECT_EQ(store.evicted(), 500u - 16u);
  // The newest trace is always queryable after churn.
  EXPECT_TRUE(store.find_by_task(499).has_value());
}

TEST(TraceStore, DrainWritesDeterministicFieldsAndClears) {
  TraceStore store(8);
  store.begin(5, mint_trace_id(5, 0), 0.25);
  TaskSpan s = span_named("submit", 0.25);
  s.duration_ns = 12345;  // wall clock: must NOT reach the JSONL
  s.value = 1.5;
  s.detail = "gpu-a";
  store.append(5, s);
  store.finish(5, "dispatched");
  store.begin(6, mint_trace_id(6, 0), 0.5);  // drained while in flight

  std::ostringstream out;
  JsonlWriter writer(out);
  EXPECT_EQ(store.drain_to(writer, "online"), 2u);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.begun(), 2u);  // lifetime counters survive the drain

  const std::string text = out.str();
  EXPECT_NE(text.find("\"mode\":\"online\""), std::string::npos);
  EXPECT_NE(text.find("\"trace_id\":\"" + format_trace_id(
                          mint_trace_id(5, 0)) + "\""),
            std::string::npos);
  EXPECT_NE(text.find("\"state\":\"dispatched\""), std::string::npos);
  EXPECT_NE(text.find("\"state\":\"in_flight\""), std::string::npos);
  EXPECT_NE(text.find("\"s0_value\":"), std::string::npos);
  EXPECT_NE(text.find("\"s0_detail\":\"gpu-a\""), std::string::npos);
  EXPECT_EQ(text.find("duration"), std::string::npos);
  // A second drain has nothing left.
  EXPECT_EQ(store.drain_to(writer), 0u);
}

// ----------------------------------------------------------- rebucket --

TEST(Histogram, RebucketFoldsCountsConservatively) {
  MetricsRegistry registry;
  constexpr double kOld[] = {1.0, 2.0, 4.0};
  Histogram& hist = registry.histogram("fold", kOld);
  hist.observe(0.5);   // le 1
  hist.observe(1.5);   // le 2
  hist.observe(3.0);   // le 4
  hist.observe(10.0);  // overflow

  constexpr double kNew[] = {2.0, 8.0};
  hist.rebucket(kNew);

  // Old bound 1 and 2 fold into le=2; bound 4 folds up into le=8 (the
  // first new bound that still upper-bounds it); overflow stays overflow.
  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 3u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.sum(), 0.5 + 1.5 + 3.0 + 10.0);
  // New observations land on the new grid.
  hist.observe(5.0);
  EXPECT_EQ(hist.bucket_counts()[1], 2u);
}

TEST(Histogram, RebucketWithNoCoveringBoundGoesToOverflow) {
  MetricsRegistry registry;
  constexpr double kOld[] = {1.0, 2.0};
  Histogram& hist = registry.histogram("fold_overflow", kOld);
  hist.observe(0.5);
  hist.observe(1.5);

  // No new bound covers the old ones: the conservative target is the
  // overflow bucket (the fold may never under-report a bound).
  constexpr double kNew[] = {0.25};
  hist.rebucket(kNew);
  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_EQ(buckets[0], 0u);
  EXPECT_EQ(buckets[1], 2u);
  EXPECT_EQ(hist.count(), 2u);
}

TEST(MetricsRegistry, FindHistogramReturnsNullForUnknownNames) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.find_histogram("nope"), nullptr);
  constexpr double kBounds[] = {1.0};
  Histogram& hist = registry.histogram("known", kBounds);
  EXPECT_EQ(registry.find_histogram("known"), &hist);
}

TEST(TightenLatencyBuckets, RescalesAroundTheTarget) {
  MetricsRegistry registry;
  EXPECT_FALSE(tighten_latency_buckets(registry, "absent", 0.05));
  constexpr double kBounds[] = {1.0, 10.0};
  Histogram& hist = registry.histogram("mfcp_gw_submit", kBounds);
  EXPECT_TRUE(tighten_latency_buckets(registry, "mfcp_gw_submit", 0.05));
  // The new grid brackets the target with sub-target resolution.
  hist.observe(0.049);
  hist.observe(0.051);
  const auto buckets = hist.bucket_counts();
  ASSERT_GT(buckets.size(), 4u);
  // The two observations straddle the target boundary: they must not land
  // in the same bucket.
  std::size_t nonzero = 0;
  for (const auto b : buckets) {
    nonzero += b > 0 ? 1 : 0;
  }
  EXPECT_EQ(nonzero, 2u);
}

// -------------------------------------------------------- slo monitor --

TEST(SloMonitor, EmptyWindowsBurnNothing) {
  SloMonitor monitor;
  const auto states = monitor.evaluate(0.0);
  ASSERT_EQ(states.size(), 4u);
  EXPECT_EQ(states[0].sli, "submit_latency");
  EXPECT_EQ(states[1].sli, "dispatch_success");
  EXPECT_EQ(states[2].sli, "expiry");
  EXPECT_EQ(states[3].sli, "regret_gap");
  for (const auto& s : states) {
    EXPECT_EQ(s.fast_burn, 0.0) << s.sli;
    EXPECT_EQ(s.slow_burn, 0.0) << s.sli;
    EXPECT_FALSE(s.firing) << s.sli;
    EXPECT_EQ(s.samples, 0u) << s.sli;
  }
}

TEST(SloMonitor, ExactlyAtBudgetBurnsAtExactlyOne) {
  SloConfig cfg;
  // A dyadic budget so "bad fraction == budget" is exact in doubles.
  cfg.submit_latency_objective = 0.875;  // error budget = 0.125
  SloMonitor monitor(cfg);
  for (int i = 0; i < 8; ++i) {
    // 1 of 8 submits over the 50 ms target: bad fraction == budget.
    monitor.observe_submit(0.0, i == 0 ? 1.0 : 0.001);
  }
  const auto states = monitor.evaluate(0.0);
  EXPECT_EQ(states[0].fast_burn, 1.0);
  EXPECT_EQ(states[0].slow_burn, 1.0);
  EXPECT_FALSE(states[0].firing);  // threshold is 2.0
  EXPECT_EQ(states[0].samples, 8u);
}

TEST(SloMonitor, FiresOnlyWhenBothWindowsBurn) {
  SloMonitor monitor;  // dispatch error budget = 0.10, threshold 2.0
  // Lots of healthy traffic early in the slow window...
  monitor.observe_round(1.2, 100, 100, 0, 0.0, false);
  // ...then a total outage inside the fast window (last 5 sim-minutes).
  monitor.observe_round(1.95, 10, 0, 0, 0.0, false);
  auto states = monitor.evaluate(2.0);
  EXPECT_GT(states[1].fast_burn, 2.0);
  EXPECT_LT(states[1].slow_burn, 2.0);  // 10/110 bad = burn 0.91
  EXPECT_FALSE(states[1].firing) << "a brief spike must not page";

  // More failures mid-window push the slow burn over too: now it fires.
  monitor.observe_round(1.5, 20, 0, 0, 0.0, false);
  states = monitor.evaluate(2.0);
  EXPECT_GT(states[1].fast_burn, 2.0);
  EXPECT_GT(states[1].slow_burn, 2.0);
  EXPECT_TRUE(states[1].firing);

  // Once the outage ages out of both windows the rule clears.
  states = monitor.evaluate(4.0);
  EXPECT_FALSE(states[1].firing);
  EXPECT_EQ(states[1].samples, 0u);
}

TEST(SloMonitor, ExpiryAndRegretSlisObserveRounds) {
  SloMonitor monitor;
  // 5 expiries against 15 admitted (10 batched + 5 expired) = 1/3 bad,
  // budget 0.05 -> burn ~6.7 in both windows.
  monitor.observe_round(0.01, 10, 10, 5, 0.0, false);
  // Regret gap: mean 1.0 against budget 0.5 -> burn 2.0 exactly (not >).
  monitor.observe_round(0.02, 10, 10, 0, 1.0, true);
  const auto states = monitor.evaluate(0.05);
  EXPECT_GT(states[2].fast_burn, 2.0);
  EXPECT_TRUE(states[2].firing);
  EXPECT_DOUBLE_EQ(states[3].fast_burn, 2.0);
  EXPECT_FALSE(states[3].firing);  // strict threshold: 2.0 is not > 2.0
  // A negative gap (matcher beat the hindsight bound) must not burn.
  SloMonitor negative;
  negative.observe_round(0.01, 10, 10, 0, -1.0, true);
  EXPECT_EQ(negative.evaluate(0.05)[3].fast_burn, 0.0);
}

TEST(SloMonitor, ExportsGaugeFamiliesWithSliLabels) {
  MetricsRegistry registry;
  SloMonitor monitor;
  monitor.bind_metrics(&registry);
  monitor.observe_submit(0.0, 1.0);  // one bad submit
  monitor.evaluate(0.0);
  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("mfcp_slo_value{sli=\"submit_latency\"}"),
            std::string::npos);
  EXPECT_NE(text.find("mfcp_slo_budget{sli=\"dispatch_success\"}"),
            std::string::npos);
  EXPECT_NE(text.find(
                "mfcp_slo_burn_rate{sli=\"expiry\",window=\"fast\"}"),
            std::string::npos);
  EXPECT_NE(text.find(
                "mfcp_slo_burn_rate{sli=\"regret_gap\",window=\"slow\"}"),
            std::string::npos);
  EXPECT_NE(text.find("mfcp_slo_firing{sli=\"submit_latency\"}"),
            std::string::npos);
}

TEST(SloSummaryTable, RendersOneRowPerSli) {
  SloMonitor monitor;
  monitor.observe_round(0.0, 10, 10, 0, 0.0, false);
  const std::string table = slo_summary_table(monitor.evaluate(0.0));
  EXPECT_NE(table.find("submit_latency"), std::string::npos);
  EXPECT_NE(table.find("dispatch_success"), std::string::npos);
  EXPECT_NE(table.find("expiry"), std::string::npos);
  EXPECT_NE(table.find("regret_gap"), std::string::npos);
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 5);  // header + 4
}

// ------------------------------------------------------- http exporter --

TEST(HttpExporter, ParsesWellFormedRequestLines) {
  const auto req = HttpExporter::parse_request_line("GET /metrics HTTP/1.1");
  EXPECT_TRUE(req.valid);
  EXPECT_EQ(req.method, "GET");
  EXPECT_EQ(req.path, "/metrics");
  const auto crlf =
      HttpExporter::parse_request_line("GET /healthz HTTP/1.0\r");
  EXPECT_TRUE(crlf.valid);
  EXPECT_EQ(crlf.path, "/healthz");
}

TEST(HttpExporter, RejectsMalformedRequestLines) {
  EXPECT_FALSE(HttpExporter::parse_request_line("").valid);
  EXPECT_FALSE(HttpExporter::parse_request_line("GET").valid);
  EXPECT_FALSE(HttpExporter::parse_request_line("GET /metrics").valid);
  EXPECT_FALSE(HttpExporter::parse_request_line("GET  HTTP/1.1").valid);
  EXPECT_FALSE(
      HttpExporter::parse_request_line("GET /a HTTP/1.1 junk").valid);
}

TEST(HttpExporter, RespondRoutesAndStatusCodes) {
  MetricsRegistry registry;
  registry.counter("pings_total").add(2);
  const auto snapshot = [&registry] { return registry.snapshot(); };

  const std::string metrics = HttpExporter::respond(
      HttpExporter::parse_request_line("GET /metrics HTTP/1.1"), snapshot);
  EXPECT_NE(metrics.find("200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("pings_total 2"), std::string::npos);

  const std::string health = HttpExporter::respond(
      HttpExporter::parse_request_line("GET /healthz HTTP/1.1"), snapshot);
  EXPECT_NE(health.find("200 OK"), std::string::npos);
  EXPECT_NE(health.find("ok\n"), std::string::npos);

  const std::string missing = HttpExporter::respond(
      HttpExporter::parse_request_line("GET /nope HTTP/1.1"), snapshot);
  EXPECT_NE(missing.find("404 Not Found"), std::string::npos);

  const std::string post = HttpExporter::respond(
      HttpExporter::parse_request_line("POST /metrics HTTP/1.1"), snapshot);
  EXPECT_NE(post.find("405 Method Not Allowed"), std::string::npos);
  EXPECT_NE(post.find("Allow: GET"), std::string::npos);

  const std::string bad =
      HttpExporter::respond(HttpExporter::parse_request_line(""), snapshot);
  EXPECT_NE(bad.find("404"), std::string::npos);
}

/// One real scrape through the socket path: connect to the ephemeral
/// port, send a request, read the full response.
std::string scrape(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)),
      0);
  EXPECT_GT(::send(fd, request.data(), request.size(), 0), 0);
  std::string response;
  char buf[1024];
  ssize_t n = 0;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(HttpExporter, ServesLiveSnapshotsOverRealSockets) {
  MetricsRegistry registry;
  registry.counter("live_total").add(1);
  HttpExporter exporter([&registry] { return registry.snapshot(); });
  ASSERT_GT(exporter.port(), 0);  // ephemeral port was bound

  const std::string first =
      scrape(exporter.port(), "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(first.find("200 OK"), std::string::npos);
  EXPECT_NE(first.find("live_total 1"), std::string::npos);

  // The exporter snapshots per scrape: a later request sees newer values.
  registry.counter("live_total").add(4);
  const std::string second =
      scrape(exporter.port(), "GET /metrics HTTP/1.1\r\n\r\n");
  EXPECT_NE(second.find("live_total 5"), std::string::npos);

  const std::string health =
      scrape(exporter.port(), "GET /healthz HTTP/1.1\r\n\r\n");
  EXPECT_NE(health.find("200 OK"), std::string::npos);

  exporter.stop();
  EXPECT_EQ(exporter.requests_served(), 3u);
  exporter.stop();  // idempotent
}

// -------------------------------------------------------------- flight --

TEST(FlightRing, WrapKeepsTheNewestWindowInSeqOrder) {
  FlightRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  for (std::uint64_t i = 1; i <= 20; ++i) {
    FlightEvent e;
    e.a0 = i;
    e.kind = static_cast<std::uint16_t>(FlightKind::kRoundBegin);
    ring.record(e);
  }
  EXPECT_EQ(ring.head(), 20u);
  const std::vector<FlightEvent> events = ring.snapshot();
  // The ring overwrote 1..12; exactly the newest capacity() survive.
  ASSERT_EQ(events.size(), 8u);
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].seq, 13 + i);
    EXPECT_EQ(events[i].a0, 13 + i);  // payload still pairs with its seq
  }
}

TEST(FlightRing, ConcurrentReaderNeverSeesATornEvent) {
  // One writer hammers a tiny ring (maximal overwrite pressure) while a
  // reader drains snapshots. The seqlock must hand the reader only
  // events whose payload matches the sequence they were published under.
  FlightRing ring(8);
  constexpr std::uint64_t kEvents = 200000;
  std::atomic<bool> done{false};
  std::thread writer([&ring, &done] {
    for (std::uint64_t i = 1; i <= kEvents; ++i) {
      FlightEvent e;
      e.a0 = i;
      e.a1 = i * 3;
      e.kind = static_cast<std::uint16_t>(FlightKind::kRoundBegin);
      ring.record(e);
    }
    done.store(true, std::memory_order_release);
  });
  std::size_t drained = 0;
  while (!done.load(std::memory_order_acquire)) {
    // Under this much overwrite pressure a mid-flight snapshot may
    // reject every slot — what matters is that whatever it does hand
    // back is consistent.
    for (const FlightEvent& e : ring.snapshot()) {
      ASSERT_EQ(e.a0, e.seq);
      ASSERT_EQ(e.a1, e.seq * 3);
      ++drained;
    }
  }
  writer.join();
  EXPECT_EQ(ring.head(), kEvents);
  // Quiescent ring: the full newest window is visible and consistent.
  const std::vector<FlightEvent> final_window = ring.snapshot();
  ASSERT_EQ(final_window.size(), ring.capacity());
  for (const FlightEvent& e : final_window) {
    ASSERT_EQ(e.a0, e.seq);
    ASSERT_EQ(e.a1, e.seq * 3);
    ++drained;
  }
  EXPECT_GT(drained, 0u);
}

TEST(FlightRecorder, SnapshotMergesAndFiltersAcrossThreads) {
  FlightConfig cfg;
  cfg.ring_capacity = 32;
  FlightRecorder recorder(cfg);
  recorder.record(FlightKind::kRoundBegin, 1.0, 10);
  recorder.record(FlightKind::kRoundEnd, 1.5, 11);
  std::thread other([&recorder] {
    recorder.record(FlightKind::kAdmission, 2.0, 99, 1, 0, 0xabcd);
  });
  other.join();
  EXPECT_EQ(recorder.events_total(), 3u);
  EXPECT_EQ(recorder.threads_registered(), 2u);
  EXPECT_DOUBLE_EQ(recorder.last_sim_hours(), 2.0);

  EXPECT_EQ(recorder.snapshot().size(), 3u);
  const auto admissions = recorder.snapshot(-1, FlightKind::kAdmission);
  ASSERT_EQ(admissions.size(), 1u);
  EXPECT_EQ(admissions[0].a0, 99u);
  EXPECT_EQ(admissions[0].trace_id, 0xabcdu);
  EXPECT_EQ(recorder.snapshot(0).size(), 2u);   // main thread's ring
  EXPECT_EQ(recorder.snapshot(1).size(), 1u);   // helper thread's ring
  EXPECT_EQ(recorder.snapshot(-1, FlightKind::kNone, 2).size(), 2u);
}

TEST(FlightQuery, ParsesFiltersAndRejectsMalformedOnes) {
  const FlightQuery all = parse_flight_query("/debug/flight");
  EXPECT_TRUE(all.valid);
  EXPECT_EQ(all.thread, -1);
  EXPECT_EQ(all.kind, FlightKind::kNone);

  const FlightQuery q =
      parse_flight_query("/debug/flight?thread=2&kind=round_begin&limit=64");
  EXPECT_TRUE(q.valid);
  EXPECT_EQ(q.thread, 2);
  EXPECT_EQ(q.kind, FlightKind::kRoundBegin);
  EXPECT_EQ(q.limit, 64u);

  EXPECT_FALSE(parse_flight_query("/debug/flight?kind=nope").valid);
  EXPECT_FALSE(parse_flight_query("/debug/flight?thread=abc").valid);
  EXPECT_FALSE(parse_flight_query("/debug/flight?limit=").valid);
  EXPECT_FALSE(parse_flight_query("/debug/flight?bogus=1").valid);
}

/// Test sink capturing every alert transition it is handed.
struct CaptureSink : AlertSink {
  void notify(const AlertTransition& transition) override {
    std::lock_guard<std::mutex> lock(mutex);
    transitions.push_back(transition);
  }
  std::vector<AlertTransition> copy() {
    std::lock_guard<std::mutex> lock(mutex);
    return transitions;
  }
  std::mutex mutex;
  std::vector<AlertTransition> transitions;
};

TEST(FlightWatchdog, FiresOnAStalledHeartbeatAndDumpsTheRings) {
  const std::string dump_path = "flight_watchdog_test.flight";
  std::remove(dump_path.c_str());
  FlightConfig cfg;
  cfg.stall_budget_seconds = 0.05;
  cfg.watchdog_poll_seconds = 0.01;
  FlightRecorder recorder(cfg);
  recorder.record(FlightKind::kRoundBegin, 3.25, 7);
  SloMonitor slo;
  CaptureSink sink;
  slo.set_alert_sink(&sink);
  HeartbeatHandle pulse = recorder.register_heartbeat("stalling_loop");
  pulse.beat();  // busy, and never beats again
  recorder.start_watchdog(dump_path, &slo);

  // The injected stall runs to 5x the budget; the watchdog must flag it
  // well before then.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (recorder.watchdog_stalls() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  std::this_thread::sleep_for(
      std::chrono::duration<double>(5.0 * cfg.stall_budget_seconds));
  EXPECT_GE(recorder.watchdog_stalls(), 1u);

  // Recovery resolves the alert through the same sink.
  pulse.idle();
  while (std::chrono::steady_clock::now() < deadline) {
    const auto seen = sink.copy();
    if (!seen.empty() && !seen.back().firing) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  recorder.stop_watchdog();

  const auto transitions = sink.copy();
  ASSERT_GE(transitions.size(), 2u);
  EXPECT_EQ(transitions.front().sli, "watchdog_stall");
  EXPECT_TRUE(transitions.front().firing);
  EXPECT_GE(transitions.front().value, cfg.stall_budget_seconds);
  EXPECT_FALSE(transitions.back().firing);

  // The stall dump is a parsable JSONL black box: meta, the stalled
  // heartbeat, and the recorded event all present.
  std::ifstream in(dump_path);
  ASSERT_TRUE(in.is_open());
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(text.find("\"record\":\"flight_meta\""), std::string::npos);
  EXPECT_NE(text.find("\"reason\":\"watchdog_stall\""), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"stalling_loop\""), std::string::npos);
  EXPECT_NE(text.find("\"kind\":\"round_begin\""), std::string::npos);
  std::remove(dump_path.c_str());
}

TEST(FlightWatchdog, StaysSilentWhileHeartbeatsAreHealthy) {
  const std::string dump_path = "flight_watchdog_silent.flight";
  std::remove(dump_path.c_str());
  FlightConfig cfg;
  cfg.stall_budget_seconds = 0.1;
  cfg.watchdog_poll_seconds = 0.01;
  FlightRecorder recorder(cfg);
  SloMonitor slo;
  CaptureSink sink;
  slo.set_alert_sink(&sink);
  recorder.start_watchdog(dump_path, &slo);

  // One loop beats well inside the budget; another is parked idle for
  // longer than the budget — neither is a stall.
  HeartbeatHandle parked = recorder.register_heartbeat("parked_loop");
  parked.idle();
  std::atomic<bool> stop{false};
  std::thread busy([&recorder, &stop] {
    HeartbeatHandle pulse = recorder.register_heartbeat("busy_loop");
    while (!stop.load(std::memory_order_acquire)) {
      pulse.beat();
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    pulse.idle();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  stop.store(true, std::memory_order_release);
  busy.join();
  recorder.stop_watchdog();

  EXPECT_EQ(recorder.watchdog_stalls(), 0u);
  EXPECT_TRUE(sink.copy().empty());
  // No stall, no dump file.
  EXPECT_FALSE(std::ifstream(dump_path).is_open());
}

namespace {
std::uint64_t dump_u64(const std::vector<unsigned char>& bytes,
                       std::size_t offset) {
  std::uint64_t v = 0;
  std::memcpy(&v, bytes.data() + offset, sizeof(v));
  return v;
}
}  // namespace

TEST(FlightCrash, ForkedChildSegfaultLeavesAParsableRawDump) {
  const std::string dump_path = "flight_crash_test.flight";
  std::remove(dump_path.c_str());
  const pid_t pid = ::fork();
  ASSERT_NE(pid, -1);
  if (pid == 0) {
    // Child: arm the crash path on a fresh recorder, record a known
    // event, then die by SIGSEGV. Nothing after raise() may run.
    FlightConfig cfg;
    cfg.ring_capacity = 16;
    static FlightRecorder recorder(cfg);
    recorder.record(FlightKind::kRoundBegin, 1.5, 11, 22, 33, 0x77);
    recorder.record(FlightKind::kRoundEnd, 2.5, 44);
    install_crash_handlers(&recorder, dump_path.c_str());
    ::raise(SIGSEGV);
    ::_exit(9);  // unreachable: the re-raise kills the child
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status));
  EXPECT_EQ(WTERMSIG(status), SIGSEGV);

  std::ifstream in(dump_path, std::ios::binary);
  ASSERT_TRUE(in.is_open());
  std::vector<unsigned char> bytes(
      (std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  // Header: magic, signal, one ring of 16 events, 64-byte slots.
  ASSERT_GE(bytes.size(), 64u);
  EXPECT_EQ(std::memcmp(bytes.data(), "MFCPFLT1", 8), 0);
  EXPECT_EQ(dump_u64(bytes, 8), static_cast<std::uint64_t>(SIGSEGV));
  EXPECT_EQ(dump_u64(bytes, 16), 1u);   // ring_count
  EXPECT_EQ(dump_u64(bytes, 24), 16u);  // ring capacity
  EXPECT_EQ(dump_u64(bytes, 32), 64u);  // event bytes
  EXPECT_EQ(dump_u64(bytes, 40), 2u);   // events_total
  ASSERT_EQ(bytes.size(), 64u + 16u + 16u * 64u);
  // Ring header, then the first slot holds the first recorded event raw.
  EXPECT_EQ(dump_u64(bytes, 64), 0u);  // ring index
  EXPECT_EQ(dump_u64(bytes, 72), 2u);  // head
  const std::size_t slot0 = 80;
  EXPECT_EQ(dump_u64(bytes, slot0), 1u);  // seq
  double sim_hours = 0.0;
  const std::uint64_t sim_bits = dump_u64(bytes, slot0 + 16);
  std::memcpy(&sim_hours, &sim_bits, sizeof(sim_hours));
  EXPECT_DOUBLE_EQ(sim_hours, 1.5);
  EXPECT_EQ(dump_u64(bytes, slot0 + 24), 11u);    // a0
  EXPECT_EQ(dump_u64(bytes, slot0 + 32), 22u);    // a1
  EXPECT_EQ(dump_u64(bytes, slot0 + 40), 33u);    // a2
  EXPECT_EQ(dump_u64(bytes, slot0 + 48), 0x77u);  // trace_id
  const std::uint64_t packed = dump_u64(bytes, slot0 + 56);
  EXPECT_EQ(packed & 0xFFFF,
            static_cast<std::uint64_t>(FlightKind::kRoundBegin));
  std::remove(dump_path.c_str());
}

TEST(HttpExporter, ServesFlightDebugRoutesWhenConfigured) {
  FlightConfig flight_cfg;
  flight_cfg.ring_capacity = 16;
  FlightRecorder recorder(flight_cfg);
  recorder.record(FlightKind::kRoundBegin, 1.0, 5);
  HeartbeatHandle pulse = recorder.register_heartbeat("exporter_test");
  pulse.beat();

  MetricsRegistry registry;
  HttpExporterConfig cfg;
  cfg.flight = &recorder;
  HttpExporter exporter([&registry] { return registry.snapshot(); }, cfg);

  const std::string events =
      scrape(exporter.port(), "GET /debug/flight HTTP/1.1\r\n\r\n");
  EXPECT_NE(events.find("200 OK"), std::string::npos);
  EXPECT_NE(events.find("\"kind\":\"round_begin\""), std::string::npos);
  const std::string filtered = scrape(
      exporter.port(),
      "GET /debug/flight?kind=round_end HTTP/1.1\r\n\r\n");
  EXPECT_NE(filtered.find("\"count\":0"), std::string::npos);
  const std::string bad = scrape(
      exporter.port(), "GET /debug/flight?kind=nope HTTP/1.1\r\n\r\n");
  EXPECT_NE(bad.find("400"), std::string::npos);
  const std::string threads =
      scrape(exporter.port(), "GET /debug/threads HTTP/1.1\r\n\r\n");
  EXPECT_NE(threads.find("\"name\":\"exporter_test\""), std::string::npos);
  EXPECT_NE(threads.find("\"busy\":true"), std::string::npos);
  exporter.stop();
}

TEST(HttpExporter, FlightRoutesAre404WithoutARecorder) {
  MetricsRegistry registry;
  HttpExporter exporter([&registry] { return registry.snapshot(); });
  const std::string events =
      scrape(exporter.port(), "GET /debug/flight HTTP/1.1\r\n\r\n");
  EXPECT_NE(events.find("404"), std::string::npos);
  const std::string threads =
      scrape(exporter.port(), "GET /debug/threads HTTP/1.1\r\n\r\n");
  EXPECT_NE(threads.find("404"), std::string::npos);
  exporter.stop();
}

// ------------------------------------------------------------ profiler --

TEST(Profiler, StageScopeNestsAndRestores) {
  EXPECT_EQ(current_stage(), EngineStage::kNone);
  {
    StageScope outer(EngineStage::kMatch);
    EXPECT_EQ(current_stage(), EngineStage::kMatch);
    {
      StageScope inner(EngineStage::kPredict);
      EXPECT_EQ(current_stage(), EngineStage::kPredict);
    }
    EXPECT_EQ(current_stage(), EngineStage::kMatch);
  }
  EXPECT_EQ(current_stage(), EngineStage::kNone);
}

TEST(Profiler, StageScopeCloseIsIdempotent) {
  StageScope scope(EngineStage::kEmbed);
  EXPECT_EQ(current_stage(), EngineStage::kEmbed);
  scope.close();
  EXPECT_EQ(current_stage(), EngineStage::kNone);
  scope.close();  // second close must not pop anything else
  EXPECT_EQ(current_stage(), EngineStage::kNone);
}

TEST(Profiler, StageNamesRoundTrip) {
  EXPECT_EQ(to_string(EngineStage::kNone), "none");
  EXPECT_EQ(to_string(EngineStage::kEmbed), "embed");
  EXPECT_EQ(to_string(EngineStage::kPredict), "predict");
  EXPECT_EQ(to_string(EngineStage::kMatch), "match");
  EXPECT_EQ(to_string(EngineStage::kAttribute), "attribute");
  EXPECT_EQ(to_string(EngineStage::kDispatch), "dispatch");
}

TEST(SampleRing, RecordsAndSnapshotsInOrder) {
  SampleRing ring(8);
  int markers[3];
  const void* pcs[3] = {&markers[0], &markers[1], &markers[2]};
  ring.record(EngineStage::kMatch, 7, pcs, 3);
  ring.record(EngineStage::kEmbed, 7, pcs, 1);
  const auto samples = ring.snapshot();
  ASSERT_EQ(samples.size(), 2u);
  EXPECT_EQ(samples[0].stage, EngineStage::kMatch);
  EXPECT_EQ(samples[0].thread, 7);
  ASSERT_EQ(samples[0].pcs.size(), 3u);
  EXPECT_EQ(samples[0].pcs[1], pcs[1]);
  EXPECT_EQ(samples[1].stage, EngineStage::kEmbed);
  ASSERT_EQ(samples[1].pcs.size(), 1u);
}

TEST(SampleRing, WrapsKeepingTheNewestWindow) {
  SampleRing ring(8);
  EXPECT_EQ(ring.capacity(), 8u);
  int marker = 0;
  const void* pcs[1] = {&marker};
  for (int i = 0; i < 20; ++i) {
    ring.record(EngineStage::kNone, static_cast<std::uint16_t>(i), pcs, 1);
  }
  EXPECT_EQ(ring.head(), 20u);
  const auto samples = ring.snapshot();
  ASSERT_EQ(samples.size(), 8u);
  // Oldest surviving sample is #13 (thread tag 12), newest #20.
  EXPECT_EQ(samples.front().thread, 12);
  EXPECT_EQ(samples.back().thread, 19);
  for (std::size_t i = 1; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].seq, samples[i - 1].seq + 1);
  }
}

TEST(SampleRing, ResetEmptiesTheWindow) {
  SampleRing ring(8);
  int marker = 0;
  const void* pcs[1] = {&marker};
  ring.record(EngineStage::kNone, 0, pcs, 1);
  ring.reset();
  EXPECT_EQ(ring.head(), 0u);
  EXPECT_TRUE(ring.snapshot().empty());
}

TEST(SampleRing, TruncatesDepthToMaxFrames) {
  SampleRing ring(4);
  int markers[kMaxSampleFrames + 8];
  const void* pcs[kMaxSampleFrames + 8];
  for (std::size_t i = 0; i < kMaxSampleFrames + 8; ++i) {
    pcs[i] = &markers[i];
  }
  ring.record(EngineStage::kNone, 0, pcs, kMaxSampleFrames + 8);
  const auto samples = ring.snapshot();
  ASSERT_EQ(samples.size(), 1u);
  EXPECT_EQ(samples[0].pcs.size(), kMaxSampleFrames);
}

TEST(ProfileQuery, DefaultsAndValidParses) {
  const ProfileQuery bare = parse_profile_query("/debug/profile");
  EXPECT_TRUE(bare.valid);
  EXPECT_DOUBLE_EQ(bare.seconds, 2.0);
  EXPECT_DOUBLE_EQ(bare.hz, 97.0);

  const ProfileQuery full =
      parse_profile_query("/debug/profile?seconds=0.5&hz=250");
  EXPECT_TRUE(full.valid);
  EXPECT_DOUBLE_EQ(full.seconds, 0.5);
  EXPECT_DOUBLE_EQ(full.hz, 250.0);
}

TEST(ProfileQuery, RejectsMalformedAndOutOfRange) {
  EXPECT_FALSE(parse_profile_query("/debug/profile?seconds=0").valid);
  EXPECT_FALSE(parse_profile_query("/debug/profile?seconds=31").valid);
  EXPECT_FALSE(parse_profile_query("/debug/profile?seconds=-1").valid);
  EXPECT_FALSE(parse_profile_query("/debug/profile?seconds=abc").valid);
  EXPECT_FALSE(parse_profile_query("/debug/profile?seconds=").valid);
  EXPECT_FALSE(parse_profile_query("/debug/profile?hz=0.5").valid);
  EXPECT_FALSE(parse_profile_query("/debug/profile?hz=1001").valid);
  EXPECT_FALSE(parse_profile_query("/debug/profile?hz=nan").valid);
  EXPECT_FALSE(parse_profile_query("/debug/profile?bogus=1").valid);
  EXPECT_FALSE(parse_profile_query("/debug/profile?seconds").valid);
  EXPECT_FALSE(
      parse_profile_query("/debug/profile?seconds=1&&hz=97").valid);
}

TEST(Profiler, RejectsBadSessionRates) {
  SamplingProfiler profiler;
  EXPECT_FALSE(profiler.start(0.0));
  EXPECT_FALSE(profiler.start(-5.0));
  EXPECT_FALSE(profiler.start(1001.0));
}

TEST(Profiler, OneSessionAtATime) {
  SamplingProfiler profiler;
  ASSERT_TRUE(profiler.start(10.0));
  EXPECT_TRUE(profiler.session_active());
  EXPECT_FALSE(profiler.start(10.0));
  profiler.stop();
  EXPECT_FALSE(profiler.session_active());
  EXPECT_TRUE(profiler.start(10.0));
  profiler.stop();
  EXPECT_EQ(profiler.sessions_total(), 2u);
}

TEST(Profiler, SamplesABusyRegisteredThread) {
  SamplingProfiler profiler;
  ASSERT_TRUE(profiler.register_current_thread("busy_thread"));
  EXPECT_EQ(profiler.threads_registered(), 1u);
  ASSERT_TRUE(profiler.start(500.0));
  // Burn CPU inside a tagged stage so the per-thread CPU-clock timer
  // fires: ~150ms of arithmetic at 500 Hz is ~75 expected samples.
  volatile double sink = 0.0;
  {
    StageScope stage(EngineStage::kMatch);
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(150);
    while (std::chrono::steady_clock::now() < until) {
      for (int i = 0; i < 1000; ++i) {
        sink = sink + std::sqrt(static_cast<double>(i));
      }
    }
  }
  profiler.stop();
  EXPECT_GT(profiler.samples_total(), 0u);

  const std::string folded = profiler.folded();
  EXPECT_NE(folded.find("busy_thread;"), std::string::npos);
  EXPECT_NE(folded.find(";stage:"), std::string::npos);
  // Exact-accounting anchors cover every engine stage even though only
  // kMatch ran.
  EXPECT_NE(folded.find("[stage_totals];embed "), std::string::npos);
  EXPECT_NE(folded.find("[stage_totals];predict "), std::string::npos);
  EXPECT_NE(folded.find("[stage_totals];match "), std::string::npos);
  EXPECT_NE(folded.find("[stage_totals];attribute "), std::string::npos);
  EXPECT_NE(folded.find("[stage_totals];dispatch "), std::string::npos);
  // Every folded line is "stack count" with a positive trailing integer.
  std::istringstream lines(folded);
  std::string line;
  std::size_t parsed = 0;
  while (std::getline(lines, line)) {
    const std::size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const long count = std::strtol(line.c_str() + space + 1, nullptr, 10);
    EXPECT_GT(count, 0) << line;
    ++parsed;
  }
  EXPECT_GT(parsed, 5u);
  profiler.unregister_current_thread();
  EXPECT_EQ(profiler.threads_registered(), 1u);  // entry stays, inactive
}

TEST(Profiler, CollectFoldedRunsAWholeSession) {
  SamplingProfiler profiler;
  profiler.register_current_thread("collector");
  const auto folded = profiler.collect_folded(0.05, 200.0);
  ASSERT_TRUE(folded.has_value());
  EXPECT_FALSE(profiler.session_active());
  EXPECT_NE(folded->find("[stage_totals];match "), std::string::npos);
  profiler.unregister_current_thread();
}

TEST(Profiler, ProfileRouteStatusCodes) {
  EXPECT_EQ(profile_route(nullptr, "/debug/profile").status, 404);

  SamplingProfiler profiler;
  profiler.register_current_thread("route_thread");
  EXPECT_EQ(profile_route(&profiler, "/debug/profile?seconds=0").status,
            400);
  EXPECT_EQ(profile_route(&profiler, "/debug/profile?x=1").status, 400);

  const ProfileRouteResult ok =
      profile_route(&profiler, "/debug/profile?seconds=0.05&hz=100");
  EXPECT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("[stage_totals];"), std::string::npos);

  // A session already in flight answers 409 without disturbing it.
  ASSERT_TRUE(profiler.start(50.0));
  const ProfileRouteResult busy =
      profile_route(&profiler, "/debug/profile?seconds=0.05&hz=100");
  EXPECT_EQ(busy.status, 409);
  EXPECT_TRUE(profiler.session_active());
  profiler.stop();
  profiler.unregister_current_thread();
}

TEST(Profiler, DefaultProfilerBumpsGeneration) {
  EXPECT_EQ(default_profiler(), nullptr);
  const std::uint64_t before = default_profiler_generation();
  SamplingProfiler profiler;
  set_default_profiler(&profiler);
  EXPECT_EQ(default_profiler(), &profiler);
  EXPECT_GT(default_profiler_generation(), before);
  set_default_profiler(nullptr);
  EXPECT_EQ(default_profiler(), nullptr);
  EXPECT_GT(default_profiler_generation(), before + 1);
}

TEST(Profiler, RegistrationBeyondMaxThreadsIsDropped) {
  ProfilerConfig config;
  config.max_threads = 1;
  SamplingProfiler profiler(config);
  EXPECT_TRUE(profiler.register_current_thread("only"));
  std::thread extra([&profiler] {
    EXPECT_FALSE(profiler.register_current_thread("overflow"));
  });
  extra.join();
  EXPECT_EQ(profiler.dropped_registrations(), 1u);
  profiler.unregister_current_thread();
}

TEST(BuildInfo, CarriesProvenanceFields) {
  const std::string json = build_info_json();
  EXPECT_NE(json.find("\"git_sha\":\""), std::string::npos);
  EXPECT_NE(json.find("\"compiler\":\""), std::string::npos);
  EXPECT_NE(json.find("\"build_type\":\""), std::string::npos);
  EXPECT_NE(json.find("\"sanitizers\":\""), std::string::npos);
  EXPECT_FALSE(build_git_sha().empty());
  EXPECT_FALSE(build_compiler().empty());
}

TEST(HttpExporter, ServesProfileAndBuildRoutes) {
  MetricsRegistry registry;
  SamplingProfiler profiler;
  profiler.register_current_thread("exporter_test");
  HttpExporterConfig config;
  config.profiler = &profiler;
  HttpExporter exporter([&registry] { return registry.snapshot(); },
                        config);
  ASSERT_GT(exporter.port(), 0);

  const std::string build =
      scrape(exporter.port(), "GET /debug/build HTTP/1.1\r\n\r\n");
  EXPECT_NE(build.find("200 OK"), std::string::npos);
  EXPECT_NE(build.find("\"git_sha\""), std::string::npos);

  const std::string bad = scrape(
      exporter.port(), "GET /debug/profile?seconds=99 HTTP/1.1\r\n\r\n");
  EXPECT_NE(bad.find("400"), std::string::npos);

  const std::string ok = scrape(
      exporter.port(),
      "GET /debug/profile?seconds=0.05&hz=50 HTTP/1.1\r\n\r\n");
  EXPECT_NE(ok.find("200 OK"), std::string::npos);
  EXPECT_NE(ok.find("[stage_totals];"), std::string::npos);
  exporter.stop();
  profiler.unregister_current_thread();
}

TEST(HttpExporter, ProfileRouteAnswers404WithoutAProfiler) {
  MetricsRegistry registry;
  HttpExporter exporter([&registry] { return registry.snapshot(); });
  const std::string none =
      scrape(exporter.port(), "GET /debug/profile HTTP/1.1\r\n\r\n");
  EXPECT_NE(none.find("404"), std::string::npos);
  // /debug/build is unconditional: provenance never depends on wiring.
  const std::string build =
      scrape(exporter.port(), "GET /debug/build HTTP/1.1\r\n\r\n");
  EXPECT_NE(build.find("200 OK"), std::string::npos);
  exporter.stop();
}

}  // namespace
}  // namespace mfcp::obs
