// Tests for the observability subsystem: metrics registry (including the
// sharded counters/histograms under real thread contention), snapshot
// merging, Prometheus exposition, the JSONL writer's byte-stability, and
// span tracing.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "obs/span.hpp"

namespace mfcp::obs {
namespace {

// ----------------------------------------------------------- counters --

TEST(Counter, ConcurrentAddsEqualSerialTotal) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hammered");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 20000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        counter.add(1);
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(Counter, AddWithArgumentAndReset) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("steps");
  counter.add(5);
  counter.add();  // default increment
  EXPECT_EQ(counter.value(), 6u);
  counter.reset();
  EXPECT_EQ(counter.value(), 0u);
}

// ------------------------------------------------------------- gauges --

TEST(Gauge, LastWriteWins) {
  MetricsRegistry registry;
  Gauge& gauge = registry.gauge("drift");
  EXPECT_EQ(gauge.value(), 0.0);
  gauge.set(1.25);
  gauge.set(-3.5);
  EXPECT_EQ(gauge.value(), -3.5);
  gauge.reset();
  EXPECT_EQ(gauge.value(), 0.0);
}

// --------------------------------------------------------- histograms --

TEST(Histogram, BucketBoundariesAreInclusiveUpperEdges) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0, 2.0, 4.0};
  Histogram& hist = registry.histogram("edges", kBounds);

  hist.observe(1.0);  // == first bound: first bucket (le semantics)
  hist.observe(std::nextafter(1.0, 2.0));  // just above: second bucket
  hist.observe(4.0);                       // == last bound: last finite
  hist.observe(std::nextafter(4.0, 5.0));  // just above: overflow
  hist.observe(-1.0);                      // below everything: first

  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);  // 3 finite + overflow
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(hist.count(), 5u);
}

TEST(Histogram, ConcurrentObservationsMatchSerialTotals) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {10.0, 100.0, 1000.0};
  Histogram& hist = registry.histogram("latency", kBounds);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;

  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        // Deterministic spread across all four buckets.
        hist.observe(static_cast<double>(((t + i) % 4) * 300));
      }
    });
  }
  for (auto& th : threads) {
    th.join();
  }

  EXPECT_EQ(hist.count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  // Values cycle 0, 300, 600, 900 uniformly: 0 lands in the first bucket,
  // the rest in the third (<= 1000), none overflow.
  const auto buckets = hist.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], static_cast<std::uint64_t>(kThreads) * kPerThread / 4);
  EXPECT_EQ(buckets[1], 0u);
  EXPECT_EQ(buckets[2],
            3u * static_cast<std::uint64_t>(kThreads) * kPerThread / 4);
  EXPECT_EQ(buckets[3], 0u);
  // Sum of the arithmetic series, exact in doubles (small integers).
  const double expected_sum =
      static_cast<double>(kThreads) * kPerThread / 4.0 * (0 + 300 + 600 + 900);
  EXPECT_DOUBLE_EQ(hist.sum(), expected_sum);
}

TEST(Histogram, SnapshotMergeEqualsCombinedSerialRun) {
  MetricsRegistry a;
  MetricsRegistry b;
  constexpr double kBounds[] = {1.0, 2.0};
  Histogram& ha = a.histogram("h", kBounds);
  Histogram& hb = b.histogram("h", kBounds);
  a.counter("c").add(3);
  b.counter("c").add(4);
  a.gauge("g").set(1.0);
  b.gauge("g").set(2.0);
  b.counter("only_b").add(7);
  ha.observe(0.5);
  ha.observe(1.5);
  hb.observe(1.5);
  hb.observe(9.0);

  RegistrySnapshot merged = a.snapshot();
  merged.merge(b.snapshot());

  ASSERT_EQ(merged.counters.size(), 2u);  // name-sorted: c, only_b
  EXPECT_EQ(merged.counters[0].first, "c");
  EXPECT_EQ(merged.counters[0].second, 7u);
  EXPECT_EQ(merged.counters[1].first, "only_b");
  EXPECT_EQ(merged.counters[1].second, 7u);
  ASSERT_EQ(merged.gauges.size(), 1u);
  EXPECT_EQ(merged.gauges[0].second, 2.0);  // last writer (other) wins
  ASSERT_EQ(merged.histograms.size(), 1u);
  const HistogramSnapshot& h = merged.histograms[0];
  ASSERT_EQ(h.buckets.size(), 3u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 2u);
  EXPECT_EQ(h.buckets[2], 1u);
  EXPECT_EQ(h.count, 4u);
  EXPECT_DOUBLE_EQ(h.sum, 0.5 + 1.5 + 1.5 + 9.0);
}

// ----------------------------------------------------------- registry --

TEST(MetricsRegistry, FindOrCreateReturnsStableReferences) {
  MetricsRegistry registry;
  Counter& first = registry.counter("same");
  Counter& second = registry.counter("same");
  EXPECT_EQ(&first, &second);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsRegistrations) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0};
  Counter& counter = registry.counter("c");
  Gauge& gauge = registry.gauge("g");
  Histogram& hist = registry.histogram("h", kBounds);
  counter.add(5);
  gauge.set(2.5);
  hist.observe(0.5);

  registry.reset();

  // Cached pointers stay valid and land in the same (zeroed) metrics.
  counter.add(1);
  EXPECT_EQ(registry.counter("c").value(), 1u);
  EXPECT_EQ(gauge.value(), 0.0);
  EXPECT_EQ(hist.count(), 0u);
  EXPECT_EQ(hist.sum(), 0.0);
  const RegistrySnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 1u);
}

TEST(MetricsRegistry, DefaultRegistryStartsNullAndIsSettable) {
  EXPECT_EQ(default_registry(), nullptr);
  MetricsRegistry registry;
  set_default_registry(&registry);
  EXPECT_EQ(default_registry(), &registry);
  set_default_registry(nullptr);
  EXPECT_EQ(default_registry(), nullptr);
}

// --------------------------------------------------------- exposition --

TEST(Prometheus, RendersCountersGaugesAndCumulativeBuckets) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {0.5, 2.0};
  registry.counter("mfcp_rounds_total").add(3);
  registry.gauge("mfcp_drift").set(1.5);
  Histogram& hist = registry.histogram("mfcp_lat", kBounds);
  hist.observe(0.25);
  hist.observe(1.0);
  hist.observe(10.0);

  const std::string text = to_prometheus(registry.snapshot());
  EXPECT_NE(text.find("# TYPE mfcp_rounds_total counter"), std::string::npos);
  EXPECT_NE(text.find("mfcp_rounds_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mfcp_drift gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE mfcp_lat histogram"), std::string::npos);
  // Buckets are cumulative with an explicit +Inf.
  EXPECT_NE(text.find("mfcp_lat_bucket{le=\"0.5\"} 1"), std::string::npos);
  EXPECT_NE(text.find("mfcp_lat_bucket{le=\"2\"} 2"), std::string::npos);
  EXPECT_NE(text.find("mfcp_lat_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("mfcp_lat_count 3"), std::string::npos);
}

TEST(Prometheus, SplicesLeIntoExistingLabelSet) {
  MetricsRegistry registry;
  constexpr double kBounds[] = {1.0};
  registry.histogram("stage_seconds{stage=\"embed\"}", kBounds).observe(0.5);

  const std::string text = to_prometheus(registry.snapshot());
  // The TYPE header uses the base name; buckets merge le into the braces.
  EXPECT_NE(text.find("# TYPE stage_seconds histogram"), std::string::npos);
  EXPECT_NE(text.find("stage_seconds_bucket{stage=\"embed\",le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_bucket{stage=\"embed\",le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_sum{stage=\"embed\"}"),
            std::string::npos);
  EXPECT_NE(text.find("stage_seconds_count{stage=\"embed\"} 1"),
            std::string::npos);
}

// -------------------------------------------------------------- jsonl --

TEST(JsonlWriter, PreservesFieldOrderAndIsByteStable) {
  const auto render = [] {
    std::ostringstream out;
    JsonlWriter journal(out);
    journal.field("round", std::uint64_t{7})
        .field("regret", 0.1)
        .field("trigger", std::string_view{"size"})
        .field("retrained", false);
    journal.end_record();
    journal.field("round", std::uint64_t{8}).field("regret", 1.0 / 3.0);
    journal.end_record();
    return out.str();
  };
  const std::string first = render();
  const std::string second = render();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.substr(0, first.find('\n')),
            "{\"round\":7,\"regret\":" + json_number(0.1) +
                ",\"trigger\":\"size\",\"retrained\":false}");
  EXPECT_EQ(std::count(first.begin(), first.end(), '\n'), 2);
}

TEST(JsonlWriter, EscapesStringsAndCountsRecords) {
  std::ostringstream out;
  JsonlWriter journal(out);
  journal.field("msg", std::string_view{"a\"b\\c\n"});
  journal.end_record();
  EXPECT_EQ(journal.records_written(), 1u);
  EXPECT_EQ(out.str(), "{\"msg\":\"a\\\"b\\\\c\\n\"}\n");
}

TEST(JsonNumber, RoundTripsAndHandlesNonFinite) {
  EXPECT_EQ(std::stod(json_number(1.0 / 3.0)), 1.0 / 3.0);
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
}

// -------------------------------------------------------------- spans --

TEST(ScopedSpan, RecordsIntoHistogramAndRing) {
  MetricsRegistry registry;
  Histogram& hist = registry.histogram("span_seconds",
                                       default_time_bounds());
  TraceRing ring(8);
  {
    ScopedSpan span(&hist, "stage", &ring);
    span.stop();
    span.stop();  // idempotent: the destructor must not double-record
  }
  EXPECT_EQ(hist.count(), 1u);
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "stage");
}

TEST(ScopedSpan, NullSinksRecordNothing) {
  ScopedSpan span(nullptr, "noop", nullptr);
  span.stop();  // must not crash or touch any state
}

TEST(TraceRing, KeepsNewestSpansOldestFirst) {
  TraceRing ring(4);
  for (std::uint64_t i = 0; i < 10; ++i) {
    SpanRecord rec;
    rec.name = "s";
    rec.start_ns = i;
    ring.record(rec);
  }
  EXPECT_EQ(ring.recorded(), 10u);
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t k = 0; k < spans.size(); ++k) {
    EXPECT_EQ(spans[k].start_ns, 6 + k);  // 6, 7, 8, 9: oldest first
  }
  ring.clear();
  EXPECT_TRUE(ring.snapshot().empty());
}

}  // namespace
}  // namespace mfcp::obs
