// End-to-end integration tests: full training pipelines on a small
// adversarial environment, determinism, and the decision-focused-learning
// headline property (MFCP regret <= TSM regret where MSE-optimal
// predictions order clusters wrongly).
#include <gtest/gtest.h>

#include <cmath>

#include "mfcp/experiment.hpp"
#include "mfcp/trainer_mfcp_ad.hpp"
#include "mfcp/trainer_mfcp_fg.hpp"
#include "matching/objective.hpp"
#include "sim/failure.hpp"
#include "support/check.hpp"

namespace mfcp::core {
namespace {

/// Small, fast experiment configuration shared by the integration tests.
ExperimentConfig fast_config() {
  ExperimentConfig cfg;
  cfg.num_clusters = 3;
  cfg.round_tasks = 5;
  cfg.train_tasks = 60;
  cfg.test_tasks = 30;
  cfg.test_rounds = 20;
  cfg.gamma = 0.75;
  cfg.tsm.epochs = 120;
  cfg.mfcp.epochs = 25;
  cfg.mfcp.pretrain_epochs = 120;
  cfg.mfcp.forward_gradient.samples = 6;
  cfg.mfcp.solver.max_iterations = 300;
  cfg.eval.solver.max_iterations = 600;
  return cfg;
}

TEST(Integration, MfcpAdTrainingLoopRunsAndRecordsLoss) {
  const auto cfg = fast_config();
  const auto ctx = make_context(cfg);
  Rng rng(1);
  PlatformPredictor predictor(cfg.num_clusters, cfg.predictor, rng);
  MfcpConfig mcfg = cfg.mfcp;
  mcfg.epochs = 10;
  mcfg.round_tasks = cfg.round_tasks;
  const auto result = train_mfcp_ad(predictor, ctx.train, mcfg);
  ASSERT_EQ(result.loss_history.size(), 10u);
  for (double loss : result.loss_history) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(Integration, MfcpFgTrainingLoopRunsAndRecordsLoss) {
  const auto cfg = fast_config();
  const auto ctx = make_context(cfg);
  Rng rng(2);
  PlatformPredictor predictor(cfg.num_clusters, cfg.predictor, rng);
  MfcpConfig mcfg = cfg.mfcp;
  mcfg.epochs = 8;
  mcfg.round_tasks = cfg.round_tasks;
  const auto result = train_mfcp_fg(predictor, ctx.train, mcfg);
  ASSERT_EQ(result.loss_history.size(), 8u);
  for (double loss : result.loss_history) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(Integration, MfcpFgSupportsNonConvexSpeedup) {
  auto cfg = fast_config();
  cfg.speedup = sim::SpeedupCurve::exponential_decay(0.6, 0.5);
  const auto ctx = make_context(cfg);
  Rng rng(3);
  PlatformPredictor predictor(cfg.num_clusters, cfg.predictor, rng);
  MfcpConfig mcfg = cfg.mfcp;
  mcfg.epochs = 6;
  mcfg.speedup = cfg.speedup;
  mcfg.round_tasks = cfg.round_tasks;
  EXPECT_NO_THROW(train_mfcp_fg(predictor, ctx.train, mcfg));
}

TEST(Integration, MfcpAdRejectsNonConvexSpeedup) {
  auto cfg = fast_config();
  cfg.speedup = sim::SpeedupCurve::exponential_decay(0.6, 0.5);
  const auto ctx = make_context(cfg);
  Rng rng(4);
  PlatformPredictor predictor(cfg.num_clusters, cfg.predictor, rng);
  MfcpConfig mcfg = cfg.mfcp;
  mcfg.speedup = cfg.speedup;
  mcfg.pretrain = false;
  EXPECT_THROW(train_mfcp_ad(predictor, ctx.train, mcfg), mfcp::ContractError);
}

TEST(Integration, ExperimentIsDeterministicUnderFixedSeed) {
  auto cfg = fast_config();
  cfg.test_rounds = 3;
  cfg.tsm.epochs = 60;
  const auto ctx1 = make_context(cfg);
  const auto ctx2 = make_context(cfg);
  const auto r1 = run_method(Method::kTsm, ctx1, cfg);
  const auto r2 = run_method(Method::kTsm, ctx2, cfg);
  EXPECT_DOUBLE_EQ(r1.metrics.regret().mean(), r2.metrics.regret().mean());
  EXPECT_DOUBLE_EQ(r1.metrics.utilization().mean(),
                   r2.metrics.utilization().mean());
}

TEST(Integration, TrainedTsmBeatsTamOnHeterogeneousTasks) {
  // TAM ignores task structure entirely; a trained per-task predictor must
  // produce lower matching regret on average (averaged over settings to
  // damp round noise at this small test scale).
  double tam_total = 0.0;
  double tsm_total = 0.0;
  for (auto setting : {sim::Setting::kA, sim::Setting::kB}) {
    auto cfg = fast_config();
    cfg.setting = setting;
    cfg.test_rounds = 30;
    cfg.tsm.epochs = 250;
    const auto ctx = make_context(cfg);
    tam_total += run_method(Method::kTam, ctx, cfg).metrics.regret().mean();
    tsm_total += run_method(Method::kTsm, ctx, cfg).metrics.regret().mean();
  }
  EXPECT_LT(tsm_total, tam_total + 0.1);
}

TEST(Integration, DeployedAssignmentExecutesOnPlatform) {
  // Close the loop with the failure-injection simulator: the deployed
  // matching actually runs, tasks succeed at roughly the predicted rate.
  const auto cfg = fast_config();
  const auto ctx = make_context(cfg);

  const std::size_t n = cfg.round_tasks;
  matching::MatchingProblem truth;
  truth.times = Matrix(cfg.num_clusters, n);
  truth.reliability = Matrix(cfg.num_clusters, n);
  truth.gamma = cfg.gamma;
  std::vector<sim::TaskDescriptor> tasks;
  for (std::size_t k = 0; k < n; ++k) {
    tasks.push_back(ctx.test.tasks[k]);
    for (std::size_t i = 0; i < cfg.num_clusters; ++i) {
      truth.times(i, k) = ctx.test.true_times(i, k);
      truth.reliability(i, k) = ctx.test.true_reliability(i, k);
    }
  }
  const auto assignment = deploy_matching(truth, cfg.eval);

  Rng rng(7);
  RunningStats success;
  for (int rep = 0; rep < 400; ++rep) {
    const auto outcome =
        sim::execute_assignment(ctx.platform, tasks, assignment, rng, 1);
    success.add(outcome.empirical_success_rate);
  }
  const double expected =
      matching::average_reliability(assignment, truth.reliability);
  EXPECT_NEAR(success.mean(), expected, 0.05);
}

TEST(Integration, MfcpFgImprovesOnTsmWarmStart) {
  // The Fig. 2 story distilled: capacity-limited predictors make
  // systematic errors; fine-tuning through the deployed matching pipeline
  // (MFCP-FG, discrete loss) must not lose regret relative to its own TSM
  // warm start, and should improve reliability via the constraint hinge.
  auto cfg = fast_config();
  cfg.train_tasks = 60;
  cfg.test_tasks = 60;
  cfg.test_rounds = 40;
  cfg.predictor.hidden = {2};  // underfitting: systematic errors to fix
  cfg.tsm.epochs = 300;
  cfg.mfcp.epochs = 40;
  cfg.mfcp.learning_rate = 3e-3;
  cfg.mfcp.pretrain_epochs = 300;
  cfg.mfcp.forward_gradient.samples = 8;
  const auto ctx = make_context(cfg);

  const auto tsm = run_method(Method::kTsm, ctx, cfg);
  const auto fg = run_method(Method::kMfcpFg, ctx, cfg);
  // Paired rounds: identical test batches for both methods. Tolerance
  // covers round noise at this reduced test scale.
  EXPECT_LE(fg.metrics.regret().mean(),
            tsm.metrics.regret().mean() + 0.1);
  EXPECT_GE(fg.metrics.reliability().mean(),
            tsm.metrics.reliability().mean() - 0.02);
}

TEST(Integration, AblationVariantsRunEndToEnd) {
  auto cfg = fast_config();
  cfg.test_rounds = 2;
  cfg.mfcp.epochs = 5;
  cfg.mfcp.pretrain_epochs = 60;
  const auto ctx = make_context(cfg);
  const auto linear = run_mfcp_variant(CostModel::kLinearTotal,
                                       ConstraintModel::kLogBarrier,
                                       GradMode::kForward, "ablation-linear",
                                       ctx, cfg);
  EXPECT_EQ(linear.metrics.rounds(), 2u);
  const auto penalty = run_mfcp_variant(
      CostModel::kSmoothedMax, ConstraintModel::kHardPenalty,
      GradMode::kAnalytic, "ablation-penalty", ctx, cfg);
  EXPECT_EQ(penalty.metrics.rounds(), 2u);
  EXPECT_EQ(penalty.label, "ablation-penalty");
}

TEST(Integration, ThreadPoolAcceleratedFgMatchesSerial) {
  const auto cfg = fast_config();
  const auto ctx = make_context(cfg);
  MfcpConfig mcfg = cfg.mfcp;
  mcfg.epochs = 4;
  mcfg.round_tasks = cfg.round_tasks;

  Rng rng_a(9);
  PlatformPredictor serial(cfg.num_clusters, cfg.predictor, rng_a);
  const auto r_serial = train_mfcp_fg(serial, ctx.train, mcfg, nullptr);

  Rng rng_b(9);
  PlatformPredictor pooled(cfg.num_clusters, cfg.predictor, rng_b);
  ThreadPool pool(4);
  const auto r_pooled = train_mfcp_fg(pooled, ctx.train, mcfg, &pool);

  ASSERT_EQ(r_serial.loss_history.size(), r_pooled.loss_history.size());
  for (std::size_t e = 0; e < r_serial.loss_history.size(); ++e) {
    EXPECT_DOUBLE_EQ(r_serial.loss_history[e], r_pooled.loss_history[e]);
  }
  // Final predictions bitwise identical: per-sample RNG streams make the
  // estimator reproducible regardless of thread count.
  Matrix features(3, cfg.predictor.feature_dim, 0.4);
  EXPECT_TRUE(approx_equal(serial.predict_time_matrix(features),
                           pooled.predict_time_matrix(features), 0.0));
}

}  // namespace
}  // namespace mfcp::core
