// Unit tests for the support module: contracts, RNG, statistics, tables.
#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <thread>

#include "support/check.hpp"
#include "support/log.hpp"
#include "support/rng.hpp"
#include "support/signal_safe.hpp"
#include "support/stats.hpp"
#include "support/stopwatch.hpp"
#include "support/table.hpp"

namespace mfcp {
namespace {

// ---------------------------------------------------------------- check --

TEST(Check, PassingCheckDoesNotThrow) {
  EXPECT_NO_THROW(MFCP_CHECK(1 + 1 == 2, "arithmetic"));
}

TEST(Check, FailingCheckThrowsContractError) {
  EXPECT_THROW(MFCP_CHECK(false, "always fails"), ContractError);
}

TEST(Check, ContractErrorCarriesExpression) {
  try {
    MFCP_CHECK(2 < 1, "impossible");
    FAIL() << "expected throw";
  } catch (const ContractError& e) {
    EXPECT_EQ(e.expression(), "2 < 1");
    EXPECT_NE(std::string(e.what()).find("impossible"), std::string::npos);
  }
}

// ------------------------------------------------------------------ rng --

TEST(Rng, DeterministicUnderSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += a.next_u64() == b.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIndexCoversRangeWithoutBias) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    ++counts[rng.uniform_index(10)];
  }
  for (int c : counts) {
    // Expected 10000 per bucket; 5 sigma ~ 475.
    EXPECT_NEAR(c, trials / 10, 600);
  }
}

TEST(Rng, NormalMomentsMatchStandardGaussian) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    stats.add(rng.normal());
  }
  EXPECT_NEAR(stats.mean(), 0.0, 0.01);
  EXPECT_NEAR(stats.stddev(), 1.0, 0.01);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 100000; ++i) {
    stats.add(rng.normal(5.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 5.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, LognormalIsPositive) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.lognormal(0.0, 0.5), 0.0);
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(23);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    hits += rng.bernoulli(0.3) ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.01);
}

TEST(Rng, SplitStreamsAreIndependentOfParent) {
  Rng parent(42);
  Rng child = parent.split();
  // Child continues differently from a copy of the parent.
  Rng parent_copy(42);
  (void)parent_copy.next_u64();  // split consumed one draw
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += child.next_u64() == parent_copy.next_u64() ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(42);
  Rng b(42);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(ca.next_u64(), cb.next_u64());
  }
}

TEST(Rng, SplitNProducesDistinctStreams) {
  Rng rng(5);
  auto streams = rng.split_n(4);
  ASSERT_EQ(streams.size(), 4u);
  std::set<std::uint64_t> firsts;
  for (auto& s : streams) {
    firsts.insert(s.next_u64());
  }
  EXPECT_EQ(firsts.size(), 4u);
}

TEST(Rng, PermutationIsAPermutation) {
  Rng rng(31);
  const auto p = rng.permutation(50);
  std::set<std::size_t> seen(p.begin(), p.end());
  EXPECT_EQ(seen.size(), 50u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationOfZeroAndOne) {
  Rng rng(1);
  EXPECT_TRUE(rng.permutation(0).empty());
  const auto p = rng.permutation(1);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], 0u);
}

// ---------------------------------------------------------------- stats --

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSample) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(3);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(2.0, 3.0);
    whole.add(x);
    (i < 500 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-10);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-8);
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Stats, MeanAndStdOf) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean_of(xs), 2.5);
  EXPECT_NEAR(stddev_of(xs), std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Stats, MeanOfEmptyThrows) {
  EXPECT_THROW(mean_of(std::vector<double>{}), ContractError);
}

TEST(Stats, FormatMeanStd) {
  EXPECT_EQ(format_mean_std(0.894, 0.035), "0.894 ± 0.035");
  EXPECT_EQ(format_mean_std(1.5, 0.25, 2), "1.50 ± 0.25");
}

// ---------------------------------------------------------------- table --

TEST(Table, RendersAlignedColumns) {
  Table t({"Method", "Regret"});
  t.add_row({"TSM", "2.014"});
  t.add_row({"MFCP-FG", "1.496"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Method"), std::string::npos);
  EXPECT_NE(s.find("MFCP-FG"), std::string::npos);
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), ContractError);
}

TEST(Table, CsvEscapesSpecialCells) {
  Table t({"name", "note"});
  t.add_row({"x,y", "say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, CellFormatsFixedPrecision) {
  EXPECT_EQ(Table::cell(1.23456, 3), "1.235");
  EXPECT_EQ(Table::cell(2.0, 1), "2.0");
}

TEST(Table, CountsRowsAndCols) {
  Table t({"a", "b", "c"});
  EXPECT_EQ(t.cols(), 3u);
  EXPECT_EQ(t.rows(), 0u);
  t.add_row({"1", "2", "3"});
  EXPECT_EQ(t.rows(), 1u);
}

// ------------------------------------------------------------- logging --

TEST(Log, LevelFilterRoundTrip) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  // Below-threshold messages are dropped silently.
  log_message(LogLevel::kDebug, "should not appear");
  MFCP_LOG(kDebug) << "also dropped " << 42;
  set_log_level(saved);
}

TEST(Log, ParseLevelAcceptsNamesAndNumerics) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("INFO"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("Warning"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("0"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("3"), LogLevel::kError);
}

TEST(Log, ParseLevelTrimsSurroundingWhitespace) {
  EXPECT_EQ(parse_log_level("  info  "), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("\twarn\n"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level(" 2 "), LogLevel::kWarn);
}

TEST(Log, ParseLevelFallsBackOnJunk) {
  EXPECT_EQ(parse_log_level(""), LogLevel::kWarn);  // default fallback
  EXPECT_EQ(parse_log_level("", LogLevel::kError), LogLevel::kError);
  EXPECT_EQ(parse_log_level("   "), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("verbose"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("7"), LogLevel::kWarn);       // out of range
  EXPECT_EQ(parse_log_level("-1"), LogLevel::kWarn);      // out of range
  EXPECT_EQ(parse_log_level("1.5"), LogLevel::kWarn);     // not an integer
  EXPECT_EQ(parse_log_level("warns"), LogLevel::kWarn);   // near miss
  EXPECT_EQ(parse_log_level("in fo"), LogLevel::kWarn);   // inner space
}

TEST(Log, EmitsAtOrAboveLevel) {
  const LogLevel saved = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_NO_THROW(log_message(LogLevel::kInfo, "info line"));
  EXPECT_NO_THROW(MFCP_LOG(kWarn) << "warn " << 3.14);
  set_log_level(saved);
}

// ------------------------------------------------------------ stopwatch --

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = w.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 5.0);
  EXPECT_NEAR(w.millis(), w.seconds() * 1000.0, 5.0);
}

TEST(Stopwatch, ResetRestartsClock) {
  Stopwatch w;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  w.reset();
  EXPECT_LT(w.seconds(), 0.015);
}

// ---------------------------------------------------------- signal_safe --

TEST(SignalSafe, FormatU64Decimal) {
  char buf[32];
  EXPECT_EQ(support::format_u64_decimal(buf, sizeof(buf), 0), 1u);
  EXPECT_EQ(std::string(buf, 1), "0");
  EXPECT_EQ(support::format_u64_decimal(buf, sizeof(buf), 90210), 5u);
  EXPECT_EQ(std::string(buf, 5), "90210");
  EXPECT_EQ(support::format_u64_decimal(buf, sizeof(buf), UINT64_MAX), 20u);
  EXPECT_EQ(std::string(buf, 20), "18446744073709551615");
}

TEST(SignalSafe, FormatU64DecimalNeverPartialAtBufferBoundary) {
  char buf[32];
  // 90210 needs 5 bytes: exactly enough succeeds, one short writes
  // nothing at all (a partial number in a crash dump is worse than none).
  EXPECT_EQ(support::format_u64_decimal(buf, 5, 90210), 5u);
  buf[0] = 'x';
  EXPECT_EQ(support::format_u64_decimal(buf, 4, 90210), 0u);
  EXPECT_EQ(buf[0], 'x');
  EXPECT_EQ(support::format_u64_decimal(buf, 0, 7), 0u);
}

TEST(SignalSafe, FormatI64DecimalSignsAndZero) {
  char buf[32];
  EXPECT_EQ(support::format_i64_decimal(buf, sizeof(buf), 0), 1u);
  EXPECT_EQ(std::string(buf, 1), "0");
  EXPECT_EQ(support::format_i64_decimal(buf, sizeof(buf), 42), 2u);
  EXPECT_EQ(std::string(buf, 2), "42");
  EXPECT_EQ(support::format_i64_decimal(buf, sizeof(buf), -42), 3u);
  EXPECT_EQ(std::string(buf, 3), "-42");
}

TEST(SignalSafe, FormatI64DecimalInt64Min) {
  // INT64_MIN's magnitude does not fit in int64_t, so a naive -value
  // negation is UB; the formatter must go through unsigned arithmetic.
  char buf[32];
  const std::size_t n =
      support::format_i64_decimal(buf, sizeof(buf), INT64_MIN);
  EXPECT_EQ(n, 20u);
  EXPECT_EQ(std::string(buf, n), "-9223372036854775808");
  EXPECT_EQ(support::format_i64_decimal(buf, sizeof(buf), INT64_MAX), 19u);
  EXPECT_EQ(std::string(buf, 19), "9223372036854775807");
}

TEST(SignalSafe, FormatI64DecimalNeverPartialAtBufferBoundary) {
  char buf[32];
  // "-42" needs 3 bytes; 2 must emit nothing (not a bare '-' or "42").
  EXPECT_EQ(support::format_i64_decimal(buf, 3, -42), 3u);
  buf[0] = 'x';
  EXPECT_EQ(support::format_i64_decimal(buf, 2, -42), 0u);
  EXPECT_EQ(buf[0], 'x');
  EXPECT_EQ(support::format_i64_decimal(buf, 1, -1), 0u);
  EXPECT_EQ(support::format_i64_decimal(buf, 0, -1), 0u);
  EXPECT_EQ(support::format_i64_decimal(buf, 19, INT64_MIN), 0u);
  EXPECT_EQ(support::format_i64_decimal(buf, 20, INT64_MIN), 20u);
}

TEST(SignalSafe, FormatU64HexFixedWidth) {
  char buf[32];
  EXPECT_EQ(support::format_u64_hex(buf, sizeof(buf), 0), 16u);
  EXPECT_EQ(std::string(buf, 16), "0000000000000000");
  EXPECT_EQ(support::format_u64_hex(buf, sizeof(buf), 0xdeadbeefULL), 16u);
  EXPECT_EQ(std::string(buf, 16), "00000000deadbeef");
  EXPECT_EQ(support::format_u64_hex(buf, 15, 1), 0u);
}

TEST(SignalSafe, AppendLiteralStopsAtCapacity) {
  char buf[8];
  std::size_t pos = support::append_literal(buf, sizeof(buf), 0, "abc");
  EXPECT_EQ(pos, 3u);
  pos = support::append_literal(buf, sizeof(buf), pos, "defgh");
  EXPECT_EQ(pos, 8u);
  EXPECT_EQ(std::string(buf, 8), "abcdefgh");
  // Full buffer: nothing fits, position unchanged (never partial).
  EXPECT_EQ(support::append_literal(buf, sizeof(buf), pos, "i"), 8u);
}

}  // namespace
}  // namespace mfcp
