// Tests for the matching solvers: Algorithm 1 (projected GD), mirror
// descent, branch-and-bound vs exhaustive enumeration, greedy heuristic,
// rounding and repair.
#include <gtest/gtest.h>

#include <cmath>

#include "matching/barrier.hpp"
#include "matching/objective.hpp"
#include "matching/rounding.hpp"
#include "matching/solver_exact.hpp"
#include "matching/solver_gd.hpp"
#include "matching/solver_mirror.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace mfcp::matching {
namespace {

MatchingProblem random_problem(std::uint64_t seed, std::size_t m,
                               std::size_t n, double gamma = 0.6) {
  Rng rng(seed);
  MatchingProblem p;
  p.times = Matrix(m, n);
  p.reliability = Matrix(m, n);
  for (std::size_t i = 0; i < p.times.size(); ++i) {
    p.times[i] = rng.uniform(0.2, 3.0);
    p.reliability[i] = rng.uniform(0.5, 0.99);
  }
  p.gamma = gamma;
  return p;
}

bool columns_on_simplex(const Matrix& x, double tol = 1e-9) {
  for (std::size_t j = 0; j < x.cols(); ++j) {
    double total = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      if (x(i, j) < -tol || x(i, j) > 1.0 + tol) {
        return false;
      }
      total += x(i, j);
    }
    if (std::abs(total - 1.0) > 1e-6) {
      return false;
    }
  }
  return true;
}

// ------------------------------------------------------------- GD solver --

TEST(GdSolver, UniformStartIsCenterOfSimplex) {
  const Matrix x = uniform_start(4, 3);
  EXPECT_TRUE(columns_on_simplex(x));
  EXPECT_DOUBLE_EQ(x(0, 0), 0.25);
}

TEST(GdSolver, OutputStaysOnSimplex) {
  const auto p = random_problem(1, 3, 5);
  BarrierObjective f(p);
  const auto result = solve_gd(f);
  EXPECT_TRUE(columns_on_simplex(result.x));
  EXPECT_GT(result.iterations, 0u);
}

TEST(GdSolver, ImprovesOverUniformStart) {
  const auto p = random_problem(2, 3, 6);
  BarrierObjective f(p);
  const double initial = f.value(uniform_start(3, 6));
  const auto result = solve_gd(f);
  EXPECT_LE(result.objective, initial + 1e-9);
}

TEST(GdSolver, RespectsIterationCap) {
  const auto p = random_problem(3, 3, 5);
  BarrierObjective f(p);
  GdSolverConfig cfg;
  cfg.max_iterations = 7;
  cfg.tolerance = 0.0;  // never converge early
  const auto result = solve_gd(f, cfg);
  EXPECT_EQ(result.iterations, 7u);
  EXPECT_FALSE(result.converged);
}

TEST(GdSolver, CustomStartIsProjected) {
  const auto p = random_problem(4, 2, 3);
  BarrierObjective f(p);
  Matrix start(2, 3, 5.0);  // not normalized
  const auto result = solve_gd_from(f, std::move(start));
  EXPECT_TRUE(columns_on_simplex(result.x));
}

// --------------------------------------------------------- mirror solver --

TEST(MirrorSolver, OutputStaysOnSimplex) {
  const auto p = random_problem(5, 3, 5);
  BarrierObjective f(p);
  const auto result = solve_mirror(f);
  EXPECT_TRUE(columns_on_simplex(result.x));
}

TEST(MirrorSolver, ReachesStationaryPoint) {
  const auto p = random_problem(6, 3, 5);
  BarrierObjective f(p);
  MirrorSolverConfig cfg;
  cfg.max_iterations = 5000;
  const auto result = solve_mirror(f, cfg);
  EXPECT_LT(stationarity_residual(f, result.x, 1e-6), 1e-5);
}

TEST(MirrorSolver, MatchesOrBeatsAlgorithmOne) {
  // Mirror descent's fixed points are true stationary points; the literal
  // Algorithm-1 softmax projection biases iterates toward uniform. On a
  // convex instance mirror descent should never be (meaningfully) worse.
  for (std::uint64_t seed = 10; seed < 15; ++seed) {
    const auto p = random_problem(seed, 3, 6);
    BarrierObjective f(p);
    const auto mirror = solve_mirror(f);
    const auto gd = solve_gd(f);
    EXPECT_LE(mirror.objective, gd.objective + 1e-6) << "seed " << seed;
  }
}

TEST(MirrorSolver, ConcentratesOnCheapClusterWhenObviouslyBest) {
  // One cluster 100x faster and equally reliable: after solving, nearly
  // all mass should sit on it for every task... but the makespan objective
  // balances loads, so instead verify the solution beats naive uniform by
  // a large margin and the slow clusters are not favoured.
  MatchingProblem p;
  p.times = Matrix(2, 4);
  p.reliability = Matrix(2, 4, 0.95);
  for (std::size_t j = 0; j < 4; ++j) {
    p.times(0, j) = 0.1;
    p.times(1, j) = 10.0;
  }
  p.gamma = 0.5;
  BarrierObjective f(p);
  const auto result = solve_mirror(f);
  double mass_fast = 0.0;
  for (std::size_t j = 0; j < 4; ++j) {
    mass_fast += result.x(0, j);
  }
  EXPECT_GT(mass_fast, 3.0);  // most of the 4 units of task mass
}

TEST(MirrorSolver, KeepsIterateFeasibleWithBarrier) {
  const auto p = random_problem(16, 3, 5, /*gamma=*/0.7);
  BarrierObjective f(p);
  const auto result = solve_mirror(f);
  EXPECT_GT(average_reliability(result.x, p.reliability), p.gamma);
}

TEST(MirrorSolver, DeterministicAcrossRuns) {
  const auto p = random_problem(17, 3, 6);
  BarrierObjective f(p);
  const auto a = solve_mirror(f);
  const auto b = solve_mirror(f);
  EXPECT_TRUE(approx_equal(a.x, b.x, 0.0));  // bitwise
}

// ----------------------------------------------------------- enumeration --

TEST(Enumeration, FindsKnownOptimum) {
  // Two tasks, two clusters, trivially checkable.
  MatchingProblem p;
  p.times = Matrix{{1.0, 5.0}, {5.0, 1.0}};
  p.reliability = Matrix(2, 2, 0.9);
  p.gamma = 0.5;
  const auto sol = solve_enumeration(p);
  EXPECT_TRUE(sol.feasible);
  EXPECT_TRUE(sol.proven_optimal);
  EXPECT_EQ(sol.assignment[0], 0);
  EXPECT_EQ(sol.assignment[1], 1);
  EXPECT_NEAR(sol.objective, 1.0, 1e-12);
}

TEST(Enumeration, RespectsReliabilityConstraint) {
  // Fast cluster is unreliable; constraint forces the slow one.
  MatchingProblem p;
  p.times = Matrix{{1.0}, {4.0}};
  p.reliability = Matrix{{0.5}, {0.95}};
  p.gamma = 0.8;
  const auto sol = solve_enumeration(p);
  EXPECT_TRUE(sol.feasible);
  EXPECT_EQ(sol.assignment[0], 1);
}

TEST(Enumeration, ReportsInfeasibleWhenConstraintUnattainable) {
  MatchingProblem p;
  p.times = Matrix{{1.0}, {2.0}};
  p.reliability = Matrix{{0.5}, {0.6}};
  p.gamma = 0.99;
  const auto sol = solve_enumeration(p);
  EXPECT_FALSE(sol.feasible);
  // Still returns the makespan-optimal assignment.
  EXPECT_EQ(sol.assignment[0], 0);
}

TEST(Enumeration, RefusesHugeInstances) {
  MatchingProblem p = random_problem(18, 4, 30);
  EXPECT_THROW(solve_enumeration(p), ContractError);
}

// -------------------------------------------------------- branch & bound --

TEST(BranchAndBound, MatchesEnumerationExactly) {
  for (std::uint64_t seed = 20; seed < 40; ++seed) {
    const auto p = random_problem(seed, 3, 6, 0.65);
    const auto bb = solve_exact(p);
    const auto enumd = solve_enumeration(p);
    ASSERT_TRUE(bb.proven_optimal);
    EXPECT_EQ(bb.feasible, enumd.feasible) << "seed " << seed;
    EXPECT_NEAR(bb.objective, enumd.objective, 1e-9) << "seed " << seed;
  }
}

TEST(BranchAndBound, MatchesEnumerationUnderSpeedup) {
  for (std::uint64_t seed = 40; seed < 50; ++seed) {
    auto p = random_problem(seed, 3, 5, 0.6);
    p.speedup = sim::SpeedupCurve::exponential_decay(0.6, 0.5);
    const auto bb = solve_exact(p);
    const auto enumd = solve_enumeration(p);
    ASSERT_TRUE(bb.proven_optimal) << "seed " << seed;
    EXPECT_NEAR(bb.objective, enumd.objective, 1e-9) << "seed " << seed;
  }
}

TEST(BranchAndBound, PrunesAggressively) {
  const auto p = random_problem(50, 3, 10, 0.6);
  const auto bb = solve_exact(p);
  EXPECT_TRUE(bb.proven_optimal);
  EXPECT_LT(bb.nodes_explored, 59049u);  // far fewer than 3^10 leaves
}

TEST(BranchAndBound, NodeBudgetTurnsAnytime) {
  const auto p = random_problem(51, 4, 12, 0.6);
  ExactSolverConfig cfg;
  cfg.node_budget = 50;
  const auto sol = solve_exact(p, cfg);
  EXPECT_FALSE(sol.proven_optimal);
  EXPECT_EQ(sol.assignment.size(), 12u);  // still returns the incumbent
}

TEST(BranchAndBound, HandlesInfeasibleInstances) {
  auto p = random_problem(52, 3, 4, 0.6);
  for (std::size_t i = 0; i < p.reliability.size(); ++i) {
    p.reliability[i] = 0.3;
  }
  p.gamma = 0.9;
  const auto sol = solve_exact(p);
  EXPECT_FALSE(sol.feasible);
  EXPECT_EQ(sol.assignment.size(), 4u);
}

TEST(BranchAndBound, EnumerationPreferenceCrossChecks) {
  const auto p = random_problem(53, 3, 5, 0.6);
  ExactSolverConfig cfg;
  cfg.prefer_enumeration = true;
  const auto a = solve_exact(p, cfg);
  cfg.prefer_enumeration = false;
  const auto b = solve_exact(p, cfg);
  EXPECT_NEAR(a.objective, b.objective, 1e-9);
}

// ----------------------------------------------------------------- greedy --

TEST(Greedy, ProducesFeasibleWhenPossible) {
  for (std::uint64_t seed = 60; seed < 70; ++seed) {
    const auto p = random_problem(seed, 3, 8, 0.7);
    const auto exact = solve_exact(p);
    const auto greedy = solve_greedy(p);
    if (exact.feasible) {
      EXPECT_TRUE(greedy.feasible) << "seed " << seed;
      EXPECT_GE(greedy.objective, exact.objective - 1e-9);
    }
  }
}

TEST(Greedy, WithinFactorTwoOfOptimum) {
  // LPT is a 4/3-approximation for identical machines; on unrelated
  // machines with repair we only assert a loose factor as a guard rail.
  for (std::uint64_t seed = 70; seed < 80; ++seed) {
    const auto p = random_problem(seed, 3, 8, 0.5);
    const auto exact = solve_exact(p);
    const auto greedy = solve_greedy(p);
    EXPECT_LE(greedy.objective, 2.0 * exact.objective + 1e-9)
        << "seed " << seed;
  }
}

// --------------------------------------------------------------- rounding --

TEST(Rounding, ArgmaxPicksLargestWeight) {
  Matrix x(3, 2, 0.1);
  x(2, 0) = 0.8;
  x(0, 1) = 0.8;
  const auto a = round_argmax(x);
  EXPECT_EQ(a[0], 2);
  EXPECT_EQ(a[1], 0);
}

TEST(Rounding, RepairRestoresFeasibility) {
  // Relaxed solution concentrated on the unreliable cluster; repair must
  // move tasks until the constraint holds.
  MatchingProblem p;
  p.times = Matrix{{1.0, 1.0, 1.0}, {1.2, 1.2, 1.2}};
  p.reliability = Matrix{{0.5, 0.5, 0.5}, {0.95, 0.95, 0.95}};
  p.gamma = 0.8;
  Matrix x(2, 3, 0.0);
  for (std::size_t j = 0; j < 3; ++j) {
    x(0, j) = 1.0;  // all on the unreliable cluster
  }
  const auto repaired = round_with_repair(x, p);
  EXPECT_TRUE(is_feasible(repaired, p));
}

TEST(Rounding, RepairIsNoopWhenAlreadyFeasible) {
  const auto p = random_problem(80, 3, 5, 0.0);  // gamma 0: all feasible
  Matrix x = uniform_start(3, 5);
  x(1, 0) = 0.9;
  const auto plain = round_argmax(x);
  const auto repaired = round_with_repair(x, p);
  EXPECT_EQ(plain, repaired);
}

TEST(Rounding, LocalSearchNeverWorsensMakespan) {
  for (std::uint64_t seed = 90; seed < 100; ++seed) {
    const auto p = random_problem(seed, 3, 7, 0.6);
    const auto greedy = solve_greedy(p);
    const auto polished = improve_local_search(greedy.assignment, p);
    EXPECT_LE(makespan(polished, p.times, p.speedup),
              makespan(greedy.assignment, p.times, p.speedup) + 1e-12);
    if (greedy.feasible) {
      EXPECT_TRUE(is_feasible(polished, p));
    }
  }
}

TEST(Rounding, PipelineStaysWithinFactorOfOptimum) {
  // Rounding a relaxed split task can plateau (single moves blocked by
  // feasibility, equal-makespan moves rejected); the full deployment
  // pipeline additionally races the greedy heuristic — see
  // mfcp::core::deploy_matching, covered by the integration tests. Here we
  // guard that solve+round+polish alone stays within 1.5x of optimal over
  // a seed sweep.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    const auto p = random_problem(seed, 3, 5, 0.6);
    BarrierConfig cfg;
    cfg.beta = 50.0;
    cfg.lambda = 0.01;
    BarrierObjective f(p, cfg);
    const auto relaxed = solve_mirror(f);
    auto assignment = round_with_repair(relaxed.x, p);
    assignment = improve_local_search(assignment, p);
    const auto exact = solve_exact(p);
    EXPECT_LE(makespan(assignment, p.times, p.speedup),
              1.5 * exact.objective + 1e-9)
        << "seed " << seed;
  }
}

TEST(MirrorSolver, BacktrackingConvergesAtSharpBeta) {
  // Regression guard for the beta=50 oscillation: with backtracking the
  // stationarity residual must become small.
  const auto p = random_problem(101, 3, 5, 0.6);
  BarrierConfig cfg;
  cfg.beta = 50.0;
  cfg.lambda = 0.01;
  BarrierObjective f(p, cfg);
  MirrorSolverConfig scfg;
  scfg.max_iterations = 4000;
  const auto r = solve_mirror(f, scfg);
  EXPECT_LT(stationarity_residual(f, r.x, 1e-6), 1e-4);
}

// Property sweep: B&B equals enumeration over random shapes and gammas.
class ExactSolverProperty : public ::testing::TestWithParam<int> {};

TEST_P(ExactSolverProperty, BranchAndBoundEqualsEnumeration) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 15485863 + 11);
  const std::size_t m = 2 + rng.uniform_index(3);   // 2..4
  const std::size_t n = 2 + rng.uniform_index(6);   // 2..7
  const double gamma = rng.uniform(0.4, 0.85);
  const auto p = random_problem(rng.next_u64(), m, n, gamma);
  const auto bb = solve_exact(p);
  const auto enumd = solve_enumeration(p);
  ASSERT_TRUE(bb.proven_optimal);
  EXPECT_EQ(bb.feasible, enumd.feasible);
  EXPECT_NEAR(bb.objective, enumd.objective, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, ExactSolverProperty,
                         ::testing::Range(0, 20));

}  // namespace
}  // namespace mfcp::matching
