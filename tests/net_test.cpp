// Tests for the shared HTTP core and the platform gateway: socket-free
// protocol parsing and routing, the flat-JSON reader, live multi-threaded
// server behavior, backpressure (429 + Retry-After), and an end-to-end
// gateway-over-serving-engine loop asserting task conservation and
// forward-only status transitions.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.hpp"
#include "net/gateway.hpp"
#include "net/http.hpp"
#include "net/http_client.hpp"
#include "net/http_server.hpp"
#include "net/json.hpp"
#include "obs/alert_webhook.hpp"
#include "obs/flight.hpp"
#include "obs/profiler.hpp"

namespace mfcp::net {
namespace {

// ------------------------------------------------------------ protocol --

TEST(HttpParse, ParsesRequestLineAndHeaders) {
  const HttpRequest r = parse_request_head(
      "POST /submit HTTP/1.1\r\n"
      "Host: localhost\r\n"
      "Content-Type: application/json\r\n"
      "Content-Length: 12\r\n"
      "\r\n");
  ASSERT_TRUE(r.valid);
  EXPECT_EQ(r.method, "POST");
  EXPECT_EQ(r.path, "/submit");
  EXPECT_EQ(r.version, "HTTP/1.1");
  // Names are case-insensitive; values keep their case.
  EXPECT_EQ(r.header("content-type"), "application/json");
  EXPECT_EQ(r.header("CONTENT-LENGTH"), "12");
  ASSERT_TRUE(r.content_length().has_value());
  EXPECT_EQ(*r.content_length(), 12u);
  EXPECT_EQ(r.header("x-missing"), "");
}

TEST(HttpParse, RejectsMalformedHeads) {
  EXPECT_FALSE(parse_request_head("").valid);
  EXPECT_FALSE(parse_request_head("GET\r\n").valid);
  EXPECT_FALSE(parse_request_head("GET /x\r\n").valid);  // no version
  EXPECT_FALSE(parse_request_head("GET  /x HTTP/1.1\r\n").valid);
  EXPECT_FALSE(
      parse_request_head("GET /x HTTP/1.1 extra\r\n").valid);
  EXPECT_FALSE(parse_request_head("GET /x HTTP/1.1\r\n"
                                  "not a header line\r\n"
                                  "\r\n")
                   .valid);
}

TEST(HttpParse, ContentLengthRejectsNonNumeric) {
  const HttpRequest r = parse_request_head(
      "GET / HTTP/1.1\r\nContent-Length: twelve\r\n\r\n");
  ASSERT_TRUE(r.valid);
  EXPECT_FALSE(r.content_length().has_value());
}

TEST(HttpParse, SerializeResponseCarriesHeadersAndLength) {
  HttpResponse resp = json_response(429, "{\"accepted\":false}");
  resp.headers.emplace_back("Retry-After", "3");
  const std::string wire = serialize_response(resp);
  EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Type: application/json\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 18\r\n"), std::string::npos);
  EXPECT_NE(wire.find("Retry-After: 3\r\n"), std::string::npos);
  EXPECT_NE(wire.find("\r\n\r\n{\"accepted\":false}"), std::string::npos);
}

TEST(HttpParse, ClientParsesResponseWire) {
  const ClientResponse r = parse_response(
      "HTTP/1.1 200 OK\r\n"
      "Content-Type: text/plain\r\n"
      "Content-Length: 3\r\n"
      "\r\n"
      "ok\n");
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.body, "ok\n");
  EXPECT_EQ(r.header("content-type"), "text/plain");
}

// ---------------------------------------------------------------- json --

TEST(Json, ParsesFlatScalars) {
  const auto obj = parse_json_object(
      "{\"s\":\"a\\n\\u0041\",\"n\":-2.5e1,\"t\":true,\"f\":false,"
      "\"z\":null}");
  ASSERT_TRUE(obj.has_value());
  EXPECT_EQ(obj->at("s").str, "a\nA");
  EXPECT_EQ(obj->at("n").num, -25.0);
  EXPECT_TRUE(obj->at("t").boolean);
  EXPECT_FALSE(obj->at("f").boolean);
  EXPECT_EQ(obj->at("z").kind, JsonValue::Kind::kNull);
}

TEST(Json, RejectsNestingDuplicatesAndGarbage) {
  EXPECT_FALSE(parse_json_object("").has_value());
  EXPECT_FALSE(parse_json_object("[1,2]").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":{\"b\":1}}").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":[1]}").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":1,\"a\":2}").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":1} trailing").has_value());
  EXPECT_FALSE(parse_json_object("{\"a\":}").has_value());
}

TEST(Json, QuoteEscapesControlCharacters) {
  EXPECT_EQ(json_quote("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
}

// --------------------------------------------------------- submit body --

TEST(SubmitBody, ParsesFullDescriptor) {
  const SubmitParse p = parse_submit_body(
      "{\"family\":\"transformer\",\"dataset\":\"europarl\",\"depth\":12,"
      "\"width\":256,\"batch_size\":32,\"dataset_fraction\":0.5,"
      "\"deadline_hours\":4.0}");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.task.family, sim::TaskFamily::kTransformer);
  EXPECT_EQ(p.task.dataset, sim::DatasetKind::kEuroparl);
  EXPECT_EQ(p.task.depth, 12);
  EXPECT_EQ(p.task.width, 256);
  EXPECT_EQ(p.task.batch_size, 32);
  EXPECT_EQ(p.task.dataset_fraction, 0.5);
  EXPECT_EQ(p.deadline_hours, 4.0);
}

TEST(SubmitBody, DefaultsApplyWhenFieldsOmitted) {
  const SubmitParse p = parse_submit_body("{\"family\":\"CNN\"}");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.task.family, sim::TaskFamily::kCnn);
  const sim::TaskDescriptor defaults;
  EXPECT_EQ(p.task.depth, defaults.depth);
  EXPECT_EQ(p.task.width, defaults.width);
  EXPECT_EQ(p.deadline_hours, 0.0);  // "use the link's default"
}

TEST(SubmitBody, ParsesClientIdentity) {
  const SubmitParse p = parse_submit_body(
      "{\"family\":\"cnn\",\"client\":\"team-a.batch_7\"}");
  ASSERT_TRUE(p.ok) << p.error;
  EXPECT_EQ(p.client, "team-a.batch_7");
  // Absent client -> empty string -> the link's anonymous bucket.
  EXPECT_TRUE(parse_submit_body("{\"family\":\"cnn\"}").client.empty());
}

TEST(SubmitBody, RejectsBadClientIdentity) {
  EXPECT_FALSE(
      parse_submit_body("{\"family\":\"cnn\",\"client\":\"\"}").ok);
  EXPECT_FALSE(
      parse_submit_body("{\"family\":\"cnn\",\"client\":\"a b\"}").ok);
  EXPECT_FALSE(
      parse_submit_body("{\"family\":\"cnn\",\"client\":\"a/b\"}").ok);
  EXPECT_FALSE(parse_submit_body("{\"family\":\"cnn\",\"client\":7}").ok);
  const std::string long_name(65, 'x');
  EXPECT_FALSE(parse_submit_body("{\"family\":\"cnn\",\"client\":\"" +
                                 long_name + "\"}")
                   .ok);
  // 64 chars of the allowed charset is the inclusive limit.
  EXPECT_TRUE(parse_submit_body("{\"family\":\"cnn\",\"client\":\"" +
                                std::string(64, 'x') + "\"}")
                  .ok);
}

TEST(SubmitBody, RejectsBadInput) {
  EXPECT_FALSE(parse_submit_body("not json").ok);
  EXPECT_FALSE(parse_submit_body("{}").ok);  // family required
  EXPECT_FALSE(parse_submit_body("{\"family\":\"gpu\"}").ok);
  EXPECT_FALSE(
      parse_submit_body("{\"family\":\"cnn\",\"depht\":3}").ok);  // typo
  EXPECT_FALSE(
      parse_submit_body("{\"family\":\"cnn\",\"depth\":2.5}").ok);
  EXPECT_FALSE(
      parse_submit_body("{\"family\":\"cnn\",\"dataset_fraction\":0}").ok);
  EXPECT_FALSE(
      parse_submit_body("{\"family\":\"cnn\",\"deadline_hours\":-1}").ok);
}

// ------------------------------------------------- socket-free routing --

HttpRequest make_request(const std::string& method, const std::string& path,
                         std::string body = {}) {
  HttpRequest r;
  r.method = method;
  r.path = path;
  r.version = "HTTP/1.1";
  r.body = std::move(body);
  r.valid = true;
  return r;
}

std::uint64_t body_u64(const std::string& body, const std::string& key) {
  const auto obj = parse_json_object(body);
  EXPECT_TRUE(obj.has_value()) << body;
  if (!obj.has_value()) {
    return 0;
  }
  const auto it = obj->find(key);
  EXPECT_TRUE(it != obj->end()) << key << " missing in " << body;
  return it == obj->end() ? 0
                          : static_cast<std::uint64_t>(it->second.num);
}

std::string body_str(const std::string& body, const std::string& key) {
  const auto obj = parse_json_object(body);
  if (!obj.has_value()) {
    return {};
  }
  const auto it = obj->find(key);
  return it == obj->end() ? std::string{} : it->second.str;
}

TEST(GatewayRoute, SubmitAcceptThenStatusAndStats) {
  engine::GatewayLink link;
  const HttpResponse submit = route_gateway_request(
      make_request("POST", "/submit", "{\"family\":\"cnn\"}"), link,
      nullptr);
  ASSERT_EQ(submit.status, 200) << submit.body;
  const std::uint64_t id = body_u64(submit.body, "id");
  EXPECT_GE(id, engine::kExternalIdBase);

  const HttpResponse status = route_gateway_request(
      make_request("GET", "/task/" + std::to_string(id)), link, nullptr);
  ASSERT_EQ(status.status, 200);
  EXPECT_EQ(body_u64(status.body, "id"), id);
  EXPECT_EQ(body_str(status.body, "state"), "queued");

  const HttpResponse stats =
      route_gateway_request(make_request("GET", "/stats"), link, nullptr);
  ASSERT_EQ(stats.status, 200);
  EXPECT_EQ(body_u64(stats.body, "tasks_submitted"), 1u);
  EXPECT_EQ(body_u64(stats.body, "tasks_queued"), 1u);
  EXPECT_EQ(body_u64(stats.body, "inbox_depth"), 1u);
}

TEST(GatewayRoute, ValidationAndMethodErrors) {
  engine::GatewayLink link;
  EXPECT_EQ(route_gateway_request(
                make_request("POST", "/submit", "not json"), link, nullptr)
                .status,
            400);
  const HttpResponse wrong_method = route_gateway_request(
      make_request("GET", "/submit"), link, nullptr);
  EXPECT_EQ(wrong_method.status, 405);
  ASSERT_EQ(wrong_method.headers.size(), 1u);
  EXPECT_EQ(wrong_method.headers[0].first, "Allow");
  EXPECT_EQ(wrong_method.headers[0].second, "POST");
  EXPECT_EQ(route_gateway_request(make_request("GET", "/task/abc"), link,
                                  nullptr)
                .status,
            400);
  EXPECT_EQ(route_gateway_request(make_request("GET", "/task/42"), link,
                                  nullptr)
                .status,
            404);
  EXPECT_EQ(
      route_gateway_request(make_request("GET", "/nope"), link, nullptr)
          .status,
      404);
  HttpRequest invalid;  // valid = false
  EXPECT_EQ(route_gateway_request(invalid, link, nullptr).status, 400);
}

TEST(GatewayRoute, BackpressureIs429WithDeterministicRetryAfter) {
  engine::GatewayLinkConfig cfg;
  cfg.high_water = 2;
  engine::GatewayLink link(cfg);
  // A known drain rate makes the advised backoff exactly predictable
  // through the shared replenish formula: 1 task of excess draining at
  // 4 tasks per 2 s round = 0.5 s, floored at the 1 s minimum.
  link.configure_drain(/*round_batch=*/4, /*expected_round_seconds=*/2.0);

  const std::string body = "{\"family\":\"mlp\"}";
  EXPECT_EQ(route_gateway_request(make_request("POST", "/submit", body),
                                  link, nullptr)
                .status,
            200);
  EXPECT_EQ(route_gateway_request(make_request("POST", "/submit", body),
                                  link, nullptr)
                .status,
            200);
  const HttpResponse rejected = route_gateway_request(
      make_request("POST", "/submit", body), link, nullptr);
  ASSERT_EQ(rejected.status, 429);
  ASSERT_EQ(rejected.headers.size(), 1u);
  EXPECT_EQ(rejected.headers[0].first, "Retry-After");
  EXPECT_EQ(rejected.headers[0].second, "1");
  // A pressure shed is not a rate-limit: the body says so.
  EXPECT_NE(rejected.body.find("\"throttled\":false"), std::string::npos);

  const engine::ServiceStats stats = link.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.rejected_busy, 1u);
  EXPECT_EQ(stats.rejected_throttled, 0u);
}

TEST(GatewayRoute, RetryAfterIsMonotoneInPressure) {
  engine::GatewayLink link;
  link.configure_drain(/*round_batch=*/4, /*expected_round_seconds=*/2.0);
  double prev = 0.0;
  for (std::size_t pressure = 48; pressure <= 480; pressure += 48) {
    const double s = link.retry_after_seconds(pressure);
    EXPECT_GE(s, prev);  // deeper backlog never advises a shorter wait
    prev = s;
  }
  EXPECT_LE(prev, 3600.0);
}

TEST(GatewayRoute, DryBucketThrottlesWithHonestRetryAfter) {
  control::TokenBucketConfig bucket_cfg;
  bucket_cfg.min_burst_tokens = 1.0;
  bucket_cfg.burst_hours = 1e-4;  // capacity == 1 token
  control::TokenBucketTable buckets(bucket_cfg);
  buckets.set_global_rate(10.0, 0.0);
  engine::GatewayLinkConfig cfg;
  cfg.buckets = &buckets;
  engine::GatewayLink link(cfg);

  const std::string body = "{\"family\":\"mlp\",\"client\":\"alice\"}";
  EXPECT_EQ(route_gateway_request(make_request("POST", "/submit", body),
                                  link, nullptr)
                .status,
            200);
  const HttpResponse throttled = route_gateway_request(
      make_request("POST", "/submit", body), link, nullptr);
  ASSERT_EQ(throttled.status, 429);
  EXPECT_NE(throttled.body.find("\"throttled\":true"), std::string::npos);
  ASSERT_EQ(throttled.headers.size(), 1u);
  EXPECT_EQ(throttled.headers[0].first, "Retry-After");
  EXPECT_GE(std::atoi(throttled.headers[0].second.c_str()), 1);

  // Buckets are per client: a different identity still has its burst.
  EXPECT_EQ(route_gateway_request(
                make_request("POST", "/submit",
                             "{\"family\":\"mlp\",\"client\":\"bob\"}"),
                link, nullptr)
                .status,
            200);

  const engine::ServiceStats stats = link.stats();
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.rejected_throttled, 1u);
  EXPECT_EQ(stats.rejected_busy, 0u);
}

TEST(GatewayRoute, RatekeeperRouteServesStateOr404WhenDisabled) {
  engine::GatewayLink link;
  // Not wired: the route is absent, not empty.
  EXPECT_EQ(
      route_gateway_request(make_request("GET", "/ratekeeper"), link,
                            nullptr)
          .status,
      404);

  control::Ratekeeper ratekeeper;
  control::TokenBucketTable buckets;
  buckets.set_global_rate(100.0, 0.0);
  buckets.try_admit("alice", 0.0);
  const HttpResponse r = route_gateway_request(
      make_request("GET", "/ratekeeper"), link, nullptr, nullptr, nullptr,
      &ratekeeper, &buckets);
  ASSERT_EQ(r.status, 200);
  EXPECT_EQ(body_str(r.body, "limiting_signal"), "none");
  EXPECT_GT(body_u64(r.body, "rate_per_hour"), 0u);
  EXPECT_EQ(body_u64(r.body, "clients"), 1u);
  EXPECT_EQ(body_str(r.body, "b0_client"), "alice");
  EXPECT_EQ(body_u64(r.body, "b0_admitted"), 1u);
}

TEST(GatewayRoute, DrainingLinkRejectsNewWork) {
  engine::GatewayLink link;
  link.request_stop();
  const HttpResponse r = route_gateway_request(
      make_request("POST", "/submit", "{\"family\":\"rnn\"}"), link,
      nullptr);
  EXPECT_EQ(r.status, 429);
  EXPECT_TRUE(link.stats().draining);
}

TEST(GatewayRoute, MetricsAndHealthRideTheSameRouter) {
  engine::GatewayLink link;
  obs::MetricsRegistry registry;
  registry.counter("mfcp_example_total").add(3);
  const HttpResponse metrics = route_gateway_request(
      make_request("GET", "/metrics"), link, &registry);
  ASSERT_EQ(metrics.status, 200);
  EXPECT_NE(metrics.body.find("mfcp_example_total 3"), std::string::npos);
  EXPECT_NE(metrics.content_type.find("version=0.0.4"), std::string::npos);
  EXPECT_EQ(
      route_gateway_request(make_request("GET", "/healthz"), link, nullptr)
          .body,
      "ok\n");
  // No registry -> /metrics is absent, not empty.
  EXPECT_EQ(
      route_gateway_request(make_request("GET", "/metrics"), link, nullptr)
          .status,
      404);
}

// ---------------------------------------------- tracing + slo routes --

TEST(GatewayRoute, SubmitMintsTraceAndTraceRouteServesIt) {
  obs::TraceStore traces(64);
  engine::GatewayLinkConfig cfg;
  cfg.traces = &traces;
  cfg.trace_sample_rate = 1.0;
  engine::GatewayLink link(cfg);

  const HttpResponse submit = route_gateway_request(
      make_request("POST", "/submit", "{\"family\":\"cnn\"}"), link, nullptr,
      nullptr, &traces);
  ASSERT_EQ(submit.status, 200) << submit.body;
  const std::string trace_hex = body_str(submit.body, "trace_id");
  EXPECT_EQ(trace_hex.size(), 16u);
  // The same id rides the X-Trace-Id response header.
  bool header_matches = false;
  for (const auto& [name, value] : submit.headers) {
    if (name == "X-Trace-Id") {
      header_matches = value == trace_hex;
    }
  }
  EXPECT_TRUE(header_matches);

  const HttpResponse trace = route_gateway_request(
      make_request("GET", "/trace/" + trace_hex), link, nullptr, nullptr,
      &traces);
  ASSERT_EQ(trace.status, 200) << trace.body;
  EXPECT_EQ(body_str(trace.body, "trace_id"), trace_hex);
  EXPECT_EQ(body_str(trace.body, "state"), "in_flight");
  EXPECT_EQ(body_str(trace.body, "chain"), "submit");
  EXPECT_EQ(body_u64(trace.body, "spans"), 1u);
  EXPECT_EQ(body_str(trace.body, "s0_name"), "submit");
}

TEST(GatewayRoute, TraceRouteErrorStates) {
  obs::TraceStore traces(64);
  engine::GatewayLink link;  // sampling off: nothing is ever recorded
  // Malformed id -> 400.
  EXPECT_EQ(route_gateway_request(make_request("GET", "/trace/xyz"), link,
                                  nullptr, nullptr, &traces)
                .status,
            400);
  // Well-formed but unknown -> 404.
  EXPECT_EQ(route_gateway_request(
                make_request("GET", "/trace/00000000000000ff"), link,
                nullptr, nullptr, &traces)
                .status,
            404);
  // Tracing disabled entirely -> 404 as well, not a crash.
  EXPECT_EQ(route_gateway_request(
                make_request("GET", "/trace/00000000000000ff"), link,
                nullptr, nullptr, nullptr)
                .status,
            404);
  // An unsampled submit still mints an id, but /trace cannot resolve it.
  const HttpResponse submit = route_gateway_request(
      make_request("POST", "/submit", "{\"family\":\"mlp\"}"), link, nullptr,
      nullptr, &traces);
  ASSERT_EQ(submit.status, 200);
  EXPECT_EQ(body_str(submit.body, "trace_id").size(), 16u);
  EXPECT_EQ(route_gateway_request(
                make_request("GET",
                             "/trace/" + body_str(submit.body, "trace_id")),
                link, nullptr, nullptr, &traces)
                .status,
            404);
}

TEST(GatewayRoute, AlertsRouteReportsSloState) {
  engine::GatewayLink link;
  // No monitor wired -> absent, like /metrics without a registry.
  EXPECT_EQ(
      route_gateway_request(make_request("GET", "/alerts"), link, nullptr)
          .status,
      404);
  obs::SloMonitor slo;
  slo.observe_submit(0.0, 1.0);  // one slow submit
  const HttpResponse alerts = route_gateway_request(
      make_request("GET", "/alerts"), link, nullptr, &slo, nullptr);
  ASSERT_EQ(alerts.status, 200) << alerts.body;
  EXPECT_EQ(body_u64(alerts.body, "rules"), 4u);
  const auto obj = parse_json_object(alerts.body);
  ASSERT_TRUE(obj.has_value());
  EXPECT_TRUE(obj->count("submit_latency_value"));
  EXPECT_TRUE(obj->count("submit_latency_fast_burn"));
  EXPECT_TRUE(obj->count("dispatch_success_budget"));
  EXPECT_TRUE(obj->count("expiry_firing"));
  EXPECT_TRUE(obj->count("regret_gap_slow_burn"));
  EXPECT_TRUE(obj->count("firing_total"));
}

TEST(GatewayRoute, EvictedTaskStatusAnswers410) {
  engine::GatewayLinkConfig cfg;
  cfg.status_capacity = 2;
  engine::GatewayLink link(cfg);
  std::vector<std::uint64_t> ids;
  for (int k = 0; k < 3; ++k) {
    const HttpResponse r = route_gateway_request(
        make_request("POST", "/submit", "{\"family\":\"cnn\"}"), link,
        nullptr);
    ASSERT_EQ(r.status, 200);
    ids.push_back(body_u64(r.body, "id"));
  }
  // Terminal transitions drive FIFO eviction once past the cap; live
  // tasks are never evicted. Transitions are forward-only, so walk each
  // task through matched first.
  for (const std::uint64_t id : ids) {
    link.table().mark_matched(id, 0, "c0", 1.0, 0);
    link.table().mark_dispatched(id, 1.0, true);
  }
  EXPECT_EQ(link.table().evicted_total(), 1u);
  EXPECT_EQ(link.table().resident(), 2u);
  const HttpResponse gone = route_gateway_request(
      make_request("GET", "/task/" + std::to_string(ids[0])), link, nullptr);
  EXPECT_EQ(gone.status, 410) << gone.body;
  EXPECT_EQ(route_gateway_request(
                make_request("GET", "/task/" + std::to_string(ids[2])),
                link, nullptr)
                .status,
            200);
  // A never-issued id stays 404 — 410 is reserved for ids we once held.
  EXPECT_EQ(route_gateway_request(
                make_request("GET", "/task/" + std::to_string(ids[2] + 100)),
                link, nullptr)
                .status,
            404);
}

// ------------------------------------------------------- live sockets --

TEST(HttpServerLive, ServesConcurrentClients) {
  std::atomic<int> handled{0};
  HttpServerConfig cfg;
  cfg.worker_threads = 4;
  HttpServer server(
      [&handled](const HttpRequest& r) {
        handled.fetch_add(1, std::memory_order_relaxed);
        return text_response(200, r.method + " " + r.path + " " + r.body);
      },
      cfg);
  ASSERT_GT(server.port(), 0);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::atomic<int> ok{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      for (int k = 0; k < kPerThread; ++k) {
        const std::string body = "b" + std::to_string(t * 1000 + k);
        const ClientResponse r = http_call(
            "127.0.0.1", server.port(), "POST", "/echo", body);
        if (r.ok && r.status == 200 &&
            r.body == "POST /echo " + body) {
          ok.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& t : clients) {
    t.join();
  }
  EXPECT_EQ(ok.load(), kThreads * kPerThread);
  EXPECT_EQ(handled.load(), kThreads * kPerThread);
  EXPECT_GE(server.requests_served(), static_cast<std::uint64_t>(
                                          kThreads * kPerThread));
}

TEST(HttpServerLive, MalformedRequestLineGets400BeforeHandler) {
  std::atomic<int> handled{0};
  HttpServer server([&handled](const HttpRequest&) {
    handled.fetch_add(1);
    return text_response(200, "ok");
  });
  // Three spaces in the request line -> unparseable -> server-side 400.
  const ClientResponse r =
      http_call("127.0.0.1", server.port(), "BAD METHOD", "/x");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 400);
  EXPECT_EQ(handled.load(), 0);
}

TEST(HttpServerLive, HandlerExceptionBecomes500) {
  HttpServer server([](const HttpRequest&) -> HttpResponse {
    throw std::runtime_error("boom");
  });
  const ClientResponse r =
      http_call("127.0.0.1", server.port(), "GET", "/");
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_EQ(r.status, 500);
}

TEST(HttpServerLive, GracefulShutdownStopsAccepting) {
  HttpServer server(
      [](const HttpRequest&) { return text_response(200, "ok"); });
  const std::uint16_t port = server.port();
  ASSERT_TRUE(http_call("127.0.0.1", port, "GET", "/").ok);
  server.stop();
  server.stop();  // idempotent
  EXPECT_FALSE(http_call("127.0.0.1", port, "GET", "/", {}, 500).ok);
}

TEST(GatewayLive, BackpressureOverTheWire) {
  // No engine draining the link: the second submission already sits at
  // the high-water mark, so the third gets a live 429 + Retry-After.
  engine::GatewayLinkConfig link_cfg;
  link_cfg.high_water = 1;
  engine::GatewayLink link(link_cfg);
  PlatformGateway gateway(link, nullptr, nullptr);

  const std::string body = "{\"family\":\"cnn\"}";
  const ClientResponse first = http_call("127.0.0.1", gateway.port(),
                                         "POST", "/submit", body);
  ASSERT_TRUE(first.ok);
  EXPECT_EQ(first.status, 200);
  const ClientResponse second = http_call("127.0.0.1", gateway.port(),
                                          "POST", "/submit", body);
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.status, 429);
  EXPECT_FALSE(second.header("retry-after").empty());
  EXPECT_GE(std::atoi(std::string(second.header("retry-after")).c_str()),
            1);
}

// -------------------------------------------------- end-to-end serving --

int state_rank(const std::string& state) {
  if (state == "queued") {
    return 0;
  }
  if (state == "matched") {
    return 1;
  }
  // All of dispatched/expired/rejected are terminal.
  return 2;
}

TEST(GatewayLive, EndToEndConservationAndForwardOnlyStatus) {
  // Small but real engine in serve mode behind a live gateway.
  sim::Platform platform =
      sim::Platform::make_setting(sim::Setting::kA, 3);
  sim::PseudoGnnEmbedder embedder;
  core::PredictorConfig pcfg;
  pcfg.hidden = {8};
  Rng init(99);
  core::PlatformPredictor predictor(3, pcfg, init);

  engine::EngineConfig cfg;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait_hours = 0.1;
  cfg.gamma = 0.6;
  cfg.online_retraining = false;
  cfg.eval.solver.max_iterations = 150;
  engine::OnlineEngine eng(cfg, platform, embedder, predictor);

  engine::GatewayLink link;
  obs::MetricsRegistry registry;
  PlatformGateway gateway(link, &registry, nullptr);

  engine::ServeConfig serve_cfg;
  serve_cfg.hours_per_second = 120.0;
  serve_cfg.poll_ms = 5;
  engine::EngineResult result;
  std::thread engine_thread(
      [&] { result = eng.serve(link, serve_cfg); });

  // Concurrent submitters; generous deadlines so nothing expires on a
  // slow CI machine.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10;
  std::vector<std::vector<std::uint64_t>> ids(kThreads);
  {
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        for (int k = 0; k < kPerThread; ++k) {
          for (int attempt = 0; attempt < 50; ++attempt) {
            const ClientResponse r = http_call(
                "127.0.0.1", gateway.port(), "POST", "/submit",
                "{\"family\":\"cnn\",\"deadline_hours\":200}");
            if (r.ok && r.status == 200) {
              ids[t].push_back(body_u64(r.body, "id"));
              break;
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(10));
          }
        }
      });
    }
    for (std::thread& t : submitters) {
      t.join();
    }
  }
  std::vector<std::uint64_t> all_ids;
  for (const auto& v : ids) {
    all_ids.insert(all_ids.end(), v.begin(), v.end());
  }
  ASSERT_GT(all_ids.size(), 0u);

  // Poll every task to a terminal state, asserting transitions only move
  // forward (no torn reads: a dispatched task never reads queued again).
  std::map<std::uint64_t, int> rank;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  std::size_t terminal = 0;
  while (terminal < all_ids.size() &&
         std::chrono::steady_clock::now() < deadline) {
    terminal = 0;
    for (const std::uint64_t id : all_ids) {
      const ClientResponse r =
          http_call("127.0.0.1", gateway.port(), "GET",
                    "/task/" + std::to_string(id));
      ASSERT_TRUE(r.ok) << r.error;
      ASSERT_EQ(r.status, 200);
      const std::string state = body_str(r.body, "state");
      const int now_rank = state_rank(state);
      const auto it = rank.find(id);
      if (it != rank.end()) {
        EXPECT_LE(it->second, now_rank)
            << "task " << id << " went backwards to " << state;
      }
      rank[id] = now_rank;
      if (now_rank == 2) {
        ++terminal;
      }
    }
    if (terminal < all_ids.size()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  EXPECT_EQ(terminal, all_ids.size());

  link.request_stop();
  engine_thread.join();
  gateway.stop();

  // Conservation at drain: everything accepted is accounted terminal.
  const engine::ServiceStats stats = link.stats();
  EXPECT_EQ(stats.submitted, all_ids.size());
  EXPECT_EQ(stats.tasks.submitted, all_ids.size());
  EXPECT_EQ(stats.tasks.queued, 0u);
  EXPECT_EQ(stats.tasks.matched, 0u);
  EXPECT_EQ(stats.tasks.dispatched + stats.tasks.expired +
                stats.tasks.rejected,
            all_ids.size());
  EXPECT_GT(stats.rounds, 0u);
  // The engine's own ledger agrees with the gateway's.
  EXPECT_EQ(result.counters.arrivals, all_ids.size());
  // Request metrics were recorded with route/status labels.
  bool saw_submit_counter = false;
  for (const auto& [name, value] : registry.snapshot().counters) {
    if (name ==
        "mfcp_gateway_requests_total{route=\"/submit\",status=\"200\"}") {
      saw_submit_counter = value == all_ids.size();
    }
  }
  EXPECT_TRUE(saw_submit_counter);
}

TEST(GatewayLive, ThrottledServeModeStillConservesAcceptedWork) {
  // Serve mode behind an almost-closed Ratekeeper: most submits bounce
  // off their token bucket with a throttled 429, yet every task that was
  // accepted must still terminate in exactly one lifecycle state, and
  // the client-side and server-side throttle ledgers must agree.
  sim::Platform platform =
      sim::Platform::make_setting(sim::Setting::kA, 3);
  sim::PseudoGnnEmbedder embedder;
  core::PredictorConfig pcfg;
  pcfg.hidden = {8};
  Rng init(99);
  core::PlatformPredictor predictor(3, pcfg, init);

  control::RatekeeperConfig rk_cfg;
  rk_cfg.initial_rate_per_hour = 0.01;
  rk_cfg.min_rate_per_hour = 0.01;
  rk_cfg.max_rate_per_hour = 0.02;  // recovery can never open the gate
  control::Ratekeeper ratekeeper(rk_cfg);
  control::TokenBucketTable buckets;

  engine::EngineConfig cfg;
  cfg.batcher.max_batch = 4;
  cfg.batcher.max_wait_hours = 0.1;
  cfg.gamma = 0.6;
  cfg.online_retraining = false;
  cfg.eval.solver.max_iterations = 150;
  cfg.ratekeeper = &ratekeeper;
  cfg.admission_buckets = &buckets;
  engine::OnlineEngine eng(cfg, platform, embedder, predictor);

  engine::GatewayLinkConfig link_cfg;
  link_cfg.buckets = &buckets;
  engine::GatewayLink link(link_cfg);
  GatewayConfig gateway_cfg;
  gateway_cfg.ratekeeper = &ratekeeper;
  gateway_cfg.buckets = &buckets;
  PlatformGateway gateway(link, nullptr, nullptr, gateway_cfg);

  engine::ServeConfig serve_cfg;
  serve_cfg.hours_per_second = 120.0;
  serve_cfg.poll_ms = 5;
  engine::EngineResult result;
  std::thread engine_thread(
      [&] { result = eng.serve(link, serve_cfg); });

  constexpr int kThreads = 4;
  constexpr int kPerThread = 10;
  std::atomic<std::uint64_t> accepted{0};
  std::atomic<std::uint64_t> throttled{0};
  {
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&, t] {
        // Three identities across four threads: buckets shared and not.
        const std::string body = "{\"family\":\"cnn\",\"deadline_hours\":"
                                 "200,\"client\":\"tenant-" +
                                 std::to_string(t % 3) + "\"}";
        for (int k = 0; k < kPerThread; ++k) {
          const ClientResponse r = http_call(
              "127.0.0.1", gateway.port(), "POST", "/submit", body);
          ASSERT_TRUE(r.ok) << r.error;
          if (r.status == 200) {
            accepted.fetch_add(1);
          } else {
            ASSERT_EQ(r.status, 429);
            // Every rejection here is a rate limit, not queue pressure.
            EXPECT_NE(r.body.find("\"throttled\":true"),
                      std::string::npos);
            EXPECT_FALSE(r.header("retry-after").empty());
            throttled.fetch_add(1);
          }
        }
      });
    }
    for (std::thread& t : submitters) {
      t.join();
    }
  }
  ASSERT_GT(accepted.load(), 0u);  // a fresh bucket's burst always admits
  EXPECT_GT(throttled.load(), 0u);

  // The debug route serves the same ledger over the wire.
  const ClientResponse rk_view =
      http_call("127.0.0.1", gateway.port(), "GET", "/ratekeeper");
  ASSERT_TRUE(rk_view.ok);
  ASSERT_EQ(rk_view.status, 200);
  EXPECT_EQ(body_u64(rk_view.body, "throttled_total"), throttled.load());

  // Wait for everything accepted to reach a terminal state, then drain.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (std::chrono::steady_clock::now() < deadline) {
    const engine::TaskStatusTable::Counts counts = link.stats().tasks;
    if (counts.queued == 0 && counts.matched == 0 &&
        link.stats().inbox_depth == 0) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  link.request_stop();
  engine_thread.join();
  gateway.stop();

  const engine::ServiceStats stats = link.stats();
  EXPECT_EQ(stats.submitted, accepted.load());
  EXPECT_EQ(stats.rejected_throttled, throttled.load());
  EXPECT_EQ(stats.rejected_busy, 0u);
  EXPECT_EQ(stats.tasks.queued, 0u);
  EXPECT_EQ(stats.tasks.matched, 0u);
  EXPECT_EQ(stats.tasks.dispatched + stats.tasks.expired +
                stats.tasks.rejected,
            accepted.load());
  // No synthetic stream: the engine saw exactly the accepted submissions,
  // and the bucket table's ledger matches the link's.
  EXPECT_EQ(result.counters.arrivals, accepted.load());
  EXPECT_EQ(buckets.throttled_total(), throttled.load());
}

// --------------------------------------------- flight debug routes --

TEST(GatewayRoute, FlightDebugRoutesServeAndFilter) {
  engine::GatewayLink link;
  obs::FlightRecorder recorder;
  recorder.record(obs::FlightKind::kAdmission, 1.0, 42, 1, 0, 0xbeef);
  obs::HeartbeatHandle pulse = recorder.register_heartbeat("route_test");
  pulse.beat();

  const HttpResponse events = route_gateway_request(
      make_request("GET", "/debug/flight"), link, nullptr, nullptr,
      nullptr, nullptr, nullptr, &recorder);
  ASSERT_EQ(events.status, 200);
  EXPECT_NE(events.body.find("\"kind\":\"admission\""), std::string::npos);
  EXPECT_NE(events.body.find("\"trace_id\":\"000000000000beef\""),
            std::string::npos);

  const HttpResponse filtered = route_gateway_request(
      make_request("GET", "/debug/flight?kind=round_end"), link, nullptr,
      nullptr, nullptr, nullptr, nullptr, &recorder);
  ASSERT_EQ(filtered.status, 200);
  EXPECT_NE(filtered.body.find("\"count\":0"), std::string::npos);

  EXPECT_EQ(route_gateway_request(
                make_request("GET", "/debug/flight?kind=bogus"), link,
                nullptr, nullptr, nullptr, nullptr, nullptr, &recorder)
                .status,
            400);

  const HttpResponse threads = route_gateway_request(
      make_request("GET", "/debug/threads"), link, nullptr, nullptr,
      nullptr, nullptr, nullptr, &recorder);
  ASSERT_EQ(threads.status, 200);
  EXPECT_NE(threads.body.find("\"name\":\"route_test\""),
            std::string::npos);

  // Without a recorder the routes are absent, not empty.
  EXPECT_EQ(route_gateway_request(make_request("GET", "/debug/flight"),
                                  link, nullptr)
                .status,
            404);
  EXPECT_EQ(route_gateway_request(make_request("GET", "/debug/threads"),
                                  link, nullptr)
                .status,
            404);
}

// ----------------------------------------- profiler + build routes --

TEST(GatewayRoute, ProfileRouteStatusesMatchWiring) {
  engine::GatewayLink link;

  // Without a profiler the route is absent, not empty.
  EXPECT_EQ(route_gateway_request(make_request("GET", "/debug/profile"),
                                  link, nullptr)
                .status,
            404);

  obs::SamplingProfiler profiler;
  profiler.register_current_thread("gateway_route_test");

  EXPECT_EQ(route_gateway_request(
                make_request("GET", "/debug/profile?seconds=99"), link,
                nullptr, nullptr, nullptr, nullptr, nullptr, nullptr,
                &profiler)
                .status,
            400);
  EXPECT_EQ(route_gateway_request(
                make_request("GET", "/debug/profile?bogus=1"), link,
                nullptr, nullptr, nullptr, nullptr, nullptr, nullptr,
                &profiler)
                .status,
            400);

  const HttpResponse ok = route_gateway_request(
      make_request("GET", "/debug/profile?seconds=0.05&hz=100"), link,
      nullptr, nullptr, nullptr, nullptr, nullptr, nullptr, &profiler);
  ASSERT_EQ(ok.status, 200);
  EXPECT_NE(ok.body.find("[stage_totals];"), std::string::npos);

  // A concurrent session answers 409 and leaves it running.
  ASSERT_TRUE(profiler.start(50.0));
  EXPECT_EQ(route_gateway_request(
                make_request("GET", "/debug/profile?seconds=0.05"), link,
                nullptr, nullptr, nullptr, nullptr, nullptr, nullptr,
                &profiler)
                .status,
            409);
  EXPECT_TRUE(profiler.session_active());
  profiler.stop();
  profiler.unregister_current_thread();
}

TEST(GatewayRoute, BuildRouteReportsProvenance) {
  engine::GatewayLink link;
  const HttpResponse build = route_gateway_request(
      make_request("GET", "/debug/build"), link, nullptr);
  ASSERT_EQ(build.status, 200);
  EXPECT_NE(build.body.find("\"git_sha\":\""), std::string::npos);
  EXPECT_NE(build.body.find("\"compiler\":\""), std::string::npos);
  EXPECT_NE(build.body.find("\"build_type\":\""), std::string::npos);
  EXPECT_NE(build.body.find("\"sanitizers\":\""), std::string::npos);
}

// ------------------------------------------------- webhook delivery --

TEST(Webhook, ParseUrlAcceptsHostPortPathAndRejectsTheRest) {
  std::string error;
  const auto full =
      obs::parse_webhook_url("http://127.0.0.1:9920/hooks/alerts", &error);
  ASSERT_TRUE(full.has_value()) << error;
  EXPECT_EQ(full->host, "127.0.0.1");
  EXPECT_EQ(full->port, 9920);
  EXPECT_EQ(full->path, "/hooks/alerts");

  const auto bare = obs::parse_webhook_url("http://alerthost:80", &error);
  ASSERT_TRUE(bare.has_value()) << error;
  EXPECT_EQ(bare->host, "alerthost");
  EXPECT_EQ(bare->port, 80);
  EXPECT_EQ(bare->path, "/");

  EXPECT_FALSE(obs::parse_webhook_url("https://h:1/x", &error).has_value());
  EXPECT_FALSE(obs::parse_webhook_url("http://noport/x", &error).has_value());
  EXPECT_FALSE(obs::parse_webhook_url("http://:90/x", &error).has_value());
  EXPECT_FALSE(obs::parse_webhook_url("http://h:0/x", &error).has_value());
  EXPECT_FALSE(obs::parse_webhook_url("http://h:99999/x", &error).has_value());
  EXPECT_FALSE(obs::parse_webhook_url("ftp://h:90/x", &error).has_value());
  EXPECT_FALSE(obs::parse_webhook_url("", &error).has_value());
}

TEST(Webhook, DeliversTransitionsToALiveEndpoint) {
  std::mutex seen_mutex;
  std::vector<std::string> seen_bodies;
  std::vector<std::string> seen_paths;
  HttpServer endpoint([&](const HttpRequest& r) {
    std::lock_guard<std::mutex> lock(seen_mutex);
    seen_bodies.push_back(r.body);
    seen_paths.push_back(r.method + " " + r.path);
    return text_response(200, "ok");
  });
  ASSERT_GT(endpoint.port(), 0);

  obs::WebhookConfig cfg;
  cfg.port = endpoint.port();
  cfg.path = "/hooks/alerts";
  obs::WebhookSender sender(cfg);
  obs::MetricsRegistry registry;
  sender.bind_metrics(&registry);

  // Delivery rides the SLO monitor's sink plumbing, exactly as wired in
  // the example binary.
  obs::SloMonitor slo;
  slo.set_alert_sink(&sender);
  obs::AlertTransition fire;
  fire.t_hours = 12.5;
  fire.sli = "submit_latency";
  fire.firing = true;
  fire.value = 0.09;
  fire.budget = 0.05;
  fire.fast_burn = 3.0;
  fire.slow_burn = 1.8;
  fire.samples = 640;
  slo.report_transition(fire);
  obs::AlertTransition resolve = fire;
  resolve.firing = false;
  resolve.t_hours = 13.0;
  slo.report_transition(resolve);

  ASSERT_TRUE(sender.flush(5.0));
  EXPECT_EQ(sender.delivered_total(), 2u);
  EXPECT_EQ(sender.failed_total(), 0u);
  EXPECT_EQ(sender.dropped_total(), 0u);

  std::lock_guard<std::mutex> lock(seen_mutex);
  ASSERT_EQ(seen_bodies.size(), 2u);
  EXPECT_EQ(seen_paths[0], "POST /hooks/alerts");
  EXPECT_EQ(seen_bodies[0], obs::webhook_body(fire));
  EXPECT_EQ(seen_bodies[1], obs::webhook_body(resolve));
  EXPECT_NE(seen_bodies[0].find("\"event\":\"fire\""), std::string::npos);
  EXPECT_NE(seen_bodies[1].find("\"event\":\"resolve\""),
            std::string::npos);

  // The counters surfaced through the registry match the atomics.
  const obs::RegistrySnapshot snap = registry.snapshot();
  bool found = false;
  for (const auto& [name, value] : snap.counters) {
    if (name == "mfcp_alert_webhook_delivered_total") {
      EXPECT_EQ(value, 2u);
      found = true;
    }
  }
  EXPECT_TRUE(found);
  endpoint.stop();
}

TEST(Webhook, FailedDeliveriesAreCountedAndNeverBlock) {
  // Grab a port that was live and is now closed: connection refused.
  std::uint16_t dead_port = 0;
  {
    HttpServer ephemeral(
        [](const HttpRequest&) { return text_response(200, "ok"); });
    dead_port = ephemeral.port();
    ephemeral.stop();
  }
  obs::WebhookConfig cfg;
  cfg.port = dead_port;
  cfg.timeout_ms = 500;
  obs::WebhookSender sender(cfg);

  obs::AlertTransition t;
  t.sli = "round_cadence";
  t.firing = true;
  const auto notify_start = std::chrono::steady_clock::now();
  sender.notify(t);
  const double notify_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    notify_start)
          .count();
  // notify() only enqueues — even with a dead endpoint it returns
  // immediately (well under the delivery timeout).
  EXPECT_LT(notify_seconds, 0.1);

  ASSERT_TRUE(sender.flush(5.0));
  EXPECT_EQ(sender.delivered_total(), 0u);
  EXPECT_EQ(sender.failed_total(), 1u);
}

}  // namespace
}  // namespace mfcp::net
