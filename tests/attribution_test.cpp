// Tests for per-round regret attribution: the telescoping decomposition
// (core::attribute_regret), its exactness invariant, the traced deployment
// pipeline it consumes, and the obs-side recorder.
#include <gtest/gtest.h>

#include <cmath>

#include "mfcp/regret.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "sim/dataset.hpp"

namespace mfcp::core {
namespace {

sim::Dataset tiny_dataset(std::size_t tasks = 24, std::size_t clusters = 3) {
  const auto platform =
      sim::Platform::make_setting(sim::Setting::kA, clusters);
  sim::PseudoGnnEmbedder embedder;
  sim::DatasetConfig cfg;
  cfg.num_tasks = tasks;
  return build_dataset(platform, embedder, cfg);
}

matching::MatchingProblem truth_problem() {
  const auto data = tiny_dataset();
  const auto sub = data.subset({0, 2, 4, 6, 8, 10});
  matching::MatchingProblem truth;
  truth.times = sub.true_times;
  truth.reliability = sub.true_reliability;
  truth.gamma = 0.6;
  return truth;
}

TEST(Attribution, TracedDeployMatchesUntracedAssignment) {
  const auto truth = truth_problem();
  EvaluationConfig cfg;
  const DeployTrace trace = deploy_matching_traced(truth, cfg);
  EXPECT_EQ(trace.assignment, deploy_matching(truth, cfg));
  EXPECT_EQ(trace.relaxed.x.rows(), truth.num_clusters());
  EXPECT_EQ(trace.relaxed.x.cols(), truth.num_tasks());
  EXPECT_EQ(trace.assignment.size(), truth.num_tasks());
}

TEST(Attribution, IdenticalChainsGiveAllZeroTerms) {
  // Deployed == reference (perfect predictions): every per-stage gap is a
  // difference of identical quantities, and the realized regret is zero.
  const auto truth = truth_problem();
  EvaluationConfig cfg;
  const DeployTrace trace = deploy_matching_traced(truth, cfg);
  const obs::RegretBreakdown b = attribute_regret(truth, trace, trace, cfg);
  EXPECT_TRUE(b.valid);
  EXPECT_DOUBLE_EQ(b.pred_gap, 0.0);
  EXPECT_DOUBLE_EQ(b.solver_gap, 0.0);
  EXPECT_DOUBLE_EQ(b.rounding_gap, 0.0);
  EXPECT_DOUBLE_EQ(b.admission_gap, 0.0);
  EXPECT_DOUBLE_EQ(b.total, 0.0);
  EXPECT_TRUE(b.exact());
}

TEST(Attribution, ExactOnPerturbedPredictions) {
  // A deliberately wrong prediction chain: the decomposition must still
  // telescope to the realized regret within the 1e-6 acceptance tolerance,
  // and the total must match an independent end-to-end evaluation.
  const auto truth = truth_problem();
  Matrix t_hat = truth.times;
  for (std::size_t i = 0; i < t_hat.rows(); ++i) {
    for (std::size_t j = 0; j < t_hat.cols(); ++j) {
      // Deterministic, sign-alternating multiplicative error up to 60%.
      const double wobble =
          0.6 * (((i * 31 + j * 17) % 7) / 6.0) * ((i + j) % 2 == 0 ? 1 : -1);
      t_hat(i, j) *= 1.0 + wobble;
    }
  }
  const auto predicted = truth.with_metrics(t_hat, truth.reliability);

  EvaluationConfig cfg;
  const DeployTrace dep = deploy_matching_traced(predicted, cfg);
  const DeployTrace ref = deploy_matching_traced(truth, cfg);
  const obs::RegretBreakdown b = attribute_regret(truth, dep, ref, cfg);

  EXPECT_TRUE(b.valid);
  EXPECT_TRUE(b.exact()) << "terms " << b.term_sum() << " vs total "
                         << b.total;
  const MatchOutcome outcome =
      evaluate_assignment(truth, dep.assignment, ref.assignment);
  EXPECT_NEAR(b.total, outcome.regret, 1e-9);
  EXPECT_DOUBLE_EQ(b.admission_gap, 0.0);
  EXPECT_GE(b.solver_residual, 0.0);
}

TEST(Attribution, AdmissionLossEntersBothSidesOfTheInvariant) {
  const auto truth = truth_problem();
  EvaluationConfig cfg;
  const DeployTrace trace = deploy_matching_traced(truth, cfg);
  AttributionConfig attr;
  attr.admission_loss = 0.7125;
  const obs::RegretBreakdown b =
      attribute_regret(truth, trace, trace, cfg, attr);
  EXPECT_DOUBLE_EQ(b.admission_gap, 0.7125);
  EXPECT_DOUBLE_EQ(b.total, 0.7125);  // realized regret is zero here
  EXPECT_TRUE(b.exact());
}

TEST(Attribution, DeeperPolishKeepsTheInvariant) {
  // An explicitly tightened polish changes the pred/solver split but can
  // never break the telescoping sum.
  const auto truth = truth_problem();
  Matrix t_hat = truth.times;
  t_hat(0, 0) *= 3.0;
  t_hat(1, 2) *= 0.4;
  const auto predicted = truth.with_metrics(t_hat, truth.reliability);
  EvaluationConfig cfg;
  const DeployTrace dep = deploy_matching_traced(predicted, cfg);
  const DeployTrace ref = deploy_matching_traced(truth, cfg);
  AttributionConfig attr;
  attr.polish_iterations = 200;
  attr.polish_tolerance = 1e-10;
  const obs::RegretBreakdown b =
      attribute_regret(truth, dep, ref, cfg, attr);
  EXPECT_TRUE(b.exact());
}

// -------------------------------------------------------------- recorder --

TEST(AttributionRecorder, CountsAndObservesWhenBound) {
  obs::MetricsRegistry registry;
  obs::AttributionRecorder recorder(&registry);

  obs::RegretBreakdown exact_b;
  exact_b.pred_gap = 0.25;
  exact_b.solver_gap = 0.05;
  exact_b.rounding_gap = -0.1;
  exact_b.admission_gap = 0.0;
  exact_b.total = 0.2;
  exact_b.valid = true;
  recorder.record(exact_b);

  obs::RegretBreakdown inexact_b = exact_b;
  inexact_b.total = 0.5;  // off by 0.3 >> tolerance
  recorder.record(inexact_b);

  obs::RegretBreakdown invalid_b;  // valid == false: must be ignored
  recorder.record(invalid_b);

  EXPECT_EQ(recorder.recorded(), 2u);
  EXPECT_EQ(recorder.inexact(), 1u);

  const auto snapshot = registry.snapshot();
  bool saw_pred = false;
  for (const auto& h : snapshot.histograms) {
    if (h.name == "mfcp_regret_gap{term=\"prediction\"}") {
      saw_pred = true;
      EXPECT_EQ(h.count, 2u);
      EXPECT_NEAR(h.sum, 0.5, 1e-12);
    }
  }
  EXPECT_TRUE(saw_pred);
  bool saw_rounds = false;
  bool saw_inexact = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name == "mfcp_regret_attributed_rounds_total") {
      saw_rounds = true;
      EXPECT_EQ(value, 2u);
    }
    if (name == "mfcp_regret_attribution_inexact_total") {
      saw_inexact = true;
      EXPECT_EQ(value, 1u);
    }
  }
  EXPECT_TRUE(saw_rounds);
  EXPECT_TRUE(saw_inexact);
}

TEST(AttributionRecorder, UnboundRecorderStillCounts) {
  obs::AttributionRecorder recorder;  // no registry
  obs::RegretBreakdown b;
  b.pred_gap = 1.0;
  b.total = 1.0;
  b.valid = true;
  recorder.record(b);
  EXPECT_EQ(recorder.recorded(), 1u);
  EXPECT_EQ(recorder.inexact(), 0u);
}

TEST(RegretBreakdown, ExactToleranceBoundary) {
  obs::RegretBreakdown b;
  b.pred_gap = 0.5;
  b.total = 0.5 + 5e-7;
  b.valid = true;
  EXPECT_TRUE(b.exact());  // within the 1e-6 default
  b.total = 0.5 + 2e-6;
  EXPECT_FALSE(b.exact());
  EXPECT_TRUE(b.exact(1e-5));
  EXPECT_DOUBLE_EQ(b.term_sum(), 0.5);
}

}  // namespace
}  // namespace mfcp::core
