// Tests for the differentiation module: finite-difference reference,
// KKT implicit differentiation (validated against FD Jacobians of the
// actual solver output), and the zeroth-order forward-gradient estimator.
#include <gtest/gtest.h>

#include <cmath>

#include "diff/finite_diff.hpp"
#include "diff/kkt.hpp"
#include "diff/zeroth_order.hpp"
#include "linalg/blas.hpp"
#include "linalg/vector_ops.hpp"
#include "matching/barrier.hpp"
#include "matching/solver_mirror.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace mfcp::diff {
namespace {

using matching::BarrierConfig;
using matching::BarrierObjective;
using matching::MatchingProblem;
using matching::MirrorSolverConfig;

MatchingProblem random_problem(std::uint64_t seed, std::size_t m,
                               std::size_t n, double gamma = 0.55) {
  Rng rng(seed);
  MatchingProblem p;
  p.times = Matrix(m, n);
  p.reliability = Matrix(m, n);
  for (std::size_t i = 0; i < p.times.size(); ++i) {
    p.times[i] = rng.uniform(0.4, 2.0);
    p.reliability[i] = rng.uniform(0.6, 0.98);
  }
  p.gamma = gamma;
  return p;
}

/// High-accuracy inner solver shared by the KKT/FD comparisons. Moderate
/// beta keeps the solution well in the interior so the reduced KKT system
/// (box multipliers = 0) is exact.
MirrorSolverConfig tight_solver() {
  MirrorSolverConfig cfg;
  cfg.max_iterations = 20000;
  cfg.tolerance = 1e-11;
  return cfg;
}

/// Cheaper solver for the Monte-Carlo zeroth-order tests, which need many
/// solves but not KKT-grade accuracy.
MirrorSolverConfig loose_solver() {
  MirrorSolverConfig cfg;
  cfg.max_iterations = 1200;
  cfg.tolerance = 1e-8;
  return cfg;
}

MatchingSolver make_loose_solver(double gamma, const BarrierConfig& bcfg) {
  return [gamma, bcfg](const Matrix& t, const Matrix& a) {
    BarrierObjective obj(t, a, gamma, bcfg);
    return matching::solve_mirror(obj, loose_solver()).x;
  };
}

BarrierConfig soft_barrier() {
  BarrierConfig cfg;
  cfg.beta = 4.0;
  cfg.lambda = 0.1;
  return cfg;
}

MatchingSolver make_solver(double gamma, const BarrierConfig& bcfg) {
  return [gamma, bcfg](const Matrix& t, const Matrix& a) {
    BarrierObjective obj(t, a, gamma, bcfg);
    return matching::solve_mirror(obj, tight_solver()).x;
  };
}

// ---------------------------------------------------------- finite diff --

TEST(FiniteDiff, GradientOfQuadratic) {
  const Matrix at{{1.0, 2.0}, {3.0, 4.0}};
  const Matrix g = fd_gradient(
      [](const Matrix& x) {
        double acc = 0.0;
        for (std::size_t i = 0; i < x.size(); ++i) {
          acc += x[i] * x[i];
        }
        return acc;
      },
      at);
  for (std::size_t i = 0; i < at.size(); ++i) {
    EXPECT_NEAR(g[i], 2.0 * at[i], 1e-6);
  }
}

TEST(FiniteDiff, JacobianOfLinearSolverIsExact) {
  // "Solver" X*(T, A) = 2T + 3A has trivially known Jacobians.
  const MatchingSolver solver = [](const Matrix& t, const Matrix& a) {
    Matrix out = t;
    out *= 2.0;
    Matrix a3 = a;
    a3 *= 3.0;
    out += a3;
    return out;
  };
  const Matrix t(2, 2, 1.0);
  const Matrix a(2, 2, 0.5);
  const Matrix jt = fd_jacobian_wrt_times(solver, t, a);
  const Matrix ja = fd_jacobian_wrt_reliability(solver, t, a);
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t s = 0; s < 4; ++s) {
      EXPECT_NEAR(jt(r, s), r == s ? 2.0 : 0.0, 1e-7);
      EXPECT_NEAR(ja(r, s), r == s ? 3.0 : 0.0, 1e-7);
    }
  }
}

// ------------------------------------------------------------------ kkt --

TEST(Kkt, EqualityJacobianStructure) {
  const Matrix d = equality_jacobian(3, 4);
  ASSERT_EQ(d.rows(), 4u);
  ASSERT_EQ(d.cols(), 12u);
  for (std::size_t j = 0; j < 4; ++j) {
    double row_sum = 0.0;
    for (std::size_t c = 0; c < 12; ++c) {
      row_sum += d(j, c);
      EXPECT_TRUE(d(j, c) == 0.0 || d(j, c) == 1.0);
    }
    EXPECT_DOUBLE_EQ(row_sum, 3.0);
    EXPECT_DOUBLE_EQ(d(j, 0 * 4 + j), 1.0);
  }
}

TEST(Kkt, JacobianColumnsSumToZeroPerTask) {
  // Differentiating the simplex constraint: d(sum_i x_ij)/d theta = 0, so
  // every column of dX/dT must sum to zero within each task block.
  const auto p = random_problem(1, 3, 4);
  BarrierObjective obj(p, soft_barrier());
  const Matrix xstar = matching::solve_mirror(obj, tight_solver()).x;
  const auto jac = kkt_full_jacobians(obj, xstar);
  const std::size_t m = 3;
  const std::size_t n = 4;
  for (std::size_t s = 0; s < m * n; ++s) {
    for (std::size_t j = 0; j < n; ++j) {
      double col = 0.0;
      for (std::size_t i = 0; i < m; ++i) {
        col += jac.dx_dt(i * n + j, s);
      }
      EXPECT_NEAR(col, 0.0, 1e-8);
    }
  }
}

TEST(Kkt, JacobianWrtTimesMatchesSolverFiniteDifference) {
  const auto p = random_problem(2, 3, 4);
  const BarrierConfig bcfg = soft_barrier();
  BarrierObjective obj(p, bcfg);
  const Matrix xstar = matching::solve_mirror(obj, tight_solver()).x;
  const auto jac = kkt_full_jacobians(obj, xstar);

  const auto solver = make_solver(p.gamma, bcfg);
  const Matrix fd = fd_jacobian_wrt_times(solver, p.times, p.reliability,
                                          1e-5);
  for (std::size_t r = 0; r < fd.size(); ++r) {
    EXPECT_NEAR(jac.dx_dt[r], fd[r], 5e-3) << "entry " << r;
  }
}

TEST(Kkt, JacobianWrtReliabilityMatchesSolverFiniteDifference) {
  const auto p = random_problem(3, 3, 4);
  const BarrierConfig bcfg = soft_barrier();
  BarrierObjective obj(p, bcfg);
  const Matrix xstar = matching::solve_mirror(obj, tight_solver()).x;
  const auto jac = kkt_full_jacobians(obj, xstar);

  const auto solver = make_solver(p.gamma, bcfg);
  const Matrix fd =
      fd_jacobian_wrt_reliability(solver, p.times, p.reliability, 1e-5);
  for (std::size_t r = 0; r < fd.size(); ++r) {
    EXPECT_NEAR(jac.dx_da[r], fd[r], 5e-3) << "entry " << r;
  }
}

TEST(Kkt, VjpMatchesFullJacobianContraction) {
  const auto p = random_problem(4, 3, 5);
  BarrierObjective obj(p, soft_barrier());
  const Matrix xstar = matching::solve_mirror(obj, tight_solver()).x;

  Rng rng(5);
  Matrix upstream(3, 5);
  for (std::size_t i = 0; i < upstream.size(); ++i) {
    upstream[i] = rng.normal();
  }

  const auto jac = kkt_full_jacobians(obj, xstar);
  const auto vjp = kkt_vjp(obj, xstar, upstream);

  // dL/dT_s = sum_r upstream_r * dX_r/dT_s.
  for (std::size_t s = 0; s < upstream.size(); ++s) {
    double expect_t = 0.0;
    double expect_a = 0.0;
    for (std::size_t r = 0; r < upstream.size(); ++r) {
      expect_t += upstream[r] * jac.dx_dt(r, s);
      expect_a += upstream[r] * jac.dx_da(r, s);
    }
    EXPECT_NEAR(vjp.grad_t[s], expect_t, 1e-7);
    EXPECT_NEAR(vjp.grad_a[s], expect_a, 1e-7);
  }
}

TEST(Kkt, GradientsPointInDescentDirection) {
  // Sanity for the training loop: increasing a cluster's predicted time on
  // a task must (weakly) reduce that cluster's share of the task.
  const auto p = random_problem(6, 2, 3);
  BarrierObjective obj(p, soft_barrier());
  const Matrix xstar = matching::solve_mirror(obj, tight_solver()).x;
  const auto jac = kkt_full_jacobians(obj, xstar);
  const std::size_t n = 3;
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t k = i * n + j;
      EXPECT_LE(jac.dx_dt(k, k), 1e-9) << "dx_ij/dt_ij must be <= 0";
    }
  }
}

// ----------------------------------------------------------- zeroth order --

TEST(ZerothOrder, OptimalDeltaFormula) {
  // Theorem 3: Delta* = (2 sigma^2 / (beta^2 S))^{1/4}.
  EXPECT_NEAR(optimal_delta(1.0, 1.0, 2), 1.0, 1e-12);
  EXPECT_NEAR(optimal_delta(0.5, 2.0, 16),
              std::pow(2.0 * 0.25 / (4.0 * 16.0), 0.25), 1e-12);
  // More samples -> smaller optimal perturbation.
  EXPECT_LT(optimal_delta(1.0, 1.0, 64), optimal_delta(1.0, 1.0, 4));
}

TEST(ZerothOrder, RowGradientApproachesKktGradient) {
  // On the convex instance the forward-gradient estimate must agree with
  // the analytic KKT VJP as S grows (Algorithm 2 vs §3.3).
  const auto p = random_problem(7, 3, 4);
  const BarrierConfig bcfg = soft_barrier();
  BarrierObjective obj(p, bcfg);
  const Matrix xstar = matching::solve_mirror(obj, tight_solver()).x;

  Rng urng(8);
  Matrix upstream(3, 4);
  for (std::size_t i = 0; i < upstream.size(); ++i) {
    upstream[i] = urng.normal();
  }
  const auto vjp = kkt_vjp(obj, xstar, upstream);

  const auto solver = make_loose_solver(p.gamma, bcfg);
  ForwardGradientConfig fg;
  fg.samples = 300;
  fg.delta = 0.02;
  Rng rng(9);
  const std::size_t row = 1;
  const auto est = estimate_row_gradients(solver, p.times, p.reliability,
                                          xstar, row, upstream, fg, rng);

  double ref_norm = 0.0;
  double err = 0.0;
  for (std::size_t j = 0; j < 4; ++j) {
    ref_norm += vjp.grad_t(row, j) * vjp.grad_t(row, j);
    const double d = est.dt[j] - vjp.grad_t(row, j);
    err += d * d;
  }
  EXPECT_LT(std::sqrt(err), 0.4 * std::sqrt(ref_norm) + 2e-3);
}

TEST(ZerothOrder, VarianceShrinksWithSamples) {
  const auto p = random_problem(10, 2, 3);
  const BarrierConfig bcfg = soft_barrier();
  BarrierObjective obj(p, bcfg);
  const Matrix xstar = matching::solve_mirror(obj, tight_solver()).x;
  const Matrix upstream(2, 3, 1.0);
  const auto solver = make_loose_solver(p.gamma, bcfg);

  auto spread = [&](std::size_t samples) {
    // Spread of the first component across independent estimates.
    mfcp::RunningStats stats;
    for (std::uint64_t rep = 0; rep < 8; ++rep) {
      ForwardGradientConfig fg;
      fg.samples = samples;
      fg.delta = 0.05;
      Rng rng(100 + rep);
      const auto est = estimate_row_gradients(
          solver, p.times, p.reliability, xstar, 0, upstream, fg, rng);
      stats.add(est.dt[0]);
    }
    return stats.stddev();
  };
  EXPECT_LT(spread(64), spread(4) + 1e-9);
}

TEST(ZerothOrder, ParallelMatchesSerialExactly) {
  // Same seed, same samples: the pooled estimator must produce bitwise
  // identical gradients to the serial one.
  const auto p = random_problem(11, 3, 4);
  const BarrierConfig bcfg = soft_barrier();
  BarrierObjective obj(p, bcfg);
  const Matrix xstar = matching::solve_mirror(obj, tight_solver()).x;
  const Matrix upstream(3, 4, 0.5);
  const auto solver = make_loose_solver(p.gamma, bcfg);

  ForwardGradientConfig fg;
  fg.samples = 12;
  fg.delta = 0.05;
  Rng rng_a(42);
  const auto serial = estimate_row_gradients(solver, p.times, p.reliability,
                                             xstar, 0, upstream, fg, rng_a);
  ThreadPool pool(4);
  Rng rng_b(42);
  const auto parallel = estimate_row_gradients(
      solver, p.times, p.reliability, xstar, 0, upstream, fg, rng_b, &pool);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_EQ(serial.dt[j], parallel.dt[j]);
    EXPECT_EQ(serial.da[j], parallel.da[j]);
  }
}

TEST(ZerothOrder, FullGradientsMatchRowGradientsOnSingleRowUpstream) {
  // When only cluster i's predictions matter, the full-matrix estimator's
  // row i should agree in expectation with the row estimator. We check
  // both against the KKT reference rather than each other (different
  // sampling noise).
  const auto p = random_problem(12, 2, 3);
  const BarrierConfig bcfg = soft_barrier();
  BarrierObjective obj(p, bcfg);
  const Matrix xstar = matching::solve_mirror(obj, tight_solver()).x;
  Matrix upstream(2, 3, 0.0);
  upstream(0, 0) = 1.0;
  upstream(1, 2) = -0.5;
  const auto vjp = kkt_vjp(obj, xstar, upstream);
  const auto solver = make_loose_solver(p.gamma, bcfg);

  ForwardGradientConfig fg;
  fg.samples = 400;
  fg.delta = 0.02;
  Rng rng(13);
  const auto full = estimate_full_gradients(solver, p.times, p.reliability,
                                            xstar, upstream, fg, rng);
  double ref = 0.0;
  double err = 0.0;
  for (std::size_t k = 0; k < upstream.size(); ++k) {
    ref += vjp.grad_t[k] * vjp.grad_t[k];
    const double d = full.dt[k] - vjp.grad_t[k];
    err += d * d;
  }
  EXPECT_LT(std::sqrt(err), 0.4 * std::sqrt(ref) + 2e-3);
}


TEST(ZerothOrder, ScalarEstimatorRecoversSmoothGradient) {
  // L(T, A) = sum of squares: gradient 2T (row slice) recovered by the
  // scalar estimator up to Monte-Carlo noise.
  const ScalarLoss loss = [](const Matrix& t, const Matrix& a) {
    double acc = 0.0;
    for (std::size_t k = 0; k < t.size(); ++k) {
      acc += t[k] * t[k] + 0.5 * a[k] * a[k];
    }
    return acc;
  };
  const Matrix t(2, 3, 1.0);
  const Matrix a(2, 3, 0.5);
  ForwardGradientConfig fg;
  fg.samples = 4000;
  fg.delta = 1e-3;
  fg.delta_reliability = 1e-3;
  Rng rng(21);
  const auto est = estimate_scalar_row_gradients(loss, t, a, loss(t, a), 0,
                                                 fg, rng);
  for (std::size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(est.dt[j], 2.0, 0.25);
    EXPECT_NEAR(est.da[j], 0.5, 0.25);
  }
}

TEST(ZerothOrder, ScalarFullEstimatorMatchesRowOnSeparableLoss) {
  const ScalarLoss loss = [](const Matrix& t, const Matrix&) {
    double acc = 0.0;
    for (std::size_t k = 0; k < t.size(); ++k) {
      acc += 3.0 * t[k];
    }
    return acc;
  };
  const Matrix t(2, 2, 1.0);
  const Matrix a(2, 2, 0.5);
  ForwardGradientConfig fg;
  fg.samples = 4000;
  fg.delta = 1e-3;
  Rng rng(22);
  const auto full =
      estimate_scalar_full_gradients(loss, t, a, loss(t, a), fg, rng);
  for (std::size_t k = 0; k < t.size(); ++k) {
    EXPECT_NEAR(full.dt[k], 3.0, 0.2);
    EXPECT_NEAR(full.da[k], 0.0, 0.2);
  }
}

TEST(ZerothOrder, ScalarEstimatorSmoothsPiecewiseConstantLoss) {
  // A staircase loss (the rounding situation): the randomized-smoothing
  // gradient should still point uphill on average.
  const ScalarLoss loss = [](const Matrix& t, const Matrix&) {
    return t[0] > 1.0 ? 1.0 : 0.0;
  };
  Matrix t(1, 1, 1.0);  // sitting exactly at the step
  const Matrix a(1, 1, 0.5);
  ForwardGradientConfig fg;
  fg.samples = 2000;
  fg.delta = 0.5;  // perturbation spans the step
  Rng rng(23);
  const auto est = estimate_scalar_row_gradients(loss, t, a, loss(t, a), 0,
                                                 fg, rng);
  EXPECT_GT(est.dt[0], 0.2);  // positive smoothed slope at the step
}

TEST(ZerothOrder, ReliabilityDeltaDefaultsToDelta) {
  ForwardGradientConfig fg;
  fg.delta = 0.2;
  fg.delta_reliability = 0.0;
  EXPECT_DOUBLE_EQ(fg.reliability_delta(), 0.2);
  fg.delta_reliability = 0.05;
  EXPECT_DOUBLE_EQ(fg.reliability_delta(), 0.05);
}

TEST(ZerothOrder, RejectsBadConfig) {
  const auto p = random_problem(14, 2, 2);
  const Matrix x(2, 2, 0.5);
  const Matrix upstream(2, 2, 1.0);
  const auto solver = [](const Matrix& t, const Matrix&) { return t; };
  Rng rng(1);
  ForwardGradientConfig fg;
  fg.samples = 0;
  EXPECT_THROW(estimate_row_gradients(solver, p.times, p.reliability, x, 0,
                                      upstream, fg, rng),
               mfcp::ContractError);
  fg.samples = 4;
  fg.delta = 0.0;
  EXPECT_THROW(estimate_row_gradients(solver, p.times, p.reliability, x, 0,
                                      upstream, fg, rng),
               mfcp::ContractError);
  fg.delta = 0.1;
  EXPECT_THROW(estimate_row_gradients(solver, p.times, p.reliability, x, 9,
                                      upstream, fg, rng),
               mfcp::ContractError);
}

// Property sweep: KKT Jacobians vs solver FD across random instances.
class KktProperty : public ::testing::TestWithParam<int> {};

TEST_P(KktProperty, VjpMatchesFiniteDifferenceOfLoss) {
  // End-to-end check of the chain rule: L(T) = <G, X*(T, A)> must satisfy
  // dL/dT == kkt_vjp(..., G).grad_t, compared against FD of L directly.
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 104729 + 7);
  const std::size_t m = 2 + rng.uniform_index(2);
  const std::size_t n = 2 + rng.uniform_index(3);
  const auto p = random_problem(rng.next_u64(), m, n);
  const BarrierConfig bcfg = soft_barrier();
  BarrierObjective obj(p, bcfg);
  const Matrix xstar = matching::solve_mirror(obj, tight_solver()).x;

  Matrix upstream(m, n);
  for (std::size_t i = 0; i < upstream.size(); ++i) {
    upstream[i] = rng.normal();
  }
  const auto vjp = kkt_vjp(obj, xstar, upstream);
  const auto solver = make_solver(p.gamma, bcfg);

  const Matrix fd = fd_gradient(
      [&](const Matrix& t) {
        return dot(upstream, solver(t, p.reliability));
      },
      p.times, 1e-5);
  for (std::size_t k = 0; k < fd.size(); ++k) {
    EXPECT_NEAR(vjp.grad_t[k], fd[k], 5e-3) << "entry " << k;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, KktProperty,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace mfcp::diff
