// Tests for the neural-network module: layers, MLPs, losses, optimizers,
// initialization, and checkpoint round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "nn/linear.hpp"
#include "nn/loss.hpp"
#include "nn/mlp.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "support/check.hpp"

namespace mfcp::nn {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng,
                     double scale = 1.0) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng.normal(0.0, scale);
  }
  return m;
}

// ----------------------------------------------------------------- init --

TEST(Init, XavierUniformWithinBound) {
  Rng rng(1);
  const Matrix w = xavier_uniform(20, 30, 30, 20, rng);
  const double bound = std::sqrt(6.0 / 50.0);
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::abs(w[i]), bound);
  }
}

TEST(Init, HeNormalScaleRoughlyCorrect) {
  Rng rng(2);
  const Matrix w = he_normal(100, 100, 100, rng);
  double sq = 0.0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    sq += w[i] * w[i];
  }
  const double observed = std::sqrt(sq / static_cast<double>(w.size()));
  EXPECT_NEAR(observed, std::sqrt(2.0 / 100.0), 0.02);
}

TEST(Init, ZerosInitIsZero) {
  const Matrix z = zeros_init(3, 4);
  for (std::size_t i = 0; i < z.size(); ++i) {
    EXPECT_EQ(z[i], 0.0);
  }
}

// --------------------------------------------------------------- linear --

TEST(Linear, ForwardComputesAffineMap) {
  Matrix w{{1.0, 2.0}, {3.0, 4.0}};  // out=2, in=2
  Matrix b{{10.0, 20.0}};
  Linear lin(w, b);
  Matrix x{{1.0, 1.0}};
  Variable out = lin.forward(Variable(x, false));
  EXPECT_DOUBLE_EQ(out.value()(0, 0), 13.0);  // 1+2+10
  EXPECT_DOUBLE_EQ(out.value()(0, 1), 27.0);  // 3+4+20
}

TEST(Linear, RejectsWrongInputWidth) {
  Rng rng(3);
  Linear lin(4, 2, rng);
  EXPECT_THROW(lin.forward(Variable(Matrix(1, 3), false)), ContractError);
}

TEST(Linear, ExposesTwoParameters) {
  Rng rng(4);
  Linear lin(3, 5, rng);
  const auto params = lin.parameters();
  ASSERT_EQ(params.size(), 2u);
  EXPECT_EQ(params[0].rows(), 5u);
  EXPECT_EQ(params[0].cols(), 3u);
  EXPECT_EQ(params[1].rows(), 1u);
  EXPECT_EQ(params[1].cols(), 5u);
}

TEST(Linear, BiasShapeValidated) {
  EXPECT_THROW(Linear(Matrix(2, 3), Matrix(1, 3)), ContractError);
}

// ---------------------------------------------------------- activations --

TEST(Activations, NamesAndKinds) {
  ActivationLayer relu_layer(Activation::kRelu);
  EXPECT_EQ(relu_layer.name(), "ReLU");
  EXPECT_EQ(relu_layer.kind(), Activation::kRelu);
  EXPECT_TRUE(relu_layer.parameters().empty());
  EXPECT_EQ(ActivationLayer(Activation::kSoftplus).name(), "Softplus");
}

TEST(Activations, IdentityPassesThrough) {
  Matrix x{{-1.0, 2.0}};
  Variable out =
      apply_activation(Activation::kIdentity, Variable(x, false));
  EXPECT_TRUE(approx_equal(out.value(), x));
}

// ------------------------------------------------------------------ mlp --

TEST(Mlp, OutputShapeMatchesConfig) {
  Rng rng(5);
  MlpConfig cfg;
  cfg.input_dim = 7;
  cfg.hidden = {16, 8};
  cfg.output_dim = 1;
  Mlp mlp(cfg, rng);
  const Matrix out = mlp.predict(Matrix(4, 7, 0.5));
  EXPECT_EQ(out.rows(), 4u);
  EXPECT_EQ(out.cols(), 1u);
}

TEST(Mlp, ParameterCountFormula) {
  Rng rng(6);
  MlpConfig cfg;
  cfg.input_dim = 3;
  cfg.hidden = {5};
  cfg.output_dim = 2;
  Mlp mlp(cfg, rng);
  // (3*5 + 5) + (5*2 + 2) = 32.
  EXPECT_EQ(mlp.parameter_count(), 32u);
}

TEST(Mlp, SoftplusHeadIsPositive) {
  Rng rng(7);
  MlpConfig cfg;
  cfg.input_dim = 4;
  cfg.hidden = {8};
  cfg.output_activation = Activation::kSoftplus;
  Mlp mlp(cfg, rng);
  const Matrix out = mlp.predict(random_matrix(10, 4, rng, 3.0));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GT(out[i], 0.0);
  }
}

TEST(Mlp, SigmoidHeadInUnitInterval) {
  Rng rng(8);
  MlpConfig cfg;
  cfg.input_dim = 4;
  cfg.hidden = {8};
  cfg.output_activation = Activation::kSigmoid;
  Mlp mlp(cfg, rng);
  const Matrix out = mlp.predict(random_matrix(10, 4, rng, 3.0));
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_GT(out[i], 0.0);
    EXPECT_LT(out[i], 1.0);
  }
}

TEST(Mlp, LinearLayersEnumerated) {
  Rng rng(9);
  MlpConfig cfg;
  cfg.hidden = {8, 8};
  Mlp mlp(cfg, rng);
  EXPECT_EQ(mlp.linear_layers().size(), 3u);
}

TEST(Mlp, InvalidConfigThrows) {
  Rng rng(10);
  MlpConfig cfg;
  cfg.input_dim = 0;
  EXPECT_THROW(Mlp(cfg, rng), ContractError);
}

// ----------------------------------------------------------------- loss --

TEST(Loss, MseValueKnown) {
  Matrix a{{1.0, 2.0}};
  Matrix b{{3.0, 2.0}};
  EXPECT_DOUBLE_EQ(mse_value(a, b), 2.0);
  EXPECT_DOUBLE_EQ(mae_value(a, b), 1.0);
}

TEST(Loss, HuberQuadraticInside) {
  Matrix pred{{0.5}};
  Matrix target{{0.0}};
  Variable p(pred, true);
  auto l = huber(p, target, 1.0);
  EXPECT_NEAR(l.value()[0], 0.125, 1e-12);
  l.backward();
  EXPECT_NEAR(p.grad()[0], 0.5, 1e-12);
}

TEST(Loss, HuberLinearOutside) {
  Matrix pred{{3.0}};
  Matrix target{{0.0}};
  Variable p(pred, true);
  auto l = huber(p, target, 1.0);
  EXPECT_NEAR(l.value()[0], 2.5, 1e-12);  // 1*(3 - 0.5)
  l.backward();
  EXPECT_NEAR(p.grad()[0], 1.0, 1e-12);
}

// ------------------------------------------------------------ optimizer --

TEST(Sgd, SingleStepMovesAgainstGradient) {
  Variable w(Matrix{{1.0}}, true);
  Sgd opt({w}, 0.1);
  // loss = w^2, grad = 2w.
  auto loss = autograd::mul(w, w);
  autograd::sum_all(loss).backward();
  opt.step();
  EXPECT_NEAR(w.value()[0], 1.0 - 0.1 * 2.0, 1e-12);
}

TEST(Sgd, SkipsParametersWithoutGradient) {
  Variable w(Matrix{{1.0}}, true);
  Sgd opt({w}, 0.1);
  opt.step();  // no backward ran
  EXPECT_DOUBLE_EQ(w.value()[0], 1.0);
}

TEST(Sgd, MomentumAcceleratesRepeatedSteps) {
  auto run = [](double momentum) {
    Variable w(Matrix{{10.0}}, true);
    Sgd opt({w}, 0.05, momentum);
    for (int i = 0; i < 10; ++i) {
      opt.zero_grad();
      autograd::sum_all(autograd::mul(w, w)).backward();
      opt.step();
    }
    return w.value()[0];
  };
  EXPECT_LT(run(0.9), run(0.0));
}

TEST(Sgd, WeightDecayShrinksWeights) {
  Variable w(Matrix{{1.0}}, true);
  Sgd opt({w}, 0.1, 0.0, 0.5);
  opt.zero_grad();
  autograd::sum_all(autograd::scale(w, 0.0)).backward();  // zero gradient
  opt.step();
  EXPECT_NEAR(w.value()[0], 1.0 * (1.0 - 0.1 * 0.5), 1e-12);
}

TEST(Sgd, RejectsNonTrainableParameter) {
  Variable frozen(Matrix{{1.0}}, false);
  EXPECT_THROW(Sgd({frozen}, 0.1), ContractError);
}

TEST(Adam, ConvergesOnQuadratic) {
  Variable w(Matrix{{5.0}, {-3.0}}, true);
  Adam opt({w}, 0.1);
  for (int i = 0; i < 300; ++i) {
    opt.zero_grad();
    autograd::sum_all(autograd::mul(w, w)).backward();
    opt.step();
  }
  EXPECT_NEAR(w.value()[0], 0.0, 1e-3);
  EXPECT_NEAR(w.value()[1], 0.0, 1e-3);
}

TEST(Adam, FirstStepSizeIsLearningRate) {
  // With bias correction the first Adam step is ±lr regardless of gradient
  // magnitude.
  Variable w(Matrix{{1.0}}, true);
  Adam opt({w}, 0.01);
  opt.zero_grad();
  autograd::sum_all(autograd::scale(w, 100.0)).backward();
  opt.step();
  EXPECT_NEAR(w.value()[0], 1.0 - 0.01, 1e-6);
}

TEST(Optimizer, ZeroGradClearsAll) {
  Variable w(Matrix{{1.0}}, true);
  Adam opt({w}, 0.1);
  autograd::sum_all(autograd::mul(w, w)).backward();
  EXPECT_FALSE(w.grad().empty());
  opt.zero_grad();
  EXPECT_TRUE(w.grad().empty());
}

TEST(Training, MlpFitsSimpleFunction) {
  // Regression sanity: y = 2 x0 - x1 learned to low MSE.
  Rng rng(11);
  MlpConfig cfg;
  cfg.input_dim = 2;
  cfg.hidden = {16};
  Mlp mlp(cfg, rng);
  Adam opt(mlp.parameters(), 0.02);

  const Matrix x = random_matrix(64, 2, rng);
  Matrix y(64, 1);
  for (std::size_t i = 0; i < 64; ++i) {
    y(i, 0) = 2.0 * x(i, 0) - x(i, 1);
  }
  double last = 0.0;
  for (int epoch = 0; epoch < 400; ++epoch) {
    opt.zero_grad();
    auto out = mlp.forward(Variable(x, false));
    auto loss = mse(out, y);
    last = loss.value()[0];
    loss.backward();
    opt.step();
  }
  EXPECT_LT(last, 0.01);
}

// ------------------------------------------------------------ serialize --

TEST(Serialize, RoundTripPreservesPredictions) {
  Rng rng(12);
  MlpConfig cfg;
  cfg.input_dim = 5;
  cfg.hidden = {8, 4};
  Mlp a(cfg, rng);
  Mlp b(cfg, rng);  // different init
  const Matrix x = random_matrix(6, 5, rng);
  ASSERT_FALSE(approx_equal(a.predict(x), b.predict(x), 1e-9));

  std::stringstream buffer;
  save_mlp(buffer, a);
  load_mlp(buffer, b);
  EXPECT_TRUE(approx_equal(a.predict(x), b.predict(x), 1e-15));
}

TEST(Serialize, RejectsWrongMagic) {
  Rng rng(13);
  Mlp m(MlpConfig{}, rng);
  std::stringstream buffer("not-a-checkpoint 1\n");
  EXPECT_THROW(load_mlp(buffer, m), ContractError);
}

TEST(Serialize, RejectsArchitectureMismatch) {
  Rng rng(14);
  MlpConfig small;
  small.hidden = {4};
  MlpConfig big;
  big.hidden = {4, 4};
  Mlp a(small, rng);
  Mlp b(big, rng);
  std::stringstream buffer;
  save_mlp(buffer, a);
  EXPECT_THROW(load_mlp(buffer, b), ContractError);
}

// Property sweep over widths: forward shape and head ranges hold.
class MlpShapeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(MlpShapeTest, ForwardShapes) {
  const auto [batch, in, hidden] = GetParam();
  Rng rng(static_cast<std::uint64_t>(batch * 100 + in * 10 + hidden));
  MlpConfig cfg;
  cfg.input_dim = static_cast<std::size_t>(in);
  cfg.hidden = {static_cast<std::size_t>(hidden)};
  Mlp mlp(cfg, rng);
  const Matrix out = mlp.predict(Matrix(batch, in, 0.1));
  EXPECT_EQ(out.rows(), static_cast<std::size_t>(batch));
  EXPECT_EQ(out.cols(), 1u);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MlpShapeTest,
                         ::testing::Combine(::testing::Values(1, 3, 9),
                                            ::testing::Values(2, 8),
                                            ::testing::Values(4, 16)));

}  // namespace
}  // namespace mfcp::nn
