// Gradient-correctness tests for the autograd engine: every op is checked
// against central finite differences, plus graph-mechanics tests (seeded
// backward, accumulation, zeroing, diamond-shaped graphs).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "autograd/ops.hpp"
#include "autograd/tape.hpp"
#include "linalg/vector_ops.hpp"
#include "support/check.hpp"
#include "support/rng.hpp"

namespace mfcp::autograd {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, Rng& rng,
                     double scale = 1.0) {
  Matrix m(r, c);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng.normal(0.0, scale);
  }
  return m;
}

/// Checks d(scalar fn)/d(input) against central differences at `at`.
/// `build` maps a leaf Variable to a 1x1 output Variable.
void expect_gradient_matches_fd(
    const std::function<Variable(const Variable&)>& build, const Matrix& at,
    double tol = 1e-6, double h = 1e-6) {
  Variable leaf(at, /*requires_grad=*/true);
  Variable out = build(leaf);
  ASSERT_EQ(out.value().size(), 1u) << "harness expects scalar outputs";
  out.backward();
  const Matrix& analytic = leaf.grad();
  ASSERT_TRUE(analytic.same_shape(at));

  Matrix point = at;
  for (std::size_t i = 0; i < at.size(); ++i) {
    const double saved = point[i];
    point[i] = saved + h;
    const double fp = build(Variable(point, false)).value()[0];
    point[i] = saved - h;
    const double fm = build(Variable(point, false)).value()[0];
    point[i] = saved;
    const double fd = (fp - fm) / (2.0 * h);
    EXPECT_NEAR(analytic[i], fd, tol) << "component " << i;
  }
}

TEST(Autograd, AddGradient) {
  Rng rng(1);
  const Matrix a = random_matrix(3, 2, rng);
  const Matrix b = random_matrix(3, 2, rng);
  expect_gradient_matches_fd(
      [&b](const Variable& x) {
        return sum_all(add(x, Variable(b, false)));
      },
      a);
}

TEST(Autograd, SubGradientBothSides) {
  Rng rng(2);
  const Matrix a = random_matrix(2, 2, rng);
  const Matrix b = random_matrix(2, 2, rng);
  expect_gradient_matches_fd(
      [&b](const Variable& x) {
        return sum_all(sub(x, Variable(b, false)));
      },
      a);
  expect_gradient_matches_fd(
      [&a](const Variable& x) {
        return sum_all(sub(Variable(a, false), x));
      },
      b);
}

TEST(Autograd, MulGradient) {
  Rng rng(3);
  const Matrix a = random_matrix(3, 3, rng);
  const Matrix b = random_matrix(3, 3, rng);
  expect_gradient_matches_fd(
      [&b](const Variable& x) {
        return sum_all(mul(x, Variable(b, false)));
      },
      a);
}

TEST(Autograd, ScaleGradient) {
  Rng rng(4);
  const Matrix a = random_matrix(2, 4, rng);
  expect_gradient_matches_fd(
      [](const Variable& x) { return sum_all(scale(x, -2.5)); }, a);
}

TEST(Autograd, MatmulGradientLeft) {
  Rng rng(5);
  const Matrix a = random_matrix(3, 4, rng);
  const Matrix b = random_matrix(4, 2, rng);
  expect_gradient_matches_fd(
      [&b](const Variable& x) {
        return sum_all(matmul(x, Variable(b, false)));
      },
      a, 1e-5);
}

TEST(Autograd, MatmulGradientRight) {
  Rng rng(6);
  const Matrix a = random_matrix(3, 4, rng);
  const Matrix b = random_matrix(4, 2, rng);
  expect_gradient_matches_fd(
      [&a](const Variable& x) {
        return sum_all(matmul(Variable(a, false), x));
      },
      b, 1e-5);
}

TEST(Autograd, TransposeGradient) {
  Rng rng(7);
  const Matrix a = random_matrix(2, 5, rng);
  const Matrix w = random_matrix(2, 5, rng);
  expect_gradient_matches_fd(
      [&w](const Variable& x) {
        return sum_all(mul(transpose(x), Variable(w.transposed(), false)));
      },
      a);
}

TEST(Autograd, AddRowBroadcastGradient) {
  Rng rng(8);
  const Matrix a = random_matrix(4, 3, rng);
  const Matrix bias = random_matrix(1, 3, rng);
  // gradient w.r.t. the broadcast bias: sums over rows.
  expect_gradient_matches_fd(
      [&a](const Variable& b) {
        Variable act(a, false);
        return sum_all(mul(add_row_broadcast(act, b),
                           add_row_broadcast(act, b)));
      },
      bias, 1e-5);
}

TEST(Autograd, ReluGradient) {
  // Keep values away from the kink at 0 for a clean FD comparison.
  Matrix a{{-1.5, 2.0}, {0.7, -0.3}};
  expect_gradient_matches_fd(
      [](const Variable& x) { return sum_all(mul(relu(x), relu(x))); }, a);
}

TEST(Autograd, TanhGradient) {
  Rng rng(9);
  const Matrix a = random_matrix(3, 3, rng, 0.8);
  expect_gradient_matches_fd(
      [](const Variable& x) { return sum_all(tanh_op(x)); }, a, 1e-6);
}

TEST(Autograd, SigmoidGradient) {
  Rng rng(10);
  const Matrix a = random_matrix(2, 4, rng, 2.0);
  expect_gradient_matches_fd(
      [](const Variable& x) { return sum_all(sigmoid(x)); }, a, 1e-6);
}

TEST(Autograd, SigmoidStableForLargeInputs) {
  Matrix a{{500.0, -500.0}};
  Variable v(a, true);
  Variable s = sigmoid(v);
  EXPECT_NEAR(s.value()[0], 1.0, 1e-12);
  EXPECT_NEAR(s.value()[1], 0.0, 1e-12);
  sum_all(s).backward();
  EXPECT_TRUE(std::isfinite(v.grad()[0]));
}

TEST(Autograd, SoftplusGradient) {
  Rng rng(11);
  const Matrix a = random_matrix(2, 3, rng, 3.0);
  expect_gradient_matches_fd(
      [](const Variable& x) { return sum_all(softplus(x)); }, a, 1e-6);
}

TEST(Autograd, SoftplusStableForExtremeInputs) {
  Matrix a{{800.0, -800.0}};
  Variable v(a, true);
  Variable s = softplus(v);
  EXPECT_NEAR(s.value()[0], 800.0, 1e-9);
  EXPECT_NEAR(s.value()[1], 0.0, 1e-9);
  sum_all(s).backward();
  EXPECT_NEAR(v.grad()[0], 1.0, 1e-9);
  EXPECT_NEAR(v.grad()[1], 0.0, 1e-9);
}

TEST(Autograd, LogSumExpValueBoundsMax) {
  Matrix x{{1.0, 3.0, 2.0}};
  for (double beta : {1.0, 10.0, 100.0}) {
    Variable v(x, false);
    const double lse = logsumexp(v, beta).value()[0];
    EXPECT_GE(lse, 3.0);
    EXPECT_LE(lse, 3.0 + std::log(3.0) / beta + 1e-12);
  }
}

TEST(Autograd, LogSumExpGradient) {
  Rng rng(30);
  const Matrix a = random_matrix(2, 3, rng);
  expect_gradient_matches_fd(
      [](const Variable& x) { return logsumexp(x, 4.0); }, a, 1e-6);
}

TEST(Autograd, LogSumExpGradientSumsToOne) {
  // The gradient is a softmax: components sum to 1.
  Rng rng(31);
  Variable v(random_matrix(3, 2, rng), true);
  logsumexp(v, 2.5).backward();
  double total = 0.0;
  for (std::size_t i = 0; i < v.grad().size(); ++i) {
    EXPECT_GT(v.grad()[i], 0.0);
    total += v.grad()[i];
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Autograd, MeanAllGradient) {
  Rng rng(12);
  const Matrix a = random_matrix(4, 4, rng);
  expect_gradient_matches_fd(
      [](const Variable& x) { return mean_all(mul(x, x)); }, a, 1e-5);
}

TEST(Autograd, MseLossGradient) {
  Rng rng(13);
  const Matrix pred = random_matrix(5, 1, rng);
  const Matrix target = random_matrix(5, 1, rng);
  expect_gradient_matches_fd(
      [&target](const Variable& x) { return mse_loss(x, target); }, pred,
      1e-6);
}

TEST(Autograd, MseOfExactPredictionIsZero) {
  Matrix t{{1.0}, {2.0}};
  Variable p(t, true);
  auto loss = mse_loss(p, t);
  EXPECT_DOUBLE_EQ(loss.value()[0], 0.0);
}

TEST(Autograd, ChainedCompositeGradient) {
  // A small MLP-shaped composite: sum(tanh(x W^T + b) v).
  Rng rng(14);
  const Matrix x = random_matrix(3, 4, rng);
  const Matrix w = random_matrix(2, 4, rng);
  const Matrix b = random_matrix(1, 2, rng);
  const Matrix v = random_matrix(3, 2, rng);
  expect_gradient_matches_fd(
      [&](const Variable& wx) {
        Variable xin(x, false);
        Variable bias(b, false);
        Variable mixer(v, false);
        auto h = tanh_op(add_row_broadcast(matmul(xin, transpose(wx)), bias));
        return sum_all(mul(h, mixer));
      },
      w, 1e-5);
}

TEST(Autograd, DiamondGraphAccumulatesBothPaths) {
  // y = sum(x*x + x): grad = 2x + 1 — requires summing both branches.
  Matrix a{{1.0, -2.0}};
  Variable x(a, true);
  auto y = sum_all(add(mul(x, x), x));
  y.backward();
  EXPECT_NEAR(x.grad()[0], 3.0, 1e-12);
  EXPECT_NEAR(x.grad()[1], -3.0, 1e-12);
}

TEST(Autograd, SeededBackwardInjectsUpstreamGradient) {
  // out = 2x; backward with seed g gives dL/dx = 2g — the mechanism MFCP
  // uses to inject the matching layer's dL/dt̂ (Eq. 7).
  Matrix a{{1.0}, {2.0}, {3.0}};
  Variable x(a, true);
  auto out = scale(x, 2.0);
  Matrix seed{{0.5}, {-1.0}, {2.0}};
  out.backward(seed);
  EXPECT_NEAR(x.grad()[0], 1.0, 1e-12);
  EXPECT_NEAR(x.grad()[1], -2.0, 1e-12);
  EXPECT_NEAR(x.grad()[2], 4.0, 1e-12);
}

TEST(Autograd, SeedShapeMismatchThrows) {
  Variable x(Matrix(2, 2), true);
  auto out = scale(x, 1.0);
  EXPECT_THROW(out.backward(Matrix(3, 1)), ContractError);
}

TEST(Autograd, SeedlessBackwardRequiresScalar) {
  Variable x(Matrix(2, 2), true);
  auto out = scale(x, 1.0);
  EXPECT_THROW(out.backward(), ContractError);
}

TEST(Autograd, GradientsAccumulateAcrossBackwardCalls) {
  Matrix a{{1.0}};
  Variable x(a, true);
  auto y1 = scale(x, 3.0);
  y1.backward();
  auto y2 = scale(x, 4.0);
  y2.backward();
  EXPECT_NEAR(x.grad()[0], 7.0, 1e-12);
}

TEST(Autograd, ZeroGradClearsLeaf) {
  Variable x(Matrix{{2.0}}, true);
  scale(x, 5.0).backward();
  EXPECT_FALSE(x.grad().empty());
  x.zero_grad();
  EXPECT_TRUE(x.grad().empty());
}

TEST(Autograd, ZeroGradGraphClearsInteriorNodes) {
  Variable x(Matrix{{2.0}}, true);
  auto mid = scale(x, 2.0);
  auto out = sum_all(mid);
  out.backward();
  EXPECT_FALSE(mid.grad().empty());
  zero_grad_graph(out);
  EXPECT_TRUE(mid.grad().empty());
  EXPECT_TRUE(x.grad().empty());
}

TEST(Autograd, MutableValueOnlyForLeaves) {
  Variable x(Matrix{{1.0}}, true);
  EXPECT_NO_THROW(static_cast<void>(x.mutable_value()));
  auto y = scale(x, 2.0);
  EXPECT_THROW(static_cast<void>(y.mutable_value()), ContractError);
}

TEST(Autograd, TopologicalOrderVisitsParentsFirst) {
  Variable x(Matrix{{1.0}}, true);
  auto a = scale(x, 2.0);
  auto b = mul(a, a);
  const auto order = topological_order(b.node());
  // x before a before b.
  std::size_t ix = 0;
  std::size_t ia = 0;
  std::size_t ib = 0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    if (order[i] == x.node()) ix = i;
    if (order[i] == a.node()) ia = i;
    if (order[i] == b.node()) ib = i;
  }
  EXPECT_LT(ix, ia);
  EXPECT_LT(ia, ib);
}

// Property sweep: random composite graphs validated against FD.
class AutogradPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AutogradPropertyTest, RandomMlpLikeGraphGradient) {
  Rng rng(static_cast<std::uint64_t>(GetParam()) * 2654435761ULL + 99);
  const std::size_t batch = 1 + rng.uniform_index(4);
  const std::size_t in = 1 + rng.uniform_index(5);
  const std::size_t hidden = 1 + rng.uniform_index(5);
  const Matrix x = random_matrix(batch, in, rng);
  const Matrix w1 = random_matrix(hidden, in, rng, 0.7);
  const Matrix b1 = random_matrix(1, hidden, rng, 0.2);
  const Matrix w2 = random_matrix(1, hidden, rng, 0.7);
  expect_gradient_matches_fd(
      [&](const Variable& wx) {
        Variable xin(x, false);
        Variable bias(b1, false);
        Variable head(w2, false);
        auto h = tanh_op(add_row_broadcast(matmul(xin, transpose(wx)), bias));
        return sum_all(matmul(h, transpose(head)));
      },
      w1, 2e-5);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, AutogradPropertyTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace mfcp::autograd
