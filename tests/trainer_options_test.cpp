// Coverage of the trainer/evaluation configuration matrix: every
// documented knob must produce a working training run with finite losses
// and a valid evaluation, including the paper-faithful settings that our
// defaults deviate from (bare relaxation, per-cluster row-swap, relaxed
// FG surrogate).
#include <gtest/gtest.h>

#include <cmath>

#include "mfcp/experiment.hpp"
#include "mfcp/trainer_mfcp_ad.hpp"
#include "mfcp/trainer_mfcp_fg.hpp"
#include "support/check.hpp"

namespace mfcp::core {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.num_clusters = 3;
  cfg.round_tasks = 4;
  cfg.train_tasks = 40;
  cfg.test_tasks = 20;
  cfg.test_rounds = 4;
  cfg.gamma = 0.7;
  cfg.predictor.hidden = {4};
  cfg.tsm.epochs = 60;
  cfg.mfcp.epochs = 3;
  cfg.mfcp.rounds_per_step = 2;
  cfg.mfcp.pretrain_epochs = 60;
  cfg.mfcp.forward_gradient.samples = 3;
  cfg.mfcp.solver.max_iterations = 150;
  cfg.eval.solver.max_iterations = 300;
  return cfg;
}

MfcpConfig trainer_config(const ExperimentConfig& cfg) {
  MfcpConfig m = cfg.mfcp;
  m.round_tasks = cfg.round_tasks;
  m.gamma = cfg.gamma;
  return m;
}

void expect_finite_losses(const MfcpTrainResult& result, std::size_t epochs) {
  ASSERT_EQ(result.loss_history.size(), epochs);
  for (double loss : result.loss_history) {
    EXPECT_TRUE(std::isfinite(loss));
  }
}

TEST(TrainerOptions, AdPerClusterRowSwapMode) {
  const auto cfg = tiny_config();
  const auto ctx = make_context(cfg);
  Rng rng(1);
  PlatformPredictor pred(cfg.num_clusters, cfg.predictor, rng);
  MfcpConfig m = trainer_config(cfg);
  m.joint_prediction = false;  // Algorithm 2 line 3 faithful mode
  expect_finite_losses(train_mfcp_ad(pred, ctx.train, m), m.epochs);
}

TEST(TrainerOptions, AdWithoutEntropyRunsButWarnsViaZeroGradients) {
  // Paper-faithful bare relaxation: training runs; gradients are mostly
  // zero at vertex solutions, so predictions barely move.
  const auto cfg = tiny_config();
  const auto ctx = make_context(cfg);
  Rng rng(2);
  PlatformPredictor pred(cfg.num_clusters, cfg.predictor, rng);
  MfcpConfig m = trainer_config(cfg);
  m.entropy_tau = 0.0;
  m.anchor_weight = 0.0;
  Matrix features(3, cfg.predictor.feature_dim, 0.3);
  const Matrix before = pred.predict_time_matrix(features);
  // Pretraining already happened inside train_mfcp_ad; compare around the
  // decision-focused phase only.
  m.pretrain = true;
  expect_finite_losses(train_mfcp_ad(pred, ctx.train, m), m.epochs);
  const Matrix after = pred.predict_time_matrix(features);
  EXPECT_EQ(before.rows(), after.rows());
}

TEST(TrainerOptions, AdWithoutAnchor) {
  const auto cfg = tiny_config();
  const auto ctx = make_context(cfg);
  Rng rng(3);
  PlatformPredictor pred(cfg.num_clusters, cfg.predictor, rng);
  MfcpConfig m = trainer_config(cfg);
  m.anchor_weight = 0.0;  // the paper's pure regret objective
  expect_finite_losses(train_mfcp_ad(pred, ctx.train, m), m.epochs);
}

TEST(TrainerOptions, FgRelaxedSurrogateMode) {
  const auto cfg = tiny_config();
  const auto ctx = make_context(cfg);
  Rng rng(4);
  PlatformPredictor pred(cfg.num_clusters, cfg.predictor, rng);
  MfcpConfig m = trainer_config(cfg);
  m.fg_discrete_loss = false;  // literal Algorithm-2 estimator
  expect_finite_losses(train_mfcp_fg(pred, ctx.train, m), m.epochs);
}

TEST(TrainerOptions, FgPerClusterDiscreteLoss) {
  const auto cfg = tiny_config();
  const auto ctx = make_context(cfg);
  Rng rng(5);
  PlatformPredictor pred(cfg.num_clusters, cfg.predictor, rng);
  MfcpConfig m = trainer_config(cfg);
  m.joint_prediction = false;
  expect_finite_losses(train_mfcp_fg(pred, ctx.train, m), m.epochs);
}

TEST(TrainerOptions, FgWithoutSeedClipping) {
  const auto cfg = tiny_config();
  const auto ctx = make_context(cfg);
  Rng rng(6);
  PlatformPredictor pred(cfg.num_clusters, cfg.predictor, rng);
  MfcpConfig m = trainer_config(cfg);
  m.seed_clip_norm = 0.0;  // disabled
  expect_finite_losses(train_mfcp_fg(pred, ctx.train, m), m.epochs);
}

TEST(TrainerOptions, SingleRoundPerStep) {
  const auto cfg = tiny_config();
  const auto ctx = make_context(cfg);
  Rng rng(7);
  PlatformPredictor pred(cfg.num_clusters, cfg.predictor, rng);
  MfcpConfig m = trainer_config(cfg);
  m.rounds_per_step = 1;
  expect_finite_losses(train_mfcp_ad(pred, ctx.train, m), m.epochs);
}

TEST(TrainerOptions, RejectsZeroRoundsPerStep) {
  const auto cfg = tiny_config();
  const auto ctx = make_context(cfg);
  Rng rng(8);
  PlatformPredictor pred(cfg.num_clusters, cfg.predictor, rng);
  MfcpConfig m = trainer_config(cfg);
  m.rounds_per_step = 0;
  EXPECT_THROW(train_mfcp_ad(pred, ctx.train, m), ContractError);
  EXPECT_THROW(train_mfcp_fg(pred, ctx.train, m), ContractError);
}

TEST(EvaluationOptions, LinearCostDeploymentConcentrates) {
  // The ablation-(1) deployment (linear total-time cost) has no
  // load-balancing pressure: deployed utilization must not exceed the
  // standard deployment's on average.
  const auto cfg = tiny_config();
  const auto ctx = make_context(cfg);
  const auto predict = [&](const Matrix& features) {
    // Oracle-ish constant predictions suffice for this structural check.
    return std::make_pair(Matrix(cfg.num_clusters, features.rows(), 1.0),
                          Matrix(cfg.num_clusters, features.rows(), 0.9));
  };
  auto linear_cfg = cfg;
  linear_cfg.eval.linear_cost = true;
  const auto standard = evaluate_rule(predict, ctx, cfg);
  const auto linear = evaluate_rule(predict, ctx, linear_cfg);
  EXPECT_LE(linear.utilization().mean(),
            standard.utilization().mean() + 1e-9);
}

TEST(EvaluationOptions, EntropyFreeDeploymentWorks) {
  auto cfg = tiny_config();
  cfg.eval.entropy_tau = 0.0;
  const auto ctx = make_context(cfg);
  const auto result = run_method(Method::kTam, ctx, cfg);
  EXPECT_EQ(result.metrics.rounds(), cfg.test_rounds);
}

TEST(EvaluationOptions, LocalSearchPolishNeverHurtsPredictedMakespan) {
  auto cfg = tiny_config();
  auto polished_cfg = cfg;
  polished_cfg.eval.local_search = true;
  const auto ctx = make_context(cfg);
  const auto plain = run_method(Method::kTam, ctx, cfg);
  const auto polished = run_method(Method::kTam, ctx, polished_cfg);
  // Both must complete; regret ordering is environment-dependent, but the
  // run itself must be valid.
  EXPECT_EQ(plain.metrics.rounds(), polished.metrics.rounds());
}

}  // namespace
}  // namespace mfcp::core
