// Tests for the admission-control subsystem: smoothed sensors on the
// simulated clock, the shared Retry-After replenish formula, per-client
// token buckets (shares, bursts, LRU eviction), the Ratekeeper's AIMD
// law with hysteresis, the key=value SLO config parser, and the JSONL
// alert-log transitions.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "control/ratekeeper.hpp"
#include "control/smoothed.hpp"
#include "control/token_bucket.hpp"
#include "obs/sinks.hpp"
#include "obs/slo.hpp"

namespace mfcp::control {
namespace {

// ------------------------------------------------------------ smoothed --

TEST(SmoothedSignal, FirstSamplePinsTheFilter) {
  SmoothedSignal s(0.1);
  EXPECT_FALSE(s.seen());
  EXPECT_EQ(s.value(), 0.0);
  s.observe(1.0, 5.0);
  EXPECT_TRUE(s.seen());
  EXPECT_EQ(s.value(), 5.0);  // no warm-up lag from an implicit zero
  EXPECT_EQ(s.raw(), 5.0);
}

TEST(SmoothedSignal, ConvergesTowardSamplesWithTimeConstantAlpha) {
  SmoothedSignal s(0.1);
  s.observe(0.0, 0.0);
  // One sample a full time constant later moves 1 - 1/e of the gap.
  s.observe(0.1, 1.0);
  EXPECT_NEAR(s.value(), 1.0 - std::exp(-1.0), 1e-12);
  // Many samples settle onto the level.
  for (int k = 2; k < 100; ++k) {
    s.observe(0.1 * k, 1.0);
  }
  EXPECT_NEAR(s.value(), 1.0, 1e-6);
}

TEST(SmoothedSignal, OutOfOrderTimestampUpdatesRawOnly) {
  SmoothedSignal s(0.1);
  s.observe(1.0, 2.0);
  const double before = s.value();
  s.observe(0.5, 100.0);  // clock went backwards: dt clamps to zero
  EXPECT_EQ(s.value(), before);
  EXPECT_EQ(s.raw(), 100.0);
}

TEST(SmoothedRate, DecaysTowardZeroWithoutEvents) {
  SmoothedRate r(0.1);
  r.reset(0.0);
  for (int k = 1; k <= 50; ++k) {
    r.add(0.01 * k, 1.0);  // 100 events/hour for half an hour
  }
  const double active = r.rate_per_hour(0.5);
  EXPECT_GT(active, 50.0);
  // A long quiet stretch decays the estimate instead of freezing it.
  EXPECT_LT(r.rate_per_hour(1.5), 1e-3 * active);
}

TEST(SmoothedRate, SameInstantEventsFoldIntoTheNextAdvance) {
  // Three separate events stamped at the same instant must rate the same
  // as one lumped event once time advances (no infinite spot rates).
  SmoothedRate split(0.1);
  split.reset(0.0);
  split.add(0.1, 1.0);
  split.add(0.1, 1.0);  // dt == 0: accumulates
  split.add(0.1, 1.0);  // dt == 0: accumulates
  split.add(0.2, 1.0);  // rated as 3 events over [0.1, 0.2]
  SmoothedRate lumped(0.1);
  lumped.reset(0.0);
  lumped.add(0.1, 1.0);
  lumped.add(0.2, 3.0);
  EXPECT_DOUBLE_EQ(split.rate_per_hour(0.2), lumped.rate_per_hour(0.2));
}

// --------------------------------------------------- replenish_seconds --

TEST(ReplenishSeconds, MonotoneInDeficitWithFloorAndCap) {
  const double floor = 1.0;
  double prev = 0.0;
  for (double deficit = 0.5; deficit <= 64.0; deficit *= 2.0) {
    const double s = replenish_seconds(deficit, 2.0, floor);
    EXPECT_GE(s, floor);
    EXPECT_LE(s, 3600.0);
    EXPECT_GE(s, prev);  // more deficit never shortens the wait
    prev = s;
  }
  EXPECT_DOUBLE_EQ(replenish_seconds(10.0, 2.0, floor), 5.0);
  // Tiny deficits floor instead of advising sub-second hammering.
  EXPECT_DOUBLE_EQ(replenish_seconds(0.1, 2.0, floor), floor);
  // Huge deficits cap at an hour instead of advising "come back never".
  EXPECT_DOUBLE_EQ(replenish_seconds(1e9, 2.0, floor), 3600.0);
}

TEST(ReplenishSeconds, ZeroRateMeansCapNotInfinity) {
  EXPECT_DOUBLE_EQ(replenish_seconds(1.0, 0.0, 1.0), 3600.0);
  EXPECT_DOUBLE_EQ(replenish_seconds(1.0, -2.0, 1.0), 3600.0);
}

// ------------------------------------------------------- token buckets --

TEST(TokenBucketTable, EmptyTableHasNoState) {
  TokenBucketTable table;
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(table.admitted_total(), 0u);
  EXPECT_EQ(table.throttled_total(), 0u);
  EXPECT_EQ(table.tokens_total(), 0.0);
  EXPECT_TRUE(table.snapshot().empty());
}

TEST(TokenBucketTable, SingleClientGetsTheFullGlobalRate) {
  TokenBucketTable table;
  table.set_global_rate(100.0, 0.0);
  const AdmitDecision d = table.try_admit("alice", 0.0);
  EXPECT_TRUE(d.admitted);
  EXPECT_DOUBLE_EQ(d.rate_per_hour, 100.0);  // sole active client
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.admitted_total(), 1u);
}

TEST(TokenBucketTable, EmptyClientMapsToTheAnonymousBucket) {
  TokenBucketTable table;
  table.set_global_rate(100.0, 0.0);
  EXPECT_TRUE(table.try_admit("", 0.0).admitted);
  const auto snap = table.snapshot();
  ASSERT_EQ(snap.size(), 1u);
  EXPECT_EQ(snap[0].client, std::string(kAnonymousClient));
}

TEST(TokenBucketTable, WeightsDivideTheGlobalRate) {
  TokenBucketTable table;
  table.set_global_rate(100.0, 0.0);
  table.set_weight("heavy", 3.0);
  // Touch both so both are active, then read the share on a second touch.
  table.try_admit("light", 0.0);
  table.try_admit("heavy", 0.0);
  const AdmitDecision light = table.try_admit("light", 0.001);
  const AdmitDecision heavy = table.try_admit("heavy", 0.001);
  EXPECT_DOUBLE_EQ(light.rate_per_hour, 25.0);
  EXPECT_DOUBLE_EQ(heavy.rate_per_hour, 75.0);
}

TEST(TokenBucketTable, ThrottlesOnceTheBurstIsSpentAndRefillsOverTime) {
  TokenBucketConfig cfg;
  cfg.min_burst_tokens = 2.0;
  cfg.burst_hours = 0.0001;  // burst floor dominates: capacity == 2
  TokenBucketTable table(cfg);
  table.set_global_rate(10.0, 0.0);  // 10 tokens/hour
  EXPECT_TRUE(table.try_admit("c", 0.0).admitted);
  EXPECT_TRUE(table.try_admit("c", 0.0).admitted);
  const AdmitDecision dry = table.try_admit("c", 0.0);
  EXPECT_FALSE(dry.admitted);
  EXPECT_GT(dry.retry_after_hours, 0.0);
  EXPECT_EQ(table.throttled_total(), 1u);
  // The advised retry time is exactly when one token is back.
  EXPECT_TRUE(table.try_admit("c", dry.retry_after_hours + 1e-9).admitted);
}

TEST(TokenBucketTable, RetryAfterGrowsWithTheDeficit) {
  TokenBucketConfig cfg;
  cfg.min_burst_tokens = 2.0;
  cfg.burst_hours = 0.0001;
  TokenBucketTable table(cfg);
  table.set_global_rate(10.0, 0.0);
  table.try_admit("c", 0.0);
  table.try_admit("c", 0.0);
  const AdmitDecision first = table.try_admit("c", 0.0);
  ASSERT_FALSE(first.admitted);
  // A moment later some tokens are back: the deficit shrank, so the
  // advised wait must shrink with it (monotone in the deficit).
  const AdmitDecision later =
      table.try_admit("c", first.retry_after_hours * 0.5);
  ASSERT_FALSE(later.admitted);
  EXPECT_LT(later.retry_after_hours, first.retry_after_hours);
}

TEST(TokenBucketTable, LruEvictionUnderClientChurn) {
  TokenBucketConfig cfg;
  cfg.max_clients = 4;
  TokenBucketTable table(cfg);
  table.set_global_rate(1000.0, 0.0);
  for (int k = 0; k < 10; ++k) {
    table.try_admit("client-" + std::to_string(k), 0.01 * k);
  }
  EXPECT_EQ(table.size(), 4u);
  EXPECT_EQ(table.evicted_total(), 6u);
  const auto snap = table.snapshot();
  ASSERT_EQ(snap.size(), 4u);
  // The four most recently seen clients survive, name-sorted.
  EXPECT_EQ(snap[0].client, "client-6");
  EXPECT_EQ(snap[3].client, "client-9");
  // A returning evicted client is re-admitted with a fresh bucket —
  // eviction forgets debt, it never manufactures throttling.
  EXPECT_TRUE(table.try_admit("client-0", 0.2).admitted);
}

// ---------------------------------------------------------- ratekeeper --

RatekeeperSignals calm_at(double now) {
  RatekeeperSignals s;
  s.now_hours = now;
  s.queue_depth = 0;
  s.queue_capacity = 100;
  s.batch = 4;
  return s;
}

TEST(Ratekeeper, InitialRateIsClampedIntoRange) {
  RatekeeperConfig cfg;
  cfg.initial_rate_per_hour = 1e9;
  cfg.max_rate_per_hour = 500.0;
  Ratekeeper rk(cfg);
  EXPECT_DOUBLE_EQ(rk.status().rate_per_hour, 500.0);
}

TEST(Ratekeeper, MultiplicativeDecreaseUnderQueuePressure) {
  RatekeeperConfig cfg;
  cfg.initial_rate_per_hour = 100.0;
  Ratekeeper rk(cfg);
  RatekeeperSignals s = calm_at(0.0);
  s.queue_depth = 100;  // full queue: pressure 1/0.75 > 1 from tick one
  const double r1 = rk.tick(s);
  EXPECT_DOUBLE_EQ(r1, 100.0 * cfg.decrease_factor);
  s.now_hours = 0.1;
  const double r2 = rk.tick(s);
  EXPECT_LT(r2, r1);
  const RatekeeperStatus st = rk.status();
  EXPECT_EQ(st.limiting, LimitingSignal::kQueueDepth);
  EXPECT_EQ(st.decreases, 2u);
  // Sustained pressure bottoms out at the clamp, never at zero.
  for (int k = 0; k < 200; ++k) {
    s.now_hours += 0.1;
    rk.tick(s);
  }
  EXPECT_DOUBLE_EQ(rk.status().rate_per_hour, cfg.min_rate_per_hour);
}

TEST(Ratekeeper, DeadBandHoldsTheRateWithoutFlapping) {
  RatekeeperConfig cfg;
  cfg.initial_rate_per_hour = 100.0;
  Ratekeeper rk(cfg);
  RatekeeperSignals s = calm_at(0.0);
  // Queue fraction 0.675 of capacity -> pressure 0.9: above release
  // (0.7), below trip (1.0). The controller must hold, not oscillate.
  s.queue_depth = 68;
  for (int k = 0; k < 50; ++k) {
    s.now_hours = 0.1 * k;
    EXPECT_DOUBLE_EQ(rk.tick(s), 100.0);
  }
  const RatekeeperStatus st = rk.status();
  EXPECT_EQ(st.decreases, 0u);
  EXPECT_EQ(st.recoveries, 0u);
  EXPECT_EQ(st.ticks, 50u);
}

TEST(Ratekeeper, AdditiveRecoveryNeedsSustainedCalm) {
  RatekeeperConfig cfg;
  cfg.initial_rate_per_hour = 100.0;
  cfg.recovery_ticks = 3;
  Ratekeeper rk(cfg);
  RatekeeperSignals s = calm_at(0.0);
  EXPECT_DOUBLE_EQ(rk.tick(s), 100.0);  // calm tick 1: no recovery yet
  s.now_hours = 0.1;
  EXPECT_DOUBLE_EQ(rk.tick(s), 100.0);  // calm tick 2
  s.now_hours = 0.2;
  EXPECT_DOUBLE_EQ(rk.tick(s), 100.0 + cfg.recovery_step_per_hour);
  s.now_hours = 0.3;  // calm persists: keep probing every tick
  EXPECT_DOUBLE_EQ(rk.tick(s), 100.0 + 2.0 * cfg.recovery_step_per_hour);
  EXPECT_EQ(rk.status().limiting, LimitingSignal::kNone);
  EXPECT_EQ(rk.status().recoveries, 2u);
}

TEST(Ratekeeper, RecoveryClampsAtMaxRate) {
  RatekeeperConfig cfg;
  cfg.initial_rate_per_hour = 100.0;
  cfg.max_rate_per_hour = 110.0;
  cfg.recovery_step_per_hour = 8.0;
  cfg.recovery_ticks = 1;
  Ratekeeper rk(cfg);
  RatekeeperSignals s = calm_at(0.0);
  for (int k = 0; k < 10; ++k) {
    s.now_hours = 0.1 * k;
    rk.tick(s);
  }
  EXPECT_DOUBLE_EQ(rk.status().rate_per_hour, 110.0);
}

TEST(Ratekeeper, LimitingSignalIsTheArgmaxPressure) {
  obs::SloConfig slo;  // expiry budget 0.05, burn threshold 2.0
  RatekeeperConfig cfg;
  Ratekeeper rk(cfg, slo);
  RatekeeperSignals s = calm_at(0.0);
  s.expired = 2;
  s.batch = 8;  // expiry fraction 0.2 / budget 0.05 = pressure 4
  rk.tick(s);
  EXPECT_EQ(rk.status().limiting, LimitingSignal::kExpiry);

  Ratekeeper rk2(cfg, slo);
  RatekeeperSignals b = calm_at(0.0);
  b.slo_burn = 10.0;  // 10 / threshold 2 = pressure 5
  rk2.tick(b);
  EXPECT_EQ(rk2.status().limiting, LimitingSignal::kSloBurn);

  Ratekeeper rk3(cfg, slo);
  RatekeeperSignals w = calm_at(0.0);
  w.batch_wait_hours = 2.0;  // 2.0 / target 0.5 = pressure 4
  rk3.tick(w);
  EXPECT_EQ(rk3.status().limiting, LimitingSignal::kBatchLatency);
}

TEST(Ratekeeper, DeterministicForIdenticalSignalStreams) {
  RatekeeperConfig cfg;
  Ratekeeper a(cfg);
  Ratekeeper b(cfg);
  for (int k = 0; k < 100; ++k) {
    RatekeeperSignals s = calm_at(0.05 * k);
    s.queue_depth = static_cast<std::size_t>((k * 37) % 101);
    s.batch_wait_hours = 0.01 * (k % 7);
    s.expired = static_cast<std::uint64_t>(k % 3);
    s.batch = 4 + static_cast<std::uint64_t>(k % 5);
    s.slo_burn = 0.2 * (k % 11);
    EXPECT_EQ(a.tick(s), b.tick(s));  // bit-identical, not approx
  }
}

}  // namespace
}  // namespace mfcp::control

// ---------------------------------------------------------- slo config --

namespace mfcp::obs {
namespace {

TEST(SloConfigParse, ParsesKeysCommentsAndBlankLines) {
  const char* text =
      "# platform SLO targets\n"
      "fast_window_hours = 0.05\n"
      "slow_window_hours = 0.5\n"
      "\n"
      "burn_threshold = 3.0\n"
      "submit_latency_target_seconds = 0.1  # loose for CI\n"
      "submit_latency_objective = 0.95\n"
      "dispatch_success_objective = 0.8\n"
      "expiry_objective = 0.9\n"
      "regret_gap_budget = 1.5\n";
  std::string error;
  const auto cfg = parse_slo_config(text, &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_DOUBLE_EQ(cfg->fast_window_hours, 0.05);
  EXPECT_DOUBLE_EQ(cfg->slow_window_hours, 0.5);
  EXPECT_DOUBLE_EQ(cfg->burn_threshold, 3.0);
  EXPECT_DOUBLE_EQ(cfg->submit_latency_target_seconds, 0.1);
  EXPECT_DOUBLE_EQ(cfg->submit_latency_objective, 0.95);
  EXPECT_DOUBLE_EQ(cfg->dispatch_success_objective, 0.8);
  EXPECT_DOUBLE_EQ(cfg->expiry_objective, 0.9);
  EXPECT_DOUBLE_EQ(cfg->regret_gap_budget, 1.5);
}

TEST(SloConfigParse, OmittedKeysKeepDefaults) {
  std::string error;
  const auto cfg = parse_slo_config("burn_threshold = 4.0\n", &error);
  ASSERT_TRUE(cfg.has_value()) << error;
  EXPECT_DOUBLE_EQ(cfg->burn_threshold, 4.0);
  EXPECT_DOUBLE_EQ(cfg->expiry_objective, SloConfig{}.expiry_objective);
}

TEST(SloConfigParse, UnknownKeyFailsWithLineNumber) {
  std::string error;
  EXPECT_FALSE(
      parse_slo_config("burn_threshold = 2.0\ntypo_key = 1\n", &error)
          .has_value());
  EXPECT_NE(error.find("line 2"), std::string::npos) << error;
  EXPECT_NE(error.find("typo_key"), std::string::npos) << error;
}

TEST(SloConfigParse, MalformedValueFails) {
  std::string error;
  EXPECT_FALSE(
      parse_slo_config("burn_threshold = fast\n", &error).has_value());
  EXPECT_FALSE(parse_slo_config("burn_threshold\n", &error).has_value());
}

TEST(SloConfigParse, ConstraintViolationsFail) {
  std::string error;
  // Slow window must not be shorter than the fast window.
  EXPECT_FALSE(parse_slo_config(
                   "fast_window_hours = 1.0\nslow_window_hours = 0.5\n",
                   &error)
                   .has_value());
  EXPECT_FALSE(
      parse_slo_config("expiry_objective = 1.5\n", &error).has_value());
  EXPECT_FALSE(
      parse_slo_config("burn_threshold = -1\n", &error).has_value());
}

TEST(SloAlertLog, WritesFireAndResolveTransitionsOnly) {
  SloConfig cfg;
  cfg.fast_window_hours = 0.05;
  cfg.slow_window_hours = 0.1;
  SloMonitor slo(cfg);
  std::ostringstream out;
  JsonlWriter log(out);
  slo.set_alert_log(&log);

  // Every admitted task expires: the expiry SLI burns far over budget.
  slo.observe_round(0.01, 0, 0, 8, 0.0, false);
  slo.evaluate(0.02);
  const std::string after_fire = out.str();
  EXPECT_NE(after_fire.find("\"event\":\"fire\""), std::string::npos);
  EXPECT_NE(after_fire.find("\"sli\":\"expiry\""), std::string::npos);

  // Steady state: repeated evaluation writes nothing new (transitions
  // only — a melting platform must not flood the log).
  slo.evaluate(0.03);
  slo.evaluate(0.04);
  EXPECT_EQ(out.str(), after_fire);

  // The bad samples age out of both windows: the rule resolves once.
  slo.evaluate(1.0);
  const std::string after_resolve = out.str();
  EXPECT_NE(after_resolve.find("\"event\":\"resolve\""), std::string::npos);
  slo.evaluate(1.1);
  EXPECT_EQ(out.str(), after_resolve);
}

}  // namespace
}  // namespace mfcp::obs
