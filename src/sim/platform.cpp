#include "sim/platform.hpp"

#include "support/check.hpp"

namespace mfcp::sim {

std::string to_string(Setting s) {
  switch (s) {
    case Setting::kA:
      return "A";
    case Setting::kB:
      return "B";
    case Setting::kC:
      return "C";
  }
  return "?";
}

Platform::Platform(std::vector<Cluster> clusters)
    : clusters_(std::move(clusters)) {
  MFCP_CHECK(!clusters_.empty(), "platform needs at least one cluster");
}

Platform Platform::make_setting(Setting setting, std::size_t num_clusters) {
  // Each setting fixes its own seed so A/B/C are distinct but reproducible.
  Rng rng(0x5e771a60ULL + 0x9e37ULL * static_cast<std::uint64_t>(setting));
  return Platform(sample_clusters(num_clusters, rng));
}

const Cluster& Platform::cluster(std::size_t i) const {
  MFCP_CHECK(i < clusters_.size(), "cluster index out of range");
  return clusters_[i];
}

void Platform::set_cluster(std::size_t i, Cluster cluster) {
  MFCP_CHECK(i < clusters_.size(), "cluster index out of range");
  clusters_[i] = std::move(cluster);
}

Matrix Platform::true_times(const std::vector<TaskDescriptor>& tasks) const {
  Matrix t(clusters_.size(), tasks.size());
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      t(i, j) = clusters_[i].execution_time(tasks[j]);
    }
  }
  return t;
}

Matrix Platform::true_reliability(
    const std::vector<TaskDescriptor>& tasks) const {
  Matrix a(clusters_.size(), tasks.size());
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      a(i, j) = clusters_[i].reliability(tasks[j]);
    }
  }
  return a;
}

Matrix Platform::measure_times(const std::vector<TaskDescriptor>& tasks,
                               Rng& rng) const {
  Matrix t(clusters_.size(), tasks.size());
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      t(i, j) = clusters_[i].measure_time(tasks[j], rng);
    }
  }
  return t;
}

Matrix Platform::measure_reliability(const std::vector<TaskDescriptor>& tasks,
                                     Rng& rng) const {
  Matrix a(clusters_.size(), tasks.size());
  for (std::size_t i = 0; i < clusters_.size(); ++i) {
    for (std::size_t j = 0; j < tasks.size(); ++j) {
      a(i, j) = clusters_[i].measure_reliability(tasks[j], rng);
    }
  }
  return a;
}

}  // namespace mfcp::sim
