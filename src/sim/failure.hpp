// Failure injection: Monte-Carlo execution of a matching on the platform.
//
// Reliability labels in the dataset are probabilities; this module samples
// actual success/failure outcomes so integration tests and examples can
// observe the platform end-to-end (tasks retried, empirical success rates
// converging to the reliability matrix).
#pragma once

#include <vector>

#include "sim/platform.hpp"

namespace mfcp::sim {

struct ExecutionOutcome {
  std::vector<int> assigned_cluster;  // per task
  std::vector<bool> succeeded;        // per task, first attempt
  std::vector<int> attempts;          // attempts until success (capped)
  double makespan_hours = 0.0;        // max cluster busy time, first attempts
  double empirical_success_rate = 0.0;
};

/// Executes tasks under an assignment (task j -> cluster assignment[j]),
/// sampling per-task success from the ground-truth reliability. Failed
/// tasks are retried up to `max_attempts` (each retry re-occupies the
/// cluster). Returns per-task outcomes and aggregate statistics.
ExecutionOutcome execute_assignment(const Platform& platform,
                                    const std::vector<TaskDescriptor>& tasks,
                                    const std::vector<int>& assignment,
                                    Rng& rng, int max_attempts = 3);

/// Empirical reliability estimate for one task on one cluster from `runs`
/// Monte-Carlo executions (converges to Cluster::reliability).
double empirical_reliability(const Cluster& cluster,
                             const TaskDescriptor& task, Rng& rng,
                             std::size_t runs);

/// Environment drift: a persistent change to one cluster's hidden
/// performance/reliability law (hardware swap, co-tenant load, degraded
/// interconnect). Applied mid-run it invalidates whatever a predictor
/// learned during profiling — the scenario online retraining exists for.
struct ClusterDrift {
  /// Multiplies base_seconds_per_unit (> 1 = slower hardware).
  double time_scale = 1.0;
  /// Multiplies the curvature of non-linear performance laws.
  double law_param_scale = 1.0;
  /// Added to the reliability base logit (< 0 = flakier cluster).
  double reliability_logit_shift = 0.0;
  /// Multiplies usable memory (< 1 moves the thrashing cliff left).
  double memory_scale = 1.0;
};

/// The drifted profile (pure; callers re-wrap into a Cluster).
ClusterProfile drift_profile(const ClusterProfile& profile,
                             const ClusterDrift& drift);

/// Applies the drift to cluster `index` of the platform in place.
void apply_drift(Platform& platform, std::size_t index,
                 const ClusterDrift& drift);

}  // namespace mfcp::sim
