// Failure injection: Monte-Carlo execution of a matching on the platform.
//
// Reliability labels in the dataset are probabilities; this module samples
// actual success/failure outcomes so integration tests and examples can
// observe the platform end-to-end (tasks retried, empirical success rates
// converging to the reliability matrix).
#pragma once

#include <vector>

#include "sim/platform.hpp"

namespace mfcp::sim {

struct ExecutionOutcome {
  std::vector<int> assigned_cluster;  // per task
  std::vector<bool> succeeded;        // per task, first attempt
  std::vector<int> attempts;          // attempts until success (capped)
  double makespan_hours = 0.0;        // max cluster busy time, first attempts
  double empirical_success_rate = 0.0;
};

/// Executes tasks under an assignment (task j -> cluster assignment[j]),
/// sampling per-task success from the ground-truth reliability. Failed
/// tasks are retried up to `max_attempts` (each retry re-occupies the
/// cluster). Returns per-task outcomes and aggregate statistics.
ExecutionOutcome execute_assignment(const Platform& platform,
                                    const std::vector<TaskDescriptor>& tasks,
                                    const std::vector<int>& assignment,
                                    Rng& rng, int max_attempts = 3);

/// Empirical reliability estimate for one task on one cluster from `runs`
/// Monte-Carlo executions (converges to Cluster::reliability).
double empirical_reliability(const Cluster& cluster,
                             const TaskDescriptor& task, Rng& rng,
                             std::size_t runs);

}  // namespace mfcp::sim
