#include "sim/embedding.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "support/check.hpp"

namespace mfcp::sim {

namespace {
constexpr std::size_t kRawDim =
    kNumTaskFamilies + kNumDatasets + 6;  // one-hots + numeric fields

Matrix random_matrix(std::size_t rows, std::size_t cols, double scale,
                     Rng& rng) {
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng.normal(0.0, scale);
  }
  return m;
}
}  // namespace

PseudoGnnEmbedder::PseudoGnnEmbedder(EmbedderConfig config)
    : config_(config) {
  MFCP_CHECK(config_.output_dim > 0, "embedding dim must be positive");
  Rng rng(config_.seed);
  const double in_scale = 1.0 / std::sqrt(static_cast<double>(kRawDim));
  input_proj_ = random_matrix(config_.output_dim, kRawDim, in_scale, rng);
  const double mix_scale =
      1.0 / std::sqrt(static_cast<double>(config_.output_dim));
  for (std::size_t r = 0; r < config_.rounds; ++r) {
    weights_.push_back(random_matrix(config_.output_dim, config_.output_dim,
                                     mix_scale, rng));
    biases_.push_back(random_matrix(config_.output_dim, 1, 0.1, rng));
  }
}

std::vector<double> PseudoGnnEmbedder::raw_features(
    const TaskDescriptor& task) {
  std::vector<double> f(kRawDim, 0.0);
  f[static_cast<std::size_t>(task.family)] = 1.0;
  f[kNumTaskFamilies + static_cast<std::size_t>(task.dataset)] = 1.0;
  std::size_t k = kNumTaskFamilies + kNumDatasets;
  f[k++] = std::log1p(static_cast<double>(task.depth));
  f[k++] = std::log1p(static_cast<double>(task.width)) / 4.0;
  f[k++] = std::log1p(static_cast<double>(task.batch_size)) / 4.0;
  f[k++] = task.dataset_fraction;
  f[k++] = std::log1p(task.workload()) / 4.0;
  f[k++] = std::log1p(task.memory_gb());
  return f;
}

std::vector<double> PseudoGnnEmbedder::embed(
    const TaskDescriptor& task) const {
  const auto raw = raw_features(task);
  Matrix h = matvec(input_proj_, Matrix::column(raw));
  // "Message passing": residual tanh mixing rounds with fixed weights.
  for (std::size_t r = 0; r < config_.rounds; ++r) {
    Matrix mixed = matvec(weights_[r], h);
    for (std::size_t i = 0; i < mixed.size(); ++i) {
      h[i] = h[i] + std::tanh(mixed[i] + biases_[r][i]);
    }
  }
  std::vector<double> out(h.size());
  for (std::size_t i = 0; i < h.size(); ++i) {
    out[i] = h[i];
  }
  return out;
}

Matrix PseudoGnnEmbedder::embed_batch(
    const std::vector<TaskDescriptor>& tasks) const {
  Matrix features(tasks.size(), config_.output_dim);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    const auto z = embed(tasks[i]);
    for (std::size_t j = 0; j < z.size(); ++j) {
      features(i, j) = z[j];
    }
  }
  return features;
}

}  // namespace mfcp::sim
