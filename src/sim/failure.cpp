#include "sim/failure.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mfcp::sim {

ExecutionOutcome execute_assignment(const Platform& platform,
                                    const std::vector<TaskDescriptor>& tasks,
                                    const std::vector<int>& assignment,
                                    Rng& rng, int max_attempts) {
  MFCP_CHECK(assignment.size() == tasks.size(),
             "assignment length must match task count");
  MFCP_CHECK(max_attempts >= 1, "need at least one attempt");

  ExecutionOutcome out;
  out.assigned_cluster = assignment;
  out.succeeded.resize(tasks.size());
  out.attempts.resize(tasks.size());

  std::vector<double> busy(platform.num_clusters(), 0.0);
  std::size_t successes = 0;
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    const int ci = assignment[j];
    MFCP_CHECK(ci >= 0 &&
                   static_cast<std::size_t>(ci) < platform.num_clusters(),
               "assignment references unknown cluster");
    const Cluster& cluster = platform.cluster(static_cast<std::size_t>(ci));
    busy[static_cast<std::size_t>(ci)] += cluster.execution_time(tasks[j]);

    int attempts = 0;
    bool ok = false;
    while (attempts < max_attempts && !ok) {
      ++attempts;
      ok = cluster.run_once(tasks[j], rng);
      if (!ok && attempts < max_attempts) {
        // A retry re-occupies the cluster for another full run.
        busy[static_cast<std::size_t>(ci)] +=
            cluster.execution_time(tasks[j]);
      }
    }
    out.attempts[j] = attempts;
    out.succeeded[j] = attempts == 1 && ok;
    if (out.succeeded[j]) {
      ++successes;
    }
  }
  out.makespan_hours = *std::max_element(busy.begin(), busy.end());
  out.empirical_success_rate =
      static_cast<double>(successes) / static_cast<double>(tasks.size());
  return out;
}

ClusterProfile drift_profile(const ClusterProfile& profile,
                             const ClusterDrift& drift) {
  MFCP_CHECK(drift.time_scale > 0.0 && drift.law_param_scale > 0.0 &&
                 drift.memory_scale > 0.0,
             "drift scales must be positive");
  ClusterProfile p = profile;
  p.base_seconds_per_unit *= drift.time_scale;
  p.law_param *= drift.law_param_scale;
  p.reliability_base += drift.reliability_logit_shift;
  p.memory_capacity_gb *= drift.memory_scale;
  return p;
}

void apply_drift(Platform& platform, std::size_t index,
                 const ClusterDrift& drift) {
  const ClusterProfile drifted =
      drift_profile(platform.cluster(index).profile(), drift);
  platform.set_cluster(index, Cluster(drifted));
}

double empirical_reliability(const Cluster& cluster,
                             const TaskDescriptor& task, Rng& rng,
                             std::size_t runs) {
  MFCP_CHECK(runs > 0, "need at least one run");
  std::size_t ok = 0;
  for (std::size_t r = 0; r < runs; ++r) {
    if (cluster.run_once(task, rng)) {
      ++ok;
    }
  }
  return static_cast<double>(ok) / static_cast<double>(runs);
}

}  // namespace mfcp::sim
