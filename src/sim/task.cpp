#include "sim/task.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mfcp::sim {

std::string to_string(TaskFamily family) {
  switch (family) {
    case TaskFamily::kCnn:
      return "CNN";
    case TaskFamily::kTransformer:
      return "Transformer";
    case TaskFamily::kRnn:
      return "RNN";
    case TaskFamily::kMlp:
      return "MLP";
  }
  return "Unknown";
}

std::string to_string(DatasetKind dataset) {
  switch (dataset) {
    case DatasetKind::kCifar10:
      return "CIFAR-10";
    case DatasetKind::kImageNet:
      return "ImageNet";
    case DatasetKind::kEuroparl:
      return "Europarl";
  }
  return "Unknown";
}

double TaskDescriptor::params_millions() const {
  const double d = depth;
  const double w = width;
  switch (family) {
    case TaskFamily::kCnn:
      // conv stacks: params ~ depth * width^2 * 9 (3x3 kernels)
      return d * w * w * 9.0 / 1e6;
    case TaskFamily::kTransformer:
      // attention + FFN: ~12 * width^2 per block
      return d * w * w * 12.0 / 1e6;
    case TaskFamily::kRnn:
      // gated recurrent cells: ~8 * width^2 per layer
      return d * w * w * 8.0 / 1e6;
    case TaskFamily::kMlp:
      return d * w * w / 1e6;
  }
  return 0.0;
}

double TaskDescriptor::workload() const {
  // Samples per epoch by dataset, scaled into a common unit.
  double samples = 0.0;
  switch (dataset) {
    case DatasetKind::kCifar10:
      samples = 50.0;  // 50k images
      break;
    case DatasetKind::kImageNet:
      samples = 1281.0;  // 1.28M images
      break;
    case DatasetKind::kEuroparl:
      samples = 600.0;  // ~600k sentence pairs
      break;
  }
  samples *= dataset_fraction;
  // FLOPs per sample ~ 2 * params (forward) * 3 (fwd+bwd). Normalize so a
  // small CIFAR CNN lands around workload ~ 1.
  const double gflops = 6.0 * params_millions() * samples / 1e3;
  // Cube-root compression keeps the six-orders-of-magnitude FLOP range in
  // a band where (a) the super-linear cluster laws stay numerically sane
  // and (b) no single job dwarfs a whole matching round — matching the
  // paper's setting where balancing across clusters is non-trivial.
  return 4.0 * std::cbrt(gflops);
}

double TaskDescriptor::memory_gb() const {
  // Parameters + optimizer state + activations (grows with batch).
  const double param_gb = params_millions() * 4.0 * 3.0 / 1e3;
  // Activations + optimizer workspace scale with batch * depth * width.
  const double act_gb =
      static_cast<double>(batch_size) * depth * width * 4.0 / 1e6;
  return param_gb + act_gb;
}

double TaskDescriptor::comm_intensity() const {
  switch (family) {
    case TaskFamily::kCnn:
      return 0.3;
    case TaskFamily::kTransformer:
      return 0.8;
    case TaskFamily::kRnn:
      return 0.6;
    case TaskFamily::kMlp:
      return 0.2;
  }
  return 0.0;
}

TaskDescriptor TaskGenerator::sample() {
  TaskDescriptor t;
  t.family = static_cast<TaskFamily>(rng_.uniform_index(kNumTaskFamilies));
  // CV families train on image datasets, NLP families on Europarl
  // (mirrors the paper's CV/NLP split).
  if (t.family == TaskFamily::kCnn || t.family == TaskFamily::kMlp) {
    t.dataset = rng_.bernoulli(0.6) ? DatasetKind::kCifar10
                                    : DatasetKind::kImageNet;
  } else {
    t.dataset = DatasetKind::kEuroparl;
  }
  t.depth = static_cast<int>(2 + rng_.uniform_index(30));
  t.width = static_cast<int>(32 * (1 + rng_.uniform_index(16)));
  t.batch_size = static_cast<int>(16u << rng_.uniform_index(5));  // 16..256
  t.dataset_fraction = rng_.uniform(0.05, 1.0);
  return t;
}

std::vector<TaskDescriptor> TaskGenerator::sample_batch(std::size_t n) {
  std::vector<TaskDescriptor> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(sample());
  }
  return out;
}

}  // namespace mfcp::sim
