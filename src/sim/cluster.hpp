// Heterogeneous cluster model.
//
// Each third-party cluster has a hidden ground-truth law mapping a task to
// (execution time, reliability). Heterogeneity has three axes, mirroring the
// paper's motivation (Fig. 2 shows one cluster linear in workload and one
// exponential, so that independently-MSE-trained predictors order clusters
// wrongly):
//   1. scaling law shape (linear / super-linear "exponential" / saturating),
//   2. per-family architecture affinity (e.g. tensor-core boxes favour
//      transformers),
//   3. reliability law (base stability degraded by memory pressure and
//      communication intensity — third-party clusters fail more on big,
//      chatty jobs).
#pragma once

#include <array>
#include <string>
#include <vector>

#include "sim/task.hpp"
#include "support/rng.hpp"

namespace mfcp::sim {

enum class PerfLaw : int {
  kLinear = 0,       // t ~ w
  kExponential = 1,  // t ~ (e^{k w} - 1)/k : super-linear growth
  kSaturating = 2,   // t ~ w / (1 + k w) * (1 + k w_ref): concave
};

std::string to_string(PerfLaw law);

struct ClusterProfile {
  std::string name = "cluster";
  PerfLaw law = PerfLaw::kLinear;
  double law_param = 0.05;  // curvature of the non-linear laws
  double base_seconds_per_unit = 1.0;  // hardware speed (lower = faster)
  std::array<double, kNumTaskFamilies> family_affinity = {1.0, 1.0, 1.0, 1.0};
  /// Usable accelerator/host memory. Jobs whose footprint exceeds it hit
  /// a thrashing cliff: execution time multiplies by up to
  /// (1 + thrash_penalty). The cliff is what makes cluster choice *costly*
  /// to mispredict — a small MLP on sparse profiling data systematically
  /// misses sharp thresholds (the Fig. 2 failure mode).
  double memory_capacity_gb = 8.0;
  double thrash_penalty = 3.0;
  /// Logistic width of the cliff in GB (smaller = sharper).
  double thrash_width_gb = 0.25;
  double reliability_base = 2.0;      // logit of success prob for tiny jobs
  double memory_fragility = 0.05;     // logit penalty per GB
  double comm_fragility = 1.0;        // logit penalty per unit comm intensity
  double time_noise_sigma = 0.15;     // lognormal measurement noise
  double reliability_noise_sigma = 0.04;  // additive label noise
};

class Cluster {
 public:
  explicit Cluster(ClusterProfile profile);

  [[nodiscard]] const ClusterProfile& profile() const noexcept {
    return profile_;
  }
  [[nodiscard]] const std::string& name() const noexcept {
    return profile_.name;
  }

  /// Ground-truth expected execution time (hours) of the task.
  [[nodiscard]] double execution_time(const TaskDescriptor& task) const;

  /// Ground-truth success probability in (0, 1).
  [[nodiscard]] double reliability(const TaskDescriptor& task) const;

  /// One noisy runtime measurement (what profiling a real cluster yields).
  [[nodiscard]] double measure_time(const TaskDescriptor& task,
                                    Rng& rng) const;

  /// Noisy reliability label (empirical success estimate), clamped to
  /// (0.01, 0.999).
  [[nodiscard]] double measure_reliability(const TaskDescriptor& task,
                                           Rng& rng) const;

  /// Simulates one run: true = completed, false = failed.
  [[nodiscard]] bool run_once(const TaskDescriptor& task, Rng& rng) const;

 private:
  ClusterProfile profile_;
};

/// Catalog of heterogeneous cluster archetypes (the "pool" from which the
/// paper's settings A/B/C randomly select clusters).
std::vector<ClusterProfile> cluster_catalog();

/// Draws M cluster profiles from the catalog with perturbed parameters.
/// Distinct seeds reproduce the paper's settings A/B/C.
std::vector<Cluster> sample_clusters(std::size_t m, Rng& rng);

}  // namespace mfcp::sim
