// The computing resource exchange platform: M managed clusters plus the
// machinery to evaluate a batch of N tasks on all of them — producing the
// T (execution time) and A (reliability) matrices of paper §2.1.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "sim/cluster.hpp"
#include "sim/embedding.hpp"
#include "sim/task.hpp"

namespace mfcp::sim {

/// Named cluster environments matching the paper's experiment settings.
enum class Setting : int { kA = 0, kB = 1, kC = 2 };
std::string to_string(Setting s);

class Platform {
 public:
  explicit Platform(std::vector<Cluster> clusters);

  /// Builds the platform for one of the paper's settings A/B/C: each
  /// setting randomly selects M heterogeneous clusters under its own seed.
  static Platform make_setting(Setting setting, std::size_t num_clusters);

  [[nodiscard]] std::size_t num_clusters() const noexcept {
    return clusters_.size();
  }
  [[nodiscard]] const Cluster& cluster(std::size_t i) const;
  [[nodiscard]] const std::vector<Cluster>& clusters() const noexcept {
    return clusters_;
  }

  /// Swaps in a new cluster model at slot i. This is how environment
  /// drift is injected mid-run (see sim/failure.hpp): third-party
  /// clusters degrade, get re-provisioned, or change hardware under the
  /// platform's feet, invalidating whatever the predictors learned.
  void set_cluster(std::size_t i, Cluster cluster);

  /// Ground-truth execution time matrix T (M x N): T(i, j) = time of task j
  /// on cluster i.
  [[nodiscard]] Matrix true_times(
      const std::vector<TaskDescriptor>& tasks) const;

  /// Ground-truth reliability matrix A (M x N).
  [[nodiscard]] Matrix true_reliability(
      const std::vector<TaskDescriptor>& tasks) const;

  /// Noisy profiling measurements of T (what training labels look like).
  [[nodiscard]] Matrix measure_times(const std::vector<TaskDescriptor>& tasks,
                                     Rng& rng) const;

  /// Noisy reliability labels.
  [[nodiscard]] Matrix measure_reliability(
      const std::vector<TaskDescriptor>& tasks, Rng& rng) const;

 private:
  std::vector<Cluster> clusters_;
};

}  // namespace mfcp::sim
