// Training/evaluation dataset construction (the D = {z, t, a} of Eq. 1).
#pragma once

#include <vector>

#include "sim/platform.hpp"

namespace mfcp::sim {

/// A profiled batch of tasks on a platform: features plus per-cluster
/// labels. Rows of `features` are tasks; labels are (M x N).
struct Dataset {
  std::vector<TaskDescriptor> tasks;
  Matrix features;       // N x d
  Matrix times;          // M x N, training labels (possibly noisy)
  Matrix reliability;    // M x N
  Matrix true_times;     // M x N, noiseless ground truth
  Matrix true_reliability;

  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return tasks.size();
  }
  [[nodiscard]] std::size_t num_clusters() const noexcept {
    return times.rows();
  }
  [[nodiscard]] std::size_t feature_dim() const noexcept {
    return features.cols();
  }

  /// Column-subset view materialized as a new dataset (for mini-batches and
  /// train/test splits).
  [[nodiscard]] Dataset subset(const std::vector<std::size_t>& indices) const;
};

struct DatasetConfig {
  std::size_t num_tasks = 200;
  bool noisy_labels = true;  // profiling noise on training labels
  std::uint64_t task_seed = 0x7a5cULL;
  std::uint64_t noise_seed = 0x401feULL;
};

/// Samples tasks, embeds them, and profiles them on every cluster of the
/// platform.
Dataset build_dataset(const Platform& platform,
                      const PseudoGnnEmbedder& embedder,
                      const DatasetConfig& config);

/// Deterministic split into train/test by shuffled indices.
std::pair<Dataset, Dataset> split_dataset(const Dataset& data,
                                          double train_fraction, Rng& rng);

}  // namespace mfcp::sim
