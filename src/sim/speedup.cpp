#include "sim/speedup.hpp"

#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace mfcp::sim {

SpeedupCurve SpeedupCurve::exclusive() {
  return SpeedupCurve(/*constant=*/true, 1.0, 0.0);
}

SpeedupCurve SpeedupCurve::exponential_decay(double floor, double rate) {
  MFCP_CHECK(floor > 0.0 && floor <= 1.0, "speedup floor must be in (0,1]");
  MFCP_CHECK(rate > 0.0, "decay rate must be positive");
  return SpeedupCurve(/*constant=*/false, floor, rate);
}

double SpeedupCurve::value(double n) const noexcept {
  if (constant_ || n <= 1.0) {
    return 1.0;
  }
  return floor_ + (1.0 - floor_) * std::exp(-rate_ * (n - 1.0));
}

double SpeedupCurve::derivative(double n) const noexcept {
  if (constant_ || n <= 1.0) {
    return 0.0;
  }
  return -rate_ * (1.0 - floor_) * std::exp(-rate_ * (n - 1.0));
}

std::string SpeedupCurve::describe() const {
  if (constant_) {
    return "exclusive (zeta = 1)";
  }
  std::ostringstream os;
  os << "exponential decay 1 -> " << floor_ << " (rate " << rate_ << ")";
  return os.str();
}

}  // namespace mfcp::sim
