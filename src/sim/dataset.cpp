#include "sim/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mfcp::sim {

Dataset Dataset::subset(const std::vector<std::size_t>& indices) const {
  Dataset out;
  out.tasks.reserve(indices.size());
  out.features = Matrix(indices.size(), features.cols());
  const std::size_t m = num_clusters();
  out.times = Matrix(m, indices.size());
  out.reliability = Matrix(m, indices.size());
  out.true_times = Matrix(m, indices.size());
  out.true_reliability = Matrix(m, indices.size());
  for (std::size_t k = 0; k < indices.size(); ++k) {
    const std::size_t j = indices[k];
    MFCP_CHECK(j < num_tasks(), "subset index out of range");
    out.tasks.push_back(tasks[j]);
    for (std::size_t c = 0; c < features.cols(); ++c) {
      out.features(k, c) = features(j, c);
    }
    for (std::size_t i = 0; i < m; ++i) {
      out.times(i, k) = times(i, j);
      out.reliability(i, k) = reliability(i, j);
      out.true_times(i, k) = true_times(i, j);
      out.true_reliability(i, k) = true_reliability(i, j);
    }
  }
  return out;
}

Dataset build_dataset(const Platform& platform,
                      const PseudoGnnEmbedder& embedder,
                      const DatasetConfig& config) {
  MFCP_CHECK(config.num_tasks > 0, "dataset needs at least one task");
  Dataset data;
  TaskGenerator gen(Rng{config.task_seed});
  data.tasks = gen.sample_batch(config.num_tasks);
  data.features = embedder.embed_batch(data.tasks);
  data.true_times = platform.true_times(data.tasks);
  data.true_reliability = platform.true_reliability(data.tasks);
  if (config.noisy_labels) {
    Rng noise(config.noise_seed);
    data.times = platform.measure_times(data.tasks, noise);
    data.reliability = platform.measure_reliability(data.tasks, noise);
  } else {
    data.times = data.true_times;
    data.reliability = data.true_reliability;
  }
  return data;
}

std::pair<Dataset, Dataset> split_dataset(const Dataset& data,
                                          double train_fraction, Rng& rng) {
  MFCP_CHECK(train_fraction > 0.0 && train_fraction < 1.0,
             "train fraction must be in (0, 1)");
  const std::size_t n = data.num_tasks();
  auto order = rng.permutation(n);
  const auto cut = static_cast<std::size_t>(
      std::clamp<double>(std::round(train_fraction * n), 1.0,
                         static_cast<double>(n - 1)));
  std::vector<std::size_t> train_idx(order.begin(), order.begin() + cut);
  std::vector<std::size_t> test_idx(order.begin() + cut, order.end());
  return {data.subset(train_idx), data.subset(test_idx)};
}

}  // namespace mfcp::sim
