#include "sim/cluster.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mfcp::sim {

std::string to_string(PerfLaw law) {
  switch (law) {
    case PerfLaw::kLinear:
      return "linear";
    case PerfLaw::kExponential:
      return "exponential";
    case PerfLaw::kSaturating:
      return "saturating";
  }
  return "unknown";
}

Cluster::Cluster(ClusterProfile profile) : profile_(std::move(profile)) {
  MFCP_CHECK(profile_.base_seconds_per_unit > 0.0,
             "cluster speed must be positive");
  MFCP_CHECK(profile_.law_param > 0.0, "law parameter must be positive");
}

double Cluster::execution_time(const TaskDescriptor& task) const {
  const double w = task.workload();
  const double k = profile_.law_param;
  double shaped = 0.0;
  switch (profile_.law) {
    case PerfLaw::kLinear:
      shaped = w;
      break;
    case PerfLaw::kExponential:
      // Super-linear: matches w for small w, grows exponentially after.
      shaped = std::expm1(k * w) / k;
      break;
    case PerfLaw::kSaturating:
      // Concave: good caching/parallel hardware absorbs large jobs.
      shaped = w / (1.0 + k * w) * (1.0 + k * 5.0);
      break;
  }
  const double affinity =
      profile_.family_affinity[static_cast<std::size_t>(task.family)];
  // Memory cliff: once the job footprint exceeds the cluster's capacity,
  // paging/offloading multiplies the runtime by up to (1+thrash_penalty).
  const double overflow =
      (task.memory_gb() - profile_.memory_capacity_gb) /
      profile_.thrash_width_gb;
  const double thrash =
      1.0 + profile_.thrash_penalty / (1.0 + std::exp(-overflow));
  const double hours =
      profile_.base_seconds_per_unit * affinity * shaped * thrash / 8.0;
  return std::max(hours, 1e-4);
}

double Cluster::reliability(const TaskDescriptor& task) const {
  const double logit = profile_.reliability_base -
                       profile_.memory_fragility * task.memory_gb() -
                       profile_.comm_fragility * task.comm_intensity();
  const double p = 1.0 / (1.0 + std::exp(-logit));
  return std::clamp(p, 0.01, 0.999);
}

double Cluster::measure_time(const TaskDescriptor& task, Rng& rng) const {
  const double t = execution_time(task);
  return t * rng.lognormal(0.0, profile_.time_noise_sigma);
}

double Cluster::measure_reliability(const TaskDescriptor& task,
                                    Rng& rng) const {
  const double a =
      reliability(task) + rng.normal(0.0, profile_.reliability_noise_sigma);
  return std::clamp(a, 0.01, 0.999);
}

bool Cluster::run_once(const TaskDescriptor& task, Rng& rng) const {
  return rng.bernoulli(reliability(task));
}

std::vector<ClusterProfile> cluster_catalog() {
  std::vector<ClusterProfile> catalog;

  {
    ClusterProfile p;
    p.name = "commodity-gpu";  // small-institution GTX/RTX box — 11GB card
    p.law = PerfLaw::kLinear;
    p.law_param = 0.05;
    p.base_seconds_per_unit = 1.4;
    p.family_affinity = {0.9, 1.4, 1.2, 1.0};  // good at CNNs, weak at attn
    p.reliability_base = 2.2;
    p.memory_fragility = 0.12;
    p.comm_fragility = 0.8;
    p.memory_capacity_gb = 1.5;
    p.thrash_penalty = 3.0;
    catalog.push_back(p);
  }
  {
    ClusterProfile p;
    p.name = "tensor-core-dgx";  // enterprise box with tensor cores
    p.law = PerfLaw::kSaturating;
    p.law_param = 0.02;
    p.base_seconds_per_unit = 0.6;
    p.family_affinity = {1.0, 0.7, 1.0, 0.9};  // optimized transformers
    p.reliability_base = 3.0;
    p.memory_fragility = 0.04;
    p.comm_fragility = 0.5;
    p.memory_capacity_gb = 8.0;
    p.thrash_penalty = 1.5;
    catalog.push_back(p);
  }
  {
    ClusterProfile p;
    p.name = "aging-cluster";  // older hardware, thermal throttling:
    p.law = PerfLaw::kExponential;  // super-linear in sustained load
    p.law_param = 0.08;
    p.base_seconds_per_unit = 1.0;
    p.family_affinity = {1.0, 1.3, 1.1, 1.0};
    p.reliability_base = 1.6;
    p.memory_fragility = 0.15;
    p.comm_fragility = 1.4;
    p.memory_capacity_gb = 1.0;
    p.thrash_penalty = 4.0;
    catalog.push_back(p);
  }
  {
    ClusterProfile p;
    p.name = "edge-pool";  // aggregated edge nodes: slow, flaky network
    p.law = PerfLaw::kLinear;
    p.law_param = 0.05;
    p.base_seconds_per_unit = 2.2;
    p.family_affinity = {1.0, 1.6, 1.3, 0.9};
    p.reliability_base = 1.2;
    p.memory_fragility = 0.20;
    p.comm_fragility = 2.0;
    p.memory_capacity_gb = 0.6;
    p.thrash_penalty = 6.0;
    catalog.push_back(p);
  }
  {
    ClusterProfile p;
    p.name = "hpc-partition";  // institutional HPC slice: fast, reliable
    p.law = PerfLaw::kSaturating;
    p.law_param = 0.015;
    p.base_seconds_per_unit = 0.45;
    p.family_affinity = {0.95, 0.85, 0.9, 0.95};
    p.reliability_base = 3.5;
    p.memory_fragility = 0.02;
    p.comm_fragility = 0.3;
    p.memory_capacity_gb = 4.0;
    p.thrash_penalty = 2.0;
    catalog.push_back(p);
  }
  {
    ClusterProfile p;
    p.name = "memory-bound-node";  // large RAM, slow compute, stable
    p.law = PerfLaw::kExponential;
    p.law_param = 0.04;
    p.base_seconds_per_unit = 1.7;
    p.family_affinity = {1.2, 1.1, 0.8, 1.0};  // relatively better at RNNs
    p.reliability_base = 2.6;
    p.memory_fragility = 0.02;
    p.comm_fragility = 1.0;
    p.memory_capacity_gb = 16.0;
    p.thrash_penalty = 0.5;
    catalog.push_back(p);
  }
  return catalog;
}

std::vector<Cluster> sample_clusters(std::size_t m, Rng& rng) {
  const auto catalog = cluster_catalog();
  MFCP_CHECK(m > 0, "need at least one cluster");
  std::vector<Cluster> clusters;
  clusters.reserve(m);
  const auto order = rng.permutation(catalog.size());
  for (std::size_t i = 0; i < m; ++i) {
    // Cycle through a shuffled catalog, jittering each profile so even two
    // instances of the same archetype are distinct machines.
    ClusterProfile p = catalog[order[i % catalog.size()]];
    p.name += "-" + std::to_string(i);
    p.base_seconds_per_unit *= rng.lognormal(0.0, 0.15);
    p.law_param *= rng.lognormal(0.0, 0.2);
    p.reliability_base += rng.normal(0.0, 0.25);
    p.memory_capacity_gb *= rng.lognormal(0.0, 0.2);
    for (auto& a : p.family_affinity) {
      a *= rng.lognormal(0.0, 0.1);
    }
    clusters.emplace_back(std::move(p));
  }
  return clusters;
}

}  // namespace mfcp::sim
