// Pseudo-GNN task embedding.
//
// The paper embeds computational graphs with a GNN and trains predictors on
// the resulting features ("we omit the distinction between tasks and
// features"). We substitute a *fixed* (untrained) message-passing-style
// encoder: a raw descriptor vector passes through L rounds of random-weight
// tanh mixing. Properties preserved: the map is deterministic, nonlinear,
// information-preserving in practice, and hides the ground-truth performance
// laws from the predictors — they see only z, exactly as in the paper.
#pragma once

#include <vector>

#include "linalg/matrix.hpp"
#include "sim/task.hpp"

namespace mfcp::sim {

struct EmbedderConfig {
  std::size_t output_dim = 12;
  std::size_t rounds = 2;       // message-passing rounds
  std::uint64_t seed = 0xe1bedULL;
};

class PseudoGnnEmbedder {
 public:
  explicit PseudoGnnEmbedder(EmbedderConfig config = {});

  /// Raw (pre-mixing) descriptor features: one-hot family and dataset plus
  /// log-scaled numeric fields.
  [[nodiscard]] static std::vector<double> raw_features(
      const TaskDescriptor& task);

  /// Embeds one task into a feature vector of output_dim entries.
  [[nodiscard]] std::vector<double> embed(const TaskDescriptor& task) const;

  /// Embeds a batch into an (n x output_dim) feature matrix (rows = tasks).
  [[nodiscard]] Matrix embed_batch(
      const std::vector<TaskDescriptor>& tasks) const;

  [[nodiscard]] std::size_t output_dim() const noexcept {
    return config_.output_dim;
  }

 private:
  EmbedderConfig config_;
  std::vector<Matrix> weights_;  // one mixing matrix per round
  std::vector<Matrix> biases_;
  Matrix input_proj_;            // raw dim -> output_dim
};

}  // namespace mfcp::sim
