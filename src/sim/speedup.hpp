// Parallel-execution speedup curves ζ (paper §3.4).
//
// ζ(n) maps the (possibly fractional, during relaxation) number of tasks on
// a cluster to the ratio of actual total execution time to the sum of task
// times. The paper's Table-2 evaluation uses "an exponential decay curve
// from 1 to 0.6" — diminishing returns of batching more jobs into a shared
// scheduler. We also provide the derivative dζ/dn because the smoothed
// objective (Eq. 17) differentiates through ζ(x_i^T 1).
#pragma once

#include <string>

namespace mfcp::sim {

class SpeedupCurve {
 public:
  /// Constant ζ = 1: exclusive sequential execution (paper §2.1 default).
  static SpeedupCurve exclusive();

  /// Exponential decay from 1 at n=1 to `floor` as n -> inf:
  ///   ζ(n) = floor + (1 - floor) * exp(-rate * (n - 1))   for n >= 1,
  /// and ζ(n) = 1 for n < 1 (an underloaded cluster runs its single task
  /// with no sharing effects). Paper Table 2 uses floor = 0.6.
  static SpeedupCurve exponential_decay(double floor, double rate);

  [[nodiscard]] double value(double n) const noexcept;
  [[nodiscard]] double derivative(double n) const noexcept;

  /// True for the exclusive (ζ ≡ 1) curve, which keeps the matching
  /// objective convex; decaying curves make it non-convex (paper §3.4).
  [[nodiscard]] bool is_constant() const noexcept { return constant_; }

  [[nodiscard]] std::string describe() const;

 private:
  SpeedupCurve(bool constant, double floor, double rate)
      : constant_(constant), floor_(floor), rate_(rate) {}

  bool constant_;
  double floor_;
  double rate_;
};

}  // namespace mfcp::sim
