// Deep-learning task model for the synthetic computing-resource-exchange
// platform.
//
// The paper's dataset is proprietary (Xirang platform runs of CV/NLP models
// over CIFAR-10 / ImageNet / Europarl). We reproduce its *structure*: tasks
// are training jobs drawn from model families with hyper-parameters that
// determine a workload (FLOPs, parameters, memory) which in turn drives
// cluster-specific execution time and reliability (see cluster.hpp).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "support/rng.hpp"

namespace mfcp::sim {

enum class TaskFamily : int { kCnn = 0, kTransformer = 1, kRnn = 2, kMlp = 3 };
inline constexpr int kNumTaskFamilies = 4;

enum class DatasetKind : int {
  kCifar10 = 0,
  kImageNet = 1,
  kEuroparl = 2,
};
inline constexpr int kNumDatasets = 3;

std::string to_string(TaskFamily family);
std::string to_string(DatasetKind dataset);

/// One deep-learning training job as submitted to the platform.
struct TaskDescriptor {
  TaskFamily family = TaskFamily::kCnn;
  DatasetKind dataset = DatasetKind::kCifar10;
  int depth = 8;              // number of blocks/layers
  int width = 128;            // channels / hidden size
  int batch_size = 64;
  double dataset_fraction = 1.0;  // fraction of the dataset per epoch

  /// Model parameters in millions (derived from family/depth/width).
  [[nodiscard]] double params_millions() const;

  /// Compute per epoch in normalized GFLOP units (drives execution time).
  [[nodiscard]] double workload() const;

  /// Peak memory footprint in GB (drives reliability: bigger jobs fail
  /// more often on flaky third-party clusters).
  [[nodiscard]] double memory_gb() const;

  /// Communication intensity in [0,1]: how much the job stresses the
  /// interconnect (transformers/RNNs higher) — a second reliability factor.
  [[nodiscard]] double comm_intensity() const;
};

/// Samples plausible task descriptors. Family/dataset pairings mirror the
/// paper (CV models on CIFAR-10/ImageNet, NLP models on Europarl).
class TaskGenerator {
 public:
  explicit TaskGenerator(Rng rng) : rng_(rng) {}

  TaskDescriptor sample();
  std::vector<TaskDescriptor> sample_batch(std::size_t n);

 private:
  Rng rng_;
};

}  // namespace mfcp::sim
