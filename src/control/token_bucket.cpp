#include "control/token_bucket.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mfcp::control {

double replenish_seconds(double deficit, double rate_per_second,
                         double floor_seconds) {
  // One hour caps the advice: a zero or vanishing rate means the
  // controller has clamped admission, and it recovers additively rather
  // than staying shut forever.
  constexpr double kCapSeconds = 3600.0;
  if (rate_per_second <= 0.0) {
    return kCapSeconds;
  }
  const double wait = std::max(0.0, deficit) / rate_per_second;
  return std::clamp(wait, floor_seconds, kCapSeconds);
}

TokenBucketTable::TokenBucketTable(TokenBucketConfig config)
    : config_(config), global_rate_per_hour_(config.initial_rate_per_hour) {
  MFCP_CHECK(config_.max_clients > 0, "bucket table must hold >= 1 client");
  MFCP_CHECK(config_.burst_hours > 0.0, "burst window must be positive");
  MFCP_CHECK(config_.min_burst_tokens >= 1.0,
             "a bucket must be able to hold at least one token");
  MFCP_CHECK(config_.default_weight > 0.0, "default weight must be positive");
  MFCP_CHECK(config_.activity_window_hours > 0.0,
             "activity window must be positive");
}

void TokenBucketTable::set_global_rate(double rate_per_hour,
                                       double now_hours) {
  (void)now_hours;  // refills are lazy; the rate applies from each
                    // bucket's next touch onward
  std::lock_guard<std::mutex> lock(mutex_);
  global_rate_per_hour_ = std::max(0.0, rate_per_hour);
}

double TokenBucketTable::global_rate_per_hour() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return global_rate_per_hour_;
}

void TokenBucketTable::set_weight(std::string_view client, double weight) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key(client.empty() ? kAnonymousClient : client);
  if (weight <= 0.0) {
    weights_.erase(key);
  } else {
    weights_[key] = weight;
  }
}

double TokenBucketTable::weight_locked(const std::string& client) const {
  const auto it = weights_.find(client);
  return it == weights_.end() ? config_.default_weight : it->second;
}

double TokenBucketTable::active_weight_locked(double now_hours) const {
  const double cutoff = now_hours - config_.activity_window_hours;
  double total = 0.0;
  for (const auto& [name, bucket] : buckets_) {
    if (bucket.last_seen_hours >= cutoff) {
      total += weight_locked(name);
    }
  }
  return total;
}

AdmitDecision TokenBucketTable::try_admit(std::string_view client,
                                          double now_hours) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key(client.empty() ? kAnonymousClient : client);

  auto it = buckets_.find(key);
  if (it == buckets_.end()) {
    while (buckets_.size() >= config_.max_clients && !lru_.empty()) {
      buckets_.erase(lru_.back());
      lru_.pop_back();
      ++evicted_;
    }
    lru_.push_front(key);
    Bucket fresh;
    fresh.last_refill_hours = now_hours;
    fresh.lru = lru_.begin();
    it = buckets_.emplace(key, fresh).first;
    // A new (or returning) client starts with a full burst below — first
    // contact is never throttled by its own empty history.
    it->second.tokens = -1.0;  // sentinel: filled after the share is known
  } else {
    lru_.splice(lru_.begin(), lru_, it->second.lru);
  }
  Bucket& bucket = it->second;
  bucket.last_seen_hours = now_hours;

  const double weight = weight_locked(key);
  const double active = std::max(active_weight_locked(now_hours), weight);
  const double share = global_rate_per_hour_ * weight / active;
  const double burst =
      std::max(config_.min_burst_tokens, share * config_.burst_hours);
  if (bucket.tokens < 0.0) {
    bucket.tokens = burst;
  } else {
    const double dt = std::max(0.0, now_hours - bucket.last_refill_hours);
    bucket.tokens = std::min(burst, bucket.tokens + share * dt);
  }
  bucket.last_refill_hours = now_hours;

  AdmitDecision decision;
  decision.rate_per_hour = share;
  if (bucket.tokens >= 1.0) {
    bucket.tokens -= 1.0;
    decision.admitted = true;
    ++bucket.admitted;
    ++admitted_;
  } else {
    decision.retry_after_hours =
        share > 0.0 ? (1.0 - bucket.tokens) / share : 1.0;
    ++bucket.throttled;
    ++throttled_;
  }
  decision.tokens = bucket.tokens;
  return decision;
}

std::uint64_t TokenBucketTable::admitted_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return admitted_;
}

std::uint64_t TokenBucketTable::throttled_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return throttled_;
}

std::uint64_t TokenBucketTable::evicted_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

double TokenBucketTable::tokens_total() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const auto& [name, bucket] : buckets_) {
    total += std::max(0.0, bucket.tokens);
  }
  return total;
}

std::size_t TokenBucketTable::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return buckets_.size();
}

std::vector<BucketView> TokenBucketTable::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<BucketView> out;
  out.reserve(buckets_.size());
  for (const auto& [name, bucket] : buckets_) {
    BucketView view;
    view.client = name;
    view.weight = weight_locked(name);
    view.tokens = std::max(0.0, bucket.tokens);
    view.rate_per_hour = global_rate_per_hour_;  // refined below
    view.admitted = bucket.admitted;
    view.throttled = bucket.throttled;
    view.last_seen_hours = bucket.last_seen_hours;
    out.push_back(std::move(view));
  }
  // Shares as of each bucket's own last touch would need per-bucket
  // recompute; report against the current active set instead (a debug
  // view, not a decision input).
  double active = 0.0;
  double latest = 0.0;
  for (const BucketView& v : out) {
    latest = std::max(latest, v.last_seen_hours);
  }
  const double cutoff = latest - config_.activity_window_hours;
  for (const BucketView& v : out) {
    if (v.last_seen_hours >= cutoff) {
      active += v.weight;
    }
  }
  for (BucketView& v : out) {
    v.rate_per_hour = active > 0.0
                          ? global_rate_per_hour_ * v.weight / active
                          : global_rate_per_hour_;
  }
  std::sort(out.begin(), out.end(),
            [](const BucketView& a, const BucketView& b) {
              return a.client < b.client;
            });
  return out;
}

}  // namespace mfcp::control
