#include "control/ratekeeper.hpp"

#include <algorithm>
#include <bit>

#include "obs/flight.hpp"
#include "support/check.hpp"

namespace mfcp::control {

std::string to_string(LimitingSignal signal) {
  switch (signal) {
    case LimitingSignal::kNone:
      return "none";
    case LimitingSignal::kQueueDepth:
      return "queue_depth";
    case LimitingSignal::kBatchLatency:
      return "batch_latency";
    case LimitingSignal::kExpiry:
      return "expiry";
    case LimitingSignal::kSloBurn:
      return "slo_burn";
  }
  return "?";
}

Ratekeeper::Ratekeeper(RatekeeperConfig config, const obs::SloConfig& slo)
    : config_(config),
      expiry_budget_(std::max(1e-6, 1.0 - slo.expiry_objective)),
      burn_threshold_(std::max(1e-6, slo.burn_threshold)),
      queue_signal_(config.smoothing_hours),
      wait_signal_(config.smoothing_hours),
      expiry_signal_(config.smoothing_hours),
      burn_signal_(config.smoothing_hours),
      admitted_rate_(config.smoothing_hours),
      rate_per_hour_(std::clamp(config.initial_rate_per_hour,
                                config.min_rate_per_hour,
                                config.max_rate_per_hour)) {
  MFCP_CHECK(config_.min_rate_per_hour > 0.0 &&
                 config_.max_rate_per_hour >= config_.min_rate_per_hour,
             "rate clamp must satisfy 0 < min <= max");
  MFCP_CHECK(config_.decrease_factor > 0.0 && config_.decrease_factor < 1.0,
             "decrease factor must lie in (0, 1)");
  MFCP_CHECK(config_.recovery_step_per_hour > 0.0,
             "recovery step must be positive");
  MFCP_CHECK(config_.release_fraction > 0.0 &&
                 config_.release_fraction < 1.0,
             "release fraction must lie in (0, 1)");
  MFCP_CHECK(config_.queue_target_fraction > 0.0,
             "queue target fraction must be positive");
  status_.rate_per_hour = rate_per_hour_;
}

double Ratekeeper::tick(const RatekeeperSignals& signals) {
  const double now = signals.now_hours;

  const double capacity =
      static_cast<double>(std::max<std::size_t>(1, signals.queue_capacity));
  queue_signal_.observe(now,
                        static_cast<double>(signals.queue_depth) / capacity);
  if (config_.wait_target_hours > 0.0) {
    wait_signal_.observe(now,
                         signals.batch_wait_hours / config_.wait_target_hours);
  }
  const double processed =
      static_cast<double>(signals.batch + signals.expired);
  if (processed > 0.0) {
    // Expiry fraction on the same admitted-task denominator the SLO's
    // expiry SLI uses; rounds with nothing processed carry no evidence.
    expiry_signal_.observe(
        now, static_cast<double>(signals.expired) / processed);
  }
  burn_signal_.observe(now, signals.slo_burn);
  if (signals.batch > 0) {
    admitted_rate_.add(now, static_cast<double>(signals.batch));
  }

  const double queue_pressure =
      queue_signal_.value() / config_.queue_target_fraction;
  const double wait_pressure =
      config_.wait_target_hours > 0.0 ? wait_signal_.value() : 0.0;
  const double expiry_pressure = expiry_signal_.value() / expiry_budget_;
  const double burn_pressure = burn_signal_.value() / burn_threshold_;

  double pressure = queue_pressure;
  LimitingSignal limiting = LimitingSignal::kQueueDepth;
  if (wait_pressure > pressure) {
    pressure = wait_pressure;
    limiting = LimitingSignal::kBatchLatency;
  }
  if (expiry_pressure > pressure) {
    pressure = expiry_pressure;
    limiting = LimitingSignal::kExpiry;
  }
  if (burn_pressure > pressure) {
    pressure = burn_pressure;
    limiting = LimitingSignal::kSloBurn;
  }

  std::uint64_t decreases = 0;
  std::uint64_t recoveries = 0;
  const double previous_rate = rate_per_hour_;
  if (pressure > 1.0) {
    rate_per_hour_ = std::max(config_.min_rate_per_hour,
                              rate_per_hour_ * config_.decrease_factor);
    calm_ticks_ = 0;
    decreases = 1;
  } else if (pressure < config_.release_fraction) {
    limiting = LimitingSignal::kNone;
    ++calm_ticks_;
    if (calm_ticks_ >= config_.recovery_ticks) {
      // Sustained calm: probe upward additively every subsequent tick
      // until something pushes back (AIMD's slow half).
      rate_per_hour_ = std::min(config_.max_rate_per_hour,
                                rate_per_hour_ +
                                    config_.recovery_step_per_hour);
      recoveries = 1;
    }
  } else {
    // Dead band: hold the rate and restart the calm count, so a signal
    // hovering at the threshold neither decreases nor recovers — the
    // hysteresis that prevents flapping.
    calm_ticks_ = 0;
  }

  if (rate_per_hour_ != previous_rate) {
    // Controller moves are rare and diagnostic gold: record old/new rate
    // (double bits) and the limiting signal on the flight recorder, when
    // one is installed process-wide. Write-only — decisions are made.
    if (obs::FlightRecorder* recorder = obs::default_flight()) {
      recorder->record(obs::FlightKind::kRateChange, now,
                       std::bit_cast<std::uint64_t>(previous_rate),
                       std::bit_cast<std::uint64_t>(rate_per_hour_),
                       static_cast<std::uint64_t>(static_cast<int>(limiting)));
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  status_.rate_per_hour = rate_per_hour_;
  status_.limiting = limiting;
  status_.pressure = pressure;
  status_.queue_pressure = queue_pressure;
  status_.wait_pressure = wait_pressure;
  status_.expiry_pressure = expiry_pressure;
  status_.burn_pressure = burn_pressure;
  status_.admitted_rate_per_hour = admitted_rate_.rate_per_hour(now);
  ++status_.ticks;
  status_.decreases += decreases;
  status_.recoveries += recoveries;
  return rate_per_hour_;
}

RatekeeperStatus Ratekeeper::status() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return status_;
}

}  // namespace mfcp::control
