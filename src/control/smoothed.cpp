#include "control/smoothed.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mfcp::control {

SmoothedSignal::SmoothedSignal(double time_constant_hours)
    : tau_(time_constant_hours) {
  MFCP_CHECK(tau_ > 0.0, "smoothing time constant must be positive");
}

void SmoothedSignal::reset(double now_hours, double value) {
  smoothed_ = value;
  raw_ = value;
  last_hours_ = now_hours;
  seen_ = true;
}

void SmoothedSignal::observe(double now_hours, double value) {
  raw_ = value;
  if (!seen_) {
    // First sample pins the filter: starting from an arbitrary zero would
    // make early control decisions depend on warm-up length.
    reset(now_hours, value);
    return;
  }
  const double dt = std::max(0.0, now_hours - last_hours_);
  const double alpha = 1.0 - std::exp(-dt / tau_);
  smoothed_ += alpha * (value - smoothed_);
  last_hours_ = std::max(last_hours_, now_hours);
}

SmoothedRate::SmoothedRate(double time_constant_hours)
    : tau_(time_constant_hours) {
  MFCP_CHECK(tau_ > 0.0, "smoothing time constant must be positive");
}

void SmoothedRate::reset(double now_hours) {
  rate_ = 0.0;
  pending_ = 0.0;
  last_hours_ = now_hours;
  seen_ = true;
}

void SmoothedRate::add(double now_hours, double events) {
  if (!seen_) {
    reset(now_hours);
  }
  const double dt = now_hours - last_hours_;
  if (dt <= 0.0) {
    // Same instant (or clock noise): accumulate; the burst is rated when
    // time next advances, keeping instantaneous rates finite.
    pending_ += events;
    return;
  }
  const double instantaneous = (pending_ + events) / dt;
  const double alpha = 1.0 - std::exp(-dt / tau_);
  rate_ += alpha * (instantaneous - rate_);
  pending_ = 0.0;
  last_hours_ = now_hours;
}

double SmoothedRate::rate_per_hour(double now_hours) const {
  if (!seen_) {
    return 0.0;
  }
  const double dt = std::max(0.0, now_hours - last_hours_);
  return rate_ * std::exp(-dt / tau_);
}

}  // namespace mfcp::control
