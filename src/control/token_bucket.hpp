// Per-client token buckets dividing a global admission rate.
//
// The Ratekeeper emits one scalar — tasks per simulated hour the platform
// can absorb — and this table enforces it per client: each active client
// gets a weighted share of the global rate, replenishing a bounded bucket
// of admission tokens on the simulated clock. A submit spends one token;
// an empty bucket throttles, and the deficit divided by the client's
// replenish rate is the *honest* Retry-After (the same formula the
// queue-pressure shed path uses, see replenish_seconds).
//
// The table is bounded: past `max_clients` resident buckets the least-
// recently-seen client is evicted (its token debt is forgotten — an
// evicted client that returns starts with a fresh full bucket, which
// errs toward admission, never toward stuck throttling). All bucket math
// is on simulated time passed in by the caller, so engine-side admission
// decisions replay deterministically; the mutex only serializes engine
// and HTTP threads, it never orders decisions differently across runs of
// the single-threaded batch engine.
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace mfcp::control {

/// Bucket key applied when a submission carries no client identity.
inline constexpr std::string_view kAnonymousClient = "anonymous";

/// Seconds until `deficit` units replenish at `rate_per_second`, floored
/// at `floor_seconds` and capped at one hour (a zero rate means "not
/// now", not "never" — the controller will recover). Shared by every 429
/// path so Retry-After never drifts between the bucket and pressure-shed
/// formulas.
[[nodiscard]] double replenish_seconds(double deficit, double rate_per_second,
                                       double floor_seconds);

struct TokenBucketConfig {
  /// Resident-bucket bound; LRU eviction past it.
  std::size_t max_clients = 256;
  /// Bucket capacity = the client's rate share over this long (burst
  /// tolerance), but never below min_burst_tokens.
  double burst_hours = 0.05;
  double min_burst_tokens = 2.0;
  /// Weight applied to clients without an explicit set_weight entry.
  double default_weight = 1.0;
  /// A client counts as active (and earns a rate share) while it was seen
  /// within this window.
  double activity_window_hours = 0.25;
  /// Rate before the Ratekeeper publishes one: effectively unthrottled.
  double initial_rate_per_hour = 1e12;
};

/// Outcome of one try_admit.
struct AdmitDecision {
  bool admitted = false;
  /// Simulated hours until the bucket holds a full token again (0 when
  /// admitted).
  double retry_after_hours = 0.0;
  /// Tokens remaining after the decision.
  double tokens = 0.0;
  /// The client's replenish share (tasks per simulated hour) at decision
  /// time.
  double rate_per_hour = 0.0;
};

/// Point-in-time view of one bucket (GET /ratekeeper).
struct BucketView {
  std::string client;
  double weight = 1.0;
  double tokens = 0.0;
  double rate_per_hour = 0.0;
  std::uint64_t admitted = 0;
  std::uint64_t throttled = 0;
  double last_seen_hours = 0.0;
};

class TokenBucketTable {
 public:
  explicit TokenBucketTable(TokenBucketConfig config = {});

  /// Publishes the Ratekeeper's global rate (tasks per simulated hour).
  void set_global_rate(double rate_per_hour, double now_hours);
  [[nodiscard]] double global_rate_per_hour() const;

  /// Pins a client's weight; shares divide proportionally among active
  /// clients. Weight <= 0 resets the client to the default.
  void set_weight(std::string_view client, double weight);

  /// Spends one token from `client`'s bucket (empty id maps to the
  /// anonymous bucket). Touches the LRU and may evict another client.
  AdmitDecision try_admit(std::string_view client, double now_hours);

  [[nodiscard]] std::uint64_t admitted_total() const;
  [[nodiscard]] std::uint64_t throttled_total() const;
  [[nodiscard]] std::uint64_t evicted_total() const;
  /// Sum of tokens across resident buckets (the mfcp_ratekeeper_tokens
  /// gauge; refreshed lazily, so it reflects each bucket's last touch).
  [[nodiscard]] double tokens_total() const;
  [[nodiscard]] std::size_t size() const;

  /// Resident buckets sorted by client name (stable debug output).
  [[nodiscard]] std::vector<BucketView> snapshot() const;

  [[nodiscard]] const TokenBucketConfig& config() const noexcept {
    return config_;
  }

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_refill_hours = 0.0;
    double last_seen_hours = 0.0;
    std::uint64_t admitted = 0;
    std::uint64_t throttled = 0;
    std::list<std::string>::iterator lru;  // position in lru_ (front = hot)
  };

  [[nodiscard]] double weight_locked(const std::string& client) const;
  /// Sum of active-client weights at `now`, including `self` even if its
  /// bucket just appeared.
  [[nodiscard]] double active_weight_locked(double now_hours) const;

  TokenBucketConfig config_;
  mutable std::mutex mutex_;
  double global_rate_per_hour_;
  std::unordered_map<std::string, Bucket> buckets_;
  std::list<std::string> lru_;  // most recently seen at the front
  std::unordered_map<std::string, double> weights_;
  std::uint64_t admitted_ = 0;
  std::uint64_t throttled_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace mfcp::control
