// Ratekeeper: the closed-loop admission controller, modeled on
// FoundationDB's ratekeeper role.
//
// PR 5's SLO burn monitor can say the platform is melting; this is the
// component that acts on it. Every closed matching round the engine
// reports four pressure signals — queue depth, batching delay, expiry
// rate, and SLO burn — and the Ratekeeper folds each through a
// SmoothedSignal, normalizes it so 1.0 means "at the configured limit",
// and applies a multiplicative-decrease / additive-recovery law to the
// one scalar it owns: the global admission rate (tasks per simulated
// hour) that the per-client TokenBucketTable divides and enforces.
//
// Control law, per tick:
//   pressure = max(normalized signals)
//   pressure > 1.0            -> rate *= decrease_factor   (back off fast)
//   pressure < release_fraction
//     for >= recovery_ticks   -> rate += recovery_step     (probe slowly)
//   otherwise                 -> hold                      (dead band)
// The dead band between release_fraction and 1.0 is the hysteresis that
// keeps the controller from flapping when a signal hovers at the
// threshold: decreases need pressure above the trip point, recoveries
// need *sustained* calm strictly below the release point.
//
// Deterministic by construction: tick() is called from the engine's
// single-threaded round loop with simulated timestamps, and every input
// is itself deterministic for a seeded run — so the emitted rate, and
// therefore every token-bucket admission decision, replays exactly (CI
// byte-compares the round journal of two --ratekeeper runs). The mutex
// only protects status() reads from HTTP threads.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>

#include "control/smoothed.hpp"
#include "obs/slo.hpp"

namespace mfcp::control {

/// Which normalized signal produced the current pressure maximum.
enum class LimitingSignal : int {
  kNone = 0,          // below release: nothing limits
  kQueueDepth = 1,    // admission queue filling up
  kBatchLatency = 2,  // rounds closing on stale tasks
  kExpiry = 3,        // tasks dying in queue
  kSloBurn = 4,       // burn-rate rules consuming error budget
};

std::string to_string(LimitingSignal signal);

struct RatekeeperConfig {
  /// Rate published before any pressure has been observed.
  double initial_rate_per_hour = 120.0;
  /// Clamp: the controller never shuts admission entirely (min > 0 keeps
  /// recovery possible and Retry-After finite).
  double min_rate_per_hour = 4.0;
  double max_rate_per_hour = 1e6;

  /// Multiplicative decrease applied while pressure exceeds 1.0.
  double decrease_factor = 0.8;
  /// Additive recovery per calm tick once calm has been sustained.
  double recovery_step_per_hour = 8.0;
  /// Consecutive calm ticks required before recovery starts.
  std::size_t recovery_ticks = 3;
  /// Hysteresis release point: calm means every signal below this
  /// fraction of its trip threshold. Must be < 1.
  double release_fraction = 0.7;

  /// Queue utilization (depth / capacity) treated as pressure 1.0.
  double queue_target_fraction = 0.75;
  /// Round max-wait (simulated hours) treated as pressure 1.0. <= 0
  /// disables the wait signal (callers derive it from the batcher).
  double wait_target_hours = 0.5;
  /// Sensor time constant for all smoothed inputs.
  double smoothing_hours = 0.1;
};

/// One round's worth of observed platform state.
struct RatekeeperSignals {
  double now_hours = 0.0;
  std::size_t queue_depth = 0;
  std::size_t queue_capacity = 1;
  /// Batching delay of the oldest task in the closing round.
  double batch_wait_hours = 0.0;
  /// Tasks matched this round.
  std::uint64_t batch = 0;
  /// Queue expiries since the previous tick.
  std::uint64_t expired = 0;
  /// Max over SLO rules of min(fast, slow) burn — the same both-windows
  /// semantics the monitor's firing rule uses.
  double slo_burn = 0.0;
};

/// Snapshot for GET /ratekeeper and the metric gauges.
struct RatekeeperStatus {
  double rate_per_hour = 0.0;
  LimitingSignal limiting = LimitingSignal::kNone;
  double pressure = 0.0;  // max normalized pressure at the last tick
  double queue_pressure = 0.0;
  double wait_pressure = 0.0;
  double expiry_pressure = 0.0;
  double burn_pressure = 0.0;
  /// Smoothed observed admission throughput (tasks per simulated hour).
  double admitted_rate_per_hour = 0.0;
  std::uint64_t ticks = 0;
  std::uint64_t decreases = 0;
  std::uint64_t recoveries = 0;
};

class Ratekeeper {
 public:
  /// `slo` supplies the expiry error budget and burn threshold the
  /// pressure normalization divides by — the same struct the SloMonitor
  /// evaluates against, so --slo-config retunes both at once.
  explicit Ratekeeper(RatekeeperConfig config = {},
                      const obs::SloConfig& slo = {});

  /// One controller step; engine round loop only. Returns the global
  /// admission rate to publish into the TokenBucketTable.
  double tick(const RatekeeperSignals& signals);

  /// Thread-safe snapshot (HTTP debug route, metric export).
  [[nodiscard]] RatekeeperStatus status() const;

  [[nodiscard]] const RatekeeperConfig& config() const noexcept {
    return config_;
  }

 private:
  RatekeeperConfig config_;
  double expiry_budget_;
  double burn_threshold_;

  SmoothedSignal queue_signal_;
  SmoothedSignal wait_signal_;
  SmoothedSignal expiry_signal_;
  SmoothedSignal burn_signal_;
  SmoothedRate admitted_rate_;

  double rate_per_hour_;
  std::size_t calm_ticks_ = 0;

  mutable std::mutex mutex_;
  RatekeeperStatus status_;  // guarded by mutex_
};

}  // namespace mfcp::control
