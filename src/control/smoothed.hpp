// Smoothed sensors on the simulated clock: the Ratekeeper's input
// primitives, modeled on FoundationDB's Smoother counters.
//
// Every decision the admission controller makes must be a pure function
// of simulated time and observed platform state, so the same seed and
// trace replay to the same admission decisions (the round journal is
// byte-compared in CI). These primitives therefore never read the wall
// clock: callers pass the simulated `now_hours` explicitly, and all
// smoothing math is closed-form exponential decay — no iteration counts,
// no hidden state that depends on call frequency beyond the timestamps
// themselves.
//
//   SmoothedSignal — exponential smoothing of a sampled level (queue
//                    fraction, wait time, burn rate). A sample moves the
//                    estimate toward the observed value by
//                    1 - exp(-dt / tau), so irregular sampling intervals
//                    still produce the same continuous-time filter.
//   SmoothedRate   — event counting with exponential decay, reporting
//                    events per simulated hour. Reads decay toward zero
//                    when no events arrive, so a stalled stream reports a
//                    falling rate instead of freezing at its last burst.
#pragma once

namespace mfcp::control {

/// Exponentially smoothed level of an irregularly sampled signal.
class SmoothedSignal {
 public:
  /// `time_constant_hours` is the 1/e settling time of the filter.
  explicit SmoothedSignal(double time_constant_hours);

  /// Forgets all history and pins the estimate at `value`.
  void reset(double now_hours, double value = 0.0);

  /// Folds one sample in. Out-of-order timestamps clamp dt to zero (the
  /// sample still updates raw() but not the smoothed estimate).
  void observe(double now_hours, double value);

  /// Current smoothed estimate (0 before the first sample).
  [[nodiscard]] double value() const noexcept { return smoothed_; }
  /// The most recent raw sample, unfiltered.
  [[nodiscard]] double raw() const noexcept { return raw_; }
  [[nodiscard]] bool seen() const noexcept { return seen_; }

 private:
  double tau_;
  double smoothed_ = 0.0;
  double raw_ = 0.0;
  double last_hours_ = 0.0;
  bool seen_ = false;
};

/// Exponentially smoothed event rate in events per simulated hour.
class SmoothedRate {
 public:
  explicit SmoothedRate(double time_constant_hours);

  void reset(double now_hours);

  /// Records `events` occurrences at `now_hours`. Events stamped at the
  /// same instant accumulate and fold into the next time-advancing call.
  void add(double now_hours, double events = 1.0);

  /// Rate estimate at `now_hours`, decaying toward zero with no events.
  [[nodiscard]] double rate_per_hour(double now_hours) const;

 private:
  double tau_;
  double rate_ = 0.0;
  double pending_ = 0.0;  // events at exactly last_hours_, not yet rated
  double last_hours_ = 0.0;
  bool seen_ = false;
};

}  // namespace mfcp::control
