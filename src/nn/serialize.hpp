// Model checkpointing: plain-text parameter dump/restore.
//
// Format (line oriented, locale independent):
//   mfcp-mlp 1
//   <layer count>
//   rows cols\n<row-major values ...>   (weight, then bias, per Linear)
#pragma once

#include <iosfwd>
#include <string>

#include "nn/mlp.hpp"

namespace mfcp::nn {

/// Writes all Linear parameters of `model` to the stream.
void save_mlp(const std::string& path, Mlp& model);
void save_mlp(std::ostream& os, Mlp& model);

/// Restores parameters into an Mlp with an identical architecture.
/// Throws on shape or format mismatch.
void load_mlp(const std::string& path, Mlp& model);
void load_mlp(std::istream& is, Mlp& model);

}  // namespace mfcp::nn
