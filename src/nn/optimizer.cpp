#include "nn/optimizer.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mfcp::nn {

Optimizer::Optimizer(std::vector<Variable> params)
    : params_(std::move(params)) {
  for (const auto& p : params_) {
    MFCP_CHECK(p.requires_grad(), "optimizer over non-trainable parameter");
  }
}

void Optimizer::zero_grad() {
  for (auto& p : params_) {
    p.zero_grad();
  }
}

Sgd::Sgd(std::vector<Variable> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {
  MFCP_CHECK(lr > 0.0, "learning rate must be positive");
  velocity_.resize(params_.size());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p.grad().empty()) {
      continue;
    }
    Matrix update = p.grad();
    if (weight_decay_ != 0.0) {
      // Decoupled decay: shrink weights directly, not through the gradient.
      p.mutable_value() *= (1.0 - lr_ * weight_decay_);
    }
    if (momentum_ != 0.0) {
      if (velocity_[i].empty()) {
        velocity_[i] = Matrix::zeros(update.rows(), update.cols());
      }
      velocity_[i] *= momentum_;
      velocity_[i] += update;
      update = velocity_[i];
    }
    update *= -lr_;
    p.mutable_value() += update;
  }
}

Adam::Adam(std::vector<Variable> params, double lr, double beta1, double beta2,
           double eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {
  MFCP_CHECK(lr > 0.0, "learning rate must be positive");
  MFCP_CHECK(beta1 >= 0.0 && beta1 < 1.0, "beta1 out of range");
  MFCP_CHECK(beta2 >= 0.0 && beta2 < 1.0, "beta2 out of range");
  m_.resize(params_.size());
  v_.resize(params_.size());
}

void Adam::step() {
  ++t_;
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < params_.size(); ++i) {
    auto& p = params_[i];
    if (p.grad().empty()) {
      continue;
    }
    const Matrix& g = p.grad();
    if (m_[i].empty()) {
      m_[i] = Matrix::zeros(g.rows(), g.cols());
      v_[i] = Matrix::zeros(g.rows(), g.cols());
    }
    Matrix& m = m_[i];
    Matrix& v = v_[i];
    Matrix& w = p.mutable_value();
    for (std::size_t k = 0; k < g.size(); ++k) {
      m[k] = beta1_ * m[k] + (1.0 - beta1_) * g[k];
      v[k] = beta2_ * v[k] + (1.0 - beta2_) * g[k] * g[k];
      const double mhat = m[k] / bc1;
      const double vhat = v[k] / bc2;
      w[k] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
    }
  }
}

}  // namespace mfcp::nn
