// Weight initialization schemes.
#pragma once

#include "linalg/matrix.hpp"
#include "support/rng.hpp"

namespace mfcp::nn {

/// Xavier/Glorot uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out)).
/// Suited to tanh/sigmoid nets.
Matrix xavier_uniform(std::size_t rows, std::size_t cols, std::size_t fan_in,
                      std::size_t fan_out, Rng& rng);

/// He/Kaiming normal: N(0, sqrt(2 / fan_in)). Suited to ReLU nets.
Matrix he_normal(std::size_t rows, std::size_t cols, std::size_t fan_in,
                 Rng& rng);

/// All-zero matrix (bias init).
Matrix zeros_init(std::size_t rows, std::size_t cols);

}  // namespace mfcp::nn
