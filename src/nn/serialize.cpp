#include "nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "support/check.hpp"

namespace mfcp::nn {

namespace {

void write_matrix(std::ostream& os, const Matrix& m) {
  os << m.rows() << ' ' << m.cols() << '\n';
  os << std::setprecision(17);
  for (std::size_t i = 0; i < m.size(); ++i) {
    os << m[i] << (i + 1 == m.size() ? '\n' : ' ');
  }
}

Matrix read_matrix(std::istream& is) {
  std::size_t rows = 0;
  std::size_t cols = 0;
  MFCP_CHECK(static_cast<bool>(is >> rows >> cols),
             "corrupt checkpoint: missing matrix header");
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    MFCP_CHECK(static_cast<bool>(is >> m[i]),
               "corrupt checkpoint: missing matrix values");
  }
  return m;
}

}  // namespace

void save_mlp(const std::string& path, Mlp& model) {
  std::ofstream f(path);
  MFCP_CHECK(f.good(), "cannot open checkpoint file for writing: " + path);
  save_mlp(f, model);
}

void save_mlp(std::ostream& os, Mlp& model) {
  const auto layers = model.linear_layers();
  os << "mfcp-mlp 1\n" << layers.size() << '\n';
  for (Linear* lin : layers) {
    write_matrix(os, lin->weight().value());
    write_matrix(os, lin->bias().value());
  }
}

void load_mlp(const std::string& path, Mlp& model) {
  std::ifstream f(path);
  MFCP_CHECK(f.good(), "cannot open checkpoint file for reading: " + path);
  load_mlp(f, model);
}

void load_mlp(std::istream& is, Mlp& model) {
  std::string magic;
  int version = 0;
  MFCP_CHECK(static_cast<bool>(is >> magic >> version) &&
                 magic == "mfcp-mlp" && version == 1,
             "not an mfcp-mlp v1 checkpoint");
  std::size_t count = 0;
  MFCP_CHECK(static_cast<bool>(is >> count), "corrupt checkpoint header");
  const auto layers = model.linear_layers();
  MFCP_CHECK(count == layers.size(),
             "checkpoint layer count does not match model architecture");
  for (Linear* lin : layers) {
    Matrix w = read_matrix(is);
    Matrix b = read_matrix(is);
    MFCP_CHECK(w.same_shape(lin->weight().value()),
               "checkpoint weight shape mismatch");
    MFCP_CHECK(b.same_shape(lin->bias().value()),
               "checkpoint bias shape mismatch");
    lin->weight().mutable_value() = std::move(w);
    lin->bias().mutable_value() = std::move(b);
  }
}

}  // namespace mfcp::nn
