#include "nn/activations.hpp"

#include "autograd/ops.hpp"
#include "support/check.hpp"

namespace mfcp::nn {

Variable apply_activation(Activation act, const Variable& x) {
  using namespace autograd;
  switch (act) {
    case Activation::kRelu:
      return relu(x);
    case Activation::kTanh:
      return tanh_op(x);
    case Activation::kSigmoid:
      return sigmoid(x);
    case Activation::kSoftplus:
      return softplus(x);
    case Activation::kIdentity:
      return x;
  }
  MFCP_CHECK(false, "unknown activation");
  return x;  // unreachable
}

Variable ActivationLayer::forward(const Variable& x) {
  return apply_activation(act_, x);
}

std::string ActivationLayer::name() const {
  switch (act_) {
    case Activation::kRelu:
      return "ReLU";
    case Activation::kTanh:
      return "Tanh";
    case Activation::kSigmoid:
      return "Sigmoid";
    case Activation::kSoftplus:
      return "Softplus";
    case Activation::kIdentity:
      return "Identity";
  }
  return "Unknown";
}

}  // namespace mfcp::nn
