// Parameter-free activation layers.
#pragma once

#include "nn/layer.hpp"

namespace mfcp::nn {

enum class Activation { kRelu, kTanh, kSigmoid, kSoftplus, kIdentity };

/// Applies the chosen element-wise nonlinearity to a Variable.
Variable apply_activation(Activation act, const Variable& x);

/// Layer adapter around apply_activation.
class ActivationLayer final : public Layer {
 public:
  explicit ActivationLayer(Activation act) : act_(act) {}

  Variable forward(const Variable& x) override;
  std::vector<Variable> parameters() override { return {}; }
  [[nodiscard]] std::string name() const override;

  [[nodiscard]] Activation kind() const noexcept { return act_; }

 private:
  Activation act_;
};

}  // namespace mfcp::nn
