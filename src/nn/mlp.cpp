#include "nn/mlp.hpp"

#include "support/check.hpp"

namespace mfcp::nn {

Mlp::Mlp(MlpConfig config, Rng& rng) : config_(std::move(config)) {
  MFCP_CHECK(config_.input_dim > 0, "input dim must be positive");
  MFCP_CHECK(config_.output_dim > 0, "output dim must be positive");
  std::size_t prev = config_.input_dim;
  for (std::size_t width : config_.hidden) {
    MFCP_CHECK(width > 0, "hidden width must be positive");
    layers_.push_back(std::make_unique<Linear>(prev, width, rng));
    layers_.push_back(
        std::make_unique<ActivationLayer>(config_.hidden_activation));
    prev = width;
  }
  layers_.push_back(std::make_unique<Linear>(prev, config_.output_dim, rng));
  if (config_.output_activation != Activation::kIdentity) {
    layers_.push_back(
        std::make_unique<ActivationLayer>(config_.output_activation));
  }
}

Variable Mlp::forward(const Variable& x) {
  Variable h = x;
  for (auto& layer : layers_) {
    h = layer->forward(h);
  }
  return h;
}

Matrix Mlp::predict(const Matrix& x) {
  Variable in(x, /*requires_grad=*/false);
  return forward(in).value();
}

std::vector<Variable> Mlp::parameters() {
  std::vector<Variable> params;
  for (auto& layer : layers_) {
    for (auto& p : layer->parameters()) {
      params.push_back(p);
    }
  }
  return params;
}

std::size_t Mlp::parameter_count() {
  std::size_t n = 0;
  for (auto& p : parameters()) {
    n += p.value().size();
  }
  return n;
}

std::vector<Linear*> Mlp::linear_layers() {
  std::vector<Linear*> out;
  for (auto& layer : layers_) {
    if (auto* lin = dynamic_cast<Linear*>(layer.get())) {
      out.push_back(lin);
    }
  }
  return out;
}

}  // namespace mfcp::nn
