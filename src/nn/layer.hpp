// Layer interface for the predictor networks.
//
// Parameters are persistent autograd leaves: forward() re-links them into a
// fresh graph each call, backward() accumulates into their grads, and the
// optimizer updates their values in place.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "autograd/variable.hpp"

namespace mfcp::nn {

using autograd::Variable;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Maps a (batch x in) activation to (batch x out).
  virtual Variable forward(const Variable& x) = 0;

  /// Trainable parameter handles (shared with the layer's state).
  virtual std::vector<Variable> parameters() = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

}  // namespace mfcp::nn
