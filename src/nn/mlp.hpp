// Multi-layer perceptron — the predictor architecture of the paper ("we
// only utilized fully connected layers"). One Mlp maps task features
// z (batch x d) to a scalar head (batch x 1); the execution-time predictor
// m_ω uses a softplus output (t̂ > 0), the reliability predictor m_φ uses a
// sigmoid output (â in (0,1)).
#pragma once

#include <memory>

#include "nn/activations.hpp"
#include "nn/linear.hpp"

namespace mfcp::nn {

struct MlpConfig {
  std::size_t input_dim = 8;
  std::vector<std::size_t> hidden = {32, 32};
  std::size_t output_dim = 1;
  Activation hidden_activation = Activation::kRelu;
  Activation output_activation = Activation::kIdentity;
};

class Mlp {
 public:
  Mlp(MlpConfig config, Rng& rng);

  /// Forward pass building a fresh autograd graph.
  Variable forward(const Variable& x);

  /// Convenience: wraps a constant input and returns the output value.
  Matrix predict(const Matrix& x);

  /// All trainable parameter handles, layer order.
  std::vector<Variable> parameters();

  [[nodiscard]] const MlpConfig& config() const noexcept { return config_; }

  /// Total number of scalar parameters.
  [[nodiscard]] std::size_t parameter_count();

  /// Access to the underlying linear layers (serialization).
  [[nodiscard]] std::vector<Linear*> linear_layers();

 private:
  MlpConfig config_;
  std::vector<std::unique_ptr<Layer>> layers_;
};

}  // namespace mfcp::nn
