#include "nn/init.hpp"

#include <cmath>

namespace mfcp::nn {

Matrix xavier_uniform(std::size_t rows, std::size_t cols, std::size_t fan_in,
                      std::size_t fan_out, Rng& rng) {
  const double a =
      std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng.uniform(-a, a);
  }
  return m;
}

Matrix he_normal(std::size_t rows, std::size_t cols, std::size_t fan_in,
                 Rng& rng) {
  const double s = std::sqrt(2.0 / static_cast<double>(fan_in));
  Matrix m(rows, cols);
  for (std::size_t i = 0; i < m.size(); ++i) {
    m[i] = rng.normal(0.0, s);
  }
  return m;
}

Matrix zeros_init(std::size_t rows, std::size_t cols) {
  return Matrix::zeros(rows, cols);
}

}  // namespace mfcp::nn
