#include "nn/loss.hpp"

#include <cmath>

#include "support/check.hpp"

namespace mfcp::nn {

Variable mse(const Variable& pred, const Matrix& target) {
  return autograd::mse_loss(pred, target);
}

Variable huber(const Variable& pred, const Matrix& target, double delta) {
  MFCP_CHECK(pred.value().same_shape(target), "huber: shape mismatch");
  MFCP_CHECK(delta > 0.0, "huber threshold must be positive");
  const std::size_t n = target.size();

  auto node = std::make_shared<autograd::Node>();
  node->parents = {pred.node()};
  node->requires_grad = pred.requires_grad();
  Matrix out(1, 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = pred.value()[i] - target[i];
    const double a = std::abs(d);
    out[0] += a <= delta ? 0.5 * d * d : delta * (a - 0.5 * delta);
  }
  out[0] /= static_cast<double>(n);
  node->value = std::move(out);
  node->backward_fn = [target, delta, n](const autograd::Node& nd) {
    Matrix g(target.rows(), target.cols());
    const double c = nd.grad[0] / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
      const double d = nd.parents[0]->value[i] - target[i];
      g[i] = c * (std::abs(d) <= delta ? d : (d > 0 ? delta : -delta));
    }
    nd.parents[0]->accumulate(g);
  };
  return Variable(node);
}

double mse_value(const Matrix& pred, const Matrix& target) {
  MFCP_CHECK(pred.same_shape(target), "mse_value: shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred[i] - target[i];
    acc += d * d;
  }
  return acc / static_cast<double>(pred.size());
}

double mae_value(const Matrix& pred, const Matrix& target) {
  MFCP_CHECK(pred.same_shape(target), "mae_value: shape mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    acc += std::abs(pred[i] - target[i]);
  }
  return acc / static_cast<double>(pred.size());
}

}  // namespace mfcp::nn
