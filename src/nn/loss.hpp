// Regression losses for the two-stage (TSM) baseline and prediction
// diagnostics.
#pragma once

#include "autograd/ops.hpp"

namespace mfcp::nn {

using autograd::Variable;

/// Mean squared error (paper Eq. 1). Returns a 1x1 Variable.
Variable mse(const Variable& pred, const Matrix& target);

/// Huber (smooth-L1) loss with threshold `delta` — robustness diagnostic.
Variable huber(const Variable& pred, const Matrix& target, double delta);

/// Non-differentiable metrics for evaluation.
double mse_value(const Matrix& pred, const Matrix& target);
double mae_value(const Matrix& pred, const Matrix& target);

}  // namespace mfcp::nn
