// Fully connected layer y = x W^T + b.
#pragma once

#include "nn/layer.hpp"
#include "support/rng.hpp"

namespace mfcp::nn {

class Linear final : public Layer {
 public:
  /// He-normal weights, zero bias.
  Linear(std::size_t in, std::size_t out, Rng& rng);

  /// Explicit parameters (weight: out x in, bias: 1 x out).
  Linear(Matrix weight, Matrix bias);

  Variable forward(const Variable& x) override;
  std::vector<Variable> parameters() override;
  [[nodiscard]] std::string name() const override { return "Linear"; }

  [[nodiscard]] std::size_t in_features() const noexcept { return in_; }
  [[nodiscard]] std::size_t out_features() const noexcept { return out_; }

  [[nodiscard]] Variable& weight() noexcept { return weight_; }
  [[nodiscard]] Variable& bias() noexcept { return bias_; }

 private:
  std::size_t in_;
  std::size_t out_;
  Variable weight_;
  Variable bias_;
};

}  // namespace mfcp::nn
