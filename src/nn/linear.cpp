#include "nn/linear.hpp"

#include "autograd/ops.hpp"
#include "nn/init.hpp"
#include "support/check.hpp"

namespace mfcp::nn {

Linear::Linear(std::size_t in, std::size_t out, Rng& rng)
    : in_(in),
      out_(out),
      weight_(he_normal(out, in, in, rng), /*requires_grad=*/true),
      bias_(zeros_init(1, out), /*requires_grad=*/true) {
  MFCP_CHECK(in > 0 && out > 0, "Linear needs positive dimensions");
}

Linear::Linear(Matrix weight, Matrix bias)
    : in_(weight.cols()),
      out_(weight.rows()),
      weight_(std::move(weight), /*requires_grad=*/true),
      bias_(std::move(bias), /*requires_grad=*/true) {
  MFCP_CHECK(bias_.rows() == 1 && bias_.cols() == out_,
             "bias must be 1 x out");
}

Variable Linear::forward(const Variable& x) {
  MFCP_CHECK(x.cols() == in_, "Linear input width mismatch");
  using namespace autograd;
  return add_row_broadcast(matmul(x, transpose(weight_)), bias_);
}

std::vector<Variable> Linear::parameters() { return {weight_, bias_}; }

}  // namespace mfcp::nn
