// First-order parameter optimizers.
//
// Optimizers hold shared handles to the model's parameter Variables; step()
// consumes whatever gradients backward passes accumulated since the last
// zero_grad(). This supports MFCP's alternating schedule (fix φ while
// stepping ω and vice versa) by simply building two optimizers over the two
// parameter sets.
#pragma once

#include <vector>

#include "autograd/variable.hpp"

namespace mfcp::nn {

using autograd::Variable;

class Optimizer {
 public:
  explicit Optimizer(std::vector<Variable> params);
  virtual ~Optimizer() = default;

  /// Applies one update using the accumulated gradients. Parameters whose
  /// gradient is empty (untouched by backward) are skipped.
  virtual void step() = 0;

  /// Clears gradients of all managed parameters.
  void zero_grad();

  [[nodiscard]] const std::vector<Variable>& parameters() const noexcept {
    return params_;
  }

 protected:
  std::vector<Variable> params_;
};

/// SGD with optional momentum and decoupled weight decay.
class Sgd final : public Optimizer {
 public:
  Sgd(std::vector<Variable> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);

  void step() override;

  [[nodiscard]] double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr) noexcept { lr_ = lr; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::vector<Matrix> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  Adam(std::vector<Variable> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8);

  void step() override;

  [[nodiscard]] double learning_rate() const noexcept { return lr_; }
  void set_learning_rate(double lr) noexcept { lr_ = lr; }

 private:
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  std::size_t t_ = 0;
  std::vector<Matrix> m_;
  std::vector<Matrix> v_;
};

}  // namespace mfcp::nn
