// Write-ahead task log: the durability half of the /submit contract.
//
// Every task lifecycle transition (accepted / dispatched / expired /
// rejected) is appended as one length+CRC32-framed binary record *before*
// the effect becomes externally visible — for accepted records, before the
// gateway's 200 goes out. On restart, replaying the log and subtracting
// terminal records yields exactly the set of acked-but-unfinished tasks,
// which the engine pushes back into the admission queue so a SIGKILL never
// voids an acknowledgement.
//
// Frame format (little-endian, fixed 49-byte payload):
//
//   ┌──────────┬──────────┬─────────────────────────────────────────┐
//   │ len u32  │ crc u32  │ payload (len bytes)                     │
//   └──────────┴──────────┴─────────────────────────────────────────┘
//   payload:  type u8 | seq u64 | task_id u64 | hours f64 |
//             deadline_hours f64 | family u8 | dataset u8 |
//             depth u16 | width u16 | batch u16 | dataset_fraction f64
//
// The CRC (IEEE 802.3, reflected) covers the payload only. A torn tail —
// a partial frame at the end of the newest segment, the signature of a
// crash mid-write — is truncated at the first bad frame and never fatal;
// a bad frame anywhere else is reported as corruption but still only ends
// that segment's scan.
//
// Appends go straight to the segment fd with one write() per frame, so a
// SIGKILL loses nothing that was acked; fsync runs every `fsync_every`
// records (group commit) to bound what a *machine* crash can lose without
// putting a disk flush on every submit.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/task.hpp"

namespace mfcp::storage {

/// Task lifecycle record kinds. kAccepted carries the full descriptor;
/// terminal kinds only need the id (matching is by id, not order — the
/// gateway thread may append accepted slightly after the engine's
/// terminal record for the same task).
enum class WalRecordType : std::uint8_t {
  kAccepted = 1,
  kDispatched = 2,
  kExpired = 3,
  kRejected = 4,
};

[[nodiscard]] bool is_terminal(WalRecordType type) noexcept;
[[nodiscard]] const char* to_string(WalRecordType type) noexcept;

/// One framed log record. `seq` is assigned by TaskWal::append and is
/// strictly monotone across segments.
struct WalRecord {
  WalRecordType type = WalRecordType::kAccepted;
  std::uint64_t seq = 0;
  std::uint64_t task_id = 0;
  double hours = 0.0;           // event time on the simulated clock
  double deadline_hours = 0.0;  // absolute deadline (accepted records)
  sim::TaskDescriptor task;     // meaningful for accepted records only
};

/// Fixed encoded payload size (see the frame diagram above).
inline constexpr std::size_t kWalPayloadBytes = 49;
/// Frame header: length + CRC.
inline constexpr std::size_t kWalHeaderBytes = 8;

/// IEEE 802.3 CRC32 (reflected, init/final 0xFFFFFFFF) over `n` bytes.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t n) noexcept;

/// Encodes `rec` into `out` (exactly kWalPayloadBytes).
void encode_wal_payload(const WalRecord& rec,
                        unsigned char out[kWalPayloadBytes]) noexcept;
/// Decodes a payload; returns false when the type byte is unknown.
[[nodiscard]] bool decode_wal_payload(const unsigned char* data,
                                      std::size_t n, WalRecord& out) noexcept;

struct WalConfig {
  std::string dir;  // segment directory (created if missing)
  /// Rotate to a new segment once the current one passes this size.
  std::size_t segment_bytes = 4u << 20;
  /// Group commit: fsync after every N appended records. 1 = sync every
  /// record (strongest), 0 = never fsync (the OS page cache still makes
  /// appends SIGKILL-safe; only a machine crash can lose them).
  std::size_t fsync_every = 32;
  /// First sequence number to assign and first segment index to write —
  /// recovery hands these in so the log continues where the scan ended.
  std::uint64_t start_seq = 1;
  std::uint32_t start_segment = 1;
};

/// Append side of the WAL. Thread-safe: the gateway's HTTP workers append
/// accepted records while the engine thread appends terminal ones.
class TaskWal {
 public:
  explicit TaskWal(WalConfig config);
  ~TaskWal();
  TaskWal(const TaskWal&) = delete;
  TaskWal& operator=(const TaskWal&) = delete;

  /// Appends one record (seq is assigned here) and returns its sequence
  /// number. The frame is written to the segment before returning; fsync
  /// runs when the group-commit cadence is due.
  std::uint64_t append(WalRecord rec);

  /// Forces an fsync of the current segment.
  void sync();

  struct Stats {
    std::uint64_t records = 0;
    std::uint64_t bytes = 0;
    std::uint64_t fsyncs = 0;
    std::uint64_t segments = 0;  // segments opened by this instance
    std::uint64_t last_seq = 0;  // 0 until the first append
  };
  [[nodiscard]] Stats stats() const;

  /// Optional telemetry: appended bytes and fsyncs as monotone counters.
  void bind_metrics(obs::Counter* bytes, obs::Counter* fsyncs) noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    bytes_counter_ = bytes;
    fsync_counter_ = fsyncs;
  }

 private:
  void open_segment_locked();
  void sync_locked();

  WalConfig config_;
  mutable std::mutex mutex_;
  int fd_ = -1;
  std::uint32_t segment_index_ = 0;
  std::size_t segment_written_ = 0;
  std::size_t unsynced_ = 0;  // records since the last fsync
  std::uint64_t next_seq_ = 1;
  Stats stats_;
  obs::Counter* bytes_counter_ = nullptr;
  obs::Counter* fsync_counter_ = nullptr;
};

/// Result of scanning every segment in a WAL directory, oldest first.
struct WalScanResult {
  std::vector<WalRecord> records;    // every valid record, log order
  std::uint64_t last_seq = 0;        // highest sequence seen
  std::uint32_t last_segment = 0;    // highest segment index present
  std::uint32_t next_segment = 1;    // where a fresh TaskWal should write
  std::uint64_t valid_bytes = 0;     // bytes covered by valid frames
  std::uint64_t truncated_bytes = 0; // torn tail dropped from the newest
  std::uint64_t corrupt_frames = 0;  // bad frames before a segment's end
  bool torn_tail = false;            // the newest segment ended mid-frame
};

/// Scans `dir`'s wal-*.log segments in index order, validating every
/// frame (length bounds, CRC, known type). A bad frame ends that
/// segment's scan; in the newest segment it is a torn tail and — when
/// `truncate_torn_tail` — the file is truncated back to the last valid
/// frame so the next scan is clean. Missing directory = empty log.
[[nodiscard]] WalScanResult scan_wal(const std::string& dir,
                                     bool truncate_torn_tail);

/// The acked-but-unterminal task set: accepted records with no matching
/// dispatched/expired/rejected record, in acceptance order. These are
/// exactly the tasks recovery must replay into the admission queue.
[[nodiscard]] std::vector<WalRecord> outstanding_tasks(
    const WalScanResult& scan);

/// Segment filename for index `i` (wal-%08u.log).
[[nodiscard]] std::string wal_segment_name(std::uint32_t index);

}  // namespace mfcp::storage
