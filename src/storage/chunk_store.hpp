// Time-partitioned on-disk store for round-journal records and task
// traces: JSONL lines routed into fixed sim-time-width chunks.
//
// Layout: chunk-<k>.jsonl holds every record whose timestamp falls in
// [k * chunk_hours, (k+1) * chunk_hours). Record timestamps are
// nondecreasing (the engine's simulated clock), so at most one chunk is
// ever open for appends; when time crosses into the next window the open
// chunk is sealed with an index footer line
//
//   #mfcp-chunk-index v1 chunk=<k> records=<n> min_hours=<a>
//       max_hours=<b> payload_bytes=<c>         (one line on disk)
//
// and the next chunk opens. Retention evicts whole chunks, oldest first,
// past a chunk-count or total-byte budget — dropping a chunk loses a
// bounded, known time window, never a record in the middle of one.
//
// Chunk ids derive from absolute simulated time, so a restarted process
// (whose clock resumes from the recovered checkpoint) lands back in the
// right chunk; the newest chunk's footer is stripped on reopen and
// re-appended at the next seal, making sealing idempotent across
// restarts. Queries (GET /journal?from=&to=) read the chunk files
// overlapping the window and filter per record on the timestamp field
// embedded in the line — exact across chunk boundaries and restarts.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace mfcp::storage {

struct ChunkStoreConfig {
  std::string dir;           // created if missing
  double chunk_hours = 1.0;  // fixed sim-time width per chunk
  /// Retention: evict oldest chunks past this many on disk (0 = keep
  /// all), or once their files total more than max_bytes (0 = no byte
  /// budget). The open chunk is never evicted.
  std::size_t max_chunks = 64;
  std::uint64_t max_bytes = 0;
  /// JSON key whose numeric value timestamps a record; used to filter
  /// queries per record and to rebuild footers after a restart.
  std::string time_field = "close_hours";
};

inline constexpr const char* kChunkFooterMagic = "#mfcp-chunk-index v1";

class ChunkStore {
 public:
  explicit ChunkStore(ChunkStoreConfig config);
  ~ChunkStore();
  ChunkStore(const ChunkStore&) = delete;
  ChunkStore& operator=(const ChunkStore&) = delete;

  /// Appends one JSONL record (no trailing newline) stamped at `hours`.
  /// Timestamps must be nondecreasing across calls. Thread-safe.
  void append(double hours, std::string_view jsonl_line);

  /// Every stored record with time_field in [from_hours, to_hours],
  /// oldest first, across chunk boundaries. Records in evicted chunks
  /// are gone (bounded retention is the contract, see above).
  [[nodiscard]] std::vector<std::string> query(double from_hours,
                                               double to_hours) const;

  /// Flushes the open chunk's buffered writes to its file.
  void flush();

  struct Stats {
    std::uint64_t chunks = 0;    // on disk now (sealed + open)
    std::uint64_t sealed = 0;    // sealed by this instance
    std::uint64_t evicted = 0;   // evicted by this instance
    std::uint64_t records = 0;   // appended by this instance
    std::uint64_t bytes = 0;     // payload bytes on disk now
    std::int64_t open_chunk = -1;  // id of the open chunk (-1 = none)
  };
  [[nodiscard]] Stats stats() const;

  void bind_metrics(obs::Counter* chunks) noexcept {
    std::lock_guard<std::mutex> lock(mutex_);
    chunks_counter_ = chunks;
  }

  [[nodiscard]] const ChunkStoreConfig& config() const noexcept {
    return config_;
  }

  /// Chunk filename for id `k` (chunk-%08lld.jsonl).
  [[nodiscard]] static std::string chunk_name(std::int64_t k);

 private:
  struct ChunkMeta {
    std::uint64_t records = 0;
    std::uint64_t payload_bytes = 0;
    double min_hours = 0.0;
    double max_hours = 0.0;
    std::uint64_t file_bytes = 0;  // payload + footer, for the byte budget
    bool sealed = false;
  };

  [[nodiscard]] std::int64_t chunk_id(double hours) const noexcept;
  [[nodiscard]] std::string chunk_path(std::int64_t k) const;
  void open_chunk_locked(std::int64_t k);
  void seal_chunk_locked();
  void enforce_retention_locked();
  /// Extracts the time_field value from a JSONL line; false if absent.
  [[nodiscard]] bool line_hours(std::string_view line,
                                double& hours) const;

  ChunkStoreConfig config_;
  mutable std::mutex mutex_;
  std::map<std::int64_t, ChunkMeta> chunks_;  // ordered: oldest first
  std::int64_t open_chunk_ = -1;
  int fd_ = -1;
  std::uint64_t sealed_ = 0;
  std::uint64_t evicted_ = 0;
  std::uint64_t appended_ = 0;
  obs::Counter* chunks_counter_ = nullptr;
};

}  // namespace mfcp::storage
