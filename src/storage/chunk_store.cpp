#include "storage/chunk_store.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "support/check.hpp"
#include "support/log.hpp"

namespace mfcp::storage {

namespace fs = std::filesystem;

namespace {

/// Parses "chunk-%08lld.jsonl"; returns false for anything else.
bool parse_chunk_name(const std::string& name, std::int64_t& k) {
  if (name.rfind("chunk-", 0) != 0 || name.size() < 13 ||
      name.compare(name.size() - 6, 6, ".jsonl") != 0) {
    return false;
  }
  const std::string digits = name.substr(6, name.size() - 12);
  if (digits.empty()) {
    return false;
  }
  std::size_t i = digits[0] == '-' ? 1 : 0;
  if (i == digits.size()) {
    return false;
  }
  std::int64_t v = 0;
  for (; i < digits.size(); ++i) {
    if (digits[i] < '0' || digits[i] > '9') {
      return false;
    }
    v = v * 10 + (digits[i] - '0');
  }
  k = digits[0] == '-' ? -v : v;
  return true;
}

}  // namespace

std::string ChunkStore::chunk_name(std::int64_t k) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "chunk-%08lld.jsonl",
                static_cast<long long>(k));
  return buf;
}

std::int64_t ChunkStore::chunk_id(double hours) const noexcept {
  return static_cast<std::int64_t>(
      std::floor(hours / config_.chunk_hours));
}

std::string ChunkStore::chunk_path(std::int64_t k) const {
  return (fs::path(config_.dir) / chunk_name(k)).string();
}

bool ChunkStore::line_hours(std::string_view line, double& hours) const {
  const std::string key = "\"" + config_.time_field + "\":";
  const std::size_t pos = line.find(key);
  if (pos == std::string_view::npos) {
    return false;
  }
  // The value is a bare JSON number; strtod stops at the delimiter.
  char buf[64];
  const std::size_t start = pos + key.size();
  const std::size_t n = std::min(line.size() - start, sizeof(buf) - 1);
  std::memcpy(buf, line.data() + start, n);
  buf[n] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end == buf) {
    return false;
  }
  hours = v;
  return true;
}

ChunkStore::ChunkStore(ChunkStoreConfig config)
    : config_(std::move(config)) {
  MFCP_CHECK(!config_.dir.empty(), "chunk store needs a directory");
  MFCP_CHECK(config_.chunk_hours > 0.0, "chunk width must be positive");
  fs::create_directories(config_.dir);

  // Rebuild chunk metadata from disk: sealed chunks are summarized by
  // their footers in principle, but a full line scan is cheap at startup
  // and also recovers chunks whose footer never landed.
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(config_.dir, ec)) {
    std::int64_t k = 0;
    if (!parse_chunk_name(entry.path().filename().string(), k)) {
      continue;
    }
    ChunkMeta meta;
    std::ifstream is(entry.path());
    std::string line;
    while (std::getline(is, line)) {
      if (line.rfind(kChunkFooterMagic, 0) == 0) {
        meta.sealed = true;
        continue;  // footer carries no payload
      }
      double h = 0.0;
      if (line_hours(line, h)) {
        meta.min_hours = meta.records == 0 ? h : std::min(meta.min_hours, h);
        meta.max_hours = meta.records == 0 ? h : std::max(meta.max_hours, h);
      }
      ++meta.records;
      meta.payload_bytes += line.size() + 1;
    }
    meta.file_bytes = static_cast<std::uint64_t>(
        fs::file_size(entry.path(), ec));
    chunks_[k] = meta;
  }
  // The newest chunk reopens for appends: strip its footer (sealing is
  // re-done, idempotently, at the next window crossing).
  if (!chunks_.empty()) {
    const std::int64_t newest = chunks_.rbegin()->first;
    ChunkMeta& meta = chunks_[newest];
    if (meta.sealed) {
      fs::resize_file(chunk_path(newest), meta.payload_bytes, ec);
      meta.sealed = false;
      meta.file_bytes = meta.payload_bytes;
    }
    open_chunk_ = newest;
  }
}

ChunkStore::~ChunkStore() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void ChunkStore::open_chunk_locked(std::int64_t k) {
  if (fd_ >= 0) {
    ::close(fd_);
  }
  const std::string path = chunk_path(k);
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  MFCP_CHECK(fd_ >= 0, "cannot open journal chunk " + path);
  open_chunk_ = k;
  if (chunks_.emplace(k, ChunkMeta{}).second && chunks_counter_ != nullptr) {
    chunks_counter_->add(1);
  }
}

void ChunkStore::seal_chunk_locked() {
  if (open_chunk_ < 0) {
    return;
  }
  ChunkMeta& meta = chunks_[open_chunk_];
  char footer[192];
  const int n = std::snprintf(
      footer, sizeof(footer),
      "%s chunk=%lld records=%llu min_hours=%.17g max_hours=%.17g "
      "payload_bytes=%llu\n",
      kChunkFooterMagic, static_cast<long long>(open_chunk_),
      static_cast<unsigned long long>(meta.records), meta.min_hours,
      meta.max_hours, static_cast<unsigned long long>(meta.payload_bytes));
  if (fd_ < 0) {
    open_chunk_locked(open_chunk_);
  }
  std::size_t off = 0;
  while (off < static_cast<std::size_t>(n)) {
    const ssize_t w = ::write(fd_, footer + off, n - off);
    MFCP_CHECK(w > 0, "journal chunk seal failed");
    off += static_cast<std::size_t>(w);
  }
  ::close(fd_);
  fd_ = -1;
  meta.sealed = true;
  meta.file_bytes = meta.payload_bytes + static_cast<std::uint64_t>(n);
  ++sealed_;
  open_chunk_ = -1;
}

void ChunkStore::enforce_retention_locked() {
  std::error_code ec;
  for (;;) {
    std::size_t count = chunks_.size();
    std::uint64_t bytes = 0;
    for (const auto& [k, meta] : chunks_) {
      bytes += meta.file_bytes;
    }
    const bool over_count = config_.max_chunks > 0 && count > config_.max_chunks;
    const bool over_bytes = config_.max_bytes > 0 && bytes > config_.max_bytes;
    if ((!over_count && !over_bytes) || chunks_.empty()) {
      return;
    }
    const std::int64_t oldest = chunks_.begin()->first;
    if (oldest == open_chunk_) {
      return;  // never evict the chunk still receiving appends
    }
    fs::remove(chunk_path(oldest), ec);
    chunks_.erase(chunks_.begin());
    ++evicted_;
  }
}

void ChunkStore::append(double hours, std::string_view jsonl_line) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Clamp to the open chunk if the clock ever reads behind it (appends
  // are nondecreasing by contract; the clamp keeps a stray reading from
  // reopening a sealed window).
  const std::int64_t k = open_chunk_ < 0
                             ? chunk_id(hours)
                             : std::max(chunk_id(hours), open_chunk_);
  if (k != open_chunk_ || fd_ < 0) {
    if (open_chunk_ >= 0 && k != open_chunk_) {
      seal_chunk_locked();
      enforce_retention_locked();
    }
    open_chunk_locked(k);
  }
  std::string line(jsonl_line);
  line.push_back('\n');
  std::size_t off = 0;
  while (off < line.size()) {
    const ssize_t w = ::write(fd_, line.data() + off, line.size() - off);
    MFCP_CHECK(w > 0, "journal chunk append failed");
    off += static_cast<std::size_t>(w);
  }
  ChunkMeta& meta = chunks_[k];
  meta.min_hours = meta.records == 0 ? hours : std::min(meta.min_hours, hours);
  meta.max_hours = meta.records == 0 ? hours : std::max(meta.max_hours, hours);
  ++meta.records;
  meta.payload_bytes += line.size();
  meta.file_bytes += line.size();
  ++appended_;
}

std::vector<std::string> ChunkStore::query(double from_hours,
                                           double to_hours) const {
  std::vector<std::string> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [k, meta] : chunks_) {
    const double lo = static_cast<double>(k) * config_.chunk_hours;
    const double hi = lo + config_.chunk_hours;
    if (hi < from_hours || lo > to_hours) {
      continue;
    }
    std::ifstream is(chunk_path(k));
    std::string line;
    while (std::getline(is, line)) {
      if (line.rfind(kChunkFooterMagic, 0) == 0) {
        continue;
      }
      double h = 0.0;
      // Records without the timestamp field pass the chunk-level filter
      // only (conservative: better a spare record than a missing one).
      if (line_hours(line, h) && (h < from_hours || h > to_hours)) {
        continue;
      }
      out.push_back(line);
    }
  }
  return out;
}

void ChunkStore::flush() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    ::fsync(fd_);
  }
}

ChunkStore::Stats ChunkStore::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats s;
  s.chunks = chunks_.size();
  s.sealed = sealed_;
  s.evicted = evicted_;
  s.records = appended_;
  for (const auto& [k, meta] : chunks_) {
    s.bytes += meta.payload_bytes;
  }
  s.open_chunk = open_chunk_;
  return s;
}

}  // namespace mfcp::storage
