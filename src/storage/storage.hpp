// StorageManager: the durability layer behind --data-dir, owning the
// three on-disk components under one directory:
//
//   <data-dir>/wal/          task WAL segments        (storage/wal.hpp)
//   <data-dir>/checkpoints/  snapshots + MANIFEST     (checkpoint_manager)
//   <data-dir>/journal/      time-chunked JSONL store (chunk_store)
//
// Construction scans the WAL (truncating any torn tail) and caches the
// result; the engine's recover() then consumes `outstanding()` to replay
// acked-but-unterminal tasks, re-appends them to the fresh log, and calls
// compact_after_recovery() to drop the superseded segments — so the WAL
// is bounded by one process lifetime, not the platform's.
//
// Everything here is write-only from the engine's perspective: with
// storage attached the round journal, decisions, and metrics are
// byte-identical to a storage-free run (recovery aside, which by design
// injects the replayed arrivals).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "storage/checkpoint_manager.hpp"
#include "storage/chunk_store.hpp"
#include "storage/wal.hpp"

namespace mfcp::storage {

struct StorageConfig {
  std::string dir;  // data directory root (created if missing)
  // WAL knobs (see WalConfig).
  std::size_t wal_fsync_every = 32;
  std::size_t wal_segment_bytes = 4u << 20;
  // Checkpoint cadence (engine rounds between publishes; 0 disables the
  // periodic publish — a final checkpoint still lands at shutdown).
  std::size_t checkpoint_every_rounds = 64;
  std::size_t checkpoint_retain = 3;
  // Chunked journal knobs (see ChunkStoreConfig).
  double chunk_hours = 1.0;
  std::size_t chunk_max_chunks = 64;
  std::uint64_t chunk_max_bytes = 0;
};

/// Point-in-time storage state for /debug/storage and shutdown prints.
struct StorageStatus {
  std::uint64_t wal_records = 0;
  std::uint64_t wal_bytes = 0;
  std::uint64_t wal_fsyncs = 0;
  std::uint64_t wal_segments = 0;
  std::uint64_t wal_last_seq = 0;
  std::uint64_t recovered_tasks = 0;     // replayed unterminal tasks
  std::uint64_t recovered_terminal = 0;  // WAL-witnessed terminal tasks
  std::uint64_t truncated_bytes = 0;     // torn tail dropped at startup
  std::uint64_t checkpoints = 0;         // published this process
  std::uint64_t checkpoint_generation = 0;
  std::uint64_t chunks = 0;
  std::uint64_t chunk_records = 0;
  std::uint64_t chunk_bytes = 0;
  std::uint64_t chunks_evicted = 0;
};

class StorageManager {
 public:
  explicit StorageManager(StorageConfig config);

  [[nodiscard]] TaskWal& wal() noexcept { return *wal_; }
  [[nodiscard]] CheckpointManager& checkpoints() noexcept {
    return checkpoints_;
  }
  [[nodiscard]] ChunkStore& journal() noexcept { return journal_; }
  [[nodiscard]] const ChunkStore& journal() const noexcept {
    return journal_;
  }

  /// The startup scan (already torn-tail-truncated).
  [[nodiscard]] const WalScanResult& recovery_scan() const noexcept {
    return scan_;
  }
  /// Acked-but-unterminal tasks from the startup scan, acceptance order.
  [[nodiscard]] std::vector<WalRecord> outstanding() const {
    return outstanding_tasks(scan_);
  }

  /// Called by the engine once replayed tasks are re-appended to the
  /// fresh log: deletes the pre-restart segments the scan covered.
  void compact_after_recovery();

  /// Recovery bookkeeping for /stats, /debug/storage, and metrics.
  void note_recovered(std::uint64_t replayed, std::uint64_t terminal);

  [[nodiscard]] StorageStatus status() const;

  /// Registers the mfcp_storage_* counters and wires them through the
  /// components (safe to skip: null-counter writes are no-ops).
  void bind_metrics(obs::MetricsRegistry* registry);

  [[nodiscard]] const StorageConfig& config() const noexcept {
    return config_;
  }

 private:
  StorageConfig config_;
  WalScanResult scan_;
  std::unique_ptr<TaskWal> wal_;
  CheckpointManager checkpoints_;
  ChunkStore journal_;
  std::atomic<std::uint64_t> recovered_tasks_{0};
  std::atomic<std::uint64_t> recovered_terminal_{0};
  obs::Counter* recovered_counter_ = nullptr;
};

}  // namespace mfcp::storage
