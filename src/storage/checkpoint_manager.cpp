#include "storage/checkpoint_manager.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "support/check.hpp"
#include "support/log.hpp"

namespace mfcp::storage {

namespace fs = std::filesystem;

namespace {

/// fsync a path (file or directory) so a rename's metadata is durable.
void fsync_path(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

/// Parses "snapshot-%08llu.ckpt"; returns false for anything else.
bool parse_snapshot_name(const std::string& name, std::uint64_t& gen) {
  if (name.size() < 14 || name.rfind("snapshot-", 0) != 0 ||
      name.compare(name.size() - 5, 5, ".ckpt") != 0) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 9; i < name.size() - 5; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return false;
    }
    v = v * 10 + static_cast<std::uint64_t>(name[i] - '0');
  }
  gen = v;
  return true;
}

/// Reads the wrapper header off an open snapshot stream; false on any
/// mismatch (the payload reader never sees a bad wrapper).
bool read_snapshot_header(std::istream& is, std::uint64_t& wal_seq) {
  std::string magic;
  if (!std::getline(is, magic) || magic != kSnapshotMagic) {
    return false;
  }
  std::string key;
  return static_cast<bool>(is >> key >> wal_seq) && key == "wal_seq" &&
         is.get() == '\n';
}

}  // namespace

std::string snapshot_name(std::uint64_t generation) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "snapshot-%08llu.ckpt",
                static_cast<unsigned long long>(generation));
  return buf;
}

CheckpointManager::CheckpointManager(CheckpointConfig config)
    : config_(std::move(config)) {
  MFCP_CHECK(!config_.dir.empty(), "checkpoint manager needs a directory");
  MFCP_CHECK(config_.retain >= 1, "must retain at least one generation");
  fs::create_directories(config_.dir);
  // Resume generation numbering past whatever is already on disk, so a
  // restarted process never overwrites a retained snapshot.
  std::error_code ec;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(config_.dir, ec)) {
    std::uint64_t gen = 0;
    if (parse_snapshot_name(entry.path().filename().string(), gen)) {
      generation_ = std::max(generation_, gen);
    }
  }
}

CheckpointInfo CheckpointManager::publish(
    std::uint64_t wal_seq, const std::function<void(std::ostream&)>& write) {
  CheckpointInfo info;
  info.generation = generation_ + 1;
  info.wal_seq = wal_seq;
  info.snapshot_path =
      (fs::path(config_.dir) / snapshot_name(info.generation)).string();
  const std::string tmp = info.snapshot_path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    MFCP_CHECK(os.good(), "cannot write checkpoint tmp " + tmp);
    os << kSnapshotMagic << "\n"
       << "wal_seq " << wal_seq << "\n";
    write(os);
    os.flush();
    MFCP_CHECK(os.good(), "checkpoint payload write failed for " + tmp);
  }
  fsync_path(tmp);
  fs::rename(tmp, info.snapshot_path);
  fsync_path(config_.dir);

  const std::string manifest = (fs::path(config_.dir) / "MANIFEST").string();
  const std::string manifest_tmp = manifest + ".tmp";
  {
    std::ofstream os(manifest_tmp, std::ios::trunc);
    MFCP_CHECK(os.good(), "cannot write manifest tmp " + manifest_tmp);
    os << kManifestMagic << "\n"
       << "generation " << info.generation << "\n"
       << "snapshot " << snapshot_name(info.generation) << "\n"
       << "wal_seq " << wal_seq << "\n";
  }
  fsync_path(manifest_tmp);
  fs::rename(manifest_tmp, manifest);
  fsync_path(config_.dir);

  generation_ = info.generation;
  ++published_;
  if (checkpoints_counter_ != nullptr) {
    checkpoints_counter_->add(1);
  }
  prune();
  return info;
}

void CheckpointManager::prune() const {
  std::error_code ec;
  std::vector<std::uint64_t> gens;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(config_.dir, ec)) {
    std::uint64_t gen = 0;
    if (parse_snapshot_name(entry.path().filename().string(), gen)) {
      gens.push_back(gen);
    }
  }
  std::sort(gens.begin(), gens.end());
  while (gens.size() > config_.retain) {
    fs::remove(fs::path(config_.dir) / snapshot_name(gens.front()), ec);
    gens.erase(gens.begin());
  }
}

std::optional<CheckpointInfo> CheckpointManager::load_latest(
    const std::function<bool(std::istream&)>& read) const {
  // Candidate order: the manifest's generation first (the published
  // truth), then every on-disk generation newest-first as fallback.
  std::vector<std::uint64_t> candidates;
  const std::string manifest = (fs::path(config_.dir) / "MANIFEST").string();
  {
    std::ifstream is(manifest);
    std::string magic;
    if (is.good() && std::getline(is, magic) && magic == kManifestMagic) {
      std::string key;
      std::uint64_t gen = 0;
      if (is >> key >> gen && key == "generation") {
        candidates.push_back(gen);
      }
    }
  }
  std::error_code ec;
  std::vector<std::uint64_t> on_disk;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(config_.dir, ec)) {
    std::uint64_t gen = 0;
    if (parse_snapshot_name(entry.path().filename().string(), gen)) {
      on_disk.push_back(gen);
    }
  }
  std::sort(on_disk.rbegin(), on_disk.rend());
  for (const std::uint64_t gen : on_disk) {
    if (candidates.empty() || gen != candidates.front()) {
      candidates.push_back(gen);
    }
  }

  for (const std::uint64_t gen : candidates) {
    CheckpointInfo info;
    info.generation = gen;
    info.snapshot_path =
        (fs::path(config_.dir) / snapshot_name(gen)).string();
    std::ifstream is(info.snapshot_path);
    if (!is.good() || !read_snapshot_header(is, info.wal_seq)) {
      MFCP_LOG(kWarn) << "checkpoint: generation " << gen
                      << " missing or bad header, trying older";
      continue;
    }
    try {
      if (read(is)) {
        return info;
      }
    } catch (const std::exception& e) {
      MFCP_LOG(kWarn) << "checkpoint: generation " << gen
                      << " rejected (" << e.what() << "), trying older";
    }
  }
  return std::nullopt;
}

}  // namespace mfcp::storage
