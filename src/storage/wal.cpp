#include "storage/wal.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <unordered_map>
#include <unordered_set>

#include "support/check.hpp"
#include "support/log.hpp"

namespace mfcp::storage {

namespace fs = std::filesystem;

namespace {

// Little-endian scalar packing: the frame format is defined in bytes, not
// in host memory layout, so the log (and obs_selfcheck's independent
// parser) reads identically everywhere.
void put_u16(unsigned char* p, std::uint16_t v) noexcept {
  p[0] = static_cast<unsigned char>(v & 0xff);
  p[1] = static_cast<unsigned char>(v >> 8);
}

void put_u32(unsigned char* p, std::uint32_t v) noexcept {
  for (int i = 0; i < 4; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  }
}

void put_u64(unsigned char* p, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) {
    p[i] = static_cast<unsigned char>((v >> (8 * i)) & 0xff);
  }
}

void put_f64(unsigned char* p, double v) noexcept {
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(p, bits);
}

std::uint16_t get_u16(const unsigned char* p) noexcept {
  return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t get_u32(const unsigned char* p) noexcept {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

std::uint64_t get_u64(const unsigned char* p) noexcept {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i) {
    v = (v << 8) | p[i];
  }
  return v;
}

double get_f64(const unsigned char* p) noexcept {
  const std::uint64_t bits = get_u64(p);
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

/// Parses "wal-%08u.log"; returns false for anything else.
bool parse_segment_name(const std::string& name, std::uint32_t& index) {
  if (name.size() != 16 || name.rfind("wal-", 0) != 0 ||
      name.compare(12, 4, ".log") != 0) {
    return false;
  }
  std::uint32_t v = 0;
  for (std::size_t i = 4; i < 12; ++i) {
    if (name[i] < '0' || name[i] > '9') {
      return false;
    }
    v = v * 10 + static_cast<std::uint32_t>(name[i] - '0');
  }
  index = v;
  return true;
}

}  // namespace

bool is_terminal(WalRecordType type) noexcept {
  return type == WalRecordType::kDispatched ||
         type == WalRecordType::kExpired || type == WalRecordType::kRejected;
}

const char* to_string(WalRecordType type) noexcept {
  switch (type) {
    case WalRecordType::kAccepted:
      return "accepted";
    case WalRecordType::kDispatched:
      return "dispatched";
    case WalRecordType::kExpired:
      return "expired";
    case WalRecordType::kRejected:
      return "rejected";
  }
  return "?";
}

std::uint32_t crc32(const void* data, std::size_t n) noexcept {
  // IEEE 802.3 reflected polynomial, nibble-at-a-time (small table, no
  // startup cost worth caching).
  static constexpr std::uint32_t kNibble[16] = {
      0x00000000u, 0x1db71064u, 0x3b6e20c8u, 0x26d930acu,
      0x76dc4190u, 0x6b6b51f4u, 0x4db26158u, 0x5005713cu,
      0xedb88320u, 0xf00f9344u, 0xd6d6a3e8u, 0xcb61b38cu,
      0x9b64c2b0u, 0x86d3d2d4u, 0xa00ae278u, 0xbdbdf21cu};
  std::uint32_t crc = 0xffffffffu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    crc ^= p[i];
    crc = (crc >> 4) ^ kNibble[crc & 0x0f];
    crc = (crc >> 4) ^ kNibble[crc & 0x0f];
  }
  return crc ^ 0xffffffffu;
}

void encode_wal_payload(const WalRecord& rec,
                        unsigned char out[kWalPayloadBytes]) noexcept {
  out[0] = static_cast<unsigned char>(rec.type);
  put_u64(out + 1, rec.seq);
  put_u64(out + 9, rec.task_id);
  put_f64(out + 17, rec.hours);
  put_f64(out + 25, rec.deadline_hours);
  out[33] = static_cast<unsigned char>(static_cast<int>(rec.task.family));
  out[34] = static_cast<unsigned char>(static_cast<int>(rec.task.dataset));
  put_u16(out + 35, static_cast<std::uint16_t>(rec.task.depth));
  put_u16(out + 37, static_cast<std::uint16_t>(rec.task.width));
  put_u16(out + 39, static_cast<std::uint16_t>(rec.task.batch_size));
  put_f64(out + 41, rec.task.dataset_fraction);
}

bool decode_wal_payload(const unsigned char* data, std::size_t n,
                        WalRecord& out) noexcept {
  if (n != kWalPayloadBytes || data[0] < 1 || data[0] > 4) {
    return false;
  }
  out.type = static_cast<WalRecordType>(data[0]);
  out.seq = get_u64(data + 1);
  out.task_id = get_u64(data + 9);
  out.hours = get_f64(data + 17);
  out.deadline_hours = get_f64(data + 25);
  out.task.family = static_cast<sim::TaskFamily>(data[33]);
  out.task.dataset = static_cast<sim::DatasetKind>(data[34]);
  out.task.depth = get_u16(data + 35);
  out.task.width = get_u16(data + 37);
  out.task.batch_size = get_u16(data + 39);
  out.task.dataset_fraction = get_f64(data + 41);
  return true;
}

std::string wal_segment_name(std::uint32_t index) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "wal-%08u.log", index);
  return buf;
}

// ------------------------------------------------------------ TaskWal ---

TaskWal::TaskWal(WalConfig config) : config_(std::move(config)) {
  MFCP_CHECK(!config_.dir.empty(), "WAL needs a directory");
  MFCP_CHECK(config_.start_seq > 0, "WAL sequence numbers start at 1");
  MFCP_CHECK(config_.start_segment > 0, "WAL segment indices start at 1");
  fs::create_directories(config_.dir);
  next_seq_ = config_.start_seq;
  segment_index_ = config_.start_segment;
  std::lock_guard<std::mutex> lock(mutex_);
  open_segment_locked();
}

TaskWal::~TaskWal() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    if (unsynced_ > 0 && config_.fsync_every > 0) {
      sync_locked();
    }
    ::close(fd_);
    fd_ = -1;
  }
}

void TaskWal::open_segment_locked() {
  if (fd_ >= 0) {
    sync_locked();
    ::close(fd_);
  }
  const std::string path =
      (fs::path(config_.dir) / wal_segment_name(segment_index_)).string();
  fd_ = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  MFCP_CHECK(fd_ >= 0, "cannot open WAL segment " + path);
  segment_written_ = 0;
  ++stats_.segments;
}

void TaskWal::sync_locked() {
  if (fd_ >= 0 && unsynced_ > 0) {
    ::fsync(fd_);
    unsynced_ = 0;
    ++stats_.fsyncs;
    if (fsync_counter_ != nullptr) {
      fsync_counter_->add(1);
    }
  }
}

std::uint64_t TaskWal::append(WalRecord rec) {
  unsigned char frame[kWalHeaderBytes + kWalPayloadBytes];
  std::lock_guard<std::mutex> lock(mutex_);
  rec.seq = next_seq_++;
  encode_wal_payload(rec, frame + kWalHeaderBytes);
  put_u32(frame, static_cast<std::uint32_t>(kWalPayloadBytes));
  put_u32(frame + 4, crc32(frame + kWalHeaderBytes, kWalPayloadBytes));
  // One write() per frame: O_APPEND makes the frame atomic with respect
  // to a SIGKILL (either fully in the page cache or not written at all
  // from this process's point of view — a machine crash can still tear
  // it, which is what the scan's torn-tail truncation handles).
  std::size_t off = 0;
  while (off < sizeof(frame)) {
    const ssize_t n = ::write(fd_, frame + off, sizeof(frame) - off);
    MFCP_CHECK(n > 0, "WAL append failed");
    off += static_cast<std::size_t>(n);
  }
  segment_written_ += sizeof(frame);
  ++stats_.records;
  stats_.bytes += sizeof(frame);
  stats_.last_seq = rec.seq;
  if (bytes_counter_ != nullptr) {
    bytes_counter_->add(sizeof(frame));
  }
  ++unsynced_;
  if (config_.fsync_every > 0 && unsynced_ >= config_.fsync_every) {
    sync_locked();
  }
  if (segment_written_ >= config_.segment_bytes) {
    ++segment_index_;
    open_segment_locked();
  }
  return rec.seq;
}

void TaskWal::sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  sync_locked();
}

TaskWal::Stats TaskWal::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

// --------------------------------------------------------------- scan ---

WalScanResult scan_wal(const std::string& dir, bool truncate_torn_tail) {
  WalScanResult out;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) {
    return out;  // no log yet: empty history, start at segment 1
  }
  std::vector<std::uint32_t> segments;
  for (const fs::directory_entry& entry : fs::directory_iterator(dir, ec)) {
    std::uint32_t index = 0;
    if (parse_segment_name(entry.path().filename().string(), index)) {
      segments.push_back(index);
    }
  }
  std::sort(segments.begin(), segments.end());
  for (std::size_t s = 0; s < segments.size(); ++s) {
    const bool newest = s + 1 == segments.size();
    const std::string path =
        (fs::path(dir) / wal_segment_name(segments[s])).string();
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      continue;
    }
    std::uint64_t valid_end = 0;
    unsigned char frame[kWalHeaderBytes + kWalPayloadBytes];
    for (;;) {
      const std::size_t got = std::fread(frame, 1, sizeof(frame), f);
      if (got == 0) {
        break;  // clean end of segment
      }
      WalRecord rec;
      const bool frame_ok =
          got == sizeof(frame) &&
          get_u32(frame) == kWalPayloadBytes &&
          get_u32(frame + 4) ==
              crc32(frame + kWalHeaderBytes, kWalPayloadBytes) &&
          decode_wal_payload(frame + kWalHeaderBytes, kWalPayloadBytes, rec);
      if (!frame_ok) {
        // A bad frame ends this segment's scan. In the newest segment it
        // is the expected torn tail of a crash; anywhere else we report
        // corruption but still keep everything before it.
        if (newest) {
          out.torn_tail = true;
        } else {
          ++out.corrupt_frames;
        }
        break;
      }
      valid_end += sizeof(frame);
      out.valid_bytes += sizeof(frame);
      out.last_seq = std::max(out.last_seq, rec.seq);
      out.records.push_back(rec);
    }
    // Anything past the last valid frame is the torn/corrupt tail.
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fclose(f);
    if (size > 0 && static_cast<std::uint64_t>(size) > valid_end) {
      const std::uint64_t torn =
          static_cast<std::uint64_t>(size) - valid_end;
      out.truncated_bytes += torn;
      if (newest && truncate_torn_tail) {
        fs::resize_file(path, valid_end, ec);
        if (ec) {
          MFCP_LOG(kWarn) << "WAL: could not truncate torn tail of " << path;
        } else {
          MFCP_LOG(kInfo) << "WAL: truncated " << torn
                          << " torn byte(s) from " << path;
        }
      }
    }
    out.last_segment = std::max(out.last_segment, segments[s]);
  }
  out.next_segment = out.last_segment + 1;
  return out;
}

std::vector<WalRecord> outstanding_tasks(const WalScanResult& scan) {
  std::unordered_set<std::uint64_t> terminal;
  for (const WalRecord& rec : scan.records) {
    if (is_terminal(rec.type)) {
      terminal.insert(rec.task_id);
    }
  }
  std::vector<WalRecord> out;
  std::unordered_map<std::uint64_t, bool> seen;
  for (const WalRecord& rec : scan.records) {
    if (rec.type != WalRecordType::kAccepted ||
        terminal.count(rec.task_id) != 0) {
      continue;
    }
    if (!seen.emplace(rec.task_id, true).second) {
      continue;  // duplicate accepted record (replayed acceptance)
    }
    out.push_back(rec);
  }
  return out;
}

}  // namespace mfcp::storage
