#include "storage/storage.hpp"

#include <filesystem>

#include "support/check.hpp"

namespace mfcp::storage {

namespace fs = std::filesystem;

namespace {

WalConfig make_wal_config(const StorageConfig& config,
                          const WalScanResult& scan) {
  WalConfig wal;
  wal.dir = (fs::path(config.dir) / "wal").string();
  wal.segment_bytes = config.wal_segment_bytes;
  wal.fsync_every = config.wal_fsync_every;
  wal.start_seq = scan.last_seq + 1;
  wal.start_segment = scan.next_segment;
  return wal;
}

CheckpointConfig make_checkpoint_config(const StorageConfig& config) {
  CheckpointConfig ckpt;
  ckpt.dir = (fs::path(config.dir) / "checkpoints").string();
  ckpt.retain = config.checkpoint_retain;
  return ckpt;
}

ChunkStoreConfig make_chunk_config(const StorageConfig& config) {
  ChunkStoreConfig chunk;
  chunk.dir = (fs::path(config.dir) / "journal").string();
  chunk.chunk_hours = config.chunk_hours;
  chunk.max_chunks = config.chunk_max_chunks;
  chunk.max_bytes = config.chunk_max_bytes;
  return chunk;
}

StorageConfig checked(StorageConfig config) {
  MFCP_CHECK(!config.dir.empty(), "storage needs a data directory");
  return config;
}

}  // namespace

StorageManager::StorageManager(StorageConfig config)
    : config_(checked(std::move(config))),
      scan_(scan_wal((fs::path(config_.dir) / "wal").string(),
                     /*truncate_torn_tail=*/true)),
      wal_(std::make_unique<TaskWal>(make_wal_config(config_, scan_))),
      checkpoints_(make_checkpoint_config(config_)),
      journal_(make_chunk_config(config_)) {}

void StorageManager::compact_after_recovery() {
  // The fresh log (opened at scan_.next_segment) now re-carries every
  // still-live acceptance, so the scanned segments are fully superseded.
  std::error_code ec;
  const fs::path dir = fs::path(config_.dir) / "wal";
  for (std::uint32_t s = 1; s <= scan_.last_segment; ++s) {
    fs::remove(dir / wal_segment_name(s), ec);
  }
}

void StorageManager::note_recovered(std::uint64_t replayed,
                                    std::uint64_t terminal) {
  recovered_tasks_.store(replayed, std::memory_order_relaxed);
  recovered_terminal_.store(terminal, std::memory_order_relaxed);
  if (recovered_counter_ != nullptr) {
    recovered_counter_->add(replayed);
  }
}

StorageStatus StorageManager::status() const {
  StorageStatus s;
  const TaskWal::Stats wal = wal_->stats();
  s.wal_records = wal.records;
  s.wal_bytes = wal.bytes;
  s.wal_fsyncs = wal.fsyncs;
  s.wal_segments = wal.segments;
  s.wal_last_seq = wal.last_seq;
  s.recovered_tasks = recovered_tasks_.load(std::memory_order_relaxed);
  s.recovered_terminal =
      recovered_terminal_.load(std::memory_order_relaxed);
  s.truncated_bytes = scan_.truncated_bytes;
  s.checkpoints = checkpoints_.published_total();
  s.checkpoint_generation = checkpoints_.generation();
  const ChunkStore::Stats chunk = journal_.stats();
  s.chunks = chunk.chunks;
  s.chunk_records = chunk.records;
  s.chunk_bytes = chunk.bytes;
  s.chunks_evicted = chunk.evicted;
  return s;
}

void StorageManager::bind_metrics(obs::MetricsRegistry* registry) {
  if (registry == nullptr) {
    return;
  }
  wal_->bind_metrics(&registry->counter("mfcp_storage_wal_bytes_total"),
                     &registry->counter("mfcp_storage_wal_fsyncs_total"));
  recovered_counter_ =
      &registry->counter("mfcp_storage_recovered_tasks_total");
  journal_.bind_metrics(&registry->counter("mfcp_storage_chunks_total"));
  checkpoints_.bind_metrics(
      &registry->counter("mfcp_storage_checkpoints_total"));
}

}  // namespace mfcp::storage
