// Atomic, generational checkpoint publication: snapshot + log recovery.
//
// The engine's text checkpoints (engine/checkpoint.hpp) round-trip
// predictor weights and counters bit-exactly, but a bare file write is
// not crash-safe: a kill mid-write leaves a half snapshot and nothing
// says which generation is current. This manager adds the durability
// protocol around that payload, without knowing its format:
//
//   publish:  snapshot-<gen>.ckpt.tmp  ── write payload + wrapper header
//             fsync(tmp) → rename(tmp, snapshot-<gen>.ckpt) → fsync(dir)
//             MANIFEST.tmp → rename(MANIFEST) → fsync(dir)
//             prune generations older than the newest `retain`
//
//   recover:  read MANIFEST → try its snapshot → on any failure fall
//             back through older snapshot-*.ckpt generations, newest
//             first. A manifest pointing at a deleted or corrupt
//             snapshot therefore degrades, never fails.
//
// Each snapshot records the WAL sequence number it covers (wrapper
// header line), so recovery = load latest valid snapshot + replay the
// WAL suffix past `wal_seq` — the classic snapshot+log pairing.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "obs/metrics.hpp"

namespace mfcp::storage {

struct CheckpointConfig {
  std::string dir;          // created if missing
  std::size_t retain = 3;   // generations kept on disk (>= 1)
};

/// One published (or recovered) snapshot generation.
struct CheckpointInfo {
  std::uint64_t generation = 0;
  std::uint64_t wal_seq = 0;  // highest WAL seq the snapshot covers
  std::string snapshot_path;
};

inline constexpr const char* kManifestMagic = "mfcp-storage-manifest 1";
inline constexpr const char* kSnapshotMagic = "mfcp-storage-snapshot 1";

class CheckpointManager {
 public:
  explicit CheckpointManager(CheckpointConfig config);

  /// Publishes the next generation. `write` serializes the payload (the
  /// engine passes save_checkpoint); the wrapper header and the atomic
  /// tmp+rename+manifest dance are handled here. Returns the published
  /// generation's info.
  CheckpointInfo publish(std::uint64_t wal_seq,
                         const std::function<void(std::ostream&)>& write);

  /// Loads the newest recoverable generation: the manifest's snapshot
  /// first, then older generations newest-first when it is missing or
  /// `read` rejects it (returns false or throws). Returns std::nullopt
  /// when nothing on disk is loadable.
  [[nodiscard]] std::optional<CheckpointInfo> load_latest(
      const std::function<bool(std::istream&)>& read) const;

  [[nodiscard]] std::uint64_t published_total() const noexcept {
    return published_;
  }
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }
  [[nodiscard]] const CheckpointConfig& config() const noexcept {
    return config_;
  }

  void bind_metrics(obs::Counter* checkpoints) noexcept {
    checkpoints_counter_ = checkpoints;
  }

 private:
  void prune() const;

  CheckpointConfig config_;
  std::uint64_t generation_ = 0;  // last published (resumes past disk state)
  std::uint64_t published_ = 0;   // published by this instance
  obs::Counter* checkpoints_counter_ = nullptr;
};

/// Snapshot filename for a generation (snapshot-%08llu.ckpt).
[[nodiscard]] std::string snapshot_name(std::uint64_t generation);

}  // namespace mfcp::storage
