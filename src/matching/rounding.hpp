// Rounding relaxed matchings to deployable discrete assignments (§3.2:
// "during testing or system deployment, the matching X* is obtained using
// the continuous version ... and subsequently rounded").
#pragma once

#include "matching/problem.hpp"

namespace mfcp::matching {

/// Argmax rounding: task j goes to the cluster with the largest relaxed
/// weight in column j.
Assignment round_argmax(const Matrix& x);

/// Argmax rounding followed by a feasibility repair identical to the
/// greedy solver's: tasks are moved toward more reliable clusters (best
/// reliability gain per makespan increase) until the constraint holds or
/// no improving move exists.
Assignment round_with_repair(const Matrix& x, const MatchingProblem& problem);

/// Local-search polish: single-task moves that strictly reduce makespan
/// while preserving feasibility, until a local optimum (bounded passes).
Assignment improve_local_search(Assignment assignment,
                                const MatchingProblem& problem,
                                std::size_t max_passes = 8);

}  // namespace mfcp::matching
