// Continuous relaxation machinery (paper §3.2).
//
// During predictor training the binary assignment X is relaxed to the
// product of simplices (each task's column sums to 1), the max in the
// objective is smoothed with log-sum-exp (Eq. 8, Theorem 1), and the
// reliability constraint is folded in via a barrier or penalty (Eq. 9 /
// ablation 2). All of those are ContinuousObjective implementations that
// the solvers in solver_gd / solver_mirror minimize.
#pragma once

#include <vector>

#include "matching/problem.hpp"

namespace mfcp::matching {

/// A differentiable objective F(X) over relaxed assignments X (M x N).
class ContinuousObjective {
 public:
  virtual ~ContinuousObjective() = default;

  [[nodiscard]] virtual std::size_t num_clusters() const noexcept = 0;
  [[nodiscard]] virtual std::size_t num_tasks() const noexcept = 0;

  [[nodiscard]] virtual double value(const Matrix& x) const = 0;

  /// dF/dX as an M x N matrix.
  [[nodiscard]] virtual Matrix grad_x(const Matrix& x) const = 0;
};

/// A continuous objective that additionally exposes the Hessian blocks the
/// KKT sensitivity system (paper Eq. 15) needs: ∇²_XX F, ∇²_XT F, ∇²_XA F,
/// all flattened with index i*N + j. Implementations are only required to
/// support the exclusive-execution (convex) case, matching the paper's
/// restriction of MFCP-AD to convex objectives.
class KktDifferentiableObjective : public ContinuousObjective {
 public:
  [[nodiscard]] virtual Matrix hess_xx(const Matrix& x) const = 0;
  [[nodiscard]] virtual Matrix hess_xt(const Matrix& x) const = 0;
  [[nodiscard]] virtual Matrix hess_xa(const Matrix& x) const = 0;
};

/// Smoothed makespan f̃(X, T) = (1/β) log Σ_i exp(β ζ(n_i) x_i^T t_i)
/// (Eq. 8 for exclusive execution, Eq. 17 with a speedup curve).
class SmoothedMakespan final : public ContinuousObjective {
 public:
  SmoothedMakespan(Matrix times, double beta,
                   sim::SpeedupCurve speedup = sim::SpeedupCurve::exclusive());

  [[nodiscard]] std::size_t num_clusters() const noexcept override {
    return times_.rows();
  }
  [[nodiscard]] std::size_t num_tasks() const noexcept override {
    return times_.cols();
  }

  [[nodiscard]] double value(const Matrix& x) const override;
  [[nodiscard]] Matrix grad_x(const Matrix& x) const override;

  /// Softmax weights p_i over clusters at x — the "which cluster is
  /// binding" distribution that also appears in every Hessian formula.
  [[nodiscard]] std::vector<double> cluster_weights(const Matrix& x) const;

  /// Effective per-cluster busy times u_i = ζ(n_i) x_i^T t_i.
  [[nodiscard]] std::vector<double> busy_times(const Matrix& x) const;

  /// Hessian blocks of f̃ alone for the exclusive (ζ ≡ 1) case — shared by
  /// every KktDifferentiableObjective built on top of the smoothed max:
  ///   ∂²f̃/∂x_ij∂x_kl = β p_i (δ_ik - p_k) t_ij t_kl,
  ///   ∂²f̃/∂x_ij∂t_kl = p_i δ_ik δ_jl + β p_i (δ_ik - p_k) t_ij x_kl.
  [[nodiscard]] Matrix hess_xx_exclusive(const Matrix& x) const;
  [[nodiscard]] Matrix hess_xt_exclusive(const Matrix& x) const;

  [[nodiscard]] double beta() const noexcept { return beta_; }
  [[nodiscard]] const Matrix& times() const noexcept { return times_; }
  [[nodiscard]] const sim::SpeedupCurve& speedup() const noexcept {
    return speedup_;
  }

 private:
  Matrix times_;
  double beta_;
  sim::SpeedupCurve speedup_;
};

}  // namespace mfcp::matching
