// The cluster-task matching problem (paper §2.1, problem (2)).
//
// Given M clusters, N tasks, an execution-time matrix T (M x N) and a
// reliability matrix A (M x N), choose a binary assignment X (M x N, one
// cluster per task) minimizing the makespan
//     f(X, T) = max_i  ζ(n_i) · x_i^T t_i            (Eq. 3 / Eq. 16)
// subject to the platform-level reliability constraint
//     g(X, A) = (1/N) Σ_i x_i^T a_i  -  γ  >=  0.    (cf. Eq. 4)
//
// NOTE on normalization: the paper writes g with a 1/(MN) factor, which —
// because each task is assigned exactly once — equals (average task
// reliability)/M. We use the 1/N form so γ is directly interpretable as the
// required average task success probability (the paper's "Reliability"
// metric); the two are equivalent up to γ_paper = γ_ours / M.
#pragma once

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "sim/speedup.hpp"

namespace mfcp::matching {

struct MatchingProblem {
  Matrix times;        // M x N
  Matrix reliability;  // M x N
  double gamma = 0.8;  // required average task success probability
  sim::SpeedupCurve speedup = sim::SpeedupCurve::exclusive();

  [[nodiscard]] std::size_t num_clusters() const noexcept {
    return times.rows();
  }
  [[nodiscard]] std::size_t num_tasks() const noexcept {
    return times.cols();
  }

  /// Validates shapes and value ranges; throws ContractError on misuse.
  void validate() const;

  /// Same problem with different (e.g. predicted) metric matrices.
  [[nodiscard]] MatchingProblem with_metrics(Matrix t, Matrix a) const;
};

/// A discrete assignment: task j runs on cluster assignment[j].
using Assignment = std::vector<int>;

/// Binary M x N matrix form of an assignment.
Matrix assignment_to_matrix(const Assignment& assignment,
                            std::size_t num_clusters);

/// Inverse of assignment_to_matrix for a binary matrix (argmax per column).
Assignment matrix_to_assignment(const Matrix& x);

/// Per-cluster loads x_i^T t_i under an assignment.
std::vector<double> cluster_loads(const Assignment& assignment,
                                  const Matrix& times);

}  // namespace mfcp::matching
