// Exact discrete matching — the ground-truth optimum X*(T, A) that regret
// (Eq. 6) is measured against.
//
// Minimizing makespan over binary assignments is NP-hard (it generalizes
// multiprocessor scheduling), but the paper's instances are small (M = 3
// clusters, N up to a few dozen tasks), which depth-first branch-and-bound
// with load/reliability bounds handles exactly. For larger N a node budget
// turns the solver into an anytime method returning the best incumbent
// (EXPERIMENTS.md documents where that kicks in).
#pragma once

#include <optional>

#include "matching/problem.hpp"

namespace mfcp::matching {

struct ExactSolverConfig {
  /// Abort the search after this many explored nodes (0 = unlimited).
  std::size_t node_budget = 50'000'000;
  /// Also try pure enumeration when M^N is below this (cross-check path).
  bool prefer_enumeration = false;
};

struct ExactSolution {
  Assignment assignment;
  double objective = 0.0;       // makespan under the problem's metrics
  bool feasible = false;        // reliability constraint satisfied
  bool proven_optimal = false;  // search completed within budget
  std::size_t nodes_explored = 0;
};

/// Exhaustive enumeration of all M^N assignments. Only for tiny instances
/// (checked: M^N <= 2^26); used as the oracle in property tests.
ExactSolution solve_enumeration(const MatchingProblem& problem);

/// Branch-and-bound exact solver. Returns the best feasible assignment
/// found; `proven_optimal` is false if the node budget was exhausted.
/// If no feasible assignment exists, `feasible` is false and the
/// assignment minimizes makespan ignoring the reliability constraint.
ExactSolution solve_exact(const MatchingProblem& problem,
                          const ExactSolverConfig& config = {});

/// Longest-processing-time greedy heuristic with reliability repair —
/// used for the B&B incumbent and as a fast standalone baseline.
ExactSolution solve_greedy(const MatchingProblem& problem);

}  // namespace mfcp::matching
