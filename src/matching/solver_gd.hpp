// Algorithm 1 of the paper: optimal matching by projected gradient descent.
//
//   repeat:  X <- X - η ∇_X F(X, T, A)
//            X(:, j) <- softmax(X(:, j))   for every task j
//
// The column softmax keeps every task's assignment weights on the simplex
// over clusters, i.e. the relaxed feasible set of problem (10).
#pragma once

#include "matching/smooth_objective.hpp"

namespace mfcp::matching {

struct GdSolverConfig {
  std::size_t max_iterations = 400;
  double learning_rate = 0.5;
  /// Stop early when the iterate moves less than this (inf-norm).
  double tolerance = 1e-9;
};

struct SolveResult {
  Matrix x;                  // relaxed optimal matching, columns on simplex
  double objective = 0.0;    // F at x
  std::size_t iterations = 0;
  bool converged = false;    // hit tolerance before the iteration cap
  /// Final convergence residual: the quantity each solver tests against
  /// its tolerance (mirror descent: simplex stationarity residual;
  /// projected GD: inf-norm of the last iterate move).
  double residual = 0.0;
};

/// Uniform relaxed start: every entry 1/M (center of the feasible set).
Matrix uniform_start(std::size_t num_clusters, std::size_t num_tasks);

/// Runs Algorithm 1 from the uniform start.
SolveResult solve_gd(const ContinuousObjective& objective,
                     const GdSolverConfig& config = {});

/// Runs Algorithm 1 from a caller-supplied start (columns need not be
/// normalized; the first projection fixes them).
SolveResult solve_gd_from(const ContinuousObjective& objective, Matrix x0,
                          const GdSolverConfig& config = {});

}  // namespace mfcp::matching
