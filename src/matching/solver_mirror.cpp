#include "matching/solver_mirror.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "support/check.hpp"
#include "support/log.hpp"

namespace mfcp::matching {

double stationarity_residual(const ContinuousObjective& objective,
                             const Matrix& x, double floor) {
  const Matrix g = objective.grad_x(x);
  double residual = 0.0;
  for (std::size_t j = 0; j < x.cols(); ++j) {
    // At an interior stationary point the gradient is constant over the
    // column support; the weighted mean recovers that constant.
    double mean = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      mean += x(i, j) * g(i, j);
    }
    for (std::size_t i = 0; i < x.rows(); ++i) {
      if (x(i, j) > floor) {
        residual = std::max(residual, std::abs(g(i, j) - mean));
      }
    }
  }
  return residual;
}

SolveResult solve_mirror(const ContinuousObjective& objective,
                         const MirrorSolverConfig& config) {
  return solve_mirror_from(
      objective,
      uniform_start(objective.num_clusters(), objective.num_tasks()), config);
}

SolveResult solve_mirror_from(const ContinuousObjective& objective, Matrix x0,
                              const MirrorSolverConfig& config) {
  MFCP_CHECK(x0.rows() == objective.num_clusters() &&
                 x0.cols() == objective.num_tasks(),
             "start point shape mismatch");
  MFCP_CHECK(config.learning_rate > 0.0, "learning rate must be positive");
  MFCP_CHECK(config.floor > 0.0, "floor must be positive");

  Matrix x = std::move(x0);
  // Normalize the start onto the simplices (plain normalization — the
  // start is expected to be nonnegative, e.g. uniform).
  for (std::size_t j = 0; j < x.cols(); ++j) {
    double total = 0.0;
    for (std::size_t i = 0; i < x.rows(); ++i) {
      x(i, j) = std::max(x(i, j), config.floor);
      total += x(i, j);
    }
    for (std::size_t i = 0; i < x.rows(); ++i) {
      x(i, j) /= total;
    }
  }

  // Applies one exponentiated-gradient step of size eta in a numerically
  // safe form (subtract the column-min exponent before exponentiation).
  const auto step_with = [&config](const Matrix& from, const Matrix& g,
                                   double eta) {
    Matrix next = from;
    for (std::size_t j = 0; j < next.cols(); ++j) {
      double min_exp = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < next.rows(); ++i) {
        min_exp = std::min(min_exp, eta * g(i, j));
      }
      double total = 0.0;
      for (std::size_t i = 0; i < next.rows(); ++i) {
        const double factor = std::exp(-(eta * g(i, j) - min_exp));
        next(i, j) = std::max(next(i, j) * factor, config.floor);
        total += next(i, j);
      }
      for (std::size_t i = 0; i < next.rows(); ++i) {
        next(i, j) /= total;
      }
    }
    return next;
  };

  SolveResult result;
  double value = objective.value(x);
  double eta = config.learning_rate;
  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    const Matrix g = objective.grad_x(x);
    // Backtracking: sharp beta values make the landscape stiff (curvature
    // ~ beta * t^2), so a fixed step oscillates. Halve until the step is a
    // descent step, and cautiously re-grow afterwards.
    Matrix next = step_with(x, g, eta);
    double next_value = objective.value(next);
    int halvings = 0;
    while (next_value > value - 1e-14 && halvings < 30) {
      eta *= 0.5;
      ++halvings;
      next = step_with(x, g, eta);
      next_value = objective.value(next);
    }
    x = std::move(next);
    value = next_value;
    if (halvings == 0) {
      eta = std::min(eta * 1.25, config.learning_rate);
    }
    result.iterations = it + 1;
    // Checking the residual every iteration would double the gradient
    // evaluations; every 8th is enough for a stopping test.
    if ((it & 7u) == 7u) {
      result.residual = stationarity_residual(objective, x, 1e-6);
      if (result.residual < config.tolerance) {
        result.converged = true;
        break;
      }
    }
  }
  if (!result.converged) {
    result.residual = stationarity_residual(objective, x, 1e-6);
    MFCP_LOG(kDebug) << "mirror descent hit the iteration cap ("
                     << config.max_iterations << "), residual "
                     << result.residual;
  }
  result.objective = objective.value(x);
  result.x = std::move(x);

  // Solver telemetry (iterations to converge, final residual) through the
  // process-wide registry — the solver sits below the engine and cannot be
  // handed one per call without threading a pointer through every trainer.
  if (obs::MetricsRegistry* reg = obs::default_registry()) {
    reg->counter("mfcp_matching_solves_total").add(1);
    if (!result.converged) {
      reg->counter("mfcp_matching_solver_capped_total").add(1);
    }
    reg->histogram("mfcp_matching_solver_iterations",
                   obs::default_iteration_bounds())
        .observe(static_cast<double>(result.iterations));
    reg->gauge("mfcp_matching_solver_residual").set(result.residual);
  }
  return result;
}

}  // namespace mfcp::matching
