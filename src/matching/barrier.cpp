#include "matching/barrier.hpp"

#include <cmath>

#include "matching/objective.hpp"
#include "support/check.hpp"

namespace mfcp::matching {

BarrierObjective::BarrierObjective(Matrix times, Matrix reliability,
                                   double gamma, BarrierConfig config,
                                   sim::SpeedupCurve speedup)
    : smoothed_(std::move(times), config.beta, speedup),
      reliability_(std::move(reliability)),
      gamma_(gamma),
      config_(config) {
  MFCP_CHECK(reliability_.same_shape(smoothed_.times()),
             "reliability must be M x N");
  MFCP_CHECK(config_.lambda > 0.0, "barrier weight must be positive");
  MFCP_CHECK(config_.slack_epsilon > 0.0, "slack epsilon must be positive");
}

BarrierObjective::BarrierObjective(const MatchingProblem& problem,
                                   BarrierConfig config)
    : BarrierObjective(problem.times, problem.reliability, problem.gamma,
                       config, problem.speedup) {}

double BarrierObjective::reliability_slack(const Matrix& x) const {
  return average_reliability(x, reliability_) - gamma_;
}

double BarrierObjective::barrier_value(double slack) const {
  const double eps = config_.slack_epsilon;
  if (slack > eps) {
    return -config_.lambda * std::log(slack);
  }
  // C1 linear extension: log(s) ~ log(eps) + (s - eps)/eps below eps.
  return -config_.lambda * (std::log(eps) + (slack - eps) / eps);
}

double BarrierObjective::barrier_derivative(double slack) const {
  const double eps = config_.slack_epsilon;
  if (slack > eps) {
    return -config_.lambda / slack;
  }
  return -config_.lambda / eps;
}

double BarrierObjective::value(const Matrix& x) const {
  return smoothed_.value(x) + barrier_value(reliability_slack(x));
}

Matrix BarrierObjective::grad_x(const Matrix& x) const {
  Matrix g = smoothed_.grad_x(x);
  const double dslack = barrier_derivative(reliability_slack(x));
  const double n = static_cast<double>(num_tasks());
  for (std::size_t i = 0; i < g.size(); ++i) {
    // d slack / d x_ij = a_ij / N.
    g[i] += dslack * reliability_[i] / n;
  }
  return g;
}

Matrix BarrierObjective::hess_xx(const Matrix& x) const {
  const std::size_t n = num_tasks();
  const std::size_t mn = num_clusters() * n;
  const double slack = reliability_slack(x);
  const double nd = static_cast<double>(n);

  Matrix h = smoothed_.hess_xx_exclusive(x);
  // Barrier part (only where the true log is active):
  // lambda * a_ij a_kl / (N^2 slack^2).
  if (slack > config_.slack_epsilon) {
    const double c = config_.lambda / (nd * nd * slack * slack);
    for (std::size_t r = 0; r < mn; ++r) {
      for (std::size_t s = 0; s < mn; ++s) {
        h(r, s) += c * reliability_[r] * reliability_[s];
      }
    }
  }
  return h;
}

Matrix BarrierObjective::hess_xt(const Matrix& x) const {
  // The barrier term does not involve T, so the cross block is f̃'s alone.
  return smoothed_.hess_xt_exclusive(x);
}

Matrix BarrierObjective::hess_xa(const Matrix& x) const {
  MFCP_CHECK(smoothed_.speedup().is_constant(),
             "analytic Hessians require exclusive execution (convex case)");
  const std::size_t m = num_clusters();
  const std::size_t n = num_tasks();
  const std::size_t mn = m * n;
  const double nd = static_cast<double>(n);
  const double slack = reliability_slack(x);

  Matrix h(mn, mn, 0.0);
  if (slack > config_.slack_epsilon) {
    // d(dF/dx_ij)/da_kl = -lambda delta_ik delta_jl / (N slack)
    //                     + lambda a_ij x_kl / (N slack)^2.
    const double c1 = -config_.lambda / (nd * slack);
    const double c2 = config_.lambda / (nd * nd * slack * slack);
    for (std::size_t r = 0; r < mn; ++r) {
      h(r, r) += c1;
      for (std::size_t s = 0; s < mn; ++s) {
        h(r, s) += c2 * reliability_[r] * x[s];
      }
    }
  } else {
    // Linear extension region: gradient is -lambda a_ij/(N eps) — constant
    // slope in slack, so the only  Â-dependence is the direct a_ij term.
    const double c1 = -config_.lambda / (nd * config_.slack_epsilon);
    for (std::size_t r = 0; r < mn; ++r) {
      h(r, r) += c1;
    }
  }
  return h;
}

}  // namespace mfcp::matching
