#include "matching/smooth_objective.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "support/check.hpp"

namespace mfcp::matching {

SmoothedMakespan::SmoothedMakespan(Matrix times, double beta,
                                   sim::SpeedupCurve speedup)
    : times_(std::move(times)), beta_(beta), speedup_(speedup) {
  MFCP_CHECK(beta_ > 0.0, "smoothing beta must be positive");
  MFCP_CHECK(times_.rows() > 0 && times_.cols() > 0,
             "objective needs clusters and tasks");
}

std::vector<double> SmoothedMakespan::busy_times(const Matrix& x) const {
  MFCP_CHECK(x.same_shape(times_), "X shape mismatch");
  std::vector<double> busy(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double load = 0.0;
    double count = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      load += x(i, j) * times_(i, j);
      count += x(i, j);
    }
    busy[i] = speedup_.value(count) * load;
  }
  return busy;
}

double SmoothedMakespan::value(const Matrix& x) const {
  const auto busy = busy_times(x);
  return log_sum_exp(busy, beta_);
}

std::vector<double> SmoothedMakespan::cluster_weights(const Matrix& x) const {
  auto busy = busy_times(x);
  softmax_inplace(std::span<double>(busy), beta_);
  return busy;
}

Matrix SmoothedMakespan::hess_xx_exclusive(const Matrix& x) const {
  MFCP_CHECK(speedup_.is_constant(),
             "analytic Hessians require exclusive execution (convex case)");
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  const auto p = cluster_weights(x);
  Matrix h(m * n, m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t row = i * n + j;
      for (std::size_t k = 0; k < m; ++k) {
        const double w = beta_ * p[i] * ((i == k ? 1.0 : 0.0) - p[k]);
        if (w == 0.0) {
          continue;
        }
        for (std::size_t l = 0; l < n; ++l) {
          h(row, k * n + l) += w * times_(i, j) * times_(k, l);
        }
      }
    }
  }
  return h;
}

Matrix SmoothedMakespan::hess_xt_exclusive(const Matrix& x) const {
  MFCP_CHECK(speedup_.is_constant(),
             "analytic Hessians require exclusive execution (convex case)");
  const std::size_t m = x.rows();
  const std::size_t n = x.cols();
  const auto p = cluster_weights(x);
  Matrix h(m * n, m * n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      const std::size_t row = i * n + j;
      h(row, row) += p[i];
      for (std::size_t k = 0; k < m; ++k) {
        const double w = beta_ * p[i] * ((i == k ? 1.0 : 0.0) - p[k]);
        if (w == 0.0) {
          continue;
        }
        for (std::size_t l = 0; l < n; ++l) {
          h(row, k * n + l) += w * times_(i, j) * x(k, l);
        }
      }
    }
  }
  return h;
}

Matrix SmoothedMakespan::grad_x(const Matrix& x) const {
  MFCP_CHECK(x.same_shape(times_), "X shape mismatch");
  Matrix g(x.rows(), x.cols());
  // p_i = softmax(beta * u), du_i/dx_ij = zeta'(n_i) s_i + zeta(n_i) t_ij.
  const auto p = cluster_weights(x);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double load = 0.0;
    double count = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      load += x(i, j) * times_(i, j);
      count += x(i, j);
    }
    const double zeta = speedup_.value(count);
    const double dzeta = speedup_.derivative(count);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      g(i, j) = p[i] * (dzeta * load + zeta * times_(i, j));
    }
  }
  return g;
}

}  // namespace mfcp::matching
