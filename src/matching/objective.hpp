// Hard (non-smoothed) objective and constraint evaluation — used to score
// final discrete assignments and to define the evaluation metrics.
#pragma once

#include "matching/problem.hpp"

namespace mfcp::matching {

/// Makespan f(X, T) = max_i ζ(n_i) x_i^T t_i for a (possibly fractional) X.
double makespan(const Matrix& x, const Matrix& times,
                const sim::SpeedupCurve& speedup);

/// Makespan of a discrete assignment.
double makespan(const Assignment& assignment, const Matrix& times,
                const sim::SpeedupCurve& speedup);

/// Integrality (rounding) gap f(assignment) - f(x): the makespan price of
/// snapping a relaxed matching to the discrete deployment derived from
/// it. Signed — rounding can land on a better integral point than the
/// fractional iterate it started from.
double rounding_gap(const Matrix& x, const Assignment& assignment,
                    const Matrix& times, const sim::SpeedupCurve& speedup);

/// Linear cost Σ_i ζ(n_i) x_i^T t_i (the ablation-(1) objective: total
/// instead of maximum cluster time).
double linear_cost(const Matrix& x, const Matrix& times,
                   const sim::SpeedupCurve& speedup);

/// Average task reliability (1/N) Σ_i x_i^T a_i.
double average_reliability(const Matrix& x, const Matrix& reliability);
double average_reliability(const Assignment& assignment,
                           const Matrix& reliability);

/// Constraint value g(X, A) = average_reliability - gamma.
double reliability_slack(const Matrix& x, const MatchingProblem& problem);

/// True when the assignment satisfies the reliability constraint.
bool is_feasible(const Assignment& assignment,
                 const MatchingProblem& problem);

/// Cluster utilization: Σ_i busy_i / (M · max_i busy_i), where busy_i =
/// ζ(n_i) x_i^T t_i. Equals 1 for a perfectly balanced assignment (the
/// paper's third evaluation metric).
double utilization(const Assignment& assignment, const Matrix& times,
                   const sim::SpeedupCurve& speedup);

}  // namespace mfcp::matching
