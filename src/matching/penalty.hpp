// Ablation objectives (paper §4.2).
//
// (1) "Maximum Loss" ablation: replace the smoothed max-makespan with the
//     *linear* total-time cost Σ_i ζ(n_i) x_i^T t_i (keeping the barrier).
// (2) "Interior-Point Method" ablation: keep the smoothed makespan but
//     replace the log barrier with a hard hinge penalty
//     λ · max(0, γ - g(X, A)).
#pragma once

#include "matching/smooth_objective.hpp"

namespace mfcp::matching {

/// Ablation (2): F(X,T,A) = f̃(X,T) + λ max(0, γ - avg_reliability(X,A)).
///
/// Implements the KKT-differentiable interface so MFCP-AD can train
/// through it — which exposes exactly the pathology §3.2 describes: the
/// penalty's second derivatives vanish wherever the constraint is strictly
/// satisfied or strictly violated, so the reliability predictor receives
/// (almost everywhere) zero gradient through the matching layer.
class HardPenaltyObjective final : public KktDifferentiableObjective {
 public:
  HardPenaltyObjective(Matrix times, Matrix reliability, double gamma,
                       double beta, double lambda,
                       sim::SpeedupCurve speedup =
                           sim::SpeedupCurve::exclusive());

  HardPenaltyObjective(const MatchingProblem& problem, double beta,
                       double lambda);

  [[nodiscard]] std::size_t num_clusters() const noexcept override {
    return smoothed_.num_clusters();
  }
  [[nodiscard]] std::size_t num_tasks() const noexcept override {
    return smoothed_.num_tasks();
  }

  [[nodiscard]] double value(const Matrix& x) const override;
  [[nodiscard]] Matrix grad_x(const Matrix& x) const override;

  [[nodiscard]] Matrix hess_xx(const Matrix& x) const override;
  [[nodiscard]] Matrix hess_xt(const Matrix& x) const override;
  [[nodiscard]] Matrix hess_xa(const Matrix& x) const override;

 private:
  SmoothedMakespan smoothed_;
  Matrix reliability_;
  double gamma_;
  double lambda_;
};

/// Ablation (1): F(X,T,A) = Σ_i ζ(n_i) x_i^T t_i - λ log(g(X,A)).
/// The linear cost has no load-balancing pressure: whichever cluster is
/// fastest per task attracts everything, which is exactly the failure mode
/// Table 1 row (1) demonstrates.
class LinearCostBarrierObjective final : public ContinuousObjective {
 public:
  LinearCostBarrierObjective(Matrix times, Matrix reliability, double gamma,
                             double lambda,
                             sim::SpeedupCurve speedup =
                                 sim::SpeedupCurve::exclusive());

  LinearCostBarrierObjective(const MatchingProblem& problem, double lambda);

  [[nodiscard]] std::size_t num_clusters() const noexcept override {
    return times_.rows();
  }
  [[nodiscard]] std::size_t num_tasks() const noexcept override {
    return times_.cols();
  }

  [[nodiscard]] double value(const Matrix& x) const override;
  [[nodiscard]] Matrix grad_x(const Matrix& x) const override;

 private:
  [[nodiscard]] double slack(const Matrix& x) const;

  Matrix times_;
  Matrix reliability_;
  double gamma_;
  double lambda_;
  double eps_ = 1e-6;
  sim::SpeedupCurve speedup_;
};

}  // namespace mfcp::matching
