#include "matching/objective.hpp"

#include <algorithm>

#include "support/check.hpp"

namespace mfcp::matching {

namespace {

/// Per-cluster effective busy time ζ(n_i) * x_i^T t_i.
std::vector<double> busy_times(const Matrix& x, const Matrix& times,
                               const sim::SpeedupCurve& speedup) {
  MFCP_CHECK(x.same_shape(times), "X and T must both be M x N");
  std::vector<double> busy(x.rows(), 0.0);
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double load = 0.0;
    double count = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      load += x(i, j) * times(i, j);
      count += x(i, j);
    }
    busy[i] = speedup.value(count) * load;
  }
  return busy;
}

}  // namespace

double makespan(const Matrix& x, const Matrix& times,
                const sim::SpeedupCurve& speedup) {
  const auto busy = busy_times(x, times, speedup);
  return *std::max_element(busy.begin(), busy.end());
}

double makespan(const Assignment& assignment, const Matrix& times,
                const sim::SpeedupCurve& speedup) {
  return makespan(assignment_to_matrix(assignment, times.rows()), times,
                  speedup);
}

double rounding_gap(const Matrix& x, const Assignment& assignment,
                    const Matrix& times, const sim::SpeedupCurve& speedup) {
  return makespan(assignment, times, speedup) - makespan(x, times, speedup);
}

double linear_cost(const Matrix& x, const Matrix& times,
                   const sim::SpeedupCurve& speedup) {
  const auto busy = busy_times(x, times, speedup);
  double total = 0.0;
  for (double b : busy) {
    total += b;
  }
  return total;
}

double average_reliability(const Matrix& x, const Matrix& reliability) {
  MFCP_CHECK(x.same_shape(reliability), "X and A must both be M x N");
  MFCP_CHECK(x.cols() > 0, "no tasks");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    acc += x[i] * reliability[i];
  }
  return acc / static_cast<double>(x.cols());
}

double average_reliability(const Assignment& assignment,
                           const Matrix& reliability) {
  return average_reliability(
      assignment_to_matrix(assignment, reliability.rows()), reliability);
}

double reliability_slack(const Matrix& x, const MatchingProblem& problem) {
  return average_reliability(x, problem.reliability) - problem.gamma;
}

bool is_feasible(const Assignment& assignment,
                 const MatchingProblem& problem) {
  return average_reliability(assignment, problem.reliability) >=
         problem.gamma - 1e-12;
}

double utilization(const Assignment& assignment, const Matrix& times,
                   const sim::SpeedupCurve& speedup) {
  const auto busy =
      busy_times(assignment_to_matrix(assignment, times.rows()), times,
                 speedup);
  const double peak = *std::max_element(busy.begin(), busy.end());
  if (peak <= 0.0) {
    return 0.0;
  }
  double total = 0.0;
  for (double b : busy) {
    total += b;
  }
  return total / (static_cast<double>(busy.size()) * peak);
}

}  // namespace mfcp::matching
