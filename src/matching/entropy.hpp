// Entropic regularization of the relaxed matching problem.
//
// The smoothed, barrier-augmented objective (Eq. 9) is smooth, but its
// argmin over the product of simplices still frequently lies at a vertex
// (every task fully committed to one cluster). At a vertex the optimal
// matching is locally *constant* in the predictions — dX*/dT̂ = 0 — and
// decision-focused training receives no gradient: the step-function
// problem of §3.2 resurfaces at the solution rather than in the objective.
//
// Adding a small entropy term
//     F_τ(X) = F(X) + τ Σ_ij x_ij log x_ij
// makes the minimizer unique and strictly interior (standard in the DFL
// literature, e.g. Wilder et al. 2019; it is also what the paper's literal
// Algorithm-1 softmax re-projection converges to in effect — its fixed
// points satisfy a softmax condition, not a vertex condition). The KKT
// Hessian gains the diagonal τ/x_ij, which simultaneously conditions the
// sensitivity system.
#pragma once

#include <memory>

#include "matching/smooth_objective.hpp"

namespace mfcp::matching {

/// Decorator adding τ Σ x log x to any continuous objective.
class EntropicObjective final : public ContinuousObjective {
 public:
  EntropicObjective(std::unique_ptr<ContinuousObjective> base, double tau);

  [[nodiscard]] std::size_t num_clusters() const noexcept override {
    return base_->num_clusters();
  }
  [[nodiscard]] std::size_t num_tasks() const noexcept override {
    return base_->num_tasks();
  }
  [[nodiscard]] double value(const Matrix& x) const override;
  [[nodiscard]] Matrix grad_x(const Matrix& x) const override;

  [[nodiscard]] double tau() const noexcept { return tau_; }

 private:
  std::unique_ptr<ContinuousObjective> base_;
  double tau_;
};

/// Decorator adding τ Σ x log x to a KKT-differentiable objective:
/// hess_xx gains diag(τ / x); the cross blocks are untouched (the entropy
/// does not involve T or A).
class EntropicKktObjective final : public KktDifferentiableObjective {
 public:
  EntropicKktObjective(std::unique_ptr<KktDifferentiableObjective> base,
                       double tau);

  [[nodiscard]] std::size_t num_clusters() const noexcept override {
    return base_->num_clusters();
  }
  [[nodiscard]] std::size_t num_tasks() const noexcept override {
    return base_->num_tasks();
  }
  [[nodiscard]] double value(const Matrix& x) const override;
  [[nodiscard]] Matrix grad_x(const Matrix& x) const override;
  [[nodiscard]] Matrix hess_xx(const Matrix& x) const override;
  [[nodiscard]] Matrix hess_xt(const Matrix& x) const override;
  [[nodiscard]] Matrix hess_xa(const Matrix& x) const override;

  [[nodiscard]] double tau() const noexcept { return tau_; }

 private:
  std::unique_ptr<KktDifferentiableObjective> base_;
  double tau_;
};

/// Shared math: entropy value/gradient/diagonal-Hessian with a floor to
/// keep log finite at the solver's interior floor.
double entropy_value(const Matrix& x, double tau);
void add_entropy_gradient(const Matrix& x, double tau, Matrix& grad);
void add_entropy_hessian_diag(const Matrix& x, double tau, Matrix& hess);

}  // namespace mfcp::matching
