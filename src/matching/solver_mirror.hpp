// Mirror descent (exponentiated gradient) on the product of simplices.
//
// Update: X(:, j) <- normalize( X(:, j) ⊙ exp(-η ∇_j F) ).
//
// Unlike the literal Algorithm-1 update (solver_gd.hpp), whose softmax
// re-projection contracts iterates toward the uniform column, mirror
// descent's fixed points are exactly the KKT stationary points of
// min F over the simplices — which is what the implicit-differentiation
// module (diff/kkt.hpp) needs the inner solution to satisfy. It is the
// default inner solver; solver_gd remains available for paper-faithful
// ablation.
#pragma once

#include "matching/solver_gd.hpp"

namespace mfcp::matching {

struct MirrorSolverConfig {
  std::size_t max_iterations = 2000;
  double learning_rate = 0.8;
  /// Converged when the simplex-projected gradient residual (per column:
  /// max over support of |g_ij - <g_j, x_j>|) falls below this.
  double tolerance = 1e-8;
  /// Floor keeping iterates strictly interior (log-domain stability and
  /// interior KKT multipliers).
  double floor = 1e-12;
};

/// Stationarity residual: max_j max_i x_ij>floor of |g_ij - <g_j, x_j>|.
/// Zero exactly at an interior KKT point of min F s.t. columns on simplex.
double stationarity_residual(const ContinuousObjective& objective,
                             const Matrix& x, double floor = 1e-9);

SolveResult solve_mirror(const ContinuousObjective& objective,
                         const MirrorSolverConfig& config = {});

SolveResult solve_mirror_from(const ContinuousObjective& objective, Matrix x0,
                              const MirrorSolverConfig& config = {});

}  // namespace mfcp::matching
