#include "matching/entropy.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mfcp::matching {

namespace {
// Below this the entropy terms are evaluated at the floor: keeps log and
// 1/x finite at the mirror solver's interior floor.
constexpr double kEntropyFloor = 1e-12;
}  // namespace

double entropy_value(const Matrix& x, double tau) {
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = std::max(x[i], kEntropyFloor);
    acc += v * std::log(v);
  }
  return tau * acc;
}

void add_entropy_gradient(const Matrix& x, double tau, Matrix& grad) {
  MFCP_CHECK(grad.same_shape(x), "gradient shape mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double v = std::max(x[i], kEntropyFloor);
    grad[i] += tau * (1.0 + std::log(v));
  }
}

void add_entropy_hessian_diag(const Matrix& x, double tau, Matrix& hess) {
  MFCP_CHECK(hess.rows() == x.size() && hess.cols() == x.size(),
             "hessian shape mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) {
    hess(i, i) += tau / std::max(x[i], kEntropyFloor);
  }
}

EntropicObjective::EntropicObjective(
    std::unique_ptr<ContinuousObjective> base, double tau)
    : base_(std::move(base)), tau_(tau) {
  MFCP_CHECK(base_ != nullptr, "null base objective");
  MFCP_CHECK(tau_ > 0.0, "entropy weight must be positive");
}

double EntropicObjective::value(const Matrix& x) const {
  return base_->value(x) + entropy_value(x, tau_);
}

Matrix EntropicObjective::grad_x(const Matrix& x) const {
  Matrix g = base_->grad_x(x);
  add_entropy_gradient(x, tau_, g);
  return g;
}

EntropicKktObjective::EntropicKktObjective(
    std::unique_ptr<KktDifferentiableObjective> base, double tau)
    : base_(std::move(base)), tau_(tau) {
  MFCP_CHECK(base_ != nullptr, "null base objective");
  MFCP_CHECK(tau_ > 0.0, "entropy weight must be positive");
}

double EntropicKktObjective::value(const Matrix& x) const {
  return base_->value(x) + entropy_value(x, tau_);
}

Matrix EntropicKktObjective::grad_x(const Matrix& x) const {
  Matrix g = base_->grad_x(x);
  add_entropy_gradient(x, tau_, g);
  return g;
}

Matrix EntropicKktObjective::hess_xx(const Matrix& x) const {
  Matrix h = base_->hess_xx(x);
  add_entropy_hessian_diag(x, tau_, h);
  return h;
}

Matrix EntropicKktObjective::hess_xt(const Matrix& x) const {
  return base_->hess_xt(x);
}

Matrix EntropicKktObjective::hess_xa(const Matrix& x) const {
  return base_->hess_xa(x);
}

}  // namespace mfcp::matching
