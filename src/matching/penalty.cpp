#include "matching/penalty.hpp"

#include <cmath>

#include "matching/objective.hpp"
#include "support/check.hpp"

namespace mfcp::matching {

HardPenaltyObjective::HardPenaltyObjective(Matrix times, Matrix reliability,
                                           double gamma, double beta,
                                           double lambda,
                                           sim::SpeedupCurve speedup)
    : smoothed_(std::move(times), beta, speedup),
      reliability_(std::move(reliability)),
      gamma_(gamma),
      lambda_(lambda) {
  MFCP_CHECK(reliability_.same_shape(smoothed_.times()),
             "reliability must be M x N");
  MFCP_CHECK(lambda_ > 0.0, "penalty weight must be positive");
}

HardPenaltyObjective::HardPenaltyObjective(const MatchingProblem& problem,
                                           double beta, double lambda)
    : HardPenaltyObjective(problem.times, problem.reliability, problem.gamma,
                           beta, lambda, problem.speedup) {}

double HardPenaltyObjective::value(const Matrix& x) const {
  const double violation =
      std::max(0.0, gamma_ - average_reliability(x, reliability_));
  return smoothed_.value(x) + lambda_ * violation;
}

Matrix HardPenaltyObjective::grad_x(const Matrix& x) const {
  Matrix g = smoothed_.grad_x(x);
  const double avg = average_reliability(x, reliability_);
  if (avg < gamma_) {
    // Subgradient of the hinge: -lambda * a_ij / N while violated, exactly
    // zero otherwise — the vanishing-gradient problem §3.2 describes.
    const double n = static_cast<double>(num_tasks());
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] -= lambda_ * reliability_[i] / n;
    }
  }
  return g;
}

Matrix HardPenaltyObjective::hess_xx(const Matrix& x) const {
  // The hinge is piecewise linear in X: zero curvature almost everywhere.
  return smoothed_.hess_xx_exclusive(x);
}

Matrix HardPenaltyObjective::hess_xt(const Matrix& x) const {
  return smoothed_.hess_xt_exclusive(x);
}

Matrix HardPenaltyObjective::hess_xa(const Matrix& x) const {
  const std::size_t mn = x.size();
  Matrix h(mn, mn, 0.0);
  // d(dF/dx_ij)/da_kl: zero when the constraint is satisfied (the §3.2
  // vanishing-gradient pathology); -lambda/N on the diagonal while
  // violated.
  if (average_reliability(x, reliability_) < gamma_) {
    const double c = -lambda_ / static_cast<double>(num_tasks());
    for (std::size_t r = 0; r < mn; ++r) {
      h(r, r) = c;
    }
  }
  return h;
}

LinearCostBarrierObjective::LinearCostBarrierObjective(
    Matrix times, Matrix reliability, double gamma, double lambda,
    sim::SpeedupCurve speedup)
    : times_(std::move(times)),
      reliability_(std::move(reliability)),
      gamma_(gamma),
      lambda_(lambda),
      speedup_(speedup) {
  MFCP_CHECK(reliability_.same_shape(times_), "reliability must be M x N");
  MFCP_CHECK(lambda_ > 0.0, "barrier weight must be positive");
}

LinearCostBarrierObjective::LinearCostBarrierObjective(
    const MatchingProblem& problem, double lambda)
    : LinearCostBarrierObjective(problem.times, problem.reliability,
                                 problem.gamma, lambda, problem.speedup) {}

double LinearCostBarrierObjective::slack(const Matrix& x) const {
  return average_reliability(x, reliability_) - gamma_;
}

double LinearCostBarrierObjective::value(const Matrix& x) const {
  const double cost = linear_cost(x, times_, speedup_);
  const double s = slack(x);
  if (s > eps_) {
    return cost - lambda_ * std::log(s);
  }
  return cost - lambda_ * (std::log(eps_) + (s - eps_) / eps_);
}

Matrix LinearCostBarrierObjective::grad_x(const Matrix& x) const {
  MFCP_CHECK(x.same_shape(times_), "X shape mismatch");
  Matrix g(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    double load = 0.0;
    double count = 0.0;
    for (std::size_t j = 0; j < x.cols(); ++j) {
      load += x(i, j) * times_(i, j);
      count += x(i, j);
    }
    const double zeta = speedup_.value(count);
    const double dzeta = speedup_.derivative(count);
    for (std::size_t j = 0; j < x.cols(); ++j) {
      g(i, j) = dzeta * load + zeta * times_(i, j);
    }
  }
  const double s = slack(x);
  const double dbarrier = s > eps_ ? -lambda_ / s : -lambda_ / eps_;
  const double n = static_cast<double>(num_tasks());
  for (std::size_t i = 0; i < g.size(); ++i) {
    g[i] += dbarrier * reliability_[i] / n;
  }
  return g;
}

}  // namespace mfcp::matching
