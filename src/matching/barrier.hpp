// Interior-point (log-barrier) objective — paper Eq. (9):
//     F(X, T, A) = f̃(X, T) - λ log( g(X, A) )
// with g(X, A) = (1/N) Σ_i x_i^T a_i - γ (see problem.hpp for the
// normalization note). Folding Â into the objective restores meaningful
// gradients with respect to the predicted reliability (§3.2, factor 3).
//
// Below the barrier's domain boundary (slack <= eps) the log is extended
// linearly, keeping F finite and C¹ so the solvers can recover from an
// infeasible iterate instead of producing NaNs.
#pragma once

#include "matching/smooth_objective.hpp"

namespace mfcp::matching {

struct BarrierConfig {
  /// Log-sum-exp sharpness (Theorem 1). The smoothing error is log(M)/beta
  /// in the same units as the makespan, so beta should be set relative to
  /// the expected cluster busy times (~hours here). Too-sharp values make
  /// the cluster weights one-hot and starve the KKT sensitivities.
  double beta = 2.0;
  double lambda = 0.1;  // barrier weight λ
  /// Linear-extension threshold: below this slack the log is extended
  /// linearly, bounding the barrier gradient by lambda/slack_epsilon.
  double slack_epsilon = 1e-3;
};

class BarrierObjective final : public KktDifferentiableObjective {
 public:
  BarrierObjective(Matrix times, Matrix reliability, double gamma,
                   BarrierConfig config = {},
                   sim::SpeedupCurve speedup = sim::SpeedupCurve::exclusive());

  /// Convenience: build from a MatchingProblem.
  BarrierObjective(const MatchingProblem& problem, BarrierConfig config = {});

  [[nodiscard]] std::size_t num_clusters() const noexcept override {
    return smoothed_.num_clusters();
  }
  [[nodiscard]] std::size_t num_tasks() const noexcept override {
    return smoothed_.num_tasks();
  }

  [[nodiscard]] double value(const Matrix& x) const override;
  [[nodiscard]] Matrix grad_x(const Matrix& x) const override;

  /// Hessian blocks needed by the KKT sensitivity system (Eq. 15). Only
  /// defined for exclusive execution (ζ ≡ 1), where F is convex in X —
  /// matching the paper, which restricts analytical differentiation
  /// (MFCP-AD) to the convex case. Flattened index = i * N + j.
  [[nodiscard]] Matrix hess_xx(const Matrix& x) const override;
  [[nodiscard]] Matrix hess_xt(const Matrix& x) const override;
  [[nodiscard]] Matrix hess_xa(const Matrix& x) const override;

  [[nodiscard]] double reliability_slack(const Matrix& x) const;

  [[nodiscard]] const SmoothedMakespan& smoothed() const noexcept {
    return smoothed_;
  }
  [[nodiscard]] const Matrix& reliability() const noexcept {
    return reliability_;
  }
  [[nodiscard]] double gamma() const noexcept { return gamma_; }
  [[nodiscard]] const BarrierConfig& config() const noexcept {
    return config_;
  }

 private:
  /// -λ log(slack) with linear extension below slack_epsilon; also its
  /// derivative with respect to slack.
  [[nodiscard]] double barrier_value(double slack) const;
  [[nodiscard]] double barrier_derivative(double slack) const;

  SmoothedMakespan smoothed_;
  Matrix reliability_;
  double gamma_;
  BarrierConfig config_;
};

}  // namespace mfcp::matching
