#include "matching/problem.hpp"

#include "support/check.hpp"

namespace mfcp::matching {

void MatchingProblem::validate() const {
  MFCP_CHECK(times.rows() > 0 && times.cols() > 0,
             "matching problem needs clusters and tasks");
  MFCP_CHECK(times.same_shape(reliability),
             "times and reliability must both be M x N");
  MFCP_CHECK(gamma >= 0.0 && gamma <= 1.0, "gamma must be in [0, 1]");
  for (std::size_t i = 0; i < times.size(); ++i) {
    MFCP_CHECK(times[i] > 0.0, "execution times must be positive");
    MFCP_CHECK(reliability[i] >= 0.0 && reliability[i] <= 1.0,
               "reliability entries must be probabilities");
  }
}

MatchingProblem MatchingProblem::with_metrics(Matrix t, Matrix a) const {
  MatchingProblem p = *this;
  p.times = std::move(t);
  p.reliability = std::move(a);
  return p;
}

Matrix assignment_to_matrix(const Assignment& assignment,
                            std::size_t num_clusters) {
  Matrix x(num_clusters, assignment.size(), 0.0);
  for (std::size_t j = 0; j < assignment.size(); ++j) {
    const int i = assignment[j];
    MFCP_CHECK(i >= 0 && static_cast<std::size_t>(i) < num_clusters,
               "assignment references unknown cluster");
    x(static_cast<std::size_t>(i), j) = 1.0;
  }
  return x;
}

Assignment matrix_to_assignment(const Matrix& x) {
  Assignment assignment(x.cols(), 0);
  for (std::size_t j = 0; j < x.cols(); ++j) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < x.rows(); ++i) {
      if (x(i, j) > x(best, j)) {
        best = i;
      }
    }
    assignment[j] = static_cast<int>(best);
  }
  return assignment;
}

std::vector<double> cluster_loads(const Assignment& assignment,
                                  const Matrix& times) {
  std::vector<double> loads(times.rows(), 0.0);
  for (std::size_t j = 0; j < assignment.size(); ++j) {
    const auto i = static_cast<std::size_t>(assignment[j]);
    MFCP_CHECK(i < times.rows(), "assignment references unknown cluster");
    loads[i] += times(i, j);
  }
  return loads;
}

}  // namespace mfcp::matching
