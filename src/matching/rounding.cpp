#include "matching/rounding.hpp"

#include <algorithm>

#include "matching/objective.hpp"
#include "support/check.hpp"

namespace mfcp::matching {

Assignment round_argmax(const Matrix& x) { return matrix_to_assignment(x); }

Assignment round_with_repair(const Matrix& x,
                             const MatchingProblem& problem) {
  Assignment assignment = round_argmax(x);
  const std::size_t m = problem.num_clusters();
  const std::size_t n = problem.num_tasks();
  MFCP_CHECK(assignment.size() == n, "rounded assignment length mismatch");

  auto avg_rel = [&]() {
    return average_reliability(assignment, problem.reliability);
  };
  while (avg_rel() < problem.gamma - 1e-12) {
    double best_score = 0.0;
    std::size_t best_j = n;
    int best_target = -1;
    const double base_ms =
        makespan(assignment, problem.times, problem.speedup);
    for (std::size_t j = 0; j < n; ++j) {
      const int from = assignment[j];
      for (std::size_t i = 0; i < m; ++i) {
        if (static_cast<int>(i) == from) {
          continue;
        }
        const double drel =
            problem.reliability(i, j) -
            problem.reliability(static_cast<std::size_t>(from), j);
        if (drel <= 0.0) {
          continue;
        }
        assignment[j] = static_cast<int>(i);
        const double dms = std::max(
            makespan(assignment, problem.times, problem.speedup) - base_ms,
            1e-9);
        assignment[j] = from;
        const double score = drel / dms;
        if (score > best_score) {
          best_score = score;
          best_j = j;
          best_target = static_cast<int>(i);
        }
      }
    }
    if (best_j == n) {
      break;
    }
    assignment[best_j] = best_target;
  }
  return assignment;
}

Assignment improve_local_search(Assignment assignment,
                                const MatchingProblem& problem,
                                std::size_t max_passes) {
  const std::size_t m = problem.num_clusters();
  const std::size_t n = problem.num_tasks();
  MFCP_CHECK(assignment.size() == n, "assignment length mismatch");

  for (std::size_t pass = 0; pass < max_passes; ++pass) {
    bool improved = false;
    double current_ms = makespan(assignment, problem.times, problem.speedup);
    // Single-task moves.
    for (std::size_t j = 0; j < n; ++j) {
      const int from = assignment[j];
      for (std::size_t i = 0; i < m; ++i) {
        if (static_cast<int>(i) == from) {
          continue;
        }
        assignment[j] = static_cast<int>(i);
        const double ms =
            makespan(assignment, problem.times, problem.speedup);
        if (ms < current_ms - 1e-12 && is_feasible(assignment, problem)) {
          current_ms = ms;
          improved = true;
        } else {
          assignment[j] = from;
        }
      }
    }
    // Pairwise swaps: escape the local optima single moves cannot leave
    // (e.g. exchanging a long and a short task between two busy clusters).
    for (std::size_t j1 = 0; j1 < n; ++j1) {
      for (std::size_t j2 = j1 + 1; j2 < n; ++j2) {
        if (assignment[j1] == assignment[j2]) {
          continue;
        }
        std::swap(assignment[j1], assignment[j2]);
        const double ms =
            makespan(assignment, problem.times, problem.speedup);
        if (ms < current_ms - 1e-12 && is_feasible(assignment, problem)) {
          current_ms = ms;
          improved = true;
        } else {
          std::swap(assignment[j1], assignment[j2]);
        }
      }
    }
    if (!improved) {
      break;
    }
  }
  return assignment;
}

}  // namespace mfcp::matching
