#include "matching/solver_gd.hpp"

#include "linalg/vector_ops.hpp"
#include "support/check.hpp"

namespace mfcp::matching {

Matrix uniform_start(std::size_t num_clusters, std::size_t num_tasks) {
  MFCP_CHECK(num_clusters > 0 && num_tasks > 0, "empty problem");
  return Matrix(num_clusters, num_tasks,
                1.0 / static_cast<double>(num_clusters));
}

SolveResult solve_gd(const ContinuousObjective& objective,
                     const GdSolverConfig& config) {
  return solve_gd_from(
      objective,
      uniform_start(objective.num_clusters(), objective.num_tasks()), config);
}

SolveResult solve_gd_from(const ContinuousObjective& objective, Matrix x0,
                          const GdSolverConfig& config) {
  MFCP_CHECK(x0.rows() == objective.num_clusters() &&
                 x0.cols() == objective.num_tasks(),
             "start point shape mismatch");
  MFCP_CHECK(config.learning_rate > 0.0, "learning rate must be positive");

  SolveResult result;
  Matrix x = std::move(x0);
  softmax_columns_inplace(x);  // project the start onto the simplices

  // The literal Algorithm-1 update is not a descent method (the softmax
  // re-projection can move uphill), so we track and return the best
  // iterate seen — the natural anytime reading of the algorithm.
  Matrix best = x;
  double best_value = objective.value(x);

  for (std::size_t it = 0; it < config.max_iterations; ++it) {
    const Matrix grad = objective.grad_x(x);
    Matrix next = x;
    axpy(-config.learning_rate, grad, next);
    softmax_columns_inplace(next);  // line 4 of Algorithm 1

    double delta = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      delta = std::max(delta, std::abs(next[i] - x[i]));
    }
    x = std::move(next);
    const double value = objective.value(x);
    if (value < best_value) {
      best_value = value;
      best = x;
    }
    result.iterations = it + 1;
    result.residual = delta;
    if (delta < config.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.objective = best_value;
  result.x = std::move(best);
  return result;
}

}  // namespace mfcp::matching
