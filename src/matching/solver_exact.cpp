#include "matching/solver_exact.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "matching/objective.hpp"
#include "support/log.hpp"
#include "support/check.hpp"

namespace mfcp::matching {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double assignment_makespan(const Assignment& assignment,
                           const MatchingProblem& problem) {
  return makespan(assignment, problem.times, problem.speedup);
}

/// Depth-first branch-and-bound state.
class BranchAndBound {
 public:
  BranchAndBound(const MatchingProblem& problem,
                 const ExactSolverConfig& config)
      : problem_(problem),
        config_(config),
        m_(problem.num_clusters()),
        n_(problem.num_tasks()),
        zeta_floor_(problem.speedup.is_constant()
                        ? 1.0
                        : problem.speedup.value(1e9)),
        loads_(m_, 0.0),
        counts_(m_, 0),
        current_(n_, -1) {
    // Assign long tasks first: their placement constrains the makespan
    // most, so bad branches are pruned near the root.
    order_.resize(n_);
    std::iota(order_.begin(), order_.end(), 0);
    std::vector<double> min_time(n_, 0.0);
    min_rest_.assign(n_ + 1, 0.0);
    max_rel_rest_.assign(n_ + 1, 0.0);
    for (std::size_t j = 0; j < n_; ++j) {
      double tmin = kInf;
      for (std::size_t i = 0; i < m_; ++i) {
        tmin = std::min(tmin, problem_.times(i, j));
      }
      min_time[j] = tmin;
    }
    std::sort(order_.begin(), order_.end(),
              [&](std::size_t a, std::size_t b) {
                return min_time[a] > min_time[b];
              });
    // Suffix sums over the *sorted* order for the bounds.
    for (std::size_t pos = n_; pos-- > 0;) {
      const std::size_t j = order_[pos];
      double amax = 0.0;
      for (std::size_t i = 0; i < m_; ++i) {
        amax = std::max(amax, problem_.reliability(i, j));
      }
      min_rest_[pos] = min_rest_[pos + 1] + min_time[j];
      max_rel_rest_[pos] = max_rel_rest_[pos + 1] + amax;
    }
  }

  ExactSolution run(const ExactSolution& incumbent) {
    best_ = incumbent;
    if (!best_.feasible) {
      best_.objective = kInf;
    }
    best_any_objective_ = kInf;
    best_any_ = incumbent.assignment;
    aborted_ = false;
    dfs(0, 0.0);

    ExactSolution out;
    out.nodes_explored = nodes_;
    if (aborted_) {
      MFCP_LOG(kWarn) << "branch-and-bound node budget exhausted after "
                      << nodes_ << " nodes; returning best incumbent";
    }
    if (best_.objective < kInf) {
      out.assignment = best_.assignment;
      out.objective = best_.objective;
      out.feasible = true;
    } else {
      out.assignment = best_any_;
      out.objective = best_any_objective_;
      out.feasible = false;
    }
    out.proven_optimal = !aborted_;
    return out;
  }

 private:
  [[nodiscard]] double current_makespan() const {
    double best = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      best = std::max(
          best, problem_.speedup.value(static_cast<double>(counts_[i])) *
                    loads_[i]);
    }
    return best;
  }

  void dfs(std::size_t pos, double rel_sum) {
    if (config_.node_budget != 0 && nodes_ >= config_.node_budget) {
      aborted_ = true;
      return;
    }
    ++nodes_;

    if (pos == n_) {
      const double ms = current_makespan();
      if (ms < best_any_objective_) {
        best_any_objective_ = ms;
        best_any_ = current_;
      }
      const double avg_rel = rel_sum / static_cast<double>(n_);
      if (avg_rel >= problem_.gamma - 1e-12 && ms < best_.objective) {
        best_.objective = ms;
        best_.assignment = current_;
        best_.feasible = true;
      }
      return;
    }

    // Reliability bound: even giving every remaining task its best
    // cluster cannot reach the threshold -> prune the feasible search
    // (but keep exploring only if we might still improve best_any_).
    const bool can_be_feasible =
        rel_sum + max_rel_rest_[pos] >=
        problem_.gamma * static_cast<double>(n_) - 1e-12;

    // Makespan lower bounds valid under any completion:
    //  - every cluster's final busy time >= zeta_floor * current load;
    //  - averaging bound: total remaining work is at least min_rest.
    double max_load = 0.0;
    double total_load = 0.0;
    for (std::size_t i = 0; i < m_; ++i) {
      max_load = std::max(max_load, loads_[i]);
      total_load += loads_[i];
    }
    const double lb = std::max(
        zeta_floor_ * max_load,
        zeta_floor_ * (total_load + min_rest_[pos]) /
            static_cast<double>(m_));
    const double ub =
        can_be_feasible ? std::max(best_.objective, best_any_objective_)
                        : best_any_objective_;
    if (lb >= ub) {
      return;
    }

    const std::size_t j = order_[pos];
    // Visit clusters in order of resulting load: good incumbents early.
    std::vector<std::size_t> cluster_order(m_);
    std::iota(cluster_order.begin(), cluster_order.end(), 0);
    std::sort(cluster_order.begin(), cluster_order.end(),
              [&](std::size_t a, std::size_t b) {
                return loads_[a] + problem_.times(a, j) <
                       loads_[b] + problem_.times(b, j);
              });
    for (std::size_t i : cluster_order) {
      loads_[i] += problem_.times(i, j);
      counts_[i] += 1;
      current_[j] = static_cast<int>(i);
      dfs(pos + 1, rel_sum + problem_.reliability(i, j));
      loads_[i] -= problem_.times(i, j);
      counts_[i] -= 1;
      current_[j] = -1;
      if (aborted_) {
        return;
      }
    }
  }

  const MatchingProblem& problem_;
  const ExactSolverConfig& config_;
  std::size_t m_;
  std::size_t n_;
  double zeta_floor_;

  std::vector<std::size_t> order_;
  std::vector<double> min_rest_;      // suffix sum of min task times
  std::vector<double> max_rel_rest_;  // suffix sum of max reliabilities

  std::vector<double> loads_;
  std::vector<int> counts_;
  Assignment current_;

  ExactSolution best_;
  Assignment best_any_;
  double best_any_objective_ = kInf;
  std::size_t nodes_ = 0;
  bool aborted_ = false;
};

}  // namespace

ExactSolution solve_enumeration(const MatchingProblem& problem) {
  problem.validate();
  const std::size_t m = problem.num_clusters();
  const std::size_t n = problem.num_tasks();
  const double combos = std::pow(static_cast<double>(m),
                                 static_cast<double>(n));
  MFCP_CHECK(combos <= static_cast<double>(1u << 26),
             "enumeration limited to M^N <= 2^26");

  ExactSolution best;
  best.objective = kInf;
  Assignment best_any;
  double best_any_obj = kInf;

  Assignment current(n, 0);
  std::size_t explored = 0;
  for (;;) {
    ++explored;
    const double ms = assignment_makespan(current, problem);
    if (ms < best_any_obj) {
      best_any_obj = ms;
      best_any = current;
    }
    if (is_feasible(current, problem) && ms < best.objective) {
      best.objective = ms;
      best.assignment = current;
      best.feasible = true;
    }
    // Odometer increment over clusters.
    std::size_t j = 0;
    while (j < n) {
      current[j] += 1;
      if (static_cast<std::size_t>(current[j]) < m) {
        break;
      }
      current[j] = 0;
      ++j;
    }
    if (j == n) {
      break;
    }
  }
  best.nodes_explored = explored;
  best.proven_optimal = true;
  if (!best.feasible) {
    best.assignment = best_any;
    best.objective = best_any_obj;
  }
  return best;
}

ExactSolution solve_greedy(const MatchingProblem& problem) {
  problem.validate();
  const std::size_t m = problem.num_clusters();
  const std::size_t n = problem.num_tasks();

  // LPT: longest tasks first, each to the cluster minimizing its resulting
  // effective busy time.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> min_time(n);
  for (std::size_t j = 0; j < n; ++j) {
    double tmin = kInf;
    for (std::size_t i = 0; i < m; ++i) {
      tmin = std::min(tmin, problem.times(i, j));
    }
    min_time[j] = tmin;
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return min_time[a] > min_time[b];
  });

  Assignment assignment(n, 0);
  std::vector<double> loads(m, 0.0);
  std::vector<int> counts(m, 0);
  for (std::size_t j : order) {
    std::size_t best_i = 0;
    double best_busy = kInf;
    for (std::size_t i = 0; i < m; ++i) {
      const double busy =
          problem.speedup.value(static_cast<double>(counts[i] + 1)) *
          (loads[i] + problem.times(i, j));
      if (busy < best_busy) {
        best_busy = busy;
        best_i = i;
      }
    }
    assignment[j] = static_cast<int>(best_i);
    loads[best_i] += problem.times(best_i, j);
    counts[best_i] += 1;
  }

  // Reliability repair: greedily move the task with the best reliability
  // gain per unit makespan increase until feasible or no move helps.
  auto avg_rel = [&]() {
    return average_reliability(assignment, problem.reliability);
  };
  while (avg_rel() < problem.gamma - 1e-12) {
    double best_score = 0.0;
    std::size_t best_j = n;
    int best_target = -1;
    const double base_ms = assignment_makespan(assignment, problem);
    for (std::size_t j = 0; j < n; ++j) {
      const int from = assignment[j];
      for (std::size_t i = 0; i < m; ++i) {
        if (static_cast<int>(i) == from) {
          continue;
        }
        const double drel =
            problem.reliability(i, j) -
            problem.reliability(static_cast<std::size_t>(from), j);
        if (drel <= 0.0) {
          continue;
        }
        assignment[j] = static_cast<int>(i);
        const double dms =
            std::max(assignment_makespan(assignment, problem) - base_ms,
                     1e-9);
        assignment[j] = from;
        const double score = drel / dms;
        if (score > best_score) {
          best_score = score;
          best_j = j;
          best_target = static_cast<int>(i);
        }
      }
    }
    if (best_j == n) {
      break;  // no reliability-improving move exists
    }
    assignment[best_j] = best_target;
  }

  ExactSolution out;
  out.assignment = assignment;
  out.objective = assignment_makespan(assignment, problem);
  out.feasible = is_feasible(assignment, problem);
  out.proven_optimal = false;
  return out;
}

ExactSolution solve_exact(const MatchingProblem& problem,
                          const ExactSolverConfig& config) {
  problem.validate();
  if (config.prefer_enumeration) {
    const double combos =
        std::pow(static_cast<double>(problem.num_clusters()),
                 static_cast<double>(problem.num_tasks()));
    if (combos <= static_cast<double>(1u << 20)) {
      return solve_enumeration(problem);
    }
  }
  const ExactSolution incumbent = solve_greedy(problem);
  BranchAndBound search(problem, config);
  return search.run(incumbent);
}

}  // namespace mfcp::matching
