#include "mfcp/trainer_tsm.hpp"

#include "autograd/ops.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace mfcp::core {

TsmTrainResult train_tsm(PlatformPredictor& predictor,
                         const sim::Dataset& train, const TsmConfig& config) {
  MFCP_CHECK(train.num_clusters() == predictor.num_clusters(),
             "dataset and predictor disagree on cluster count");
  MFCP_CHECK(config.epochs > 0, "need at least one epoch");
  const std::size_t n = train.num_tasks();
  MFCP_CHECK(n > 0, "empty training set");

  Stopwatch watch;
  TsmTrainResult result;
  Rng rng(config.seed);

  const std::size_t m = predictor.num_clusters();
  std::vector<std::unique_ptr<nn::Adam>> time_opts;
  std::vector<std::unique_ptr<nn::Adam>> rel_opts;
  for (std::size_t i = 0; i < m; ++i) {
    time_opts.push_back(std::make_unique<nn::Adam>(
        predictor.cluster(i).time_model().parameters(),
        config.learning_rate));
    rel_opts.push_back(std::make_unique<nn::Adam>(
        predictor.cluster(i).reliability_model().parameters(),
        config.learning_rate));
  }

  const bool full_batch = n <= config.batch_size;
  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    // Build this epoch's batch (same batch for every cluster, fair).
    std::vector<std::size_t> batch_idx;
    if (full_batch) {
      batch_idx.resize(n);
      for (std::size_t j = 0; j < n; ++j) {
        batch_idx[j] = j;
      }
    } else {
      const auto order = rng.permutation(n);
      batch_idx.assign(order.begin(), order.begin() + config.batch_size);
    }
    const std::size_t b = batch_idx.size();
    Matrix features(b, train.feature_dim());
    for (std::size_t k = 0; k < b; ++k) {
      for (std::size_t c = 0; c < train.feature_dim(); ++c) {
        features(k, c) = train.features(batch_idx[k], c);
      }
    }

    double epoch_time_loss = 0.0;
    double epoch_rel_loss = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      Matrix t_target(b, 1);
      Matrix a_target(b, 1);
      for (std::size_t k = 0; k < b; ++k) {
        t_target(k, 0) = train.times(i, batch_idx[k]);
        a_target(k, 0) = train.reliability(i, batch_idx[k]);
      }

      auto& cluster = predictor.cluster(i);
      {
        nn::Variable in(features, /*requires_grad=*/false);
        auto pred = cluster.forward_time(in);
        auto loss = nn::mse(pred, t_target);
        epoch_time_loss += loss.value()[0];
        time_opts[i]->zero_grad();
        loss.backward();
        time_opts[i]->step();
      }
      {
        nn::Variable in(features, /*requires_grad=*/false);
        auto pred = cluster.forward_reliability(in);
        auto loss = nn::mse(pred, a_target);
        epoch_rel_loss += loss.value()[0];
        rel_opts[i]->zero_grad();
        loss.backward();
        rel_opts[i]->step();
      }
    }
    result.time_loss_history.push_back(epoch_time_loss /
                                       static_cast<double>(m));
    result.rel_loss_history.push_back(epoch_rel_loss /
                                      static_cast<double>(m));
  }

  result.seconds = watch.seconds();
  return result;
}

}  // namespace mfcp::core
