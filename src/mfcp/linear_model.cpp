#include "mfcp/linear_model.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/qr.hpp"
#include "support/check.hpp"

namespace mfcp::core {

namespace {

/// Design matrix with optional intercept column, rows scaled by
/// sqrt(sample weight) (weighted least squares via row scaling).
Matrix design(const Matrix& features, bool intercept,
              const std::vector<double>& weights) {
  const std::size_t s = features.rows();
  const std::size_t d = features.cols();
  Matrix x(s, d + (intercept ? 1 : 0));
  for (std::size_t i = 0; i < s; ++i) {
    const double w =
        weights.empty() ? 1.0 : std::sqrt(std::max(weights[i], 0.0));
    for (std::size_t j = 0; j < d; ++j) {
      x(i, j) = w * features(i, j);
    }
    if (intercept) {
      x(i, d) = w;
    }
  }
  return x;
}

Matrix weighted_target(const Matrix& row, const std::vector<double>& weights) {
  Matrix y(row.size(), 1);
  for (std::size_t i = 0; i < row.size(); ++i) {
    const double w =
        weights.empty() ? 1.0 : std::sqrt(std::max(weights[i], 0.0));
    y[i] = w * row[i];
  }
  return y;
}

}  // namespace

LinearClusterModel::LinearClusterModel(
    const Matrix& features, const Matrix& time_row, const Matrix& rel_row,
    const std::vector<double>& sample_weights, const LinearModelConfig& config)
    : intercept_(config.fit_intercept) {
  MFCP_CHECK(time_row.size() == features.rows(),
             "time labels must match sample count");
  MFCP_CHECK(rel_row.size() == features.rows(),
             "reliability labels must match sample count");
  MFCP_CHECK(sample_weights.empty() ||
                 sample_weights.size() == features.rows(),
             "weights must match sample count");
  const Matrix x = design(features, intercept_, sample_weights);
  w_time_ = ridge_regression(x, weighted_target(time_row, sample_weights),
                             config.ridge_lambda);
  w_rel_ = ridge_regression(x, weighted_target(rel_row, sample_weights),
                            config.ridge_lambda);
}

Matrix LinearClusterModel::predict(const Matrix& features,
                                   const Matrix& weights) const {
  const std::size_t n = features.rows();
  const std::size_t d = features.cols();
  MFCP_CHECK(weights.size() == d + (intercept_ ? 1 : 0),
             "feature width mismatch");
  Matrix out(1, n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = intercept_ ? weights[d] : 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      acc += features(i, j) * weights[j];
    }
    out[i] = acc;
  }
  return out;
}

Matrix LinearClusterModel::predict_time_row(const Matrix& features) const {
  Matrix t = predict(features, w_time_);
  for (std::size_t i = 0; i < t.size(); ++i) {
    t[i] = std::max(t[i], 1e-3);
  }
  return t;
}

Matrix LinearClusterModel::predict_reliability_row(
    const Matrix& features) const {
  Matrix a = predict(features, w_rel_);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = std::clamp(a[i], 0.01, 0.999);
  }
  return a;
}

LinearPlatformModel::LinearPlatformModel(const sim::Dataset& train,
                                         const LinearModelConfig& config)
    : LinearPlatformModel(train, Matrix(), config) {}

LinearPlatformModel::LinearPlatformModel(const sim::Dataset& train,
                                         const Matrix& weights,
                                         const LinearModelConfig& config) {
  MFCP_CHECK(train.num_tasks() > train.feature_dim(),
             "need more samples than features for a stable fit");
  MFCP_CHECK(weights.empty() ||
                 (weights.rows() == train.num_clusters() &&
                  weights.cols() == train.num_tasks()),
             "weights must be M x n over the training set");
  const std::size_t m = train.num_clusters();
  models_.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    Matrix t_row(1, train.num_tasks());
    Matrix a_row(1, train.num_tasks());
    std::vector<double> w;
    if (!weights.empty()) {
      w.resize(train.num_tasks());
    }
    for (std::size_t j = 0; j < train.num_tasks(); ++j) {
      t_row[j] = train.times(i, j);
      a_row[j] = train.reliability(i, j);
      if (!weights.empty()) {
        w[j] = weights(i, j);
      }
    }
    models_.emplace_back(train.features, t_row, a_row, w, config);
  }
}

const LinearClusterModel& LinearPlatformModel::cluster(std::size_t i) const {
  MFCP_CHECK(i < models_.size(), "cluster index out of range");
  return models_[i];
}

Matrix LinearPlatformModel::predict_time_matrix(const Matrix& features) const {
  Matrix t(models_.size(), features.rows());
  for (std::size_t i = 0; i < models_.size(); ++i) {
    const Matrix row = models_[i].predict_time_row(features);
    for (std::size_t j = 0; j < features.rows(); ++j) {
      t(i, j) = row[j];
    }
  }
  return t;
}

Matrix LinearPlatformModel::predict_reliability_matrix(
    const Matrix& features) const {
  Matrix a(models_.size(), features.rows());
  for (std::size_t i = 0; i < models_.size(); ++i) {
    const Matrix row = models_[i].predict_reliability_row(features);
    for (std::size_t j = 0; j < features.rows(); ++j) {
      a(i, j) = row[j];
    }
  }
  return a;
}

}  // namespace mfcp::core
