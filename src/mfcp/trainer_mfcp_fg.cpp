#include "mfcp/trainer_mfcp_fg.hpp"

#include <algorithm>

#include "matching/objective.hpp"
#include "matching/rounding.hpp"
#include "mfcp/detail/round.hpp"
#include "mfcp/regret.hpp"
#include "mfcp/trainer_tsm.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "support/stopwatch.hpp"

namespace mfcp::core {

namespace {

void backward_cluster(const MfcpConfig& config, const detail::Round& round,
                      std::size_t cluster_index, nn::Variable& t_hat,
                      nn::Variable& a_hat, Matrix seed_t, Matrix seed_a,
                      const Matrix& scale) {
  const std::size_t n = round.features.rows();
  detail::clip_norm(seed_t, config.seed_clip_norm);
  detail::clip_norm(seed_a, config.seed_clip_norm);

  Matrix t_target(n, 1);
  Matrix a_target(n, 1);
  for (std::size_t j = 0; j < n; ++j) {
    t_target(j, 0) = round.times(cluster_index, j);
    a_target(j, 0) = round.reliability(cluster_index, j);
  }
  auto loss_t = detail::inject_gradient(t_hat, seed_t);
  if (config.anchor_weight > 0.0) {
    loss_t = autograd::add(loss_t,
                           autograd::scale(nn::mse(t_hat, t_target),
                                           config.anchor_weight));
  }
  loss_t.backward(scale);

  auto loss_a = detail::inject_gradient(a_hat, seed_a);
  if (config.anchor_weight > 0.0) {
    loss_a = autograd::add(loss_a,
                           autograd::scale(nn::mse(a_hat, a_target),
                                           config.anchor_weight));
  }
  loss_a.backward(scale);
}

}  // namespace

MfcpTrainResult train_mfcp_fg(PlatformPredictor& predictor,
                              const sim::Dataset& train,
                              const MfcpConfig& config, ThreadPool* pool) {
  MFCP_CHECK(train.num_clusters() == predictor.num_clusters(),
             "dataset and predictor disagree on cluster count");
  MFCP_CHECK(config.rounds_per_step > 0, "need at least one round per step");
  Stopwatch watch;
  MfcpTrainResult result;
  Rng rng(config.seed);

  if (config.pretrain) {
    TsmConfig pre;
    pre.epochs = config.pretrain_epochs;
    pre.learning_rate = config.pretrain_learning_rate;
    pre.seed = rng.next_u64();
    train_tsm(predictor, train, pre);
  }

  const std::size_t m = predictor.num_clusters();
  std::vector<std::unique_ptr<nn::Adam>> time_opts;
  std::vector<std::unique_ptr<nn::Adam>> rel_opts;
  for (std::size_t i = 0; i < m; ++i) {
    time_opts.push_back(std::make_unique<nn::Adam>(
        predictor.cluster(i).time_model().parameters(),
        config.learning_rate));
    rel_opts.push_back(std::make_unique<nn::Adam>(
        predictor.cluster(i).reliability_model().parameters(),
        config.learning_rate));
  }

  // Solver for Algorithm 2's inner matching problems: minimizes the
  // configured objective over relaxed assignments for arbitrary (T, A).
  // Perturbed inputs may stray outside the valid metric ranges; clamp.
  const auto solve_matching = [&config](const Matrix& t,
                                        const Matrix& a) -> Matrix {
    Matrix tc = t;
    Matrix ac = a;
    for (std::size_t k = 0; k < tc.size(); ++k) {
      tc[k] = std::max(tc[k], 1e-4);
      ac[k] = std::clamp(ac[k], 0.0, 1.0);
    }
    const auto objective =
        detail::make_objective(config, std::move(tc), std::move(ac));
    return matching::solve_mirror(*objective, config.solver).x;
  };

  const std::size_t n = config.round_tasks;
  const Matrix batch_scale(
      1, 1, 1.0 / static_cast<double>(config.rounds_per_step));

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::size_t i = 0; i < m; ++i) {
      time_opts[i]->zero_grad();
      rel_opts[i]->zero_grad();
    }

    double epoch_loss = 0.0;
    std::size_t loss_terms = 0;
    for (std::size_t b = 0; b < config.rounds_per_step; ++b) {
      const auto round = detail::sample_round(train, n, rng);

      const auto true_objective =
          detail::make_objective(config, round.times, round.reliability);
      const auto x_true =
          matching::solve_mirror(*true_objective, config.solver).x;

      // The deployed pipeline loss: true makespan of the rounded
      // assignment produced from candidate predictions, plus a hinge on
      // the true reliability shortfall (both per task).
      const auto deployed_loss = [&](const Matrix& t,
                                     const Matrix& a) -> double {
        const Matrix x = solve_matching(t, a);
        const auto dep = matching::round_argmax(x);
        const double ms =
            matching::makespan(dep, round.times, config.speedup);
        const double rel =
            matching::average_reliability(dep, round.reliability);
        const double hinge = std::max(0.0, config.gamma - rel);
        return ms / static_cast<double>(n) +
               config.fg_reliability_penalty * hinge;
      };

      if (config.joint_prediction) {
        // All rows predicted; one matching solve plus 2S perturbed solves
        // estimate the full-matrix gradients (Algorithm 2 with the
        // perturbation applied to the whole prediction matrix).
        std::vector<nn::Variable> t_hats;
        std::vector<nn::Variable> a_hats;
        Matrix t_pred = round.times;
        Matrix a_pred = round.reliability;
        for (std::size_t i = 0; i < m; ++i) {
          nn::Variable z_time(round.features, /*requires_grad=*/false);
          t_hats.push_back(predictor.cluster(i).forward_time(z_time));
          nn::Variable z_rel(round.features, /*requires_grad=*/false);
          a_hats.push_back(
              predictor.cluster(i).forward_reliability(z_rel));
          for (std::size_t j = 0; j < n; ++j) {
            t_pred(i, j) = t_hats.back().value()[j];
            a_pred(i, j) = a_hats.back().value()[j];
          }
        }
        const Matrix x_star = solve_matching(t_pred, a_pred);
        epoch_loss += surrogate_regret(*true_objective, x_star, x_true);
        ++loss_terms;

        Rng sample_rng = rng.split();
        diff::FullGradients grads;
        if (config.fg_discrete_loss) {
          const double base = deployed_loss(t_pred, a_pred);
          grads = diff::estimate_scalar_full_gradients(
              deployed_loss, t_pred, a_pred, base,
              config.forward_gradient, sample_rng, pool);
        } else {
          const Matrix upstream =
              surrogate_upstream_gradient(*true_objective, x_star);
          grads = diff::estimate_full_gradients(
              solve_matching, t_pred, a_pred, x_star, upstream,
              config.forward_gradient, sample_rng, pool);
        }

        for (std::size_t i = 0; i < m; ++i) {
          Matrix seed_t(n, 1);
          Matrix seed_a(n, 1);
          for (std::size_t j = 0; j < n; ++j) {
            seed_t(j, 0) = grads.dt(i, j);
            seed_a(j, 0) = grads.da(i, j);
          }
          backward_cluster(config, round, i, t_hats[i], a_hats[i],
                           std::move(seed_t), std::move(seed_a),
                           batch_scale);
        }
      } else {
        // Algorithm-2-faithful per-cluster mode.
        for (std::size_t i = 0; i < m; ++i) {
          auto& cluster = predictor.cluster(i);
          nn::Variable z_time(round.features, /*requires_grad=*/false);
          auto t_hat = cluster.forward_time(z_time);
          nn::Variable z_rel(round.features, /*requires_grad=*/false);
          auto a_hat = cluster.forward_reliability(z_rel);

          const Matrix t_pred =
              detail::with_row(round.times, i, t_hat.value());
          const Matrix a_pred =
              detail::with_row(round.reliability, i, a_hat.value());

          const Matrix x_star = solve_matching(t_pred, a_pred);
          epoch_loss += surrogate_regret(*true_objective, x_star, x_true);
          ++loss_terms;

          Rng sample_rng = rng.split();
          diff::RowGradients grads;
          if (config.fg_discrete_loss) {
            const double base = deployed_loss(t_pred, a_pred);
            grads = diff::estimate_scalar_row_gradients(
                deployed_loss, t_pred, a_pred, base, i,
                config.forward_gradient, sample_rng, pool);
          } else {
            const Matrix upstream =
                surrogate_upstream_gradient(*true_objective, x_star);
            grads = diff::estimate_row_gradients(
                solve_matching, t_pred, a_pred, x_star, i, upstream,
                config.forward_gradient, sample_rng, pool);
          }

          Matrix seed_t(n, 1);
          Matrix seed_a(n, 1);
          for (std::size_t j = 0; j < n; ++j) {
            seed_t(j, 0) = grads.dt[j];
            seed_a(j, 0) = grads.da[j];
          }
          backward_cluster(config, round, i, t_hat, a_hat,
                           std::move(seed_t), std::move(seed_a),
                           batch_scale);
        }
      }
    }

    for (std::size_t i = 0; i < m; ++i) {
      time_opts[i]->step();
      rel_opts[i]->step();
    }
    result.loss_history.push_back(epoch_loss /
                                  static_cast<double>(loss_terms));
  }

  result.seconds = watch.seconds();
  return result;
}

}  // namespace mfcp::core
