#include "mfcp/regret.hpp"

#include <memory>

#include "matching/entropy.hpp"
#include "matching/penalty.hpp"
#include "matching/objective.hpp"
#include "matching/rounding.hpp"
#include "support/check.hpp"

namespace mfcp::core {

matching::Assignment deploy_matching(
    const matching::MatchingProblem& predicted,
    const EvaluationConfig& config) {
  predicted.validate();
  // Paper-faithful deployment (§3.2): solve the continuous barrier
  // relaxation, round, and repair feasibility — all against the predicted
  // metrics. Keeping deployment identical to the operator the training
  // gradients differentiate through is essential: a smarter deployment
  // heuristic (e.g. racing an LPT greedy) decouples the learned predictor
  // from the decisions it is being trained for.
  std::unique_ptr<matching::ContinuousObjective> objective;
  if (config.linear_cost) {
    objective = std::make_unique<matching::LinearCostBarrierObjective>(
        predicted, config.barrier.lambda);
  } else {
    objective = std::make_unique<matching::BarrierObjective>(
        predicted, config.barrier);
  }
  if (config.entropy_tau > 0.0) {
    objective = std::make_unique<matching::EntropicObjective>(
        std::move(objective), config.entropy_tau);
  }
  const auto relaxed = matching::solve_mirror(*objective, config.solver);
  // Argmax rounding only. The paper folds the reliability constraint into
  // the barrier term of the matching objective and reports achieved
  // reliability as a separate metric (§4.1.3) — there is no post-hoc
  // feasibility repair, and adding one (or any discrete polish) interposes
  // a non-differentiated transformation between the relaxed solution the
  // predictors are trained through and the deployed decision.
  matching::Assignment assignment = matching::round_argmax(relaxed.x);
  if (config.local_search) {
    assignment = matching::improve_local_search(assignment, predicted);
  }
  return assignment;
}

MatchOutcome evaluate_assignment(const matching::MatchingProblem& truth,
                                 const matching::Assignment& deployed,
                                 const matching::Assignment& reference) {
  truth.validate();
  MatchOutcome out;
  out.makespan = matching::makespan(deployed, truth.times, truth.speedup);
  out.optimal_makespan =
      matching::makespan(reference, truth.times, truth.speedup);
  out.regret = (out.makespan - out.optimal_makespan) /
               static_cast<double>(truth.num_tasks());
  out.reliability =
      matching::average_reliability(deployed, truth.reliability);
  out.utilization =
      matching::utilization(deployed, truth.times, truth.speedup);
  out.feasible = matching::is_feasible(deployed, truth);
  return out;
}

MatchOutcome evaluate_assignment(const matching::MatchingProblem& truth,
                                 const matching::Assignment& deployed,
                                 const matching::ExactSolverConfig& exact) {
  truth.validate();
  const auto optimal = matching::solve_exact(truth, exact);
  return evaluate_assignment(truth, deployed, optimal.assignment);
}

MatchOutcome evaluate_predictions(const matching::MatchingProblem& truth,
                                  const Matrix& t_hat, const Matrix& a_hat,
                                  const EvaluationConfig& config) {
  const auto predicted = truth.with_metrics(t_hat, a_hat);
  const auto deployed = deploy_matching(predicted, config);
  // Paper Eq. 6: the reference X*(T, A) comes from the SAME matching
  // operator applied to the true metrics — not from an exact combinatorial
  // solver. This cancels the operator's rounding suboptimality (identical
  // on both sides per round) and isolates prediction-induced regret; use
  // the ExactSolverConfig overload of evaluate_assignment to measure
  // against the true discrete optimum instead. The reference always uses
  // the *standard* (max-makespan) matching: an ablated deployment (e.g.
  // linear cost) is exactly what regret should expose, not cancel.
  EvaluationConfig reference_config = config;
  reference_config.linear_cost = false;
  const auto reference = deploy_matching(truth, reference_config);
  return evaluate_assignment(truth, deployed, reference);
}

double surrogate_regret(const matching::ContinuousObjective& true_objective,
                        const Matrix& x_pred, const Matrix& x_true_opt) {
  const double n = static_cast<double>(true_objective.num_tasks());
  return (true_objective.value(x_pred) - true_objective.value(x_true_opt)) /
         n;
}

Matrix surrogate_upstream_gradient(
    const matching::ContinuousObjective& true_objective, const Matrix& x_pred) {
  Matrix g = true_objective.grad_x(x_pred);
  g *= 1.0 / static_cast<double>(true_objective.num_tasks());
  return g;
}

}  // namespace mfcp::core
