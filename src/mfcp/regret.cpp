#include "mfcp/regret.hpp"

#include <memory>

#include "matching/entropy.hpp"
#include "matching/penalty.hpp"
#include "matching/objective.hpp"
#include "matching/rounding.hpp"
#include "support/check.hpp"

namespace mfcp::core {

namespace {

/// The deployment objective: barrier (or ablated linear) cost, optionally
/// wrapped in the entropic regularizer. Shared by the deploy solve and
/// the attribution's polish continuation, which must minimize the SAME
/// smooth objective for the solver gap to mean anything.
std::unique_ptr<matching::ContinuousObjective> make_deploy_objective(
    const matching::MatchingProblem& problem, const EvaluationConfig& config) {
  std::unique_ptr<matching::ContinuousObjective> objective;
  if (config.linear_cost) {
    objective = std::make_unique<matching::LinearCostBarrierObjective>(
        problem, config.barrier.lambda);
  } else {
    objective = std::make_unique<matching::BarrierObjective>(
        problem, config.barrier);
  }
  if (config.entropy_tau > 0.0) {
    objective = std::make_unique<matching::EntropicObjective>(
        std::move(objective), config.entropy_tau);
  }
  return objective;
}

}  // namespace

DeployTrace deploy_matching_traced(const matching::MatchingProblem& predicted,
                                   const EvaluationConfig& config) {
  predicted.validate();
  // Paper-faithful deployment (§3.2): solve the continuous barrier
  // relaxation, round, and repair feasibility — all against the predicted
  // metrics. Keeping deployment identical to the operator the training
  // gradients differentiate through is essential: a smarter deployment
  // heuristic (e.g. racing an LPT greedy) decouples the learned predictor
  // from the decisions it is being trained for.
  const auto objective = make_deploy_objective(predicted, config);
  DeployTrace trace;
  trace.problem = predicted;
  trace.relaxed = matching::solve_mirror(*objective, config.solver);
  // Argmax rounding only. The paper folds the reliability constraint into
  // the barrier term of the matching objective and reports achieved
  // reliability as a separate metric (§4.1.3) — there is no post-hoc
  // feasibility repair, and adding one (or any discrete polish) interposes
  // a non-differentiated transformation between the relaxed solution the
  // predictors are trained through and the deployed decision.
  trace.assignment = matching::round_argmax(trace.relaxed.x);
  if (config.local_search) {
    trace.assignment =
        matching::improve_local_search(trace.assignment, predicted);
  }
  return trace;
}

matching::Assignment deploy_matching(
    const matching::MatchingProblem& predicted,
    const EvaluationConfig& config) {
  return deploy_matching_traced(predicted, config).assignment;
}

obs::RegretBreakdown attribute_regret(const matching::MatchingProblem& truth,
                                      const DeployTrace& deployed,
                                      const DeployTrace& reference,
                                      const EvaluationConfig& config,
                                      const AttributionConfig& attr) {
  truth.validate();
  const double n = static_cast<double>(truth.num_tasks());

  // Continue each chain's own smooth objective from its solver output to
  // a tighter stationary point — the stand-in for the converged optimum.
  // Warm-starting makes this cheap when the deploy solve already
  // converged (the polish exits at its first residual check).
  matching::MirrorSolverConfig polish = config.solver;
  polish.max_iterations = attr.polish_iterations;
  polish.tolerance = attr.polish_tolerance > 0.0 ? attr.polish_tolerance
                                                 : config.solver.tolerance;
  // A chain whose solve already met the inherited tolerance would pass the
  // polish's first residual check unchanged — skip the solve entirely (the
  // common converged case costs nothing). An explicitly tightened
  // polish_tolerance always polishes.
  const auto polish_chain = [&](const DeployTrace& trace) {
    if (trace.relaxed.converged && attr.polish_tolerance <= 0.0) {
      return trace.relaxed.x;
    }
    const auto objective = make_deploy_objective(trace.problem, config);
    return matching::solve_mirror_from(*objective, trace.relaxed.x, polish).x;
  };
  const Matrix dep_polished = polish_chain(deployed);
  const Matrix ref_polished = polish_chain(reference);

  // Everything is priced under the TRUE hard makespan so the terms add in
  // realized-regret units, whatever smooth objective the solves used.
  const auto f = [&](const Matrix& x) {
    return matching::makespan(x, truth.times, truth.speedup);
  };
  const double f_dep_relaxed = f(deployed.relaxed.x);
  const double f_ref_relaxed = f(reference.relaxed.x);
  const double f_dep_polished = f(dep_polished);
  const double f_ref_polished = f(ref_polished);
  const double dep_rounding = matching::rounding_gap(
      deployed.relaxed.x, deployed.assignment, truth.times, truth.speedup);
  const double ref_rounding = matching::rounding_gap(
      reference.relaxed.x, reference.assignment, truth.times, truth.speedup);

  obs::RegretBreakdown out;
  out.pred_gap = (f_dep_polished - f_ref_polished) / n;
  out.solver_gap =
      ((f_dep_relaxed - f_dep_polished) - (f_ref_relaxed - f_ref_polished)) /
      n;
  out.rounding_gap = (dep_rounding - ref_rounding) / n;
  out.admission_gap = attr.admission_loss;
  // The invariant's independent right side: end-to-end realized regret
  // (integral deployed vs integral reference makespan) plus admission.
  out.total = (matching::makespan(deployed.assignment, truth.times,
                                  truth.speedup) -
               matching::makespan(reference.assignment, truth.times,
                                  truth.speedup)) /
                  n +
              attr.admission_loss;
  out.solver_residual = deployed.relaxed.residual;
  out.valid = true;
  return out;
}

MatchOutcome evaluate_assignment(const matching::MatchingProblem& truth,
                                 const matching::Assignment& deployed,
                                 const matching::Assignment& reference) {
  truth.validate();
  MatchOutcome out;
  out.makespan = matching::makespan(deployed, truth.times, truth.speedup);
  out.optimal_makespan =
      matching::makespan(reference, truth.times, truth.speedup);
  out.regret = (out.makespan - out.optimal_makespan) /
               static_cast<double>(truth.num_tasks());
  out.reliability =
      matching::average_reliability(deployed, truth.reliability);
  out.utilization =
      matching::utilization(deployed, truth.times, truth.speedup);
  out.feasible = matching::is_feasible(deployed, truth);
  return out;
}

MatchOutcome evaluate_assignment(const matching::MatchingProblem& truth,
                                 const matching::Assignment& deployed,
                                 const matching::ExactSolverConfig& exact) {
  truth.validate();
  const auto optimal = matching::solve_exact(truth, exact);
  return evaluate_assignment(truth, deployed, optimal.assignment);
}

MatchOutcome evaluate_predictions(const matching::MatchingProblem& truth,
                                  const Matrix& t_hat, const Matrix& a_hat,
                                  const EvaluationConfig& config) {
  const auto predicted = truth.with_metrics(t_hat, a_hat);
  const auto deployed = deploy_matching(predicted, config);
  // Paper Eq. 6: the reference X*(T, A) comes from the SAME matching
  // operator applied to the true metrics — not from an exact combinatorial
  // solver. This cancels the operator's rounding suboptimality (identical
  // on both sides per round) and isolates prediction-induced regret; use
  // the ExactSolverConfig overload of evaluate_assignment to measure
  // against the true discrete optimum instead. The reference always uses
  // the *standard* (max-makespan) matching: an ablated deployment (e.g.
  // linear cost) is exactly what regret should expose, not cancel.
  EvaluationConfig reference_config = config;
  reference_config.linear_cost = false;
  const auto reference = deploy_matching(truth, reference_config);
  return evaluate_assignment(truth, deployed, reference);
}

double surrogate_regret(const matching::ContinuousObjective& true_objective,
                        const Matrix& x_pred, const Matrix& x_true_opt) {
  const double n = static_cast<double>(true_objective.num_tasks());
  return (true_objective.value(x_pred) - true_objective.value(x_true_opt)) /
         n;
}

Matrix surrogate_upstream_gradient(
    const matching::ContinuousObjective& true_objective, const Matrix& x_pred) {
  Matrix g = true_objective.grad_x(x_pred);
  g *= 1.0 / static_cast<double>(true_objective.num_tasks());
  return g;
}

}  // namespace mfcp::core
