// Cluster performance predictors (paper §2.1).
//
// For every managed cluster i the platform trains two small MLPs over task
// features z: the execution-time predictor t̂ = m_ω(z) (softplus head, so
// t̂ > 0) and the reliability predictor â = m_φ(z) (sigmoid head, so
// â ∈ (0,1)). This module only defines the models; how their loss is formed
// is what distinguishes TSM (MSE) from MFCP (regret) — see the trainers.
#pragma once

#include "nn/mlp.hpp"

namespace mfcp::core {

struct PredictorConfig {
  std::size_t feature_dim = 12;
  std::vector<std::size_t> hidden = {32, 32};
  /// Scales the softplus time head so the network can express the hour
  /// range of real jobs without extreme weights.
  double time_scale = 4.0;
};

/// The (m_ω, m_φ) pair for one cluster.
class ClusterPredictor {
 public:
  ClusterPredictor(const PredictorConfig& config, Rng& rng);

  /// Differentiable forward passes; input (n x d) features, output (n x 1).
  nn::Variable forward_time(const nn::Variable& features);
  nn::Variable forward_reliability(const nn::Variable& features);

  /// Value-only prediction for a feature batch; returns a 1 x n row ready
  /// to be placed into the T̂ / Â matrices.
  Matrix predict_time_row(const Matrix& features);
  Matrix predict_reliability_row(const Matrix& features);

  [[nodiscard]] nn::Mlp& time_model() noexcept { return time_model_; }
  [[nodiscard]] nn::Mlp& reliability_model() noexcept { return rel_model_; }

  [[nodiscard]] double time_scale() const noexcept { return time_scale_; }

 private:
  nn::Mlp time_model_;
  nn::Mlp rel_model_;
  double time_scale_;
};

/// All M cluster predictor pairs plus matrix-level convenience.
class PlatformPredictor {
 public:
  PlatformPredictor(std::size_t num_clusters, const PredictorConfig& config,
                    Rng& rng);

  [[nodiscard]] std::size_t num_clusters() const noexcept {
    return predictors_.size();
  }

  [[nodiscard]] ClusterPredictor& cluster(std::size_t i);

  /// T̂: M x N predicted execution times for a feature batch (N x d).
  Matrix predict_time_matrix(const Matrix& features);

  /// Â: M x N predicted reliabilities.
  Matrix predict_reliability_matrix(const Matrix& features);

 private:
  std::vector<ClusterPredictor> predictors_;
};

}  // namespace mfcp::core
