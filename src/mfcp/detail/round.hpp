// Internal helpers shared by the MFCP trainers: sampling a matching round
// from the training set and building the configured training objective.
#pragma once

#include <cmath>
#include <memory>

#include "autograd/ops.hpp"
#include "matching/entropy.hpp"
#include "matching/penalty.hpp"
#include "mfcp/mfcp_config.hpp"
#include "nn/mlp.hpp"
#include "sim/dataset.hpp"
#include "support/check.hpp"

namespace mfcp::core::detail {

/// One training round: N tasks with their features and measured metrics.
struct Round {
  Matrix features;     // n x d
  Matrix times;        // M x n
  Matrix reliability;  // M x n
};

inline Round sample_round(const sim::Dataset& data, std::size_t round_tasks,
                          Rng& rng) {
  MFCP_CHECK(round_tasks > 0 && round_tasks <= data.num_tasks(),
             "round size must be in [1, train set size]");
  const auto order = rng.permutation(data.num_tasks());
  Round round;
  round.features = Matrix(round_tasks, data.feature_dim());
  round.times = Matrix(data.num_clusters(), round_tasks);
  round.reliability = Matrix(data.num_clusters(), round_tasks);
  for (std::size_t k = 0; k < round_tasks; ++k) {
    const std::size_t j = order[k];
    for (std::size_t c = 0; c < data.feature_dim(); ++c) {
      round.features(k, c) = data.features(j, c);
    }
    for (std::size_t i = 0; i < data.num_clusters(); ++i) {
      round.times(i, k) = data.times(i, j);
      round.reliability(i, k) = data.reliability(i, j);
    }
  }
  return round;
}

/// Builds the configured continuous training objective over (T, A),
/// without the entropic term (see make_objective).
inline std::unique_ptr<matching::ContinuousObjective> make_base_objective(
    const MfcpConfig& config, Matrix times, Matrix reliability) {
  switch (config.cost_model) {
    case CostModel::kSmoothedMax:
      if (config.constraint_model == ConstraintModel::kLogBarrier) {
        return std::make_unique<matching::BarrierObjective>(
            std::move(times), std::move(reliability), config.gamma,
            config.barrier, config.speedup);
      }
      return std::make_unique<matching::HardPenaltyObjective>(
          std::move(times), std::move(reliability), config.gamma,
          config.barrier.beta, config.penalty_lambda, config.speedup);
    case CostModel::kLinearTotal:
      MFCP_CHECK(config.constraint_model == ConstraintModel::kLogBarrier,
                 "linear-cost ablation uses the log barrier");
      return std::make_unique<matching::LinearCostBarrierObjective>(
          std::move(times), std::move(reliability), config.gamma,
          config.barrier.lambda, config.speedup);
  }
  MFCP_CHECK(false, "unknown cost model");
  return nullptr;
}

/// Training objective including the entropic regularizer when configured.
inline std::unique_ptr<matching::ContinuousObjective> make_objective(
    const MfcpConfig& config, Matrix times, Matrix reliability) {
  auto base =
      make_base_objective(config, std::move(times), std::move(reliability));
  if (config.entropy_tau > 0.0) {
    return std::make_unique<matching::EntropicObjective>(std::move(base),
                                                         config.entropy_tau);
  }
  return base;
}

/// KKT-differentiable variant for the AD trainer (smoothed-max cost only;
/// the linear cost's argmin is piecewise constant so no useful analytic
/// sensitivity exists — use the FG trainer for that ablation).
inline std::unique_ptr<matching::KktDifferentiableObjective>
make_kkt_objective(const MfcpConfig& config, Matrix times,
                   Matrix reliability) {
  MFCP_CHECK(config.cost_model == CostModel::kSmoothedMax,
             "MFCP-AD requires the smoothed-max cost model");
  MFCP_CHECK(config.speedup.is_constant(),
             "MFCP-AD requires exclusive execution (convex case)");
  std::unique_ptr<matching::KktDifferentiableObjective> base;
  if (config.constraint_model == ConstraintModel::kLogBarrier) {
    base = std::make_unique<matching::BarrierObjective>(
        std::move(times), std::move(reliability), config.gamma,
        config.barrier, config.speedup);
  } else {
    base = std::make_unique<matching::HardPenaltyObjective>(
        std::move(times), std::move(reliability), config.gamma,
        config.barrier.beta, config.penalty_lambda, config.speedup);
  }
  if (config.entropy_tau > 0.0) {
    return std::make_unique<matching::EntropicKktObjective>(
        std::move(base), config.entropy_tau);
  }
  return base;
}

/// Scales `g` so its L2 norm does not exceed `max_norm` (0 = disabled).
inline void clip_norm(Matrix& g, double max_norm) {
  if (max_norm <= 0.0) {
    return;
  }
  double sq = 0.0;
  for (std::size_t i = 0; i < g.size(); ++i) {
    sq += g[i] * g[i];
  }
  const double norm = std::sqrt(sq);
  if (norm > max_norm) {
    g *= max_norm / norm;
  }
}

/// A scalar whose gradient with respect to `y` is exactly `seed`:
/// sum(y ⊙ seed). Lets the externally-computed matching-layer gradient
/// (Eq. 7's middle term) enter a normal autograd backward pass, so it can
/// be combined with the MSE anchor in a single traversal (two backward
/// calls on one graph would double-count).
inline nn::Variable inject_gradient(const nn::Variable& y,
                                    const Matrix& seed) {
  return autograd::sum_all(
      autograd::mul(y, autograd::Variable(seed, /*requires_grad=*/false)));
}

/// Replaces row `row` of `base` with the entries of `values` (n x 1).
inline Matrix with_row(const Matrix& base, std::size_t row,
                       const Matrix& values) {
  MFCP_CHECK(values.size() == base.cols(), "row length mismatch");
  Matrix out = base;
  for (std::size_t j = 0; j < base.cols(); ++j) {
    out(row, j) = values[j];
  }
  return out;
}

}  // namespace mfcp::core::detail
