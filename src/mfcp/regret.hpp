// Regret (paper Eq. 6) and the deployment matching pipeline.
//
// Evaluation regret compares, under the TRUE metrics, the makespan of the
// assignment derived from predictions against the true-optimal assignment:
//     regret = ( f(X*(T̂, Â), T) - f(X*(T, A), T) ) / N.
// X*(T̂, Â) is produced exactly the way the platform would deploy (§3.2):
// continuous barrier solve, rounding, reliability repair using *predicted*
// reliability (the platform cannot see the truth), optional local search.
// X*(T, A) is the exact discrete optimum from branch-and-bound.
#pragma once

#include "matching/barrier.hpp"
#include "matching/solver_exact.hpp"
#include "matching/solver_mirror.hpp"

namespace mfcp::core {

struct EvaluationConfig {
  /// Deployment matching benefits from a sharper smooth-max than training
  /// (no gradients needed, just solution quality).
  matching::BarrierConfig barrier{.beta = 8.0, .lambda = 0.1,
                                  .slack_epsilon = 1e-3};
  matching::MirrorSolverConfig solver;
  matching::ExactSolverConfig exact;
  /// Entropy weight of the deployed continuous solve. Must match the
  /// trainers' entropy_tau so the platform deploys exactly the operator
  /// the predictors were trained through.
  double entropy_tau = 0.1;
  /// Table-1 ablation (1): deploy with the linear total-time cost instead
  /// of the smoothed max-makespan (the matching itself is ablated, not
  /// just the training gradient).
  bool linear_cost = false;
  /// Optional discrete polish after rounding (single-task moves and
  /// pairwise swaps under the *predicted* metrics). Off by default: the
  /// paper deploys the rounded continuous solution directly, and the
  /// polish interposes a non-differentiated search between the relaxed
  /// solution the predictors are trained through and the deployed
  /// decision.
  bool local_search = false;
};

/// Continuous-solve + round + repair + (optional) local search, all against
/// the *predicted* problem. This is what the platform ships.
matching::Assignment deploy_matching(const matching::MatchingProblem& predicted,
                                     const EvaluationConfig& config);

struct MatchOutcome {
  double regret = 0.0;           // per-task makespan gap vs true optimum
  double reliability = 0.0;      // achieved average TRUE reliability
  double utilization = 0.0;      // with true times
  double makespan = 0.0;         // of the deployed assignment (true times)
  double optimal_makespan = 0.0; // of the true-optimal assignment
  bool feasible = false;         // constraint holds under true reliability
};

/// Scores a deployed assignment against an explicit reference assignment
/// (regret is the per-task makespan gap between the two under the truth).
MatchOutcome evaluate_assignment(const matching::MatchingProblem& truth,
                                 const matching::Assignment& deployed,
                                 const matching::Assignment& reference);

/// Scores a deployed assignment against the exact discrete optimum
/// (branch & bound) — the diagnostic variant; evaluate_predictions uses
/// the paper's same-operator reference instead.
MatchOutcome evaluate_assignment(const matching::MatchingProblem& truth,
                                 const matching::Assignment& deployed,
                                 const matching::ExactSolverConfig& exact = {});

/// Full pipeline: deploy on (t_hat, a_hat), score against `truth`.
MatchOutcome evaluate_predictions(const matching::MatchingProblem& truth,
                                  const Matrix& t_hat, const Matrix& a_hat,
                                  const EvaluationConfig& config);

/// Training-time regret surrogate (Eq. 12 upper level): the value
/// ( F(x_pred, T, A) - F(x_true_opt, T, A) ) / N with F the true-metric
/// barrier objective, and its gradient with respect to x_pred — the
/// dL/dX* term of the chain rule (Eq. 7).
double surrogate_regret(const matching::ContinuousObjective& true_objective,
                        const Matrix& x_pred, const Matrix& x_true_opt);

Matrix surrogate_upstream_gradient(
    const matching::ContinuousObjective& true_objective, const Matrix& x_pred);

}  // namespace mfcp::core
