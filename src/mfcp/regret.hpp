// Regret (paper Eq. 6) and the deployment matching pipeline.
//
// Evaluation regret compares, under the TRUE metrics, the makespan of the
// assignment derived from predictions against the true-optimal assignment:
//     regret = ( f(X*(T̂, Â), T) - f(X*(T, A), T) ) / N.
// X*(T̂, Â) is produced exactly the way the platform would deploy (§3.2):
// continuous barrier solve, rounding, reliability repair using *predicted*
// reliability (the platform cannot see the truth), optional local search.
// X*(T, A) is the exact discrete optimum from branch-and-bound.
#pragma once

#include "matching/barrier.hpp"
#include "matching/solver_exact.hpp"
#include "matching/solver_mirror.hpp"
#include "obs/attribution.hpp"

namespace mfcp::core {

struct EvaluationConfig {
  /// Deployment matching benefits from a sharper smooth-max than training
  /// (no gradients needed, just solution quality).
  matching::BarrierConfig barrier{.beta = 8.0, .lambda = 0.1,
                                  .slack_epsilon = 1e-3};
  matching::MirrorSolverConfig solver;
  matching::ExactSolverConfig exact;
  /// Entropy weight of the deployed continuous solve. Must match the
  /// trainers' entropy_tau so the platform deploys exactly the operator
  /// the predictors were trained through.
  double entropy_tau = 0.1;
  /// Table-1 ablation (1): deploy with the linear total-time cost instead
  /// of the smoothed max-makespan (the matching itself is ablated, not
  /// just the training gradient).
  bool linear_cost = false;
  /// Optional discrete polish after rounding (single-task moves and
  /// pairwise swaps under the *predicted* metrics). Off by default: the
  /// paper deploys the rounded continuous solution directly, and the
  /// polish interposes a non-differentiated search between the relaxed
  /// solution the predictors are trained through and the deployed
  /// decision.
  bool local_search = false;
};

/// Continuous-solve + round + repair + (optional) local search, all against
/// the *predicted* problem. This is what the platform ships.
matching::Assignment deploy_matching(const matching::MatchingProblem& predicted,
                                     const EvaluationConfig& config);

/// deploy_matching with the intermediate products kept: the problem the
/// solve ran against, the relaxed solver output, and the rounded
/// assignment. attribute_regret needs all three to price each pipeline
/// stage separately; `assignment` is bit-identical to what
/// deploy_matching returns for the same inputs (deploy_matching is
/// implemented on top of this).
struct DeployTrace {
  matching::MatchingProblem problem;
  matching::SolveResult relaxed;
  matching::Assignment assignment;
};

DeployTrace deploy_matching_traced(const matching::MatchingProblem& predicted,
                                   const EvaluationConfig& config);

/// Knobs for the attribution's polish solves (continuing each chain's
/// relaxed solve, warm-started from its output, to the stationary point
/// that stands in for the converged optimum). The defaults are tuned for
/// the always-on per-round path: a converged deploy solve passes the
/// polish's first residual check, so attribution stays inside the 5%
/// telemetry overhead budget; the decomposition telescopes exactly at ANY
/// polish depth — deeper polish only sharpens the pred/solver split.
struct AttributionConfig {
  std::size_t polish_iterations = 16;
  /// <= 0 inherits the evaluation config's solver tolerance (the polish
  /// then only does real work when the deploy solve hit its iteration
  /// cap — exactly when solver_gap is interesting).
  double polish_tolerance = 0.0;
  /// Counterfactual loss of tasks dropped/expired before this round,
  /// passed through into the breakdown's admission_gap (the caller owns
  /// the queue; the decomposition just keeps the books additive).
  double admission_loss = 0.0;
};

/// Decomposes one round's realized regret into the additive terms of
/// obs::RegretBreakdown. `deployed` must be the trace of the prediction-
/// driven solve, `reference` the same-operator solve on the true metrics;
/// both are assumed to have used `config` (as the engine does). All terms
/// are evaluated under `truth`'s hard makespan, per task:
///
///   pred_gap     = ( f(x̂⁺_dep) − f(x̂⁺_ref) ) / N
///   solver_gap   = ( [f(x̂_dep) − f(x̂⁺_dep)] − [f(x̂_ref) − f(x̂⁺_ref)] ) / N
///   rounding_gap = ( [f(X_dep) − f(x̂_dep)] − [f(X_ref) − f(x̂_ref)] ) / N
///
/// where x̂ is each chain's relaxed solver output, x̂⁺ its polished
/// continuation, and X its rounded assignment. The three telescope to
/// ( f(X_dep) − f(X_ref) ) / N — exactly the realized round regret — so
/// with admission_loss added on both sides the breakdown satisfies
/// RegretBreakdown::exact() up to floating-point error.
obs::RegretBreakdown attribute_regret(const matching::MatchingProblem& truth,
                                      const DeployTrace& deployed,
                                      const DeployTrace& reference,
                                      const EvaluationConfig& config,
                                      const AttributionConfig& attr = {});

struct MatchOutcome {
  double regret = 0.0;           // per-task makespan gap vs true optimum
  double reliability = 0.0;      // achieved average TRUE reliability
  double utilization = 0.0;      // with true times
  double makespan = 0.0;         // of the deployed assignment (true times)
  double optimal_makespan = 0.0; // of the true-optimal assignment
  bool feasible = false;         // constraint holds under true reliability
};

/// Scores a deployed assignment against an explicit reference assignment
/// (regret is the per-task makespan gap between the two under the truth).
MatchOutcome evaluate_assignment(const matching::MatchingProblem& truth,
                                 const matching::Assignment& deployed,
                                 const matching::Assignment& reference);

/// Scores a deployed assignment against the exact discrete optimum
/// (branch & bound) — the diagnostic variant; evaluate_predictions uses
/// the paper's same-operator reference instead.
MatchOutcome evaluate_assignment(const matching::MatchingProblem& truth,
                                 const matching::Assignment& deployed,
                                 const matching::ExactSolverConfig& exact = {});

/// Full pipeline: deploy on (t_hat, a_hat), score against `truth`.
MatchOutcome evaluate_predictions(const matching::MatchingProblem& truth,
                                  const Matrix& t_hat, const Matrix& a_hat,
                                  const EvaluationConfig& config);

/// Training-time regret surrogate (Eq. 12 upper level): the value
/// ( F(x_pred, T, A) - F(x_true_opt, T, A) ) / N with F the true-metric
/// barrier objective, and its gradient with respect to x_pred — the
/// dL/dX* term of the chain rule (Eq. 7).
double surrogate_regret(const matching::ContinuousObjective& true_objective,
                        const Matrix& x_pred, const Matrix& x_true_opt);

Matrix surrogate_upstream_gradient(
    const matching::ContinuousObjective& true_objective, const Matrix& x_pred);

}  // namespace mfcp::core
