// MFCP with Analytical Differentiation (MFCP-AD, paper §3.3).
//
// Per epoch, for every cluster i (Algorithm 2's outer structure, with the
// gradient of the matching layer computed analytically instead of by
// perturbation):
//   1. t̂_i = m_ω_i(z), â_i = m_φ_i(z) over the round's tasks;
//   2. T̂ = T with row i replaced by t̂_i (other clusters stay at their
//      measured values, exactly as Algorithm 2 line 3), likewise Â;
//   3. X*(T̂, Â) = argmin of the barrier objective via mirror descent;
//   4. dL/dX*  =  (1/N) ∇_X F(X*, T, A)  (true metrics; Eq. 7 first term);
//   5. dX*/dt̂_i, dX*/dâ_i via the KKT system (Eq. 15), folded into
//      vector-Jacobian products (diff/kkt.hpp);
//   6. backprop the resulting seed gradients through the predictor tapes
//      and take optimizer steps — ω and φ alternately, holding the other's
//      predictions fixed within the step (paper §3.3, last paragraph).
#pragma once

#include "mfcp/mfcp_config.hpp"
#include "mfcp/predictor.hpp"
#include "sim/dataset.hpp"

namespace mfcp::core {

/// Decision-focused fine-tuning with analytic matching gradients. Requires
/// the convex setting (smoothed-max cost, exclusive execution).
MfcpTrainResult train_mfcp_ad(PlatformPredictor& predictor,
                              const sim::Dataset& train,
                              const MfcpConfig& config);

}  // namespace mfcp::core
