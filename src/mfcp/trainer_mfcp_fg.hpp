// MFCP with Forward Gradient (MFCP-FG, paper Algorithm 2).
//
// Same training loop as MFCP-AD, but the gradient of the optimal matching
// with respect to the predictions is estimated by zeroth-order Gaussian
// perturbation (diff/zeroth_order.hpp) instead of KKT differentiation —
// which is what makes the method applicable to the non-convex
// parallel-execution objective (Eq. 16/17) and to the Table-1 ablation
// objectives whose analytic sensitivities degenerate.
#pragma once

#include "mfcp/mfcp_config.hpp"
#include "mfcp/predictor.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/dataset.hpp"

namespace mfcp::core {

/// Decision-focused fine-tuning with zeroth-order matching gradients.
/// Supports every CostModel/ConstraintModel combination and arbitrary
/// speedup curves. When `pool` is non-null, the 2·S perturbed matching
/// solves per (epoch, cluster) run in parallel.
MfcpTrainResult train_mfcp_fg(PlatformPredictor& predictor,
                              const sim::Dataset& train,
                              const MfcpConfig& config,
                              ThreadPool* pool = nullptr);

}  // namespace mfcp::core
