// Aggregation of the paper's three evaluation metrics over test rounds.
#pragma once

#include <string>

#include "mfcp/regret.hpp"
#include "obs/metrics.hpp"
#include "support/stats.hpp"

namespace mfcp::core {

/// Accumulates Regret / Reliability / Utilization over repeated rounds,
/// reported as mean ± std like every table cell in the paper.
class MetricsAccumulator {
 public:
  void add(const MatchOutcome& outcome);

  /// Clears all statistics so the accumulator can be reused for the next
  /// window (the online engine reports rolling-window metrics this way
  /// instead of re-instantiating accumulators each round).
  void reset() noexcept;

  /// Folds another accumulator in, as if its outcomes had been add()ed
  /// here (streaming window -> running-total reduction).
  void merge(const MetricsAccumulator& other) noexcept;

  [[nodiscard]] const RunningStats& regret() const noexcept {
    return regret_;
  }
  [[nodiscard]] const RunningStats& reliability() const noexcept {
    return reliability_;
  }
  [[nodiscard]] const RunningStats& utilization() const noexcept {
    return utilization_;
  }
  [[nodiscard]] std::size_t rounds() const noexcept {
    return regret_.count();
  }
  [[nodiscard]] double feasible_fraction() const noexcept;

  /// "r ± s | rel ± s | util ± s" summary (debug/log aid).
  [[nodiscard]] std::string summary(int precision = 3) const;

  /// Bridges the experiment-level metrics into an obs::MetricsRegistry so
  /// regret/reliability/utilization appear in the same text exposition as
  /// the engine's telemetry instead of living in a parallel struct. For
  /// each metric this exports `<prefix>_<metric>_{mean,stddev,min,max}`
  /// gauges, plus `<prefix>_rounds` and `<prefix>_feasible_fraction`.
  /// A non-empty `labels` ('method="TSM",setting="A"') is appended to
  /// every exported name, letting one registry hold several methods'
  /// results side by side (the offline harnesses' --metrics flag).
  void to_registry(obs::MetricsRegistry& registry,
                   std::string_view prefix = "mfcp_eval",
                   std::string_view labels = {}) const;

 private:
  RunningStats regret_;
  RunningStats reliability_;
  RunningStats utilization_;
  std::size_t feasible_ = 0;
};

}  // namespace mfcp::core
