#include "mfcp/experiment.hpp"

#include "mfcp/trainer_mfcp_ad.hpp"
#include "mfcp/trainer_mfcp_fg.hpp"
#include "support/check.hpp"
#include "support/stopwatch.hpp"

namespace mfcp::core {

std::string to_string(Method method) {
  switch (method) {
    case Method::kTam:
      return "TAM";
    case Method::kTsm:
      return "TSM";
    case Method::kUcb:
      return "UCB";
    case Method::kMfcpAd:
      return "MFCP-AD";
    case Method::kMfcpFg:
      return "MFCP-FG";
  }
  return "Unknown";
}

ExperimentContext make_context(const ExperimentConfig& config) {
  MFCP_CHECK(config.round_tasks > 0 && config.test_rounds > 0,
             "experiment needs rounds");
  sim::Platform platform =
      sim::Platform::make_setting(config.setting, config.num_clusters);
  sim::EmbedderConfig embed_cfg;
  embed_cfg.output_dim = config.predictor.feature_dim;
  embed_cfg.seed = 0xe1bedULL ^ config.seed;
  sim::PseudoGnnEmbedder embedder(embed_cfg);

  sim::DatasetConfig data_cfg;
  data_cfg.num_tasks = config.train_tasks + config.test_tasks;
  data_cfg.task_seed = 0x7a5cULL ^ (config.seed * 0x9e3779b97f4a7c15ULL);
  data_cfg.noise_seed = 0x401feULL ^ config.seed;
  const sim::Dataset all = build_dataset(platform, embedder, data_cfg);

  Rng split_rng(0x5917ULL ^ config.seed);
  const double train_fraction =
      static_cast<double>(config.train_tasks) /
      static_cast<double>(config.train_tasks + config.test_tasks);
  auto [train, test] = split_dataset(all, train_fraction, split_rng);
  return ExperimentContext{std::move(platform), std::move(embedder),
                           std::move(train), std::move(test)};
}

MetricsAccumulator evaluate_rule(const PredictionFn& predict,
                                 const ExperimentContext& ctx,
                                 const ExperimentConfig& config) {
  MFCP_CHECK(config.round_tasks <= ctx.test.num_tasks(),
             "round size exceeds test split");
  MetricsAccumulator metrics;
  Rng rng(0x9e3779b9ULL ^ (config.seed * 31));
  const std::size_t n = config.round_tasks;
  const std::size_t m = ctx.test.num_clusters();

  for (std::size_t round = 0; round < config.test_rounds; ++round) {
    // Same round sampling for every method: rng state is a function of the
    // round index only, so comparisons are paired.
    Rng round_rng(rng.next_u64());
    const auto order = round_rng.permutation(ctx.test.num_tasks());
    std::vector<std::size_t> idx(order.begin(), order.begin() + n);

    Matrix features(n, ctx.test.feature_dim());
    matching::MatchingProblem truth;
    truth.times = Matrix(m, n);
    truth.reliability = Matrix(m, n);
    truth.gamma = config.gamma;
    truth.speedup = config.speedup;
    for (std::size_t k = 0; k < n; ++k) {
      for (std::size_t c = 0; c < ctx.test.feature_dim(); ++c) {
        features(k, c) = ctx.test.features(idx[k], c);
      }
      for (std::size_t i = 0; i < m; ++i) {
        truth.times(i, k) = ctx.test.true_times(i, idx[k]);
        truth.reliability(i, k) = ctx.test.true_reliability(i, idx[k]);
      }
    }

    const auto [t_hat, a_hat] = predict(features);
    metrics.add(evaluate_predictions(truth, t_hat, a_hat, config.eval));
  }
  return metrics;
}

namespace {

/// Synchronizes the knobs the MFCP trainers share with the experiment.
MfcpConfig mfcp_config_for(const ExperimentConfig& config, GradMode grad) {
  MfcpConfig c =
      grad == GradMode::kAnalytic ? config.mfcp_ad : config.mfcp;
  c.round_tasks = config.round_tasks;
  c.gamma = config.gamma;
  c.speedup = config.speedup;
  c.seed ^= config.seed * 0x51ed2701ULL;
  return c;
}

TsmConfig tsm_config_for(const ExperimentConfig& config) {
  TsmConfig c = config.tsm;
  c.seed ^= config.seed * 0x9276aa55ULL;
  return c;
}

}  // namespace

MethodResult run_method(Method method, const ExperimentContext& ctx,
                        const ExperimentConfig& config, ThreadPool* pool) {
  MethodResult result;
  result.method = method;
  result.label = to_string(method);
  Stopwatch watch;
  Rng init_rng(0xbeefULL ^ (config.seed * 77));

  switch (method) {
    case Method::kTam: {
      const TamModel model = fit_tam(ctx.train);
      result.train_seconds = watch.seconds();
      result.metrics = evaluate_rule(
          [&model](const Matrix& features) {
            return std::make_pair(tam_time_matrix(model, features.rows()),
                                  tam_reliability_matrix(model,
                                                         features.rows()));
          },
          ctx, config);
      break;
    }
    case Method::kTsm: {
      PlatformPredictor predictor(ctx.train.num_clusters(), config.predictor,
                                  init_rng);
      train_tsm(predictor, ctx.train, tsm_config_for(config));
      result.train_seconds = watch.seconds();
      result.metrics = evaluate_rule(
          [&predictor](const Matrix& features) mutable {
            return std::make_pair(
                predictor.predict_time_matrix(features),
                predictor.predict_reliability_matrix(features));
          },
          ctx, config);
      break;
    }
    case Method::kUcb: {
      PlatformPredictor predictor(ctx.train.num_clusters(), config.predictor,
                                  init_rng);
      // Hold out the tail of the train split for residual calibration so
      // sigma is not an underestimate from in-sample residuals.
      Rng split_rng(0xca11bULL ^ config.seed);
      auto [fit_split, calib_split] =
          split_dataset(ctx.train, 0.8, split_rng);
      train_tsm(predictor, fit_split, tsm_config_for(config));
      const UcbModel model =
          fit_ucb(predictor, calib_split, config.ucb_kappa);
      result.train_seconds = watch.seconds();
      result.metrics = evaluate_rule(
          [&model, &predictor](const Matrix& features) mutable {
            return std::make_pair(
                ucb_time_matrix(model, predictor, features),
                ucb_reliability_matrix(model, predictor, features));
          },
          ctx, config);
      break;
    }
    case Method::kMfcpAd: {
      PlatformPredictor predictor(ctx.train.num_clusters(), config.predictor,
                                  init_rng);
      train_mfcp_ad(predictor, ctx.train,
                    mfcp_config_for(config, GradMode::kAnalytic));
      result.train_seconds = watch.seconds();
      result.metrics = evaluate_rule(
          [&predictor](const Matrix& features) mutable {
            return std::make_pair(
                predictor.predict_time_matrix(features),
                predictor.predict_reliability_matrix(features));
          },
          ctx, config);
      break;
    }
    case Method::kMfcpFg: {
      PlatformPredictor predictor(ctx.train.num_clusters(), config.predictor,
                                  init_rng);
      train_mfcp_fg(predictor, ctx.train,
                    mfcp_config_for(config, GradMode::kForward), pool);
      result.train_seconds = watch.seconds();
      result.metrics = evaluate_rule(
          [&predictor](const Matrix& features) mutable {
            return std::make_pair(
                predictor.predict_time_matrix(features),
                predictor.predict_reliability_matrix(features));
          },
          ctx, config);
      break;
    }
  }
  return result;
}

std::vector<MethodResult> run_methods(const std::vector<Method>& methods,
                                      const ExperimentContext& ctx,
                                      const ExperimentConfig& config,
                                      ThreadPool* pool) {
  std::vector<MethodResult> results;
  results.reserve(methods.size());
  for (Method m : methods) {
    results.push_back(run_method(m, ctx, config, pool));
  }
  return results;
}

MethodResult run_mfcp_variant(CostModel cost, ConstraintModel constraint,
                              GradMode grad, std::string label,
                              const ExperimentContext& ctx,
                              const ExperimentConfig& config,
                              ThreadPool* pool) {
  MethodResult result;
  result.method = grad == GradMode::kAnalytic ? Method::kMfcpAd
                                              : Method::kMfcpFg;
  result.label = std::move(label);
  Stopwatch watch;
  Rng init_rng(0xbeefULL ^ (config.seed * 77));

  MfcpConfig mfcp = mfcp_config_for(config, grad);
  mfcp.cost_model = cost;
  mfcp.constraint_model = constraint;
  if (constraint == ConstraintModel::kHardPenalty) {
    // The constraint ablation replaces the barrier with the hinge inside
    // the training objective; disable the deployed-loss hinge so the
    // reliability signal flows only through the ablated component.
    mfcp.fg_reliability_penalty = 0.0;
  }
  // The ablated cost model applies to the deployed matching as well.
  ExperimentConfig eval_config = config;
  eval_config.eval.linear_cost = cost == CostModel::kLinearTotal;

  PlatformPredictor predictor(ctx.train.num_clusters(), config.predictor,
                              init_rng);
  if (grad == GradMode::kAnalytic) {
    train_mfcp_ad(predictor, ctx.train, mfcp);
  } else {
    train_mfcp_fg(predictor, ctx.train, mfcp, pool);
  }
  result.train_seconds = watch.seconds();
  result.metrics = evaluate_rule(
      [&predictor](const Matrix& features) mutable {
        return std::make_pair(
            predictor.predict_time_matrix(features),
            predictor.predict_reliability_matrix(features));
      },
      ctx, eval_config);
  return result;
}

}  // namespace mfcp::core
