#include "mfcp/predictor.hpp"

#include "autograd/ops.hpp"
#include "support/check.hpp"

namespace mfcp::core {

namespace {

nn::MlpConfig time_config(const PredictorConfig& config) {
  nn::MlpConfig c;
  c.input_dim = config.feature_dim;
  c.hidden = config.hidden;
  c.output_dim = 1;
  c.hidden_activation = nn::Activation::kRelu;
  c.output_activation = nn::Activation::kSoftplus;
  return c;
}

nn::MlpConfig rel_config(const PredictorConfig& config) {
  nn::MlpConfig c;
  c.input_dim = config.feature_dim;
  c.hidden = config.hidden;
  c.output_dim = 1;
  c.hidden_activation = nn::Activation::kRelu;
  c.output_activation = nn::Activation::kSigmoid;
  return c;
}

}  // namespace

ClusterPredictor::ClusterPredictor(const PredictorConfig& config, Rng& rng)
    : time_model_(time_config(config), rng),
      rel_model_(rel_config(config), rng),
      time_scale_(config.time_scale) {
  MFCP_CHECK(time_scale_ > 0.0, "time scale must be positive");
}

nn::Variable ClusterPredictor::forward_time(const nn::Variable& features) {
  return autograd::scale(time_model_.forward(features), time_scale_);
}

nn::Variable ClusterPredictor::forward_reliability(
    const nn::Variable& features) {
  return rel_model_.forward(features);
}

Matrix ClusterPredictor::predict_time_row(const Matrix& features) {
  nn::Variable in(features, /*requires_grad=*/false);
  return forward_time(in).value().reshaped(1, features.rows());
}

Matrix ClusterPredictor::predict_reliability_row(const Matrix& features) {
  nn::Variable in(features, /*requires_grad=*/false);
  return forward_reliability(in).value().reshaped(1, features.rows());
}

PlatformPredictor::PlatformPredictor(std::size_t num_clusters,
                                     const PredictorConfig& config, Rng& rng) {
  MFCP_CHECK(num_clusters > 0, "need at least one cluster");
  predictors_.reserve(num_clusters);
  for (std::size_t i = 0; i < num_clusters; ++i) {
    predictors_.emplace_back(config, rng);
  }
}

ClusterPredictor& PlatformPredictor::cluster(std::size_t i) {
  MFCP_CHECK(i < predictors_.size(), "cluster index out of range");
  return predictors_[i];
}

Matrix PlatformPredictor::predict_time_matrix(const Matrix& features) {
  Matrix t(predictors_.size(), features.rows());
  for (std::size_t i = 0; i < predictors_.size(); ++i) {
    const Matrix row = predictors_[i].predict_time_row(features);
    for (std::size_t j = 0; j < features.rows(); ++j) {
      t(i, j) = row[j];
    }
  }
  return t;
}

Matrix PlatformPredictor::predict_reliability_matrix(const Matrix& features) {
  Matrix a(predictors_.size(), features.rows());
  for (std::size_t i = 0; i < predictors_.size(); ++i) {
    const Matrix row = predictors_[i].predict_reliability_row(features);
    for (std::size_t j = 0; j < features.rows(); ++j) {
      a(i, j) = row[j];
    }
  }
  return a;
}

}  // namespace mfcp::core
