// Task-Agnostic Matching (TAM) baseline (paper §4.1.2): ignores task
// variation entirely — every task is predicted to take a cluster's
// training-set *average* time with its average reliability.
#pragma once

#include "sim/dataset.hpp"

namespace mfcp::core {

struct TamModel {
  std::vector<double> mean_time;         // per cluster
  std::vector<double> mean_reliability;  // per cluster
};

/// Computes the per-cluster averages over the training set.
TamModel fit_tam(const sim::Dataset& train);

/// T̂: each row i is constant at mean_time[i] (M x n).
Matrix tam_time_matrix(const TamModel& model, std::size_t num_tasks);

/// Â: each row i is constant at mean_reliability[i].
Matrix tam_reliability_matrix(const TamModel& model, std::size_t num_tasks);

}  // namespace mfcp::core
