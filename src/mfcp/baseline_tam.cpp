#include "mfcp/baseline_tam.hpp"

#include "support/check.hpp"

namespace mfcp::core {

TamModel fit_tam(const sim::Dataset& train) {
  MFCP_CHECK(train.num_tasks() > 0, "empty training set");
  const std::size_t m = train.num_clusters();
  const std::size_t n = train.num_tasks();
  TamModel model;
  model.mean_time.assign(m, 0.0);
  model.mean_reliability.assign(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      model.mean_time[i] += train.times(i, j);
      model.mean_reliability[i] += train.reliability(i, j);
    }
    model.mean_time[i] /= static_cast<double>(n);
    model.mean_reliability[i] /= static_cast<double>(n);
  }
  return model;
}

Matrix tam_time_matrix(const TamModel& model, std::size_t num_tasks) {
  Matrix t(model.mean_time.size(), num_tasks);
  for (std::size_t i = 0; i < model.mean_time.size(); ++i) {
    for (std::size_t j = 0; j < num_tasks; ++j) {
      t(i, j) = model.mean_time[i];
    }
  }
  return t;
}

Matrix tam_reliability_matrix(const TamModel& model, std::size_t num_tasks) {
  Matrix a(model.mean_reliability.size(), num_tasks);
  for (std::size_t i = 0; i < model.mean_reliability.size(); ++i) {
    for (std::size_t j = 0; j < num_tasks; ++j) {
      a(i, j) = model.mean_reliability[i];
    }
  }
  return a;
}

}  // namespace mfcp::core
