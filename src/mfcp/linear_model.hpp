// Closed-form ridge-regression predictors — the predictor class of the
// paper's Fig. 2 motivating example ("an execution time predictor for
// three tasks using linear regression").
//
// A linear model in the task features cannot represent the exponential /
// cliff-shaped cluster laws, so its MSE-optimal fit makes exactly the
// systematic, decision-flipping errors the figure illustrates — which is
// what bench/exp_fig2_motivation demonstrates. Also useful as a fast,
// deterministic baseline predictor (no SGD, no seeds).
#pragma once

#include "linalg/matrix.hpp"
#include "sim/dataset.hpp"

namespace mfcp::core {

struct LinearModelConfig {
  /// Ridge penalty (also guards against collinear features).
  double ridge_lambda = 1e-3;
  /// Per-sample weights are supported so a decision-focused reweighting
  /// can be applied on top of the closed-form fit (Fig. 2's "assign higher
  /// learning weights to the tasks preferred by a cluster").
  bool fit_intercept = true;
};

/// One cluster's linear predictors for time and reliability.
class LinearClusterModel {
 public:
  /// Fits both heads on (features, times-row, reliability-row) with
  /// optional per-sample weights (empty = uniform).
  LinearClusterModel(const Matrix& features, const Matrix& time_row,
                     const Matrix& rel_row,
                     const std::vector<double>& sample_weights,
                     const LinearModelConfig& config = {});

  /// Predicted execution times (clamped positive), 1 x n.
  [[nodiscard]] Matrix predict_time_row(const Matrix& features) const;

  /// Predicted reliabilities (clamped to [0.01, 0.999]), 1 x n.
  [[nodiscard]] Matrix predict_reliability_row(const Matrix& features) const;

  [[nodiscard]] const Matrix& time_weights() const noexcept {
    return w_time_;
  }
  [[nodiscard]] const Matrix& reliability_weights() const noexcept {
    return w_rel_;
  }

 private:
  [[nodiscard]] Matrix predict(const Matrix& features,
                               const Matrix& weights) const;

  bool intercept_;
  Matrix w_time_;  // (d [+1]) x 1
  Matrix w_rel_;
};

/// All clusters' linear predictors fitted from a dataset.
class LinearPlatformModel {
 public:
  LinearPlatformModel(const sim::Dataset& train,
                      const LinearModelConfig& config = {});

  /// Refits with per-(cluster, sample) weights — the decision-focused
  /// reweighting hook. `weights` is M x n over the training set.
  LinearPlatformModel(const sim::Dataset& train, const Matrix& weights,
                      const LinearModelConfig& config = {});

  [[nodiscard]] std::size_t num_clusters() const noexcept {
    return models_.size();
  }
  [[nodiscard]] const LinearClusterModel& cluster(std::size_t i) const;

  [[nodiscard]] Matrix predict_time_matrix(const Matrix& features) const;
  [[nodiscard]] Matrix predict_reliability_matrix(
      const Matrix& features) const;

 private:
  std::vector<LinearClusterModel> models_;
};

}  // namespace mfcp::core
