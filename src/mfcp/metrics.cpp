#include "mfcp/metrics.hpp"

#include <sstream>

namespace mfcp::core {

void MetricsAccumulator::add(const MatchOutcome& outcome) {
  regret_.add(outcome.regret);
  reliability_.add(outcome.reliability);
  utilization_.add(outcome.utilization);
  if (outcome.feasible) {
    ++feasible_;
  }
}

void MetricsAccumulator::reset() noexcept { *this = MetricsAccumulator{}; }

void MetricsAccumulator::merge(const MetricsAccumulator& other) noexcept {
  regret_.merge(other.regret_);
  reliability_.merge(other.reliability_);
  utilization_.merge(other.utilization_);
  feasible_ += other.feasible_;
}

double MetricsAccumulator::feasible_fraction() const noexcept {
  if (rounds() == 0) {
    return 0.0;
  }
  return static_cast<double>(feasible_) / static_cast<double>(rounds());
}

void MetricsAccumulator::to_registry(obs::MetricsRegistry& registry,
                                     std::string_view prefix,
                                     std::string_view labels) const {
  const std::string suffix =
      labels.empty() ? std::string() : '{' + std::string(labels) + '}';
  const auto expose = [&](std::string_view metric, const RunningStats& s) {
    const std::string base =
        std::string(prefix) + '_' + std::string(metric) + '_';
    registry.gauge(base + "mean" + suffix).set(s.mean());
    registry.gauge(base + "stddev" + suffix).set(s.stddev());
    if (s.count() > 0) {
      registry.gauge(base + "min" + suffix).set(s.min());
      registry.gauge(base + "max" + suffix).set(s.max());
    }
  };
  expose("regret", regret_);
  expose("reliability", reliability_);
  expose("utilization", utilization_);
  registry.gauge(std::string(prefix) + "_rounds" + suffix)
      .set(static_cast<double>(rounds()));
  registry.gauge(std::string(prefix) + "_feasible_fraction" + suffix)
      .set(feasible_fraction());
}

std::string MetricsAccumulator::summary(int precision) const {
  std::ostringstream os;
  os << "regret " << format_mean_std(regret_.mean(), regret_.stddev(),
                                     precision)
     << " | reliability "
     << format_mean_std(reliability_.mean(), reliability_.stddev(), precision)
     << " | utilization "
     << format_mean_std(utilization_.mean(), utilization_.stddev(),
                        precision);
  return os.str();
}

}  // namespace mfcp::core
