#include "mfcp/trainer_mfcp_ad.hpp"

#include "diff/kkt.hpp"
#include "mfcp/detail/round.hpp"
#include "mfcp/regret.hpp"
#include "mfcp/trainer_tsm.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "support/stopwatch.hpp"

namespace mfcp::core {

namespace {

/// Applies one cluster's seed gradients (plus the MSE anchor) through the
/// predictor tapes; `scale` carries the 1/rounds_per_step factor.
void backward_cluster(const MfcpConfig& config, const detail::Round& round,
                      std::size_t cluster_index, nn::Variable& t_hat,
                      nn::Variable& a_hat, Matrix seed_t, Matrix seed_a,
                      const Matrix& scale) {
  const std::size_t n = round.features.rows();
  detail::clip_norm(seed_t, config.seed_clip_norm);
  detail::clip_norm(seed_a, config.seed_clip_norm);

  Matrix t_target(n, 1);
  Matrix a_target(n, 1);
  for (std::size_t j = 0; j < n; ++j) {
    t_target(j, 0) = round.times(cluster_index, j);
    a_target(j, 0) = round.reliability(cluster_index, j);
  }
  auto loss_t = detail::inject_gradient(t_hat, seed_t);
  if (config.anchor_weight > 0.0) {
    loss_t = autograd::add(loss_t,
                           autograd::scale(nn::mse(t_hat, t_target),
                                           config.anchor_weight));
  }
  loss_t.backward(scale);

  auto loss_a = detail::inject_gradient(a_hat, seed_a);
  if (config.anchor_weight > 0.0) {
    loss_a = autograd::add(loss_a,
                           autograd::scale(nn::mse(a_hat, a_target),
                                           config.anchor_weight));
  }
  loss_a.backward(scale);
}

}  // namespace

MfcpTrainResult train_mfcp_ad(PlatformPredictor& predictor,
                              const sim::Dataset& train,
                              const MfcpConfig& config) {
  MFCP_CHECK(train.num_clusters() == predictor.num_clusters(),
             "dataset and predictor disagree on cluster count");
  MFCP_CHECK(config.rounds_per_step > 0, "need at least one round per step");
  Stopwatch watch;
  MfcpTrainResult result;
  Rng rng(config.seed);

  if (config.pretrain) {
    TsmConfig pre;
    pre.epochs = config.pretrain_epochs;
    pre.learning_rate = config.pretrain_learning_rate;
    pre.seed = rng.next_u64();
    train_tsm(predictor, train, pre);
  }

  const std::size_t m = predictor.num_clusters();
  std::vector<std::unique_ptr<nn::Adam>> time_opts;
  std::vector<std::unique_ptr<nn::Adam>> rel_opts;
  for (std::size_t i = 0; i < m; ++i) {
    time_opts.push_back(std::make_unique<nn::Adam>(
        predictor.cluster(i).time_model().parameters(),
        config.learning_rate));
    rel_opts.push_back(std::make_unique<nn::Adam>(
        predictor.cluster(i).reliability_model().parameters(),
        config.learning_rate));
  }

  const std::size_t n = config.round_tasks;
  const Matrix batch_scale(
      1, 1, 1.0 / static_cast<double>(config.rounds_per_step));

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    for (std::size_t i = 0; i < m; ++i) {
      time_opts[i]->zero_grad();
      rel_opts[i]->zero_grad();
    }

    double epoch_loss = 0.0;
    std::size_t loss_terms = 0;
    for (std::size_t b = 0; b < config.rounds_per_step; ++b) {
      const auto round = detail::sample_round(train, n, rng);

      // True-metric objective: defines the loss and its dL/dX* term.
      const auto true_objective =
          detail::make_kkt_objective(config, round.times, round.reliability);
      const auto x_true =
          matching::solve_mirror(*true_objective, config.solver).x;

      if (config.joint_prediction) {
        // Eq. 5/12: the inner problem sees every cluster's predictions —
        // one solve, one adjoint, M backward passes.
        std::vector<nn::Variable> t_hats;
        std::vector<nn::Variable> a_hats;
        Matrix t_pred = round.times;
        Matrix a_pred = round.reliability;
        for (std::size_t i = 0; i < m; ++i) {
          nn::Variable z_time(round.features, /*requires_grad=*/false);
          t_hats.push_back(
              predictor.cluster(i).forward_time(z_time));
          nn::Variable z_rel(round.features, /*requires_grad=*/false);
          a_hats.push_back(
              predictor.cluster(i).forward_reliability(z_rel));
          for (std::size_t j = 0; j < n; ++j) {
            t_pred(i, j) = t_hats.back().value()[j];
            a_pred(i, j) = a_hats.back().value()[j];
          }
        }
        const auto pred_objective =
            detail::make_kkt_objective(config, t_pred, a_pred);
        const auto x_star =
            matching::solve_mirror(*pred_objective, config.solver).x;
        epoch_loss += surrogate_regret(*true_objective, x_star, x_true);
        ++loss_terms;

        const Matrix upstream =
            surrogate_upstream_gradient(*true_objective, x_star);
        const auto vjp = diff::kkt_vjp(*pred_objective, x_star, upstream);

        for (std::size_t i = 0; i < m; ++i) {
          Matrix seed_t(n, 1);
          Matrix seed_a(n, 1);
          for (std::size_t j = 0; j < n; ++j) {
            seed_t(j, 0) = vjp.grad_t(i, j);
            seed_a(j, 0) = vjp.grad_a(i, j);
          }
          backward_cluster(config, round, i, t_hats[i], a_hats[i],
                           std::move(seed_t), std::move(seed_a),
                           batch_scale);
        }
      } else {
        // Algorithm-2-faithful per-cluster mode: cluster i's row is
        // predicted, the others stay at their measured values.
        for (std::size_t i = 0; i < m; ++i) {
          auto& cluster = predictor.cluster(i);
          nn::Variable z_time(round.features, /*requires_grad=*/false);
          auto t_hat = cluster.forward_time(z_time);
          nn::Variable z_rel(round.features, /*requires_grad=*/false);
          auto a_hat = cluster.forward_reliability(z_rel);

          const Matrix t_pred =
              detail::with_row(round.times, i, t_hat.value());
          const Matrix a_pred =
              detail::with_row(round.reliability, i, a_hat.value());

          const auto pred_objective =
              detail::make_kkt_objective(config, t_pred, a_pred);
          const auto x_star =
              matching::solve_mirror(*pred_objective, config.solver).x;
          epoch_loss += surrogate_regret(*true_objective, x_star, x_true);
          ++loss_terms;

          const Matrix upstream =
              surrogate_upstream_gradient(*true_objective, x_star);
          const auto vjp = diff::kkt_vjp(*pred_objective, x_star, upstream);

          Matrix seed_t(n, 1);
          Matrix seed_a(n, 1);
          for (std::size_t j = 0; j < n; ++j) {
            seed_t(j, 0) = vjp.grad_t(i, j);
            seed_a(j, 0) = vjp.grad_a(i, j);
          }
          backward_cluster(config, round, i, t_hat, a_hat,
                           std::move(seed_t), std::move(seed_a),
                           batch_scale);
        }
      }
    }

    // Alternating flavour of §3.3: ω and φ steps consume partial
    // derivatives computed with the other head's predictions held fixed.
    for (std::size_t i = 0; i < m; ++i) {
      time_opts[i]->step();
      rel_opts[i]->step();
    }
    result.loss_history.push_back(epoch_loss /
                                  static_cast<double>(loss_terms));
  }

  result.seconds = watch.seconds();
  return result;
}

}  // namespace mfcp::core
