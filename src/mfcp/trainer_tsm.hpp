// Two-Stage Method (TSM) — the predict-then-optimize baseline (paper §4.1.2,
// after Yang et al.): every cluster's predictors are trained independently
// by minimizing MSE (Eq. 1), and matching later consumes the predictions
// as if they were exact.
//
// Also used to warm-start the MFCP trainers: decision-focused fine-tuning
// from an MSE-pretrained predictor is the standard DFL recipe and matches
// the paper's framing of MFCP as re-weighting an (otherwise reasonable)
// predictor toward matching-relevant tasks.
#pragma once

#include "mfcp/predictor.hpp"
#include "sim/dataset.hpp"

namespace mfcp::core {

struct TsmConfig {
  std::size_t epochs = 400;
  double learning_rate = 1e-2;
  /// Full-batch training below this many samples, else mini-batches.
  std::size_t batch_size = 64;
  std::uint64_t seed = 0x75317531ULL;
};

struct TsmTrainResult {
  std::vector<double> time_loss_history;  // mean over clusters, per epoch
  std::vector<double> rel_loss_history;
  double seconds = 0.0;
};

/// Trains all per-cluster predictor pairs on the dataset's measured labels.
TsmTrainResult train_tsm(PlatformPredictor& predictor,
                         const sim::Dataset& train, const TsmConfig& config);

}  // namespace mfcp::core
