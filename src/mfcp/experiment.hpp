// Experiment orchestration: everything the bench harnesses need to
// regenerate the paper's tables and figures.
//
// A run fixes a cluster environment (setting A/B/C), builds one profiled
// dataset shared by all methods, trains each method on the same train
// split, then evaluates on repeated matching rounds sampled from the test
// split — reporting Regret / Reliability / Utilization as mean ± std.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "mfcp/baseline_tam.hpp"
#include "mfcp/baseline_ucb.hpp"
#include "mfcp/metrics.hpp"
#include "mfcp/mfcp_config.hpp"
#include "mfcp/predictor.hpp"
#include "mfcp/trainer_tsm.hpp"
#include "parallel/thread_pool.hpp"
#include "sim/dataset.hpp"

namespace mfcp::core {

enum class Method { kTam, kTsm, kUcb, kMfcpAd, kMfcpFg };
std::string to_string(Method method);

/// Gradient route for MFCP variants (Table 1 row (3) contrasts the two).
enum class GradMode { kAnalytic, kForward };

struct ExperimentConfig {
  sim::Setting setting = sim::Setting::kA;
  std::size_t num_clusters = 3;
  /// N: tasks matched per round (the paper's headline uses 5).
  std::size_t round_tasks = 5;
  std::size_t train_tasks = 160;
  std::size_t test_tasks = 80;
  /// Matching rounds sampled from the test split per method.
  std::size_t test_rounds = 20;
  double gamma = 0.8;
  sim::SpeedupCurve speedup = sim::SpeedupCurve::exclusive();

  PredictorConfig predictor;
  TsmConfig tsm;
  /// Decision-focused settings for MFCP-FG (and any FG-gradient variant).
  MfcpConfig mfcp;
  /// Settings for MFCP-AD. The analytic route differentiates the relaxed
  /// surrogate, whose link to the deployed discrete decision is weaker
  /// than the FG discrete loss — gentler steps and a stronger anchor keep
  /// it a strict refinement of its TSM warm start.
  MfcpConfig mfcp_ad = [] {
    MfcpConfig c;
    c.learning_rate = 5e-4;
    c.anchor_weight = 0.3;
    c.epochs = 60;
    return c;
  }();
  double ucb_kappa = 1.0;
  EvaluationConfig eval;

  std::uint64_t seed = 42;
};

/// The environment every method shares within one experiment.
struct ExperimentContext {
  sim::Platform platform;
  sim::PseudoGnnEmbedder embedder;
  sim::Dataset train;
  sim::Dataset test;
};

ExperimentContext make_context(const ExperimentConfig& config);

struct MethodResult {
  Method method = Method::kTsm;
  std::string label;
  MetricsAccumulator metrics;
  double train_seconds = 0.0;
};

/// Predictions for one round of features: (T̂, Â), both M x n.
using PredictionFn =
    std::function<std::pair<Matrix, Matrix>(const Matrix& features)>;

/// Evaluates an arbitrary prediction rule over the configured test rounds.
MetricsAccumulator evaluate_rule(const PredictionFn& predict,
                                 const ExperimentContext& ctx,
                                 const ExperimentConfig& config);

/// Trains (where applicable) and evaluates one of the five paper methods.
MethodResult run_method(Method method, const ExperimentContext& ctx,
                        const ExperimentConfig& config,
                        ThreadPool* pool = nullptr);

/// All requested methods on the shared context.
std::vector<MethodResult> run_methods(const std::vector<Method>& methods,
                                      const ExperimentContext& ctx,
                                      const ExperimentConfig& config,
                                      ThreadPool* pool = nullptr);

/// MFCP variant with explicit objective/gradient knobs (Table 1 ablation).
MethodResult run_mfcp_variant(CostModel cost, ConstraintModel constraint,
                              GradMode grad, std::string label,
                              const ExperimentContext& ctx,
                              const ExperimentConfig& config,
                              ThreadPool* pool = nullptr);

}  // namespace mfcp::core
