// Shared configuration for the decision-focused (MFCP) trainers.
#pragma once

#include <cstdint>

#include "diff/zeroth_order.hpp"
#include "matching/barrier.hpp"
#include "matching/solver_mirror.hpp"
#include "sim/speedup.hpp"

namespace mfcp::core {

/// Which time-cost function the training objective uses (Table 1 row (1)
/// ablates the smoothed max down to a linear total).
enum class CostModel { kSmoothedMax, kLinearTotal };

/// How the reliability constraint enters the objective (Table 1 row (2)
/// ablates the log barrier to a hard hinge penalty).
enum class ConstraintModel { kLogBarrier, kHardPenalty };

struct MfcpConfig {
  std::size_t epochs = 80;
  /// N: tasks per matching round sampled from the training set (the paper
  /// trains on rounds of the same size it matches at deployment).
  std::size_t round_tasks = 5;
  /// Rounds averaged per parameter update. A single round's regret
  /// gradient is extremely noisy (N is small); averaging B rounds divides
  /// the variance by B at B times the solve cost.
  std::size_t rounds_per_step = 4;
  double learning_rate = 3e-3;
  double gamma = 0.8;

  /// Weight of an auxiliary MSE term added to the regret loss. Pure regret
  /// training leaves the predictors unanchored (any â drift that does not
  /// change the in-sample matching is free), which degrades them as
  /// predictors; a small anchor keeps them calibrated. Set to 0 for the
  /// paper's pure-regret objective.
  double anchor_weight = 0.1;

  /// Clip threshold (L2 norm) for the per-round matching-layer seed
  /// gradients dL/dt̂_i, dL/dâ_i — the barrier can spike them when a round
  /// sits near the reliability boundary. 0 disables clipping.
  double seed_clip_norm = 1.0;

  CostModel cost_model = CostModel::kSmoothedMax;
  ConstraintModel constraint_model = ConstraintModel::kLogBarrier;
  /// Weight of the hinge when constraint_model == kHardPenalty.
  double penalty_lambda = 2.0;

  /// Entropy weight τ for the inner (training-time) matching problem.
  /// Keeps the relaxed optimum strictly interior so dX*/dT̂ is non-zero
  /// (see matching/entropy.hpp). 0 disables — the paper's bare relaxation,
  /// whose argmin is a vertex almost everywhere and yields no gradient.
  double entropy_tau = 0.1;

  matching::BarrierConfig barrier;
  matching::MirrorSolverConfig solver{.max_iterations = 600,
                                      .learning_rate = 0.8,
                                      .tolerance = 1e-7,
                                      .floor = 1e-12};
  sim::SpeedupCurve speedup = sim::SpeedupCurve::exclusive();

  /// Zeroth-order estimator settings (MFCP-FG only). The time delta is on
  /// the hour scale of the predictions; the reliability delta on the
  /// probability scale.
  diff::ForwardGradientConfig forward_gradient{.samples = 16,
                                               .delta = 0.5,
                                               .delta_reliability = 0.05};

  /// MFCP-FG loss: when true (default), the zeroth-order estimator
  /// differentiates the *deployed* pipeline loss directly — the true
  /// makespan of the rounded assignment plus a hinge on the true
  /// reliability shortfall. Randomized smoothing over the Gaussian
  /// perturbations handles the piecewise-constant rounding (the
  /// perturbed-optimizer view). When false, FG estimates gradients of the
  /// relaxed surrogate like MFCP-AD (the literal Algorithm-2 reading),
  /// which rewards hedged relaxed solutions that round poorly.
  bool fg_discrete_loss = true;
  /// Hinge weight (hours per unit reliability shortfall per task) in the
  /// discrete FG loss.
  double fg_reliability_penalty = 2.0;

  /// Predict ALL clusters' rows during the training solve (the bilevel
  /// problem of Eq. 5/12, and what deployment sees), rather than replacing
  /// only cluster i's row and keeping the others at measured values
  /// (Algorithm 2 line 3). Joint mode aligns the training regime with the
  /// deployed one and needs one inner solve per round instead of M.
  bool joint_prediction = true;

  /// Warm start from MSE pretraining (see trainer_tsm.hpp).
  bool pretrain = true;
  std::size_t pretrain_epochs = 300;
  double pretrain_learning_rate = 1e-2;

  std::uint64_t seed = 0xacdcULL;
};

struct MfcpTrainResult {
  std::vector<double> loss_history;  // surrogate regret per epoch
  double seconds = 0.0;
};

}  // namespace mfcp::core
