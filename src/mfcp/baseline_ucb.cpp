#include "mfcp/baseline_ucb.hpp"

#include <algorithm>
#include <cmath>

#include "support/check.hpp"

namespace mfcp::core {

UcbModel fit_ucb(PlatformPredictor& predictor, const sim::Dataset& calib,
                 double kappa) {
  MFCP_CHECK(calib.num_clusters() == predictor.num_clusters(),
             "dataset and predictor disagree on cluster count");
  MFCP_CHECK(calib.num_tasks() > 1, "calibration set too small");
  MFCP_CHECK(kappa >= 0.0, "kappa must be non-negative");

  const std::size_t m = predictor.num_clusters();
  const std::size_t n = calib.num_tasks();
  UcbModel model;
  model.kappa = kappa;
  model.sigma_time.assign(m, 0.0);
  model.sigma_reliability.assign(m, 0.0);

  const Matrix t_hat = predictor.predict_time_matrix(calib.features);
  const Matrix a_hat = predictor.predict_reliability_matrix(calib.features);
  for (std::size_t i = 0; i < m; ++i) {
    double sq_t = 0.0;
    double sq_a = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      const double dt = t_hat(i, j) - calib.times(i, j);
      const double da = a_hat(i, j) - calib.reliability(i, j);
      sq_t += dt * dt;
      sq_a += da * da;
    }
    model.sigma_time[i] = std::sqrt(sq_t / static_cast<double>(n));
    model.sigma_reliability[i] = std::sqrt(sq_a / static_cast<double>(n));
  }
  return model;
}

Matrix ucb_time_matrix(const UcbModel& model, PlatformPredictor& predictor,
                       const Matrix& features) {
  Matrix t = predictor.predict_time_matrix(features);
  MFCP_CHECK(model.sigma_time.size() == t.rows(),
             "model and predictor disagree on cluster count");
  for (std::size_t i = 0; i < t.rows(); ++i) {
    for (std::size_t j = 0; j < t.cols(); ++j) {
      t(i, j) += model.kappa * model.sigma_time[i];
    }
  }
  return t;
}

Matrix ucb_reliability_matrix(const UcbModel& model,
                              PlatformPredictor& predictor,
                              const Matrix& features) {
  Matrix a = predictor.predict_reliability_matrix(features);
  MFCP_CHECK(model.sigma_reliability.size() == a.rows(),
             "model and predictor disagree on cluster count");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      a(i, j) = std::clamp(
          a(i, j) - model.kappa * model.sigma_reliability[i], 0.01, 0.999);
    }
  }
  return a;
}

}  // namespace mfcp::core
