// Upper-Confidence-Bound baseline (paper §4.1.2, after Zhou et al.):
// prediction-error-robust matching. Predictors are the TSM ones; matching
// consumes *conservative* bounds instead of point estimates —
//     t̃_ij = t̂_ij + κ σ_t,i   (pessimistic execution time)
//     ã_ij = â_ij - κ σ_a,i   (pessimistic reliability)
// with per-cluster residual scales σ estimated on held-out data. Choosing
// the matching that is best under these bounds is the minimax-flavoured
// "highest-confidence" selection the paper describes.
#pragma once

#include "mfcp/predictor.hpp"
#include "sim/dataset.hpp"

namespace mfcp::core {

struct UcbModel {
  std::vector<double> sigma_time;         // per-cluster residual std of t̂
  std::vector<double> sigma_reliability;  // per-cluster residual std of â
  double kappa = 1.0;                     // confidence width multiplier
};

/// Estimates per-cluster residual scales of an (already trained) predictor
/// on a calibration set.
UcbModel fit_ucb(PlatformPredictor& predictor, const sim::Dataset& calib,
                 double kappa = 1.0);

/// Pessimistic time matrix t̂ + κ σ_t (M x n).
Matrix ucb_time_matrix(const UcbModel& model, PlatformPredictor& predictor,
                       const Matrix& features);

/// Pessimistic reliability matrix clamp(â - κ σ_a, 0.01, 0.999).
Matrix ucb_reliability_matrix(const UcbModel& model,
                              PlatformPredictor& predictor,
                              const Matrix& features);

}  // namespace mfcp::core
