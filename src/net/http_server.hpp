// Multi-threaded HTTP/1.1 server core on plain POSIX sockets.
//
// Factored out of obs/http_exporter (PR 3) and promoted into the shared
// ingress path for the platform gateway:
//
//   accept thread ──> bounded accepted-connection queue ──> worker pool
//
// The accept loop only accepts and enqueues; a small worker pool reads
// each request (head + Content-Length body), parses it with the socket-
// free functions in net/http.hpp, invokes the caller's handler, and
// writes the serialized response. When the accepted-connection queue is
// full the server sheds load at the door: the connection is answered
// with an immediate 503 and closed, rather than queueing unboundedly —
// the same explicit-backpressure philosophy as the engine's admission
// queue (a counter tracks every shed connection).
//
// Graceful shutdown: stop() closes the listener, lets the workers finish
// every connection already accepted (nothing in flight is dropped), then
// joins all threads. Handler exceptions become 500 responses, never
// worker-thread deaths.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/http.hpp"

namespace mfcp::net {

/// Optional lifecycle hooks for server worker threads. The net layer
/// knows nothing about telemetry; observability (the flight recorder's
/// per-worker heartbeats and HTTP begin/end events) implements this
/// interface one layer up (obs::FlightServerObserver). All methods run on
/// the worker thread they describe and must be cheap and non-blocking —
/// they sit on the request path. Default implementations no-op.
class ServerObserver {
 public:
  virtual ~ServerObserver() = default;

  /// Worker thread started (called once, before any other hook).
  virtual void on_worker_start(std::size_t worker) { (void)worker; }
  /// Worker is about to block waiting for a connection.
  virtual void on_worker_idle(std::size_t worker) { (void)worker; }
  /// Worker picked up a connection and is about to read the request.
  virtual void on_request_begin(std::size_t worker) { (void)worker; }
  /// Response written (status 0 when the connection died before one).
  virtual void on_request_end(std::size_t worker, int status,
                              std::size_t response_bytes) {
    (void)worker;
    (void)status;
    (void)response_bytes;
  }
};

struct HttpServerConfig {
  /// Loopback by default: these servers expose process introspection and
  /// a demo ingress, not an authenticated public endpoint.
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; read the result via port().
  std::uint16_t port = 0;
  /// Kernel listen(2) backlog.
  int listen_backlog = 64;
  /// Worker threads serving accepted connections.
  std::size_t worker_threads = 4;
  /// Accepted connections waiting for a worker beyond which the server
  /// sheds load with an immediate 503.
  std::size_t max_queued_connections = 128;
  /// Receive timeout per connection, so one stalled client costs at most
  /// one worker for this long.
  int receive_timeout_ms = 2000;
  /// Requests whose head + body exceed this are answered 413.
  std::size_t max_request_bytes = 1 << 20;
  /// Borrowed worker-lifecycle hooks; null = no observation. Must outlive
  /// the server.
  ServerObserver* observer = nullptr;
};

class HttpServer {
 public:
  /// Maps one parsed request to a response. Runs on a worker thread; must
  /// be thread-safe. Invalid (unparseable) requests are answered 400
  /// before the handler is consulted.
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// Binds, listens, and starts the accept + worker threads. Throws
  /// ContractError when the socket cannot be created or bound.
  explicit HttpServer(Handler handler, HttpServerConfig config = {});

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Stops and joins every thread (see stop()).
  ~HttpServer();

  /// The actually bound port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Requests answered so far, any status (503 sheds included).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Connections shed with a 503 because the accepted queue was full.
  [[nodiscard]] std::uint64_t connections_shed() const noexcept {
    return shed_.load(std::memory_order_relaxed);
  }

  /// Graceful, idempotent shutdown (also run by the destructor): closes
  /// the listener, drains already-accepted connections, joins threads.
  void stop();

 private:
  void accept_loop();
  void worker_loop(std::size_t worker);
  void serve_connection(int fd, std::size_t worker);

  Handler handler_;
  HttpServerConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;

  std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<int> accepted_;
  bool accept_done_ = false;

  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
};

}  // namespace mfcp::net
