// Minimal blocking HTTP/1.1 client for the load generator and the live-
// socket tests: one request per connection (the server answers with
// Connection: close), plain POSIX sockets, no dependencies beyond
// net/http.hpp for response parsing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mfcp::net {

struct ClientResponse {
  bool ok = false;        // transport-level success (response received)
  std::string error;      // transport failure description when !ok
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;  // lower-cased
  std::string body;

  /// First header value with the given (case-insensitive) name, or empty.
  [[nodiscard]] std::string_view header(std::string_view name) const noexcept;
};

/// Parses a full HTTP/1.1 response (status line + headers + body) as read
/// off the wire. Socket-free, unit-testable.
[[nodiscard]] ClientResponse parse_response(std::string_view wire);

/// Connects to host:port, sends one request, reads to EOF, parses.
/// `timeout_ms` bounds connect and receive.
[[nodiscard]] ClientResponse http_call(const std::string& host,
                                       std::uint16_t port,
                                       const std::string& method,
                                       const std::string& path,
                                       const std::string& body = {},
                                       int timeout_ms = 5000);

}  // namespace mfcp::net
