// Socket-free HTTP/1.1 protocol surface shared by the server core, the
// metrics exporter, the platform gateway, and the load-generator client.
//
// Everything here is a pure function over strings: request-head parsing
// (request line + headers + Content-Length framing), response assembly,
// and the tiny pieces of header algebra the callers need. The socket
// plumbing lives in http_server.hpp / http_client.hpp; keeping the
// protocol surface separate is what makes the parse/route/respond path
// unit-testable without ever opening a listener.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace mfcp::net {

/// One parsed request head. Header names are lower-cased at parse time
/// (HTTP header names are case-insensitive); values keep their case with
/// surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;
  std::string path;
  std::string version;  // e.g. "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;
  bool valid = false;

  /// First header value with the given (case-insensitive) name, or empty.
  [[nodiscard]] std::string_view header(std::string_view name) const noexcept;

  /// Content-Length as declared by the head; nullopt when absent or
  /// non-numeric.
  [[nodiscard]] std::optional<std::size_t> content_length() const noexcept;
};

/// Parses "METHOD SP PATH SP VERSION" plus the header lines that follow,
/// up to (not including) the blank line. Returns valid=false on any
/// malformed line — the server answers 400 rather than guessing.
[[nodiscard]] HttpRequest parse_request_head(std::string_view head);

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
  /// Extra headers, e.g. {"Retry-After", "3"} or {"Allow", "GET"}.
  std::vector<std::pair<std::string, std::string>> headers;
};

/// Reason phrase for the status codes this repo emits ("OK", "Too Many
/// Requests", ...); "Unknown" otherwise.
[[nodiscard]] std::string_view status_reason(int status) noexcept;

/// Full wire form: status line, Content-Type/-Length, Connection: close,
/// extra headers, blank line, body.
[[nodiscard]] std::string serialize_response(const HttpResponse& response);

/// Convenience constructors for the common response shapes.
[[nodiscard]] HttpResponse text_response(int status, std::string body);
[[nodiscard]] HttpResponse json_response(int status, std::string body);

}  // namespace mfcp::net
