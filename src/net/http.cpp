#include "net/http.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace mfcp::net {

namespace {

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::string_view trim(std::string_view s) noexcept {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string_view HttpRequest::header(std::string_view name) const noexcept {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) {
      return value;
    }
  }
  return {};
}

std::optional<std::size_t> HttpRequest::content_length() const noexcept {
  const std::string_view raw = header("content-length");
  if (raw.empty()) {
    return std::nullopt;
  }
  std::size_t n = 0;
  const auto [end, ec] = std::from_chars(raw.data(), raw.data() + raw.size(), n);
  if (ec != std::errc{} || end != raw.data() + raw.size()) {
    return std::nullopt;
  }
  return n;
}

HttpRequest parse_request_head(std::string_view head) {
  HttpRequest req;

  const std::size_t line_end = head.find('\n');
  std::string_view line = head.substr(0, line_end);
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  const std::size_t first = line.find(' ');
  if (first == std::string_view::npos || first == 0) {
    return req;
  }
  const std::size_t second = line.find(' ', first + 1);
  if (second == std::string_view::npos || second == first + 1) {
    return req;
  }
  const std::string_view version = line.substr(second + 1);
  if (version.empty() || version.find(' ') != std::string_view::npos) {
    return req;
  }
  req.method = std::string(line.substr(0, first));
  req.path = std::string(line.substr(first + 1, second - first - 1));
  req.version = std::string(version);

  // Header lines until the blank line (or end of the provided head).
  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 1;
  while (pos < head.size()) {
    std::size_t next = head.find('\n', pos);
    std::string_view h = head.substr(
        pos, next == std::string_view::npos ? head.size() - pos : next - pos);
    pos = next == std::string_view::npos ? head.size() : next + 1;
    if (!h.empty() && h.back() == '\r') {
      h.remove_suffix(1);
    }
    if (h.empty()) {
      break;  // end of head
    }
    const std::size_t colon = h.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return req;  // malformed header line; leave valid=false
    }
    req.headers.emplace_back(to_lower(trim(h.substr(0, colon))),
                             std::string(trim(h.substr(colon + 1))));
  }
  req.valid = true;
  return req;
}

std::string_view status_reason(int status) noexcept {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 413:
      return "Payload Too Large";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

std::string serialize_response(const HttpResponse& response) {
  std::string out = "HTTP/1.1 ";
  out += std::to_string(response.status);
  out += ' ';
  out += status_reason(response.status);
  out += "\r\nContent-Type: ";
  out += response.content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(response.body.size());
  out += "\r\nConnection: close\r\n";
  for (const auto& [key, value] : response.headers) {
    out += key;
    out += ": ";
    out += value;
    out += "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

HttpResponse text_response(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.body = std::move(body);
  return r;
}

HttpResponse json_response(int status, std::string body) {
  HttpResponse r;
  r.status = status;
  r.content_type = "application/json";
  r.body = std::move(body);
  return r;
}

}  // namespace mfcp::net
