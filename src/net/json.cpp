#include "net/json.hpp"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace mfcp::net {

namespace {

struct Cursor {
  std::string_view text;
  std::size_t pos = 0;

  [[nodiscard]] bool done() const noexcept { return pos >= text.size(); }
  [[nodiscard]] char peek() const noexcept { return text[pos]; }
  void skip_ws() noexcept {
    while (!done() && std::isspace(static_cast<unsigned char>(peek()))) {
      ++pos;
    }
  }
  bool consume(char c) noexcept {
    if (done() || peek() != c) {
      return false;
    }
    ++pos;
    return true;
  }
  bool consume_literal(std::string_view lit) noexcept {
    if (text.substr(pos, lit.size()) != lit) {
      return false;
    }
    pos += lit.size();
    return true;
  }
};

/// Appends one Unicode code point as UTF-8.
void append_utf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out.push_back(static_cast<char>(cp));
  } else if (cp < 0x800) {
    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  } else {
    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
    out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
    out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
  }
}

bool parse_string(Cursor& c, std::string& out) {
  if (!c.consume('"')) {
    return false;
  }
  out.clear();
  while (!c.done()) {
    const char ch = c.text[c.pos++];
    if (ch == '"') {
      return true;
    }
    if (ch != '\\') {
      out.push_back(ch);
      continue;
    }
    if (c.done()) {
      return false;
    }
    const char esc = c.text[c.pos++];
    switch (esc) {
      case '"':
        out.push_back('"');
        break;
      case '\\':
        out.push_back('\\');
        break;
      case '/':
        out.push_back('/');
        break;
      case 'b':
        out.push_back('\b');
        break;
      case 'f':
        out.push_back('\f');
        break;
      case 'n':
        out.push_back('\n');
        break;
      case 'r':
        out.push_back('\r');
        break;
      case 't':
        out.push_back('\t');
        break;
      case 'u': {
        if (c.pos + 4 > c.text.size()) {
          return false;
        }
        unsigned cp = 0;
        for (int k = 0; k < 4; ++k) {
          const char h = c.text[c.pos++];
          cp <<= 4;
          if (h >= '0' && h <= '9') {
            cp |= static_cast<unsigned>(h - '0');
          } else if (h >= 'a' && h <= 'f') {
            cp |= static_cast<unsigned>(h - 'a' + 10);
          } else if (h >= 'A' && h <= 'F') {
            cp |= static_cast<unsigned>(h - 'A' + 10);
          } else {
            return false;
          }
        }
        append_utf8(out, cp);
        break;
      }
      default:
        return false;
    }
  }
  return false;  // unterminated
}

bool parse_number(Cursor& c, double& out) {
  const char* start = c.text.data() + c.pos;
  char* end = nullptr;
  out = std::strtod(start, &end);
  if (end == start) {
    return false;
  }
  c.pos += static_cast<std::size_t>(end - start);
  return true;
}

}  // namespace

std::optional<std::map<std::string, JsonValue>> parse_json_object(
    std::string_view text) {
  Cursor c{text};
  c.skip_ws();
  if (!c.consume('{')) {
    return std::nullopt;
  }
  std::map<std::string, JsonValue> out;
  c.skip_ws();
  if (c.consume('}')) {
    c.skip_ws();
    return c.done() ? std::make_optional(std::move(out)) : std::nullopt;
  }
  for (;;) {
    c.skip_ws();
    std::string key;
    if (!parse_string(c, key)) {
      return std::nullopt;
    }
    c.skip_ws();
    if (!c.consume(':')) {
      return std::nullopt;
    }
    c.skip_ws();
    JsonValue value;
    if (c.done()) {
      return std::nullopt;
    }
    const char first = c.peek();
    if (first == '"') {
      value.kind = JsonValue::Kind::kString;
      if (!parse_string(c, value.str)) {
        return std::nullopt;
      }
    } else if (first == 't') {
      if (!c.consume_literal("true")) {
        return std::nullopt;
      }
      value.kind = JsonValue::Kind::kBool;
      value.boolean = true;
    } else if (first == 'f') {
      if (!c.consume_literal("false")) {
        return std::nullopt;
      }
      value.kind = JsonValue::Kind::kBool;
      value.boolean = false;
    } else if (first == 'n') {
      if (!c.consume_literal("null")) {
        return std::nullopt;
      }
      value.kind = JsonValue::Kind::kNull;
    } else if (first == '{' || first == '[') {
      return std::nullopt;  // flat objects only, by design
    } else {
      value.kind = JsonValue::Kind::kNumber;
      if (!parse_number(c, value.num)) {
        return std::nullopt;
      }
    }
    if (!out.emplace(std::move(key), std::move(value)).second) {
      return std::nullopt;  // duplicate key
    }
    c.skip_ws();
    if (c.consume(',')) {
      continue;
    }
    if (c.consume('}')) {
      break;
    }
    return std::nullopt;
  }
  c.skip_ws();
  if (!c.done()) {
    return std::nullopt;  // trailing garbage
  }
  return out;
}

std::string json_quote(std::string_view v) {
  std::string out = "\"";
  for (const char ch : v) {
    switch (ch) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(ch));
          out += buf;
        } else {
          out.push_back(ch);
        }
    }
  }
  out.push_back('"');
  return out;
}

}  // namespace mfcp::net
