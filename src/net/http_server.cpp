#include "net/http_server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/check.hpp"
#include "support/log.hpp"

namespace mfcp::net {

namespace {

void send_all(int fd, std::string_view data) noexcept {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      return;
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

HttpServer::HttpServer(Handler handler, HttpServerConfig config)
    : handler_(std::move(handler)), config_(std::move(config)) {
  MFCP_CHECK(handler_ != nullptr, "http server: handler required");
  MFCP_CHECK(config_.worker_threads > 0,
             "http server: need at least one worker");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MFCP_CHECK(listen_fd_ >= 0, "http server: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  MFCP_CHECK(::inet_pton(AF_INET, config_.bind_address.c_str(),
                         &addr.sin_addr) == 1,
             "http server: bad bind address");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    MFCP_CHECK(false, std::string("http server: bind/listen failed: ") +
                          std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  workers_.reserve(config_.worker_threads);
  for (std::size_t i = 0; i < config_.worker_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::stop() {
  if (stopping_.exchange(true)) {
    // A concurrent or repeated stop: wait for the first one's joins.
    if (accept_thread_.joinable()) {
      accept_thread_.join();
    }
    for (std::thread& w : workers_) {
      if (w.joinable()) {
        w.join();
      }
    }
    return;
  }
  if (listen_fd_ >= 0) {
    // Unblocks the accept loop (Linux: pending accept returns EINVAL).
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  {
    // The accept loop has exited, so no more connections will be queued;
    // workers drain what was already accepted and then exit.
    std::lock_guard<std::mutex> lock(mutex_);
    accept_done_ = true;
  }
  ready_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) {
      w.join();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpServer::accept_loop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load(std::memory_order_relaxed)) {
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      MFCP_LOG(kWarn) << "http server: accept failed: "
                      << std::strerror(errno);
      return;
    }
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (accepted_.size() >= config_.max_queued_connections) {
        shed = true;
      } else {
        accepted_.push_back(client);
      }
    }
    if (shed) {
      // Bounded backlog: answer at the door instead of queueing without
      // limit. Retry-After 1 is a hint, not a promise.
      HttpResponse overloaded = text_response(503, "overloaded\n");
      overloaded.headers.emplace_back("Retry-After", "1");
      send_all(client, serialize_response(overloaded));
      ::close(client);
      shed_.fetch_add(1, std::memory_order_relaxed);
      requests_.fetch_add(1, std::memory_order_relaxed);
    } else {
      ready_.notify_one();
    }
  }
}

void HttpServer::worker_loop(std::size_t worker) {
  ServerObserver* obs = config_.observer;
  if (obs != nullptr) {
    obs->on_worker_start(worker);
  }
  for (;;) {
    int fd = -1;
    {
      if (obs != nullptr) {
        obs->on_worker_idle(worker);
      }
      std::unique_lock<std::mutex> lock(mutex_);
      ready_.wait(lock,
                  [this] { return !accepted_.empty() || accept_done_; });
      if (accepted_.empty()) {
        return;  // accept_done_ and nothing left to drain
      }
      fd = accepted_.front();
      accepted_.pop_front();
    }
    if (obs != nullptr) {
      obs->on_request_begin(worker);
    }
    serve_connection(fd, worker);
  }
}

void HttpServer::serve_connection(int fd, std::size_t worker) {
  timeval timeout{};
  timeout.tv_sec = config_.receive_timeout_ms / 1000;
  timeout.tv_usec = (config_.receive_timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

  // Read the request head, then however much of the declared body is
  // still missing from the same buffer.
  std::string data;
  std::size_t head_end = std::string::npos;
  char buf[4096];
  bool too_large = false;
  while ((head_end = data.find("\r\n\r\n")) == std::string::npos) {
    if (data.size() > config_.max_request_bytes) {
      too_large = true;
      break;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      break;
    }
    data.append(buf, static_cast<std::size_t>(n));
  }

  HttpResponse response;
  if (too_large) {
    response = text_response(413, "request too large\n");
  } else if (head_end == std::string::npos) {
    response = text_response(400, "bad request\n");
  } else {
    HttpRequest request =
        parse_request_head(std::string_view(data).substr(0, head_end));
    if (!request.valid) {
      response = text_response(400, "bad request\n");
    } else {
      const std::size_t body_start = head_end + 4;
      const std::size_t want = request.content_length().value_or(0);
      if (want > config_.max_request_bytes) {
        response = text_response(413, "request too large\n");
      } else {
        while (data.size() - body_start < want) {
          const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
          if (n <= 0) {
            break;
          }
          data.append(buf, static_cast<std::size_t>(n));
        }
        if (data.size() - body_start < want) {
          response = text_response(400, "truncated body\n");
        } else {
          request.body = data.substr(body_start, want);
          try {
            response = handler_(request);
          } catch (const std::exception& e) {
            MFCP_LOG(kWarn) << "http server: handler threw: " << e.what();
            response = text_response(500, "internal error\n");
          } catch (...) {
            response = text_response(500, "internal error\n");
          }
        }
      }
    }
  }
  const std::string wire = serialize_response(response);
  send_all(fd, wire);
  ::close(fd);
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (config_.observer != nullptr) {
    config_.observer->on_request_end(worker, response.status, wire.size());
  }
}

}  // namespace mfcp::net
