// Platform gateway: the task-submission HTTP service in front of a
// serving OnlineEngine.
//
//   POST /submit     {"family":"cnn","depth":8,...}
//                    -> 200 {"accepted":true,"id":...,"trace_id":"<hex>",
//                       "trace_sampled":...} + X-Trace-Id       admitted
//                    -> 429 + Retry-After: <s>              backpressure
//   GET  /task/<id>  -> 200 task lifecycle JSON (queued -> matched ->
//                       dispatched, or expired/rejected), 404 unknown,
//                       410 evicted from the bounded status table
//   GET  /trace/<id> -> 200 flat JSON span chain of a sampled task
//                       (16-hex trace id from /submit), 404 unknown /
//                       unsampled, 404 when tracing is off
//   GET  /alerts     -> 200 flat JSON burn-rate state of every SLO rule
//   GET  /ratekeeper -> 200 flat JSON admission-controller state: global
//                       rate, limiting signal, per-client buckets; 404
//                       when the Ratekeeper is disabled
//   GET  /stats      -> 200 flat JSON: queue depth, round cadence,
//                       cumulative regret, task-state counts
//   GET  /debug/flight[?thread=&kind=&limit=]
//                    -> 200 recent flight-recorder events (black box),
//                       400 malformed filter, 404 recorder disabled
//   GET  /debug/threads
//                    -> 200 per-thread heartbeat ages + stall flags
//   GET  /debug/profile[?seconds=&hz=]
//                    -> 200 folded CPU profile from an on-demand sampling
//                       session, 400 malformed params, 404 profiler
//                       disabled, 409 while another session runs
//   GET  /debug/build
//                    -> 200 build provenance JSON (git sha, compiler,
//                       build type, sanitizers)
//   GET  /journal[?from=&to=]
//                    -> 200 NDJSON round/task records from the chunked
//                       on-disk journal whose close_hours fall in
//                       [from, to] (defaults: everything retained),
//                       served across chunk boundaries; 400 malformed
//                       window, 404 storage disabled
//   GET  /debug/storage
//                    -> 200 flat JSON durability state: WAL records/
//                       bytes/fsyncs/segments, recovery counts,
//                       checkpoint generation, chunk census; 404
//                       storage disabled
//   GET  /metrics    -> 200 Prometheus exposition of the shared registry
//   GET  /healthz    -> 200 "ok\n"
//
// The request -> response mapping is a pure function over the parsed
// request (route_gateway_request), so every route is unit-testable
// without a socket; PlatformGateway glues it onto the shared
// net::HttpServer core and adds the request metrics
// (mfcp_gateway_requests_total{route=,status=}, submit latency).
//
// Backpressure is decided by the engine-side GatewayLink, not here: the
// gateway never buffers tasks itself, so a 200 means the task is in the
// engine's hands and will terminate in exactly one of
// matched/dispatched/expired/rejected — the conservation law the load
// generator asserts.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "control/ratekeeper.hpp"
#include "control/token_bucket.hpp"
#include "engine/service.hpp"
#include "net/http.hpp"
#include "net/http_server.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/slo.hpp"
#include "obs/span.hpp"
#include "obs/trace_store.hpp"
#include "sim/task.hpp"
#include "storage/storage.hpp"

namespace mfcp::net {

/// Result of parsing a POST /submit body. `deadline_hours` is 0 when the
/// client did not set one (the link substitutes its default).
struct SubmitParse {
  bool ok = false;
  std::string error;  // human-readable, echoed in the 400 body
  sim::TaskDescriptor task;
  double deadline_hours = 0.0;
  /// Rate-limiting identity ("client" field); empty = anonymous bucket.
  std::string client;
};

/// Parses and validates a flat-JSON task submission. Accepted fields:
/// family ("cnn"|"transformer"|"rnn"|"mlp", required), dataset
/// ("cifar-10"|"imagenet"|"europarl"), depth, width, batch_size,
/// dataset_fraction, deadline_hours, client (<= 64 chars of
/// [A-Za-z0-9._-], names the token bucket the submit is charged to).
/// Unknown fields are rejected so client typos fail loudly instead of
/// silently running defaults.
[[nodiscard]] SubmitParse parse_submit_body(std::string_view body);

/// Flat-JSON renderings (flat so the loadgen client can read them back
/// with parse_json_object).
[[nodiscard]] std::string task_status_json(const engine::TaskStatus& status);
[[nodiscard]] std::string service_stats_json(const engine::ServiceStats& s);
/// GET /trace/<id> body: scalar fields (trace_id, task_id, state,
/// complete, spans, chain) plus per-span sN_* fields. Wall durations are
/// included here (diagnostic view) even though the JSONL export omits
/// them.
[[nodiscard]] std::string task_trace_json(const obs::TaskTrace& trace);
/// GET /alerts body: <sli>_value/_budget/_fast_burn/_slow_burn/_firing/
/// _samples per rule plus now_hours and firing_total.
[[nodiscard]] std::string slo_alerts_json(
    const std::vector<obs::SloState>& states, double now_hours);
/// GET /ratekeeper body: controller status (rate, limiting signal,
/// per-signal pressures, tick/decrease/recovery counts) plus one
/// bN_client/bN_tokens/bN_rate_per_hour/bN_weight/bN_throttled group per
/// resident bucket, name-sorted.
[[nodiscard]] std::string ratekeeper_status_json(
    const control::RatekeeperStatus& status,
    const control::TokenBucketTable& buckets);

/// Maps one parsed request to its response — the socket-free core of the
/// gateway. `registry` backs GET /metrics and may be null (404 then);
/// `slo` backs GET /alerts, `traces` GET /trace/<id>, and
/// `ratekeeper`+`buckets` GET /ratekeeper — all optional (404 when
/// absent) so pre-existing call sites keep working unchanged.
[[nodiscard]] HttpResponse route_gateway_request(
    const HttpRequest& request, engine::GatewayLink& link,
    obs::MetricsRegistry* registry, obs::SloMonitor* slo = nullptr,
    obs::TraceStore* traces = nullptr,
    const control::Ratekeeper* ratekeeper = nullptr,
    const control::TokenBucketTable* buckets = nullptr,
    const obs::FlightRecorder* flight = nullptr,
    obs::SamplingProfiler* profiler = nullptr,
    const storage::StorageManager* storage = nullptr);

struct GatewayConfig {
  HttpServerConfig http;
  /// Burn-rate monitor behind GET /alerts; submit latencies are observed
  /// into it per request. Borrowed, optional.
  obs::SloMonitor* slo = nullptr;
  /// Trace store behind GET /trace/<id>. Borrowed, optional; should be
  /// the same store the GatewayLink and engine write to.
  obs::TraceStore* traces = nullptr;
  /// Admission controller + bucket table behind GET /ratekeeper (the
  /// same objects the engine ticks and the link charges). Borrowed,
  /// optional.
  const control::Ratekeeper* ratekeeper = nullptr;
  const control::TokenBucketTable* buckets = nullptr;
  /// Flight recorder behind GET /debug/flight and /debug/threads.
  /// Borrowed, optional (404 when absent). To also heartbeat the HTTP
  /// workers, point `http.observer` at an obs::FlightServerObserver.
  const obs::FlightRecorder* flight = nullptr;
  /// Sampling profiler behind GET /debug/profile. Borrowed, optional
  /// (404 when absent); mutable because each request runs a session.
  obs::SamplingProfiler* profiler = nullptr;
  /// Durability layer behind GET /journal and GET /debug/storage (the
  /// same StorageManager the engine writes through). Borrowed, optional
  /// (404 when absent).
  const storage::StorageManager* storage = nullptr;
};

/// The running service: an HttpServer whose handler routes into `link`
/// and records per-route request metrics into `registry` (both borrowed;
/// must outlive the gateway). `trace` optionally retains submit spans.
class PlatformGateway {
 public:
  PlatformGateway(engine::GatewayLink& link, obs::MetricsRegistry* registry,
                  obs::TraceRing* trace, GatewayConfig config = {});

  PlatformGateway(const PlatformGateway&) = delete;
  PlatformGateway& operator=(const PlatformGateway&) = delete;

  [[nodiscard]] std::uint16_t port() const noexcept {
    return server_->port();
  }
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return server_->requests_served();
  }
  [[nodiscard]] std::uint64_t connections_shed() const noexcept {
    return server_->connections_shed();
  }

  /// Graceful, idempotent shutdown of the HTTP front end (the engine
  /// keeps serving whatever was already admitted).
  void stop() { server_->stop(); }

 private:
  HttpResponse handle(const HttpRequest& request);

  engine::GatewayLink& link_;
  obs::MetricsRegistry* registry_;
  obs::TraceRing* trace_;
  obs::SloMonitor* slo_;
  obs::TraceStore* traces_;
  const control::Ratekeeper* ratekeeper_;
  const control::TokenBucketTable* buckets_;
  const obs::FlightRecorder* flight_;
  obs::SamplingProfiler* profiler_;
  const storage::StorageManager* storage_;
  obs::Histogram* submit_seconds_ = nullptr;
  std::unique_ptr<HttpServer> server_;
};

}  // namespace mfcp::net
