#include "net/http_client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstring>

#include "net/http.hpp"

namespace mfcp::net {

namespace {

bool iequals(std::string_view a, std::string_view b) noexcept {
  if (a.size() != b.size()) {
    return false;
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

ClientResponse transport_error(std::string what) {
  ClientResponse r;
  r.error = std::move(what);
  return r;
}

}  // namespace

std::string_view ClientResponse::header(
    std::string_view name) const noexcept {
  for (const auto& [key, value] : headers) {
    if (iequals(key, name)) {
      return value;
    }
  }
  return {};
}

ClientResponse parse_response(std::string_view wire) {
  ClientResponse r;
  const std::size_t head_end = wire.find("\r\n\r\n");
  if (head_end == std::string_view::npos) {
    return transport_error("no response head");
  }
  const std::string_view head = wire.substr(0, head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view status_line =
      head.substr(0, std::min(line_end, head.size()));
  // "HTTP/1.1 200 OK"
  const std::size_t sp = status_line.find(' ');
  if (sp == std::string_view::npos) {
    return transport_error("malformed status line");
  }
  const std::string_view code = status_line.substr(sp + 1, 3);
  int status = 0;
  const auto [end, ec] =
      std::from_chars(code.data(), code.data() + code.size(), status);
  if (ec != std::errc{} || end != code.data() + code.size()) {
    return transport_error("malformed status code");
  }
  r.status = status;

  std::size_t pos = line_end == std::string_view::npos ? head.size()
                                                       : line_end + 2;
  while (pos < head.size()) {
    std::size_t next = head.find("\r\n", pos);
    const std::string_view h = head.substr(
        pos, next == std::string_view::npos ? head.size() - pos : next - pos);
    pos = next == std::string_view::npos ? head.size() : next + 2;
    const std::size_t colon = h.find(':');
    if (colon == std::string_view::npos) {
      continue;
    }
    std::string key(h.substr(0, colon));
    std::transform(key.begin(), key.end(), key.begin(), [](unsigned char c) {
      return static_cast<char>(std::tolower(c));
    });
    std::string_view value = h.substr(colon + 1);
    while (!value.empty() && (value.front() == ' ' || value.front() == '\t')) {
      value.remove_prefix(1);
    }
    r.headers.emplace_back(std::move(key), std::string(value));
  }
  r.body = std::string(wire.substr(head_end + 4));
  r.ok = true;
  return r;
}

ClientResponse http_call(const std::string& host, std::uint16_t port,
                         const std::string& method, const std::string& path,
                         const std::string& body, int timeout_ms) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return transport_error(std::string("socket: ") + std::strerror(errno));
  }
  timeval timeout{};
  timeout.tv_sec = timeout_ms / 1000;
  timeout.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return transport_error("bad host address");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd);
    return transport_error(std::string("connect: ") + std::strerror(err));
  }

  std::string request = method;
  request += ' ';
  request += path;
  request += " HTTP/1.1\r\nHost: ";
  request += host;
  request += "\r\nConnection: close\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Type: application/json\r\nContent-Length: ";
    request += std::to_string(body.size());
    request += "\r\n";
  }
  request += "\r\n";
  request += body;

  std::size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = ::send(fd, request.data() + sent,
                             request.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      const int err = errno;
      ::close(fd);
      return transport_error(std::string("send: ") + std::strerror(err));
    }
    sent += static_cast<std::size_t>(n);
  }

  std::string wire;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0) {
      const int err = errno;
      ::close(fd);
      return transport_error(std::string("recv: ") + std::strerror(err));
    }
    if (n == 0) {
      break;  // server closed after the full response
    }
    wire.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return parse_response(wire);
}

}  // namespace mfcp::net
