#include "net/gateway.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <optional>

#include "net/json.hpp"
#include "obs/build_info.hpp"
#include "obs/sinks.hpp"
#include "support/stopwatch.hpp"

namespace mfcp::net {
namespace {

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

std::string fmt_u64(std::uint64_t v) { return std::to_string(v); }

std::string lower(std::string_view v) {
  std::string out(v);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

std::optional<sim::TaskFamily> parse_family(std::string_view v) {
  const std::string s = lower(v);
  if (s == "cnn") return sim::TaskFamily::kCnn;
  if (s == "transformer") return sim::TaskFamily::kTransformer;
  if (s == "rnn") return sim::TaskFamily::kRnn;
  if (s == "mlp") return sim::TaskFamily::kMlp;
  return std::nullopt;
}

std::optional<sim::DatasetKind> parse_dataset(std::string_view v) {
  const std::string s = lower(v);
  if (s == "cifar-10" || s == "cifar10") return sim::DatasetKind::kCifar10;
  if (s == "imagenet") return sim::DatasetKind::kImageNet;
  if (s == "europarl") return sim::DatasetKind::kEuroparl;
  return std::nullopt;
}

/// Reads field `name` as an integer in [lo, hi] into `out`. Returns an
/// error message, or empty on success / absence (absence keeps `out`).
std::string read_int_field(const std::map<std::string, JsonValue>& fields,
                           const std::string& name, int lo, int hi,
                           int& out) {
  const auto it = fields.find(name);
  if (it == fields.end()) {
    return {};
  }
  if (it->second.kind != JsonValue::Kind::kNumber) {
    return name + " must be a number";
  }
  const double v = it->second.num;
  if (v != std::floor(v) || v < lo || v > hi) {
    return name + " must be an integer in [" + std::to_string(lo) + ", " +
           std::to_string(hi) + "]";
  }
  out = static_cast<int>(v);
  return {};
}

/// Route label for the request metrics: a small closed set so the metric
/// family stays bounded no matter what paths clients probe.
std::string_view route_label(const HttpRequest& request) {
  if (request.path == "/submit") return "/submit";
  if (request.path.rfind("/task/", 0) == 0) return "/task";
  if (request.path.rfind("/trace/", 0) == 0) return "/trace";
  if (request.path == "/alerts") return "/alerts";
  if (request.path == "/ratekeeper") return "/ratekeeper";
  if (request.path == "/stats") return "/stats";
  if (request.path == "/metrics") return "/metrics";
  if (request.path == "/healthz") return "/healthz";
  if (request.path == "/debug/flight" ||
      request.path.rfind("/debug/flight?", 0) == 0) {
    return "/debug/flight";
  }
  if (request.path == "/debug/threads") return "/debug/threads";
  if (request.path == "/debug/profile" ||
      request.path.rfind("/debug/profile?", 0) == 0) {
    return "/debug/profile";
  }
  if (request.path == "/debug/build") return "/debug/build";
  if (request.path == "/debug/storage") return "/debug/storage";
  if (request.path == "/journal" ||
      request.path.rfind("/journal?", 0) == 0) {
    return "/journal";
  }
  return "other";
}

std::optional<std::uint64_t> parse_task_id(std::string_view path) {
  constexpr std::string_view kPrefix = "/task/";
  if (path.size() <= kPrefix.size() || path.rfind(kPrefix, 0) != 0) {
    return std::nullopt;
  }
  std::uint64_t id = 0;
  for (const char c : path.substr(kPrefix.size())) {
    if (c < '0' || c > '9') {
      return std::nullopt;
    }
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return id;
}

HttpResponse error_json(int status, std::string_view message) {
  return json_response(
      status, "{\"error\":" + json_quote(message) + "}\n");
}

HttpResponse handle_submit(const HttpRequest& request,
                           engine::GatewayLink& link) {
  SubmitParse parsed = parse_submit_body(request.body);
  if (!parsed.ok) {
    return error_json(400, parsed.error);
  }
  const engine::SubmitTicket ticket =
      link.submit(parsed.task, parsed.deadline_hours, parsed.client);
  if (!ticket.accepted) {
    HttpResponse r = json_response(
        429, "{\"accepted\":false,\"retry_after_seconds\":" +
                 fmt_double(ticket.retry_after_seconds) +
                 ",\"pressure\":" + fmt_u64(ticket.pressure) +
                 ",\"throttled\":" +
                 (ticket.throttled ? "true" : "false") + "}\n");
    r.headers.emplace_back(
        "Retry-After",
        std::to_string(static_cast<long>(
            std::ceil(ticket.retry_after_seconds))));
    return r;
  }
  const std::string trace_hex = obs::format_trace_id(ticket.trace_id);
  HttpResponse r = json_response(
      200, "{\"accepted\":true,\"id\":" + fmt_u64(ticket.id) +
               ",\"pressure\":" + fmt_u64(ticket.pressure) +
               ",\"trace_id\":" + json_quote(trace_hex) +
               ",\"trace_sampled\":" +
               (ticket.trace_sampled ? "true" : "false") + "}\n");
  r.headers.emplace_back("X-Trace-Id", trace_hex);
  return r;
}

HttpResponse handle_task(const HttpRequest& request,
                         engine::GatewayLink& link) {
  const std::optional<std::uint64_t> id = parse_task_id(request.path);
  if (!id.has_value()) {
    return error_json(400, "task id must be a decimal integer");
  }
  const std::optional<engine::TaskStatus> status = link.status(*id);
  if (!status.has_value()) {
    if (link.table().was_evicted(*id)) {
      return error_json(410, "task status evicted (terminal, past cap)");
    }
    return error_json(404, "unknown task id");
  }
  return json_response(200, task_status_json(*status));
}

HttpResponse handle_trace(const HttpRequest& request,
                          obs::TraceStore* traces) {
  if (traces == nullptr) {
    return error_json(404, "tracing disabled");
  }
  constexpr std::string_view kPrefix = "/trace/";
  const std::optional<std::uint64_t> trace_id =
      obs::parse_trace_id(request.path.substr(kPrefix.size()));
  if (!trace_id.has_value()) {
    return error_json(400, "trace id must be 16 hex digits");
  }
  const std::optional<obs::TaskTrace> trace =
      traces->find_by_trace(*trace_id);
  if (!trace.has_value()) {
    return error_json(404, "unknown trace id (unsampled or evicted)");
  }
  return json_response(200, task_trace_json(*trace));
}

HttpResponse handle_alerts(engine::GatewayLink& link, obs::SloMonitor* slo) {
  if (slo == nullptr) {
    return error_json(404, "slo monitor disabled");
  }
  const double now = link.sim_time_hours();
  return json_response(200, slo_alerts_json(slo->evaluate(now), now));
}

HttpResponse handle_ratekeeper(const control::Ratekeeper* ratekeeper,
                               const control::TokenBucketTable* buckets) {
  if (ratekeeper == nullptr || buckets == nullptr) {
    return error_json(404, "ratekeeper disabled");
  }
  return json_response(
      200, ratekeeper_status_json(ratekeeper->status(), *buckets));
}

HttpResponse handle_debug_flight(const HttpRequest& request,
                                 const obs::FlightRecorder* flight) {
  if (flight == nullptr) {
    return error_json(404, "flight recorder disabled");
  }
  const obs::FlightQuery query = obs::parse_flight_query(request.path);
  if (!query.valid) {
    return error_json(
        400, "bad flight filter (thread=<n>&kind=<name>&limit=<n>)");
  }
  return json_response(200, obs::flight_events_json(*flight, query));
}

HttpResponse handle_debug_threads(const obs::FlightRecorder* flight) {
  if (flight == nullptr) {
    return error_json(404, "flight recorder disabled");
  }
  return json_response(200, obs::flight_threads_json(*flight));
}

HttpResponse handle_debug_profile(const HttpRequest& request,
                                  obs::SamplingProfiler* profiler) {
  // profile_route owns the whole status mapping (404 disabled, 400
  // malformed query, 409 concurrent session, 200 folded stacks); the
  // body is text/plain folded-flamegraph lines, not JSON.
  obs::ProfileRouteResult result =
      obs::profile_route(profiler, request.path);
  return text_response(result.status, std::move(result.body));
}

/// Parses "/journal?from=<h>&to=<h>" (either bound optional). Returns
/// false on a malformed pair or an unknown key.
bool parse_journal_query(std::string_view path, double& from, double& to) {
  const std::size_t q = path.find('?');
  if (q == std::string_view::npos) {
    return true;
  }
  std::string_view rest = path.substr(q + 1);
  while (!rest.empty()) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      return false;
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string value(pair.substr(eq + 1));
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (value.empty() || end != value.c_str() + value.size() ||
        !std::isfinite(v)) {
      return false;
    }
    if (key == "from") {
      from = v;
    } else if (key == "to") {
      to = v;
    } else {
      return false;
    }
  }
  return from <= to;
}

HttpResponse handle_journal(const HttpRequest& request,
                            const storage::StorageManager* storage) {
  if (storage == nullptr) {
    return text_response(404, "storage disabled\n");
  }
  double from = -std::numeric_limits<double>::max();
  double to = std::numeric_limits<double>::max();
  if (!parse_journal_query(request.path, from, to)) {
    return error_json(400, "bad journal window (from=<h>&to=<h>)");
  }
  const std::vector<std::string> lines = storage->journal().query(from, to);
  std::string body;
  for (const std::string& line : lines) {
    body += line;
    body += '\n';
  }
  HttpResponse r = text_response(200, std::move(body));
  r.content_type = "application/x-ndjson";
  return r;
}

HttpResponse handle_debug_storage(const storage::StorageManager* storage) {
  if (storage == nullptr) {
    return text_response(404, "storage disabled\n");
  }
  const storage::StorageStatus st = storage->status();
  std::string out = "{\"dir\":" + json_quote(storage->config().dir);
  out += ",\"wal_records\":" + fmt_u64(st.wal_records);
  out += ",\"wal_bytes\":" + fmt_u64(st.wal_bytes);
  out += ",\"wal_fsyncs\":" + fmt_u64(st.wal_fsyncs);
  out += ",\"wal_segments\":" + fmt_u64(st.wal_segments);
  out += ",\"wal_last_seq\":" + fmt_u64(st.wal_last_seq);
  out += ",\"recovered_tasks\":" + fmt_u64(st.recovered_tasks);
  out += ",\"recovered_terminal\":" + fmt_u64(st.recovered_terminal);
  out += ",\"truncated_bytes\":" + fmt_u64(st.truncated_bytes);
  out += ",\"checkpoints\":" + fmt_u64(st.checkpoints);
  out += ",\"checkpoint_generation\":" + fmt_u64(st.checkpoint_generation);
  out += ",\"chunks\":" + fmt_u64(st.chunks);
  out += ",\"chunk_records\":" + fmt_u64(st.chunk_records);
  out += ",\"chunk_bytes\":" + fmt_u64(st.chunk_bytes);
  out += ",\"chunks_evicted\":" + fmt_u64(st.chunks_evicted);
  out += "}\n";
  return json_response(200, std::move(out));
}

HttpResponse handle_debug_build() {
  return json_response(200, obs::build_info_json());
}

}  // namespace

SubmitParse parse_submit_body(std::string_view body) {
  SubmitParse out;
  const auto fields = parse_json_object(body);
  if (!fields.has_value()) {
    out.error = "body must be a flat JSON object";
    return out;
  }
  for (const auto& [key, value] : *fields) {
    if (key != "family" && key != "dataset" && key != "depth" &&
        key != "width" && key != "batch_size" &&
        key != "dataset_fraction" && key != "deadline_hours" &&
        key != "client") {
      out.error = "unknown field: " + key;
      return out;
    }
    (void)value;
  }

  const auto family_it = fields->find("family");
  if (family_it == fields->end() ||
      family_it->second.kind != JsonValue::Kind::kString) {
    out.error = "family is required (cnn|transformer|rnn|mlp)";
    return out;
  }
  const auto family = parse_family(family_it->second.str);
  if (!family.has_value()) {
    out.error = "unknown family: " + family_it->second.str;
    return out;
  }
  out.task.family = *family;

  if (const auto it = fields->find("dataset"); it != fields->end()) {
    if (it->second.kind != JsonValue::Kind::kString) {
      out.error = "dataset must be a string";
      return out;
    }
    const auto dataset = parse_dataset(it->second.str);
    if (!dataset.has_value()) {
      out.error = "unknown dataset: " + it->second.str;
      return out;
    }
    out.task.dataset = *dataset;
  }

  if (std::string err =
          read_int_field(*fields, "depth", 1, 512, out.task.depth);
      !err.empty()) {
    out.error = std::move(err);
    return out;
  }
  if (std::string err =
          read_int_field(*fields, "width", 1, 65536, out.task.width);
      !err.empty()) {
    out.error = std::move(err);
    return out;
  }
  if (std::string err = read_int_field(*fields, "batch_size", 1, 65536,
                                       out.task.batch_size);
      !err.empty()) {
    out.error = std::move(err);
    return out;
  }
  if (const auto it = fields->find("dataset_fraction");
      it != fields->end()) {
    if (it->second.kind != JsonValue::Kind::kNumber ||
        !(it->second.num > 0.0) || it->second.num > 1.0) {
      out.error = "dataset_fraction must be a number in (0, 1]";
      return out;
    }
    out.task.dataset_fraction = it->second.num;
  }
  if (const auto it = fields->find("deadline_hours"); it != fields->end()) {
    if (it->second.kind != JsonValue::Kind::kNumber ||
        !(it->second.num > 0.0) || !std::isfinite(it->second.num)) {
      out.error = "deadline_hours must be a positive number";
      return out;
    }
    out.deadline_hours = it->second.num;
  }
  if (const auto it = fields->find("client"); it != fields->end()) {
    if (it->second.kind != JsonValue::Kind::kString ||
        it->second.str.empty() || it->second.str.size() > 64) {
      out.error = "client must be a string of 1..64 characters";
      return out;
    }
    for (const char c : it->second.str) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                      c == '-';
      if (!ok) {
        out.error = "client may only contain [A-Za-z0-9._-]";
        return out;
      }
    }
    out.client = it->second.str;
  }
  out.ok = true;
  return out;
}

std::string task_status_json(const engine::TaskStatus& status) {
  std::string out = "{\"id\":" + fmt_u64(status.id) + ",\"state\":" +
                    json_quote(engine::to_string(status.state)) +
                    ",\"submit_hours\":" + fmt_double(status.submit_hours);
  const bool matched = status.state == engine::TaskState::kMatched ||
                       status.state == engine::TaskState::kDispatched;
  if (matched) {
    out += ",\"cluster\":" +
           fmt_u64(static_cast<std::uint64_t>(status.cluster)) +
           ",\"cluster_name\":" + json_quote(status.cluster_name) +
           ",\"predicted_hours\":" + fmt_double(status.predicted_hours) +
           ",\"round\":" + fmt_u64(status.round);
  }
  if (status.state == engine::TaskState::kDispatched) {
    out += ",\"realized_hours\":" + fmt_double(status.realized_hours);
    out += ",\"succeeded\":";
    out += status.succeeded ? "true" : "false";
  }
  out += "}\n";
  return out;
}

std::string service_stats_json(const engine::ServiceStats& s) {
  std::string out = "{";
  out += "\"draining\":";
  out += s.draining ? "true" : "false";
  out += ",\"inbox_depth\":" + fmt_u64(s.inbox_depth);
  out += ",\"queue_depth\":" + fmt_u64(s.queue_depth);
  out += ",\"accepted_total\":" + fmt_u64(s.submitted);
  out += ",\"rejected_busy_total\":" + fmt_u64(s.rejected_busy);
  out += ",\"rejected_throttled_total\":" + fmt_u64(s.rejected_throttled);
  out += ",\"rounds\":" + fmt_u64(s.rounds);
  out += ",\"round_tasks_matched\":" + fmt_u64(s.tasks_matched);
  out += ",\"sim_time_hours\":" + fmt_double(s.sim_time_hours);
  out += ",\"last_round_close_hours\":" +
         fmt_double(s.last_round_close_hours);
  out += ",\"round_seconds_ewma\":" + fmt_double(s.round_seconds_ewma);
  out += ",\"cumulative_regret\":" + fmt_double(s.cumulative_regret);
  out += ",\"tasks_submitted\":" + fmt_u64(s.tasks.submitted);
  out += ",\"tasks_queued\":" + fmt_u64(s.tasks.queued);
  out += ",\"tasks_matched\":" + fmt_u64(s.tasks.matched);
  out += ",\"tasks_dispatched\":" + fmt_u64(s.tasks.dispatched);
  out += ",\"tasks_expired\":" + fmt_u64(s.tasks.expired);
  out += ",\"tasks_rejected\":" + fmt_u64(s.tasks.rejected);
  out += ",\"recovered_tasks\":" + fmt_u64(s.recovered_tasks);
  out += ",\"recovered_terminal\":" + fmt_u64(s.recovered_terminal);
  out += "}\n";
  return out;
}

std::string task_trace_json(const obs::TaskTrace& trace) {
  std::string out =
      "{\"trace_id\":" + json_quote(obs::format_trace_id(trace.trace_id)) +
      ",\"task_id\":" + fmt_u64(trace.task_id) +
      ",\"submit_hours\":" + fmt_double(trace.submit_hours) +
      ",\"state\":" +
      json_quote(trace.finished() ? trace.final_state : "in_flight");
  out += ",\"complete\":";
  out += trace.finished() ? "true" : "false";
  out += ",\"spans\":" + fmt_u64(trace.spans.size());
  out += ",\"chain\":" + json_quote(trace.chain());
  for (std::size_t i = 0; i < trace.spans.size(); ++i) {
    const obs::TaskSpan& s = trace.spans[i];
    const std::string p = ",\"s" + std::to_string(i) + "_";
    out += p + "name\":" + json_quote(s.name);
    out += p + "start_hours\":" + fmt_double(s.start_hours);
    out += p + "end_hours\":" + fmt_double(s.end_hours);
    if (s.duration_ns != 0) {
      out += p + "duration_ns\":" + fmt_u64(s.duration_ns);
    }
    if (s.value != 0.0) {
      out += p + "value\":" + fmt_double(s.value);
    }
    if (!s.detail.empty()) {
      out += p + "detail\":" + json_quote(s.detail);
    }
  }
  out += "}\n";
  return out;
}

std::string slo_alerts_json(const std::vector<obs::SloState>& states,
                            double now_hours) {
  std::uint64_t firing = 0;
  for (const obs::SloState& s : states) {
    firing += s.firing ? 1 : 0;
  }
  std::string out = "{\"now_hours\":" + fmt_double(now_hours) +
                    ",\"rules\":" + fmt_u64(states.size()) +
                    ",\"firing_total\":" + fmt_u64(firing);
  for (const obs::SloState& s : states) {
    out += ",\"" + s.sli + "_value\":" + fmt_double(s.value);
    out += ",\"" + s.sli + "_budget\":" + fmt_double(s.budget);
    out += ",\"" + s.sli + "_fast_burn\":" + fmt_double(s.fast_burn);
    out += ",\"" + s.sli + "_slow_burn\":" + fmt_double(s.slow_burn);
    out += ",\"" + s.sli + "_firing\":";
    out += s.firing ? "true" : "false";
    out += ",\"" + s.sli + "_samples\":" + fmt_u64(s.samples);
  }
  out += "}\n";
  return out;
}

std::string ratekeeper_status_json(const control::RatekeeperStatus& status,
                                   const control::TokenBucketTable& buckets) {
  const std::vector<control::BucketView> views = buckets.snapshot();
  std::string out = "{\"rate_per_hour\":" + fmt_double(status.rate_per_hour);
  out += ",\"limiting_signal\":" +
         json_quote(control::to_string(status.limiting));
  out += ",\"pressure\":" + fmt_double(status.pressure);
  out += ",\"queue_pressure\":" + fmt_double(status.queue_pressure);
  out += ",\"wait_pressure\":" + fmt_double(status.wait_pressure);
  out += ",\"expiry_pressure\":" + fmt_double(status.expiry_pressure);
  out += ",\"burn_pressure\":" + fmt_double(status.burn_pressure);
  out += ",\"admitted_rate_per_hour\":" +
         fmt_double(status.admitted_rate_per_hour);
  out += ",\"ticks\":" + fmt_u64(status.ticks);
  out += ",\"decreases\":" + fmt_u64(status.decreases);
  out += ",\"recoveries\":" + fmt_u64(status.recoveries);
  out += ",\"throttled_total\":" + fmt_u64(buckets.throttled_total());
  out += ",\"admitted_total\":" + fmt_u64(buckets.admitted_total());
  out += ",\"evicted_total\":" + fmt_u64(buckets.evicted_total());
  out += ",\"clients\":" + fmt_u64(views.size());
  for (std::size_t i = 0; i < views.size(); ++i) {
    const control::BucketView& v = views[i];
    const std::string p = ",\"b" + std::to_string(i) + "_";
    out += p + "client\":" + json_quote(v.client);
    out += p + "weight\":" + fmt_double(v.weight);
    out += p + "tokens\":" + fmt_double(v.tokens);
    out += p + "rate_per_hour\":" + fmt_double(v.rate_per_hour);
    out += p + "admitted\":" + fmt_u64(v.admitted);
    out += p + "throttled\":" + fmt_u64(v.throttled);
  }
  out += "}\n";
  return out;
}

HttpResponse route_gateway_request(const HttpRequest& request,
                                   engine::GatewayLink& link,
                                   obs::MetricsRegistry* registry,
                                   obs::SloMonitor* slo,
                                   obs::TraceStore* traces,
                                   const control::Ratekeeper* ratekeeper,
                                   const control::TokenBucketTable* buckets,
                                   const obs::FlightRecorder* flight,
                                   obs::SamplingProfiler* profiler,
                                   const storage::StorageManager* storage) {
  if (!request.valid) {
    return text_response(400, "bad request\n");
  }
  if (request.path == "/submit") {
    if (request.method != "POST") {
      HttpResponse r = text_response(405, "method not allowed\n");
      r.headers.emplace_back("Allow", "POST");
      return r;
    }
    return handle_submit(request, link);
  }
  if (request.method != "GET") {
    HttpResponse r = text_response(405, "method not allowed\n");
    r.headers.emplace_back("Allow", "GET");
    return r;
  }
  if (request.path.rfind("/task/", 0) == 0) {
    return handle_task(request, link);
  }
  if (request.path.rfind("/trace/", 0) == 0) {
    return handle_trace(request, traces);
  }
  if (request.path == "/alerts") {
    return handle_alerts(link, slo);
  }
  if (request.path == "/ratekeeper") {
    return handle_ratekeeper(ratekeeper, buckets);
  }
  if (request.path == "/debug/flight" ||
      request.path.rfind("/debug/flight?", 0) == 0) {
    return handle_debug_flight(request, flight);
  }
  if (request.path == "/debug/threads") {
    return handle_debug_threads(flight);
  }
  if (request.path == "/debug/profile" ||
      request.path.rfind("/debug/profile?", 0) == 0) {
    return handle_debug_profile(request, profiler);
  }
  if (request.path == "/debug/build") {
    return handle_debug_build();
  }
  if (request.path == "/debug/storage") {
    return handle_debug_storage(storage);
  }
  if (request.path == "/journal" ||
      request.path.rfind("/journal?", 0) == 0) {
    return handle_journal(request, storage);
  }
  if (request.path == "/stats") {
    return json_response(200, service_stats_json(link.stats()));
  }
  if (request.path == "/healthz") {
    return text_response(200, "ok\n");
  }
  if (request.path == "/metrics") {
    if (registry == nullptr) {
      return text_response(404, "no metrics registry\n");
    }
    HttpResponse r = text_response(200, obs::to_prometheus(
                                            registry->snapshot()));
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return r;
  }
  return text_response(404, "not found\n");
}

PlatformGateway::PlatformGateway(engine::GatewayLink& link,
                                 obs::MetricsRegistry* registry,
                                 obs::TraceRing* trace, GatewayConfig config)
    : link_(link),
      registry_(registry),
      trace_(trace),
      slo_(config.slo),
      traces_(config.traces),
      ratekeeper_(config.ratekeeper),
      buckets_(config.buckets),
      flight_(config.flight),
      profiler_(config.profiler),
      storage_(config.storage) {
  if (registry_ != nullptr) {
    submit_seconds_ = &registry_->histogram("mfcp_gateway_submit_seconds",
                                            obs::default_time_bounds());
    if (slo_ != nullptr) {
      slo_->bind_metrics(registry_);
    }
  }
  server_ = std::make_unique<HttpServer>(
      [this](const HttpRequest& request) { return handle(request); },
      config.http);
}

HttpResponse PlatformGateway::handle(const HttpRequest& request) {
  HttpResponse response;
  const bool is_submit = request.valid && request.path == "/submit" &&
                         request.method == "POST";
  if (is_submit) {
    const Stopwatch submit_watch;
    obs::ScopedSpan span(submit_seconds_, "gateway_submit", trace_);
    response = route_gateway_request(request, link_, registry_, slo_,
                                     traces_, ratekeeper_, buckets_, flight_,
                                     profiler_, storage_);
    span.stop();
    if (slo_ != nullptr) {
      slo_->observe_submit(link_.sim_time_hours(), submit_watch.seconds());
    }
  } else {
    response = route_gateway_request(request, link_, registry_, slo_,
                                     traces_, ratekeeper_, buckets_, flight_,
                                     profiler_, storage_);
  }
  if (registry_ != nullptr) {
    registry_
        ->counter("mfcp_gateway_requests_total{route=\"" +
                  std::string(route_label(request)) + "\",status=\"" +
                  std::to_string(response.status) + "\"}")
        .add(1);
  }
  return response;
}

}  // namespace mfcp::net
