// Minimal flat-JSON object parsing for the gateway's request bodies.
//
// The platform's own JSON output goes through obs::JsonlWriter; this is
// the read side, scoped to exactly what the gateway accepts: one object
// of scalar fields ({"family":"cnn","depth":8,...}). Nested containers
// are rejected — a task descriptor has no reason to carry them, and the
// restriction keeps the parser small enough to audit. Strings support
// the standard escapes (\" \\ \/ \b \f \n \r \t and \uXXXX for the
// Basic Multilingual Plane).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace mfcp::net {

struct JsonValue {
  enum class Kind : int { kString = 0, kNumber = 1, kBool = 2, kNull = 3 };
  Kind kind = Kind::kNull;
  std::string str;     // valid for kString
  double num = 0.0;    // valid for kNumber
  bool boolean = false;  // valid for kBool
};

/// Parses a flat JSON object into field -> value. nullopt on malformed
/// input, trailing garbage, duplicate keys, or nested arrays/objects.
[[nodiscard]] std::optional<std::map<std::string, JsonValue>>
parse_json_object(std::string_view text);

/// Escapes `v` for embedding in a JSON string literal (quotes included).
[[nodiscard]] std::string json_quote(std::string_view v);

}  // namespace mfcp::net
