#include "obs/span.hpp"

#include "obs/sinks.hpp"
#include "support/check.hpp"

namespace mfcp::obs {

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  MFCP_CHECK(capacity_ > 0, "trace ring capacity must be positive");
  ring_.reserve(capacity_);
}

void TraceRing::record(const SpanRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(record);
    return;
  }
  ring_[next_] = record;
  next_ = (next_ + 1) % capacity_;
}

std::vector<SpanRecord> TraceRing::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanRecord> out;
  out.reserve(ring_.size());
  // Oldest first: the ring rotates at `next_` once full.
  for (std::size_t k = 0; k < ring_.size(); ++k) {
    out.push_back(ring_[(next_ + k) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRing::recorded() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

std::size_t TraceRing::drain_to(JsonlWriter& out) {
  std::vector<SpanRecord> spans;
  {
    // Take and empty the window in one critical section (no span recorded
    // concurrently can fall between the copy and the clear). The lifetime
    // `recorded_` counter deliberately survives the drain.
    std::lock_guard<std::mutex> lock(mutex_);
    spans.reserve(ring_.size());
    for (std::size_t k = 0; k < ring_.size(); ++k) {
      spans.push_back(ring_[(next_ + k) % ring_.size()]);
    }
    ring_.clear();
    next_ = 0;
  }
  for (const SpanRecord& s : spans) {
    out.field("span", std::string_view(s.name))
        .field("start_ns", s.start_ns)
        .field("duration_ns", s.duration_ns)
        .field("thread", static_cast<std::uint64_t>(s.thread));
    out.end_record();
  }
  return spans.size();
}

void TraceRing::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

void ScopedSpan::stop() noexcept {
  if (done_ || (hist_ == nullptr && ring_ == nullptr)) {
    done_ = true;
    return;
  }
  done_ = true;
  const Clock::time_point end = Clock::now();
  const auto ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start_);
  if (hist_ != nullptr) {
    hist_->observe(static_cast<double>(ns.count()) * 1e-9);
  }
  if (ring_ != nullptr) {
    SpanRecord rec;
    rec.name = name_;
    rec.start_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start_.time_since_epoch())
            .count());
    rec.duration_ns = static_cast<std::uint64_t>(ns.count());
    rec.thread = static_cast<std::uint32_t>(shard_index());
    ring_->record(rec);
  }
}

}  // namespace mfcp::obs
