#include "obs/http_exporter.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "obs/sinks.hpp"
#include "support/check.hpp"
#include "support/log.hpp"

namespace mfcp::obs {

namespace {

std::string status_line(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.1 200 OK\r\n";
    case 404:
      return "HTTP/1.1 404 Not Found\r\n";
    case 405:
      return "HTTP/1.1 405 Method Not Allowed\r\n";
    default:
      return "HTTP/1.1 500 Internal Server Error\r\n";
  }
}

std::string make_response(int code, std::string_view content_type,
                          std::string_view body,
                          std::string_view extra_header = {}) {
  std::string out = status_line(code);
  out += "Content-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n";
  out += extra_header;
  out += "\r\n";
  out += body;
  return out;
}

}  // namespace

HttpExporter::Request HttpExporter::parse_request_line(std::string_view line) {
  // Trim the trailing CR of a CRLF-terminated request line.
  if (!line.empty() && line.back() == '\r') {
    line.remove_suffix(1);
  }
  Request req;
  const auto first = line.find(' ');
  if (first == std::string_view::npos || first == 0) {
    return req;
  }
  const auto second = line.find(' ', first + 1);
  if (second == std::string_view::npos || second == first + 1) {
    return req;
  }
  // Anything after the second space must be a nonempty HTTP version; more
  // spaces mean a malformed line.
  const std::string_view version = line.substr(second + 1);
  if (version.empty() || version.find(' ') != std::string_view::npos) {
    return req;
  }
  req.method = std::string(line.substr(0, first));
  req.path = std::string(line.substr(first + 1, second - first - 1));
  req.valid = true;
  return req;
}

std::string HttpExporter::respond(const Request& request,
                                  const SnapshotFn& snapshot) {
  if (!request.valid) {
    return make_response(404, "text/plain; charset=utf-8", "bad request\n");
  }
  if (request.method != "GET") {
    return make_response(405, "text/plain; charset=utf-8",
                         "method not allowed\n", "Allow: GET\r\n");
  }
  if (request.path == "/metrics") {
    return make_response(
        200, "text/plain; version=0.0.4; charset=utf-8",
        to_prometheus(snapshot ? snapshot() : RegistrySnapshot{}));
  }
  if (request.path == "/healthz") {
    return make_response(200, "text/plain; charset=utf-8", "ok\n");
  }
  return make_response(404, "text/plain; charset=utf-8", "not found\n");
}

HttpExporter::HttpExporter(SnapshotFn snapshot, HttpExporterConfig config)
    : snapshot_(std::move(snapshot)), config_(std::move(config)) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MFCP_CHECK(listen_fd_ >= 0, "http exporter: socket() failed");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  MFCP_CHECK(::inet_pton(AF_INET, config_.bind_address.c_str(),
                         &addr.sin_addr) == 1,
             "http exporter: bad bind address");
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, config_.listen_backlog) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    MFCP_CHECK(false, std::string("http exporter: bind/listen failed: ") +
                          std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);
  thread_ = std::thread([this] { serve(); });
}

HttpExporter::~HttpExporter() { stop(); }

void HttpExporter::stop() {
  if (stopping_.exchange(true)) {
    if (thread_.joinable()) {
      thread_.join();
    }
    return;
  }
  if (listen_fd_ >= 0) {
    // Unblocks the accept loop (Linux: pending accept returns EINVAL).
    ::shutdown(listen_fd_, SHUT_RDWR);
  }
  if (thread_.joinable()) {
    thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void HttpExporter::serve() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (stopping_.load(std::memory_order_relaxed)) {
        return;
      }
      if (errno == EINTR) {
        continue;
      }
      MFCP_LOG(kWarn) << "http exporter: accept failed: "
                      << std::strerror(errno);
      return;
    }
    timeval timeout{};
    timeout.tv_sec = config_.receive_timeout_ms / 1000;
    timeout.tv_usec = (config_.receive_timeout_ms % 1000) * 1000;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));

    // Read until the end of the request head (or a modest cap — the
    // request line is all we route on).
    std::string head;
    char buf[1024];
    while (head.find("\r\n\r\n") == std::string::npos &&
           head.size() < 8192) {
      const ssize_t n = ::recv(client, buf, sizeof(buf), 0);
      if (n <= 0) {
        break;
      }
      head.append(buf, static_cast<std::size_t>(n));
    }
    const auto line_end = head.find('\n');
    const Request req = parse_request_line(
        line_end == std::string::npos ? std::string_view(head)
                                      : std::string_view(head).substr(
                                            0, line_end));
    const std::string response = respond(req, snapshot_);
    std::size_t sent = 0;
    while (sent < response.size()) {
      const ssize_t n = ::send(client, response.data() + sent,
                               response.size() - sent, MSG_NOSIGNAL);
      if (n <= 0) {
        break;
      }
      sent += static_cast<std::size_t>(n);
    }
    ::close(client);
    requests_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace mfcp::obs
