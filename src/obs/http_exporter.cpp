#include "obs/http_exporter.hpp"

#include "net/http.hpp"
#include "obs/build_info.hpp"
#include "obs/sinks.hpp"

namespace mfcp::obs {

namespace {

/// The exporter's whole route table, socket-free. Shared by the live
/// server handler and the static respond() below (which passes a null
/// recorder, so its pre-flight response bytes are unchanged).
net::HttpResponse route(const std::string& method, const std::string& path,
                        const HttpExporter::SnapshotFn& snapshot,
                        const FlightRecorder* flight,
                        SamplingProfiler* profiler) {
  if (method != "GET") {
    net::HttpResponse r = net::text_response(405, "method not allowed\n");
    r.headers.emplace_back("Allow", "GET");
    return r;
  }
  if (path == "/metrics") {
    net::HttpResponse r = net::text_response(
        200, to_prometheus(snapshot ? snapshot() : RegistrySnapshot{}));
    r.content_type = "text/plain; version=0.0.4; charset=utf-8";
    return r;
  }
  if (path == "/healthz") {
    return net::text_response(200, "ok\n");
  }
  if (flight != nullptr &&
      (path == "/debug/flight" ||
       path.rfind("/debug/flight?", 0) == 0)) {
    const FlightQuery query = parse_flight_query(path);
    if (!query.valid) {
      return net::text_response(400, "bad flight filter\n");
    }
    net::HttpResponse r =
        net::text_response(200, flight_events_json(*flight, query));
    r.content_type = "application/json";
    return r;
  }
  if (flight != nullptr && path == "/debug/threads") {
    net::HttpResponse r =
        net::text_response(200, flight_threads_json(*flight));
    r.content_type = "application/json";
    return r;
  }
  if (profiler != nullptr &&
      (path == "/debug/profile" ||
       path.rfind("/debug/profile?", 0) == 0)) {
    // Blocks this worker for the session duration by design: the other
    // worker keeps serving scrapes, and concurrent profile requests are
    // refused with 409 inside profile_route.
    ProfileRouteResult result = profile_route(profiler, path);
    return net::text_response(result.status, std::move(result.body));
  }
  if (path == "/debug/build") {
    net::HttpResponse r = net::text_response(200, build_info_json());
    r.content_type = "application/json";
    return r;
  }
  return net::text_response(404, "not found\n");
}

}  // namespace

HttpExporter::Request HttpExporter::parse_request_line(
    std::string_view line) {
  const net::HttpRequest parsed = net::parse_request_head(line);
  Request req;
  if (!parsed.valid) {
    return req;
  }
  req.method = parsed.method;
  req.path = parsed.path;
  req.valid = true;
  return req;
}

std::string HttpExporter::respond(const Request& request,
                                  const SnapshotFn& snapshot) {
  if (!request.valid) {
    // Pre-rebase behavior, kept: a line that does not parse is a 404.
    return net::serialize_response(
        net::text_response(404, "bad request\n"));
  }
  return net::serialize_response(
      route(request.method, request.path, snapshot, nullptr, nullptr));
}

HttpExporter::HttpExporter(SnapshotFn snapshot, HttpExporterConfig config)
    : snapshot_(std::move(snapshot)),
      flight_(config.flight),
      profiler_(config.profiler) {
  net::HttpServerConfig server_config;
  server_config.bind_address = std::move(config.bind_address);
  server_config.port = config.port;
  server_config.listen_backlog = config.listen_backlog;
  server_config.receive_timeout_ms = config.receive_timeout_ms;
  server_config.worker_threads = config.worker_threads;
  server_config.observer = config.observer;
  server_ = std::make_unique<net::HttpServer>(
      [this](const net::HttpRequest& request) {
        return route(request.method, request.path, snapshot_, flight_,
                     profiler_);
      },
      server_config);
}

HttpExporter::~HttpExporter() { stop(); }

}  // namespace mfcp::obs
