#ifndef _GNU_SOURCE
#define _GNU_SOURCE  // dladdr, SIGEV_THREAD_ID plumbing
#endif

#include "obs/profiler.hpp"

#include <dlfcn.h>
#include <execinfo.h>
#include <signal.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "support/check.hpp"

// glibc spells the SIGEV_THREAD_ID target field through a union member;
// musl and older headers may omit the convenience macro.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif

namespace mfcp::obs {

namespace {

constexpr std::string_view kStageNames[kEngineStageCount] = {
    "none", "embed", "predict", "match", "attribute", "dispatch",
};

/// The kernel clockid for one thread's scheduler CPU clock
/// (MAKE_THREAD_CPUCLOCK(tid, CPUCLOCK_SCHED)): unlike a pthread_t from
/// pthread_getcpuclockid, a raw tid can never dangle into freed pthread
/// state — timer_create on an exited thread just fails cleanly.
clockid_t thread_cpu_clockid(pid_t tid) noexcept {
  return static_cast<clockid_t>(
      (~static_cast<unsigned int>(tid) << 3) | 6u);
}

std::uint64_t thread_cpu_ns() noexcept {
  struct timespec ts;
  if (::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
    return 0;
  }
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 8;
  while (p < n) {
    p <<= 1;
  }
  return p;
}

// --------------------------------------------------- stage TLS + clock --
//
// The stage marker is process-global TLS (not per-profiler): the engine
// tags stages unconditionally, and whichever profiler samples a thread
// reads the same marker. The exact-CPU accounting epoch is nonzero only
// while some session is active, so idle-armed StageScope cost is one
// relaxed load plus two TLS stores.

thread_local EngineStage t_stage = EngineStage::kNone;
thread_local std::uint64_t t_stage_since = 0;  // thread CPU ns
thread_local std::uint32_t t_stage_epoch = 0;

std::atomic<std::uint32_t> g_stage_epoch{0};
std::atomic<std::uint32_t> g_stage_epoch_counter{0};
std::atomic<std::uint64_t> g_stage_ns[kEngineStageCount] = {};

/// Flushes the CPU time the calling thread spent since its previous
/// transition into `closing`'s bucket, then restarts the TLS clock. The
/// first transition a thread makes inside a new session epoch only
/// seeds the clock (the elapsed time belongs to no session).
void stage_clock_transition(std::uint32_t epoch,
                            EngineStage closing) noexcept {
  const std::uint64_t now = thread_cpu_ns();
  if (t_stage_epoch == epoch && now > t_stage_since) {
    g_stage_ns[static_cast<std::size_t>(closing)].fetch_add(
        now - t_stage_since, std::memory_order_relaxed);
  }
  t_stage_epoch = epoch;
  t_stage_since = now;
}

}  // namespace

std::string_view to_string(EngineStage stage) noexcept {
  const auto ordinal = static_cast<std::size_t>(stage);
  if (ordinal >= kEngineStageCount) {
    return "unknown";
  }
  return kStageNames[ordinal];
}

EngineStage current_stage() noexcept { return t_stage; }

StageScope::StageScope(EngineStage stage) noexcept : previous_(t_stage) {
  const std::uint32_t epoch = g_stage_epoch.load(std::memory_order_relaxed);
  if (epoch != 0) {
    stage_clock_transition(epoch, previous_);
  }
  t_stage = stage;
}

StageScope::~StageScope() { close(); }

void StageScope::close() noexcept {
  if (closed_) {
    return;
  }
  closed_ = true;
  const std::uint32_t epoch = g_stage_epoch.load(std::memory_order_relaxed);
  if (epoch != 0) {
    stage_clock_transition(epoch, t_stage);
  }
  t_stage = previous_;
}

// ------------------------------------------------------------ SampleRing --

SampleRing::SampleRing(std::size_t capacity)
    : mask_(round_up_pow2(capacity) - 1),
      slots_(std::make_unique<Slot[]>(mask_ + 1)) {}

void SampleRing::record(EngineStage stage, std::uint16_t thread,
                        const void* const* pcs, std::size_t depth) noexcept {
  if (depth > kMaxSampleFrames) {
    depth = kMaxSampleFrames;
  }
  const std::uint64_t seq = head_.load(std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(seq - 1) & mask_];
  // Per-slot seqlock write side (same as FlightRing::record): invalidate,
  // fence, payload, publish — all plain atomic stores, so this is safe
  // inside the SIGPROF handler.
  slot.word[0].store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.word[1].store(static_cast<std::uint64_t>(depth) |
                         (static_cast<std::uint64_t>(stage) << 8) |
                         (static_cast<std::uint64_t>(thread) << 16),
                     std::memory_order_relaxed);
  for (std::size_t i = 0; i < depth; ++i) {
    slot.word[2 + i].store(reinterpret_cast<std::uint64_t>(pcs[i]),
                           std::memory_order_relaxed);
  }
  slot.word[0].store(seq, std::memory_order_release);
  head_.store(seq, std::memory_order_release);
}

std::vector<ProfileSample> SampleRing::snapshot() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  if (h == 0) {
    return {};
  }
  const std::uint64_t cap = capacity();
  const std::uint64_t lo = h > cap ? h - cap + 1 : 1;
  std::vector<ProfileSample> out;
  out.reserve(static_cast<std::size_t>(h - lo + 1));
  for (std::uint64_t seq = lo; seq <= h; ++seq) {
    const Slot& slot = slots_[(seq - 1) & mask_];
    if (slot.word[0].load(std::memory_order_acquire) != seq) {
      continue;  // overwritten (or mid-write) since we sampled head
    }
    const std::uint64_t packed = slot.word[1].load(std::memory_order_relaxed);
    const std::size_t depth =
        std::min<std::size_t>(packed & 0xFF, kMaxSampleFrames);
    ProfileSample sample;
    sample.pcs.resize(depth);
    for (std::size_t i = 0; i < depth; ++i) {
      sample.pcs[i] = reinterpret_cast<const void*>(
          slot.word[2 + i].load(std::memory_order_relaxed));
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.word[0].load(std::memory_order_relaxed) != seq) {
      continue;  // torn by a concurrent overwrite; drop
    }
    sample.seq = seq;
    sample.thread = static_cast<std::uint16_t>((packed >> 16) & 0xFFFF);
    const std::size_t stage = (packed >> 8) & 0xFF;
    sample.stage = stage < kEngineStageCount
                       ? static_cast<EngineStage>(stage)
                       : EngineStage::kNone;
    out.push_back(std::move(sample));
  }
  return out;
}

void SampleRing::reset() noexcept {
  for (std::size_t i = 0; i <= mask_; ++i) {
    slots_[i].word[0].store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_release);
}

// ------------------------------------------------- registration + signal --

struct ProfilerThreadEntry {
  pid_t tid = 0;
  std::uint16_t ordinal = 0;
  char name[32] = {};
  SampleRing* ring = nullptr;
  std::atomic<std::uint64_t>* samples = nullptr;    // profiler counters
  std::atomic<std::uint64_t>* truncated = nullptr;
  std::atomic<bool> active{false};  // registered, thread still alive
  std::atomic<bool> armed{false};   // current session samples this entry
  timer_t timer{};
  bool timer_created = false;
};

namespace {

/// Thread -> entry binding, keyed on the profiler's process-unique
/// serial (mirrors obs/flight's TlsRing: a successor profiler at a
/// recycled address must never inherit a stale binding).
struct TlsProfilerBinding {
  std::uint64_t owner_serial = 0;  // 0 = unbound
  ProfilerThreadEntry* entry = nullptr;
};
thread_local TlsProfilerBinding t_binding;

std::atomic<std::uint64_t> g_profiler_serial{0};

/// SIGPROF handler; runs on the sampled thread. Async-signal-safe by
/// construction: backtrace(3) (warmed up at profiler construction so
/// its one-time libgcc initialisation never happens here), TLS reads,
/// and the ring's atomic stores. errno is preserved for the
/// interrupted code.
void sigprof_handler(int /*sig*/, siginfo_t* info, void* /*ucontext*/) {
  if (info == nullptr || info->si_code != SI_TIMER) {
    return;  // not one of our timers (e.g. a stray kill -PROF)
  }
  auto* entry = static_cast<ProfilerThreadEntry*>(info->si_value.sival_ptr);
  if (entry == nullptr || !entry->armed.load(std::memory_order_relaxed)) {
    return;  // late delivery after stop()/unregister
  }
  const int saved_errno = errno;
  // Two leading frames are signal plumbing (this handler + the kernel
  // restorer trampoline); skip them so stacks root at interrupted code.
  constexpr std::size_t kSkip = 2;
  void* pcs[kMaxSampleFrames + kSkip + 1];
  const int n = ::backtrace(pcs, kMaxSampleFrames + kSkip + 1);
  const std::size_t total = n > 0 ? static_cast<std::size_t>(n) : 0;
  const std::size_t skip = std::min(kSkip, total);
  const std::size_t depth = total - skip;
  if (depth > 0) {
    entry->ring->record(t_stage, entry->ordinal, pcs + skip, depth);
    entry->samples->fetch_add(1, std::memory_order_relaxed);
    if (depth > kMaxSampleFrames) {
      entry->truncated->fetch_add(1, std::memory_order_relaxed);
    }
  }
  errno = saved_errno;
}

void install_sigprof_handler_once() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    struct sigaction action;
    std::memset(&action, 0, sizeof(action));
    action.sa_sigaction = sigprof_handler;
    sigemptyset(&action.sa_mask);
    action.sa_flags = SA_SIGINFO | SA_RESTART;
    ::sigaction(SIGPROF, &action, nullptr);
  });
}

std::string sanitize_frame(const char* text) {
  std::string out(text);
  for (char& c : out) {
    // The folded format splits frames on ';' and the trailing count on
    // the last space; mangled names contain neither, but be safe.
    if (c == ';' || c == ' ' || c == '\n' || c == '\t') {
      c = '_';
    }
  }
  return out;
}

std::string hex_offset(std::uintptr_t value) {
  char buf[2 + 16 + 1];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(value));
  return buf;
}

/// dladdr-based frame name: the (mangled) symbol when one is exported,
/// else module+offset, else the raw address. Mangled names keep the
/// folded grammar valid and every flamegraph renderer demangles them.
std::string symbolize_pc(const void* pc) {
  Dl_info info;
  std::memset(&info, 0, sizeof(info));
  if (::dladdr(pc, &info) != 0) {
    if (info.dli_sname != nullptr && info.dli_sname[0] != '\0') {
      return sanitize_frame(info.dli_sname);
    }
    if (info.dli_fname != nullptr && info.dli_fbase != nullptr) {
      const char* base = std::strrchr(info.dli_fname, '/');
      std::string module = base != nullptr ? base + 1 : info.dli_fname;
      return sanitize_frame(module.c_str()) + "+" +
             hex_offset(reinterpret_cast<std::uintptr_t>(pc) -
                        reinterpret_cast<std::uintptr_t>(info.dli_fbase));
    }
  }
  return hex_offset(reinterpret_cast<std::uintptr_t>(pc));
}

}  // namespace

// ------------------------------------------------------ SamplingProfiler --

SamplingProfiler::SamplingProfiler(ProfilerConfig config)
    : config_(config),
      serial_(g_profiler_serial.fetch_add(1, std::memory_order_relaxed) + 1) {
  MFCP_CHECK(config_.max_threads > 0 && config_.max_threads <= 0xFFFF,
             "profiler: max_threads out of range");
  MFCP_CHECK(config_.ring_capacity > 0,
             "profiler: ring capacity must be > 0");
  rings_.reserve(config_.max_threads);
  for (std::size_t i = 0; i < config_.max_threads; ++i) {
    rings_.push_back(std::make_unique<SampleRing>(config_.ring_capacity));
  }
  install_sigprof_handler_once();
  // Warm up backtrace: its first call may dlopen/allocate inside libgcc,
  // which must never happen inside the signal handler.
  void* warmup[4];
  ::backtrace(warmup, 4);
}

SamplingProfiler::~SamplingProfiler() { stop(); }

bool SamplingProfiler::register_current_thread(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (t_binding.owner_serial == serial_ && t_binding.entry != nullptr) {
    t_binding.entry->active.store(true, std::memory_order_relaxed);
    return true;  // already registered; keep the original ring + name
  }
  t_binding.owner_serial = serial_;
  t_binding.entry = nullptr;
  const std::size_t ordinal = entries_.size();
  if (ordinal >= config_.max_threads) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  auto entry = std::make_unique<ProfilerThreadEntry>();
  entry->tid = static_cast<pid_t>(::syscall(SYS_gettid));
  entry->ordinal = static_cast<std::uint16_t>(ordinal);
  const std::size_t n = std::min(name.size(), sizeof(entry->name) - 1);
  std::memcpy(entry->name, name.data(), n);
  entry->name[n] = '\0';
  entry->ring = rings_[ordinal].get();
  entry->samples = &samples_;
  entry->truncated = &truncated_;
  entry->active.store(true, std::memory_order_relaxed);
  t_binding.entry = entry.get();
  entries_.push_back(std::move(entry));
  // Threads registering mid-session join at the *next* session: arming a
  // timer here would sample a partial window and complicate teardown.
  return true;
}

void SamplingProfiler::unregister_current_thread() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (t_binding.owner_serial != serial_ || t_binding.entry == nullptr) {
    return;
  }
  ProfilerThreadEntry* entry = t_binding.entry;
  entry->active.store(false, std::memory_order_relaxed);
  if (entry->timer_created) {
    entry->armed.store(false, std::memory_order_relaxed);
    ::timer_delete(entry->timer);
    entry->timer_created = false;
  }
  t_binding.entry = nullptr;
  t_binding.owner_serial = 0;
}

bool SamplingProfiler::start(double hz) {
  if (!(hz > 0.0) || hz > 1000.0) {
    return false;
  }
  bool expected = false;
  if (!session_active_.compare_exchange_strong(expected, true,
                                               std::memory_order_acq_rel)) {
    return false;  // one session at a time (HTTP route answers 409)
  }
  std::lock_guard<std::mutex> lock(mutex_);
  session_hz_ = hz;
  for (auto& ring : rings_) {
    ring->reset();
  }
  for (auto& ns : g_stage_ns) {
    ns.store(0, std::memory_order_relaxed);
  }
  // A fresh nonzero epoch turns the exact stage clock on; threads seed
  // their TLS clock lazily at their first transition inside it.
  const std::uint32_t epoch =
      g_stage_epoch_counter.fetch_add(1, std::memory_order_relaxed) + 1;
  g_stage_epoch.store(epoch == 0 ? 1 : epoch, std::memory_order_relaxed);

  const double period_s = 1.0 / hz;
  struct itimerspec spec;
  spec.it_interval.tv_sec = static_cast<time_t>(period_s);
  spec.it_interval.tv_nsec =
      static_cast<long>((period_s - std::floor(period_s)) * 1e9);
  if (spec.it_interval.tv_sec == 0 && spec.it_interval.tv_nsec == 0) {
    spec.it_interval.tv_nsec = 1;
  }
  spec.it_value = spec.it_interval;
  for (auto& entry : entries_) {
    if (!entry->active.load(std::memory_order_relaxed)) {
      continue;
    }
    struct sigevent sev;
    std::memset(&sev, 0, sizeof(sev));
    sev.sigev_notify = SIGEV_THREAD_ID;
    sev.sigev_signo = SIGPROF;
    sev.sigev_value.sival_ptr = entry.get();
    sev.sigev_notify_thread_id = entry->tid;
    if (::timer_create(thread_cpu_clockid(entry->tid), &sev,
                       &entry->timer) != 0) {
      // The thread exited without unregistering; skip it this session.
      entry->active.store(false, std::memory_order_relaxed);
      continue;
    }
    entry->timer_created = true;
    entry->armed.store(true, std::memory_order_release);
    ::timer_settime(entry->timer, 0, &spec, nullptr);
  }
  sessions_.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void SamplingProfiler::stop() {
  if (!session_active_.load(std::memory_order_acquire)) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& entry : entries_) {
    if (entry->timer_created) {
      entry->armed.store(false, std::memory_order_relaxed);
      ::timer_delete(entry->timer);
      entry->timer_created = false;
    }
  }
  g_stage_epoch.store(0, std::memory_order_relaxed);
  for (std::size_t s = 0; s < kEngineStageCount; ++s) {
    stage_ns_[s] = g_stage_ns[s].load(std::memory_order_relaxed);
  }
  session_active_.store(false, std::memory_order_release);
}

bool SamplingProfiler::session_active() const noexcept {
  return session_active_.load(std::memory_order_acquire);
}

std::optional<std::string> SamplingProfiler::collect_folded(double seconds,
                                                            double hz) {
  if (!start(hz)) {
    return std::nullopt;
  }
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  stop();
  return folded();
}

std::string SamplingProfiler::folded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::unordered_map<const void*, std::string> symbols;
  const auto symbol = [&symbols](const void* pc) -> const std::string& {
    auto it = symbols.find(pc);
    if (it == symbols.end()) {
      it = symbols.emplace(pc, symbolize_pc(pc)).first;
    }
    return it->second;
  };
  std::map<std::string, std::uint64_t> counts;
  for (const auto& entry : entries_) {
    for (const ProfileSample& sample : entry->ring->snapshot()) {
      std::string key = sanitize_frame(entry->name);
      key += ";stage:";
      key += to_string(sample.stage);
      // backtrace order is innermost-first; folded wants root..leaf.
      for (std::size_t i = sample.pcs.size(); i-- > 0;) {
        key += ';';
        const char* frame_pc = static_cast<const char*>(sample.pcs[i]);
        // Non-leaf frames hold return addresses: step back one byte so
        // the call site, not the instruction after it, is symbolized.
        key += symbol(i == 0 ? frame_pc : frame_pc - 1);
      }
      ++counts[key];
    }
  }
  // Exact stage anchors: every engine stage is present in every session's
  // output, in sample-equivalents at the session frequency (floored at
  // one), even when the stage is too fast for sampling to catch.
  if (sessions_.load(std::memory_order_relaxed) > 0 && session_hz_ > 0.0) {
    for (std::size_t s = 1; s < kEngineStageCount; ++s) {
      const double equivalents =
          static_cast<double>(stage_ns_[s]) * session_hz_ * 1e-9;
      counts[std::string("[stage_totals];") +
             std::string(to_string(static_cast<EngineStage>(s)))] =
          std::max<std::uint64_t>(
              1, static_cast<std::uint64_t>(std::llround(equivalents)));
    }
  }
  std::string out;
  for (const auto& [stack, count] : counts) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

std::uint64_t SamplingProfiler::samples_total() const noexcept {
  return samples_.load(std::memory_order_relaxed);
}

std::uint64_t SamplingProfiler::truncated_total() const noexcept {
  return truncated_.load(std::memory_order_relaxed);
}

std::uint64_t SamplingProfiler::sessions_total() const noexcept {
  return sessions_.load(std::memory_order_relaxed);
}

std::uint64_t SamplingProfiler::dropped_registrations() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

std::size_t SamplingProfiler::threads_registered() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

// ------------------------------------------------------ default profiler --

namespace {
std::atomic<SamplingProfiler*> g_default_profiler{nullptr};
std::atomic<std::uint64_t> g_default_profiler_generation{0};
}  // namespace

SamplingProfiler* default_profiler() noexcept {
  return g_default_profiler.load(std::memory_order_acquire);
}

std::uint64_t default_profiler_generation() noexcept {
  return g_default_profiler_generation.load(std::memory_order_acquire);
}

void set_default_profiler(SamplingProfiler* profiler) noexcept {
  // Generation first, same reasoning as set_default_flight: consumers
  // that cache the resolved pointer re-resolve on a stale generation
  // even when a successor reuses the address.
  g_default_profiler_generation.fetch_add(1, std::memory_order_acq_rel);
  g_default_profiler.store(profiler, std::memory_order_release);
}

// ------------------------------------------------------------ HTTP route --

ProfileQuery parse_profile_query(std::string_view path) {
  ProfileQuery query;
  const std::size_t qpos = path.find('?');
  if (qpos == std::string_view::npos) {
    return query;
  }
  std::string_view rest = path.substr(qpos + 1);
  while (!rest.empty() && query.valid) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      query.valid = false;
      break;
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string value(pair.substr(eq + 1));
    if (value.empty()) {
      query.valid = false;
      break;
    }
    char* end = nullptr;
    const double number = std::strtod(value.c_str(), &end);
    const bool numeric = end != value.c_str() && *end == '\0' &&
                         std::isfinite(number);
    if (key == "seconds") {
      if (!numeric || number <= 0.0 || number > 30.0) {
        query.valid = false;
      } else {
        query.seconds = number;
      }
    } else if (key == "hz") {
      if (!numeric || number < 1.0 || number > 1000.0) {
        query.valid = false;
      } else {
        query.hz = number;
      }
    } else {
      query.valid = false;
    }
  }
  return query;
}

ProfileRouteResult profile_route(SamplingProfiler* profiler,
                                 std::string_view path) {
  if (profiler == nullptr) {
    return {404, "profiler disabled (run with --profile)\n"};
  }
  const ProfileQuery query = parse_profile_query(path);
  if (!query.valid) {
    return {400,
            "malformed profile query: seconds in (0,30], hz in [1,1000]\n"};
  }
  std::optional<std::string> folded =
      profiler->collect_folded(query.seconds, query.hz);
  if (!folded.has_value()) {
    return {409, "a profile session is already running\n"};
  }
  return {200, std::move(*folded)};
}

}  // namespace mfcp::obs
