#include "obs/slo.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "obs/sinks.hpp"
#include "support/check.hpp"

namespace mfcp::obs {

namespace {

std::string slo_gauge_name(const char* family, const char* sli,
                           const char* window = nullptr) {
  std::string name = family;
  name += "{sli=\"";
  name += sli;
  name += '"';
  if (window != nullptr) {
    name += ",window=\"";
    name += window;
    name += '"';
  }
  name += '}';
  return name;
}

void bind_series(MetricsRegistry* registry, const char* sli, Gauge** value,
                 Gauge** budget, Gauge** fast, Gauge** slow, Gauge** firing) {
  if (registry == nullptr) {
    *value = *budget = *fast = *slow = *firing = nullptr;
    return;
  }
  *value = &registry->gauge(slo_gauge_name("mfcp_slo_value", sli));
  *budget = &registry->gauge(slo_gauge_name("mfcp_slo_budget", sli));
  *fast = &registry->gauge(slo_gauge_name("mfcp_slo_burn_rate", sli, "fast"));
  *slow = &registry->gauge(slo_gauge_name("mfcp_slo_burn_rate", sli, "slow"));
  *firing = &registry->gauge(slo_gauge_name("mfcp_slo_firing", sli));
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r')) {
    s.remove_prefix(1);
  }
  while (!s.empty() &&
         (s.back() == ' ' || s.back() == '\t' || s.back() == '\r')) {
    s.remove_suffix(1);
  }
  return s;
}

}  // namespace

std::optional<SloConfig> parse_slo_config(std::string_view text,
                                          std::string* error) {
  const auto fail = [error](std::string message) -> std::optional<SloConfig> {
    if (error != nullptr) {
      *error = std::move(message);
    }
    return std::nullopt;
  };
  SloConfig config;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) {
      continue;
    }
    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      return fail("line " + std::to_string(line_no) +
                  ": expected key=value");
    }
    const std::string key(trim(line.substr(0, eq)));
    const std::string raw(trim(line.substr(eq + 1)));
    char* end = nullptr;
    const double value = std::strtod(raw.c_str(), &end);
    if (raw.empty() || end != raw.c_str() + raw.size() ||
        !std::isfinite(value)) {
      return fail("line " + std::to_string(line_no) + ": " + key +
                  " needs a finite number, got \"" + raw + "\"");
    }
    if (key == "fast_window_hours") {
      config.fast_window_hours = value;
    } else if (key == "slow_window_hours") {
      config.slow_window_hours = value;
    } else if (key == "burn_threshold") {
      config.burn_threshold = value;
    } else if (key == "submit_latency_target_seconds") {
      config.submit_latency_target_seconds = value;
    } else if (key == "submit_latency_objective") {
      config.submit_latency_objective = value;
    } else if (key == "dispatch_success_objective") {
      config.dispatch_success_objective = value;
    } else if (key == "expiry_objective") {
      config.expiry_objective = value;
    } else if (key == "regret_gap_budget") {
      config.regret_gap_budget = value;
    } else {
      return fail("line " + std::to_string(line_no) + ": unknown key \"" +
                  key + "\"");
    }
  }
  // The same invariants SloMonitor's constructor enforces, reported as a
  // parse error instead of a contract failure.
  if (!(config.fast_window_hours > 0.0 &&
        config.slow_window_hours >= config.fast_window_hours)) {
    return fail("SLO windows must be positive with slow >= fast");
  }
  if (!(config.burn_threshold > 0.0)) {
    return fail("burn_threshold must be positive");
  }
  if (!(config.regret_gap_budget > 0.0)) {
    return fail("regret_gap_budget must be positive");
  }
  for (const double objective :
       {config.submit_latency_objective, config.dispatch_success_objective,
        config.expiry_objective}) {
    if (!(objective >= 0.0 && objective < 1.0)) {
      return fail("objectives must lie in [0, 1)");
    }
  }
  return config;
}

std::optional<SloConfig> load_slo_config(const std::string& path,
                                         std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) {
      *error = "cannot open SLO config: " + path;
    }
    return std::nullopt;
  }
  std::ostringstream text;
  text << in.rdbuf();
  return parse_slo_config(text.str(), error);
}

SloMonitor::SloMonitor(SloConfig config) : config_(config) {
  MFCP_CHECK(config_.fast_window_hours > 0.0 &&
                 config_.slow_window_hours >= config_.fast_window_hours,
             "SLO windows must be positive with slow >= fast");
  MFCP_CHECK(config_.burn_threshold > 0.0, "burn threshold must be positive");
  MFCP_CHECK(config_.regret_gap_budget > 0.0,
             "regret gap budget must be positive");
}

void SloMonitor::bind_metrics(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mutex_);
  bind_series(registry, "submit_latency", &submit_.value_gauge,
              &submit_.budget_gauge, &submit_.fast_gauge, &submit_.slow_gauge,
              &submit_.firing_gauge);
  bind_series(registry, "dispatch_success", &dispatch_.value_gauge,
              &dispatch_.budget_gauge, &dispatch_.fast_gauge,
              &dispatch_.slow_gauge, &dispatch_.firing_gauge);
  bind_series(registry, "expiry", &expiry_.value_gauge,
              &expiry_.budget_gauge, &expiry_.fast_gauge, &expiry_.slow_gauge,
              &expiry_.firing_gauge);
  bind_series(registry, "regret_gap", &regret_.value_gauge,
              &regret_.budget_gauge, &regret_.fast_gauge, &regret_.slow_gauge,
              &regret_.firing_gauge);
}

void SloMonitor::observe_submit(double now_hours, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Sample s;
  s.t = now_hours;
  s.total = 1;
  s.bad = seconds > config_.submit_latency_target_seconds ? 1 : 0;
  submit_.samples.push_back(s);
}

void SloMonitor::observe_round(double now_hours, std::uint64_t batch_size,
                               std::uint64_t dispatch_ok, std::uint64_t expired,
                               double regret_gap, bool gap_valid) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (batch_size > 0) {
    Sample d;
    d.t = now_hours;
    d.total = batch_size;
    d.bad = batch_size - std::min(dispatch_ok, batch_size);
    dispatch_.samples.push_back(d);
  }
  if (batch_size > 0 || expired > 0) {
    // Admission outcome: every admitted task either reaches a batch or
    // expires in queue; the window sees both sides of the ratio.
    Sample e;
    e.t = now_hours;
    e.total = batch_size + expired;
    e.bad = expired;
    expiry_.samples.push_back(e);
  }
  if (gap_valid) {
    Sample r;
    r.t = now_hours;
    r.total = 1;
    r.value = regret_gap;
    regret_.samples.push_back(r);
  }
}

void SloMonitor::prune_locked(Series& series, double now_hours) {
  const double cutoff = now_hours - config_.slow_window_hours;
  while (!series.samples.empty() && series.samples.front().t <= cutoff) {
    series.samples.pop_front();
  }
}

SloState SloMonitor::evaluate_ratio_locked(Series& series, const char* name,
                                           double budget, double now_hours) {
  prune_locked(series, now_hours);
  const double fast_cutoff = now_hours - config_.fast_window_hours;
  std::uint64_t slow_total = 0, slow_bad = 0, fast_total = 0, fast_bad = 0;
  for (const Sample& s : series.samples) {
    slow_total += s.total;
    slow_bad += s.bad;
    if (s.t > fast_cutoff) {
      fast_total += s.total;
      fast_bad += s.bad;
    }
  }
  const auto frac = [](std::uint64_t bad, std::uint64_t total) {
    return total == 0 ? 0.0
                      : static_cast<double>(bad) / static_cast<double>(total);
  };
  SloState state;
  state.sli = name;
  state.budget = budget;
  state.samples = slow_total;
  state.value = frac(slow_bad, slow_total);
  state.fast_burn = budget > 0.0 ? frac(fast_bad, fast_total) / budget : 0.0;
  state.slow_burn = budget > 0.0 ? state.value / budget : 0.0;
  state.firing = state.fast_burn > config_.burn_threshold &&
                 state.slow_burn > config_.burn_threshold;
  return state;
}

SloState SloMonitor::evaluate_mean_locked(Series& series, const char* name,
                                          double budget, double now_hours) {
  prune_locked(series, now_hours);
  const double fast_cutoff = now_hours - config_.fast_window_hours;
  double slow_sum = 0.0, fast_sum = 0.0;
  std::uint64_t slow_n = 0, fast_n = 0;
  for (const Sample& s : series.samples) {
    slow_sum += s.value;
    ++slow_n;
    if (s.t > fast_cutoff) {
      fast_sum += s.value;
      ++fast_n;
    }
  }
  const auto mean = [](double sum, std::uint64_t n) {
    return n == 0 ? 0.0 : sum / static_cast<double>(n);
  };
  SloState state;
  state.sli = name;
  state.budget = budget;
  state.samples = slow_n;
  state.value = mean(slow_sum, slow_n);
  // Negative gaps (deployed chain beating the reference) do not burn.
  state.fast_burn = std::max(0.0, mean(fast_sum, fast_n)) / budget;
  state.slow_burn = std::max(0.0, state.value) / budget;
  state.firing = state.fast_burn > config_.burn_threshold &&
                 state.slow_burn > config_.burn_threshold;
  return state;
}

std::vector<SloState> SloMonitor::evaluate(double now_hours) {
  std::unique_lock<std::mutex> lock(mutex_);
  std::vector<SloState> states;
  states.push_back(evaluate_ratio_locked(
      submit_, "submit_latency", 1.0 - config_.submit_latency_objective,
      now_hours));
  states.push_back(evaluate_ratio_locked(
      dispatch_, "dispatch_success", 1.0 - config_.dispatch_success_objective,
      now_hours));
  states.push_back(evaluate_ratio_locked(
      expiry_, "expiry", 1.0 - config_.expiry_objective, now_hours));
  states.push_back(evaluate_mean_locked(regret_, "regret_gap",
                                        config_.regret_gap_budget, now_hours));
  Series* series[] = {&submit_, &dispatch_, &expiry_, &regret_};
  for (std::size_t i = 0; i < states.size(); ++i) {
    Series& s = *series[i];
    if (s.value_gauge != nullptr) {
      s.value_gauge->set(states[i].value);
      s.budget_gauge->set(states[i].budget);
      s.fast_gauge->set(states[i].fast_burn);
      s.slow_gauge->set(states[i].slow_burn);
      s.firing_gauge->set(states[i].firing ? 1.0 : 0.0);
    }
  }
  std::vector<AlertTransition> transitions;
  for (const SloState& state : states) {
    bool& previous = firing_state_[state.sli];  // default-inserts false
    if (state.firing == previous) {
      continue;
    }
    previous = state.firing;
    AlertTransition t;
    t.t_hours = now_hours;
    t.sli = state.sli;
    t.firing = state.firing;
    t.value = state.value;
    t.budget = state.budget;
    t.fast_burn = state.fast_burn;
    t.slow_burn = state.slow_burn;
    t.samples = state.samples;
    log_transition_locked(t);
    transitions.push_back(std::move(t));
  }
  AlertSink* sink = alert_sink_;
  lock.unlock();
  // Sink delivery happens outside the mutex: a sink only enqueues (see
  // AlertSink's contract), but even a misbehaving one must not hold the
  // monitor's observation paths hostage.
  if (sink != nullptr) {
    for (const AlertTransition& t : transitions) {
      sink->notify(t);
    }
  }
  return states;
}

void SloMonitor::log_transition_locked(const AlertTransition& t) {
  if (alert_log_ == nullptr) {
    return;
  }
  alert_log_->field("t_hours", t.t_hours)
      .field("sli", t.sli)
      .field("event", t.firing ? std::string_view("fire")
                               : std::string_view("resolve"))
      .field("value", t.value)
      .field("budget", t.budget)
      .field("fast_burn", t.fast_burn)
      .field("slow_burn", t.slow_burn)
      .field("samples", t.samples);
  alert_log_->end_record();
  alert_log_->flush();
}

void SloMonitor::report_transition(const AlertTransition& transition) {
  AlertSink* sink = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    log_transition_locked(transition);
    firing_state_[transition.sli] = transition.firing;
    sink = alert_sink_;
  }
  if (sink != nullptr) {
    sink->notify(transition);
  }
}

void SloMonitor::set_alert_log(JsonlWriter* log) {
  std::lock_guard<std::mutex> lock(mutex_);
  alert_log_ = log;
}

void SloMonitor::set_alert_sink(AlertSink* sink) {
  std::lock_guard<std::mutex> lock(mutex_);
  alert_sink_ = sink;
}

std::string slo_summary_table(const std::vector<SloState>& states) {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "  %-18s %10s %10s %10s %10s %7s %8s\n",
                "sli", "value", "budget", "fast_burn", "slow_burn", "firing",
                "samples");
  out += line;
  for (const SloState& s : states) {
    std::snprintf(line, sizeof(line),
                  "  %-18s %10.4f %10.4f %10.3f %10.3f %7s %8llu\n",
                  s.sli.c_str(), s.value, s.budget, s.fast_burn, s.slow_burn,
                  s.firing ? "FIRING" : "ok",
                  static_cast<unsigned long long>(s.samples));
    out += line;
  }
  return out;
}

bool tighten_latency_buckets(MetricsRegistry& registry, std::string_view name,
                             double target_seconds) {
  MFCP_CHECK(target_seconds > 0.0, "latency target must be positive");
  Histogram* hist = registry.find_histogram(name);
  if (hist == nullptr) {
    return false;
  }
  // Fine grid around the target: sub-target buckets resolve the good-side
  // quantiles, the >1x tail keeps the histogram useful during incidents.
  static constexpr double kScale[] = {0.125, 0.25, 0.5, 0.75, 1.0, 1.5,
                                      2.0,   3.0,  5.0, 8.0,  16.0, 32.0};
  std::vector<double> edges;
  edges.reserve(std::size(kScale));
  for (const double s : kScale) {
    edges.push_back(target_seconds * s);
  }
  hist->rebucket(edges);
  return true;
}

}  // namespace mfcp::obs
