// SLO monitor: rolling-window service-level indicators over the platform's
// existing telemetry, evaluated by multi-window burn-rate rules.
//
// Four SLIs, all on the simulated clock so evaluation is deterministic for
// seeded runs and meaningful in serve mode (where sim time tracks wall
// time through `sim_hours_per_second`):
//
//   submit_latency   — fraction of gateway submits slower than the target
//                      (wall seconds per request; the *decision* which
//                      side of the target a request fell on is what enters
//                      the window, not the raw latency).
//   dispatch_success — fraction of dispatched tasks whose first execution
//                      attempt failed.
//   expiry           — fraction of admitted tasks that expired in queue
//                      instead of reaching a batch.
//   regret_gap       — mean per-round attribution total (PR 3 terms)
//                      against an absolute per-task budget, in makespan
//                      units.
//
// Burn rate follows the SRE convention: burn = (bad fraction) / (error
// budget), so burn == 1.0 means "consuming budget exactly at the rate
// that exhausts it over the SLO period" and an *empty window burns
// nothing* (burn 0, not NaN — no traffic is not an outage). A rule fires
// only when BOTH the fast window (default 5 sim-minutes) and the slow
// window (default 1 sim-hour) exceed the threshold: the fast window gives
// detection latency, the slow window keeps a brief spike from paging.
//
// Exposed as mfcp_slo_* gauge families (value/budget/burn_rate/firing),
// the gateway's GET /alerts route, and end-of-run summary tables.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace mfcp::obs {

class JsonlWriter;

struct SloConfig {
  double fast_window_hours = 5.0 / 60.0;  // 5 simulated minutes
  double slow_window_hours = 1.0;         // 1 simulated hour
  /// Both windows must burn above this to fire (1.0 = exactly on budget).
  double burn_threshold = 2.0;

  /// Submit-latency SLI: a request is "bad" when slower than this.
  double submit_latency_target_seconds = 0.050;
  /// Objective: this fraction of submits must beat the target
  /// (error budget = 1 - objective).
  double submit_latency_objective = 0.99;

  /// Objective on first-attempt dispatch success.
  double dispatch_success_objective = 0.90;

  /// Objective on admitted tasks reaching a batch before their deadline.
  double expiry_objective = 0.95;

  /// Absolute budget on the mean per-round regret-attribution total
  /// (per-task makespan units). Burn = mean / budget.
  double regret_gap_budget = 0.5;
};

/// Parses a key=value SLO config (one pair per line, '#' comments, blank
/// lines ignored). Keys mirror the SloConfig field names; values are
/// decimal numbers. Unknown keys, unparsable values, and constraint
/// violations (the same ones SloMonitor's constructor enforces) return
/// nullopt with a human-readable message in `*error`.
[[nodiscard]] std::optional<SloConfig> parse_slo_config(
    std::string_view text, std::string* error);

/// parse_slo_config over a file's contents (the --slo-config flag).
[[nodiscard]] std::optional<SloConfig> load_slo_config(
    const std::string& path, std::string* error);

/// One alert-rule firing-state change, as delivered to alert sinks and
/// the JSONL alert log (identical field set, so every delivery channel
/// carries the same record).
struct AlertTransition {
  double t_hours = 0.0;
  std::string sli;
  bool firing = false;  // true = "fire", false = "resolve"
  double value = 0.0;
  double budget = 0.0;
  double fast_burn = 0.0;
  double slow_burn = 0.0;
  std::uint64_t samples = 0;
};

/// Push delivery channel for alert transitions (webhook sender, test
/// captures, ...). Implementations must be thread-safe and MUST NOT
/// block: notify() runs on the engine's evaluation path and on the flight
/// recorder's watchdog thread (enqueue and return; never do I/O inline).
class AlertSink {
 public:
  virtual ~AlertSink() = default;
  virtual void notify(const AlertTransition& transition) = 0;
};

/// One SLI's evaluated state.
struct SloState {
  std::string sli;
  double value = 0.0;      // slow-window bad fraction (or mean gap)
  double budget = 0.0;     // error budget (or gap budget)
  double fast_burn = 0.0;  // burn rate over the fast window
  double slow_burn = 0.0;  // burn rate over the slow window
  bool firing = false;
  std::uint64_t samples = 0;  // events inside the slow window
};

/// Thread-safe rolling-window SLO evaluator; see file comment. Feed it
/// from the gateway (observe_submit) and the engine round loop
/// (observe_round), then evaluate() after each round / on each /alerts
/// request. All observation methods are cheap (deque push under a mutex).
class SloMonitor {
 public:
  explicit SloMonitor(SloConfig config = {});

  /// Registers the mfcp_slo_* gauges; null detaches (evaluate() still
  /// returns states, it just stops exporting them).
  void bind_metrics(MetricsRegistry* registry);

  /// One gateway submit: wall latency of the request at sim time `now`.
  void observe_submit(double now_hours, double seconds);

  /// One engine round at sim time `now`: batch size, first-attempt
  /// successes, tasks expired since the previous round, and the round's
  /// regret-gap total (ignored unless `gap_valid`).
  void observe_round(double now_hours, std::uint64_t batch_size,
                     std::uint64_t dispatch_ok, std::uint64_t expired,
                     double regret_gap, bool gap_valid);

  /// Prunes both windows to `now`, computes burn rates, updates the
  /// gauges, and returns the per-SLI states (fixed order: submit_latency,
  /// dispatch_success, expiry, regret_gap).
  std::vector<SloState> evaluate(double now_hours);

  /// Append-only JSONL alert delivery: every evaluate() writes one record
  /// per rule whose firing state *changed* (event "fire"/"resolve") —
  /// transitions only, so a melting platform does not flood the log.
  /// Borrowed; null detaches. Flushed per transition so `tail -f` works.
  void set_alert_log(JsonlWriter* log);

  /// Push sink notified of the same transitions the alert log records
  /// (after the log write, outside the monitor's mutex). Borrowed; null
  /// detaches.
  void set_alert_sink(AlertSink* sink);

  /// Reports an externally-evaluated rule transition (e.g. the flight
  /// recorder's watchdog stall) through the same alert log + sink as the
  /// burn-rate rules, so every alert channel sees one uniform stream.
  void report_transition(const AlertTransition& transition);

  [[nodiscard]] const SloConfig& config() const noexcept { return config_; }

 private:
  // One windowed event batch: `bad` out of `total` events (ratio SLIs) or
  // `value` with weight `total` (the regret-gap SLI).
  struct Sample {
    double t = 0.0;
    std::uint64_t total = 0;
    std::uint64_t bad = 0;
    double value = 0.0;
  };
  struct Series {
    std::deque<Sample> samples;
    Gauge* value_gauge = nullptr;
    Gauge* budget_gauge = nullptr;
    Gauge* fast_gauge = nullptr;
    Gauge* slow_gauge = nullptr;
    Gauge* firing_gauge = nullptr;
  };

  void prune_locked(Series& series, double now_hours);
  SloState evaluate_ratio_locked(Series& series, const char* name,
                                 double budget, double now_hours);
  SloState evaluate_mean_locked(Series& series, const char* name,
                                double budget, double now_hours);

  SloConfig config_;
  mutable std::mutex mutex_;
  Series submit_;
  Series dispatch_;
  Series expiry_;
  Series regret_;
  void log_transition_locked(const AlertTransition& transition);

  JsonlWriter* alert_log_ = nullptr;          // guarded by mutex_
  AlertSink* alert_sink_ = nullptr;           // guarded by mutex_
  std::map<std::string, bool> firing_state_;  // per-SLI, for transitions
};

/// Fixed-width end-of-run table over evaluate()'s result (bench/example
/// summaries). One line per SLI plus a header.
[[nodiscard]] std::string slo_summary_table(const std::vector<SloState>& states);

/// Re-buckets the named latency histogram around `target_seconds` so
/// quantile estimates near the SLO target interpolate inside fine buckets
/// instead of a decade-wide default bucket. No-op (returns false) when the
/// histogram does not exist yet. Call at startup, after every component
/// that registers the histogram has done so and before traffic arrives —
/// rebucketing is not atomic against concurrent observes.
bool tighten_latency_buckets(MetricsRegistry& registry, std::string_view name,
                             double target_seconds);

}  // namespace mfcp::obs
