// In-process sampling CPU profiler with engine-stage attribution.
//
// Sampling model
//   Every registered thread gets a POSIX per-thread CPU-time timer
//   (timer_create on the Linux thread CPU clock, SIGEV_THREAD_ID) that
//   delivers SIGPROF to that thread at the session frequency. The
//   handler runs *on the sampled thread*, so it can read the TLS stage
//   marker and walk its own stack with backtrace(3); it writes the
//   program counters into the thread's preallocated seqlock sample ring
//   (same write discipline as obs/flight's event rings) and touches
//   nothing else — no allocation, no locks, errno saved and restored.
//   backtrace() is warmed up once at construction so its lazy libgcc
//   initialisation (which may allocate) happens outside any handler.
//
// Stage attribution
//   The engine brackets each round stage (embed / predict / match /
//   attribute / dispatch) with a StageScope alongside its existing
//   ScopedSpan; the scope is a plain thread_local store, so profiles
//   decompose along the same axis as mfcp_engine_stage_seconds. While a
//   session is active the scope transitions additionally accumulate
//   exact per-stage thread-CPU nanoseconds, which the folded output
//   renders as `[stage_totals];<stage> <n>` anchor lines (n in
//   sample-equivalents at the session frequency, floored at 1) — so
//   every stage is visible even when it is too fast for the sampling
//   frequency to catch. When no session is active a StageScope is two
//   TLS stores and one relaxed load: cheap enough to leave compiled in.
//
// Determinism
//   The profiler is write-only telemetry: nothing in the engine reads
//   it back, so the round journal stays byte-identical with the
//   profiler armed (CI runs the engine with --profile and cmp's the
//   journal against the ratekeeper baseline).
//
// Output
//   Collapsed-stack ("folded") text, one `frame;frame;... count` line
//   per distinct stack, directly consumable by flamegraph.pl /
//   inferno / speedscope. Symbolization (dladdr) happens at drain
//   time, off every hot path. Exposed via GET /debug/profile on the
//   gateway and metrics exporter, `exp_online_engine --profile`, and
//   validated by `tools/obs_selfcheck --profile`.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mfcp::obs {

/// Engine round stages, in round order. kNone marks code outside any
/// stage (queue pumping, HTTP work, pool idle). Part of the folded
/// output vocabulary — append only.
enum class EngineStage : std::uint8_t {
  kNone = 0,
  kEmbed = 1,
  kPredict = 2,
  kMatch = 3,
  kAttribute = 4,
  kDispatch = 5,
};
inline constexpr std::size_t kEngineStageCount = 6;

/// Stable lower-snake name ("embed", ...); "none" for kNone.
[[nodiscard]] std::string_view to_string(EngineStage stage) noexcept;

/// The calling thread's current stage (TLS; what SIGPROF samples read).
[[nodiscard]] EngineStage current_stage() noexcept;

/// RAII stage marker. Nests: restores the enclosing stage on exit, so a
/// helper that runs inside the match stage keeps the match tag unless
/// it scopes its own. Safe (and nearly free) when no profiler exists.
class StageScope {
 public:
  explicit StageScope(EngineStage stage) noexcept;
  ~StageScope();

  StageScope(const StageScope&) = delete;
  StageScope& operator=(const StageScope&) = delete;

  /// Restores the enclosing stage early (mirrors ScopedSpan::stop(), so
  /// the engine's linear stage sequence needs no nested blocks).
  /// Idempotent; the destructor is then a no-op.
  void close() noexcept;

 private:
  EngineStage previous_;
  bool closed_ = false;
};

/// One decoded stack sample.
struct ProfileSample {
  std::uint64_t seq = 0;       // per-thread, 1-based
  std::uint16_t thread = 0;    // profiler thread ordinal
  EngineStage stage = EngineStage::kNone;
  std::vector<const void*> pcs;  // innermost first (backtrace order)
};

/// Frames retained per sample (deep enough for the engine's call
/// chains; deeper stacks are truncated at the outermost end).
inline constexpr std::size_t kMaxSampleFrames = 30;

/// Single-writer ring of sample slots (public for tests; production
/// samples arrive through SamplingProfiler's signal handler). One slot
/// is 32 little-endian 64-bit words: seq, packed depth/stage/thread,
/// then up to kMaxSampleFrames program counters. The write side runs
/// inside a signal handler, so it is pure relaxed/release atomic
/// stores — the same per-slot seqlock as obs/flight's FlightRing.
class SampleRing {
 public:
  explicit SampleRing(std::size_t capacity);

  SampleRing(const SampleRing&) = delete;
  SampleRing& operator=(const SampleRing&) = delete;

  /// Records one stack (async-signal-safe: atomics only). `depth` is
  /// clamped to kMaxSampleFrames. Must only ever be called from one
  /// thread at a time (the owning thread's signal handler).
  void record(EngineStage stage, std::uint16_t thread,
              const void* const* pcs, std::size_t depth) noexcept;

  /// Samples ever written (== newest live sequence number).
  [[nodiscard]] std::uint64_t head() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Copies out the currently-valid window, oldest first, skipping
  /// slots the writer is overwriting mid-copy (seqlock recheck).
  [[nodiscard]] std::vector<ProfileSample> snapshot() const;

  /// Empties the ring. Only call while no writer can be sampling into
  /// it (i.e. between sessions).
  void reset() noexcept;

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> word[2 + kMaxSampleFrames];
  };

  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

struct ProfilerConfig {
  /// Samples retained per thread (rounded up to a power of two). 4096
  /// covers a 30 s session at ~130 Hz before the ring wraps.
  std::size_t ring_capacity = 4096;
  /// Threads that can register as sampling targets; later threads are
  /// counted into dropped_registrations() instead of aliasing a ring.
  std::size_t max_threads = 16;
};

/// Parsed ?seconds=&hz= query of the GET /debug/profile route.
struct ProfileQuery {
  double seconds = 2.0;  // (0, 30]
  double hz = 97.0;      // [1, 1000]; prime default avoids beat patterns
  bool valid = true;     // false on malformed/unknown parameters
};

/// Parses the query-string suffix of the debug-route path
/// ("/debug/profile" or "/debug/profile?seconds=2&hz=97"). Unknown
/// keys, non-numeric values, and out-of-range values flip `valid` so
/// the route can answer 400.
[[nodiscard]] ProfileQuery parse_profile_query(std::string_view path);

/// One registered sampling target (defined in profiler.cpp; namespace
/// scope so the SIGPROF handler, a free function, can dereference it).
struct ProfilerThreadEntry;

/// On-demand sampling profiler. Construction preallocates every sample
/// ring, installs the SIGPROF handler, and warms up backtrace(3);
/// arming it is otherwise free until a session starts. Threads opt in
/// via register_current_thread(); sessions (start/stop or the blocking
/// collect_folded()) create one CPU-time timer per registered thread.
/// One session at a time: concurrent starts are refused, which the
/// HTTP route surfaces as 409.
class SamplingProfiler {
 public:
  explicit SamplingProfiler(ProfilerConfig config = {});
  ~SamplingProfiler();

  SamplingProfiler(const SamplingProfiler&) = delete;
  SamplingProfiler& operator=(const SamplingProfiler&) = delete;

  /// Registers the calling thread as a sampling target under `name`
  /// (one folded-output root frame per thread). Idempotent per thread;
  /// re-registration under a new name keeps the original ring. Returns
  /// false (and counts a drop) past max_threads.
  bool register_current_thread(std::string_view name);

  /// Detaches the calling thread: a running or future session stops
  /// sampling it. Its already-recorded samples stay drainable. Call
  /// before thread exit so sessions never target a dead thread id.
  void unregister_current_thread();

  /// Starts a sampling session at `hz` samples per CPU-second per
  /// thread. Returns false when a session is already active or `hz` is
  /// out of (0, 1000]. Resets rings and stage totals.
  bool start(double hz);

  /// Stops the active session (deletes timers, freezes stage totals).
  /// No-op when idle.
  void stop();

  [[nodiscard]] bool session_active() const noexcept;

  /// Blocking convenience used by the HTTP route and the bench flag:
  /// start(hz), sleep `seconds` of wall time, stop(), return folded().
  /// nullopt when another session already holds the profiler.
  [[nodiscard]] std::optional<std::string> collect_folded(double seconds,
                                                          double hz);

  /// Drains every ring, symbolizes (dladdr), and renders collapsed
  /// stacks: `<thread>;stage:<stage>;<outer>;...;<inner> <count>`
  /// lines plus the five exact `[stage_totals];<stage> <n>` anchor
  /// lines (n = stage CPU ns x hz, in sample-equivalents, min 1).
  /// Lines are sorted so the output is stable for a given sample set.
  [[nodiscard]] std::string folded() const;

  [[nodiscard]] std::uint64_t samples_total() const noexcept;
  [[nodiscard]] std::uint64_t truncated_total() const noexcept;
  [[nodiscard]] std::uint64_t sessions_total() const noexcept;
  [[nodiscard]] std::uint64_t dropped_registrations() const noexcept;
  [[nodiscard]] std::size_t threads_registered() const noexcept;
  [[nodiscard]] const ProfilerConfig& config() const noexcept {
    return config_;
  }

 private:
  ProfilerConfig config_;
  /// Process-unique instance id; thread-local bindings are keyed on it
  /// so a profiler at a recycled address never inherits stale rings.
  std::uint64_t serial_;

  mutable std::mutex mutex_;  // registration table + session lifecycle
  std::vector<std::unique_ptr<ProfilerThreadEntry>> entries_;
  std::vector<std::unique_ptr<SampleRing>> rings_;  // fixed at construction

  std::atomic<bool> session_active_{false};
  double session_hz_ = 0.0;   // last session's frequency (for folded())
  std::atomic<std::uint64_t> sessions_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> samples_{0};    // handler-incremented
  std::atomic<std::uint64_t> truncated_{0};  // stacks deeper than the slot
  /// Exact per-stage CPU ns accumulated by StageScope transitions
  /// while a session is active; frozen at stop() for folded().
  std::uint64_t stage_ns_[kEngineStageCount] = {};
};

/// Process-wide default profiler (same idiom as default_flight): layers
/// not worth plumbing a pointer through (thread pool workers, HTTP
/// workers, the engine loop) register themselves here when set. Starts
/// null. Clear it (and quiesce registering threads) before destroying
/// the profiler it points to.
[[nodiscard]] SamplingProfiler* default_profiler() noexcept;
void set_default_profiler(SamplingProfiler* profiler) noexcept;
/// Bumped on every set_default_profiler(); long-lived loops that cache
/// the resolved pointer compare generations before reuse.
[[nodiscard]] std::uint64_t default_profiler_generation() noexcept;

/// Status + body of the GET /debug/profile route, shared by the
/// gateway and the metrics exporter: 404 when `profiler` is null, 400
/// on a malformed query, 409 when a session is already running, else
/// 200 with the folded profile as text/plain.
struct ProfileRouteResult {
  int status = 200;
  std::string body;
};
[[nodiscard]] ProfileRouteResult profile_route(SamplingProfiler* profiler,
                                               std::string_view path);

}  // namespace mfcp::obs
