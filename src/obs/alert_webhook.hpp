// Webhook alert delivery: an AlertSink that POSTs each fire/resolve
// transition as a flat JSON record to a configured HTTP endpoint.
//
// Delivery is fully decoupled from the caller: notify() renders the body
// and enqueues it on a bounded queue (drop-oldest-refused: when full the
// transition is counted into dropped_total and discarded — alerting must
// never apply backpressure to the engine). A dedicated sender thread
// drains the queue through net::http_call with a bounded timeout; non-2xx
// responses and transport errors count into failed_total and are not
// retried (the alert log JSONL remains the durable channel; the webhook
// is a best-effort pager).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>

#include "obs/slo.hpp"

namespace mfcp::obs {

class MetricsRegistry;
class Counter;

struct WebhookConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::string path = "/";
  /// Transitions queued but not yet sent beyond which notify() drops.
  std::size_t queue_capacity = 256;
  /// Per-delivery connect+send+receive budget.
  int timeout_ms = 2000;
};

/// Parses "http://host:port/path" (path optional, defaults to "/"). HTTPS
/// and hostless forms are rejected with a human-readable *error. Ports
/// must be explicit: alert endpoints on default port 80 are a smell in a
/// localhost-first deployment.
[[nodiscard]] std::optional<WebhookConfig> parse_webhook_url(
    std::string_view url, std::string* error);

/// Renders the JSON body one transition posts (shared with tests so the
/// wire contract is pinned in one place).
[[nodiscard]] std::string webhook_body(const AlertTransition& transition);

class WebhookSender : public AlertSink {
 public:
  explicit WebhookSender(WebhookConfig config);
  ~WebhookSender() override;  // stops and joins the sender thread

  WebhookSender(const WebhookSender&) = delete;
  WebhookSender& operator=(const WebhookSender&) = delete;

  /// Non-blocking enqueue; drops (and counts) when the queue is full.
  void notify(const AlertTransition& transition) override;

  /// Registers mfcp_alert_webhook_{delivered,failed,dropped}_total.
  void bind_metrics(MetricsRegistry* registry);

  /// Blocks until the queue is empty and no delivery is in flight, or the
  /// timeout elapses. Test/shutdown helper; returns false on timeout.
  bool flush(double timeout_seconds);

  [[nodiscard]] std::uint64_t delivered_total() const noexcept;
  [[nodiscard]] std::uint64_t failed_total() const noexcept;
  [[nodiscard]] std::uint64_t dropped_total() const noexcept;

 private:
  void sender_loop();

  WebhookConfig config_;
  mutable std::mutex mutex_;
  std::condition_variable wake_;   // sender: work or stop
  std::condition_variable drained_;  // flush(): queue empty + idle
  std::deque<std::string> queue_;  // pre-rendered JSON bodies
  bool in_flight_ = false;
  bool stop_ = false;

  std::atomic<std::uint64_t> delivered_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> dropped_{0};
  Counter* delivered_metric_ = nullptr;
  Counter* failed_metric_ = nullptr;
  Counter* dropped_metric_ = nullptr;

  std::thread sender_;
};

}  // namespace mfcp::obs
