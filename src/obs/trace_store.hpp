// Task-lifecycle tracing: one trace per sampled task, spanning the full
// submit → queue → batch → predict → match → dispatch → feedback chain
// across the gateway/engine boundary.
//
// Identity and sampling are deterministic so that the trace layer never
// perturbs the engine's decision stream and two seeded runs export
// byte-identical `.tasktraces` journals:
//   - mint_trace_id(task_id, salt) is a splitmix64-style hash of the task
//     id under a run-level salt — no RNG draw, no clock read.
//   - trace_sampled(trace_id, rate) re-hashes the trace id and compares
//     against rate * 2^64, so the sampled subset is a pure function of
//     (task id, salt, rate). The gateway and the engine both recompute it
//     locally; no per-task sampling state crosses the boundary.
//
// Spans carry two time disciplines. Simulated-time endpoints
// (start_hours/end_hours) are deterministic and are what the JSONL export
// writes; wall-clock duration_ns is measured only for sampled tasks and
// stays in memory / the HTTP view, mirroring how the round journal
// excludes wall-clock solve times (DESIGN.md §7).
//
// The store is bounded: past `capacity` traces, eviction walks from the
// oldest trace forward and removes the first *finished* one (falling back
// to the oldest outright when everything is still in flight), so a burst
// of live tasks cannot wipe the traces a smoke test is about to read.
#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace mfcp::obs {

class JsonlWriter;

/// Deterministic 64-bit trace id for a task (splitmix64 over id ^ salt).
/// Never returns 0 — 0 is the "no trace" sentinel.
[[nodiscard]] std::uint64_t mint_trace_id(std::uint64_t task_id,
                                          std::uint64_t salt) noexcept;

/// Deterministic sampling decision: true iff hash(trace_id) falls below
/// rate * 2^64. rate >= 1 always samples, rate <= 0 never does.
[[nodiscard]] bool trace_sampled(std::uint64_t trace_id, double rate) noexcept;

/// Lower-case 16-hex-digit rendering of a trace id (the wire format used
/// by the X-Trace-Id header and GET /trace/<id>).
[[nodiscard]] std::string format_trace_id(std::uint64_t trace_id);

/// Parses the 16-hex form back to an id. Returns nullopt on malformed
/// input (wrong length, non-hex) or the zero sentinel.
[[nodiscard]] std::optional<std::uint64_t> parse_trace_id(
    std::string_view text) noexcept;

/// Propagation context minted at admission (gateway submit or sampled
/// synthetic arrival). trace_id == 0 means "not sampled, record nothing".
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;  // span ordinal the next span nests under

  [[nodiscard]] bool sampled() const noexcept { return trace_id != 0; }
};

/// Mints the context for one task under the run's sampling policy.
[[nodiscard]] TraceContext make_trace_context(std::uint64_t task_id,
                                              std::uint64_t salt,
                                              double rate) noexcept;

/// One lifecycle stage of a traced task. Sim-time endpoints are
/// deterministic; duration_ns is wall clock (0 when not measured).
struct TaskSpan {
  std::string name;          // submit, queue_wait, batch, predict, ...
  double start_hours = 0.0;  // simulated time
  double end_hours = 0.0;
  std::uint64_t duration_ns = 0;  // wall clock; excluded from JSONL
  double value = 0.0;             // stage-specific (predicted hours, ...)
  std::string detail;             // stage-specific (cluster name, ok/failed)
};

/// Assembled trace of one task, spans in recording order.
struct TaskTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t task_id = 0;
  double submit_hours = 0.0;
  std::string final_state;  // empty while in flight
  std::vector<TaskSpan> spans;

  [[nodiscard]] bool finished() const noexcept { return !final_state.empty(); }
  /// ">"-joined span names, e.g. "submit>queue_wait>batch>...>feedback".
  [[nodiscard]] std::string chain() const;
};

/// Bounded, indexed, thread-safe collection of task traces. All methods
/// are no-ops returning false for tasks that were never begun (not
/// sampled) or already evicted, so call sites do not branch on sampling.
class TraceStore {
 public:
  explicit TraceStore(std::size_t capacity = 4096);

  /// Opens a trace for `task_id` (idempotent — a second begin for a live
  /// task id is ignored). Evicts per the policy above when full.
  bool begin(std::uint64_t task_id, std::uint64_t trace_id,
             double submit_hours);

  /// Appends a span to the task's trace. False when the task is untraced.
  bool append(std::uint64_t task_id, TaskSpan span);

  /// Marks the trace complete with its terminal state
  /// (dispatched/expired/rejected). The trace stays resident (and
  /// queryable) until evicted or drained.
  bool finish(std::uint64_t task_id, std::string_view final_state);

  [[nodiscard]] std::optional<TaskTrace> find_by_trace(
      std::uint64_t trace_id) const;
  [[nodiscard]] std::optional<TaskTrace> find_by_task(
      std::uint64_t task_id) const;

  /// All resident traces, oldest begin first.
  [[nodiscard]] std::vector<TaskTrace> snapshot() const;

  /// Writes every resident trace as one JSONL record (begin order), then
  /// clears the store. Only deterministic fields are written (sim-time
  /// endpoints; never duration_ns). A non-empty `label` leads each record
  /// as a "mode" field so two engine modes sharing task ids stay
  /// distinguishable in one file. Returns the number drained.
  std::size_t drain_to(JsonlWriter& out, std::string_view label = {});

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Lifetime counters (survive drain/eviction).
  [[nodiscard]] std::uint64_t begun() const;
  [[nodiscard]] std::uint64_t evicted() const;

 private:
  void evict_one_locked();

  std::size_t capacity_;
  mutable std::mutex mutex_;
  // Keyed by task id; order_ holds begin order for eviction + export.
  std::unordered_map<std::uint64_t, TaskTrace> traces_;
  std::unordered_map<std::uint64_t, std::uint64_t> by_trace_;  // trace→task
  std::deque<std::uint64_t> order_;                            // task ids
  std::uint64_t begun_ = 0;
  std::uint64_t evicted_ = 0;
};

}  // namespace mfcp::obs
