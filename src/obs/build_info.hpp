// Build provenance for the /debug/build route: every profile, bench
// JSON, and crash dump should be attributable to an exact binary. The
// values are baked in at compile time (git sha and build type by CMake,
// compiler and sanitizer flags by predefined macros), so the route
// works even when the binary runs far from its source checkout.
#pragma once

#include <string>
#include <string_view>

namespace mfcp::obs {

/// Abbreviated git commit the binary was configured from; "unknown"
/// when the source tree was not a git checkout at configure time.
[[nodiscard]] std::string_view build_git_sha() noexcept;

/// Compiler identification (the __VERSION__ the binary was built with).
[[nodiscard]] std::string_view build_compiler() noexcept;

/// CMake build type ("Release", "Debug", ...).
[[nodiscard]] std::string_view build_type() noexcept;

/// Comma-separated sanitizer list compiled into the binary ("none",
/// "address,undefined", ...). Detected from compiler-predefined macros.
[[nodiscard]] std::string_view build_sanitizers() noexcept;

/// JSON body of GET /debug/build, shared by the gateway and exporter.
[[nodiscard]] std::string build_info_json();

}  // namespace mfcp::obs
