#include "obs/alert_webhook.hpp"

#include <chrono>

#include "net/http_client.hpp"
#include "obs/metrics.hpp"
#include "obs/sinks.hpp"
#include "support/check.hpp"

namespace mfcp::obs {

std::optional<WebhookConfig> parse_webhook_url(std::string_view url,
                                               std::string* error) {
  const std::string_view scheme = "http://";
  if (url.substr(0, scheme.size()) != scheme) {
    if (error != nullptr) {
      *error = "webhook url must start with http:// (https is unsupported)";
    }
    return std::nullopt;
  }
  std::string_view rest = url.substr(scheme.size());
  const std::size_t slash = rest.find('/');
  const std::string_view authority =
      slash == std::string_view::npos ? rest : rest.substr(0, slash);
  const std::string_view path =
      slash == std::string_view::npos ? std::string_view("/")
                                      : rest.substr(slash);
  const std::size_t colon = authority.rfind(':');
  if (colon == std::string_view::npos || colon == 0 ||
      colon + 1 == authority.size()) {
    if (error != nullptr) {
      *error = "webhook url needs an explicit host:port";
    }
    return std::nullopt;
  }
  std::uint64_t port = 0;
  for (const char c : authority.substr(colon + 1)) {
    if (c < '0' || c > '9') {
      port = 0;
      break;
    }
    port = port * 10 + static_cast<std::uint64_t>(c - '0');
  }
  if (port == 0 || port > 65535) {
    if (error != nullptr) {
      *error = "webhook url port must be 1..65535";
    }
    return std::nullopt;
  }
  WebhookConfig config;
  config.host = std::string(authority.substr(0, colon));
  config.port = static_cast<std::uint16_t>(port);
  config.path = std::string(path);
  return config;
}

std::string webhook_body(const AlertTransition& t) {
  std::string out = "{\"sli\":\"";
  out += t.sli;  // rule names are internal identifiers, no escaping needed
  out += "\",\"event\":\"";
  out += t.firing ? "fire" : "resolve";
  out += "\",\"t_hours\":";
  out += json_number(t.t_hours);
  out += ",\"value\":";
  out += json_number(t.value);
  out += ",\"budget\":";
  out += json_number(t.budget);
  out += ",\"fast_burn\":";
  out += json_number(t.fast_burn);
  out += ",\"slow_burn\":";
  out += json_number(t.slow_burn);
  out += ",\"samples\":";
  out += std::to_string(t.samples);
  out += "}";
  return out;
}

WebhookSender::WebhookSender(WebhookConfig config)
    : config_(std::move(config)) {
  MFCP_CHECK(config_.port != 0, "webhook: port required");
  MFCP_CHECK(config_.queue_capacity > 0, "webhook: queue capacity > 0");
  sender_ = std::thread([this] { sender_loop(); });
}

WebhookSender::~WebhookSender() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  sender_.join();
}

void WebhookSender::notify(const AlertTransition& transition) {
  std::string body = webhook_body(transition);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_ || queue_.size() >= config_.queue_capacity) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      if (dropped_metric_ != nullptr) {
        dropped_metric_->add(1);
      }
      return;
    }
    queue_.push_back(std::move(body));
  }
  wake_.notify_one();
}

void WebhookSender::bind_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    delivered_metric_ = nullptr;
    failed_metric_ = nullptr;
    dropped_metric_ = nullptr;
    return;
  }
  delivered_metric_ = &registry->counter("mfcp_alert_webhook_delivered_total");
  failed_metric_ = &registry->counter("mfcp_alert_webhook_failed_total");
  dropped_metric_ = &registry->counter("mfcp_alert_webhook_dropped_total");
}

bool WebhookSender::flush(double timeout_seconds) {
  std::unique_lock<std::mutex> lock(mutex_);
  return drained_.wait_for(
      lock, std::chrono::duration<double>(timeout_seconds),
      [this] { return queue_.empty() && !in_flight_; });
}

std::uint64_t WebhookSender::delivered_total() const noexcept {
  return delivered_.load(std::memory_order_relaxed);
}

std::uint64_t WebhookSender::failed_total() const noexcept {
  return failed_.load(std::memory_order_relaxed);
}

std::uint64_t WebhookSender::dropped_total() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

void WebhookSender::sender_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    wake_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    if (queue_.empty()) {
      return;  // stop_ and nothing left: drop-on-shutdown is acceptable
    }
    std::string body = std::move(queue_.front());
    queue_.pop_front();
    in_flight_ = true;
    lock.unlock();
    // The HTTP round trip happens unlocked, so notify() never blocks on a
    // slow endpoint.
    const net::ClientResponse response =
        net::http_call(config_.host, config_.port, "POST", config_.path,
                       body, config_.timeout_ms);
    const bool delivered =
        response.ok && response.status >= 200 && response.status < 300;
    if (delivered) {
      delivered_.fetch_add(1, std::memory_order_relaxed);
      if (delivered_metric_ != nullptr) {
        delivered_metric_->add(1);
      }
    } else {
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (failed_metric_ != nullptr) {
        failed_metric_->add(1);
      }
    }
    lock.lock();
    in_flight_ = false;
    if (queue_.empty()) {
      drained_.notify_all();
    }
  }
}

}  // namespace mfcp::obs
