#include "obs/attribution.hpp"

namespace mfcp::obs {

void AttributionRecorder::bind(MetricsRegistry* registry) {
  if (registry == nullptr) {
    pred_ = solver_ = rounding_ = admission_ = total_ = nullptr;
    rounds_ = inexact_counter_ = nullptr;
    return;
  }
  const auto gap = [registry](const char* term) {
    return &registry->histogram(
        std::string("mfcp_regret_gap{term=\"") + term + "\"}",
        default_gap_bounds());
  };
  pred_ = gap("prediction");
  solver_ = gap("solver");
  rounding_ = gap("rounding");
  admission_ = gap("admission");
  total_ = gap("total");
  rounds_ = &registry->counter("mfcp_regret_attributed_rounds_total");
  inexact_counter_ =
      &registry->counter("mfcp_regret_attribution_inexact_total");
}

void AttributionRecorder::record(const RegretBreakdown& breakdown) {
  if (!breakdown.valid) {
    return;
  }
  ++recorded_;
  const bool exact = breakdown.exact();
  if (!exact) {
    ++inexact_;
  }
  if (rounds_ == nullptr) {
    return;
  }
  pred_->observe(breakdown.pred_gap);
  solver_->observe(breakdown.solver_gap);
  rounding_->observe(breakdown.rounding_gap);
  admission_->observe(breakdown.admission_gap);
  total_->observe(breakdown.total);
  rounds_->add(1);
  if (!exact) {
    inexact_counter_->add(1);
  }
}

}  // namespace mfcp::obs
