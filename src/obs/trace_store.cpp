#include "obs/trace_store.hpp"

#include <algorithm>

#include "obs/sinks.hpp"
#include "support/check.hpp"

namespace mfcp::obs {

namespace {

// splitmix64 finalizer: full-avalanche 64-bit mix (public-domain constant
// schedule, same mix the engine's seeded RNGs build on conceptually but
// with no shared state — tracing must never advance a decision RNG).
std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

std::uint64_t mint_trace_id(std::uint64_t task_id, std::uint64_t salt) noexcept {
  const std::uint64_t id = mix64(task_id ^ mix64(salt));
  return id == 0 ? 1 : id;  // 0 is the "no trace" sentinel
}

bool trace_sampled(std::uint64_t trace_id, double rate) noexcept {
  if (rate >= 1.0) {
    return true;
  }
  if (rate <= 0.0) {
    return false;
  }
  // Threshold compare in the full 64-bit space. Re-hash so the sampling
  // subset is independent of any structure in the id itself.
  const double scaled = rate * 18446744073709551616.0;  // rate * 2^64
  const std::uint64_t threshold =
      scaled >= 18446744073709551615.0
          ? ~0ULL
          : static_cast<std::uint64_t>(scaled);
  return mix64(trace_id) < threshold;
}

std::string format_trace_id(std::uint64_t trace_id) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[trace_id & 0xF];
    trace_id >>= 4;
  }
  return out;
}

std::optional<std::uint64_t> parse_trace_id(std::string_view text) noexcept {
  if (text.size() != 16) {
    return std::nullopt;
  }
  std::uint64_t id = 0;
  for (const char c : text) {
    std::uint64_t digit = 0;
    if (c >= '0' && c <= '9') {
      digit = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      digit = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      digit = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return std::nullopt;
    }
    id = (id << 4) | digit;
  }
  if (id == 0) {
    return std::nullopt;
  }
  return id;
}

TraceContext make_trace_context(std::uint64_t task_id, std::uint64_t salt,
                                double rate) noexcept {
  const std::uint64_t id = mint_trace_id(task_id, salt);
  TraceContext ctx;
  if (trace_sampled(id, rate)) {
    ctx.trace_id = id;
  }
  return ctx;
}

// ------------------------------------------------------------ TaskTrace --

std::string TaskTrace::chain() const {
  std::string out;
  for (const TaskSpan& s : spans) {
    if (!out.empty()) {
      out += '>';
    }
    out += s.name;
  }
  return out;
}

// ------------------------------------------------------------ TraceStore --

TraceStore::TraceStore(std::size_t capacity) : capacity_(capacity) {
  MFCP_CHECK(capacity_ > 0, "trace store capacity must be positive");
}

void TraceStore::evict_one_locked() {
  // Prefer the oldest finished trace; a burst of in-flight tasks must not
  // wipe a completed trace someone is about to query. Fall back to the
  // oldest outright when everything is live.
  std::size_t victim = 0;
  bool found = false;
  for (std::size_t i = 0; i < order_.size(); ++i) {
    const auto it = traces_.find(order_[i]);
    if (it != traces_.end() && it->second.finished()) {
      victim = i;
      found = true;
      break;
    }
  }
  if (!found) {
    victim = 0;
  }
  const std::uint64_t task_id = order_[victim];
  order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(victim));
  const auto it = traces_.find(task_id);
  if (it != traces_.end()) {
    by_trace_.erase(it->second.trace_id);
    traces_.erase(it);
  }
  ++evicted_;
}

bool TraceStore::begin(std::uint64_t task_id, std::uint64_t trace_id,
                       double submit_hours) {
  if (trace_id == 0) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (traces_.count(task_id) != 0) {
    return false;  // idempotent: keep the original begin
  }
  while (traces_.size() >= capacity_) {
    evict_one_locked();
  }
  TaskTrace trace;
  trace.trace_id = trace_id;
  trace.task_id = task_id;
  trace.submit_hours = submit_hours;
  by_trace_[trace_id] = task_id;
  traces_.emplace(task_id, std::move(trace));
  order_.push_back(task_id);
  ++begun_;
  return true;
}

bool TraceStore::append(std::uint64_t task_id, TaskSpan span) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = traces_.find(task_id);
  if (it == traces_.end()) {
    return false;
  }
  it->second.spans.push_back(std::move(span));
  return true;
}

bool TraceStore::finish(std::uint64_t task_id, std::string_view final_state) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = traces_.find(task_id);
  if (it == traces_.end()) {
    return false;
  }
  it->second.final_state.assign(final_state);
  return true;
}

std::optional<TaskTrace> TraceStore::find_by_trace(
    std::uint64_t trace_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto mapped = by_trace_.find(trace_id);
  if (mapped == by_trace_.end()) {
    return std::nullopt;
  }
  const auto it = traces_.find(mapped->second);
  if (it == traces_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::optional<TaskTrace> TraceStore::find_by_task(std::uint64_t task_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = traces_.find(task_id);
  if (it == traces_.end()) {
    return std::nullopt;
  }
  return it->second;
}

std::vector<TaskTrace> TraceStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<TaskTrace> out;
  out.reserve(order_.size());
  for (const std::uint64_t task_id : order_) {
    const auto it = traces_.find(task_id);
    if (it != traces_.end()) {
      out.push_back(it->second);
    }
  }
  return out;
}

std::size_t TraceStore::drain_to(JsonlWriter& out, std::string_view label) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t drained = 0;
  for (const std::uint64_t task_id : order_) {
    const auto it = traces_.find(task_id);
    if (it == traces_.end()) {
      continue;
    }
    const TaskTrace& t = it->second;
    if (!label.empty()) {
      out.field("mode", label);
    }
    out.field("trace_id", format_trace_id(t.trace_id));
    out.field("task_id", t.task_id);
    out.field("submit_hours", t.submit_hours);
    out.field("state",
              t.final_state.empty() ? std::string_view("in_flight")
                                    : std::string_view(t.final_state));
    out.field("spans", static_cast<std::uint64_t>(t.spans.size()));
    out.field("chain", t.chain());
    for (std::size_t i = 0; i < t.spans.size(); ++i) {
      const TaskSpan& s = t.spans[i];
      const std::string prefix = "s" + std::to_string(i) + "_";
      out.field(prefix + "name", s.name);
      out.field(prefix + "start_hours", s.start_hours);
      out.field(prefix + "end_hours", s.end_hours);
      if (s.value != 0.0) {
        out.field(prefix + "value", s.value);
      }
      if (!s.detail.empty()) {
        out.field(prefix + "detail", s.detail);
      }
    }
    out.end_record();
    ++drained;
  }
  traces_.clear();
  by_trace_.clear();
  order_.clear();
  return drained;
}

std::size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return traces_.size();
}

std::uint64_t TraceStore::begun() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return begun_;
}

std::uint64_t TraceStore::evicted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return evicted_;
}

}  // namespace mfcp::obs
