#include "obs/metrics.hpp"

#include <algorithm>
#include <limits>

#include "support/check.hpp"

namespace mfcp::obs {

namespace {
std::atomic<std::size_t> g_next_shard{0};
std::atomic<MetricsRegistry*> g_default_registry{nullptr};
}  // namespace

std::size_t shard_index() noexcept {
  thread_local const std::size_t idx =
      g_next_shard.fetch_add(1, std::memory_order_relaxed) % kShards;
  return idx;
}

// ------------------------------------------------------------- counter --

std::uint64_t Counter::value() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    total += s.v.load(std::memory_order_relaxed);
  }
  return total;
}

void Counter::reset() noexcept {
  for (Shard& s : shards_) {
    s.v.store(0, std::memory_order_relaxed);
  }
}

// ----------------------------------------------------------- histogram --

Histogram::Histogram(std::span<const double> upper_bounds)
    : bounds_(upper_bounds.begin(), upper_bounds.end()), shards_(kShards) {
  MFCP_CHECK(!bounds_.empty(), "histogram needs at least one bucket bound");
  MFCP_CHECK(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                 std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                     bounds_.end(),
             "histogram bounds must be strictly increasing");
  for (Shard& s : shards_) {
    s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
  }
}

void Histogram::observe(double v) noexcept {
  // First bucket with v <= bound; overflow bucket otherwise.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const std::size_t bucket =
      static_cast<std::size_t>(it - bounds_.begin());
  Shard& s = shards_[shard_index()];
  s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
  double expected = s.sum.load(std::memory_order_relaxed);
  while (!s.sum.compare_exchange_weak(expected, expected + v,
                                      std::memory_order_relaxed)) {
  }
}

void Histogram::rebucket(std::span<const double> upper_bounds) {
  MFCP_CHECK(!upper_bounds.empty(), "histogram needs at least one bucket bound");
  MFCP_CHECK(std::is_sorted(upper_bounds.begin(), upper_bounds.end()) &&
                 std::adjacent_find(upper_bounds.begin(), upper_bounds.end()) ==
                     upper_bounds.end(),
             "histogram bounds must be strictly increasing");
  const std::vector<std::uint64_t> old_counts = bucket_counts();
  const std::vector<double> old_bounds = std::move(bounds_);
  const double total_sum = sum();

  bounds_.assign(upper_bounds.begin(), upper_bounds.end());
  std::vector<std::uint64_t> folded(bounds_.size() + 1, 0);
  for (std::size_t b = 0; b < old_counts.size(); ++b) {
    std::size_t target = bounds_.size();  // overflow by default
    if (b < old_bounds.size()) {
      // Conservative fold: values in this bucket were <= old_bounds[b], so
      // the first new bound >= old_bounds[b] still upper-bounds them.
      const auto it =
          std::lower_bound(bounds_.begin(), bounds_.end(), old_bounds[b]);
      target = static_cast<std::size_t>(it - bounds_.begin());
    }
    folded[target] += old_counts[b];
  }

  for (Shard& s : shards_) {
    s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size() + 1);
    s.sum.store(0.0, std::memory_order_relaxed);
  }
  for (std::size_t b = 0; b < folded.size(); ++b) {
    shards_[0].buckets[b].store(folded[b], std::memory_order_relaxed);
  }
  shards_[0].sum.store(total_sum, std::memory_order_relaxed);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> counts(bounds_.size() + 1, 0);
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < counts.size(); ++b) {
      counts[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const Shard& s : shards_) {
    for (const auto& b : s.buckets) {
      total += b.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::sum() const noexcept {
  double total = 0.0;
  for (const Shard& s : shards_) {
    total += s.sum.load(std::memory_order_relaxed);
  }
  return total;
}

void Histogram::reset() noexcept {
  for (Shard& s : shards_) {
    for (auto& b : s.buckets) {
      b.store(0, std::memory_order_relaxed);
    }
    s.sum.store(0.0, std::memory_order_relaxed);
  }
}

// ------------------------------------------------------------ snapshot --

void RegistrySnapshot::merge(const RegistrySnapshot& other) {
  for (const auto& [name, v] : other.counters) {
    auto it = std::find_if(counters.begin(), counters.end(),
                           [&](const auto& p) { return p.first == name; });
    if (it == counters.end()) {
      counters.emplace_back(name, v);
    } else {
      it->second += v;
    }
  }
  for (const auto& [name, v] : other.gauges) {
    auto it = std::find_if(gauges.begin(), gauges.end(),
                           [&](const auto& p) { return p.first == name; });
    if (it == gauges.end()) {
      gauges.emplace_back(name, v);
    } else {
      it->second = v;  // last writer wins
    }
  }
  for (const HistogramSnapshot& h : other.histograms) {
    auto it = std::find_if(
        histograms.begin(), histograms.end(),
        [&](const HistogramSnapshot& mine) { return mine.name == h.name; });
    if (it == histograms.end()) {
      histograms.push_back(h);
      continue;
    }
    MFCP_CHECK(it->bounds == h.bounds,
               "cannot merge histograms with different bucket bounds");
    for (std::size_t b = 0; b < it->buckets.size(); ++b) {
      it->buckets[b] += h.buckets[b];
    }
    it->sum += h.sum;
    it->count += h.count;
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(counters.begin(), counters.end(), by_name);
  std::sort(gauges.begin(), gauges.end(), by_name);
  std::sort(histograms.begin(), histograms.end(),
            [](const HistogramSnapshot& a, const HistogramSnapshot& b) {
              return a.name < b.name;
            });
}

// ------------------------------------------------------------ registry --

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::span<const double> bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(bounds))
             .first;
  } else {
    MFCP_CHECK(std::equal(bounds.begin(), bounds.end(),
                          it->second->bounds().begin(),
                          it->second->bounds().end()),
               "histogram re-registered with different bucket bounds");
  }
  return *it->second;
}

Histogram* MetricsRegistry::find_histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

RegistrySnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  RegistrySnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.emplace_back(name, c->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.emplace_back(name, g->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.name = name;
    hs.bounds = h->bounds();
    hs.buckets = h->bucket_counts();
    hs.sum = h->sum();
    hs.count = h->count();
    snap.histograms.push_back(std::move(hs));
  }
  return snap;  // std::map iteration is already name-sorted
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, c] : counters_) {
    c->reset();
  }
  for (auto& [name, g] : gauges_) {
    g->reset();
  }
  for (auto& [name, h] : histograms_) {
    h->reset();
  }
}

MetricsRegistry* default_registry() noexcept {
  return g_default_registry.load(std::memory_order_acquire);
}

void set_default_registry(MetricsRegistry* registry) noexcept {
  g_default_registry.store(registry, std::memory_order_release);
}

std::span<const double> default_time_bounds() noexcept {
  static constexpr double kBounds[] = {1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
                                       1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,
                                       10.0, 30.0};
  return kBounds;
}

std::span<const double> default_iteration_bounds() noexcept {
  static constexpr double kBounds[] = {10.0,  25.0,   50.0,   100.0,  250.0,
                                       500.0, 1000.0, 2000.0, 4000.0, 8000.0};
  return kBounds;
}

std::span<const double> default_gap_bounds() noexcept {
  static constexpr double kBounds[] = {
      -1.0,  -0.3,  -0.1,  -0.03, -0.01, -0.003, -0.001, 0.0,
      0.001, 0.003, 0.01,  0.03,  0.1,   0.3,    1.0,    3.0};
  return kBounds;
}

double histogram_quantile(const HistogramSnapshot& snapshot, double q) {
  if (snapshot.count == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  q = std::min(1.0, std::max(0.0, q));
  const double rank = q * static_cast<double>(snapshot.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < snapshot.bounds.size(); ++b) {
    const std::uint64_t prev = cumulative;
    cumulative += snapshot.buckets[b];
    if (static_cast<double>(cumulative) >= rank && snapshot.buckets[b] > 0) {
      const double upper = snapshot.bounds[b];
      const double lower =
          b == 0 ? std::min(0.0, upper) : snapshot.bounds[b - 1];
      const double within =
          (rank - static_cast<double>(prev)) /
          static_cast<double>(snapshot.buckets[b]);
      return lower + (upper - lower) * std::min(1.0, std::max(0.0, within));
    }
  }
  // Rank lies in the +Inf overflow bucket: the grid's top edge is the
  // best (and only honest) estimate.
  return snapshot.bounds.back();
}

std::span<const double> exposition_quantiles() noexcept {
  static constexpr double kQuantiles[] = {0.5, 0.9, 0.99};
  return kQuantiles;
}

}  // namespace mfcp::obs
