// Metrics registry: named counters, gauges, and fixed-bucket histograms
// for the online platform's hot paths.
//
// Design goals (in priority order):
//  1. Near-zero cost when telemetry is off. Instrumentation sites hold a
//     plain pointer (Counter*/Histogram*/MetricsRegistry*) that is null
//     when disabled, so the disabled path is a single branch — no clock
//     reads, no atomics, no allocation.
//  2. Cheap when on. Counters and histogram buckets are sharded across
//     cache-line-aligned atomics indexed by a per-thread shard id, so
//     concurrent writers on different threads do not bounce a shared line.
//     Reads (snapshot) sum the shards.
//  3. Deterministic reporting. snapshot() returns metrics sorted by name;
//     the sinks (obs/sinks.hpp) render that order verbatim, so two runs
//     that recorded the same values expose the same text.
//
// Registration (`registry.counter("name")`) takes a mutex and is expected
// once per site; instrumented components cache the returned pointer
// (references are stable for the registry's lifetime — metrics live in
// node-based maps and are never removed). reset() zeroes every value but
// keeps registrations, which is what paired instrumented-vs-off benchmark
// runs need.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace mfcp::obs {

/// Number of per-thread shards in counters and histograms. Threads are
/// assigned shards round-robin on first use; 16 covers the pool sizes the
/// engine runs with while keeping snapshot cost trivial.
inline constexpr std::size_t kShards = 16;

/// Round-robin shard id of the calling thread (stable per thread).
std::size_t shard_index() noexcept;

/// Monotonically increasing counter (sharded atomics; see file comment).
class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    shards_[shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over shards. Concurrent adds may or may not be included.
  [[nodiscard]] std::uint64_t value() const noexcept;

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Shard, kShards> shards_{};
};

/// Last-written double value (e.g. the current drift statistic). A gauge
/// is a single atomic — set() is a plain store, not a read-modify-write —
/// so it is not sharded.
class Gauge {
 public:
  void set(double v) noexcept { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { set(0.0); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with Prometheus "le" semantics: a sample v lands
/// in the first bucket whose upper bound satisfies v <= bound (boundaries
/// are inclusive on the upper side — exact at edges), and in the implicit
/// +Inf overflow bucket when it exceeds every bound.
class Histogram {
 public:
  /// `upper_bounds` must be non-empty and strictly increasing.
  explicit Histogram(std::span<const double> upper_bounds);

  void observe(double v) noexcept;

  /// Replaces the bucket layout at runtime, folding existing counts in
  /// conservatively: a count recorded under old upper bound `b` lands in
  /// the first new bucket whose bound is >= `b` (its true value was <= b,
  /// so the new bucket never under-reports it; the quantile estimate can
  /// only widen, never shrink below truth). Counts above every new bound
  /// — including the old +Inf overflow — fold into the new overflow
  /// bucket. Total count and sum are preserved. NOT safe against
  /// concurrent observe(): call during startup/reconfiguration, before
  /// traffic reaches the histogram.
  void rebucket(std::span<const double> upper_bounds);

  [[nodiscard]] const std::vector<double>& bounds() const noexcept {
    return bounds_;
  }
  /// Per-bucket counts (bounds().size() + 1 entries; last is overflow).
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  [[nodiscard]] std::uint64_t count() const noexcept;
  [[nodiscard]] double sum() const noexcept;

  void reset() noexcept;

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;
    std::atomic<double> sum{0.0};
  };
  std::vector<double> bounds_;
  std::vector<Shard> shards_;  // kShards entries
};

/// Point-in-time copy of one histogram's state.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;
  std::vector<std::uint64_t> buckets;  // per-bucket (not cumulative)
  double sum = 0.0;
  std::uint64_t count = 0;
};

/// Point-in-time copy of a registry, sorted by metric name. merge() folds
/// another snapshot in: counters and histogram buckets add; gauges take
/// the other snapshot's value (last writer wins); metrics present in only
/// one snapshot are kept as-is.
struct RegistrySnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramSnapshot> histograms;

  void merge(const RegistrySnapshot& other);
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Find-or-create. Returned references are stable until destruction.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// `bounds` is used on first registration; later calls with the same
  /// name must pass identical bounds (checked).
  Histogram& histogram(std::string_view name, std::span<const double> bounds);

  /// Lookup without registration (e.g. to rebucket an already-registered
  /// histogram). Null when the name is unknown.
  [[nodiscard]] Histogram* find_histogram(std::string_view name);

  [[nodiscard]] RegistrySnapshot snapshot() const;

  /// Zeroes every metric but keeps all registrations (cached pointers
  /// into the registry stay valid) — for paired benchmark runs.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// Process-wide default registry for library internals that cannot plumb a
/// registry through their call sites (matching solvers, thread pool).
/// Null (the initial state) disables their instrumentation entirely.
[[nodiscard]] MetricsRegistry* default_registry() noexcept;
void set_default_registry(MetricsRegistry* registry) noexcept;

/// Log-spaced upper bounds for wall-time histograms, 10 microseconds to
/// 30 seconds (1-3-10 per decade).
[[nodiscard]] std::span<const double> default_time_bounds() noexcept;

/// Upper bounds for iteration-count histograms (solver convergence).
[[nodiscard]] std::span<const double> default_iteration_bounds() noexcept;

/// Signed bounds for regret-gap histograms (per-task makespan units):
/// attribution terms can be negative (the deployed chain beating the
/// reference on one sub-step), so the grid spans both signs around zero.
[[nodiscard]] std::span<const double> default_gap_bounds() noexcept;

/// Prometheus-style quantile estimate from a fixed-bucket histogram:
/// walks the cumulative bucket counts to the bucket containing rank
/// q * count and linearly interpolates inside it (the first bucket's lower
/// edge is 0 when its upper bound is positive, the bound itself
/// otherwise). Ranks landing in the +Inf overflow bucket return the
/// largest finite bound — the estimate cannot exceed the configured grid.
/// Returns NaN for an empty histogram; q is clamped to [0, 1].
[[nodiscard]] double histogram_quantile(const HistogramSnapshot& snapshot,
                                        double q);

/// The quantiles the exposition and end-of-run summaries render
/// (p50/p90/p99).
[[nodiscard]] std::span<const double> exposition_quantiles() noexcept;

}  // namespace mfcp::obs
