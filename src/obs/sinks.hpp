// Telemetry sinks: Prometheus-style text exposition and a JSONL writer.
//
// Exposition renders a RegistrySnapshot in the Prometheus text format
// (name-sorted, `le` buckets cumulative, +Inf bucket explicit). Metric
// names may carry a label set inline — `stage_seconds{stage="embed"}` —
// in which case histogram suffixes splice their `le` label into the
// existing braces and the `# TYPE` header uses the base name only.
//
// JsonlWriter emits one JSON object per record with the fields in exactly
// the order the caller wrote them, and formats doubles with
// max_digits10-equivalent precision (%.17g), so identical field sequences
// produce byte-identical lines. That is the property the engine's round
// journal builds on: two identical seeded runs must diff clean.
#pragma once

#include <fstream>
#include <iosfwd>
#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace mfcp::obs {

/// Renders the snapshot in Prometheus text exposition format.
void write_prometheus(std::ostream& os, const RegistrySnapshot& snapshot);
[[nodiscard]] std::string to_prometheus(const RegistrySnapshot& snapshot);

/// Formats a double the way the JSONL journal does (%.17g — value
/// round-trips, identical doubles yield identical text).
[[nodiscard]] std::string json_number(double v);

/// Streaming writer of JSON-lines records; see file comment. Either owns
/// the file it appends to or borrows a caller-supplied stream (tests).
class JsonlWriter {
 public:
  /// Truncates and opens `path`. Throws ContractError when unwritable.
  explicit JsonlWriter(const std::string& path);
  /// Borrows `os` (kept alive by the caller).
  explicit JsonlWriter(std::ostream& os);

  JsonlWriter(const JsonlWriter&) = delete;
  JsonlWriter& operator=(const JsonlWriter&) = delete;

  /// Appends one `"key":value` pair to the current record, preserving
  /// call order. Keys and string values are escaped for JSON.
  JsonlWriter& field(std::string_view key, std::uint64_t v);
  JsonlWriter& field(std::string_view key, std::int64_t v);
  JsonlWriter& field(std::string_view key, double v);
  JsonlWriter& field(std::string_view key, bool v);
  JsonlWriter& field(std::string_view key, std::string_view v);

  /// Terminates the current record: writes the assembled line + '\n'.
  void end_record();

  void flush();

  [[nodiscard]] std::size_t records_written() const noexcept {
    return records_;
  }

 private:
  void append_key(std::string_view key);

  std::ofstream owned_;
  std::ostream* os_;
  std::string line_;
  bool in_record_ = false;
  std::size_t records_ = 0;
};

}  // namespace mfcp::obs
