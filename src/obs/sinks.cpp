#include "obs/sinks.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/check.hpp"

namespace mfcp::obs {

namespace {

/// Splits `name` into its base metric name and an inline label set
/// ("x{a=\"b\"}" -> {"x", "a=\"b\""}); labels are empty when absent.
struct SplitName {
  std::string_view base;
  std::string_view labels;
};

SplitName split_name(std::string_view name) {
  const auto brace = name.find('{');
  if (brace == std::string_view::npos || name.back() != '}') {
    return {name, {}};
  }
  return {name.substr(0, brace),
          name.substr(brace + 1, name.size() - brace - 2)};
}

std::string with_label(std::string_view name, std::string_view extra) {
  const SplitName split = split_name(name);
  std::string out(split.base);
  out += '{';
  if (!split.labels.empty()) {
    out += split.labels;
    out += ',';
  }
  out += extra;
  out += '}';
  return out;
}

std::string format_double(double v) {
  if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Bucket bounds are configured constants (0.1, 3e-05, ...), not measured
/// values — render them with %g so `le` labels read naturally instead of
/// exposing the nearest-double artifacts of %.17g.
std::string format_bound(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

void type_header(std::ostream& os, std::string_view name,
                 const char* type, std::string& last_base) {
  const std::string base(split_name(name).base);
  if (base != last_base) {
    os << "# TYPE " << base << ' ' << type << '\n';
    last_base = base;
  }
}

}  // namespace

void write_prometheus(std::ostream& os, const RegistrySnapshot& snapshot) {
  std::string last_base;
  for (const auto& [name, value] : snapshot.counters) {
    type_header(os, name, "counter", last_base);
    os << name << ' ' << value << '\n';
  }
  last_base.clear();
  for (const auto& [name, value] : snapshot.gauges) {
    type_header(os, name, "gauge", last_base);
    os << name << ' ' << format_double(value) << '\n';
  }
  last_base.clear();
  for (const HistogramSnapshot& h : snapshot.histograms) {
    type_header(os, h.name, "histogram", last_base);
    const SplitName split = split_name(h.name);
    const std::string base(split.base);
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      cumulative += h.buckets[b];
      const std::string le =
          b < h.bounds.size()
              ? "le=\"" + format_bound(h.bounds[b]) + "\""
              : std::string("le=\"+Inf\"");
      std::string labeled = with_label(h.name, le);
      // The bucket suffix goes on the base name, before the labels.
      os << base << "_bucket"
         << labeled.substr(base.size()) << ' ' << cumulative << '\n';
    }
    const std::string suffix =
        split.labels.empty() ? std::string()
                             : '{' + std::string(split.labels) + '}';
    os << base << "_sum" << suffix << ' ' << format_double(h.sum) << '\n';
    os << base << "_count" << suffix << ' ' << h.count << '\n';
  }
  // Quantile estimates as sibling gauge families (`<base>_quantile`),
  // interpolated from the fixed buckets — scrapers get p50/p90/p99
  // without a recording rule. A separate pass keeps every family
  // contiguous (strict parsers reject interleaved families); empty
  // histograms are skipped (no honest estimate).
  last_base.clear();
  for (const HistogramSnapshot& h : snapshot.histograms) {
    if (h.count == 0) {
      continue;
    }
    const std::string base(split_name(h.name).base);
    type_header(os, base + "_quantile", "gauge", last_base);
    for (const double q : exposition_quantiles()) {
      const std::string label = "quantile=\"" + format_bound(q) + "\"";
      std::string labeled = with_label(h.name, label);
      os << base << "_quantile" << labeled.substr(base.size()) << ' '
         << format_double(histogram_quantile(h, q)) << '\n';
    }
  }
}

std::string to_prometheus(const RegistrySnapshot& snapshot) {
  std::ostringstream os;
  write_prometheus(os, snapshot);
  return os.str();
}

std::string json_number(double v) {
  // JSON has no Inf/NaN literals; clamp to null (the journal never emits
  // these for deterministic fields, but the writer must stay valid JSON).
  if (!std::isfinite(v)) {
    return "null";
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// --------------------------------------------------------------- jsonl --

namespace {
void append_escaped(std::string& out, std::string_view text) {
  for (char c : text) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}
}  // namespace

JsonlWriter::JsonlWriter(const std::string& path)
    : owned_(path, std::ios::out | std::ios::trunc), os_(&owned_) {
  MFCP_CHECK(owned_.is_open(), "cannot open JSONL journal for writing");
}

JsonlWriter::JsonlWriter(std::ostream& os) : os_(&os) {}

void JsonlWriter::append_key(std::string_view key) {
  line_ += in_record_ ? ',' : '{';
  in_record_ = true;
  line_ += '"';
  append_escaped(line_, key);
  line_ += "\":";
}

JsonlWriter& JsonlWriter::field(std::string_view key, std::uint64_t v) {
  append_key(key);
  line_ += std::to_string(v);
  return *this;
}

JsonlWriter& JsonlWriter::field(std::string_view key, std::int64_t v) {
  append_key(key);
  line_ += std::to_string(v);
  return *this;
}

JsonlWriter& JsonlWriter::field(std::string_view key, double v) {
  append_key(key);
  line_ += json_number(v);
  return *this;
}

JsonlWriter& JsonlWriter::field(std::string_view key, bool v) {
  append_key(key);
  line_ += v ? "true" : "false";
  return *this;
}

JsonlWriter& JsonlWriter::field(std::string_view key, std::string_view v) {
  append_key(key);
  line_ += '"';
  append_escaped(line_, v);
  line_ += '"';
  return *this;
}

void JsonlWriter::end_record() {
  MFCP_CHECK(in_record_, "end_record with no fields written");
  line_ += "}\n";
  os_->write(line_.data(),
             static_cast<std::streamsize>(line_.size()));
  line_.clear();
  in_record_ = false;
  ++records_;
}

void JsonlWriter::flush() { os_->flush(); }

}  // namespace mfcp::obs
