// RAII span tracing for per-stage latency accounting.
//
// A ScopedSpan measures the wall time between its construction and its
// destruction (or an explicit stop()) on the steady clock — the same
// clock discipline as support/stopwatch — and records it twice:
//   - into a Histogram (per-stage latency distribution, e.g.
//     engine_stage_seconds{stage="embed"}), and
//   - optionally into a bounded in-memory TraceRing of SpanRecords for
//     after-the-fact inspection of the most recent activity.
// Both sinks are optional pointers; when both are null the span never
// reads the clock, so disabled instrumentation is a branch, not a syscall.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <vector>

#include "obs/metrics.hpp"

namespace mfcp::obs {

class JsonlWriter;

/// One completed span. `name` must point at a string with static storage
/// duration (instrumentation sites use literals).
struct SpanRecord {
  const char* name = "";
  std::uint64_t start_ns = 0;  // steady-clock nanoseconds since epoch
  std::uint64_t duration_ns = 0;
  std::uint32_t thread = 0;  // obs::shard_index() of the recording thread
};

/// Fixed-capacity ring of the most recent spans. Mutex-protected: spans
/// close at stage granularity (a handful per matching round), so
/// contention is negligible next to the work being measured.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  void record(const SpanRecord& record);

  /// The retained spans, oldest first.
  [[nodiscard]] std::vector<SpanRecord> snapshot() const;

  /// Writes every retained span to `out` as one JSONL record each
  /// ({"span":...,"start_ns":...,"duration_ns":...,"thread":...}, oldest
  /// first), then clears the ring so spans survive beyond the in-memory
  /// window without double-export. Returns the number drained. Span
  /// timestamps are wall-clock — drain into a diagnostics journal, not
  /// one that must be byte-stable across runs.
  std::size_t drain_to(JsonlWriter& out);

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total spans ever recorded (not capped at capacity).
  [[nodiscard]] std::uint64_t recorded() const noexcept;

  void clear();

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<SpanRecord> ring_;
  std::size_t next_ = 0;  // write cursor once full
  std::uint64_t recorded_ = 0;
};

/// Scoped wall-time measurement; see file comment. Move-only is not
/// needed — instrumentation sites construct it on the stack.
class ScopedSpan {
 public:
  ScopedSpan(Histogram* seconds_histogram, const char* name,
             TraceRing* ring = nullptr) noexcept
      : hist_(seconds_histogram), ring_(ring), name_(name) {
    if (hist_ != nullptr || ring_ != nullptr) {
      start_ = Clock::now();
    }
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() { stop(); }

  /// Ends the span early (idempotent; the destructor becomes a no-op).
  void stop() noexcept;

 private:
  using Clock = std::chrono::steady_clock;
  Histogram* hist_;
  TraceRing* ring_;
  const char* name_;
  Clock::time_point start_{};
  bool done_ = false;
};

}  // namespace mfcp::obs
