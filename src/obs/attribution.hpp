// Per-round regret attribution: the observability side of the decision
// loss decomposition.
//
// Aggregate regret says a round went badly; it does not say *why*. The
// decomposition (computed by core::attribute_regret, which owns the
// matching-layer math) splits each round's realized loss into four
// additive terms, all in per-task true-makespan units:
//
//   pred_gap      — loss caused by feeding the matcher predicted instead
//                   of true metrics (converged relaxed optima compared
//                   under the truth);
//   solver_gap    — loss from stopping the deployed solve early, net of
//                   the same effect on the reference solve;
//   rounding_gap  — fractional -> integral makespan delta, net of the
//                   reference chain's identical rounding step;
//   admission_gap — counterfactual best-case runtime of tasks the
//                   platform dropped (capacity) or expired (deadline)
//                   since the previous round, normalized by batch size.
//
// Exactness invariant: the four terms telescope, so
//   pred_gap + solver_gap + rounding_gap + admission_gap == total
// where total = realized round regret + admission_gap, each side computed
// from independent makespan evaluations. AttributionRecorder checks the
// invariant on every record (kAttributionTolerance) and counts
// violations; tests and the CI journal guard assert it stays zero.
#pragma once

#include <cmath>
#include <cstdint>

#include "obs/metrics.hpp"

namespace mfcp::obs {

/// |sum of terms - total| tolerance for the exactness invariant. The
/// terms are sums/differences of O(1) makespans, so accumulated
/// floating-point error sits far below this.
inline constexpr double kAttributionTolerance = 1e-6;

/// One round's regret decomposition. Plain doubles so the engine can
/// journal it and the recorder can histogram it without the obs layer
/// depending on the matching types that produced it.
struct RegretBreakdown {
  double pred_gap = 0.0;
  double solver_gap = 0.0;
  double rounding_gap = 0.0;
  double admission_gap = 0.0;
  /// Realized round regret + admission_gap, computed independently of the
  /// terms (from the end-to-end makespans) — the invariant's right side.
  double total = 0.0;
  /// Smooth-objective stationarity residual of the deployed solve
  /// (diagnostic: how far from converged the shipped solution was).
  double solver_residual = 0.0;
  /// False until a decomposition is actually computed (attribution off or
  /// not yet run) — consumers skip invalid breakdowns.
  bool valid = false;

  [[nodiscard]] double term_sum() const noexcept {
    return pred_gap + solver_gap + rounding_gap + admission_gap;
  }
  [[nodiscard]] bool exact(double tolerance = kAttributionTolerance)
      const noexcept {
    return std::abs(term_sum() - total) <= tolerance;
  }
};

/// Streams breakdowns into a MetricsRegistry: one signed-bounds histogram
/// per term (`mfcp_regret_gap{term=...}`), a round counter, and an
/// inexact-decomposition counter that should stay at zero. Null registry
/// disables recording entirely (the usual telemetry-off contract);
/// recorded()/inexact() still count locally so callers can assert on them
/// in either mode.
class AttributionRecorder {
 public:
  AttributionRecorder() = default;
  explicit AttributionRecorder(MetricsRegistry* registry) { bind(registry); }

  /// Registers (or re-finds) the metrics; null detaches.
  void bind(MetricsRegistry* registry);

  /// Records one breakdown. Ignores breakdowns with valid == false.
  void record(const RegretBreakdown& breakdown);

  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t inexact() const noexcept { return inexact_; }

 private:
  Histogram* pred_ = nullptr;
  Histogram* solver_ = nullptr;
  Histogram* rounding_ = nullptr;
  Histogram* admission_ = nullptr;
  Histogram* total_ = nullptr;
  Counter* rounds_ = nullptr;
  Counter* inexact_counter_ = nullptr;
  std::uint64_t recorded_ = 0;
  std::uint64_t inexact_ = 0;
};

}  // namespace mfcp::obs
