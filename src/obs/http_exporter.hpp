// Minimal live-metrics HTTP endpoint: a blocking accept loop on one
// background thread, plain POSIX sockets, no dependencies.
//
//   GET /metrics  -> 200, Prometheus text exposition of a fresh snapshot
//   GET /healthz  -> 200, "ok\n"
//   GET <other>   -> 404;  non-GET -> 405
//
// The exporter pulls: each scrape invokes the caller-supplied snapshot
// function, so the running engine never blocks on the exporter — scrapes
// pay the snapshot cost (summing sharded atomics), the instrumented hot
// path pays nothing. One connection is served at a time (scrapes are rare
// and responses small; a second scraper queues in the listen backlog),
// and a receive timeout keeps a stalled client from wedging the loop.
//
// Request parsing and response assembly are static pure functions so the
// protocol surface is unit-testable without sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <thread>

#include "obs/metrics.hpp"

namespace mfcp::obs {

struct HttpExporterConfig {
  /// Loopback by default: the exporter serves process introspection, not
  /// the open internet.
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; read the result via port().
  std::uint16_t port = 0;
  int listen_backlog = 16;
  /// Receive timeout per connection, guarding the single-threaded loop
  /// against stalled clients.
  int receive_timeout_ms = 2000;
};

class HttpExporter {
 public:
  /// Produces the snapshot a scrape renders. Called on the exporter
  /// thread once per /metrics request.
  using SnapshotFn = std::function<RegistrySnapshot()>;

  /// Binds, listens, and starts the accept thread. Throws ContractError
  /// when the socket cannot be created or bound.
  explicit HttpExporter(SnapshotFn snapshot, HttpExporterConfig config = {});

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Stops and joins the accept thread.
  ~HttpExporter();

  /// The actually bound port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// Requests answered so far (any status).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return requests_.load(std::memory_order_relaxed);
  }

  /// Idempotent early shutdown (also run by the destructor).
  void stop();

  /// First line of an HTTP request, split. `valid` is false when the line
  /// is not "METHOD SP PATH SP VERSION".
  struct Request {
    std::string method;
    std::string path;
    bool valid = false;
  };
  static Request parse_request_line(std::string_view line);

  /// Full HTTP/1.1 response (status line + headers + body) for `request`.
  /// `snapshot` is only invoked for GET /metrics.
  static std::string respond(const Request& request,
                             const SnapshotFn& snapshot);

 private:
  void serve();

  SnapshotFn snapshot_;
  HttpExporterConfig config_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> requests_{0};
  std::thread thread_;
};

}  // namespace mfcp::obs
