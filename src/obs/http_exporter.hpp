// Live-metrics HTTP endpoint, rebased on the shared net::HttpServer core
// (PR 4) — the exporter is now a thin route table:
//
//   GET /metrics        -> 200, Prometheus text exposition of a snapshot
//   GET /healthz        -> 200, "ok\n"
//   GET /debug/flight   -> 200, recent flight-recorder events (when a
//                          recorder is configured; filterable via
//                          ?thread=&kind=&limit=, 400 on a bad filter)
//   GET /debug/threads  -> 200, per-thread heartbeat ages + stall flags
//   GET /debug/profile  -> 200, folded CPU profile (?seconds=&hz=; when a
//                          profiler is configured; 400 on bad params,
//                          409 while another session runs)
//   GET /debug/build    -> 200, build provenance (git sha, compiler, ...)
//   GET <other>         -> 404;  non-GET -> 405
//
// The exporter pulls: each scrape invokes the caller-supplied snapshot
// function, so the running engine never blocks on the exporter — scrapes
// pay the snapshot cost (summing sharded atomics), the instrumented hot
// path pays nothing. Accepting, backlog bounding, timeouts, and graceful
// shutdown all live in net::HttpServer now; this class only decides what
// a scrape returns.
//
// The static parse_request_line/respond pair remains the socket-free,
// unit-testable protocol surface (delegating to net/http.hpp), with the
// exact response bytes the pre-rebase exporter produced.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "net/http_server.hpp"
#include "obs/flight.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"

namespace mfcp::obs {

struct HttpExporterConfig {
  /// Loopback by default: the exporter serves process introspection, not
  /// the open internet.
  std::string bind_address = "127.0.0.1";
  /// 0 asks the kernel for an ephemeral port; read the result via port().
  std::uint16_t port = 0;
  int listen_backlog = 16;
  /// Receive timeout per connection, guarding a worker against stalled
  /// clients.
  int receive_timeout_ms = 2000;
  /// Scrapes are rare and cheap; two workers cover an overlapping scrape
  /// without reserving more threads.
  std::size_t worker_threads = 2;
  /// Flight recorder behind GET /debug/flight and /debug/threads.
  /// Borrowed, optional (404 when absent — the static respond() surface
  /// never sees these routes, so its pinned bytes are untouched).
  const FlightRecorder* flight = nullptr;
  /// Sampling profiler behind GET /debug/profile. Borrowed, optional
  /// (404 when absent); mutable because a scrape runs a session.
  SamplingProfiler* profiler = nullptr;
  /// Worker lifecycle hooks forwarded to the underlying net::HttpServer
  /// (e.g. an obs::FlightServerObserver for watchdog heartbeats).
  net::ServerObserver* observer = nullptr;
};

class HttpExporter {
 public:
  /// Produces the snapshot a scrape renders. Called on a server worker
  /// thread once per /metrics request; must be thread-safe.
  using SnapshotFn = std::function<RegistrySnapshot()>;

  /// Binds, listens, and starts the server threads. Throws ContractError
  /// when the socket cannot be created or bound.
  explicit HttpExporter(SnapshotFn snapshot, HttpExporterConfig config = {});

  HttpExporter(const HttpExporter&) = delete;
  HttpExporter& operator=(const HttpExporter&) = delete;

  /// Stops and joins the server threads.
  ~HttpExporter();

  /// The actually bound port (resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept {
    return server_->port();
  }

  /// Requests answered so far (any status).
  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return server_->requests_served();
  }

  /// Idempotent early shutdown (also run by the destructor).
  void stop() { server_->stop(); }

  /// First line of an HTTP request, split. `valid` is false when the line
  /// is not "METHOD SP PATH SP VERSION".
  struct Request {
    std::string method;
    std::string path;
    bool valid = false;
  };
  static Request parse_request_line(std::string_view line);

  /// Full HTTP/1.1 response (status line + headers + body) for `request`.
  /// `snapshot` is only invoked for GET /metrics.
  static std::string respond(const Request& request,
                             const SnapshotFn& snapshot);

 private:
  SnapshotFn snapshot_;
  const FlightRecorder* flight_ = nullptr;
  SamplingProfiler* profiler_ = nullptr;
  std::unique_ptr<net::HttpServer> server_;
};

}  // namespace mfcp::obs
