#include "obs/flight.hpp"

#include <signal.h>

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstring>

#include "obs/profiler.hpp"
#include "obs/sinks.hpp"
#include "obs/slo.hpp"
#include "obs/trace_store.hpp"
#include "support/check.hpp"
#include "support/signal_safe.hpp"

namespace mfcp::obs {

namespace {

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

std::size_t round_up_pow2(std::size_t n) noexcept {
  std::size_t p = 8;  // floor so tiny test rings still wrap sanely
  while (p < n) {
    p <<= 1;
  }
  return p;
}

constexpr std::string_view kKindNames[] = {
    "none",        "round_begin", "round_end",  "batch_formed",
    "solver_iters", "admission",  "rate_change", "http_begin",
    "http_end",    "queue_transition", "retrain", "watchdog_stall",
};
constexpr std::size_t kKindCount = sizeof(kKindNames) / sizeof(kKindNames[0]);

}  // namespace

std::string_view to_string(FlightKind kind) noexcept {
  const auto ordinal = static_cast<std::size_t>(kind);
  if (ordinal >= kKindCount) {
    return "unknown";
  }
  return kKindNames[ordinal];
}

std::optional<FlightKind> parse_flight_kind(std::string_view name) noexcept {
  for (std::size_t i = 1; i < kKindCount; ++i) {
    if (name == kKindNames[i]) {
      return static_cast<FlightKind>(i);
    }
  }
  return std::nullopt;
}

// ----------------------------------------------------------- FlightRing --

FlightRing::FlightRing(std::size_t capacity)
    : mask_(round_up_pow2(capacity) - 1),
      slots_(std::make_unique<Slot[]>(mask_ + 1)) {}

void FlightRing::record(FlightEvent event) noexcept {
  const std::uint64_t seq = head_.load(std::memory_order_relaxed) + 1;
  Slot& slot = slots_[(seq - 1) & mask_];
  // Per-slot seqlock write side: invalidate, fence, payload, publish. The
  // release fence keeps the invalidation ahead of the payload stores in
  // every reader's view, so a reader can never pair a stale sequence
  // number with fresh payload words.
  slot.word[0].store(0, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  slot.word[1].store(event.wall_ns, std::memory_order_relaxed);
  slot.word[2].store(std::bit_cast<std::uint64_t>(event.sim_hours),
                     std::memory_order_relaxed);
  slot.word[3].store(event.a0, std::memory_order_relaxed);
  slot.word[4].store(event.a1, std::memory_order_relaxed);
  slot.word[5].store(event.a2, std::memory_order_relaxed);
  slot.word[6].store(event.trace_id, std::memory_order_relaxed);
  slot.word[7].store(static_cast<std::uint64_t>(event.kind) |
                         (static_cast<std::uint64_t>(event.thread) << 16),
                     std::memory_order_relaxed);
  slot.word[0].store(seq, std::memory_order_release);
  head_.store(seq, std::memory_order_release);
}

std::vector<FlightEvent> FlightRing::snapshot() const {
  const std::uint64_t h = head_.load(std::memory_order_acquire);
  if (h == 0) {
    return {};
  }
  const std::uint64_t cap = capacity();
  const std::uint64_t lo = h > cap ? h - cap + 1 : 1;
  std::vector<FlightEvent> out;
  out.reserve(static_cast<std::size_t>(h - lo + 1));
  for (std::uint64_t seq = lo; seq <= h; ++seq) {
    const Slot& slot = slots_[(seq - 1) & mask_];
    if (slot.word[0].load(std::memory_order_acquire) != seq) {
      continue;  // overwritten (or mid-write) since we sampled head
    }
    FlightEvent e;
    e.wall_ns = slot.word[1].load(std::memory_order_relaxed);
    e.sim_hours = std::bit_cast<double>(
        slot.word[2].load(std::memory_order_relaxed));
    e.a0 = slot.word[3].load(std::memory_order_relaxed);
    e.a1 = slot.word[4].load(std::memory_order_relaxed);
    e.a2 = slot.word[5].load(std::memory_order_relaxed);
    e.trace_id = slot.word[6].load(std::memory_order_relaxed);
    const std::uint64_t packed =
        slot.word[7].load(std::memory_order_relaxed);
    e.kind = static_cast<std::uint16_t>(packed & 0xFFFF);
    e.thread = static_cast<std::uint16_t>((packed >> 16) & 0xFFFF);
    // Seqlock read side: the acquire fence orders the payload loads
    // before the recheck, so an overwrite that raced the copy is caught.
    std::atomic_thread_fence(std::memory_order_acquire);
    if (slot.word[0].load(std::memory_order_relaxed) != seq) {
      continue;
    }
    e.seq = seq;
    out.push_back(e);
  }
  return out;
}

// ------------------------------------------------------------ heartbeats --

struct HeartbeatHandle::Slot {
  std::atomic<std::uint64_t> last_ns{0};
  std::atomic<std::uint32_t> busy{0};
  std::atomic<std::uint32_t> stalled{0};  // watchdog-owned episode flag
  std::atomic<std::uint32_t> ready{0};    // name published
  char name[44] = {};
};

void HeartbeatHandle::beat() noexcept {
  if (slot_ == nullptr) {
    return;
  }
  slot_->last_ns.store(now_ns(), std::memory_order_relaxed);
  slot_->busy.store(1, std::memory_order_relaxed);
}

void HeartbeatHandle::idle() noexcept {
  if (slot_ == nullptr) {
    return;
  }
  slot_->last_ns.store(now_ns(), std::memory_order_relaxed);
  slot_->busy.store(0, std::memory_order_relaxed);
}

// -------------------------------------------------------- FlightRecorder --

namespace {

// Thread -> ring binding, cached so record() is branch + stores. A thread
// that outlives one recorder and records into another re-registers. The
// binding is keyed on the recorder's process-unique serial, not its
// address: a successor recorder allocated at a recycled address must not
// inherit a stale binding into rings the old recorder already freed.
struct TlsRing {
  std::uint64_t owner_serial = 0;  // 0 = unbound
  FlightRing* ring = nullptr;
  std::uint16_t ordinal = 0;
};
thread_local TlsRing t_ring;

std::atomic<std::uint64_t> g_recorder_serial{0};

}  // namespace

FlightRecorder::FlightRecorder(FlightConfig config)
    : config_(config),
      serial_(g_recorder_serial.fetch_add(1, std::memory_order_relaxed) + 1) {
  MFCP_CHECK(config_.max_threads > 0, "flight: need at least one ring");
  MFCP_CHECK(config_.ring_capacity > 0, "flight: ring capacity must be > 0");
  MFCP_CHECK(config_.stall_budget_seconds > 0.0,
             "flight: stall budget must be positive");
  rings_.reserve(config_.max_threads);
  for (std::size_t i = 0; i < config_.max_threads; ++i) {
    rings_.push_back(std::make_unique<FlightRing>(config_.ring_capacity));
  }
  heartbeats_ =
      std::make_unique<HeartbeatHandle::Slot[]>(config_.max_heartbeats);
}

FlightRecorder::~FlightRecorder() { stop_watchdog(); }

FlightRing* FlightRecorder::ring_for_this_thread() noexcept {
  if (t_ring.owner_serial == serial_) {
    return t_ring.ring;
  }
  const std::size_t ordinal = threads_.fetch_add(1, std::memory_order_relaxed);
  t_ring.owner_serial = serial_;
  if (ordinal >= config_.max_threads) {
    t_ring.ring = nullptr;
    t_ring.ordinal = 0;
    return nullptr;
  }
  t_ring.ring = rings_[ordinal].get();
  t_ring.ordinal = static_cast<std::uint16_t>(ordinal);
  return t_ring.ring;
}

void FlightRecorder::record(FlightKind kind, double sim_hours,
                            std::uint64_t a0, std::uint64_t a1,
                            std::uint64_t a2,
                            std::uint64_t trace_id) noexcept {
  FlightRing* ring = ring_for_this_thread();
  if (ring == nullptr) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    if (dropped_metric_ != nullptr) {
      dropped_metric_->add(1);
    }
    return;
  }
  FlightEvent e;
  e.wall_ns = now_ns();
  e.sim_hours = sim_hours;
  e.a0 = a0;
  e.a1 = a1;
  e.a2 = a2;
  e.trace_id = trace_id;
  e.kind = static_cast<std::uint16_t>(kind);
  e.thread = t_ring.ordinal;
  ring->record(e);
  events_.fetch_add(1, std::memory_order_relaxed);
  if (sim_hours != 0.0) {
    // Layers without a simulated clock (HTTP workers, the watchdog) stamp
    // their events with the engine's most recent sim time.
    last_sim_hours_.store(sim_hours, std::memory_order_relaxed);
  }
  if (events_metric_ != nullptr) {
    events_metric_->add(1);
  }
}

void FlightRecorder::bind_metrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    events_metric_ = nullptr;
    dropped_metric_ = nullptr;
    stalls_metric_ = nullptr;
    return;
  }
  events_metric_ = &registry->counter("mfcp_flight_events_total");
  dropped_metric_ = &registry->counter("mfcp_flight_dropped_total");
  stalls_metric_ = &registry->counter("mfcp_flight_watchdog_stalls_total");
}

std::vector<FlightEvent> FlightRecorder::snapshot(int thread, FlightKind kind,
                                                  std::size_t limit) const {
  const std::size_t used = threads_registered();
  std::vector<FlightEvent> merged;
  for (std::size_t t = 0; t < used; ++t) {
    if (thread >= 0 && static_cast<std::size_t>(thread) != t) {
      continue;
    }
    std::vector<FlightEvent> part = rings_[t]->snapshot();
    merged.insert(merged.end(), part.begin(), part.end());
  }
  if (kind != FlightKind::kNone) {
    merged.erase(std::remove_if(merged.begin(), merged.end(),
                                [kind](const FlightEvent& e) {
                                  return e.kind !=
                                         static_cast<std::uint16_t>(kind);
                                }),
                 merged.end());
  }
  std::sort(merged.begin(), merged.end(),
            [](const FlightEvent& a, const FlightEvent& b) {
              if (a.wall_ns != b.wall_ns) {
                return a.wall_ns < b.wall_ns;
              }
              if (a.thread != b.thread) {
                return a.thread < b.thread;
              }
              return a.seq < b.seq;
            });
  if (limit > 0 && merged.size() > limit) {
    merged.erase(merged.begin(),
                 merged.end() - static_cast<std::ptrdiff_t>(limit));
  }
  return merged;
}

HeartbeatHandle FlightRecorder::register_heartbeat(std::string_view name) {
  // Re-registration under an existing name (a pool worker re-resolving the
  // process default after it was cleared and restored) reuses its old slot
  // instead of burning a new one. Names are per-thread-unique, so no two
  // threads race to claim the same slot here.
  const std::size_t used = std::min(
      heartbeat_count_.load(std::memory_order_acquire), config_.max_heartbeats);
  for (std::size_t i = 0; i < used; ++i) {
    HeartbeatHandle::Slot& slot = heartbeats_[i];
    if (slot.ready.load(std::memory_order_acquire) != 0 &&
        name == slot.name) {
      slot.last_ns.store(now_ns(), std::memory_order_relaxed);
      slot.busy.store(0, std::memory_order_relaxed);
      return HeartbeatHandle{&slot};
    }
  }
  const std::size_t idx =
      heartbeat_count_.fetch_add(1, std::memory_order_relaxed);
  if (idx >= config_.max_heartbeats) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return HeartbeatHandle{};
  }
  HeartbeatHandle::Slot& slot = heartbeats_[idx];
  const std::size_t n = std::min(name.size(), sizeof(slot.name) - 1);
  std::memcpy(slot.name, name.data(), n);
  slot.name[n] = '\0';
  slot.last_ns.store(now_ns(), std::memory_order_relaxed);
  slot.busy.store(0, std::memory_order_relaxed);
  slot.ready.store(1, std::memory_order_release);
  return HeartbeatHandle{&slot};
}

std::vector<ThreadHealth> FlightRecorder::heartbeat_ages() const {
  const std::uint64_t now = now_ns();
  const std::size_t used = std::min(
      heartbeat_count_.load(std::memory_order_relaxed), config_.max_heartbeats);
  std::vector<ThreadHealth> out;
  out.reserve(used);
  for (std::size_t i = 0; i < used; ++i) {
    const HeartbeatHandle::Slot& slot = heartbeats_[i];
    if (slot.ready.load(std::memory_order_acquire) == 0) {
      continue;
    }
    ThreadHealth health;
    health.name = slot.name;
    const std::uint64_t last = slot.last_ns.load(std::memory_order_relaxed);
    health.age_seconds = now > last ? (now - last) * 1e-9 : 0.0;
    health.busy = slot.busy.load(std::memory_order_relaxed) != 0;
    health.stalled = slot.stalled.load(std::memory_order_relaxed) != 0;
    out.push_back(std::move(health));
  }
  return out;
}

void FlightRecorder::start_watchdog(std::string dump_path, SloMonitor* slo) {
  MFCP_CHECK(!watchdog_.joinable(),
             "flight: watchdog already running (stop it first)");
  dump_path_ = std::move(dump_path);
  watchdog_slo_ = slo;
  watchdog_stop_.store(false, std::memory_order_relaxed);
  watchdog_ = std::thread([this] { watchdog_loop(); });
}

void FlightRecorder::stop_watchdog() {
  if (!watchdog_.joinable()) {
    return;
  }
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_.store(true, std::memory_order_relaxed);
  }
  watchdog_cv_.notify_all();
  watchdog_.join();
}

void FlightRecorder::watchdog_loop() {
  const auto poll = std::chrono::duration<double>(
      std::max(config_.watchdog_poll_seconds, 1e-3));
  std::unique_lock<std::mutex> lock(watchdog_mutex_);
  while (!watchdog_stop_.load(std::memory_order_relaxed)) {
    watchdog_cv_.wait_for(lock, poll, [this] {
      return watchdog_stop_.load(std::memory_order_relaxed);
    });
    if (watchdog_stop_.load(std::memory_order_relaxed)) {
      return;
    }
    lock.unlock();
    watchdog_scan();
    lock.lock();
  }
}

void FlightRecorder::watchdog_scan() {
  const std::uint64_t now = now_ns();
  const auto budget_ns =
      static_cast<std::uint64_t>(config_.stall_budget_seconds * 1e9);
  const std::size_t used = std::min(
      heartbeat_count_.load(std::memory_order_relaxed), config_.max_heartbeats);
  for (std::size_t i = 0; i < used; ++i) {
    HeartbeatHandle::Slot& slot = heartbeats_[i];
    if (slot.ready.load(std::memory_order_acquire) == 0) {
      continue;
    }
    const std::uint64_t last = slot.last_ns.load(std::memory_order_relaxed);
    const bool busy = slot.busy.load(std::memory_order_relaxed) != 0;
    const std::uint64_t age = now > last ? now - last : 0;
    // Only a *busy* heartbeat can stall: a worker parked on its condition
    // variable beats idle() on the way in and is healthy at any age.
    const bool stalled_now = busy && age > budget_ns;
    const bool stalled_before =
        slot.stalled.load(std::memory_order_relaxed) != 0;
    if (stalled_now == stalled_before) {
      continue;
    }
    slot.stalled.store(stalled_now ? 1 : 0, std::memory_order_relaxed);
    if (stalled_now) {
      stalls_.fetch_add(1, std::memory_order_relaxed);
      if (stalls_metric_ != nullptr) {
        stalls_metric_->add(1);
      }
      record(FlightKind::kWatchdogStall, last_sim_hours(), i, age, budget_ns);
      if (!dump_path_.empty()) {
        dump_jsonl(dump_path_, "watchdog_stall");
      }
    }
    if (watchdog_slo_ != nullptr) {
      AlertTransition t;
      t.t_hours = last_sim_hours();
      t.sli = "watchdog_stall";
      t.firing = stalled_now;
      t.value = age * 1e-9;
      t.budget = config_.stall_budget_seconds;
      t.samples = stalls_.load(std::memory_order_relaxed);
      watchdog_slo_->report_transition(t);
    }
  }
}

void FlightRecorder::dump_jsonl(JsonlWriter& out,
                                std::string_view reason) const {
  out.field("record", std::string_view("flight_meta"))
      .field("reason", reason)
      .field("threads", static_cast<std::uint64_t>(threads_registered()))
      .field("ring_capacity",
             static_cast<std::uint64_t>(rings_[0]->capacity()))
      .field("events_total", events_total())
      .field("dropped_total", dropped_total())
      .field("watchdog_stalls_total", watchdog_stalls());
  out.end_record();
  for (const ThreadHealth& health : heartbeat_ages()) {
    out.field("record", std::string_view("heartbeat"))
        .field("name", std::string_view(health.name))
        .field("age_seconds", health.age_seconds)
        .field("busy", health.busy)
        .field("stalled", health.stalled);
    out.end_record();
  }
  const std::size_t used = threads_registered();
  for (std::size_t t = 0; t < used; ++t) {
    for (const FlightEvent& e : rings_[t]->snapshot()) {
      out.field("record", std::string_view("event"))
          .field("thread", static_cast<std::uint64_t>(e.thread))
          .field("seq", e.seq)
          .field("kind", to_string(static_cast<FlightKind>(e.kind)))
          .field("t_hours", e.sim_hours)
          .field("wall_ns", e.wall_ns)
          .field("a0", e.a0)
          .field("a1", e.a1)
          .field("a2", e.a2)
          .field("trace_id", e.trace_id);
      out.end_record();
    }
  }
  out.flush();
}

bool FlightRecorder::dump_jsonl(const std::string& path,
                                std::string_view reason) const {
  try {
    JsonlWriter out(path);
    dump_jsonl(out, reason);
    return true;
  } catch (...) {
    return false;
  }
}

bool FlightRecorder::write_crash_dump(int fd,
                                      int signal_number) const noexcept {
  const std::size_t ring_count = threads_registered();
  std::uint64_t header[8] = {};
  std::memcpy(&header[0], "MFCPFLT1", 8);
  header[1] = static_cast<std::uint64_t>(signal_number);
  header[2] = ring_count;
  header[3] = rings_[0]->capacity();
  header[4] = sizeof(FlightEvent);
  header[5] = events_.load(std::memory_order_relaxed);
  header[6] = dropped_.load(std::memory_order_relaxed);
  header[7] = stalls_.load(std::memory_order_relaxed);
  if (!support::write_all_fd(fd, header, sizeof(header))) {
    return false;
  }
  for (std::size_t i = 0; i < ring_count; ++i) {
    const std::uint64_t ring_header[2] = {i, rings_[i]->head()};
    if (!support::write_all_fd(fd, ring_header, sizeof(ring_header)) ||
        !support::write_all_fd(fd, rings_[i]->raw_slots(),
                               rings_[i]->raw_bytes())) {
      return false;
    }
  }
  return true;
}

std::uint64_t FlightRecorder::events_total() const noexcept {
  return events_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::dropped_total() const noexcept {
  return dropped_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::watchdog_stalls() const noexcept {
  return stalls_.load(std::memory_order_relaxed);
}

double FlightRecorder::last_sim_hours() const noexcept {
  return last_sim_hours_.load(std::memory_order_relaxed);
}

std::size_t FlightRecorder::threads_registered() const noexcept {
  return std::min(threads_.load(std::memory_order_relaxed),
                  config_.max_threads);
}

// -------------------------------------------------------- default recorder --

namespace {
std::atomic<FlightRecorder*> g_default_flight{nullptr};
std::atomic<std::uint64_t> g_default_flight_generation{0};
}  // namespace

FlightRecorder* default_flight() noexcept {
  return g_default_flight.load(std::memory_order_acquire);
}

std::uint64_t default_flight_generation() noexcept {
  return g_default_flight_generation.load(std::memory_order_acquire);
}

void set_default_flight(FlightRecorder* recorder) noexcept {
  // Generation first: a consumer that caches (pointer, generation) and
  // sees a stale generation re-resolves even when a successor recorder
  // happens to reuse the same address (heartbeat slots live in separate
  // allocations, so pointer equality alone is not "same recorder").
  g_default_flight_generation.fetch_add(1, std::memory_order_acq_rel);
  g_default_flight.store(recorder, std::memory_order_release);
}

// ------------------------------------------------------------ crash path --

namespace {

std::atomic<FlightRecorder*> g_crash_recorder{nullptr};
char g_crash_path[512] = {};

// Runs with the signal's default disposition already restored
// (SA_RESETHAND). Everything here is async-signal-safe: open/write/close
// plus pure buffer formatting — no allocation, no locks, no stdio (see
// DESIGN.md §12 for the full argument).
void flight_crash_handler(int sig) {
  FlightRecorder* recorder =
      g_crash_recorder.load(std::memory_order_relaxed);
  if (recorder != nullptr && g_crash_path[0] != '\0') {
    const int fd = support::open_trunc_fd(g_crash_path);
    if (fd >= 0) {
      recorder->write_crash_dump(fd, sig);
      support::close_fd(fd);
    }
    char line[600];
    std::size_t pos = 0;
    pos = support::append_literal(line, sizeof(line), pos, "flight: signal ");
    pos += support::format_u64_decimal(line + pos, sizeof(line) - pos,
                                       static_cast<std::uint64_t>(sig));
    pos = support::append_literal(line, sizeof(line), pos,
                                  ", crash dump written to ");
    pos = support::append_literal(line, sizeof(line), pos, g_crash_path);
    pos = support::append_literal(line, sizeof(line), pos, "\n");
    support::write_all_fd(2, line, pos);
  }
  // SA_NODEFER left `sig` unblocked, so re-raising delivers the (now
  // default) fatal action immediately: the process still dies with the
  // original signal, which is what CI's SIGSEGV smoke asserts.
  ::raise(sig);
}

}  // namespace

void install_crash_handlers(FlightRecorder* recorder, const char* path) {
  if (recorder == nullptr || path == nullptr || path[0] == '\0') {
    g_crash_recorder.store(nullptr, std::memory_order_release);
    return;
  }
  const std::size_t len = std::min(std::strlen(path), sizeof(g_crash_path) - 1);
  std::memcpy(g_crash_path, path, len);
  g_crash_path[len] = '\0';
  g_crash_recorder.store(recorder, std::memory_order_release);

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = flight_crash_handler;
  sigemptyset(&action.sa_mask);
  action.sa_flags = SA_RESETHAND | SA_NODEFER;
  const int signals[] = {SIGSEGV, SIGABRT, SIGBUS};
  for (const int sig : signals) {
    ::sigaction(sig, &action, nullptr);
  }
}

// ----------------------------------------------------------- debug routes --

FlightQuery parse_flight_query(std::string_view path) {
  FlightQuery query;
  const std::size_t qpos = path.find('?');
  if (qpos == std::string_view::npos) {
    return query;
  }
  std::string_view rest = path.substr(qpos + 1);
  while (!rest.empty() && query.valid) {
    const std::size_t amp = rest.find('&');
    const std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    rest = amp == std::string_view::npos ? std::string_view{}
                                         : rest.substr(amp + 1);
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos) {
      query.valid = false;
      break;
    }
    const std::string_view key = pair.substr(0, eq);
    const std::string_view value = pair.substr(eq + 1);
    if (value.empty()) {
      query.valid = false;
      break;
    }
    std::uint64_t number = 0;
    bool numeric = !value.empty();
    for (const char c : value) {
      if (c < '0' || c > '9') {
        numeric = false;
        break;
      }
      number = number * 10 + static_cast<std::uint64_t>(c - '0');
    }
    if (key == "thread") {
      if (!numeric || number > 0xFFFF) {
        query.valid = false;
      } else {
        query.thread = static_cast<int>(number);
      }
    } else if (key == "kind") {
      const auto kind = parse_flight_kind(value);
      if (!kind.has_value()) {
        query.valid = false;
      } else {
        query.kind = *kind;
      }
    } else if (key == "limit") {
      if (!numeric) {
        query.valid = false;
      } else {
        query.limit = static_cast<std::size_t>(number);
      }
    } else {
      query.valid = false;
    }
  }
  return query;
}

std::string flight_events_json(const FlightRecorder& recorder,
                               const FlightQuery& query) {
  const std::vector<FlightEvent> events =
      recorder.snapshot(query.thread, query.kind, query.limit);
  std::string out = "{\"events_total\":";
  out += std::to_string(recorder.events_total());
  out += ",\"dropped_total\":";
  out += std::to_string(recorder.dropped_total());
  out += ",\"count\":";
  out += std::to_string(events.size());
  out += ",\"events\":[";
  bool first = true;
  for (const FlightEvent& e : events) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"thread\":";
    out += std::to_string(e.thread);
    out += ",\"seq\":";
    out += std::to_string(e.seq);
    out += ",\"kind\":\"";
    out += to_string(static_cast<FlightKind>(e.kind));
    out += "\",\"t_hours\":";
    out += json_number(e.sim_hours);
    out += ",\"wall_ns\":";
    out += std::to_string(e.wall_ns);
    out += ",\"a0\":";
    out += std::to_string(e.a0);
    out += ",\"a1\":";
    out += std::to_string(e.a1);
    out += ",\"a2\":";
    out += std::to_string(e.a2);
    out += ",\"trace_id\":\"";
    out += e.trace_id == 0 ? std::string("0") : format_trace_id(e.trace_id);
    out += "\"}";
  }
  out += "]}\n";
  return out;
}

std::string flight_threads_json(const FlightRecorder& recorder) {
  std::string out = "{\"watchdog_stalls_total\":";
  out += std::to_string(recorder.watchdog_stalls());
  out += ",\"stall_budget_seconds\":";
  out += json_number(recorder.config().stall_budget_seconds);
  out += ",\"threads\":[";
  bool first = true;
  for (const ThreadHealth& health : recorder.heartbeat_ages()) {
    if (!first) {
      out += ',';
    }
    first = false;
    out += "{\"name\":\"";
    out += health.name;  // recorder-controlled identifiers, no escaping
    out += "\",\"age_seconds\":";
    out += json_number(health.age_seconds);
    out += ",\"busy\":";
    out += health.busy ? "true" : "false";
    out += ",\"stalled\":";
    out += health.stalled ? "true" : "false";
    out += '}';
  }
  out += "]}\n";
  return out;
}

// ---------------------------------------------------- FlightServerObserver --

namespace {
// One heartbeat per worker thread; TLS so request hooks are lock-free.
thread_local HeartbeatHandle t_server_beat;
}  // namespace

FlightServerObserver::FlightServerObserver(FlightRecorder* recorder,
                                           std::string name_prefix)
    : recorder_(recorder), prefix_(std::move(name_prefix)) {}

void FlightServerObserver::on_worker_start(std::size_t worker) {
  // HTTP workers are sampling targets too (a hot /metrics scrape or a
  // slow route shows up in profiles); registration is by process-wide
  // default so profiler-only setups reuse this observer with a null
  // recorder.
  if (SamplingProfiler* profiler = default_profiler()) {
    profiler->register_current_thread(prefix_ + "_worker_" +
                                      std::to_string(worker));
  }
  if (recorder_ == nullptr) {
    return;
  }
  t_server_beat = recorder_->register_heartbeat(prefix_ + "_worker_" +
                                                std::to_string(worker));
}

void FlightServerObserver::on_worker_idle(std::size_t) {
  t_server_beat.idle();
}

void FlightServerObserver::on_request_begin(std::size_t worker) {
  t_server_beat.beat();
  if (recorder_ != nullptr) {
    recorder_->record(FlightKind::kHttpBegin, recorder_->last_sim_hours(),
                      worker);
  }
}

void FlightServerObserver::on_request_end(std::size_t worker, int status,
                                          std::size_t response_bytes) {
  if (recorder_ != nullptr) {
    recorder_->record(FlightKind::kHttpEnd, recorder_->last_sim_hours(),
                      worker, static_cast<std::uint64_t>(status),
                      response_bytes);
  }
  t_server_beat.beat();
}

}  // namespace mfcp::obs
