#include "obs/build_info.hpp"

namespace mfcp::obs {

namespace {

#ifndef MFCP_GIT_SHA
#define MFCP_GIT_SHA "unknown"
#endif
#ifndef MFCP_BUILD_TYPE
#define MFCP_BUILD_TYPE "unknown"
#endif

constexpr const char* kSanitizers =
#if defined(__SANITIZE_ADDRESS__) && defined(__SANITIZE_THREAD__)
    "address,thread";
#elif defined(__SANITIZE_ADDRESS__)
#if defined(__SANITIZE_UNDEFINED__)
    "address,undefined";
#else
    // GCC defines no macro for UBSan; CI's sanitizer job always pairs
    // it with ASan, so report the pair whenever ASan is on.
    "address,undefined";
#endif
#elif defined(__SANITIZE_THREAD__)
    "thread";
#elif defined(__has_feature)
#if __has_feature(address_sanitizer)
    "address,undefined";
#elif __has_feature(thread_sanitizer)
    "thread";
#else
    "none";
#endif
#else
    "none";
#endif

}  // namespace

std::string_view build_git_sha() noexcept { return MFCP_GIT_SHA; }

std::string_view build_compiler() noexcept {
#if defined(__clang__)
  return "clang " __VERSION__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return __VERSION__;
#endif
}

std::string_view build_type() noexcept { return MFCP_BUILD_TYPE; }

std::string_view build_sanitizers() noexcept { return kSanitizers; }

std::string build_info_json() {
  // All four values are compile-time literals without quotes or control
  // characters, so plain concatenation stays valid JSON.
  std::string out = "{\"git_sha\":\"";
  out += build_git_sha();
  out += "\",\"compiler\":\"";
  out += build_compiler();
  out += "\",\"build_type\":\"";
  out += build_type();
  out += "\",\"sanitizers\":\"";
  out += build_sanitizers();
  out += "\"}\n";
  return out;
}

}  // namespace mfcp::obs
