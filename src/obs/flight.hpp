// Black-box flight recorder: per-thread lock-free event rings, a stall
// watchdog, and an async-signal-safe crash-dump path (FoundationDB-style
// always-on diagnostics).
//
// Recording model
//   Every thread that records gets its own fixed-capacity SPSC ring of
//   64-byte event slots. A slot is eight 64-bit words; the writer
//   invalidates the slot (seq word <- 0, relaxed), stores the payload
//   words relaxed, then publishes with a release store of the sequence
//   number — a per-slot seqlock. Readers (debug routes, the watchdog,
//   JSONL dumps) copy slots and keep only those whose seq word reads the
//   same valid value before and after the payload copy, so a concurrent
//   overwrite is detected, never blocked on. Recording is therefore a
//   handful of relaxed atomic stores plus one clock read: cheap enough to
//   leave on in production (<2% on bench/exp_online_engine, measured by
//   the bench's paired on/off run).
//
// Determinism
//   The recorder is write-only telemetry: nothing in the engine reads it
//   back, and wall-clock values live only in rings / `.flight` dumps —
//   never in the byte-compared round journal (CI runs the engine with
//   --flight and cmp's the journal against the baseline).
//
// Watchdog
//   Long-running loops (engine rounds, HTTP workers, pool workers)
//   register a heartbeat slot and beat() each iteration; blocking waits
//   are bracketed with idle() so an idle worker parked on a condition
//   variable never looks stalled. A background watchdog thread flags any
//   *busy* heartbeat older than the stall budget: it dumps every ring
//   plus all heartbeat ages to the configured `.flight` JSONL file and
//   reports a fire/resolve transition through the SLO monitor's alert
//   sink (same record shape as the burn-rate rules).
//
// Crash path
//   install_crash_handlers() arms SIGSEGV/SIGABRT/SIGBUS handlers that
//   write the raw ring memory to a pre-configured path using only
//   async-signal-safe calls (open/write — no malloc, no locks; see
//   support/signal_safe.hpp and DESIGN.md §12). The raw-POD dump is
//   decoded and validated by `tools/obs_selfcheck --flight`.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "net/http_server.hpp"
#include "obs/metrics.hpp"

namespace mfcp::obs {

class JsonlWriter;
class SloMonitor;

/// Closed set of recorded event kinds. Values are part of the on-disk
/// crash-dump format — append only, never renumber.
enum class FlightKind : std::uint16_t {
  kNone = 0,             // empty slot sentinel, never recorded
  kRoundBegin = 1,       // a0 round, a1 queue depth, a2 trigger ordinal
  kRoundEnd = 2,         // a0 round, a1 batch size, a2 dispatch failures
  kBatchFormed = 3,      // a0 round, a1 batch size, a2 queue depth after
  kSolverIters = 4,      // a0 round, a1 iterations, a2 batch size
  kAdmission = 5,        // a0 task id, a1 admitted(1)/shed(0), a2 reason
  kRateChange = 6,       // a0/a1 old/new rate (double bits), a2 signal
  kHttpBegin = 7,        // a0 worker ordinal
  kHttpEnd = 8,          // a0 worker ordinal, a1 status, a2 response bytes
  kQueueTransition = 9,  // a0 task id, a1 state ordinal, a2 queue depth
  kRetrain = 10,         // a0 round, a1 retrain_total, a2 drift flag
  kWatchdogStall = 11,   // a0 heartbeat ordinal, a1 age ns, a2 budget ns
};

/// Stable lower-snake name for a kind ("round_begin", ...); "none" for
/// the sentinel, "unknown" past the closed set.
[[nodiscard]] std::string_view to_string(FlightKind kind) noexcept;

/// Inverse of to_string; nullopt for unknown names (and for "none").
[[nodiscard]] std::optional<FlightKind> parse_flight_kind(
    std::string_view name) noexcept;

/// One decoded event. This plain POD is also the crash-dump wire format:
/// eight little-endian 64-bit words, sim_hours as IEEE-754 bits in word
/// 2, kind and thread packed into the low half of word 7.
struct FlightEvent {
  std::uint64_t seq = 0;      // per-thread, 1-based, strictly increasing
  std::uint64_t wall_ns = 0;  // steady clock, process-relative
  double sim_hours = 0.0;     // simulated time (0 outside the engine)
  std::uint64_t a0 = 0;
  std::uint64_t a1 = 0;
  std::uint64_t a2 = 0;
  std::uint64_t trace_id = 0;  // task trace correlation; 0 = untraced
  std::uint16_t kind = 0;      // FlightKind
  std::uint16_t thread = 0;    // recorder thread ordinal
  std::uint32_t reserved = 0;
};
static_assert(sizeof(FlightEvent) == 64, "event is one cache line");

/// Single-writer ring of event slots (public for tests; production code
/// records through FlightRecorder). Capacity is rounded up to a power of
/// two. record() must only ever be called from one thread; snapshot() is
/// safe from any thread concurrently with the writer.
class FlightRing {
 public:
  explicit FlightRing(std::size_t capacity);

  FlightRing(const FlightRing&) = delete;
  FlightRing& operator=(const FlightRing&) = delete;

  /// Records one event (seq is assigned internally; `event.seq` ignored).
  void record(FlightEvent event) noexcept;

  /// Events ever written (== the newest live sequence number).
  [[nodiscard]] std::uint64_t head() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Copies out the currently-valid window, oldest first. Slots the
  /// writer is overwriting mid-copy are detected via the seqlock and
  /// skipped, so the result is always a consistent (possibly gappy at the
  /// oldest edge) suffix of the stream.
  [[nodiscard]] std::vector<FlightEvent> snapshot() const;

  /// Raw slot memory for the crash path (capacity() * 64 bytes). The
  /// atomics inside are plain 64-bit words in memory; writing these bytes
  /// with write(2) is the crash-dump format.
  [[nodiscard]] const void* raw_slots() const noexcept {
    return slots_.get();
  }
  [[nodiscard]] std::size_t raw_bytes() const noexcept {
    return capacity() * sizeof(FlightEvent);
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> word[8];
  };
  static_assert(sizeof(Slot) == 64, "slot matches the wire format");

  std::size_t mask_;
  std::unique_ptr<Slot[]> slots_;
  std::atomic<std::uint64_t> head_{0};
};

/// Health view of one registered heartbeat.
struct ThreadHealth {
  std::string name;
  double age_seconds = 0.0;  // since the last beat()/idle()
  bool busy = false;         // between beat() and idle()
  bool stalled = false;      // watchdog currently flags this heartbeat
};

class FlightRecorder;

/// Cheap value handle to one heartbeat slot. beat() marks the thread busy
/// and refreshes the timestamp; idle() marks it parked (a blocked wait is
/// not a stall). Both are two relaxed atomic stores. An invalid handle
/// (default-constructed, or registration past max_heartbeats) no-ops.
/// The owning FlightRecorder must outlive every use.
class HeartbeatHandle {
 public:
  HeartbeatHandle() = default;

  void beat() noexcept;
  void idle() noexcept;
  [[nodiscard]] bool valid() const noexcept { return slot_ != nullptr; }

 private:
  friend class FlightRecorder;
  struct Slot;
  explicit HeartbeatHandle(Slot* slot) noexcept : slot_(slot) {}
  Slot* slot_ = nullptr;
};

struct FlightConfig {
  /// Events retained per thread (rounded up to a power of two).
  std::size_t ring_capacity = 1024;
  /// Threads that can register rings; later threads drop their events
  /// into `dropped_total` instead of silently aliasing a ring.
  std::size_t max_threads = 32;
  /// Heartbeat slots (long-running loops, not per-event threads).
  std::size_t max_heartbeats = 64;
  /// A busy heartbeat older than this is a stall.
  double stall_budget_seconds = 2.0;
  /// Watchdog wake-up cadence.
  double watchdog_poll_seconds = 0.25;
};

/// Parsed ?thread=&kind=&limit= filter of the GET /debug/flight route.
struct FlightQuery {
  int thread = -1;                       // -1 = all threads
  FlightKind kind = FlightKind::kNone;   // kNone = all kinds
  std::size_t limit = 256;               // newest N events
  bool valid = true;                     // false on a malformed filter
};

/// Parses the query-string suffix of a debug-route path ("/debug/flight"
/// or "/debug/flight?thread=2&kind=round_begin&limit=64"). Unknown keys
/// and malformed values flip `valid` so the route can answer 400.
[[nodiscard]] FlightQuery parse_flight_query(std::string_view path);

/// Process black box. Construction preallocates every ring (max_threads *
/// ring_capacity slots), so the crash path walks plain arrays and thread
/// registration is one fetch_add. All record/beat paths are lock-free;
/// snapshots and dumps are wait-free with respect to writers.
class FlightRecorder {
 public:
  explicit FlightRecorder(FlightConfig config = {});
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Records one event on the calling thread's ring (registered on first
  /// use). Threads past max_threads count into dropped_total instead.
  void record(FlightKind kind, double sim_hours, std::uint64_t a0 = 0,
              std::uint64_t a1 = 0, std::uint64_t a2 = 0,
              std::uint64_t trace_id = 0) noexcept;

  /// Registers the mfcp_flight_* counter families. Call before traffic;
  /// null detaches. (The internal lifetime counters always run.)
  void bind_metrics(MetricsRegistry* registry);

  /// Merged view across rings, oldest first (by wall_ns). `thread` -1
  /// means all threads; `kind` kNone means all kinds; `limit` 0 means
  /// unlimited, otherwise the newest `limit` events after filtering.
  [[nodiscard]] std::vector<FlightEvent> snapshot(
      int thread = -1, FlightKind kind = FlightKind::kNone,
      std::size_t limit = 0) const;

  /// Registers a named heartbeat for a long-running loop. Returns an
  /// invalid handle past max_heartbeats (counted into dropped_total).
  [[nodiscard]] HeartbeatHandle register_heartbeat(std::string_view name);

  /// Ages of every registered heartbeat, registration order.
  [[nodiscard]] std::vector<ThreadHealth> heartbeat_ages() const;

  /// Starts the watchdog thread. On a stall (busy heartbeat older than
  /// the budget) it records a kWatchdogStall event, rewrites `dump_path`
  /// with a full JSONL dump, and reports a "watchdog_stall" fire
  /// transition through `slo` (resolve when the heartbeat recovers);
  /// `slo` may be null to only dump. Idempotent restart is not supported:
  /// call stop_watchdog() first.
  void start_watchdog(std::string dump_path, SloMonitor* slo = nullptr);

  /// Stops and joins the watchdog (idempotent; also run by ~FlightRecorder).
  void stop_watchdog();

  /// Writes the meta record, heartbeat ages, and every ring's events
  /// (grouped per thread, seq ascending) as JSONL. The path overload
  /// truncates and returns false when the file cannot be opened.
  void dump_jsonl(JsonlWriter& out, std::string_view reason) const;
  bool dump_jsonl(const std::string& path, std::string_view reason) const;

  /// Async-signal-safe raw dump: file header + per-ring headers + raw
  /// slot bytes, written with write(2) only. Safe to call from a signal
  /// handler (and from tests). Returns false on a short write.
  bool write_crash_dump(int fd, int signal_number) const noexcept;

  [[nodiscard]] std::uint64_t events_total() const noexcept;
  [[nodiscard]] std::uint64_t dropped_total() const noexcept;
  [[nodiscard]] std::uint64_t watchdog_stalls() const noexcept;
  /// Most recent sim_hours any event carried (what non-engine layers
  /// stamp their events with).
  [[nodiscard]] double last_sim_hours() const noexcept;
  [[nodiscard]] std::size_t threads_registered() const noexcept;
  [[nodiscard]] const FlightConfig& config() const noexcept {
    return config_;
  }

 private:
  friend class HeartbeatHandle;

  FlightRing* ring_for_this_thread() noexcept;
  void watchdog_loop();
  void watchdog_scan();

  FlightConfig config_;
  /// Process-unique instance id; thread-local ring bindings are keyed on
  /// it so a recorder at a recycled address never inherits stale rings.
  std::uint64_t serial_;
  std::vector<std::unique_ptr<FlightRing>> rings_;  // fixed at construction
  std::atomic<std::size_t> threads_{0};

  std::unique_ptr<HeartbeatHandle::Slot[]> heartbeats_;
  std::atomic<std::size_t> heartbeat_count_{0};

  std::atomic<std::uint64_t> events_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<double> last_sim_hours_{0.0};

  Counter* events_metric_ = nullptr;   // bound before traffic, see
  Counter* dropped_metric_ = nullptr;  // bind_metrics()
  Counter* stalls_metric_ = nullptr;

  // Watchdog state (mutated only by start/stop + the watchdog thread).
  std::string dump_path_;
  SloMonitor* watchdog_slo_ = nullptr;
  std::thread watchdog_;
  std::atomic<bool> watchdog_stop_{false};
  mutable std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
};

/// Process-wide default recorder (same idiom as default_registry): layers
/// that are not worth plumbing a pointer through (thread pool, ratekeeper)
/// record here when set. Starts null. Clear it (and quiesce recording
/// threads) before destroying the recorder it points to.
[[nodiscard]] FlightRecorder* default_flight() noexcept;
void set_default_flight(FlightRecorder* recorder) noexcept;
/// Bumped on every set_default_flight(). Long-lived loops that cache the
/// resolved pointer (plus a heartbeat handle into it) compare generations
/// rather than pointers before reuse, so a successor recorder allocated
/// at a recycled address can never be mistaken for the one the handle
/// belongs to.
[[nodiscard]] std::uint64_t default_flight_generation() noexcept;

/// Arms the process-wide crash path: SIGSEGV/SIGABRT/SIGBUS handlers that
/// write `recorder`'s raw rings to `path` with only async-signal-safe
/// calls, then restore the default disposition and re-raise so the
/// process still dies with the original signal. `path` is copied into a
/// fixed static buffer (truncated past ~500 bytes). Passing null disarms
/// without touching signal dispositions.
void install_crash_handlers(FlightRecorder* recorder, const char* path);

/// JSON bodies of the debug routes, shared by the gateway and the
/// metrics exporter.
[[nodiscard]] std::string flight_events_json(const FlightRecorder& recorder,
                                             const FlightQuery& query);
[[nodiscard]] std::string flight_threads_json(const FlightRecorder& recorder);

/// net::ServerObserver adapter: per-worker heartbeats plus kHttpBegin /
/// kHttpEnd events on the recorder. Stateless per-request (worker
/// identity rides thread-locals), so one instance can serve a whole
/// HttpServer. The recorder must outlive the server.
class FlightServerObserver : public net::ServerObserver {
 public:
  FlightServerObserver(FlightRecorder* recorder, std::string name_prefix);

  void on_worker_start(std::size_t worker) override;
  void on_worker_idle(std::size_t worker) override;
  void on_request_begin(std::size_t worker) override;
  void on_request_end(std::size_t worker, int status,
                      std::size_t response_bytes) override;

 private:
  FlightRecorder* recorder_;
  std::string prefix_;
};

}  // namespace mfcp::obs
