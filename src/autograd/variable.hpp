// Reverse-mode automatic differentiation over dense matrices.
//
// A Variable is a shared handle to a tape node holding a value, an
// accumulated gradient, and a backward closure. Ops (see ops.hpp) build the
// graph as they compute; Variable::backward(seed) runs reverse accumulation
// in topological order.
//
// Two features matter for MFCP specifically:
//  - backward() accepts an arbitrary seed gradient, because the upstream
//    gradient dL/dt̂ arrives from *outside* the tape (the matching layer:
//    KKT implicit differentiation or zeroth-order estimation, paper Eq. 7);
//  - gradients accumulate across multiple backward passes until zero_grad(),
//    so the alternating ω / φ updates can reuse one forward graph.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "linalg/matrix.hpp"

namespace mfcp::autograd {

struct Node {
  Matrix value;
  Matrix grad;  // same shape as value once backward touches this node
  bool requires_grad = false;
  std::vector<std::shared_ptr<Node>> parents;
  // Propagates this node's grad into parents' grads. Null for leaves.
  std::function<void(const Node&)> backward_fn;

  /// Adds g into grad, allocating a zero gradient on first touch.
  void accumulate(const Matrix& g);
};

class Variable {
 public:
  /// Wraps a value as a leaf. `requires_grad` marks trainable parameters.
  explicit Variable(Matrix value, bool requires_grad = false);

  /// Internal: wraps an existing node (used by ops).
  explicit Variable(std::shared_ptr<Node> node) : node_(std::move(node)) {}

  [[nodiscard]] const Matrix& value() const noexcept { return node_->value; }

  /// Mutable access to the value of a *leaf* (for optimizer updates).
  [[nodiscard]] Matrix& mutable_value();

  /// Accumulated gradient. Zero-shaped until backward reaches this node.
  [[nodiscard]] const Matrix& grad() const noexcept { return node_->grad; }

  [[nodiscard]] bool requires_grad() const noexcept {
    return node_->requires_grad;
  }

  [[nodiscard]] std::size_t rows() const noexcept {
    return node_->value.rows();
  }
  [[nodiscard]] std::size_t cols() const noexcept {
    return node_->value.cols();
  }

  /// Clears the gradient of this node only.
  void zero_grad();

  /// Reverse pass from this node seeded with dOut = ones (requires a 1x1
  /// scalar output; use the seeded overload otherwise).
  void backward();

  /// Reverse pass seeded with an explicit upstream gradient dL/d(this).
  void backward(const Matrix& seed);

  [[nodiscard]] const std::shared_ptr<Node>& node() const noexcept {
    return node_;
  }

 private:
  std::shared_ptr<Node> node_;
};

/// Zeroes gradients of every node reachable from `root` (leaves included).
void zero_grad_graph(const Variable& root);

}  // namespace mfcp::autograd
