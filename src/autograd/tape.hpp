// Reverse-accumulation driver: topological ordering of the dynamic graph.
#pragma once

#include <memory>
#include <vector>

#include "autograd/variable.hpp"

namespace mfcp::autograd {

/// Nodes reachable from `root`, parents-before-children
/// (i.e. reverse iteration visits each node before its parents).
std::vector<std::shared_ptr<Node>> topological_order(
    const std::shared_ptr<Node>& root);

/// Runs reverse accumulation from `root` whose grad must already be seeded.
void run_backward(const std::shared_ptr<Node>& root);

}  // namespace mfcp::autograd
