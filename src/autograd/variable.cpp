#include "autograd/variable.hpp"

#include "autograd/tape.hpp"
#include "support/check.hpp"

namespace mfcp::autograd {

void Node::accumulate(const Matrix& g) {
  if (grad.empty()) {
    grad = Matrix::zeros(value.rows(), value.cols());
  }
  MFCP_CHECK(grad.same_shape(g), "gradient shape mismatch");
  grad += g;
}

Variable::Variable(Matrix value, bool requires_grad)
    : node_(std::make_shared<Node>()) {
  node_->value = std::move(value);
  node_->requires_grad = requires_grad;
}

Matrix& Variable::mutable_value() {
  MFCP_CHECK(node_->parents.empty(),
             "only leaf values may be mutated (optimizer updates)");
  return node_->value;
}

void Variable::zero_grad() { node_->grad = Matrix(); }

void Variable::backward() {
  MFCP_CHECK(node_->value.size() == 1,
             "seedless backward requires a scalar output");
  backward(Matrix::ones(node_->value.rows(), node_->value.cols()));
}

void Variable::backward(const Matrix& seed) {
  MFCP_CHECK(seed.same_shape(node_->value),
             "backward seed must match output shape");
  node_->accumulate(seed);
  run_backward(node_);
}

void zero_grad_graph(const Variable& root) {
  for (const auto& node : topological_order(root.node())) {
    node->grad = Matrix();
  }
}

}  // namespace mfcp::autograd
