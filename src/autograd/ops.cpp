#include "autograd/ops.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "support/check.hpp"

namespace mfcp::autograd {

namespace {

/// Creates a result node wired to its parents.
std::shared_ptr<Node> make_node(Matrix value,
                                std::vector<std::shared_ptr<Node>> parents) {
  auto node = std::make_shared<Node>();
  node->value = std::move(value);
  node->parents = std::move(parents);
  for (const auto& p : node->parents) {
    node->requires_grad = node->requires_grad || p->requires_grad;
  }
  return node;
}

}  // namespace

Variable add(const Variable& a, const Variable& b) {
  MFCP_CHECK(a.value().same_shape(b.value()), "add: shape mismatch");
  auto node = make_node(a.value() + b.value(), {a.node(), b.node()});
  node->backward_fn = [](const Node& n) {
    n.parents[0]->accumulate(n.grad);
    n.parents[1]->accumulate(n.grad);
  };
  return Variable(node);
}

Variable sub(const Variable& a, const Variable& b) {
  MFCP_CHECK(a.value().same_shape(b.value()), "sub: shape mismatch");
  auto node = make_node(a.value() - b.value(), {a.node(), b.node()});
  node->backward_fn = [](const Node& n) {
    n.parents[0]->accumulate(n.grad);
    n.parents[1]->accumulate(n.grad * -1.0);
  };
  return Variable(node);
}

Variable mul(const Variable& a, const Variable& b) {
  MFCP_CHECK(a.value().same_shape(b.value()), "mul: shape mismatch");
  auto node = make_node(hadamard(a.value(), b.value()), {a.node(), b.node()});
  node->backward_fn = [](const Node& n) {
    n.parents[0]->accumulate(hadamard(n.grad, n.parents[1]->value));
    n.parents[1]->accumulate(hadamard(n.grad, n.parents[0]->value));
  };
  return Variable(node);
}

Variable scale(const Variable& a, double s) {
  auto node = make_node(a.value() * s, {a.node()});
  node->backward_fn = [s](const Node& n) {
    n.parents[0]->accumulate(n.grad * s);
  };
  return Variable(node);
}

Variable matmul(const Variable& a, const Variable& b) {
  auto node = make_node(mfcp::matmul(a.value(), b.value()),
                        {a.node(), b.node()});
  node->backward_fn = [](const Node& n) {
    // dA = G B^T, dB = A^T G.
    n.parents[0]->accumulate(matmul_nt(n.grad, n.parents[1]->value));
    n.parents[1]->accumulate(matmul_tn(n.parents[0]->value, n.grad));
  };
  return Variable(node);
}

Variable transpose(const Variable& a) {
  auto node = make_node(a.value().transposed(), {a.node()});
  node->backward_fn = [](const Node& n) {
    n.parents[0]->accumulate(n.grad.transposed());
  };
  return Variable(node);
}

Variable add_row_broadcast(const Variable& a, const Variable& bias) {
  MFCP_CHECK(bias.rows() == 1 && bias.cols() == a.cols(),
             "bias must be 1 x cols(a)");
  Matrix out = a.value();
  for (std::size_t r = 0; r < out.rows(); ++r) {
    for (std::size_t c = 0; c < out.cols(); ++c) {
      out(r, c) += bias.value()(0, c);
    }
  }
  auto node = make_node(std::move(out), {a.node(), bias.node()});
  node->backward_fn = [](const Node& n) {
    n.parents[0]->accumulate(n.grad);
    Matrix gb(1, n.grad.cols(), 0.0);
    for (std::size_t r = 0; r < n.grad.rows(); ++r) {
      for (std::size_t c = 0; c < n.grad.cols(); ++c) {
        gb(0, c) += n.grad(r, c);
      }
    }
    n.parents[1]->accumulate(gb);
  };
  return Variable(node);
}

Variable relu(const Variable& a) {
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::max(0.0, out[i]);
  }
  auto node = make_node(std::move(out), {a.node()});
  node->backward_fn = [](const Node& n) {
    Matrix g = n.grad;
    const Matrix& x = n.parents[0]->value;
    for (std::size_t i = 0; i < g.size(); ++i) {
      if (x[i] <= 0.0) {
        g[i] = 0.0;
      }
    }
    n.parents[0]->accumulate(g);
  };
  return Variable(node);
}

Variable tanh_op(const Variable& a) {
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = std::tanh(out[i]);
  }
  auto node = make_node(std::move(out), {a.node()});
  node->backward_fn = [](const Node& n) {
    Matrix g = n.grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double y = n.value[i];
      g[i] *= 1.0 - y * y;
    }
    n.parents[0]->accumulate(g);
  };
  return Variable(node);
}

Variable sigmoid(const Variable& a) {
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double x = out[i];
    out[i] = x >= 0.0 ? 1.0 / (1.0 + std::exp(-x))
                      : std::exp(x) / (1.0 + std::exp(x));
  }
  auto node = make_node(std::move(out), {a.node()});
  node->backward_fn = [](const Node& n) {
    Matrix g = n.grad;
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double y = n.value[i];
      g[i] *= y * (1.0 - y);
    }
    n.parents[0]->accumulate(g);
  };
  return Variable(node);
}

Variable softplus(const Variable& a) {
  Matrix out = a.value();
  for (std::size_t i = 0; i < out.size(); ++i) {
    const double x = out[i];
    // Stable: softplus(x) = max(x, 0) + log1p(exp(-|x|)).
    out[i] = std::max(x, 0.0) + std::log1p(std::exp(-std::abs(x)));
  }
  auto node = make_node(std::move(out), {a.node()});
  node->backward_fn = [](const Node& n) {
    Matrix g = n.grad;
    const Matrix& x = n.parents[0]->value;
    for (std::size_t i = 0; i < g.size(); ++i) {
      const double v = x[i];
      const double s = v >= 0.0 ? 1.0 / (1.0 + std::exp(-v))
                                : std::exp(v) / (1.0 + std::exp(v));
      g[i] *= s;
    }
    n.parents[0]->accumulate(g);
  };
  return Variable(node);
}

Variable logsumexp(const Variable& a, double beta) {
  MFCP_CHECK(!a.value().empty(), "logsumexp of empty variable");
  MFCP_CHECK(beta > 0.0, "logsumexp requires beta > 0");
  const Matrix& x = a.value();
  double mx = x[0];
  for (std::size_t i = 1; i < x.size(); ++i) {
    mx = std::max(mx, x[i]);
  }
  double total = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    total += std::exp(beta * (x[i] - mx));
  }
  Matrix out(1, 1, mx + std::log(total) / beta);
  auto node = make_node(std::move(out), {a.node()});
  node->backward_fn = [beta, mx, total](const Node& n) {
    // d/dx_i = softmax(beta x)_i.
    const Matrix& x_val = n.parents[0]->value;
    Matrix g(x_val.rows(), x_val.cols());
    for (std::size_t i = 0; i < g.size(); ++i) {
      g[i] = n.grad[0] * std::exp(beta * (x_val[i] - mx)) / total;
    }
    n.parents[0]->accumulate(g);
  };
  return Variable(node);
}

Variable sum_all(const Variable& a) {
  Matrix out(1, 1, 0.0);
  for (std::size_t i = 0; i < a.value().size(); ++i) {
    out[0] += a.value()[i];
  }
  auto node = make_node(std::move(out), {a.node()});
  node->backward_fn = [](const Node& n) {
    const auto& p = n.parents[0];
    n.parents[0]->accumulate(
        Matrix(p->value.rows(), p->value.cols(), n.grad[0]));
  };
  return Variable(node);
}

Variable mean_all(const Variable& a) {
  MFCP_CHECK(!a.value().empty(), "mean of empty variable");
  return scale(sum_all(a), 1.0 / static_cast<double>(a.value().size()));
}

Variable mse_loss(const Variable& pred, const Matrix& target) {
  MFCP_CHECK(pred.value().same_shape(target), "mse: shape mismatch");
  const std::size_t n = target.size();
  Matrix out(1, 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double d = pred.value()[i] - target[i];
    out[0] += d * d;
  }
  out[0] /= static_cast<double>(n);
  auto node = make_node(std::move(out), {pred.node()});
  node->backward_fn = [target, n](const Node& nd) {
    Matrix g(target.rows(), target.cols());
    const double c = 2.0 / static_cast<double>(n) * nd.grad[0];
    for (std::size_t i = 0; i < n; ++i) {
      g[i] = c * (nd.parents[0]->value[i] - target[i]);
    }
    nd.parents[0]->accumulate(g);
  };
  return Variable(node);
}

}  // namespace mfcp::autograd
