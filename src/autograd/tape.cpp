#include "autograd/tape.hpp"

#include <unordered_set>

namespace mfcp::autograd {

namespace {

void visit(const std::shared_ptr<Node>& node,
           std::unordered_set<const Node*>& seen,
           std::vector<std::shared_ptr<Node>>& order) {
  if (!node || seen.contains(node.get())) {
    return;
  }
  seen.insert(node.get());
  for (const auto& parent : node->parents) {
    visit(parent, seen, order);
  }
  order.push_back(node);
}

}  // namespace

std::vector<std::shared_ptr<Node>> topological_order(
    const std::shared_ptr<Node>& root) {
  std::unordered_set<const Node*> seen;
  std::vector<std::shared_ptr<Node>> order;
  visit(root, seen, order);
  return order;
}

void run_backward(const std::shared_ptr<Node>& root) {
  const auto order = topological_order(root);
  // Reverse topological order: every node's grad is complete before its
  // backward_fn distributes it to parents.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    Node& node = **it;
    if (node.backward_fn && !node.grad.empty()) {
      node.backward_fn(node);
    }
  }
}

}  // namespace mfcp::autograd
