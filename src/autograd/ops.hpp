// Differentiable operations over Variables.
//
// Every op computes its value eagerly and registers a backward closure on
// the result node. Gradient correctness for each op is verified against
// central finite differences in tests/autograd_test.cpp.
#pragma once

#include "autograd/variable.hpp"

namespace mfcp::autograd {

/// Element-wise sum; shapes must match.
Variable add(const Variable& a, const Variable& b);

/// Element-wise difference.
Variable sub(const Variable& a, const Variable& b);

/// Element-wise (Hadamard) product.
Variable mul(const Variable& a, const Variable& b);

/// Scalar multiple.
Variable scale(const Variable& a, double s);

/// Matrix product a (m x k) times b (k x n).
Variable matmul(const Variable& a, const Variable& b);

/// Transpose.
Variable transpose(const Variable& a);

/// Broadcast add of a row vector: a (B x n) + bias (1 x n), applied to
/// every row. This is the Linear-layer bias.
Variable add_row_broadcast(const Variable& a, const Variable& bias);

/// Rectified linear unit, element-wise.
Variable relu(const Variable& a);

/// Hyperbolic tangent, element-wise.
Variable tanh_op(const Variable& a);

/// Logistic sigmoid, element-wise (used by the reliability head to keep
/// â in (0, 1)).
Variable sigmoid(const Variable& a);

/// softplus(x) = log(1 + e^x), element-wise (used by the execution-time
/// head to keep t̂ positive).
Variable softplus(const Variable& a);

/// Numerically stable log(sum(exp(beta * a))) / beta over all elements
/// -> 1x1. The differentiable smooth-max of Eq. 8 for callers that want
/// the smoothed objective inside an autograd graph.
Variable logsumexp(const Variable& a, double beta);

/// Sum of all elements -> 1x1.
Variable sum_all(const Variable& a);

/// Mean of all elements -> 1x1.
Variable mean_all(const Variable& a);

/// Mean squared error against a constant target -> 1x1 (paper Eq. 1).
Variable mse_loss(const Variable& pred, const Matrix& target);

}  // namespace mfcp::autograd
