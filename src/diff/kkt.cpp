#include "diff/kkt.hpp"

#include "linalg/lu.hpp"
#include "support/check.hpp"

namespace mfcp::diff {

namespace {

/// Entries closer than this to the box boundary are treated as *active*:
/// their multipliers are nonzero, their sensitivity is (exponentially)
/// negligible, and keeping them in the reduced system would make it
/// numerically singular. This is standard active-set implicit
/// differentiation.
constexpr double kActiveTol = 1e-7;

/// Index sets for the active-set reduction of the KKT system.
struct FreeSet {
  std::vector<std::size_t> free_vars;   // flattened indices of free x_ij
  std::vector<std::size_t> free_tasks;  // task columns with >= 2 free vars
  std::vector<std::ptrdiff_t> var_pos;  // flat index -> position or -1
};

FreeSet build_free_set(const Matrix& xstar) {
  const std::size_t m = xstar.rows();
  const std::size_t n = xstar.cols();
  FreeSet fs;
  fs.var_pos.assign(m * n, -1);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<std::size_t> column_free;
    for (std::size_t i = 0; i < m; ++i) {
      const double v = xstar(i, j);
      if (v > kActiveTol && v < 1.0 - kActiveTol) {
        column_free.push_back(i * n + j);
      }
    }
    // A column with fewer than two free entries is fully determined (one
    // free entry is pinned by the simplex equality): drop it entirely.
    if (column_free.size() >= 2) {
      fs.free_tasks.push_back(j);
      for (std::size_t k : column_free) {
        fs.var_pos[k] = static_cast<std::ptrdiff_t>(fs.free_vars.size());
        fs.free_vars.push_back(k);
      }
    }
  }
  return fs;
}

/// Assembles the reduced KKT matrix over the free set with a small
/// Tikhonov term (H is PSD, not always PD, on the free subspace).
Matrix assemble_reduced_kkt(const Matrix& hxx, const FreeSet& fs,
                            std::size_t n) {
  const std::size_t nf = fs.free_vars.size();
  const std::size_t ne = fs.free_tasks.size();
  Matrix k(nf + ne, nf + ne, 0.0);
  for (std::size_t r = 0; r < nf; ++r) {
    for (std::size_t c = 0; c < nf; ++c) {
      k(r, c) = hxx(fs.free_vars[r], fs.free_vars[c]);
    }
    k(r, r) += 1e-10;
  }
  for (std::size_t e = 0; e < ne; ++e) {
    const std::size_t task = fs.free_tasks[e];
    for (std::size_t r = 0; r < nf; ++r) {
      if (fs.free_vars[r] % n == task) {
        k(nf + e, r) = 1.0;
        k(r, nf + e) = 1.0;
      }
    }
  }
  return k;
}

}  // namespace

Matrix equality_jacobian(std::size_t num_clusters, std::size_t num_tasks) {
  Matrix d(num_tasks, num_clusters * num_tasks, 0.0);
  for (std::size_t j = 0; j < num_tasks; ++j) {
    for (std::size_t i = 0; i < num_clusters; ++i) {
      d(j, i * num_tasks + j) = 1.0;
    }
  }
  return d;
}

KktJacobians kkt_full_jacobians(
    const matching::KktDifferentiableObjective& objective,
    const Matrix& xstar) {
  const std::size_t m = objective.num_clusters();
  const std::size_t n = objective.num_tasks();
  const std::size_t mn = m * n;
  MFCP_CHECK(xstar.rows() == m && xstar.cols() == n, "X* shape mismatch");

  KktJacobians out;
  out.dx_dt = Matrix::zeros(mn, mn);
  out.dx_da = Matrix::zeros(mn, mn);

  const FreeSet fs = build_free_set(xstar);
  if (fs.free_vars.empty()) {
    return out;  // fully saturated solution: zero sensitivity everywhere
  }
  const std::size_t nf = fs.free_vars.size();
  const std::size_t ne = fs.free_tasks.size();

  const Matrix hxx = objective.hess_xx(xstar);
  const Matrix hxt = objective.hess_xt(xstar);
  const Matrix hxa = objective.hess_xa(xstar);
  const LuFactorization kkt(assemble_reduced_kkt(hxx, fs, n));

  // RHS per parameter s: [-hess_x?(free rows, s); 0].
  Matrix rhs_t(nf + ne, mn, 0.0);
  Matrix rhs_a(nf + ne, mn, 0.0);
  for (std::size_t r = 0; r < nf; ++r) {
    for (std::size_t s = 0; s < mn; ++s) {
      rhs_t(r, s) = -hxt(fs.free_vars[r], s);
      rhs_a(r, s) = -hxa(fs.free_vars[r], s);
    }
  }
  const Matrix sol_t = kkt.solve_multi(rhs_t);
  const Matrix sol_a = kkt.solve_multi(rhs_a);
  for (std::size_t r = 0; r < nf; ++r) {
    for (std::size_t s = 0; s < mn; ++s) {
      out.dx_dt(fs.free_vars[r], s) = sol_t(r, s);
      out.dx_da(fs.free_vars[r], s) = sol_a(r, s);
    }
  }
  return out;
}

KktVjp kkt_vjp(const matching::KktDifferentiableObjective& objective,
               const Matrix& xstar, const Matrix& upstream) {
  const std::size_t m = objective.num_clusters();
  const std::size_t n = objective.num_tasks();
  const std::size_t mn = m * n;
  MFCP_CHECK(upstream.rows() == m && upstream.cols() == n,
             "upstream gradient shape mismatch");

  KktVjp out;
  out.grad_t = Matrix::zeros(m, n);
  out.grad_a = Matrix::zeros(m, n);

  const FreeSet fs = build_free_set(xstar);
  if (fs.free_vars.empty()) {
    return out;
  }
  const std::size_t nf = fs.free_vars.size();
  const std::size_t ne = fs.free_tasks.size();

  const Matrix hxx = objective.hess_xx(xstar);
  const Matrix hxt = objective.hess_xt(xstar);
  const Matrix hxa = objective.hess_xa(xstar);

  // The reduced KKT matrix is symmetric: one adjoint solve K z = [g_f; 0]
  // yields dL/dθ = -B_θ(free rows)^T z_x for both parameter blocks.
  const LuFactorization kkt(assemble_reduced_kkt(hxx, fs, n));
  Matrix rhs(nf + ne, 1, 0.0);
  for (std::size_t r = 0; r < nf; ++r) {
    rhs[r] = upstream[fs.free_vars[r]];
  }
  const Matrix z = kkt.solve(rhs);

  for (std::size_t s = 0; s < mn; ++s) {
    double acc_t = 0.0;
    double acc_a = 0.0;
    for (std::size_t r = 0; r < nf; ++r) {
      acc_t += hxt(fs.free_vars[r], s) * z[r];
      acc_a += hxa(fs.free_vars[r], s) * z[r];
    }
    out.grad_t[s] = -acc_t;
    out.grad_a[s] = -acc_a;
  }
  return out;
}

}  // namespace mfcp::diff
