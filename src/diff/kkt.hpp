// Analytical differentiation of the optimal matching (MFCP-AD, paper §3.3).
//
// At an interior stationary point X* of the barrier problem (10), the KKT
// conditions reduce to
//     ∇_X F(X*, T, A) + D^T ν = 0,      D X* = 1_N,
// because the box multipliers μ¹, μ² vanish strictly inside [0,1]^{MN}
// (the simplex solvers keep iterates interior). Total differentiation —
// paper Eq. (15) with the μ rows eliminated — gives the linear system
//     [ H   D^T ] [ dX ]     [ ∇²_XT F dT + ∇²_XA F dA ]
//     [ D   0   ] [ dν ]  = -[ 0                        ]
// whose solution yields the Jacobians dX*/dT and dX*/dA, or — via one
// adjoint solve — the vector-Jacobian products needed for backprop (Eq. 7).
#pragma once

#include "matching/smooth_objective.hpp"

namespace mfcp::diff {

struct KktJacobians {
  Matrix dx_dt;  // MN x MN: d vec(X*) / d vec(T)
  Matrix dx_da;  // MN x MN: d vec(X*) / d vec(A)
};

/// Full Jacobians by multi-RHS solve of the reduced KKT system at `xstar`
/// (which must be the converged interior optimum of `objective`).
KktJacobians kkt_full_jacobians(const matching::KktDifferentiableObjective& objective,
                                const Matrix& xstar);

struct KktVjp {
  Matrix grad_t;  // M x N: dL/dT given upstream dL/dX
  Matrix grad_a;  // M x N: dL/dA
};

/// Adjoint (vector-Jacobian product) path: one KKT solve instead of 2·MN.
/// `upstream` is dL/dX* (M x N). Mathematically identical to multiplying
/// the full Jacobians by the upstream gradient (property-tested).
KktVjp kkt_vjp(const matching::KktDifferentiableObjective& objective,
               const Matrix& xstar, const Matrix& upstream);

/// The equality-constraint Jacobian D (N x MN): D(j, i*N + j) = 1 — every
/// task's assignment weights sum to one. Exposed for tests.
Matrix equality_jacobian(std::size_t num_clusters, std::size_t num_tasks);

}  // namespace mfcp::diff
