#include "diff/zeroth_order.hpp"

#include <cmath>

#include "linalg/vector_ops.hpp"
#include "parallel/parallel_for.hpp"
#include "support/check.hpp"

namespace mfcp::diff {

double optimal_delta(double sigma_f, double beta, std::size_t samples) {
  MFCP_CHECK(sigma_f > 0.0 && beta > 0.0 && samples > 0,
             "optimal_delta needs positive inputs");
  return std::pow(2.0 * sigma_f * sigma_f /
                      (beta * beta * static_cast<double>(samples)),
                  0.25);
}

namespace {

/// One perturbation sample: the Gaussian directions for t̂_i and â_i.
struct Sample {
  std::vector<double> vt;
  std::vector<double> va;
};

std::vector<Sample> draw_samples(std::size_t count, std::size_t dim,
                                 Rng& rng) {
  std::vector<Sample> samples(count);
  for (auto& s : samples) {
    s.vt.resize(dim);
    s.va.resize(dim);
    for (std::size_t k = 0; k < dim; ++k) {
      s.vt[k] = rng.normal();
    }
    for (std::size_t k = 0; k < dim; ++k) {
      s.va[k] = rng.normal();
    }
  }
  return samples;
}

/// Runs body(s) for all sample indices, on the pool when provided.
template <typename Body>
void for_samples(std::size_t count, ThreadPool* pool, Body&& body) {
  if (pool != nullptr) {
    parallel_for(*pool, count, body);
  } else {
    for (std::size_t s = 0; s < count; ++s) {
      body(s);
    }
  }
}

}  // namespace

RowGradients estimate_row_gradients(const MatchingSolver& solver,
                                    const Matrix& t_hat, const Matrix& a_hat,
                                    const Matrix& x_base, std::size_t row,
                                    const Matrix& upstream,
                                    const ForwardGradientConfig& config,
                                    Rng& rng, ThreadPool* pool) {
  MFCP_CHECK(t_hat.same_shape(a_hat), "T and A must both be M x N");
  MFCP_CHECK(x_base.same_shape(t_hat), "X base shape mismatch");
  MFCP_CHECK(upstream.same_shape(t_hat), "upstream gradient shape mismatch");
  MFCP_CHECK(row < t_hat.rows(), "row index out of range");
  MFCP_CHECK(config.samples > 0, "need at least one sample");
  MFCP_CHECK(config.delta > 0.0, "perturbation size must be positive");

  const std::size_t n = t_hat.cols();
  const auto samples = draw_samples(config.samples, n, rng);

  // Directional coefficients <dL/dX, (X^s - X)/Δ>, one per perturbed solve.
  std::vector<double> coeff_t(config.samples, 0.0);
  std::vector<double> coeff_a(config.samples, 0.0);

  for_samples(config.samples, pool, [&](std::size_t s) {
    Matrix t_pert = t_hat;  // lines 6-7 of Algorithm 2
    for (std::size_t j = 0; j < n; ++j) {
      t_pert(row, j) += config.delta * samples[s].vt[j];
    }
    const Matrix x_t = solver(t_pert, a_hat);  // line 8
    coeff_t[s] = (dot(upstream, x_t) - dot(upstream, x_base)) / config.delta;

    Matrix a_pert = a_hat;
    for (std::size_t j = 0; j < n; ++j) {
      a_pert(row, j) += config.delta * samples[s].va[j];
    }
    const Matrix x_a = solver(t_hat, a_pert);
    coeff_a[s] = (dot(upstream, x_a) - dot(upstream, x_base)) / config.delta;
  });

  // Lines 9-11: aggregate directional derivatives into the row gradient.
  RowGradients out;
  out.dt.assign(n, 0.0);
  out.da.assign(n, 0.0);
  const double inv_s = 1.0 / static_cast<double>(config.samples);
  for (std::size_t s = 0; s < config.samples; ++s) {
    for (std::size_t j = 0; j < n; ++j) {
      out.dt[j] += inv_s * coeff_t[s] * samples[s].vt[j];
      out.da[j] += inv_s * coeff_a[s] * samples[s].va[j];
    }
  }
  return out;
}

FullGradients estimate_full_gradients(const MatchingSolver& solver,
                                      const Matrix& t_hat,
                                      const Matrix& a_hat,
                                      const Matrix& x_base,
                                      const Matrix& upstream,
                                      const ForwardGradientConfig& config,
                                      Rng& rng, ThreadPool* pool) {
  MFCP_CHECK(t_hat.same_shape(a_hat), "T and A must both be M x N");
  MFCP_CHECK(x_base.same_shape(t_hat), "X base shape mismatch");
  MFCP_CHECK(upstream.same_shape(t_hat), "upstream gradient shape mismatch");
  MFCP_CHECK(config.samples > 0, "need at least one sample");
  MFCP_CHECK(config.delta > 0.0, "perturbation size must be positive");

  const std::size_t mn = t_hat.size();
  const auto samples = draw_samples(config.samples, mn, rng);

  std::vector<double> coeff_t(config.samples, 0.0);
  std::vector<double> coeff_a(config.samples, 0.0);

  for_samples(config.samples, pool, [&](std::size_t s) {
    Matrix t_pert = t_hat;
    for (std::size_t k = 0; k < mn; ++k) {
      t_pert[k] += config.delta * samples[s].vt[k];
    }
    const Matrix x_t = solver(t_pert, a_hat);
    coeff_t[s] = (dot(upstream, x_t) - dot(upstream, x_base)) / config.delta;

    Matrix a_pert = a_hat;
    for (std::size_t k = 0; k < mn; ++k) {
      a_pert[k] += config.delta * samples[s].va[k];
    }
    const Matrix x_a = solver(t_hat, a_pert);
    coeff_a[s] = (dot(upstream, x_a) - dot(upstream, x_base)) / config.delta;
  });

  FullGradients out;
  out.dt = Matrix::zeros(t_hat.rows(), t_hat.cols());
  out.da = Matrix::zeros(t_hat.rows(), t_hat.cols());
  const double inv_s = 1.0 / static_cast<double>(config.samples);
  for (std::size_t s = 0; s < config.samples; ++s) {
    for (std::size_t k = 0; k < mn; ++k) {
      out.dt[k] += inv_s * coeff_t[s] * samples[s].vt[k];
      out.da[k] += inv_s * coeff_a[s] * samples[s].va[k];
    }
  }
  return out;
}

RowGradients estimate_scalar_row_gradients(
    const ScalarLoss& loss, const Matrix& t_hat, const Matrix& a_hat,
    double base, std::size_t row, const ForwardGradientConfig& config,
    Rng& rng, ThreadPool* pool) {
  MFCP_CHECK(t_hat.same_shape(a_hat), "T and A must both be M x N");
  MFCP_CHECK(row < t_hat.rows(), "row index out of range");
  MFCP_CHECK(config.samples > 0, "need at least one sample");
  MFCP_CHECK(config.delta > 0.0, "perturbation size must be positive");

  const std::size_t n = t_hat.cols();
  const double delta_a = config.reliability_delta();
  const auto samples = draw_samples(config.samples, n, rng);
  std::vector<double> coeff_t(config.samples, 0.0);
  std::vector<double> coeff_a(config.samples, 0.0);

  for_samples(config.samples, pool, [&](std::size_t s) {
    Matrix t_pert = t_hat;
    for (std::size_t j = 0; j < n; ++j) {
      t_pert(row, j) += config.delta * samples[s].vt[j];
    }
    coeff_t[s] = (loss(t_pert, a_hat) - base) / config.delta;

    Matrix a_pert = a_hat;
    for (std::size_t j = 0; j < n; ++j) {
      a_pert(row, j) += delta_a * samples[s].va[j];
    }
    coeff_a[s] = (loss(t_hat, a_pert) - base) / delta_a;
  });

  RowGradients out;
  out.dt.assign(n, 0.0);
  out.da.assign(n, 0.0);
  const double inv_s = 1.0 / static_cast<double>(config.samples);
  for (std::size_t s = 0; s < config.samples; ++s) {
    for (std::size_t j = 0; j < n; ++j) {
      out.dt[j] += inv_s * coeff_t[s] * samples[s].vt[j];
      out.da[j] += inv_s * coeff_a[s] * samples[s].va[j];
    }
  }
  return out;
}

FullGradients estimate_scalar_full_gradients(
    const ScalarLoss& loss, const Matrix& t_hat, const Matrix& a_hat,
    double base, const ForwardGradientConfig& config, Rng& rng,
    ThreadPool* pool) {
  MFCP_CHECK(t_hat.same_shape(a_hat), "T and A must both be M x N");
  MFCP_CHECK(config.samples > 0, "need at least one sample");
  MFCP_CHECK(config.delta > 0.0, "perturbation size must be positive");

  const std::size_t mn = t_hat.size();
  const double delta_a = config.reliability_delta();
  const auto samples = draw_samples(config.samples, mn, rng);
  std::vector<double> coeff_t(config.samples, 0.0);
  std::vector<double> coeff_a(config.samples, 0.0);

  for_samples(config.samples, pool, [&](std::size_t s) {
    Matrix t_pert = t_hat;
    for (std::size_t k = 0; k < mn; ++k) {
      t_pert[k] += config.delta * samples[s].vt[k];
    }
    coeff_t[s] = (loss(t_pert, a_hat) - base) / config.delta;

    Matrix a_pert = a_hat;
    for (std::size_t k = 0; k < mn; ++k) {
      a_pert[k] += delta_a * samples[s].va[k];
    }
    coeff_a[s] = (loss(t_hat, a_pert) - base) / delta_a;
  });

  FullGradients out;
  out.dt = Matrix::zeros(t_hat.rows(), t_hat.cols());
  out.da = Matrix::zeros(t_hat.rows(), t_hat.cols());
  const double inv_s = 1.0 / static_cast<double>(config.samples);
  for (std::size_t s = 0; s < config.samples; ++s) {
    for (std::size_t k = 0; k < mn; ++k) {
      out.dt[k] += inv_s * coeff_t[s] * samples[s].vt[k];
      out.da[k] += inv_s * coeff_a[s] * samples[s].va[k];
    }
  }
  return out;
}

}  // namespace mfcp::diff
