// Zeroth-order (forward-gradient) differentiation of the matching layer —
// the engine of MFCP-FG (paper Algorithm 2, Theorem 3).
//
// For non-convex matching objectives (parallel execution, Eq. 16/17) the
// KKT route is unavailable. Instead, the gradient of the optimal matching
// with respect to the *row* of predictions belonging to cluster i is
// estimated by Gaussian directional perturbations:
//     t̂_i^s = t̂_i + Δ v^s,   v^s ~ N(0, I_N)
//     d L/d t̂_i  ≈  (1/S) Σ_s  [ <dL/dX, X*(T̂^s, Â) - X*(T̂, Â)> / Δ ] v^s,
// i.e. the chain rule is folded into the estimator so only S extra solves
// are needed per step, not S·N. The S solves are embarrassingly parallel
// and run on a thread pool with per-sample RNG streams (bit-reproducible
// for any thread count).
#pragma once

#include <functional>
#include <vector>

#include "diff/finite_diff.hpp"
#include "parallel/thread_pool.hpp"
#include "support/rng.hpp"

namespace mfcp::diff {

struct ForwardGradientConfig {
  std::size_t samples = 16;  // S in Algorithm 2
  double delta = 0.05;       // Δ perturbation size for execution times
  /// Δ for reliability perturbations (probabilities live on a much
  /// smaller scale than hours). 0 = use `delta`.
  double delta_reliability = 0.0;

  [[nodiscard]] double reliability_delta() const noexcept {
    return delta_reliability > 0.0 ? delta_reliability : delta;
  }
};

/// Theorem 3's bias/variance balancing perturbation size
/// Δ* = (2 σ_F² / (β² S))^{1/4}.
double optimal_delta(double sigma_f, double beta, std::size_t samples);

struct RowGradients {
  std::vector<double> dt;  // dL/dt̂_i, length N
  std::vector<double> da;  // dL/dâ_i, length N
};

/// Estimates dL/dt̂_i and dL/dâ_i (row `row` of the prediction matrices)
/// given the upstream gradient dL/dX* (M x N). `solver` maps (T, A) to the
/// relaxed optimal matching; `x_base` must equal solver(t_hat, a_hat)
/// (passed in so the caller's solve is reused). If `pool` is non-null the
/// 2·S perturbed solves run in parallel.
RowGradients estimate_row_gradients(const MatchingSolver& solver,
                                    const Matrix& t_hat, const Matrix& a_hat,
                                    const Matrix& x_base, std::size_t row,
                                    const Matrix& upstream,
                                    const ForwardGradientConfig& config,
                                    Rng& rng, ThreadPool* pool = nullptr);

/// Full-matrix variant (perturbs every entry of T and A at once; used when
/// all clusters' predictors train jointly): returns dL/dT and dL/dA.
struct FullGradients {
  Matrix dt;  // M x N
  Matrix da;  // M x N
};

FullGradients estimate_full_gradients(const MatchingSolver& solver,
                                      const Matrix& t_hat,
                                      const Matrix& a_hat,
                                      const Matrix& x_base,
                                      const Matrix& upstream,
                                      const ForwardGradientConfig& config,
                                      Rng& rng, ThreadPool* pool = nullptr);

/// A scalar pipeline loss L(T̂, Â) — e.g. the TRUE makespan of the rounded
/// deployed assignment. May be piecewise constant: with a perturbation
/// size comparable to the prediction error scale, the Gaussian smoothing
/// of the estimator below turns its staircase structure into useful
/// randomized-smoothing gradients (the DBB / perturbed-optimizer view of
/// differentiating through discrete decisions).
using ScalarLoss = std::function<double(const Matrix& t, const Matrix& a)>;

/// Zeroth-order gradient of a scalar loss with respect to row `row` of the
/// prediction matrices:
///   dL/dt̂_i ≈ (1/S) Σ_s [ (L(T̂ + Δ v^s e_i) - base) / Δ ] v^s.
/// `base` must equal loss(t_hat, a_hat).
RowGradients estimate_scalar_row_gradients(
    const ScalarLoss& loss, const Matrix& t_hat, const Matrix& a_hat,
    double base, std::size_t row, const ForwardGradientConfig& config,
    Rng& rng, ThreadPool* pool = nullptr);

/// Full-matrix variant (perturbs all entries of T̂, then of Â).
FullGradients estimate_scalar_full_gradients(
    const ScalarLoss& loss, const Matrix& t_hat, const Matrix& a_hat,
    double base, const ForwardGradientConfig& config, Rng& rng,
    ThreadPool* pool = nullptr);

}  // namespace mfcp::diff
