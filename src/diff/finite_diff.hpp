// Central finite-difference Jacobians of a matching solver's output with
// respect to the metric matrices. Reference implementation: slow but
// assumption-free, used to validate both the KKT implicit differentiation
// and the zeroth-order estimator in tests, and available for diagnostics.
#pragma once

#include <functional>

#include "linalg/matrix.hpp"

namespace mfcp::diff {

/// A matching solver viewed as a map (T, A) -> relaxed X* (all M x N).
using MatchingSolver =
    std::function<Matrix(const Matrix& times, const Matrix& reliability)>;

/// d vec(X*) / d vec(T): (MN x MN), central differences with step h.
/// Row r = flattened X entry, column s = flattened T entry.
Matrix fd_jacobian_wrt_times(const MatchingSolver& solver, const Matrix& times,
                             const Matrix& reliability, double h = 1e-5);

/// d vec(X*) / d vec(A).
Matrix fd_jacobian_wrt_reliability(const MatchingSolver& solver,
                                   const Matrix& times,
                                   const Matrix& reliability, double h = 1e-5);

/// Central-difference gradient of a scalar function of a matrix.
Matrix fd_gradient(const std::function<double(const Matrix&)>& fn,
                   const Matrix& at, double h = 1e-6);

}  // namespace mfcp::diff
