#include "diff/finite_diff.hpp"

#include "support/check.hpp"

namespace mfcp::diff {

namespace {

Matrix fd_jacobian(const MatchingSolver& solver, const Matrix& times,
                   const Matrix& reliability, double h, bool wrt_times) {
  MFCP_CHECK(h > 0.0, "finite-difference step must be positive");
  const std::size_t mn = times.size();
  Matrix jac(mn, mn);
  for (std::size_t s = 0; s < mn; ++s) {
    Matrix t_plus = times;
    Matrix t_minus = times;
    Matrix a_plus = reliability;
    Matrix a_minus = reliability;
    if (wrt_times) {
      t_plus[s] += h;
      t_minus[s] -= h;
    } else {
      a_plus[s] += h;
      a_minus[s] -= h;
    }
    const Matrix x_plus = solver(t_plus, a_plus);
    const Matrix x_minus = solver(t_minus, a_minus);
    MFCP_CHECK(x_plus.size() == mn && x_minus.size() == mn,
               "solver output shape mismatch");
    for (std::size_t r = 0; r < mn; ++r) {
      jac(r, s) = (x_plus[r] - x_minus[r]) / (2.0 * h);
    }
  }
  return jac;
}

}  // namespace

Matrix fd_jacobian_wrt_times(const MatchingSolver& solver, const Matrix& times,
                             const Matrix& reliability, double h) {
  return fd_jacobian(solver, times, reliability, h, /*wrt_times=*/true);
}

Matrix fd_jacobian_wrt_reliability(const MatchingSolver& solver,
                                   const Matrix& times,
                                   const Matrix& reliability, double h) {
  return fd_jacobian(solver, times, reliability, h, /*wrt_times=*/false);
}

Matrix fd_gradient(const std::function<double(const Matrix&)>& fn,
                   const Matrix& at, double h) {
  MFCP_CHECK(h > 0.0, "finite-difference step must be positive");
  Matrix grad(at.rows(), at.cols());
  Matrix point = at;
  for (std::size_t i = 0; i < at.size(); ++i) {
    const double saved = point[i];
    point[i] = saved + h;
    const double f_plus = fn(point);
    point[i] = saved - h;
    const double f_minus = fn(point);
    point[i] = saved;
    grad[i] = (f_plus - f_minus) / (2.0 * h);
  }
  return grad;
}

}  // namespace mfcp::diff
