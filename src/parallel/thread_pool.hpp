// Fixed-size worker pool used by the zeroth-order gradient estimator
// (S independent matching solves per step, Algorithm 2) and the experiment
// harnesses (independent replications).
//
// Design notes (HPC guide idioms):
//  - explicit parallelism: callers submit tasks or use parallel_for; nothing
//    spawns threads implicitly behind library calls;
//  - exceptions from tasks propagate to the waiting caller via futures;
//  - the pool is an RAII type: destruction joins all workers.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/span.hpp"

namespace mfcp {

class ThreadPool {
 public:
  /// Creates `threads` workers. `threads == 0` selects
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers after draining queued tasks.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future rethrows any exception the task threw.
  ///
  /// When obs::set_default_registry installed a registry, every task also
  /// records its queue wait (submit -> first instruction) and run latency
  /// into `mfcp_pool_queue_wait_seconds` / `mfcp_pool_task_seconds`, and
  /// `mfcp_pool_queue_depth` tracks the backlog. With no registry (the
  /// default) the instrumentation is a single null check.
  ///
  /// Lifetime: the instrumentation wraps the user function INSIDE the
  /// packaged_task, so every registry touch happens strictly before the
  /// task's future becomes ready — a caller that waits on its futures may
  /// tear the registry down immediately afterwards.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    obs::MetricsRegistry* reg = obs::default_registry();
    std::shared_ptr<std::packaged_task<R()>> task;
    if (reg == nullptr) {
      task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    } else {
      // Histogram handles are resolved here, on the submitting thread, so
      // the worker's hot path is two observes — no registry lookups.
      obs::Histogram* wait_hist = &reg->histogram(
          "mfcp_pool_queue_wait_seconds", obs::default_time_bounds());
      obs::Histogram* task_hist = &reg->histogram(
          "mfcp_pool_task_seconds", obs::default_time_bounds());
      const auto enqueued = std::chrono::steady_clock::now();
      task = std::make_shared<std::packaged_task<R()>>(
          [fn = std::forward<F>(fn), wait_hist, task_hist,
           enqueued]() mutable -> R {
            const auto begun = std::chrono::steady_clock::now();
            wait_hist->observe(
                std::chrono::duration<double>(begun - enqueued).count());
            // ScopedSpan records even when fn throws (the destructor runs
            // during unwinding, before packaged_task stores the exception).
            obs::ScopedSpan span(task_hist, "pool_task");
            return fn();
          });
    }
    std::future<R> fut = task->get_future();
    std::size_t depth = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
      depth = queue_.size();
    }
    if (reg != nullptr) {
      reg->counter("mfcp_pool_tasks_total").add(1);
      reg->gauge("mfcp_pool_queue_depth").set(static_cast<double>(depth));
    }
    cv_.notify_one();
    return fut;
  }

  /// Shared process-wide pool (lazily constructed, hardware concurrency).
  /// Intended for library internals that need "a" pool without plumbing one
  /// through every call; experiment code constructs its own pools.
  static ThreadPool& global();

 private:
  void worker_loop(std::size_t worker);

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mfcp
