// Fixed-size worker pool used by the zeroth-order gradient estimator
// (S independent matching solves per step, Algorithm 2) and the experiment
// harnesses (independent replications).
//
// Design notes (HPC guide idioms):
//  - explicit parallelism: callers submit tasks or use parallel_for; nothing
//    spawns threads implicitly behind library calls;
//  - exceptions from tasks propagate to the waiting caller via futures;
//  - the pool is an RAII type: destruction joins all workers.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace mfcp {

class ThreadPool {
 public:
  /// Creates `threads` workers. `threads == 0` selects
  /// std::thread::hardware_concurrency() (at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Joins all workers after draining queued tasks.
  ~ThreadPool();

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future rethrows any exception the task threw.
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      queue_.emplace_back([task]() { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  /// Shared process-wide pool (lazily constructed, hardware concurrency).
  /// Intended for library internals that need "a" pool without plumbing one
  /// through every call; experiment code constructs its own pools.
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace mfcp
