#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <string>

#include "obs/flight.hpp"
#include "obs/profiler.hpp"

namespace mfcp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  // Watchdog heartbeat against the process-wide flight recorder. The
  // handle is re-resolved by *generation* immediately before every use —
  // including right after waking from a park, which can outlast any
  // recorder — so tearing a recorder down (set_default_flight(nullptr)
  // once outstanding futures are waited on) can never leave a worker
  // beating a dead slot, even if a successor recorder reuses the address.
  std::uint64_t pulse_generation = 0;
  obs::HeartbeatHandle pulse;
  const auto resolve_pulse = [&] {
    const std::uint64_t generation = obs::default_flight_generation();
    if (generation != pulse_generation || generation == 0) {
      pulse_generation = generation;
      obs::FlightRecorder* recorder = obs::default_flight();
      pulse = recorder != nullptr
                  ? recorder->register_heartbeat("pool_worker_" +
                                                 std::to_string(worker))
                  : obs::HeartbeatHandle();
    }
  };
  // Sampling-profiler registration, same generation discipline: workers
  // run the offloaded match solves, so their stacks belong in profiles.
  // The profiler (like the recorder) must outlive the pool; re-resolving
  // by generation keeps a worker from touching a replaced instance.
  std::uint64_t profiler_generation = 0;
  const auto resolve_profiler = [&] {
    const std::uint64_t generation = obs::default_profiler_generation();
    if (generation != profiler_generation || generation == 0) {
      profiler_generation = generation;
      if (obs::SamplingProfiler* profiler = obs::default_profiler()) {
        profiler->register_current_thread("pool_worker_" +
                                          std::to_string(worker));
      }
    }
  };
  for (;;) {
    std::function<void()> task;
    std::size_t depth = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      resolve_pulse();
      resolve_profiler();
      pulse.idle();  // a parked worker is not a stall
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        // stop_ and drained: detach from the current profiler (if any)
        // so no future session targets this exiting thread's id.
        if (obs::SamplingProfiler* profiler = obs::default_profiler()) {
          profiler->unregister_current_thread();
        }
        return;
      }
      resolve_pulse();  // the park may have outlived the recorder
      resolve_profiler();
      pulse.beat();
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    if (obs::MetricsRegistry* reg = obs::default_registry()) {
      reg->gauge("mfcp_pool_queue_depth").set(static_cast<double>(depth));
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mfcp
