#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace mfcp {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::size_t depth = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stop_ and drained
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      depth = queue_.size();
    }
    if (obs::MetricsRegistry* reg = obs::default_registry()) {
      reg->gauge("mfcp_pool_queue_depth").set(static_cast<double>(depth));
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace mfcp
