// Block-partitioned parallel loops and deterministic parallel reductions.
#pragma once

#include <future>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "support/check.hpp"

namespace mfcp {

/// Partition of [0, n) into at most `parts` contiguous blocks of
/// near-equal size. Returns {begin, end} pairs; never returns empty blocks.
std::vector<std::pair<std::size_t, std::size_t>> partition_range(
    std::size_t n, std::size_t parts);

/// Runs body(i) for every i in [0, n) across the pool. Blocks until done.
/// Exceptions from any block are rethrown in the caller (first one wins).
template <typename Body>
void parallel_for(ThreadPool& pool, std::size_t n, Body&& body) {
  if (n == 0) {
    return;
  }
  const auto blocks = partition_range(n, pool.size());
  if (blocks.size() <= 1) {
    for (std::size_t i = 0; i < n; ++i) {
      body(i);
    }
    return;
  }
  std::vector<std::future<void>> futures;
  futures.reserve(blocks.size());
  for (const auto& [begin, end] : blocks) {
    futures.push_back(pool.submit([&body, begin = begin, end = end] {
      for (std::size_t i = begin; i < end; ++i) {
        body(i);
      }
    }));
  }
  for (auto& f : futures) {
    f.get();
  }
}

/// Deterministic map-reduce: computes map(i) for i in [0, n) and combines
/// results in index order with reduce(acc, value). The reduction order is
/// identical regardless of thread count, so floating-point results are
/// thread-count invariant (a property our tests assert).
template <typename T, typename Map, typename Reduce>
T parallel_map_reduce(ThreadPool& pool, std::size_t n, T init, Map&& map,
                      Reduce&& reduce) {
  if (n == 0) {
    return init;
  }
  std::vector<T> values(n, init);
  parallel_for(pool, n, [&](std::size_t i) { values[i] = map(i); });
  T acc = std::move(init);
  for (std::size_t i = 0; i < n; ++i) {
    acc = reduce(std::move(acc), std::move(values[i]));
  }
  return acc;
}

}  // namespace mfcp
