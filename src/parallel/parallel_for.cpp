#include "parallel/parallel_for.hpp"

namespace mfcp {

std::vector<std::pair<std::size_t, std::size_t>> partition_range(
    std::size_t n, std::size_t parts) {
  std::vector<std::pair<std::size_t, std::size_t>> blocks;
  if (n == 0) {
    return blocks;
  }
  parts = std::max<std::size_t>(1, std::min(parts, n));
  blocks.reserve(parts);
  const std::size_t base = n / parts;
  const std::size_t extra = n % parts;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const std::size_t len = base + (p < extra ? 1 : 0);
    blocks.emplace_back(begin, begin + len);
    begin += len;
  }
  MFCP_DCHECK(begin == n, "partition must cover the range exactly");
  return blocks;
}

}  // namespace mfcp
