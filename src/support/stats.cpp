#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/check.hpp"

namespace mfcp {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) {
    return;
  }
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double mean_of(std::span<const double> xs) {
  MFCP_CHECK(!xs.empty(), "mean of empty sample");
  RunningStats rs;
  for (double x : xs) {
    rs.add(x);
  }
  return rs.mean();
}

double stddev_of(std::span<const double> xs) {
  RunningStats rs;
  for (double x : xs) {
    rs.add(x);
  }
  return rs.stddev();
}

std::string format_mean_std(double mean, double std, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << mean << " ± " << std;
  return os.str();
}

}  // namespace mfcp
