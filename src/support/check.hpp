// Runtime contract checking for the MFCP library.
//
// The library validates public-API preconditions with MFCP_CHECK (always on)
// and internal invariants with MFCP_DCHECK (compiled out in NDEBUG builds).
// Violations throw mfcp::ContractError carrying the failed expression and
// source location, so tests can assert on misuse and callers never see UB.
#pragma once

#include <source_location>
#include <stdexcept>
#include <string>
#include <string_view>

namespace mfcp {

/// Thrown when a documented precondition or internal invariant is violated.
class ContractError : public std::logic_error {
 public:
  ContractError(std::string_view expr, std::string_view msg,
                std::source_location loc);

  /// The stringized expression that evaluated to false.
  [[nodiscard]] const std::string& expression() const noexcept {
    return expr_;
  }

 private:
  std::string expr_;
};

namespace detail {
[[noreturn]] void contract_failure(std::string_view expr, std::string_view msg,
                                   std::source_location loc);
}  // namespace detail

}  // namespace mfcp

/// Always-on precondition check. `msg` may use std::string concatenation.
#define MFCP_CHECK(expr, msg)                                      \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::mfcp::detail::contract_failure(#expr, (msg),               \
                                       std::source_location::current()); \
    }                                                              \
  } while (false)

/// Debug-only invariant check, compiled out under NDEBUG.
#ifdef NDEBUG
#define MFCP_DCHECK(expr, msg) \
  do {                         \
  } while (false)
#else
#define MFCP_DCHECK(expr, msg) MFCP_CHECK(expr, msg)
#endif
