#include "support/signal_safe.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mfcp::support {

std::size_t format_u64_decimal(char* buf, std::size_t cap,
                               std::uint64_t value) noexcept {
  char digits[20];  // 2^64 - 1 has 20 decimal digits
  std::size_t n = 0;
  do {
    digits[n++] = static_cast<char>('0' + value % 10);
    value /= 10;
  } while (value != 0);
  if (n > cap) {
    return 0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    buf[i] = digits[n - 1 - i];
  }
  return n;
}

std::size_t format_i64_decimal(char* buf, std::size_t cap,
                               std::int64_t value) noexcept {
  if (value >= 0) {
    return format_u64_decimal(buf, cap, static_cast<std::uint64_t>(value));
  }
  if (cap < 2) {
    return 0;  // '-' plus at least one digit
  }
  // Negate in the unsigned domain so INT64_MIN (whose magnitude
  // overflows int64_t) renders correctly.
  const std::uint64_t magnitude = ~static_cast<std::uint64_t>(value) + 1;
  const std::size_t digits =
      format_u64_decimal(buf + 1, cap - 1, magnitude);
  if (digits == 0) {
    return 0;  // nothing partial: the sign is not emitted either
  }
  buf[0] = '-';
  return digits + 1;
}

std::size_t format_u64_hex(char* buf, std::size_t cap,
                           std::uint64_t value) noexcept {
  if (cap < 16) {
    return 0;
  }
  static const char kHex[] = "0123456789abcdef";
  for (int i = 15; i >= 0; --i) {
    buf[i] = kHex[value & 0xF];
    value >>= 4;
  }
  return 16;
}

std::size_t append_literal(char* buf, std::size_t cap, std::size_t pos,
                           const char* text) noexcept {
  std::size_t len = 0;
  while (text[len] != '\0') {
    ++len;
  }
  if (pos > cap || len > cap - pos) {
    return pos;
  }
  for (std::size_t i = 0; i < len; ++i) {
    buf[pos + i] = text[i];
  }
  return pos + len;
}

bool write_all_fd(int fd, const void* data, std::size_t len) noexcept {
  if (fd < 0) {
    return false;
  }
  const char* p = static_cast<const char*>(data);
  while (len > 0) {
    const ssize_t n = ::write(fd, p, len);
    if (n < 0) {
      if (errno == EINTR) {
        continue;
      }
      return false;
    }
    p += n;
    len -= static_cast<std::size_t>(n);
  }
  return true;
}

int open_trunc_fd(const char* path) noexcept {
  int fd = -1;
  do {
    fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  return fd;
}

void close_fd(int fd) noexcept {
  if (fd >= 0) {
    ::close(fd);
  }
}

}  // namespace mfcp::support
