// Minimal leveled logging for long-running experiment harnesses.
//
// Deliberately tiny: a process-wide level, timestamped lines to stderr,
// and zero cost below the active level. Libraries log sparingly (solver
// non-convergence, B&B budget exhaustion); harnesses log progress.
#pragma once

#include <sstream>
#include <string>

namespace mfcp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level (default kWarn: libraries stay quiet).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Emits one timestamped line to stderr if `level` passes the filter.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mfcp

/// Streamed logging: MFCP_LOG(kWarn) << "solver hit iteration cap".
#define MFCP_LOG(level) \
  ::mfcp::detail::LogLine(::mfcp::LogLevel::level)
