// Minimal leveled logging for long-running experiment harnesses.
//
// Deliberately tiny: a process-wide level, timestamped lines to stderr,
// and zero cost below the active level. Libraries log sparingly (solver
// non-convergence, B&B budget exhaustion); harnesses log progress.
//
// Each line is prefixed with a monotonic timestamp (seconds since the
// first log call, immune to wall-clock jumps) and a compact per-thread
// ordinal (T0, T1, ...), and is emitted as a single formatted write so
// concurrent loggers never interleave within a line.
//
// The initial level is kWarn unless the MFCP_LOG_LEVEL environment
// variable overrides it, so harnesses and the online engine can raise
// verbosity without recompiling:
//   MFCP_LOG_LEVEL=debug|info|warn|error   (case-insensitive), or
//   MFCP_LOG_LEVEL=0..3                    (numeric LogLevel value).
// Unrecognized values are ignored; set_log_level() always wins afterwards.
#pragma once

#include <sstream>
#include <string>

namespace mfcp {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

/// Process-wide minimum level (default kWarn: libraries stay quiet;
/// see MFCP_LOG_LEVEL above for the environment override).
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

/// Parses a MFCP_LOG_LEVEL-style string ("debug", "INFO", "2", ...).
/// Returns fallback when the text matches no level.
LogLevel parse_log_level(const std::string& text,
                         LogLevel fallback = LogLevel::kWarn);

/// Emits one timestamped line to stderr if `level` passes the filter.
void log_message(LogLevel level, const std::string& message);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_message(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace mfcp

/// Streamed logging: MFCP_LOG(kWarn) << "solver hit iteration cap".
#define MFCP_LOG(level) \
  ::mfcp::detail::LogLine(::mfcp::LogLevel::level)
